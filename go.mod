module pskyline

go 1.22
