package pskyline_test

import (
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"pskyline"
)

// raceStress runs one writer against many concurrent readers over thousands
// of elements. Readers hammer every lock-free entry point (View, Skyline,
// Query, TopK, Thresholds) plus the locked ones (Stats, Counters, Snapshot,
// Drain) while the writer mixes Push and PushBatch. The assertions are
// deliberately light — deep consistency is covered by view_test.go — because
// this test's job is to give the race detector a dense interleaving to chew
// on.
func raceStress(t *testing.T, opt pskyline.Options, readers int) {
	const dims = 3
	n := 6000
	if testing.Short() {
		n = 1500
	}
	opt.Dims = dims
	m := mustMonitor(t, opt)
	defer m.Close()
	stream := genElements(31, n, dims, true)
	qk := opt.Thresholds[len(opt.Thresholds)-1]

	done := make(chan struct{})
	var wg sync.WaitGroup
	var readOps atomic.Int64
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				readOps.Add(1)
				switch i % 11 {
				case 0:
					v := m.View()
					if v == nil {
						t.Error("View returned nil")
						return
					}
					_ = v.Candidates()
				case 1:
					_ = m.Skyline()
				case 2:
					q := qk + r.Float64()*(1-qk)
					if _, err := m.Query(q); err != nil {
						t.Errorf("query(%v): %v", q, err)
						return
					}
				case 3:
					if _, err := m.TopK(5, qk); err != nil {
						t.Errorf("topk: %v", err)
						return
					}
				case 4:
					_ = m.Thresholds()
				case 5:
					_ = m.Stats()
				case 6:
					_ = m.Counters()
				case 7:
					if err := m.Snapshot(io.Discard); err != nil {
						t.Errorf("snapshot: %v", err)
						return
					}
				case 8:
					_ = m.Metrics()
				case 9:
					_ = m.Trace()
				case 10:
					if err := m.WritePrometheus(io.Discard); err != nil {
						t.Errorf("prometheus: %v", err)
						return
					}
				}
			}
		}(g)
	}

	// Single writer: mixed Push / PushBatch / occasional Drain.
	w := rand.New(rand.NewSource(99))
	for i := 0; i < n; {
		switch w.Intn(4) {
		case 0:
			if _, err := m.Push(stream[i]); err != nil {
				t.Fatalf("push %d: %v", i, err)
			}
			i++
		case 1:
			m.Drain()
		default:
			sz := 1 + w.Intn(64)
			if i+sz > n {
				sz = n - i
			}
			if _, err := m.PushBatch(stream[i : i+sz]); err != nil {
				t.Fatalf("batch at %d: %v", i, err)
			}
			i += sz
		}
	}
	m.Drain()
	close(done)
	wg.Wait()

	if got := m.View().Processed(); got != uint64(n) {
		t.Fatalf("processed %d, want %d", got, n)
	}
	if readOps.Load() == 0 {
		t.Fatal("readers performed no operations")
	}
}

func TestConcurrentStress(t *testing.T) {
	raceStress(t, pskyline.Options{
		Window: 800, Thresholds: []float64{0.5, 0.3},
	}, 8)
}

func TestConcurrentStressAsync(t *testing.T) {
	raceStress(t, pskyline.Options{
		Window: 800, Thresholds: []float64{0.5, 0.3}, AsyncQueue: 128,
	}, 8)
}

// TestConcurrentCloseAndDrain exercises the async queue's shutdown paths:
// concurrent Drain and Close calls racing each other and racing producers.
func TestConcurrentCloseAndDrain(t *testing.T) {
	m := mustMonitor(t, pskyline.Options{
		Dims: 2, Window: 200, Thresholds: []float64{0.3}, AsyncQueue: 16,
	})
	stream := genElements(41, 500, 2, false)
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for _, e := range stream {
			if _, err := m.Push(e); err != nil {
				if err != pskyline.ErrClosed {
					t.Errorf("push: %v", err)
				}
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			m.Drain()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = m.Skyline()
		}
		if err := m.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	wg.Wait()
	// Idempotent close; drain after close must not hang.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m.Drain()
	_ = m.Skyline() // queries keep serving the final view
}
