package pskyline_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"pskyline"
	"pskyline/internal/geom"
	"pskyline/internal/naive"
	"pskyline/internal/prob"
	"pskyline/internal/stats"
)

// genShardElements produces a deterministic mixed-correlation stream with
// strictly bounded, occasionally colliding coordinates, probabilities across
// (0,1] including exact 1s, and non-decreasing timestamps.
func genShardElements(seed int64, n, dims int) []pskyline.Element {
	r := rand.New(rand.NewSource(seed))
	els := make([]pskyline.Element, n)
	ts := int64(0)
	for i := range els {
		pt := make([]float64, dims)
		for d := range pt {
			switch r.Intn(10) {
			case 0: // grid-aligned: exercises duplicate coordinates
				pt[d] = float64(r.Intn(8))
			case 1: // negative and fractional
				pt[d] = -r.Float64() * 4
			default:
				pt[d] = r.Float64() * 10
			}
		}
		p := r.Float64()
		if p == 0 {
			p = 0.5
		}
		if r.Intn(50) == 0 {
			p = 1 // certain elements: exact-zero factors in the merge
		}
		ts += int64(r.Intn(3)) // repeats allowed: ties in time windows
		els[i] = pskyline.Element{Point: pt, Prob: p, TS: ts}
	}
	return els
}

// viewDump is the gob-encoded projection the differential suite compares:
// everything observable about a merged view except work counters (which
// legitimately differ between one engine and N engines doing the same job).
type viewDump struct {
	Processed  uint64
	Thresholds []float64
	BandSizes  []int
	Candidates []pskyline.SkyPoint
	Skyline    []pskyline.SkyPoint
}

func dumpView(t *testing.T, v *pskyline.View) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(viewDump{
		Processed:  v.Processed(),
		Thresholds: v.Thresholds(),
		BandSizes:  v.BandSizes(),
		Candidates: v.Candidates(),
		Skyline:    v.Skyline(),
	})
	if err != nil {
		t.Fatalf("gob encode view: %v", err)
	}
	return buf.Bytes()
}

// shardParts collects the per-shard published views.
func shardParts(s *pskyline.ShardedMonitor) []*pskyline.View {
	parts := make([]*pskyline.View, s.NumShards())
	for i := range parts {
		parts[i] = s.Shard(i).View()
	}
	return parts
}

// feed pushes els into op in the given mode (sync pushes, batches of 64, or
// relying on op's async queue) and makes everything visible.
func feed(t *testing.T, op pskyline.Operator, els []pskyline.Element, mode string) {
	t.Helper()
	switch mode {
	case "sync", "async":
		for i := range els {
			if _, err := op.Push(els[i]); err != nil {
				t.Fatalf("push %d: %v", i, err)
			}
		}
	case "batch":
		for i := 0; i < len(els); i += 64 {
			end := i + 64
			if end > len(els) {
				end = len(els)
			}
			if _, err := op.PushBatch(els[i:end]); err != nil {
				t.Fatalf("batch at %d: %v", i, err)
			}
		}
	default:
		t.Fatalf("unknown mode %q", mode)
	}
	op.Drain()
}

// TestShardedDifferential is the heart of the PR: for every shard count ×
// ingestion mode × window kind, the sharded monitor's merged state must be
// BYTE-IDENTICAL (gob encoding) to a single-engine oracle fed the same
// stream — same candidates, same bands, same skyline probabilities to the
// last bit. Both sides run through the same merge so the comparison captures
// the full candidate surface, not just the skyline.
func TestShardedDifferential(t *testing.T) {
	const (
		n      = 3000
		window = 500
		dims   = 3
	)
	thresholds := []float64{0.6, 0.3}
	els := genShardElements(42, n, dims)

	for _, shards := range []int{1, 2, 4, 8} {
		for _, mode := range []string{"sync", "batch", "async"} {
			for _, win := range []string{"count", "time"} {
				t.Run(fmt.Sprintf("shards=%d/%s/%s", shards, mode, win), func(t *testing.T) {
					opt := pskyline.Options{Dims: dims, Thresholds: thresholds}
					if win == "count" {
						opt.Window = window
					} else {
						opt.Period = 400
					}
					oracle := mustMonitor(t, opt)
					defer oracle.Close()
					feed(t, oracle, els, "sync")

					sopt := opt
					if mode == "async" {
						sopt.AsyncQueue = 256
					}
					s, err := pskyline.NewSharded(pskyline.ShardedOptions{
						Options: sopt, Shards: shards,
					})
					if err != nil {
						t.Fatal(err)
					}
					defer s.Close()
					feed(t, s, els, mode)

					want := dumpView(t, pskyline.MergeViews([]*pskyline.View{oracle.View()}))
					got := dumpView(t, pskyline.MergeViews(shardParts(s)))
					if !bytes.Equal(got, want) {
						t.Fatalf("merged sharded state differs from oracle (%d vs %d bytes)", len(got), len(want))
					}
					// The public query surface answers from the same merge.
					gotSky := s.Skyline()
					wantSky := oracle.Skyline()
					if len(gotSky) != len(wantSky) {
						t.Fatalf("Skyline() size %d, oracle %d", len(gotSky), len(wantSky))
					}
					for i := range gotSky {
						if gotSky[i].Seq != wantSky[i].Seq {
							t.Fatalf("Skyline()[%d].Seq = %d, oracle %d", i, gotSky[i].Seq, wantSky[i].Seq)
						}
					}
				})
			}
		}
	}
}

// TestShardedBandRouterDifferential repeats one differential cell with the
// probability-band router: correctness must not depend on which router
// placed the elements.
func TestShardedBandRouterDifferential(t *testing.T) {
	els := genShardElements(7, 2000, 2)
	opt := pskyline.Options{Dims: 2, Window: 300, Thresholds: []float64{0.3}}
	oracle := mustMonitor(t, opt)
	defer oracle.Close()
	feed(t, oracle, els, "sync")

	s, err := pskyline.NewSharded(pskyline.ShardedOptions{
		Options: opt, Shards: 4, Router: pskyline.BandRouter{Bands: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	feed(t, s, els, "batch")

	want := dumpView(t, pskyline.MergeViews([]*pskyline.View{oracle.View()}))
	got := dumpView(t, pskyline.MergeViews(shardParts(s)))
	if !bytes.Equal(got, want) {
		t.Fatal("band-routed merged state differs from oracle")
	}
}

// TestShardedSingleShardPassthrough: with one shard, View() must be the
// shard's own published view (no merge allocation), and its contents must
// still match the oracle's engine-computed view byte for byte.
func TestShardedSingleShardPassthrough(t *testing.T) {
	els := genShardElements(3, 1200, 2)
	opt := pskyline.Options{Dims: 2, Window: 200, Thresholds: []float64{0.5, 0.3}}
	oracle := mustMonitor(t, opt)
	defer oracle.Close()
	feed(t, oracle, els, "sync")

	s, err := pskyline.NewSharded(pskyline.ShardedOptions{Options: opt, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	feed(t, s, els, "sync")

	if s.View() != s.Shard(0).View() {
		t.Error("single-shard View() is not a passthrough")
	}
	got := dumpView(t, s.View())
	want := dumpView(t, oracle.View())
	if !bytes.Equal(got, want) {
		t.Fatal("single-shard view differs from oracle engine view")
	}
}

// TestShardedKillRecover: checkpoint, keep pushing, kill every shard
// mid-stream, reopen the same directory tree — with a DIFFERENT router, which
// recovery must tolerate because correctness is routing-agnostic — and the
// recovered merged state must be byte-identical to an oracle that never
// crashed. New pushes after recovery must keep the equivalence.
func TestShardedKillRecover(t *testing.T) {
	const (
		dims   = 2
		window = 250
		shards = 4
	)
	dir := t.TempDir()
	els := genShardElements(11, 2200, dims)
	opt := pskyline.Options{
		Dims: dims, Window: window, Thresholds: []float64{0.3},
		Durability: pskyline.Durability{Dir: dir},
	}
	oracle := mustMonitor(t, pskyline.Options{Dims: dims, Window: window, Thresholds: []float64{0.3}})
	defer oracle.Close()

	s, err := pskyline.NewSharded(pskyline.ShardedOptions{Options: opt, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, s, els[:1500], "batch")
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	feed(t, s, els[1500:2000], "batch") // committed log tail past the checkpoint
	s.Crash()

	feed(t, oracle, els[:2000], "sync")

	s2, err := pskyline.NewSharded(pskyline.ShardedOptions{
		Options: opt, Shards: shards, Router: pskyline.BandRouter{},
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if rec := s2.Recovery(); !rec.Recovered || rec.Replayed == 0 {
		t.Fatalf("recovery = %+v, want recovered with replayed records", rec)
	}
	want := dumpView(t, pskyline.MergeViews([]*pskyline.View{oracle.View()}))
	got := dumpView(t, pskyline.MergeViews(shardParts(s2)))
	if !bytes.Equal(got, want) {
		t.Fatal("recovered merged state differs from never-crashed oracle")
	}

	// The recovered tree keeps working: push the stream tail into both.
	feed(t, s2, els[2000:], "batch")
	feed(t, oracle, els[2000:], "sync")
	want = dumpView(t, pskyline.MergeViews([]*pskyline.View{oracle.View()}))
	got = dumpView(t, pskyline.MergeViews(shardParts(s2)))
	if !bytes.Equal(got, want) {
		t.Fatal("post-recovery pushes diverged from oracle")
	}

	// The namespaces are really per shard: one directory per shard exists.
	for i := 0; i < shards; i++ {
		if m, _ := filepath.Glob(filepath.Join(dir, fmt.Sprintf("shard-%03d", i), "*")); len(m) == 0 {
			t.Errorf("shard %d has no WAL namespace under %s", i, dir)
		}
	}
}

// TestShardedMatchesNaiveOracle checks the merged probabilities against the
// from-scratch internal/naive oracle at many cut points: every merged
// candidate's Psky within 1e-9 of the definitional recomputation, candidate
// sets equal as seq sets, and no element reported by two shards.
func TestShardedMatchesNaiveOracle(t *testing.T) {
	const (
		n      = 400
		window = 60
		dims   = 2
		qk     = 0.3
	)
	els := genShardElements(99, n, dims)
	s, err := pskyline.NewSharded(pskyline.ShardedOptions{
		Options: pskyline.Options{Dims: dims, Window: window, Thresholds: []float64{qk}},
		Shards:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ref := naive.NewExact(window)

	for i := range els {
		if _, err := s.Push(els[i]); err != nil {
			t.Fatal(err)
		}
		ref.Push(geom.Point(els[i].Point), els[i].Prob)
		if i%37 != 36 && i != n-1 {
			continue
		}

		// No element may be reported by two shards.
		owner := make(map[uint64]int)
		for si := 0; si < s.NumShards(); si++ {
			for _, c := range s.Shard(si).View().Candidates() {
				if prev, dup := owner[c.Seq]; dup {
					t.Fatalf("seq %d reported by shards %d and %d", c.Seq, prev, si)
				}
				owner[c.Seq] = si
			}
		}

		want := map[uint64]float64{}
		for _, p := range ref.RestrictedAll(qk) {
			want[p.Seq] = p.Psky.Float()
		}
		got := s.View().Candidates()
		if len(got) != len(want) {
			t.Fatalf("at %d: %d merged candidates, naive has %d", i, len(got), len(want))
		}
		for _, c := range got {
			ref, ok := want[c.Seq]
			if !ok {
				t.Fatalf("at %d: merged candidate seq %d not in naive candidate set", i, c.Seq)
			}
			if math.Abs(c.Psky-ref) > 1e-9 {
				t.Fatalf("at %d: seq %d Psky = %v, naive %v", i, c.Seq, c.Psky, ref)
			}
		}
	}
}

// TestShardedTheoryGauges: every shard's Theorem 7/8 bound gauges must equal
// the bound recomputed from the shard's own published inputs (window fill,
// mean probability, thresholds), the candidate bound must be live and
// finite, and the merged sizes must respect the trivial sanity relations the
// theory implies (skyline ⊆ candidates ⊆ window).
func TestShardedTheoryGauges(t *testing.T) {
	els := genShardElements(5, 1000, 2)
	s, err := pskyline.NewSharded(pskyline.ShardedOptions{
		Options: pskyline.Options{Dims: 2, Window: 200, Thresholds: []float64{0.5, 0.3}},
		Shards:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	feed(t, s, els, "batch")

	for i := 0; i < s.NumShards(); i++ {
		met := s.Shard(i).Metrics()
		// Same inputs, same formula: the gauge is the theorem evaluated at
		// the shard's own fill and mean probability. (The skyline bound may
		// be exactly 0 when q1 exceeds the mean probability — the constant-p
		// model then admits no q1-skyline point.)
		wantSky := stats.ExpectedSkylineUpper(met.WindowFill, 2, met.MeanProb, 0.5)
		wantCand := stats.ExpectedCandidateUpper(met.WindowFill, 2, met.MeanProb, 0.3)
		if met.TheorySkylineBound != wantSky {
			t.Errorf("shard %d skyline bound = %v, recomputed %v", i, met.TheorySkylineBound, wantSky)
		}
		if met.TheoryCandidateBound != wantCand {
			t.Errorf("shard %d candidate bound = %v, recomputed %v", i, met.TheoryCandidateBound, wantCand)
		}
		if !(met.TheoryCandidateBound > 0) || math.IsInf(met.TheoryCandidateBound, 0) || math.IsNaN(met.TheoryCandidateBound) {
			t.Errorf("shard %d candidate bound = %v, want positive finite", i, met.TheoryCandidateBound)
		}
		if met.Stats.Skyline > met.Stats.Candidates {
			t.Errorf("shard %d skyline %d > candidates %d", i, met.Stats.Skyline, met.Stats.Candidates)
		}
	}
	st := s.Stats()
	if st.Skyline > st.Candidates || st.Candidates > 200 {
		t.Errorf("merged sizes implausible: %+v", st)
	}
	if st.Processed != 1000 {
		t.Errorf("merged processed = %d, want 1000", st.Processed)
	}
}

// TestShardedAsyncGlobalSeqs is the regression test for the PR 4-era
// single-tenant assumption in the async queue: sequence numbers used to be
// invented by each queue, which would collide across shards. The sharded
// front end owns numbering now, so concurrent-mode pushes must return
// globally consecutive numbers regardless of which shard's queue they land
// on.
func TestShardedAsyncGlobalSeqs(t *testing.T) {
	els := genShardElements(21, 500, 2)
	s, err := pskyline.NewSharded(pskyline.ShardedOptions{
		Options: pskyline.Options{Dims: 2, Window: 100, Thresholds: []float64{0.3}, AsyncQueue: 64},
		Shards:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := range els {
		seq, err := s.Push(els[i])
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("push %d assigned seq %d", i, seq)
		}
	}
	s.Drain()
	if got := s.Stats().Processed; got != 500 {
		t.Fatalf("processed = %d after drain", got)
	}
}

// TestShardMemberRejectsDirectPush is the regression test for the second
// single-tenant assumption: a shard engine must not accept out-of-band
// pushes, which would corrupt the global numbering.
func TestShardMemberRejectsDirectPush(t *testing.T) {
	s, err := pskyline.NewSharded(pskyline.ShardedOptions{
		Options: pskyline.Options{Dims: 2, Window: 10, Thresholds: []float64{0.3}},
		Shards:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	el := pskyline.Element{Point: []float64{1, 2}, Prob: 0.5}
	if _, err := s.Shard(0).Push(el); err == nil {
		t.Error("shard member accepted a direct Push")
	}
	if _, err := s.Shard(1).PushBatch([]pskyline.Element{el}); err == nil {
		t.Error("shard member accepted a direct PushBatch")
	}
	if _, err := s.Push(el); err != nil {
		t.Errorf("front-end push rejected: %v", err)
	}
}

// TestDurabilityNamespace pins the namespace layout and its validation: the
// joined directory, rejection of path-escaping parts, and the empty-root
// error.
func TestDurabilityNamespace(t *testing.T) {
	root := t.TempDir()
	d := pskyline.Durability{Dir: root}
	ns, err := d.Namespace("streams", "tenant-1")
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(root, "streams", "tenant-1"); ns.Dir != want {
		t.Errorf("namespace dir = %q, want %q", ns.Dir, want)
	}
	for _, bad := range []string{"..", "a/b", "", ".hidden", "x\x00y"} {
		if _, err := d.Namespace(bad); err == nil {
			t.Errorf("namespace part %q accepted", bad)
		}
	}
	if _, err := (pskyline.Durability{}).Namespace("a"); err == nil {
		t.Error("namespace without root accepted")
	}

	// Two monitors under one root must not interfere: distinct WAL trees.
	o1, err := d.Namespace("streams", "a")
	if err != nil {
		t.Fatal(err)
	}
	o2, err := d.Namespace("streams", "b")
	if err != nil {
		t.Fatal(err)
	}
	opt := pskyline.Options{Dims: 1, Window: 8, Thresholds: []float64{0.3}}
	opt.Durability = o1
	m1 := mustMonitor(t, opt)
	opt.Durability = o2
	m2 := mustMonitor(t, opt)
	m1.Push(pskyline.Element{Point: []float64{1}, Prob: 0.9})
	m2.Push(pskyline.Element{Point: []float64{2}, Prob: 0.8})
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	opt.Durability = o1
	m1b := mustMonitor(t, opt)
	defer m1b.Close()
	if got := m1b.Stats().Processed; got != 1 {
		t.Errorf("stream a recovered %d elements, want 1", got)
	}
}

// TestShardedCloseIdempotent: Close is safe to call twice and concurrently,
// pushes after Close fail with ErrClosed, and the shard goroutines (async
// consumers, WAL reattachers) all exit.
func TestShardedCloseIdempotent(t *testing.T) {
	before := runtime.NumGoroutine()
	s, err := pskyline.NewSharded(pskyline.ShardedOptions{
		Options: pskyline.Options{Dims: 2, Window: 50, Thresholds: []float64{0.3}, AsyncQueue: 32},
		Shards:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, s, genShardElements(1, 200, 2), "sync")

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) { defer wg.Done(); errs[i] = s.Close() }(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("concurrent close %d: %v", i, err)
		}
	}
	if _, err := s.Push(pskyline.Element{Point: []float64{1, 2}, Prob: 0.5}); err != pskyline.ErrClosed {
		t.Errorf("push after close: %v, want ErrClosed", err)
	}
	if _, err := s.PushBatch([]pskyline.Element{{Point: []float64{1, 2}, Prob: 0.5}}); err != pskyline.ErrClosed {
		t.Errorf("batch after close: %v, want ErrClosed", err)
	}

	// Goroutine-leak check: everything spawned for the shards must wind down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d before, %d after close\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShardedConcurrentReaders hammers the merged query surface from many
// goroutines while writers stream through every shard — the test exists to
// run under -race and to prove queries never observe a torn merge.
func TestShardedConcurrentReaders(t *testing.T) {
	els := genShardElements(77, 4000, 2)
	s, err := pskyline.NewSharded(pskyline.ShardedOptions{
		Options: pskyline.Options{Dims: 2, Window: 300, Thresholds: []float64{0.5, 0.3}, AsyncQueue: 128},
		Shards:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := s.View()
				if v.Processed() > 0 && v.NumCandidates() == 0 && v.Processed() < 10 {
					continue // tiny windows may legitimately be empty
				}
				sky := s.Skyline()
				for i := 1; i < len(sky); i++ {
					if sky[i-1].Psky < sky[i].Psky {
						t.Error("skyline out of order in concurrent read")
						return
					}
				}
				if _, err := s.Query(0.5); err != nil {
					t.Errorf("query: %v", err)
					return
				}
				s.Stats()
			}
		}()
	}
	var wwg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			chunk := els[w*1000 : (w+1)*1000]
			for i := 0; i < len(chunk); i += 50 {
				if _, err := s.PushBatch(chunk[i : i+50]); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wwg.Wait()
	s.Drain()
	close(stop)
	wg.Wait()
	if got := s.Stats().Processed; got != 4000 {
		t.Fatalf("processed = %d, want 4000", got)
	}
}

// TestMergeDeterminism: merging the same candidates partitioned differently
// must produce bit-identical probabilities (the property the byte-compare
// differential relies on). Exercised directly on hand-partitioned views.
func TestMergeDeterminism(t *testing.T) {
	els := genShardElements(13, 900, 2)
	opt := pskyline.Options{Dims: 2, Window: 150, Thresholds: []float64{0.3}}
	var dumps [][]byte
	for _, shards := range []int{2, 3, 5} {
		s, err := pskyline.NewSharded(pskyline.ShardedOptions{Options: opt, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		feed(t, s, els, "batch")
		dumps = append(dumps, dumpView(t, pskyline.MergeViews(shardParts(s))))
		s.Close()
	}
	for i := 1; i < len(dumps); i++ {
		if !bytes.Equal(dumps[0], dumps[i]) {
			t.Fatalf("merge over partition %d differs from partition 0", i)
		}
	}
}

// TestFactorExactMergeZeroProb: elements with probability exactly 1 force
// exact-zero factors; the merge's log-space arithmetic must keep them exact
// (a dominated element behind a certain dominator has Psky exactly 0 and can
// never be a candidate).
func TestFactorExactMergeZeroProb(t *testing.T) {
	f := prob.OneMinus(1)
	if f.Float() != 0 {
		t.Fatalf("1-1 = %v", f.Float())
	}
	s, err := pskyline.NewSharded(pskyline.ShardedOptions{
		Options: pskyline.Options{Dims: 1, Window: 10, Thresholds: []float64{0.3}},
		Shards:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Push(pskyline.Element{Point: []float64{5}, Prob: 0.9})
	s.Push(pskyline.Element{Point: []float64{1}, Prob: 1}) // dominates seq 0 with certainty
	s.Drain()
	for _, c := range s.View().Candidates() {
		if c.Seq == 0 {
			t.Fatalf("certain-dominated element still a candidate: %+v", c)
		}
	}
}
