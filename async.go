package pskyline

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// maxIngestBatch bounds how many queued elements the background goroutine
// ingests under one lock hold (and thus per published view): large enough to
// amortize view publication, small enough to keep view freshness and writer
// lock holds bounded.
const maxIngestBatch = 256

// OverloadPolicy selects what a full async queue does to producers.
type OverloadPolicy int

const (
	// Block (the default) applies backpressure: Push blocks until the
	// consumer makes room. Nothing is ever dropped; producers slow to the
	// ingestion rate.
	Block OverloadPolicy = iota
	// DropNewest sheds the arriving element: Push returns ErrOverloaded
	// immediately and the element is never queued. Latency stays bounded
	// and the already-accepted prefix of the stream is preserved intact.
	DropNewest
	// DropOldest evicts the oldest queued (not yet ingested) element to
	// make room for the arriving one. Push always succeeds; under sustained
	// overload the queue holds the most recent elements — the natural choice
	// for a sliding-window operator, where old elements expire anyway.
	// Because evicted elements already held reserved sequence numbers, the
	// numbers returned by Push/PushBatch are provisional under this policy:
	// a later eviction shifts what the engine actually assigns.
	DropOldest
)

func (p OverloadPolicy) String() string {
	switch p {
	case DropNewest:
		return "drop-newest"
	case DropOldest:
		return "drop-oldest"
	default:
		return "block"
	}
}

// ParseOverloadPolicy parses an overload policy name: "block", "drop-newest"
// or "drop-oldest" ("" selects the default, block).
func ParseOverloadPolicy(s string) (OverloadPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "block":
		return Block, nil
	case "drop-newest", "dropnewest":
		return DropNewest, nil
	case "drop-oldest", "dropoldest":
		return DropOldest, nil
	}
	return 0, fmt.Errorf("pskyline: unknown overload policy %q (want block, drop-newest or drop-oldest)", s)
}

// ErrOverloaded is returned by Push and PushBatch under the DropNewest
// policy when the async queue is full. The element (or batch suffix) was not
// ingested; the caller may retry, shed, or back off. Test with errors.Is.
var ErrOverloaded = errors.New("pskyline: async queue full")

// asyncQueue is the bounded single-consumer ingestion queue behind
// Options.AsyncQueue. The channel carries sequenced operations, and WHO
// assigns the sequence numbers is the queue's central contract:
//
//   - Standalone monitors (internal mode): producers reserve numbers from
//     q.next under enqMu — the reservation order is the channel order, and
//     the single consumer ingests in channel order, so the reserved numbers
//     are exactly the ones the engine will assign (exactly under Block and
//     DropNewest; provisionally under DropOldest, whose evictions consume
//     reserved numbers).
//   - Shard members (external mode): the ShardedMonitor assigns global
//     numbers under its own mutex and enqueues pre-numbered ops in order;
//     the queue must never invent numbers of its own — the old
//     queue-owns-numbering assumption breaks the moment two shards share
//     one stream. The consumer applies each drained batch at its carried
//     numbers and follows it with a watermark tick so expiry keeps up with
//     the rest of the stream. Under DropOldest an eviction leaves a
//     sequence gap (the element never existed) instead of renumbering.
//
// The channel's capacity is the overload bound; pol decides what happens
// when it is reached. Drop bookkeeping runs under enqMu, which satisfies
// the metrics' single-writer contract and keeps it off the consumer's
// ingestion path.
type asyncQueue struct {
	m     *Monitor
	ch    chan shardOp
	pol   OverloadPolicy
	ext   bool               // external (front-end) sequencing: shard member mode
	flush chan chan struct{} // Drain requests, acknowledged when the queue is empty
	done  chan struct{}      // closed when the consumer goroutine exits

	enqMu  sync.Mutex
	next   uint64 // next sequence number to reserve (internal mode only)
	closed bool
}

func newAsyncQueue(m *Monitor, capacity int, pol OverloadPolicy) *asyncQueue {
	q := &asyncQueue{
		m:     m,
		ch:    make(chan shardOp, capacity),
		pol:   pol,
		ext:   m.opts.shard != nil,
		flush: make(chan chan struct{}),
		done:  make(chan struct{}),
		next:  m.eng.NextSeq(),
	}
	go q.run()
	return q
}

// put queues one operation according to the overload policy, reporting
// whether it was accepted. Callers hold enqMu.
func (q *asyncQueue) put(op shardOp) bool {
	switch q.pol {
	case DropNewest:
		select {
		case q.ch <- op:
			return true
		default:
			q.m.met.qDrops.Inc()
			return false
		}
	case DropOldest:
		for {
			select {
			case q.ch <- op:
				return true
			default:
			}
			// Full: evict the oldest queued element and retry. The receive
			// is non-blocking because the consumer may drain the queue
			// between our two selects — then the send simply succeeds.
			select {
			case <-q.ch:
				q.m.met.qDrops.Inc()
			default:
			}
		}
	default:
		q.ch <- op
		return true
	}
}

// enqueue reserves the next sequence number for e and queues it according to
// the overload policy: Block waits for room, DropNewest fails fast with
// ErrOverloaded (no number is consumed), DropOldest evicts. The element is
// already validated; admitNs is its front-end admission stamp (0 with
// latency tracking off), carried through the queue so the element's measured
// latency includes its queue residency.
func (q *asyncQueue) enqueue(e Element, admitNs int64) (uint64, error) {
	q.enqMu.Lock()
	defer q.enqMu.Unlock()
	if q.closed {
		return 0, ErrClosed
	}
	seq := q.next
	if !q.put(shardOp{el: e, seq: seq, admitNs: admitNs}) {
		return 0, ErrOverloaded
	}
	q.next++
	return seq, nil
}

// enqueueOp queues one externally numbered operation (shard member mode).
// The sharded front end assigns sequence numbers under its own mutex and
// calls enqueueOp in assignment order, so channel order is sequence order;
// the queue's own counter is never consulted. A DropNewest rejection (or a
// DropOldest eviction) leaves a permanent gap at the assigned number —
// numbers are stable in this mode, never renumbered.
func (q *asyncQueue) enqueueOp(op shardOp) error {
	q.enqMu.Lock()
	defer q.enqMu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if !q.put(op) {
		return ErrOverloaded
	}
	return nil
}

// enqueueOps queues a pre-numbered batch in order (shard member mode). Under
// DropNewest a full queue cuts the batch and ErrOverloaded reports the
// dropped suffix.
func (q *asyncQueue) enqueueOps(ops []shardOp) error {
	q.enqMu.Lock()
	defer q.enqMu.Unlock()
	if q.closed {
		return ErrClosed
	}
	for i := range ops {
		if !q.put(ops[i]) {
			q.m.met.qDrops.Add(uint64(len(ops) - i - 1)) // the put counted ops[i] itself
			return fmt.Errorf("batch elements %d..%d dropped: %w", i, len(ops)-1, ErrOverloaded)
		}
	}
	return nil
}

// enqueueBatch reserves consecutive sequence numbers and queues the elements
// in order. Under Block the whole batch is queued (blocking as the queue
// fills); under DropNewest a full queue cuts the batch — the accepted prefix
// keeps its numbers and ErrOverloaded reports the dropped suffix; under
// DropOldest the whole batch is queued, evicting as needed. Returns the
// first accepted element's number. admitNs is the batch's shared admission
// stamp (0 with latency tracking off).
func (q *asyncQueue) enqueueBatch(es []Element, admitNs int64) (uint64, error) {
	q.enqMu.Lock()
	defer q.enqMu.Unlock()
	if q.closed {
		return 0, ErrClosed
	}
	first := q.next
	for i := range es {
		if !q.put(shardOp{el: es[i], seq: q.next, admitNs: admitNs}) {
			q.m.met.qDrops.Add(uint64(len(es) - i - 1)) // the put counted es[i] itself
			return first, fmt.Errorf("batch elements %d..%d dropped: %w", i, len(es)-1, ErrOverloaded)
		}
		q.next++
	}
	return first, nil
}

// run is the single consumer: it drains the queue in batches of up to
// maxIngestBatch operations, ingests each batch under the Monitor's lock
// and publishes one view per batch. buf reserves one extra slot for the
// watermark tick appended per batch in external mode.
func (q *asyncQueue) run() {
	defer close(q.done)
	buf := make([]shardOp, 0, maxIngestBatch+1)
	var els []Element // internal-mode unwrap scratch
	var adm []int64   // internal-mode admission-stamp scratch, parallel to els
	for {
		select {
		case op, ok := <-q.ch:
			if !ok {
				return
			}
			buf = q.gather(append(buf[:0], op))
			els, adm = q.ingest(buf, els, adm)
		case ack := <-q.flush:
			// Every element sent before the Drain call is already
			// buffered in ch (its send completed first), so a
			// non-blocking sweep empties everything Drain must wait for.
			buf = buf[:0]
			for {
				select {
				case op, ok := <-q.ch:
					if !ok {
						break
					}
					buf = append(buf, op)
					if len(buf) == maxIngestBatch {
						els, adm = q.ingest(buf, els, adm)
						buf = buf[:0]
					}
					continue
				default:
				}
				break
			}
			if len(buf) > 0 {
				els, adm = q.ingest(buf, els, adm)
			} else if q.ext {
				// An idle shard still advances to the current global
				// watermark, so a Drain of the sharded front end leaves
				// every shard expired to the same stream position.
				q.m.applyWatermark()
			}
			close(ack)
		}
	}
}

// gather opportunistically tops the batch up with whatever is already
// queued, without blocking.
func (q *asyncQueue) gather(buf []shardOp) []shardOp {
	for len(buf) < maxIngestBatch {
		select {
		case op, ok := <-q.ch:
			if !ok {
				return buf
			}
			buf = append(buf, op)
		default:
			return buf
		}
	}
	return buf
}

// ingest applies one drained batch. External (shard member) mode appends a
// watermark tick — so expiry catches up to sequence numbers routed to other
// shards — and hands the pre-numbered ops to applyOps; a durability failure
// there is already latched in the monitor (later pushes fail fast) and the
// batch is dropped, mirroring ingestBatch. Internal mode unwraps the
// elements and their admission stamps and runs the classic engine-numbered
// batch path, passing the current queue depth so flight records capture the
// backlog behind the batch. els and adm are the unwrap scratches, returned
// for reuse; buf's payload references are cleared either way so the scratch
// does not pin expired points.
func (q *asyncQueue) ingest(buf []shardOp, els []Element, adm []int64) ([]Element, []int64) {
	if q.ext {
		if op, ok := q.m.wmOp(); ok {
			buf = append(buf, op)
		}
		_ = q.m.applyOps(buf)
	} else {
		els, adm = els[:0], adm[:0]
		for i := range buf {
			els = append(els, buf[i].el)
			adm = append(adm, buf[i].admitNs)
		}
		q.m.ingestBatch(els, adm, len(q.ch))
	}
	for i := range buf {
		buf[i] = shardOp{}
	}
	// Semi-sync replication: the consumer, not the enqueuer, carries the
	// quorum wait, so backpressure surfaces as queue depth rather than a
	// blocked enqueue. Waiter errors (replication server shutdown) are
	// dropped here — the batch is applied and locally durable, and the
	// enqueuers already returned their sequence numbers.
	if q.m.commitWaiter.Load() != nil {
		_ = q.m.commitWait(q.m.NextSeq())
	}
	return els, adm
}

// ingestBatch runs a drained batch through the engine — as one engine-level
// batch insert for count-based windows — and publishes one fresh view. The
// elements were validated before enqueueing, so engine errors indicate a
// bug, not bad input. With durability the batch is logged under one group
// commit first; an unrecoverable log failure (the WAL detached) latches the
// monitor's durability error (later pushes fail fast with it) and drops the
// batch rather than applying unlogged elements — recoverable failures were
// already absorbed by the WAL's Retry/Shed policy and return no error.
// admits carries the elements' front-end admission stamps (parallel to es)
// and queue the async backlog at apply entry, for latency recording.
func (m *Monitor) ingestBatch(es []Element, admits []int64, queue int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sp opSpan
	if len(admits) > 0 {
		m.beginOpLocked(&sp, admits[0], queue)
	}
	if m.wal != nil && len(es) > 0 {
		if err := m.logBatchLocked(es); err != nil {
			return
		}
	}
	first, err := m.ingestBatchLocked(es)
	if err != nil {
		panic("pskyline: validated element rejected by engine: " + err.Error())
	}
	sp.applyDone()
	m.refreshTopKLocked()
	m.publishLocked()
	m.endOpLocked(&sp, first, len(es), admits, nil)
	m.maybeCheckpointLocked(len(es))
}

// Drain blocks until every element enqueued before the call has been
// ingested and is visible to readers through the published view. Without an
// async queue it returns immediately: synchronous pushes publish before
// they return.
func (m *Monitor) Drain() {
	if m.aq == nil {
		return
	}
	ack := make(chan struct{})
	select {
	case m.aq.flush <- ack:
		<-ack
	case <-m.aq.done:
		// Consumer already shut down; Close drained the queue first.
	}
}

// Close drains and shuts down the background goroutines (the async
// ingestion consumer and the shed-policy reattacher), then flushes and
// closes the write-ahead log. Further Push and PushBatch calls return
// ErrClosed; queries keep serving the final published view. Close is
// idempotent and safe to call concurrently. Without an async queue or
// durability it is a no-op.
func (m *Monitor) Close() error {
	if q := m.aq; q != nil {
		q.enqMu.Lock()
		if !q.closed {
			q.closed = true
			close(q.ch)
		}
		q.enqMu.Unlock()
		<-q.done
	}
	m.stopReattacher()
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	if m.wal != nil {
		return m.wal.Close()
	}
	return nil
}
