package pskyline

import "sync"

// maxIngestBatch bounds how many queued elements the background goroutine
// ingests under one lock hold (and thus per published view): large enough to
// amortize view publication, small enough to keep view freshness and writer
// lock holds bounded.
const maxIngestBatch = 256

// asyncQueue is the bounded single-consumer ingestion queue behind
// Options.AsyncQueue. Producers (Push/PushBatch) reserve sequence numbers
// and enqueue under enqMu — the reservation order is the channel order, and
// the single consumer ingests in channel order, so the reserved numbers are
// exactly the ones the engine will assign. The channel's capacity is the
// backpressure bound: a full queue blocks producers.
type asyncQueue struct {
	m     *Monitor
	ch    chan Element
	flush chan chan struct{} // Drain requests, acknowledged when the queue is empty
	done  chan struct{}      // closed when the consumer goroutine exits

	enqMu  sync.Mutex
	next   uint64 // next sequence number to reserve
	closed bool
}

func newAsyncQueue(m *Monitor, capacity int) *asyncQueue {
	q := &asyncQueue{
		m:     m,
		ch:    make(chan Element, capacity),
		flush: make(chan chan struct{}),
		done:  make(chan struct{}),
		next:  m.eng.NextSeq(),
	}
	go q.run()
	return q
}

// enqueue reserves the next sequence number for e and queues it, blocking
// while the queue is full. The element is already validated.
func (q *asyncQueue) enqueue(e Element) (uint64, error) {
	q.enqMu.Lock()
	defer q.enqMu.Unlock()
	if q.closed {
		return 0, ErrClosed
	}
	seq := q.next
	q.next++
	q.ch <- e
	return seq, nil
}

// enqueueBatch reserves len(es) consecutive sequence numbers and queues the
// elements in order, blocking as the queue fills. Returns the first number.
func (q *asyncQueue) enqueueBatch(es []Element) (uint64, error) {
	q.enqMu.Lock()
	defer q.enqMu.Unlock()
	if q.closed {
		return 0, ErrClosed
	}
	first := q.next
	q.next += uint64(len(es))
	for i := range es {
		q.ch <- es[i]
	}
	return first, nil
}

// run is the single consumer: it drains the queue in batches of up to
// maxIngestBatch elements, ingests each batch under the Monitor's lock and
// publishes one view per batch.
func (q *asyncQueue) run() {
	defer close(q.done)
	buf := make([]Element, 0, maxIngestBatch)
	for {
		select {
		case e, ok := <-q.ch:
			if !ok {
				return
			}
			buf = q.gather(append(buf[:0], e))
			q.m.ingestBatch(buf)
		case ack := <-q.flush:
			// Every element sent before the Drain call is already
			// buffered in ch (its send completed first), so a
			// non-blocking sweep empties everything Drain must wait for.
			buf = buf[:0]
			for {
				select {
				case e, ok := <-q.ch:
					if !ok {
						break
					}
					buf = append(buf, e)
					if len(buf) == cap(buf) {
						q.m.ingestBatch(buf)
						buf = buf[:0]
					}
					continue
				default:
				}
				break
			}
			if len(buf) > 0 {
				q.m.ingestBatch(buf)
			}
			close(ack)
		}
	}
}

// gather opportunistically tops the batch up with whatever is already
// queued, without blocking.
func (q *asyncQueue) gather(buf []Element) []Element {
	for len(buf) < cap(buf) {
		select {
		case e, ok := <-q.ch:
			if !ok {
				return buf
			}
			buf = append(buf, e)
		default:
			return buf
		}
	}
	return buf
}

// ingestBatch runs a drained batch through the engine — as one engine-level
// batch insert for count-based windows — and publishes one fresh view. The
// elements were validated before enqueueing, so engine errors indicate a
// bug, not bad input. With durability the batch is logged under one group
// commit first; a log failure latches the monitor's durability error (later
// pushes fail fast with it) and drops the batch rather than applying
// unlogged elements.
func (m *Monitor) ingestBatch(es []Element) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.wal != nil && len(es) > 0 {
		if err := m.logBatchLocked(es); err != nil {
			return
		}
	}
	if _, err := m.ingestBatchLocked(es); err != nil {
		panic("pskyline: validated element rejected by engine: " + err.Error())
	}
	m.refreshTopKLocked()
	m.publishLocked()
	m.maybeCheckpointLocked(len(es))
}

// Drain blocks until every element enqueued before the call has been
// ingested and is visible to readers through the published view. Without an
// async queue it returns immediately: synchronous pushes publish before
// they return.
func (m *Monitor) Drain() {
	if m.aq == nil {
		return
	}
	ack := make(chan struct{})
	select {
	case m.aq.flush <- ack:
		<-ack
	case <-m.aq.done:
		// Consumer already shut down; Close drained the queue first.
	}
}

// Close drains and shuts down the async ingestion goroutine, then flushes
// and closes the write-ahead log. Further Push and PushBatch calls return
// ErrClosed; queries keep serving the final published view. Close is
// idempotent and safe to call concurrently. Without an async queue or
// durability it is a no-op.
func (m *Monitor) Close() error {
	if q := m.aq; q != nil {
		q.enqMu.Lock()
		if !q.closed {
			q.closed = true
			close(q.ch)
		}
		q.enqMu.Unlock()
		<-q.done
	}
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	if m.wal != nil {
		return m.wal.Close()
	}
	return nil
}
