// Stock: the paper's second motivating scenario (Section I). A high-speed
// stream of (price, volume) stock deals, each with a probability of being a
// correctly recorded transaction, is monitored for the "top deals" among
// the most recent N trades: cheaper per share and larger in volume is
// better. The example also exercises the probabilistic top-k extension
// (Section VI) that a trading dashboard would display.
package main

import (
	"fmt"
	"log"

	"pskyline"
	"pskyline/internal/streamgen"
)

func main() {
	const window = 50_000
	topKChanges := 0
	m, err := pskyline.NewMonitor(pskyline.Options{
		Dims:       2,
		Window:     window,
		Thresholds: []float64{0.2},
		// Continuous top-k (Section VI): the dashboard's ranking is pushed
		// to us whenever its membership changes.
		TopK:   5,
		OnTopK: func(top []pskyline.SkyPoint) { topKChanges++ },
	})
	if err != nil {
		log.Fatal(err)
	}

	// The synthetic NYSE-like trade stream (see internal/streamgen): a
	// geometric-random-walk price and log-normal volumes, with the skyline
	// encoding (price, −volume) so both dimensions are minimized.
	src := streamgen.NewStock(streamgen.UniformProb{}, 2026)
	type deal struct {
		price  float64
		volume float64
	}
	for i := 0; i < 250_000; i++ {
		el := src.Next()
		_, err := m.Push(pskyline.Element{
			Point: el.Point,
			Prob:  el.P,
			TS:    el.TS,
			Data:  deal{price: el.Point[0], volume: -el.Point[1]},
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("top deals among the most recent %d trades (Psky ≥ 0.2):\n", window)
	for _, p := range m.Skyline() {
		d := p.Data.(deal)
		fmt.Printf("  $%-8.3f x %-8.0f  P(recorded)=%.2f  Psky=%.3f\n",
			d.price, d.volume, p.Prob, p.Psky)
	}

	top, err := m.TopK(5, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndashboard top-5 deals by skyline probability:")
	for i, p := range top {
		d := p.Data.(deal)
		fmt.Printf("  #%d  $%-8.3f x %-8.0f  Psky=%.3f\n", i+1, d.price, d.volume, p.Psky)
	}

	st := m.Stats()
	fmt.Printf("\nthroughput state: %d trades seen, %d candidates kept (%.2f%% of window)\n",
		st.Processed, st.Candidates, 100*float64(st.Candidates)/window)
	fmt.Printf("the top-5 ranking changed %d times over the stream\n", topKChanges)
}
