// Shopping: the paper's motivating on-line marketplace scenario (Section I,
// Table I). A stream of laptop advertisements is ranked on (price,
// condition) with the seller's trustability as occurrence probability; the
// monitor continuously surfaces the best-deal candidates among the most
// recent advertisements, discounting offers from untrustworthy sellers and
// letting stale offers age out of a time-based window.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pskyline"
)

// Ad is one advertisement; condition is a rank (1 = excellent … 4 = poor).
type Ad struct {
	Seller    string
	Price     float64
	Condition int
	Trust     float64
	Day       int64
}

func main() {
	const windowDays = 30
	m, err := pskyline.NewMonitor(pskyline.Options{
		Dims:       2,
		Period:     windowDays, // time-based window: ads older than 30 days expire
		Thresholds: []float64{0.4},
		OnEnter: func(p pskyline.SkyPoint) {
			ad := p.Data.(Ad)
			fmt.Printf("day %3d  NEW BEST DEAL: %-10s $%-6.0f cond=%d trust=%.2f\n",
				ad.Day, ad.Seller, ad.Price, ad.Condition, ad.Trust)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Replay Table I first: L1 (107 days ago) will have expired by "today",
	// exactly as the paper's example motivates.
	tableI := []Ad{
		{"L1", 550, 1, 0.80, 0},
		{"L2", 680, 1, 0.90, 102},
		{"L3", 530, 2, 1.00, 105},
		{"L4", 200, 2, 0.48, 107},
	}
	for _, ad := range tableI {
		push(m, ad)
	}
	sky := m.Skyline()
	fmt.Printf("\nafter Table I (L1 aged out of the %d-day window): %d best-deal candidates\n", windowDays, len(sky))
	for _, p := range sky {
		ad := p.Data.(Ad)
		fmt.Printf("  %-4s $%-6.0f cond=%d trust=%.2f  Psky=%.2f\n",
			ad.Seller, ad.Price, ad.Condition, ad.Trust, p.Psky)
	}

	// Then a longer simulated feed: sellers post daily, prices drift down
	// as the model ages, trustability varies.
	r := rand.New(rand.NewSource(3))
	day := int64(108)
	for i := 0; i < 3000; i++ {
		day += int64(r.Intn(2))
		push(m, Ad{
			Seller:    fmt.Sprintf("seller-%03d", r.Intn(400)),
			Price:     250 + 500*r.Float64() - 0.1*float64(day-108),
			Condition: 1 + r.Intn(4),
			Trust:     0.3 + 0.7*r.Float64(),
			Day:       day,
		})
	}

	fmt.Printf("\nday %d: current best-deal candidates (0.4-skyline):\n", day)
	for _, p := range m.Skyline() {
		ad := p.Data.(Ad)
		fmt.Printf("  %-11s $%-7.0f cond=%d trust=%.2f  Psky=%.2f\n",
			ad.Seller, ad.Price, ad.Condition, ad.Trust, p.Psky)
	}
	st := m.Stats()
	fmt.Printf("\n%d ads processed, %d candidates kept (max %d)\n",
		st.Processed, st.Candidates, st.MaxCandidates)
}

func push(m *pskyline.Monitor, ad Ad) {
	_, err := m.Push(pskyline.Element{
		Point: []float64{ad.Price, float64(ad.Condition)},
		Prob:  ad.Trust,
		TS:    ad.Day,
		Data:  ad,
	})
	if err != nil {
		log.Fatal(err)
	}
}
