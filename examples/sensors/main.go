// Sensors: uncertain objects with multiple instances (Section VI, "Object
// with Multiple Elements"). A field of environmental sensors reports
// (response time, power draw) readings; each sensor's state is uncertain —
// its recent readings form a discrete instance set, and flaky sensors carry
// an existence probability below 1. A sliding window over sensor reports
// answers: which sensors are probably Pareto-optimal (fast AND frugal)?
//
// One sensor has a continuous uncertainty region (a calibrated model rather
// than raw readings); it is folded in by Monte-Carlo discretization.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pskyline/internal/geom"
	"pskyline/internal/multiinst"
)

func main() {
	const windowReports = 40
	w := multiinst.NewStreamWindow(windowReports)
	r := rand.New(rand.NewSource(7))

	names := map[uint64]string{}
	id := uint64(0)

	// Stream sensor reports: each report is an uncertain object whose
	// instances are the sensor's last few (latency ms, power mW) samples,
	// weighted by recency, scaled so the weights sum to the sensor's
	// health (existence) probability.
	for round := 0; round < 200; round++ {
		sensor := fmt.Sprintf("sensor-%02d", r.Intn(25))
		base := geom.Point{5 + 50*r.Float64(), 10 + 90*r.Float64()}
		health := 0.5 + 0.5*r.Float64()
		nInst := 1 + r.Intn(4)
		ins := make([]multiinst.Instance, nInst)
		for i := range ins {
			ins[i] = multiinst.Instance{
				Point: geom.Point{
					base[0] * (0.9 + 0.2*r.Float64()),
					base[1] * (0.9 + 0.2*r.Float64()),
				},
				W: health / float64(nInst),
			}
		}
		obj, err := multiinst.NewObject(id, ins)
		if err != nil {
			log.Fatal(err)
		}
		names[id] = sensor
		id++
		w.Push(obj)
	}

	// A modelled sensor: latency and power described by a continuous
	// distribution, discretized by sampling (Section VI's Monte-Carlo
	// suggestion).
	modelled, err := multiinst.Discretize(id, 500, 0.95, 42, func(r *rand.Rand) geom.Point {
		return geom.Point{8 + r.NormFloat64()*1.5, 25 + r.NormFloat64()*4}
	})
	if err != nil {
		log.Fatal(err)
	}
	names[id] = "sensor-model"
	w.Push(modelled)

	fmt.Printf("window: %d most recent sensor reports\n", w.Len())
	fmt.Println("probably-Pareto-optimal sensors (skyline probability ≥ 0.3):")
	for _, res := range w.Skyline(0.3) {
		fmt.Printf("  %-14s Psky=%.3f\n", names[res.ID], res.Psky)
	}
}
