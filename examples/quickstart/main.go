// Quickstart: maintain a continuous 0.3-skyline over a sliding window of a
// synthetic 2-d uncertain stream and print the final skyline and the
// operator's size statistics.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pskyline"
)

func main() {
	m, err := pskyline.NewMonitor(pskyline.Options{
		Dims:       2,
		Window:     10_000,
		Thresholds: []float64{0.3},
	})
	if err != nil {
		log.Fatal(err)
	}

	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50_000; i++ {
		_, err := m.Push(pskyline.Element{
			Point: []float64{r.Float64(), r.Float64()},
			Prob:  1 - r.Float64(), // (0, 1]
			Data:  fmt.Sprintf("elem-%d", i),
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("current 0.3-skyline (most recent 10,000 elements):")
	for _, p := range m.Skyline() {
		fmt.Printf("  %-12v point=(%.3f, %.3f)  P=%.2f  Psky=%.3f\n",
			p.Data, p.Point[0], p.Point[1], p.Prob, p.Psky)
	}

	// Ad-hoc query at a stricter threshold and a top-k request reuse the
	// same maintained state.
	strict, _ := m.Query(0.7)
	fmt.Printf("\n0.7-skyline has %d points\n", len(strict))
	top, _ := m.TopK(3, 0.3)
	fmt.Println("top-3 by skyline probability:")
	for _, p := range top {
		fmt.Printf("  %-12v Psky=%.3f\n", p.Data, p.Psky)
	}

	st := m.Stats()
	fmt.Printf("\nspace: %d candidates kept for a %d-element window (max %d, %.1f%%)\n",
		st.Candidates, 10_000, st.MaxCandidates, 100*float64(st.MaxCandidates)/10_000)
}
