// Multithreshold: MSKY and QSKY (Section IV-D). Several user groups watch
// the same stream with different confidence requirements; the monitor
// maintains one band structure for thresholds {0.9, 0.6, 0.3} and answers
// both the continuous per-threshold skylines and ad-hoc queries at any
// q' ≥ 0.3 from the same state.
package main

import (
	"fmt"
	"log"

	"pskyline"
	"pskyline/internal/streamgen"
)

func main() {
	thresholds := []float64{0.9, 0.6, 0.3}
	m, err := pskyline.NewMonitor(pskyline.Options{
		Dims:       3,
		Window:     20_000,
		Thresholds: thresholds,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Anti-correlated 3-d data: the hardest distribution of the paper's
	// evaluation, with many incomparable elements.
	src := streamgen.New(3, streamgen.Anticorrelated, streamgen.UniformProb{}, 11)
	for i := 0; i < 60_000; i++ {
		el := src.Next()
		if _, err := m.Push(pskyline.Element{Point: el.Point, Prob: el.P, TS: el.TS}); err != nil {
			log.Fatal(err)
		}
	}

	// Continuous skylines for each maintained confidence level. Each
	// stricter skyline is a subset of the looser ones.
	for _, q := range thresholds {
		sky, err := m.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("confidence %.1f: %3d skyline elements", q, len(sky))
		if len(sky) > 0 {
			fmt.Printf(" (best Psky=%.3f)", sky[0].Psky)
		}
		fmt.Println()
	}

	// Ad-hoc queries at thresholds nobody registered: answered from the
	// same band trees without recomputation.
	fmt.Println("\nad-hoc queries:")
	for _, q := range []float64{0.45, 0.72, 0.95} {
		sky, err := m.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  q'=%.2f: %3d elements\n", q, len(sky))
	}

	// A new user group registers confidence 0.5 at runtime; the band
	// structure splits in place and the new continuous skyline is served
	// from the same state.
	if err := m.AddThreshold(0.5); err != nil {
		log.Fatal(err)
	}
	sky, err := m.Query(0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter registering confidence 0.5 at runtime: %d skyline elements\n", len(sky))

	st := m.Stats()
	fmt.Printf("one candidate structure serves all queries: %d candidates for a %d-element window\n",
		st.Candidates, 20_000)
}
