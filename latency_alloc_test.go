package pskyline

import (
	"math/rand"
	"testing"
)

// TestSteadyStatePushAllocsWithLatencyTracking pins the cost of the latency
// instrumentation differentially: two monitors ingest the exact same
// steady-state stream, one with tracking enabled (windowed histograms +
// flight recorder) and one with the instrumentation-off control, and the
// tracked monitor must not allocate more than the control. Admission stamps,
// opSpan bookkeeping, histogram records and flight spans are all fixed-size
// stores into preallocated storage — zero additional allocations.
func TestSteadyStatePushAllocsWithLatencyTracking(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	const window = 1024
	const runs = 2000
	newM := func(disable bool) *Monitor {
		m, err := NewMonitor(Options{
			Dims: 3, Window: window, Thresholds: []float64{0.3},
			Latency: LatencyOptions{Disable: disable},
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	r := rand.New(rand.NewSource(42))
	els := make([]Element, 3*window+runs+16)
	for i := range els {
		pt := []float64{r.Float64() * 10, r.Float64() * 10, r.Float64() * 10}
		els[i] = Element{Point: pt, Prob: 0.2 + 0.8*r.Float64(), TS: int64(i)}
	}

	measure := func(m *Monitor) float64 {
		defer m.Close()
		i := 0
		for ; i < 3*window; i++ {
			if _, err := m.Push(els[i]); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(runs, func() {
			if _, err := m.Push(els[i]); err != nil {
				t.Fatal(err)
			}
			i++
		})
	}

	base := measure(newM(true))
	tracked := measure(newM(false))
	if tracked > base+0.05 {
		t.Fatalf("latency tracking adds allocations: %.3f allocs/push tracked vs %.3f control", tracked, base)
	}
}
