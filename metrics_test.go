package pskyline_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pskyline"
)

// TestMonitorMetricsSnapshot drives a window's worth of churn through a
// Monitor and checks the observability snapshot against the ground truth
// the query API reports.
func TestMonitorMetricsSnapshot(t *testing.T) {
	const n = 4000
	m := mustMonitor(t, pskyline.Options{
		Dims: 3, Window: 512, Thresholds: []float64{0.3},
	})
	defer m.Close()
	for _, e := range genElements(17, n, 3, true) {
		if _, err := m.Push(e); err != nil {
			t.Fatal(err)
		}
	}

	met := m.Metrics()
	if met.Stats != m.Stats() {
		t.Errorf("Metrics().Stats = %+v, Stats() = %+v", met.Stats, m.Stats())
	}
	if met.Counters != m.Counters() {
		t.Errorf("Metrics().Counters = %+v, Counters() = %+v", met.Counters, m.Counters())
	}
	if met.Counters.Pushes != n {
		t.Errorf("Pushes = %d, want %d", met.Counters.Pushes, n)
	}
	if met.SkylineEnters == 0 {
		t.Error("no skyline enters over an anti-correlated stream")
	}
	// Every element currently in the skyline entered and has not left:
	// churn must reconcile with the reported size.
	if got := int(met.SkylineEnters - met.SkylineLeaves); got != met.Stats.Skyline {
		t.Errorf("enters-leaves = %d, skyline size = %d", got, met.Stats.Skyline)
	}
	if met.ViewPublishes < n {
		t.Errorf("ViewPublishes = %d, want >= %d (one per synchronous Push)", met.ViewPublishes, n)
	}
	if met.WindowFill != 512 {
		t.Errorf("WindowFill = %d, want 512", met.WindowFill)
	}
	if met.MeanProb <= 0 || met.MeanProb > 1 {
		t.Errorf("MeanProb = %v out of (0,1]", met.MeanProb)
	}
	if met.TheorySkylineBound <= 0 || met.TheoryCandidateBound <= 0 {
		t.Errorf("theory bounds not evaluated: sky=%v cand=%v",
			met.TheorySkylineBound, met.TheoryCandidateBound)
	}
	if met.LastPublish.IsZero() {
		t.Error("LastPublish is zero")
	}
	if len(met.Stages) != 5 {
		t.Fatalf("got %d stage summaries, want 5", len(met.Stages))
	}
	for _, st := range met.Stages {
		if st.Count == 0 {
			t.Errorf("stage %s recorded nothing", st.Stage)
		}
		if st.Count > 0 && (st.P50Ns <= 0 || st.MaxNs == 0) {
			t.Errorf("stage %s: degenerate latency summary %+v", st.Stage, st)
		}
	}
}

// TestTraceRing checks the bounded structured trace: depth, ordering,
// direction flags and payload sanity, including after the ring wraps.
func TestTraceRing(t *testing.T) {
	const depth = 8
	m := mustMonitor(t, pskyline.Options{
		Dims: 2, Window: 128, Thresholds: []float64{0.3}, TraceDepth: depth,
	})
	defer m.Close()
	for _, e := range genElements(23, 2000, 2, true) {
		if _, err := m.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	met := m.Metrics()
	if met.SkylineEnters+met.SkylineLeaves <= depth {
		t.Fatalf("only %d transitions, need > %d to exercise wrap",
			met.SkylineEnters+met.SkylineLeaves, depth)
	}
	tr := m.Trace()
	if len(tr) != depth {
		t.Fatalf("Trace() returned %d events, want %d after wrap", len(tr), depth)
	}
	for i, ev := range tr {
		if i > 0 && ev.Processed < tr[i-1].Processed {
			t.Errorf("trace not oldest-first at %d: %d < %d", i, ev.Processed, tr[i-1].Processed)
		}
		if len(ev.Point) != 2 {
			t.Errorf("event %d: point has %d dims, want 2", i, len(ev.Point))
		}
		if ev.Prob <= 0 || ev.Prob > 1 {
			t.Errorf("event %d: prob %v out of (0,1]", i, ev.Prob)
		}
		if ev.Psky < 0 || ev.Psky > 1 {
			t.Errorf("event %d: psky %v out of [0,1]", i, ev.Psky)
		}
		if ev.Entered != (ev.ToBand == 0) {
			t.Errorf("event %d: Entered=%v but ToBand=%d", i, ev.Entered, ev.ToBand)
		}
		if ev.At.IsZero() {
			t.Errorf("event %d: zero timestamp", i)
		}
	}
}

// TestMonitorExporters scrapes a live Monitor through both exporters and
// checks the key series are present and well-formed.
func TestMonitorExporters(t *testing.T) {
	m := mustMonitor(t, pskyline.Options{
		Dims: 2, Window: 256, Thresholds: []float64{0.5, 0.3},
	})
	defer m.Close()
	for _, e := range genElements(29, 1000, 2, true) {
		if _, err := m.Push(e); err != nil {
			t.Fatal(err)
		}
	}

	var prom bytes.Buffer
	if err := m.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	for _, want := range []string{
		"# TYPE pskyline_pushes_total counter",
		"pskyline_pushes_total 1000",
		"# TYPE pskyline_stage_seconds histogram",
		`pskyline_stage_seconds_bucket{stage="probe",le="+Inf"}`,
		`pskyline_stage_seconds_bucket{stage="expire",le="+Inf"}`,
		"pskyline_skyline_enters_total",
		"pskyline_candidates ",
		"pskyline_theory_skyline_bound",
		"pskyline_theory_candidate_bound",
		"pskyline_threshold_max 0.5",
		"pskyline_threshold_min 0.3",
		"pskyline_window_fill 256",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}

	var jsBuf bytes.Buffer
	if err := m.WriteMetricsJSON(&jsBuf); err != nil {
		t.Fatal(err)
	}
	var js map[string]any
	if err := json.Unmarshal(jsBuf.Bytes(), &js); err != nil {
		t.Fatalf("WriteMetricsJSON produced invalid JSON: %v", err)
	}
	if v, ok := js["pskyline_pushes_total"].(float64); !ok || v != 1000 {
		t.Errorf("JSON pskyline_pushes_total = %v, want 1000", js["pskyline_pushes_total"])
	}
	if _, ok := js["pskyline_stage_seconds"]; !ok {
		t.Error("JSON output missing pskyline_stage_seconds")
	}
}
