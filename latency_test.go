package pskyline_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"pskyline"
)

func genLatencyElements(seed int64, n, dims int) []pskyline.Element {
	r := rand.New(rand.NewSource(seed))
	els := make([]pskyline.Element, n)
	for i := range els {
		pt := make([]float64, dims)
		for d := range pt {
			pt[d] = r.Float64() * 10
		}
		els[i] = pskyline.Element{Point: pt, Prob: 0.2 + 0.8*r.Float64(), TS: int64(i)}
	}
	return els
}

// checkSpanShape verifies one flight span's internal arithmetic: the phase
// durations must be non-negative and partition the total.
func checkSpanShape(t *testing.T, fi pskyline.FlightInfo) {
	t.Helper()
	for _, sp := range fi.Recent {
		if sp.Batch <= 0 {
			t.Fatalf("span seq %d: batch %d", sp.Seq, sp.Batch)
		}
		if sp.WaitNs < 0 || sp.ApplyNs < 0 || sp.PublishNs < 0 {
			t.Fatalf("span seq %d: negative phase (wait %d apply %d publish %d)",
				sp.Seq, sp.WaitNs, sp.ApplyNs, sp.PublishNs)
		}
		if sp.WaitNs+sp.ApplyNs+sp.PublishNs != sp.TotalNs {
			t.Fatalf("span seq %d: phases %d+%d+%d != total %d",
				sp.Seq, sp.WaitNs, sp.ApplyNs, sp.PublishNs, sp.TotalNs)
		}
		var stages int64
		for _, s := range sp.StageNs {
			if s < 0 {
				t.Fatalf("span seq %d: negative stage time %d", sp.Seq, s)
			}
			stages += s
		}
		if stages > sp.TotalNs {
			t.Fatalf("span seq %d: engine stages %dns exceed the whole span %dns",
				sp.Seq, stages, sp.TotalNs)
		}
	}
}

// TestLatencyTrackingSync drives a plain synchronous monitor and checks that
// admission-to-visibility latency lands in the windowed histograms and the
// flight recorder.
func TestLatencyTrackingSync(t *testing.T) {
	m, err := pskyline.NewMonitor(pskyline.Options{
		Dims: 3, Window: 256, Thresholds: []float64{0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	els := genLatencyElements(11, 600, 3)
	for i := range els {
		if _, err := m.Push(els[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.PushBatch(els[:100]); err != nil {
		t.Fatal(err)
	}

	lm := m.Metrics().Latency
	if lm == nil {
		t.Fatal("Metrics().Latency is nil with tracking enabled by default")
	}
	if lm.Visible.Count == 0 || lm.Applied.Count == 0 {
		t.Fatalf("no recent latency samples: applied %d visible %d", lm.Applied.Count, lm.Visible.Count)
	}
	if lm.Visible.TotalCount != 700 {
		t.Fatalf("visible total count = %d, want 700", lm.Visible.TotalCount)
	}
	if lm.Visible.P50Ns <= 0 || lm.Visible.P999Ns < lm.Visible.P50Ns {
		t.Fatalf("implausible visible quantiles: p50 %v p999 %v", lm.Visible.P50Ns, lm.Visible.P999Ns)
	}
	if lm.Window <= 0 {
		t.Fatalf("window length %v", lm.Window)
	}

	fi := m.Flight()
	if len(fi.Recent) == 0 || fi.Recorded != 601 { // 600 pushes + 1 batch
		t.Fatalf("flight recorder: %d recent, %d recorded (want 601)", len(fi.Recent), fi.Recorded)
	}
	checkSpanShape(t, fi)
	last := fi.Recent[len(fi.Recent)-1]
	if last.Batch != 100 || last.Shard != -1 || last.Queue != -1 {
		t.Fatalf("batch span: batch %d shard %d queue %d, want 100/-1/-1", last.Batch, last.Shard, last.Queue)
	}

	// The windowed summaries export as Prometheus summary series.
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`pskyline_visibility_latency_seconds{quantile="0.99"}`,
		`pskyline_ingest_apply_latency_seconds{quantile="0.5"}`,
		"pskyline_visibility_latency_seconds_count 700",
		"pskyline_flight_spans_total 601",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Prometheus output missing %q:\n%s", want, buf.String())
		}
	}
}

// TestLatencyTrackingAsync checks that queued elements' latency includes
// queue residency and that flight spans carry the backlog depth.
func TestLatencyTrackingAsync(t *testing.T) {
	m, err := pskyline.NewMonitor(pskyline.Options{
		Dims: 2, Window: 128, Thresholds: []float64{0.3},
		AsyncQueue: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	els := genLatencyElements(12, 300, 2)
	for i := range els {
		if _, err := m.Push(els[i]); err != nil {
			t.Fatal(err)
		}
	}
	m.Drain()

	lm := m.Metrics().Latency
	if lm == nil || lm.Visible.TotalCount != 300 {
		t.Fatalf("async visible total = %+v, want 300 samples", lm)
	}
	fi := m.Flight()
	if fi.Recorded == 0 {
		t.Fatal("no flight spans recorded on the async path")
	}
	checkSpanShape(t, fi)
	for _, sp := range fi.Recent {
		if sp.Queue < 0 {
			t.Fatalf("async span seq %d: queue depth %d, want >= 0", sp.Seq, sp.Queue)
		}
	}
}

// TestLatencyTrackingSharded checks admission stamping through the sharded
// front end: per-shard histograms fill, and the merged flight dump carries
// shard indices and is ordered by admission time.
func TestLatencyTrackingSharded(t *testing.T) {
	for _, async := range []int{0, 32} {
		s, err := pskyline.NewSharded(pskyline.ShardedOptions{
			Options: pskyline.Options{
				Dims: 2, Window: 128, Thresholds: []float64{0.3},
				AsyncQueue: async,
			},
			Shards: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		els := genLatencyElements(13, 200, 2)
		for i := range els[:100] {
			if _, err := s.Push(els[i]); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.PushBatch(els[100:]); err != nil {
			t.Fatal(err)
		}
		s.Drain()

		var total uint64
		for i := 0; i < s.NumShards(); i++ {
			lm := s.Shard(i).Metrics().Latency
			if lm == nil {
				t.Fatalf("async=%d shard %d: nil latency metrics", async, i)
			}
			total += lm.Visible.TotalCount
		}
		if total != 200 {
			t.Fatalf("async=%d: visible samples across shards = %d, want 200", async, total)
		}

		fi := s.Flight()
		if fi.Recorded == 0 || len(fi.Recent) == 0 {
			t.Fatalf("async=%d: empty merged flight dump", async)
		}
		checkSpanShape(t, fi)
		for i, sp := range fi.Recent {
			if sp.Shard < 0 || int(sp.Shard) >= s.NumShards() {
				t.Fatalf("async=%d: span shard index %d out of range", async, sp.Shard)
			}
			if i > 0 && sp.AdmitNs < fi.Recent[i-1].AdmitNs {
				t.Fatalf("async=%d: merged flight dump out of admission order at %d", async, i)
			}
		}

		// The shared registry exports per-shard labeled summaries.
		var buf bytes.Buffer
		if err := s.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), `pskyline_visibility_latency_seconds{shard="1",quantile="0.99"}`) {
			t.Fatalf("async=%d: missing per-shard visibility summary:\n%s", async, buf.String())
		}
		s.Close()
	}
}

// TestLatencyDisabled pins the instrumentation-off control: no latency
// metrics, no flight spans, no summary series — and pushes still work.
func TestLatencyDisabled(t *testing.T) {
	m, err := pskyline.NewMonitor(pskyline.Options{
		Dims: 2, Window: 64, Thresholds: []float64{0.3},
		Latency: pskyline.LatencyOptions{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, e := range genLatencyElements(14, 100, 2) {
		if _, err := m.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if lm := m.Metrics().Latency; lm != nil {
		t.Fatalf("Latency = %+v with tracking disabled, want nil", lm)
	}
	fi := m.Flight()
	if fi.Recorded != 0 || len(fi.Recent) != 0 {
		t.Fatalf("flight recorder active with tracking disabled: %+v", fi)
	}
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "pskyline_visibility_latency_seconds") {
		t.Fatal("visibility summary exported with tracking disabled")
	}
}

// TestLatencySlowLatch pins the slow-span latch: with a zero-distance
// threshold every write latches; with a generous one, none do.
func TestLatencySlowLatch(t *testing.T) {
	m, err := pskyline.NewMonitor(pskyline.Options{
		Dims: 2, Window: 64, Thresholds: []float64{0.3},
		Latency: pskyline.LatencyOptions{SlowThreshold: time.Nanosecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, e := range genLatencyElements(15, 50, 2) {
		if _, err := m.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	fi := m.Flight()
	if fi.SlowLatched != 50 || len(fi.Slow) == 0 {
		t.Fatalf("1ns threshold latched %d of 50 writes (%d in ring)", fi.SlowLatched, len(fi.Slow))
	}
	if fi.SlowThreshold != time.Nanosecond {
		t.Fatalf("threshold = %v, want 1ns", fi.SlowThreshold)
	}

	m2, err := pskyline.NewMonitor(pskyline.Options{
		Dims: 2, Window: 64, Thresholds: []float64{0.3},
		Latency: pskyline.LatencyOptions{SlowThreshold: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	for _, e := range genLatencyElements(16, 50, 2) {
		if _, err := m2.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if fi := m2.Flight(); fi.SlowLatched != 0 {
		t.Fatalf("1h threshold latched %d writes, want 0", fi.SlowLatched)
	}
}
