package pskyline_test

import (
	"bytes"
	"math/rand"
	"testing"

	"pskyline"
)

// TestMonitorSnapshotRoundTrip checkpoints a monitor with payloads mid-
// stream and verifies the restored monitor continues identically, payloads
// included.
func TestMonitorSnapshotRoundTrip(t *testing.T) {
	m := mustMonitor(t, pskyline.Options{Dims: 2, Window: 60, Thresholds: []float64{0.3}})
	r := rand.New(rand.NewSource(9))
	push := func(mm *pskyline.Monitor, i int) {
		_, err := mm.Push(pskyline.Element{
			Point: []float64{r.Float64(), r.Float64()},
			Prob:  1 - r.Float64(),
			Data:  i,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		push(m, i)
	}

	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	entered := 0
	restored, err := pskyline.RestoreMonitor(&buf, pskyline.RestoreOptions{
		OnEnter: func(pskyline.SkyPoint) { entered++ },
	})
	if err != nil {
		t.Fatal(err)
	}

	check := func() {
		a, b := m.Skyline(), restored.Skyline()
		if len(a) != len(b) {
			t.Fatalf("skylines %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].Seq != b[i].Seq || a[i].Data != b[i].Data {
				t.Fatalf("member %d: %+v vs %+v", i, a[i], b[i])
			}
		}
		sa, sb := m.Stats(), restored.Stats()
		if sa != sb {
			t.Fatalf("stats %+v vs %+v", sa, sb)
		}
	}
	check()

	// Continue both in lockstep on identical elements; the restored
	// monitor's callback must fire.
	for i := 200; i < 400; i++ {
		el := pskyline.Element{
			Point: []float64{r.Float64(), r.Float64()},
			Prob:  1 - r.Float64(),
			Data:  i,
		}
		if _, err := m.Push(el); err != nil {
			t.Fatal(err)
		}
		if _, err := restored.Push(el); err != nil {
			t.Fatal(err)
		}
	}
	check()
	if entered == 0 {
		t.Fatal("restored OnEnter callback never fired")
	}
}

func TestRestoreMonitorGarbage(t *testing.T) {
	if _, err := pskyline.RestoreMonitor(bytes.NewReader(nil), pskyline.RestoreOptions{}); err == nil {
		t.Fatal("empty restore accepted")
	}
}
