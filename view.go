package pskyline

import (
	"fmt"
	"sort"

	"pskyline/internal/core"
)

// View is an immutable snapshot of the Monitor's answerable state: the full
// candidate set S_{N,q_k} partitioned into threshold bands, each band sorted
// by descending skyline probability. By the paper's Theorem 4 the candidate
// set suffices to answer the continuous skyline, any ad-hoc query with
// q' ≥ q_k and probabilistic top-k, so a View answers Skyline, Query and
// TopK without touching the Monitor's live R-trees — and therefore without
// taking any lock.
//
// The Monitor publishes a fresh View after every completed Push, PushBatch,
// async ingestion batch, threshold change and restore; Monitor.View returns
// the most recently published one. A View never changes after publication:
// it is safe to read from any number of goroutines, to hold across an
// arbitrary number of subsequent writes, and to compare against later
// views. Unchanged bands are shared structurally between consecutive views
// (copy-on-write), so holding old views is cheap.
//
// Answers reflect the stream exactly as of the snapshot: Processed reports
// how many elements had been ingested when the View was captured.
type View struct {
	processed  uint64
	thresholds []float64    // maintained thresholds, descending
	bands      [][]SkyPoint // band i: Psky in [q_i, q_{i-1}), sorted desc
	stats      Stats
	counters   core.Counters
}

// Processed returns the number of stream elements that had been ingested
// when this view was captured.
func (v *View) Processed() uint64 { return v.processed }

// Stats returns the operator's size statistics as of this view's capture.
func (v *View) Stats() Stats { return v.stats }

// Counters returns the engine's accumulated work counters as of this
// view's capture.
func (v *View) Counters() core.Counters { return v.counters }

// Thresholds returns the maintained thresholds at capture time, sorted
// descending.
func (v *View) Thresholds() []float64 {
	return append([]float64(nil), v.thresholds...)
}

// NumCandidates returns the size of the captured candidate set |S_{N,q_k}|.
func (v *View) NumCandidates() int {
	n := 0
	for _, b := range v.bands {
		n += len(b)
	}
	return n
}

// BandSizes returns the number of elements in each threshold band: index
// i < k counts elements with Psky in [q_i, q_{i-1}), index k the remaining
// candidates below q_k.
func (v *View) BandSizes() []int {
	out := make([]int, len(v.bands))
	for i, b := range v.bands {
		out[i] = len(b)
	}
	return out
}

// Skyline returns the captured q_1-skyline sorted by descending skyline
// probability.
func (v *View) Skyline() []SkyPoint {
	return append([]SkyPoint(nil), v.bands[0]...)
}

// Query answers an ad-hoc skyline query at threshold q' ≥ q_k against the
// captured state: every candidate whose skyline probability is at least q',
// sorted by descending probability. The threshold is applied to the
// reported float64 probabilities, so for any q2 ≥ q1, Query(q2) is always a
// subset of Query(q1).
func (v *View) Query(qPrime float64) ([]SkyPoint, error) {
	qk := v.thresholds[len(v.thresholds)-1]
	if qPrime < qk {
		return nil, fmt.Errorf("pskyline: ad-hoc threshold %v below maintained minimum %v", qPrime, qk)
	}
	if qPrime > 1 {
		return nil, fmt.Errorf("pskyline: ad-hoc threshold %v above 1", qPrime)
	}
	var out []SkyPoint
	for i, b := range v.bands {
		if len(b) == 0 {
			continue
		}
		if i < len(v.thresholds) && v.thresholds[i] >= qPrime {
			// Whole band qualifies; bands are disjoint descending
			// probability ranges, so appending keeps the global order.
			out = append(out, b...)
			continue
		}
		j := sort.Search(len(b), func(j int) bool { return b[j].Psky < qPrime })
		out = append(out, b[:j]...)
	}
	return out, nil
}

// TopK returns the k captured candidates with the highest skyline
// probabilities among those with Psky ≥ minQ (minQ ≥ q_k), in descending
// order.
func (v *View) TopK(k int, minQ float64) ([]SkyPoint, error) {
	if k <= 0 {
		return nil, nil
	}
	qk := v.thresholds[len(v.thresholds)-1]
	if minQ < qk {
		return nil, fmt.Errorf("pskyline: top-k threshold %v below maintained minimum %v", minQ, qk)
	}
	out := make([]SkyPoint, 0, k)
	for _, b := range v.bands {
		for _, p := range b {
			if p.Psky < minQ || len(out) == k {
				return out, nil
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// Candidates returns the entire captured candidate set sorted by descending
// skyline probability. It is the concatenation of the bands and is intended
// for inspection, tests and bulk export.
func (v *View) Candidates() []SkyPoint {
	out := make([]SkyPoint, 0, v.NumCandidates())
	for _, b := range v.bands {
		out = append(out, b...)
	}
	return out
}
