// Package netfault is a deterministic, seeded fault-injection seam for
// network connections — the internal/vfs fault injector transplanted to the
// transport layer. A wrapped net.Conn (or a faulted dialer) passes every
// dial, read and write through a schedule of rules that can add latency,
// throttle bandwidth, tear a write mid-frame, reset the connection, or
// blackhole the operation entirely (a partition: the call blocks until the
// schedule heals, the deadline expires, or the connection closes).
//
// Nothing is mocked: the real connection carries whatever bytes the schedule
// lets through, so torn frames and half-delivered batches exercise the same
// CRC and resume logic a real network failure would. Equal seeds give equal
// schedules, which is what makes chaos tests reproducible.
package netfault

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Op names one connection operation class for fault matching.
type Op int

const (
	OpDial Op = iota
	OpRead
	OpWrite
	opCount
)

var opNames = [...]string{OpDial: "dial", OpRead: "read", OpWrite: "write"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// ParseOp parses an operation name as used in fault schedule specs.
func ParseOp(s string) (Op, error) {
	for op, name := range opNames {
		if name == s {
			return Op(op), nil
		}
	}
	return 0, fmt.Errorf("netfault: unknown op %q", s)
}

// ErrKind selects the failure a fired rule injects. The zero value injects
// no error: the rule only delays (latency) or throttles.
type ErrKind int

const (
	// ErrNone: the operation proceeds after any Delay/Rate sleep.
	ErrNone ErrKind = iota
	// ErrReset severs the connection: a write-side reset also closes the
	// underlying conn, so the peer observes the break (and any Partial
	// bytes already flushed — a torn frame).
	ErrReset
	// ErrTimeout fails the operation with a net.Error whose Timeout() is
	// true, without closing the connection.
	ErrTimeout
	// ErrBlackhole is a partition: the operation blocks until the schedule
	// heals (Clear), the connection closes, or its deadline — bounded by
	// Delay when set — expires, and then fails with a timeout.
	ErrBlackhole
)

var errKindNames = map[ErrKind]string{ErrReset: "reset", ErrTimeout: "timeout", ErrBlackhole: "blackhole"}

func parseErrKind(s string) (ErrKind, error) {
	for k, name := range errKindNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("netfault: unknown err=%q (want reset, timeout or blackhole)", s)
}

// Rule is one fault in a schedule: it arms after After matching operations
// have passed through and then fires Times times (0 is treated as once,
// -1 = forever). Prob, when in (0,1), fires the rule probabilistically
// instead (seeded, deterministic) on each matching call past After. PerConn
// scopes the seen/fired counters to each wrapped connection, so "the second
// write of every session" is expressible; the default counts globally across
// the injector.
type Rule struct {
	Op      Op
	After   int     // matching calls to skip before the rule arms
	Times   int     // times to fire once armed; 0 = once, -1 = forever
	Prob    float64 // probabilistic firing in (0,1); seeded
	PerConn bool    // per-connection (not global) After/Times counters

	// Delay: ErrNone sleeps this long before the operation proceeds
	// (latency); ErrBlackhole bounds the stall — the partition resolves
	// into a timeout after Delay even without a deadline, which makes
	// self-healing partitions schedulable from a static spec.
	Delay time.Duration
	// Rate throttles: the operation sleeps len(p)/Rate seconds (bytes per
	// second) before proceeding. Read/write only.
	Rate int
	// Partial (writes only): bytes flushed through before the error
	// surfaces — a torn mid-frame write.
	Partial int
	// Err is the injected failure; ErrNone makes the rule pure latency or
	// throttle.
	Err ErrKind

	seen  int // matching calls observed (global scope)
	fired int
}

// render writes the rule in canonical schedule syntax (the inverse of
// ParseSchedule, field order fixed).
func (r *Rule) render(b *strings.Builder) {
	b.WriteString(r.Op.String())
	if r.After > 0 {
		fmt.Fprintf(b, ":after=%d", r.After)
	}
	if r.Times != 0 {
		fmt.Fprintf(b, ":times=%d", r.Times)
	}
	if r.Prob > 0 {
		fmt.Fprintf(b, ":p=%s", strconv.FormatFloat(r.Prob, 'g', -1, 64))
	}
	if r.Delay > 0 {
		fmt.Fprintf(b, ":delay=%s", r.Delay)
	}
	if r.Rate > 0 {
		fmt.Fprintf(b, ":rate=%d", r.Rate)
	}
	if r.Partial > 0 {
		fmt.Fprintf(b, ":partial=%d", r.Partial)
	}
	if r.Err != ErrNone {
		fmt.Fprintf(b, ":err=%s", errKindNames[r.Err])
	}
	if r.PerConn {
		b.WriteString(":per=conn")
	}
}

// verdict is one operation's resolved fate.
type verdict struct {
	delay   time.Duration
	kind    ErrKind
	partial int
}

// Injector injects faults into connections according to a deterministic,
// seeded schedule of rules. Safe for concurrent use; serialization under one
// mutex also makes the schedule deterministic for single-writer callers.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	rules  []*Rule
	healCh chan struct{} // closed (and replaced) by Clear: wakes blackholes
	counts [opCount]int
	errs   [opCount]int
}

// New returns an injector with an empty schedule. seed drives the
// probabilistic rules; equal seeds give equal schedules.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), healCh: make(chan struct{})}
}

// Inject adds a rule to the schedule. The rule is copied; later mutation of
// the argument has no effect.
func (f *Injector) Inject(r Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rc := r
	f.rules = append(f.rules, &rc)
}

// Clear drops every rule (the network "heals") and releases any operation
// blocked in a blackhole — it proceeds against the healed schedule.
func (f *Injector) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
	close(f.healCh)
	f.healCh = make(chan struct{})
}

// Schedule renders the current rules in canonical ParseSchedule syntax.
func (f *Injector) Schedule() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var b strings.Builder
	for i, r := range f.rules {
		if i > 0 {
			b.WriteByte(';')
		}
		r.render(&b)
	}
	return b.String()
}

// Count returns how many operations of class op have been issued.
func (f *Injector) Count(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

// Errors returns how many operations of class op were failed by a rule.
func (f *Injector) Errors(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.errs[op]
}

// ErrorsTotal returns the total number of injected failures.
func (f *Injector) ErrorsTotal() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, e := range f.errs {
		n += e
	}
	return n
}

// check records one operation against the schedule and resolves its fate.
// scope carries the per-connection counters (nil for dials). size is the
// payload length for throttle computation.
func (f *Injector) check(op Op, scope *connScope, size int) (verdict, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	for _, r := range f.rules {
		if r.Op != op {
			continue
		}
		seen, fired := &r.seen, &r.fired
		if r.PerConn && scope != nil {
			st := scope.state(r)
			seen, fired = &st.seen, &st.fired
		}
		*seen++
		if *seen <= r.After {
			continue
		}
		limit := r.Times
		if limit == 0 {
			limit = 1
		}
		if limit > 0 && *fired >= limit {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && f.rng.Float64() >= r.Prob {
			continue
		}
		*fired++
		if r.Err != ErrNone {
			f.errs[op]++
		}
		v := verdict{delay: r.Delay, kind: r.Err, partial: r.Partial}
		if r.Rate > 0 && size > 0 {
			v.delay += time.Duration(float64(size) / float64(r.Rate) * float64(time.Second))
		}
		return v, true
	}
	return verdict{}, false
}

// heal returns the channel closed by the next Clear.
func (f *Injector) heal() chan struct{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.healCh
}

// injected errors ------------------------------------------------------------

// timeoutError satisfies net.Error with Timeout() true, like a deadline.
type timeoutError struct{ op Op }

func (e *timeoutError) Error() string   { return fmt.Sprintf("netfault: injected %s timeout", e.op) }
func (e *timeoutError) Timeout() bool   { return true }
func (e *timeoutError) Temporary() bool { return true }

// ErrInjectedReset marks a connection reset injected by the schedule. Test
// with errors.Is.
var ErrInjectedReset = errors.New("netfault: injected connection reset")

// Conn ----------------------------------------------------------------------

// connScope holds one connection's per-rule counters (Rule.PerConn).
type connScope struct {
	states map[*Rule]*ruleState
}

type ruleState struct{ seen, fired int }

// state returns r's counters in this scope; callers hold the injector mutex.
func (s *connScope) state(r *Rule) *ruleState {
	if s.states == nil {
		s.states = make(map[*Rule]*ruleState)
	}
	st := s.states[r]
	if st == nil {
		st = &ruleState{}
		s.states[r] = st
	}
	return st
}

// Conn wraps a net.Conn so reads and writes pass through the schedule. It
// tracks the deadlines set on it: a blackholed or delayed operation respects
// them (returning a timeout) even though the underlying syscall never runs.
type Conn struct {
	net.Conn
	f *Injector

	mu    sync.Mutex
	scope connScope
	rdl   time.Time
	wdl   time.Time

	closed    chan struct{}
	closeOnce sync.Once
}

// WrapConn wraps c so its reads and writes pass through the schedule.
func (f *Injector) WrapConn(c net.Conn) net.Conn {
	return &Conn{Conn: c, f: f, closed: make(chan struct{})}
}

func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdl, c.wdl = t, t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdl = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.wdl = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

func (c *Conn) deadline(op Op) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if op == OpRead {
		return c.rdl
	}
	return c.wdl
}

// sleep pauses for d, truncated at the deadline (then: timeout error) and
// interrupted by Close.
func (c *Conn) sleep(op Op, d time.Duration, deadline time.Time) error {
	timedOut := false
	if !deadline.IsZero() {
		if until := time.Until(deadline); until < d {
			d, timedOut = until, true
		}
	}
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-c.closed:
			return net.ErrClosed
		}
	}
	if timedOut {
		return &timeoutError{op: op}
	}
	return nil
}

// blackhole blocks until the schedule heals (nil: proceed with the real
// operation), the stall bound or deadline expires (timeout), or the
// connection closes.
func (c *Conn) blackhole(op Op, bound time.Duration, deadline time.Time) error {
	healed := c.f.heal()
	var timer <-chan time.Time
	wait := time.Duration(-1) // negative: unbounded
	if !deadline.IsZero() {
		wait = time.Until(deadline)
	}
	if bound > 0 && (wait < 0 || bound < wait) {
		wait = bound
	}
	if wait >= 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		timer = t.C
	}
	select {
	case <-healed:
		return nil
	case <-timer:
		return &timeoutError{op: op}
	case <-c.closed:
		return net.ErrClosed
	}
}

func (c *Conn) Read(p []byte) (int, error) {
	v, ok := c.f.check(OpRead, &c.scope, len(p))
	if ok {
		if err := c.resolve(OpRead, v, nil); err != nil {
			return 0, err
		}
	}
	return c.Conn.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	v, ok := c.f.check(OpWrite, &c.scope, len(p))
	if ok {
		if err := c.resolve(OpWrite, v, p); err != nil {
			n := 0
			if v.partial > 0 && v.partial < len(p) && !errors.Is(err, net.ErrClosed) {
				// Torn write: a prefix of the frame reaches the wire
				// before the failure surfaces.
				n, _ = c.Conn.Write(p[:v.partial])
			}
			if errors.Is(err, ErrInjectedReset) {
				c.Conn.Close() // the peer observes the break
			}
			return n, err
		}
	}
	return c.Conn.Write(p)
}

// resolve applies a fired rule's verdict: sleep for latency/throttle, then
// block or fail per the error kind. A nil return means the real operation
// proceeds.
func (c *Conn) resolve(op Op, v verdict, _ []byte) error {
	deadline := c.deadline(op)
	switch v.kind {
	case ErrNone:
		return c.sleep(op, v.delay, deadline)
	case ErrBlackhole:
		return c.blackhole(op, v.delay, deadline)
	case ErrTimeout:
		return &timeoutError{op: op}
	case ErrReset:
		return fmt.Errorf("netfault: injected %s fault: %w", op, ErrInjectedReset)
	}
	return nil
}

// Dial dials through the schedule: dial rules can delay, time out, reset
// (connection refused-like failure) or blackhole the attempt, and the
// returned connection is wrapped so read/write rules apply to the session.
func (f *Injector) Dial(network, addr string, timeout time.Duration) (net.Conn, error) {
	if v, ok := f.check(OpDial, nil, 0); ok {
		switch v.kind {
		case ErrReset:
			return nil, fmt.Errorf("netfault: injected dial fault: %w", ErrInjectedReset)
		case ErrTimeout:
			return nil, &timeoutError{op: OpDial}
		case ErrBlackhole:
			wait := timeout
			if v.delay > 0 && v.delay < wait {
				wait = v.delay
			}
			healed := f.heal()
			t := time.NewTimer(wait)
			select {
			case <-healed:
				t.Stop()
			case <-t.C:
				return nil, &timeoutError{op: OpDial}
			}
		default:
			if v.delay > 0 {
				time.Sleep(v.delay)
			}
		}
	}
	c, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	return f.WrapConn(c), nil
}

// ParseSchedule builds an injector from a compact schedule spec — the
// -repl-fault CLI syntax, mirroring internal/vfs.ParseSchedule. The spec is
// a semicolon-separated list of rules; each rule is colon-separated fields
// starting with the op name (dial, read or write):
//
//	op[:after=N][:times=M][:p=F][:delay=D][:rate=B][:partial=K][:err=reset|timeout|blackhole][:per=conn]
//
// Examples:
//
//	write:after=2:times=-1:err=reset:per=conn   every session's 3rd+ write resets
//	read:p=0.05:times=-1:err=blackhole:delay=2s  5% of reads stall 2s, then time out
//	write:times=1:partial=5:err=reset            the 1st write tears at byte 5
//	dial:delay=150ms:times=-1                    every dial pays 150ms latency
//	write:rate=65536:times=-1                    writes throttled to 64 KiB/s
//
// A rule must have an effect: at least one of delay, rate or err.
func ParseSchedule(seed int64, spec string) (*Injector, error) {
	f := New(seed)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		op, err := ParseOp(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, err
		}
		r := Rule{Op: op}
		for _, fld := range fields[1:] {
			k, v, ok := strings.Cut(fld, "=")
			if !ok {
				return nil, fmt.Errorf("netfault: bad rule field %q in %q", fld, part)
			}
			switch k {
			case "after":
				if r.After, err = strconv.Atoi(v); err != nil || r.After < 0 {
					return nil, fmt.Errorf("netfault: bad after=%q in %q", v, part)
				}
			case "times":
				if r.Times, err = strconv.Atoi(v); err != nil || r.Times < -1 {
					return nil, fmt.Errorf("netfault: bad times=%q in %q", v, part)
				}
			case "p":
				if r.Prob, err = strconv.ParseFloat(v, 64); err != nil || r.Prob < 0 || r.Prob > 1 {
					return nil, fmt.Errorf("netfault: bad p=%q in %q", v, part)
				}
			case "delay":
				if r.Delay, err = time.ParseDuration(v); err != nil || r.Delay < 0 {
					return nil, fmt.Errorf("netfault: bad delay=%q in %q", v, part)
				}
			case "rate":
				if r.Rate, err = strconv.Atoi(v); err != nil || r.Rate <= 0 {
					return nil, fmt.Errorf("netfault: bad rate=%q in %q", v, part)
				}
			case "partial":
				if r.Partial, err = strconv.Atoi(v); err != nil || r.Partial < 0 {
					return nil, fmt.Errorf("netfault: bad partial=%q in %q", v, part)
				}
			case "err":
				if r.Err, err = parseErrKind(v); err != nil {
					return nil, err
				}
			case "per":
				if v != "conn" {
					return nil, fmt.Errorf("netfault: bad per=%q in %q (want conn)", v, part)
				}
				r.PerConn = true
			default:
				return nil, fmt.Errorf("netfault: unknown rule field %q in %q", k, part)
			}
		}
		if r.Delay == 0 && r.Rate == 0 && r.Err == ErrNone {
			return nil, fmt.Errorf("netfault: rule %q has no effect (want delay, rate or err)", part)
		}
		if r.Partial > 0 && (r.Op != OpWrite || r.Err == ErrNone) {
			return nil, fmt.Errorf("netfault: partial in %q requires op=write and an err", part)
		}
		if r.Rate > 0 && r.Op == OpDial {
			return nil, fmt.Errorf("netfault: rate in %q applies only to read/write", part)
		}
		f.Inject(r)
	}
	return f, nil
}
