package netfault

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// pair returns a wrapped client conn dialed into an in-process TCP server
// and the server-side conn, plus a cleanup.
func pair(t *testing.T, f *Injector) (client net.Conn, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { raw.Close(); r.c.Close() })
	return f.WrapConn(raw), r.c
}

func TestPassThrough(t *testing.T) {
	f := New(1)
	c, s := pair(t, f)
	go s.Write([]byte("hello"))
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("got %q", buf)
	}
	if f.Count(OpRead) == 0 {
		t.Fatal("read not counted")
	}
	if f.ErrorsTotal() != 0 {
		t.Fatalf("unexpected injected errors: %d", f.ErrorsTotal())
	}
}

func TestInjectedReset(t *testing.T) {
	f := New(1)
	f.Inject(Rule{Op: OpWrite, Err: ErrReset})
	c, _ := pair(t, f)
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("want injected reset, got %v", err)
	}
	// The underlying conn is closed: the next write fails natively.
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write after reset succeeded")
	}
	if f.Errors(OpWrite) != 1 {
		t.Fatalf("Errors(write) = %d", f.Errors(OpWrite))
	}
}

func TestTornWrite(t *testing.T) {
	f := New(1)
	f.Inject(Rule{Op: OpWrite, Partial: 3, Err: ErrReset})
	c, s := pair(t, f)
	n, err := c.Write([]byte("abcdef"))
	if !errors.Is(err, ErrInjectedReset) || n != 3 {
		t.Fatalf("want torn write of 3, got n=%d err=%v", n, err)
	}
	buf := make([]byte, 3)
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "abc" {
		t.Fatalf("peer saw %q", buf)
	}
	// The stream then ends: the peer observes the break.
	if _, err := s.Read(buf); err == nil {
		t.Fatal("peer read succeeded after reset")
	}
}

func TestInjectedTimeoutIsNetError(t *testing.T) {
	f := New(1)
	f.Inject(Rule{Op: OpRead, Err: ErrTimeout})
	c, _ := pair(t, f)
	_, err := c.Read(make([]byte, 1))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want net.Error timeout, got %v", err)
	}
}

func TestLatencyDelaysOp(t *testing.T) {
	f := New(1)
	f.Inject(Rule{Op: OpWrite, Delay: 50 * time.Millisecond})
	c, s := pair(t, f)
	go io.Copy(io.Discard, s)
	start := time.Now()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("write returned in %v, want >= ~50ms", d)
	}
}

func TestLatencyRespectsDeadline(t *testing.T) {
	f := New(1)
	f.Inject(Rule{Op: OpWrite, Delay: 10 * time.Second})
	c, _ := pair(t, f)
	c.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err := c.Write([]byte("x"))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want timeout, got %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("deadline not honored: took %v", d)
	}
}

func TestBlackholeHealReleases(t *testing.T) {
	f := New(1)
	f.Inject(Rule{Op: OpWrite, Times: -1, Err: ErrBlackhole})
	c, s := pair(t, f)
	go io.Copy(io.Discard, s)
	done := make(chan error, 1)
	go func() {
		_, err := c.Write([]byte("x"))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("blackholed write returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	f.Clear() // heal: the blocked write proceeds against the empty schedule
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("healed write failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write still blocked after heal")
	}
}

func TestBlackholeBoundedByDelay(t *testing.T) {
	f := New(1)
	f.Inject(Rule{Op: OpWrite, Err: ErrBlackhole, Delay: 40 * time.Millisecond})
	c, _ := pair(t, f)
	start := time.Now()
	_, err := c.Write([]byte("x"))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want timeout after bounded blackhole, got %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond || d > 2*time.Second {
		t.Fatalf("bounded blackhole took %v, want ~40ms", d)
	}
}

func TestBlackholeCloseReleases(t *testing.T) {
	f := New(1)
	f.Inject(Rule{Op: OpRead, Times: -1, Err: ErrBlackhole})
	c, _ := pair(t, f)
	done := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read still blocked after close")
	}
}

func TestAfterAndTimes(t *testing.T) {
	f := New(1)
	f.Inject(Rule{Op: OpWrite, After: 1, Times: 2, Err: ErrTimeout})
	c, s := pair(t, f)
	go io.Copy(io.Discard, s)
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatalf("write 1 (before arm): %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Write([]byte("x")); err == nil {
			t.Fatalf("write %d should fail", i+2)
		}
	}
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatalf("write 4 (exhausted): %v", err)
	}
}

func TestPerConnScoping(t *testing.T) {
	f := New(1)
	// Global counters would make only one conn see the fault; per-conn
	// counters fire for the 2nd write of EVERY conn.
	f.Inject(Rule{Op: OpWrite, After: 1, Times: -1, Err: ErrTimeout, PerConn: true})
	for i := 0; i < 3; i++ {
		c, s := pair(t, f)
		go io.Copy(io.Discard, s)
		if _, err := c.Write([]byte("x")); err != nil {
			t.Fatalf("conn %d write 1: %v", i, err)
		}
		if _, err := c.Write([]byte("x")); err == nil {
			t.Fatalf("conn %d write 2 should fail", i)
		}
		c.Close()
	}
}

func TestProbDeterministicAcrossSeeds(t *testing.T) {
	run := func(seed int64) []bool {
		f := New(seed)
		f.Inject(Rule{Op: OpWrite, Times: -1, Prob: 0.5, Err: ErrTimeout})
		c, s := pair(t, f)
		defer c.Close()
		go io.Copy(io.Discard, s)
		var outcomes []bool
		for i := 0; i < 32; i++ {
			_, err := c.Write([]byte("x"))
			outcomes = append(outcomes, err != nil)
		}
		return outcomes
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
}

func TestDialFaults(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	defer wg.Wait()
	defer ln.Close()

	f := New(1)
	f.Inject(Rule{Op: OpDial, Err: ErrReset})
	if _, err := f.Dial("tcp", ln.Addr().String(), time.Second); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("want injected dial reset, got %v", err)
	}
	// Schedule exhausted: dial succeeds and returns a wrapped conn.
	c, err := f.Dial("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(*Conn); !ok {
		t.Fatalf("dial returned unwrapped %T", c)
	}
	c.Close()
}

func TestParseSchedule(t *testing.T) {
	spec := "write:after=2:times=-1:err=reset:per=conn; read:p=0.05:times=-1:delay=2s:err=blackhole ; dial:delay=150ms:times=3; write:times=1:partial=5:err=timeout; write:rate=65536:times=-1"
	f, err := ParseSchedule(3, spec)
	if err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	n := len(f.rules)
	r0 := *f.rules[0]
	f.mu.Unlock()
	if n != 5 {
		t.Fatalf("rules = %d, want 5", n)
	}
	if r0.Op != OpWrite || r0.After != 2 || r0.Times != -1 || r0.Err != ErrReset || !r0.PerConn {
		t.Fatalf("rule 0 parsed wrong: %+v", r0)
	}
	// Canonical re-render reparses to itself.
	out := f.Schedule()
	f2, err := ParseSchedule(3, out)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", out, err)
	}
	if got := f2.Schedule(); got != out {
		t.Fatalf("render not canonical: %q vs %q", got, out)
	}
}

func TestParseScheduleRejects(t *testing.T) {
	bad := []string{
		"fsync:err=reset",                 // unknown op
		"write",                           // no effect
		"write:bogus",                     // field without =
		"write:after=x:err=reset",         // bad int
		"write:times=-2:err=reset",        // times < -1
		"write:p=1.5:err=reset",           // p out of range
		"write:delay=fast",                // bad duration
		"write:rate=0:times=1",            // rate must be positive
		"write:err=eio",                   // unknown err kind (vfs spelling)
		"read:partial=4:err=reset",        // partial requires write
		"write:partial=4",                 // partial requires an err
		"dial:rate=100",                   // rate on dial
		"write:per=sock:err=reset",        // bad per scope
		"write:whatever=1:err=reset",      // unknown field
		"::::",                            // garbage
		"write:err=reset;;read:err=bogus", // second rule bad
	}
	for _, spec := range bad {
		if _, err := ParseSchedule(1, spec); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", spec)
		}
	}
	// Empty schedule and blank segments are fine.
	for _, spec := range []string{"", " ; ", "write:err=reset; ; read:err=timeout"} {
		if _, err := ParseSchedule(1, spec); err != nil {
			t.Errorf("ParseSchedule(%q): %v", spec, err)
		}
	}
}

// FuzzNetfaultSchedule mirrors FuzzParseStreamSpec and the vfs ParseSchedule
// tests: any accepted spec must re-render canonically (render → parse →
// render is a fixed point), and malformed input must be rejected, never
// panic.
func FuzzNetfaultSchedule(f *testing.F) {
	f.Add("write:after=2:times=-1:err=reset:per=conn")
	f.Add("read:p=0.05:times=-1:delay=2s:err=blackhole")
	f.Add("dial:delay=150ms:times=3; write:times=1:partial=5:err=timeout")
	f.Add("write:rate=65536:times=-1")
	f.Add("write:err=reset; read:err=timeout; dial:err=blackhole")
	f.Add("::::")
	f.Add("write:p=0.999999:times=-1:err=reset")
	f.Add("")
	f.Fuzz(func(t *testing.T, spec string) {
		inj, err := ParseSchedule(1, spec)
		if err != nil {
			return
		}
		out := inj.Schedule()
		inj2, err := ParseSchedule(1, out)
		if err != nil {
			t.Fatalf("re-render %q of accepted %q rejected: %v", out, spec, err)
		}
		if got := inj2.Schedule(); got != out {
			t.Fatalf("render not a fixed point: %q -> %q -> %q", spec, out, got)
		}
		inj.mu.Lock()
		rules := inj.rules
		for _, r := range rules {
			if r.Delay == 0 && r.Rate == 0 && r.Err == ErrNone {
				t.Fatalf("accepted no-effect rule %+v from %q", *r, spec)
			}
			if r.Times < -1 || r.After < 0 || r.Prob < 0 || r.Prob > 1 {
				t.Fatalf("accepted out-of-range rule %+v from %q", *r, spec)
			}
		}
		inj.mu.Unlock()
	})
}
