package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllFiguresRunTinyScale smoke-runs every experiment at a tiny scale and
// checks that each emits its header and at least one data row.
func TestAllFiguresRunTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness smoke test is not short")
	}
	s := Scale{N: 4000, Window: 2000}
	var buf bytes.Buffer
	All(s, &buf)
	out := buf.String()
	for _, want := range []string{
		"Figure 4", "Figure 5", "Figure 6", "Figure 7", "Figure 8",
		"Figure 9", "Figure 10", "Figure 11", "Figure 12(a)", "Figure 12(b)",
		"Anti-Uniform", "Stock-Uniform", "speedup",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if len(strings.Split(out, "\n")) < 80 {
		t.Fatalf("suspiciously short output:\n%s", out)
	}
}

func TestRunOutcome(t *testing.T) {
	o := Run(Config{
		Dataset: Dataset{Name: "inde", Dims: 2, Prob: nil},
		N:       500, Window: 250, Seed: 1,
	})
	if o.Elems != 500 || o.MaxCand <= 0 || o.NsPerElem <= 0 || o.ElemsPerSec <= 0 {
		t.Fatalf("outcome = %+v", o)
	}
	if o.MaxSky > o.MaxCand {
		t.Fatalf("skyline larger than candidates: %+v", o)
	}
	tr := RunTrivial(Config{
		Dataset: Dataset{Name: "inde", Dims: 2},
		N:       500, Window: 250, Seed: 1,
	})
	if tr.MaxCand != o.MaxCand {
		t.Fatalf("trivial max candidates %d != engine %d", tr.MaxCand, o.MaxCand)
	}
}

func TestThresholdSpread(t *testing.T) {
	if got := ThresholdSpread(1); len(got) != 1 || got[0] != 0.3 {
		t.Fatalf("k=1: %v", got)
	}
	got := ThresholdSpread(4)
	if len(got) != 4 || got[0] != 0.3 || got[3] != 1.0 {
		t.Fatalf("k=4: %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("not increasing: %v", got)
		}
	}
}
