package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"pskyline/internal/core"
	"pskyline/internal/streamgen"
)

const defaultQ = 0.3

// Fig4 — maximum candidate-set and skyline sizes vs dimensionality (2..5)
// for the four standard datasets (paper Figure 4(a,b)).
func Fig4(s Scale, w io.Writer) {
	header(w, "Figure 4: space vs dimensionality (q=0.3)",
		"dataset", "d", "max|S_{N,q}|", "max|SKY_{N,q}|", "pct-of-window")
	for d := 2; d <= 5; d++ {
		for _, ds := range standardDatasets(d) {
			o := Run(Config{Dataset: ds, N: s.N, Window: s.Window, Thresholds: []float64{defaultQ}, Seed: 1})
			fmt.Fprintf(w, "%-16s%-16d%-16d%-16d%-16.2f%%\n",
				ds.Name, d, o.MaxCand, o.MaxSky, 100*float64(o.MaxCand)/float64(s.Window))
		}
	}
}

// Fig5 — maximum candidate-set and skyline sizes vs window size (paper
// Figure 5(a,b); anti-correlated 3d, uniform and normal probabilities).
func Fig5(s Scale, w io.Writer) {
	header(w, "Figure 5: space vs window size (anti 3d, q=0.3)",
		"probmodel", "window", "max|S_{N,q}|", "max|SKY_{N,q}|")
	for _, pm := range []streamgen.ProbModel{streamgen.UniformProb{}, streamgen.NormalProb{Mu: 0.5, Sd: 0.3}} {
		for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
			win := int(float64(s.Window) * frac)
			ds := anti(3)
			ds.Prob = pm
			o := Run(Config{Dataset: ds, N: 2 * win, Window: win, Thresholds: []float64{defaultQ}, Seed: 1})
			fmt.Fprintf(w, "%-16s%-16d%-16d%-16d\n", pm, win, o.MaxCand, o.MaxSky)
		}
	}
}

// Fig6 — space vs mean appearance probability Pμ (normal model, paper
// Figure 6(a,b)) for anti-correlated and independent 3d data.
func Fig6(s Scale, w io.Writer) {
	header(w, "Figure 6: space vs appearance probability Pmu (normal, 3d, q=0.3)",
		"dataset", "Pmu", "max|S_{N,q}|", "max|SKY_{N,q}|")
	for _, dist := range []streamgen.Distribution{streamgen.Anticorrelated, streamgen.Independent} {
		for _, mu := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			ds := Dataset{Name: dist.String(), Dims: 3, Dist: dist, Prob: streamgen.NormalProb{Mu: mu, Sd: 0.3}}
			o := Run(Config{Dataset: ds, N: s.N, Window: s.Window, Thresholds: []float64{defaultQ}, Seed: 1})
			fmt.Fprintf(w, "%-16s%-16.1f%-16d%-16d\n", dist, mu, o.MaxCand, o.MaxSky)
		}
	}
}

// Fig7 — space vs probability threshold q (paper Figure 7(a,b); anti 3d).
func Fig7(s Scale, w io.Writer) {
	header(w, "Figure 7: space vs probability threshold q (anti 3d, uniform)",
		"q", "max|S_{N,q}|", "max|SKY_{N,q}|")
	for _, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		o := Run(Config{Dataset: anti(3), N: s.N, Window: s.Window, Thresholds: []float64{q}, Seed: 1})
		fmt.Fprintf(w, "%-16.1f%-16d%-16d\n", q, o.MaxCand, o.MaxSky)
	}
}

// Fig8 — average per-element delay vs dimensionality for the standard
// datasets, plus the SSKY vs trivial-algorithm comparison the paper reports
// as "about 20 times slower" on anti 3d (paper Figure 8).
func Fig8(s Scale, w io.Writer) {
	header(w, "Figure 8: time vs dimensionality (q=0.3)",
		"dataset", "d", "us/elem", "elems/sec", "p50 us", "p99 us")
	for d := 2; d <= 5; d++ {
		for _, ds := range standardDatasets(d) {
			o := Run(Config{Dataset: ds, N: s.N, Window: s.Window, Thresholds: []float64{defaultQ}, Seed: 1})
			fmt.Fprintf(w, "%-16s%-16d%-16.2f%-16.0f%-16.2f%-16.2f\n",
				ds.Name, d, o.NsPerElem/1e3, o.ElemsPerSec, o.P50NsPerElem/1e3, o.P99NsPerElem/1e3)
		}
	}
	// SSKY vs the trivial candidate-scan algorithm at several window sizes:
	// the trivial algorithm is O(|S_{N,q}|) per element, so the gap widens
	// with the window (the paper reports ~20x at N = 1M).
	fmt.Fprintf(w, "\nSSKY vs trivial algorithm (anti 3d):\n")
	fmt.Fprintf(w, "%-16s%-16s%-16s%-16s%-16s\n", "window", "SSKY us/elem", "trivial us/elem", "speedup", "max|S|")
	for _, frac := range []float64{0.25, 0.5, 1.0} {
		win := int(float64(s.Window) * frac)
		n := 2 * win
		ssky := Run(Config{Dataset: anti(3), N: n, Window: win, Thresholds: []float64{defaultQ}, Seed: 1})
		triv := RunTrivial(Config{Dataset: anti(3), N: n, Window: win, Thresholds: []float64{defaultQ}, Seed: 1})
		fmt.Fprintf(w, "%-16d%-16.2f%-16.2f%-16.1f%-16d\n",
			win, ssky.NsPerElem/1e3, triv.NsPerElem/1e3, triv.NsPerElem/ssky.NsPerElem, ssky.MaxCand)
	}
	fmt.Fprintln(w, "(paper: ~20x at N = 1M)")
}

// Fig9 — average per-element delay vs window size (paper Figure 9).
func Fig9(s Scale, w io.Writer) {
	header(w, "Figure 9: time vs window size (anti 3d, q=0.3)",
		"window", "us/elem", "elems/sec")
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		win := int(float64(s.Window) * frac)
		o := Run(Config{Dataset: anti(3), N: 2 * win, Window: win, Thresholds: []float64{defaultQ}, Seed: 1})
		fmt.Fprintf(w, "%-16d%-16.2f%-16.0f\n", win, o.NsPerElem/1e3, o.ElemsPerSec)
	}
}

// Fig10 — average per-element delay vs mean appearance probability (paper
// Figure 10; anti 3d, normal probabilities).
func Fig10(s Scale, w io.Writer) {
	header(w, "Figure 10: time vs appearance probability Pmu (anti 3d, normal)",
		"Pmu", "us/elem", "elems/sec")
	for _, mu := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		ds := anti(3)
		ds.Prob = streamgen.NormalProb{Mu: mu, Sd: 0.3}
		o := Run(Config{Dataset: ds, N: s.N, Window: s.Window, Thresholds: []float64{defaultQ}, Seed: 1})
		fmt.Fprintf(w, "%-16.1f%-16.2f%-16.0f\n", mu, o.NsPerElem/1e3, o.ElemsPerSec)
	}
}

// Fig11 — average per-element delay vs probability threshold q (paper
// Figure 11; anti 3d).
func Fig11(s Scale, w io.Writer) {
	header(w, "Figure 11: time vs probability threshold q (anti 3d, uniform)",
		"q", "us/elem", "elems/sec")
	for _, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		o := Run(Config{Dataset: anti(3), N: s.N, Window: s.Window, Thresholds: []float64{q}, Seed: 1})
		fmt.Fprintf(w, "%-16.1f%-16.2f%-16.0f\n", q, o.NsPerElem/1e3, o.ElemsPerSec)
	}
}

// ThresholdSpread returns k thresholds evenly spread over [0.3, 1] as in
// the paper's MSKY evaluation.
func ThresholdSpread(k int) []float64 {
	if k == 1 {
		return []float64{defaultQ}
	}
	qs := make([]float64, k)
	for i := 0; i < k; i++ {
		qs[i] = defaultQ + (1-defaultQ)*float64(i)/float64(k-1)
	}
	qs[k-1] = 1 // exact, avoiding float drift at the top end
	return qs
}

// Fig12a — MSKY per-element cost vs the number of maintained thresholds k
// (paper Figure 12(a); anti 3d).
func Fig12a(s Scale, w io.Writer) {
	header(w, "Figure 12(a): MSKY per-element cost vs #thresholds k (anti 3d)",
		"k", "us/elem", "elems/sec")
	for k := 1; k <= 5; k++ {
		o := Run(Config{Dataset: anti(3), N: s.N, Window: s.Window, Thresholds: ThresholdSpread(k), Seed: 1})
		fmt.Fprintf(w, "%-16d%-16.2f%-16.0f\n", k, o.NsPerElem/1e3, o.ElemsPerSec)
	}
}

// Fig12b — ad-hoc QSKY query cost vs the number of maintained thresholds k
// (paper Figure 12(b)): after warming the window, 1000 ad-hoc queries with
// thresholds drawn across [q, 1] are answered and the average time
// reported. More maintained bands mean less filtering per query.
func Fig12b(s Scale, w io.Writer) {
	header(w, "Figure 12(b): QSKY avg ad-hoc query cost vs #thresholds k (anti 3d)",
		"k", "us/query")
	const queries = 3000
	for k := 1; k <= 5; k++ {
		eng, err := core.NewEngine(core.Options{
			Dims: 3, Window: s.Window, Thresholds: ThresholdSpread(k),
		})
		if err != nil {
			panic(err)
		}
		src := anti(3).stream(1)
		for i := 0; i < s.N; i++ {
			el := src.Next()
			if _, err := eng.Push(el.Point, el.P, el.TS); err != nil {
				panic(err)
			}
		}
		r := rand.New(rand.NewSource(7))
		qs := make([]float64, queries)
		for i := range qs {
			qs[i] = defaultQ + (1-defaultQ)*r.Float64()
		}
		start := time.Now()
		for _, q := range qs {
			if _, err := eng.Query(q); err != nil {
				panic(err)
			}
		}
		d := time.Since(start)
		fmt.Fprintf(w, "%-16d%-16.2f\n", k, float64(d.Microseconds())/queries)
	}
}

// Counters quantifies the paper's few-entries claim: per arriving element,
// how many entries the engine classified and how many elements it touched,
// against the candidate-set size a trivial scan would visit.
func Counters(s Scale, w io.Writer) {
	header(w, "Pruning effectiveness: engine visits per element vs |S_{N,q}| (q=0.3)",
		"dataset", "d", "max|S|", "nodes/elem", "items/elem", "lazy/elem")
	for _, d := range []int{2, 3, 4} {
		for _, ds := range standardDatasets(d) {
			eng, err := core.NewEngine(core.Options{Dims: ds.Dims, Window: s.Window, Thresholds: []float64{defaultQ}})
			if err != nil {
				panic(err)
			}
			src := ds.stream(1)
			for i := 0; i < s.N; i++ {
				el := src.Next()
				if _, err := eng.Push(el.Point, el.P, el.TS); err != nil {
					panic(err)
				}
			}
			c := eng.Counters()
			fmt.Fprintf(w, "%-16s%-16d%-16d%-16.1f%-16.1f%-16.2f\n",
				ds.Name, d, eng.MaxCandidateSize(),
				float64(c.NodesVisited)/float64(c.Pushes),
				float64(c.ItemsTouched)/float64(c.Pushes),
				float64(c.LazyApplied)/float64(c.Pushes))
		}
	}
}

// All runs every figure in order, plus the pruning-effectiveness table.
func All(s Scale, w io.Writer) {
	for _, f := range []func(Scale, io.Writer){Fig4, Fig5, Fig6, Fig7, Fig8, Fig9, Fig10, Fig11, Fig12a, Fig12b, Counters} {
		f(s, w)
	}
}
