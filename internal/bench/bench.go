// Package bench is the experiment harness that regenerates every figure of
// the paper's evaluation (Section V). Each FigN function runs the paper's
// parameter sweep and writes the corresponding series as aligned text rows;
// cmd/pskybench exposes them on the command line and the repository-root
// benchmarks reuse the same runners.
//
// The default scale is reduced from the paper's n = 2M, N = 1M to keep a
// full reproduction in the minutes range; pass a larger Scale to approach
// the paper's sizes. Shapes (who wins, growth directions, crossovers), not
// absolute timings, are the reproduction target.
package bench

import (
	"fmt"
	"io"
	"time"

	"pskyline/internal/core"
	"pskyline/internal/naive"
	"pskyline/internal/stats"
	"pskyline/internal/streamgen"
)

// Scale sets the stream length and window size of every experiment.
type Scale struct {
	N      int // stream length (paper: 2,000,000)
	Window int // sliding window size (paper: 1,000,000)
}

// DefaultScale finishes the full suite in a few minutes.
var DefaultScale = Scale{N: 200_000, Window: 100_000}

// PaperScale matches the paper's Table II defaults.
var PaperScale = Scale{N: 2_000_000, Window: 1_000_000}

// Dataset names a spatial distribution + probability model combination used
// in the figures.
type Dataset struct {
	Name  string
	Dims  int
	Dist  streamgen.Distribution
	Prob  streamgen.ProbModel
	Stock bool
}

func (d Dataset) stream(seed int64) streamgen.Stream {
	if d.Stock {
		return streamgen.NewStock(d.Prob, seed)
	}
	return streamgen.New(d.Dims, d.Dist, d.Prob, seed)
}

// Config is one experiment run.
type Config struct {
	Dataset    Dataset
	N          int
	Window     int
	Thresholds []float64
	Seed       int64
	MaxEntries int
}

// batchSize is the measurement granularity: like the paper, per-element
// delay is estimated from batches of 1K elements (a single push is too
// short to time).
const batchSize = 1000

// Outcome reports one run's measurements.
type Outcome struct {
	Elems       int
	MaxCand     int
	MaxSky      int
	Duration    time.Duration
	NsPerElem   float64
	ElemsPerSec float64
	// P50NsPerElem and P99NsPerElem are per-element delays of the median
	// and 99th-percentile 1K-element batches: tail behaviour matters for
	// the paper's "real time" claim.
	P50NsPerElem float64
	P99NsPerElem float64
	// Counters are the engine's work counters over the run.
	Counters core.Counters
}

// Run streams cfg.N elements through a fresh engine and measures wall time
// of the push loop, batch by batch.
func Run(cfg Config) Outcome {
	if cfg.Thresholds == nil {
		cfg.Thresholds = []float64{0.3}
	}
	eng, err := core.NewEngine(core.Options{
		Dims:       cfg.Dataset.Dims,
		Window:     cfg.Window,
		Thresholds: cfg.Thresholds,
		MaxEntries: cfg.MaxEntries,
	})
	if err != nil {
		panic(err)
	}
	src := cfg.Dataset.stream(cfg.Seed)
	// Pre-generate so the generator cost stays out of the timed loop.
	elems := make([]streamgen.Element, cfg.N)
	for i := range elems {
		elems[i] = src.Next()
	}
	var batches []float64
	var total time.Duration
	for off := 0; off < len(elems); off += batchSize {
		end := off + batchSize
		if end > len(elems) {
			end = len(elems)
		}
		start := time.Now()
		for _, el := range elems[off:end] {
			if _, err := eng.Push(el.Point, el.P, el.TS); err != nil {
				panic(err)
			}
		}
		d := time.Since(start)
		total += d
		batches = append(batches, float64(d.Nanoseconds())/float64(end-off))
	}
	return Outcome{
		Elems:        cfg.N,
		MaxCand:      eng.MaxCandidateSize(),
		MaxSky:       eng.MaxSkylineSize(),
		Duration:     total,
		NsPerElem:    float64(total.Nanoseconds()) / float64(cfg.N),
		ElemsPerSec:  float64(cfg.N) / total.Seconds(),
		P50NsPerElem: stats.Quantile(batches, 0.5),
		P99NsPerElem: stats.Quantile(batches, 0.99),
		Counters:     eng.Counters(),
	}
}

// RunTrivial streams cfg.N elements through the paper's trivial baseline
// (single threshold only).
func RunTrivial(cfg Config) Outcome {
	q := 0.3
	if len(cfg.Thresholds) > 0 {
		q = cfg.Thresholds[len(cfg.Thresholds)-1]
	}
	tr := naive.NewTrivial(cfg.Window, q)
	src := cfg.Dataset.stream(cfg.Seed)
	elems := make([]streamgen.Element, cfg.N)
	for i := range elems {
		elems[i] = src.Next()
	}
	start := time.Now()
	maxCand, maxSky := 0, 0
	for _, el := range elems {
		tr.Push(el.Point, el.P)
		if s := tr.Size(); s > maxCand {
			maxCand = s
		}
	}
	d := time.Since(start)
	maxSky = tr.SkylineSize()
	return Outcome{
		Elems:       cfg.N,
		MaxCand:     maxCand,
		MaxSky:      maxSky,
		Duration:    d,
		NsPerElem:   float64(d.Nanoseconds()) / float64(cfg.N),
		ElemsPerSec: float64(cfg.N) / d.Seconds(),
	}
}

// standardDatasets are the four dataset families of Figure 4/8. The stock
// stream is 2-dimensional by construction and is only reported at d = 2.
func standardDatasets(dims int) []Dataset {
	out := []Dataset{
		{Name: "Inde-Uniform", Dims: dims, Dist: streamgen.Independent, Prob: streamgen.UniformProb{}},
		{Name: "Anti-Uniform", Dims: dims, Dist: streamgen.Anticorrelated, Prob: streamgen.UniformProb{}},
		{Name: "Anti-Normal", Dims: dims, Dist: streamgen.Anticorrelated, Prob: streamgen.NormalProb{Mu: 0.5, Sd: 0.3}},
	}
	if dims == 2 {
		out = append(out, Dataset{Name: "Stock-Uniform", Dims: 2, Prob: streamgen.UniformProb{}, Stock: true})
	}
	return out
}

func anti(dims int) Dataset {
	return Dataset{Name: "Anti-Uniform", Dims: dims, Dist: streamgen.Anticorrelated, Prob: streamgen.UniformProb{}}
}

func header(w io.Writer, title string, cols ...string) {
	fmt.Fprintf(w, "\n# %s\n", title)
	for _, c := range cols {
		fmt.Fprintf(w, "%-16s", c)
	}
	fmt.Fprintln(w)
}
