// Ingestion benchmark harness behind `pskybench -ingest` and `make bench`.
//
// Unlike the figure runners (which reproduce the paper's plots), this file
// measures the writer-side hot path the way `go test -bench` would — ns/op,
// B/op, allocs/op per ingested element — and serializes the results as a
// machine-readable trajectory (BENCH_ingest.json) so performance changes are
// recorded across PRs instead of claimed in prose. Workloads cover
// steady-state Push across dimensionalities and thresholds, Monitor-level
// looped Push vs PushBatch (the batch-vs-sequential comparison), time-based
// expiry, and a mixed read/write load.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"pskyline"
	"pskyline/internal/core"
	"pskyline/internal/repl"
	"pskyline/internal/streamgen"
)

// IngestSchema identifies the BENCH_ingest.json format.
const IngestSchema = "pskyline-bench-ingest/v1"

// IngestWorkload is one measured workload of an ingest run. NsPerOp,
// BytesPerOp and AllocsPerOp are per ingested element (for the mixed
// workload, per operation, reads included).
type IngestWorkload struct {
	Name        string  `json:"workload"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	ElemsPerSec float64 `json:"elems_per_sec"`
}

// IngestRun is one full harness execution: a labelled point on the repo's
// performance trajectory.
type IngestRun struct {
	Label     string           `json:"label"`
	Date      string           `json:"date"`
	GoVersion string           `json:"go"`
	GOOS      string           `json:"goos"`
	GOARCH    string           `json:"goarch"`
	Window    int              `json:"window"`
	Workloads []IngestWorkload `json:"workloads"`
}

// IngestFile is the committed BENCH_ingest.json: an append-only list of
// runs, oldest first.
type IngestFile struct {
	Schema string      `json:"schema"`
	Runs   []IngestRun `json:"runs"`
}

// IngestConfig parameterizes the harness.
type IngestConfig struct {
	// Window is the sliding-window size of every workload (0 selects the
	// default of 10_000).
	Window int
	// Short shrinks the window for CI smoke runs.
	Short bool
	// Label names the run in the trajectory file.
	Label string
	// RecoverOnly runs only the recovery-reopen workloads (the
	// `make bench-recovery` smoke target).
	RecoverOnly bool
	// ReplOnly runs only the replication push workloads (the semi-sync
	// vs async A/B).
	ReplOnly bool
}

const ingestQ = 0.3

// ingestDataset is the harness's stress distribution: anti-correlated
// points keep skylines large and probe descents deep.
func ingestDataset(dims int) Dataset {
	return Dataset{
		Name: "anti-uniform", Dims: dims,
		Dist: streamgen.Anticorrelated, Prob: streamgen.UniformProb{},
	}
}

// result converts a testing.BenchmarkResult measured over per-element
// operations into a workload row.
func ingestResult(name string, r testing.BenchmarkResult) IngestWorkload {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	w := IngestWorkload{
		Name:        name,
		NsPerOp:     ns,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: float64(r.MemAllocs) / float64(r.N),
	}
	if ns > 0 {
		w.ElemsPerSec = 1e9 / ns
	}
	return w
}

// benchEnginePush measures steady-state core Push: the window is prefilled
// to 2×window before the timer starts, so every timed push also expires one
// element. Stage metrics are enabled — the recorded trajectory measures the
// instrumented configuration, the one production deployments run; the
// `nometrics` row re-measures the d=3 workload with timing disabled so the
// instrumentation overhead is an explicit same-machine diff, and the
// `blockoff` row re-measures it with the SoA block leaf scans disabled so
// the cache-layout win is one too.
func benchEnginePush(dims, window int, thresholds []float64, withMetrics, blockOff bool) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		opt := core.Options{Dims: dims, Window: window, Thresholds: thresholds, DisableBlockScan: blockOff}
		if withMetrics {
			opt.Metrics = new(core.Metrics)
		}
		eng, err := core.NewEngine(opt)
		if err != nil {
			b.Fatal(err)
		}
		src := ingestDataset(dims).stream(1)
		for i := 0; i < 2*window; i++ {
			el := src.Next()
			if _, err := eng.Push(el.Point, el.P, el.TS); err != nil {
				b.Fatal(err)
			}
		}
		elems := make([]streamgen.Element, b.N)
		for i := range elems {
			elems[i] = src.Next()
		}
		b.ResetTimer()
		for _, el := range elems {
			if _, err := eng.Push(el.Point, el.P, el.TS); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchMonitorPush measures Monitor-level element-wise Push (lock + ingest +
// top-k refresh + view publication per element) — the "looped Push" side of
// the batch comparison.
func benchMonitorPush(dims, window int) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		m, err := pskyline.NewMonitor(pskyline.Options{Dims: dims, Window: window, Thresholds: []float64{ingestQ}})
		if err != nil {
			b.Fatal(err)
		}
		elems := monitorElems(dims, 2*window+b.N)
		for _, e := range elems[:2*window] {
			if _, err := m.Push(e); err != nil {
				b.Fatal(err)
			}
		}
		elems = elems[2*window:]
		b.ResetTimer()
		for i := range elems {
			if _, err := m.Push(elems[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchMonitorPushBatch measures Monitor-level batched ingestion at the
// given batch size; ns/op is per element, not per batch.
func benchMonitorPushBatch(dims, window, batch int) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		m, err := pskyline.NewMonitor(pskyline.Options{Dims: dims, Window: window, Thresholds: []float64{ingestQ}})
		if err != nil {
			b.Fatal(err)
		}
		elems := monitorElems(dims, 2*window+b.N)
		for _, e := range elems[:2*window] {
			if _, err := m.Push(e); err != nil {
				b.Fatal(err)
			}
		}
		elems = elems[2*window:]
		b.ResetTimer()
		for len(elems) > 0 {
			n := batch
			if n > len(elems) {
				n = len(elems)
			}
			if _, err := m.PushBatch(elems[:n]); err != nil {
				b.Fatal(err)
			}
			elems = elems[n:]
		}
	})
}

// benchShardedPush measures batched ingestion through a ShardedMonitor in
// synchronous mode: route + per-shard sequence stamping + end-of-batch
// watermark ticks on every shard. Compared against the shards=1 row (and the
// pushbatch row, which is the unsharded Monitor on the same batch size) this
// isolates the sharding overhead; on a single-core machine no parallel
// speedup is available, so the spread between shards=1 and shards=4 is the
// price of the seam, not a throughput claim.
func benchShardedPush(dims, window, shards, batch int) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		s, err := pskyline.NewSharded(pskyline.ShardedOptions{
			Options: pskyline.Options{Dims: dims, Window: window, Thresholds: []float64{ingestQ}},
			Shards:  shards,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		elems := monitorElems(dims, 2*window+b.N)
		for head := elems[:2*window]; len(head) > 0; {
			n := batch
			if n > len(head) {
				n = len(head)
			}
			if _, err := s.PushBatch(head[:n]); err != nil {
				b.Fatal(err)
			}
			head = head[n:]
		}
		elems = elems[2*window:]
		b.ResetTimer()
		for len(elems) > 0 {
			n := batch
			if n > len(elems) {
				n = len(elems)
			}
			if _, err := s.PushBatch(elems[:n]); err != nil {
				b.Fatal(err)
			}
			elems = elems[n:]
		}
	})
}

// benchMonitorPushWAL measures element-wise Push with durability on: every
// push appends its element to the WAL and commits (one buffered write, plus
// an fsync under the "always" policy) before the engine applies it.
// Checkpoints are disabled so the row isolates the logging cost; the no-WAL
// baseline is the looped-push row.
func benchMonitorPushWAL(dims, window int, fsync string) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		dir, err := os.MkdirTemp("", "pskybench-wal-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		m, err := pskyline.Open(pskyline.Options{
			Dims: dims, Window: window, Thresholds: []float64{ingestQ},
			Durability: pskyline.Durability{Dir: dir, Fsync: fsync, CheckpointEvery: -1},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		elems := monitorElems(dims, 2*window+b.N)
		for _, e := range elems[:2*window] {
			if _, err := m.Push(e); err != nil {
				b.Fatal(err)
			}
		}
		elems = elems[2*window:]
		b.ResetTimer()
		for i := range elems {
			if _, err := m.Push(elems[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchReplPush measures element-wise Push on a replicating durable primary
// with one loopback follower attached. semiK=0 is the async control: the
// follower streams in the background and pushes never wait. semiK=1 blocks
// every push on the follower's ack, so ns/op is the full commit round trip —
// local apply + WAL append + stream-out + follower apply + ack — i.e. the
// same-machine price of the semi-sync guarantee, dominated by the server's
// tail-follow poll rather than by compute.
func benchReplPush(dims, window, semiK int) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		pdir, err := os.MkdirTemp("", "pskybench-repl-primary-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(pdir)
		fdir, err := os.MkdirTemp("", "pskybench-repl-replica-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(fdir)
		mkOpt := func(dir string) pskyline.Options {
			return pskyline.Options{
				Dims: dims, Window: window, Thresholds: []float64{ingestQ},
				Durability: pskyline.Durability{Dir: dir, Fsync: "never", CheckpointEvery: -1},
			}
		}
		m, err := pskyline.Open(mkOpt(pdir))
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		srv, err := repl.NewServer(m, "127.0.0.1:0", repl.ServerOptions{
			SemiSyncK: semiK, AckWait: 5 * time.Second,
			Heartbeat: 50 * time.Millisecond, Poll: time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		f, err := repl.StartFollower(mkOpt(fdir), repl.FollowerOptions{Addr: srv.Addr().String()})
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()

		elems := monitorElems(dims, 2*window+b.N)
		for head := elems[:2*window]; len(head) > 0; {
			n := 512
			if n > len(head) {
				n = len(head)
			}
			if _, err := m.PushBatch(head[:n]); err != nil {
				b.Fatal(err)
			}
			head = head[n:]
		}
		elems = elems[2*window:]
		if semiK > 0 {
			// Time the enforced guarantee, not the catch-up window: wait for
			// the upgrade to semisync before starting the clock.
			deadline := time.Now().Add(30 * time.Second)
			for srv.Status().SyncState != repl.SyncSemiSync.String() {
				if time.Now().After(deadline) {
					b.Fatalf("semisync upgrade never happened: %+v", srv.Status())
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
		b.ResetTimer()
		for i := range elems {
			if _, err := m.Push(elems[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchExpire measures pure expiry cost on a time-based window: each op
// expires exactly one element via ExpireOlderThan. The window is rebuilt
// with the timer stopped whenever it drains.
func benchExpire(dims, window int) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		src := ingestDataset(dims).stream(3)
		var eng *core.Engine
		var ts int64
		refill := func() {
			var err error
			eng, err = core.NewEngine(core.Options{Dims: dims, Window: 0, Thresholds: []float64{ingestQ}})
			if err != nil {
				b.Fatal(err)
			}
			ts = 0
			for i := 0; i < window; i++ {
				el := src.Next()
				if _, err := eng.Push(el.Point, el.P, ts); err != nil {
					b.Fatal(err)
				}
				ts++
			}
		}
		refill()
		cutoff := int64(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if cutoff == ts {
				b.StopTimer()
				refill()
				cutoff = 0
				b.StartTimer()
			}
			cutoff++
			eng.ExpireOlderThan(cutoff)
		}
	})
}

// benchMixed interleaves Monitor pushes with view reads (Skyline + TopK on
// every 8th op), the shape of a monitoring deployment.
func benchMixed(dims, window int) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		m, err := pskyline.NewMonitor(pskyline.Options{Dims: dims, Window: window, Thresholds: []float64{ingestQ}})
		if err != nil {
			b.Fatal(err)
		}
		elems := monitorElems(dims, 2*window+b.N)
		for _, e := range elems[:2*window] {
			if _, err := m.Push(e); err != nil {
				b.Fatal(err)
			}
		}
		elems = elems[2*window:]
		sink := 0
		b.ResetTimer()
		for i := range elems {
			if i%8 == 7 {
				sink += len(m.Skyline())
				if res, err := m.TopK(10, ingestQ); err == nil {
					sink += len(res)
				}
				continue
			}
			if _, err := m.Push(elems[i]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if sink < 0 {
			b.Fatal("impossible")
		}
	})
}

func monitorElems(dims, n int) []pskyline.Element {
	src := ingestDataset(dims).stream(2)
	out := make([]pskyline.Element, n)
	for i := range out {
		el := src.Next()
		out[i] = pskyline.Element{Point: el.Point, Prob: el.P, TS: el.TS}
	}
	return out
}

// Ingest runs every workload and returns the labelled run. Progress lines
// go to w as workloads finish.
func Ingest(cfg IngestConfig, w io.Writer) IngestRun {
	window := cfg.Window
	if window == 0 {
		window = 10_000
	}
	if cfg.Short {
		window = 2_000
	}
	run := IngestRun{
		Label:     cfg.Label,
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Window:    window,
	}
	add := func(name string, r testing.BenchmarkResult) {
		row := ingestResult(name, r)
		run.Workloads = append(run.Workloads, row)
		fmt.Fprintf(w, "  %-28s %10.0f ns/op %8d B/op %7.2f allocs/op %12.0f elems/s\n",
			row.Name, row.NsPerOp, row.BytesPerOp, row.AllocsPerOp, row.ElemsPerSec)
	}
	replRows := func() {
		add("replpush/d=3/async", benchReplPush(3, window, 0))
		add("replpush/d=3/semisync-k1", benchReplPush(3, window, 1))
	}
	if cfg.ReplOnly {
		replRows()
		return run
	}
	if !cfg.RecoverOnly {
		for _, d := range []int{2, 3, 5} {
			add(fmt.Sprintf("push/d=%d/q=%.1f", d, ingestQ), benchEnginePush(d, window, []float64{ingestQ}, true, false))
		}
		add("push/d=3/nometrics", benchEnginePush(3, window, []float64{ingestQ}, false, false))
		add("push/d=3/blockoff", benchEnginePush(3, window, []float64{ingestQ}, true, true))
		add("push/d=3/q=0.7", benchEnginePush(3, window, []float64{0.7}, true, false))
		add("push/d=3/k=3", benchEnginePush(3, window, []float64{0.7, 0.5, 0.3}, true, false))
		add("looped-push/d=3", benchMonitorPush(3, window))
		add("pushbatch/d=3/B=512", benchMonitorPushBatch(3, window, 512))
		add("shardpush/d=3/shards=1/B=512", benchShardedPush(3, window, 1, 512))
		add("shardpush/d=3/shards=4/B=512", benchShardedPush(3, window, 4, 512))
		add("walpush/d=3/fsync=never", benchMonitorPushWAL(3, window, "never"))
		add("walpush/d=3/fsync=interval", benchMonitorPushWAL(3, window, "interval"))
		replRows()
		add("expire/d=3", benchExpire(3, window))
		add("mixed/d=3", benchMixed(3, window))
	}
	// Recovery reopen: pskyline.Open against a directory whose checkpoint
	// holds a full steady-state window (clean shutdown, empty log tail), so
	// the rows isolate what recovery optimization can change — checkpoint
	// decode plus band-tree reconstruction. ns/op is per reopen, not per
	// element. The serial row pins the pre-optimization path (one WAL decode
	// worker, incremental tree inserts) as the same-machine A/B control for
	// the STR bulk-load + parallel decode recovery in the fast row.
	recWindow := 10 * window
	if dir, err := seedRecoverDir(recWindow); err != nil {
		fmt.Fprintf(w, "  recover: seed failed: %v\n", err)
	} else {
		add(fmt.Sprintf("recover/d=%d/w=%d/serial", recoverDims, recWindow), benchRecover(recWindow, dir, true))
		add(fmt.Sprintf("recover/d=%d/w=%d/fast", recoverDims, recWindow), benchRecover(recWindow, dir, false))
		os.RemoveAll(dir)
	}
	return run
}

// recoverDims is the dimensionality of the recovery workloads: d=5 keeps a
// large fraction of the window in the candidate set (anti-correlated data),
// so the checkpoint the reopen restores is big enough to measure.
const recoverDims = 5

// seedRecoverDir builds the durability directory the recover workloads
// reopen: 2×window pushes to reach steady state, then one checkpoint and a
// clean close — recovery restores the checkpoint and replays nothing.
func seedRecoverDir(window int) (string, error) {
	dir, err := os.MkdirTemp("", "pskybench-recover-")
	if err != nil {
		return "", err
	}
	m, err := pskyline.Open(recoverOptions(window, dir, false))
	if err != nil {
		os.RemoveAll(dir)
		return "", err
	}
	src := ingestDataset(recoverDims).stream(4)
	batch := make([]pskyline.Element, 0, 512)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		_, err := m.PushBatch(batch)
		batch = batch[:0]
		return err
	}
	for i := 0; i < 2*window; i++ {
		el := src.Next()
		batch = append(batch, pskyline.Element{Point: el.Point, Prob: el.P, TS: el.TS})
		if len(batch) == cap(batch) {
			if err := flush(); err != nil {
				os.RemoveAll(dir)
				return "", err
			}
		}
	}
	if err := flush(); err != nil {
		os.RemoveAll(dir)
		return "", err
	}
	if err := m.Checkpoint(); err != nil {
		os.RemoveAll(dir)
		return "", err
	}
	if err := m.Close(); err != nil {
		os.RemoveAll(dir)
		return "", err
	}
	// Release the seed run's heap before the reopen measurements: the
	// 2×window ingest leaves pool arenas and GC debt behind that would
	// otherwise be charged to whichever recover row runs first.
	runtime.GC()
	return dir, nil
}

func recoverOptions(window int, dir string, serial bool) pskyline.Options {
	opt := pskyline.Options{
		Dims: recoverDims, Window: window, Thresholds: []float64{ingestQ},
		Durability: pskyline.Durability{
			Dir: dir, Fsync: "never", CheckpointEvery: -1, SegmentBytes: 1 << 20,
		},
	}
	if serial {
		opt.Durability.RecoveryWorkers = 1
		opt.Durability.IncrementalRestore = true
	}
	return opt
}

// benchRecover measures one full pskyline.Open of the seeded directory per
// op (Close runs with the timer stopped).
func benchRecover(window int, dir string, serial bool) testing.BenchmarkResult {
	opt := recoverOptions(window, dir, serial)
	runtime.GC() // both rows start from the same heap state
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := pskyline.Open(opt)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := m.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
}

// WriteIngest appends run to the trajectory file at path (creating it when
// absent) and rewrites it atomically-enough for a dev tool (write temp,
// rename).
func WriteIngest(path string, run IngestRun) error {
	var file IngestFile
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &file); err != nil {
			return fmt.Errorf("bench: %s exists but is not a trajectory file: %w", path, err)
		}
		if file.Schema != IngestSchema {
			return fmt.Errorf("bench: %s has schema %q, want %q", path, file.Schema, IngestSchema)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("bench: %w", err)
	}
	file.Schema = IngestSchema
	file.Runs = append(file.Runs, run)
	raw, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	raw = append(raw, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	return nil
}
