package geom

import (
	"math/rand"
	"testing"
)

// buildLanes packs pts into a dim-major SoA block with the given stride
// (stride ≥ len(pts)); slack lane slots are filled with garbage to catch
// kernels that read past m.
func buildLanes(pts []Point, dims, stride int) []float64 {
	lanes := make([]float64, dims*stride)
	for i := range lanes {
		lanes[i] = -1e300 // garbage that would flip verdicts if read
	}
	for i, p := range pts {
		for d := 0; d < dims; d++ {
			lanes[d*stride+i] = p[d]
		}
	}
	return lanes
}

// TestBlockKernelsMatchPointKernels checks every block kernel bit-for-bit
// against the per-point kernels on dense, tie-heavy and equal inputs,
// including strides wider than the item count.
func TestBlockKernelsMatchPointKernels(t *testing.T) {
	for dims := 1; dims <= 7; dims++ {
		bk := BlockKernelsFor(dims)
		if bk.Dims != dims {
			t.Fatalf("BlockKernelsFor(%d).Dims = %d", dims, bk.Dims)
		}
		rng := rand.New(rand.NewSource(int64(900 + dims)))
		for iter := 0; iter < 4_000; iter++ {
			sample := densePoint
			if iter%2 == 1 {
				sample = tiePoint
			}
			m := rng.Intn(14) // 0..13 items, past DefaultMaxEntries
			pts := make([]Point, m)
			for i := range pts {
				pts[i] = sample(rng, dims)
			}
			p := sample(rng, dims)
			if m > 0 && iter%5 == 0 {
				p = pts[rng.Intn(m)].Clone() // force exact equality with a block item
			}
			stride := m + rng.Intn(4)
			if stride == 0 {
				stride = 1
			}
			lanes := buildLanes(pts, dims, stride)

			var wantDom, wantSub uint64
			for i, x := range pts {
				if p.Dominates(x) {
					wantDom |= 1 << uint(i)
				}
				if x.Dominates(p) {
					wantSub |= 1 << uint(i)
				}
			}
			if got := bk.DominatesBlock(p, lanes, stride, m); got != wantDom {
				t.Fatalf("d=%d m=%d DominatesBlock = %064b, want %064b (p=%v pts=%v)",
					dims, m, got, wantDom, p, pts)
			}
			if got := bk.BlockDominates(p, lanes, stride, m); got != wantSub {
				t.Fatalf("d=%d m=%d BlockDominates = %064b, want %064b (p=%v pts=%v)",
					dims, m, got, wantSub, p, pts)
			}
			gotDom, gotSub := bk.MutualBlock(p, lanes, stride, m)
			if gotDom != wantDom || gotSub != wantSub {
				t.Fatalf("d=%d m=%d MutualBlock = (%064b, %064b), want (%064b, %064b)",
					dims, m, gotDom, gotSub, wantDom, wantSub)
			}
		}
	}
}

// TestBlockKernelsExhaustive2D enumerates every pair drawn from a tiny
// coordinate alphabet in 2-d, the dimensionality where shared corners are
// densest, and checks a one-item block against the scalar kernels.
func TestBlockKernelsExhaustive2D(t *testing.T) {
	vals := []float64{0, 1, 2}
	bk := BlockKernelsFor(2)
	var p, x Point = make(Point, 2), make(Point, 2)
	lanes := make([]float64, 2)
	for _, p0 := range vals {
		for _, p1 := range vals {
			for _, x0 := range vals {
				for _, x1 := range vals {
					p[0], p[1] = p0, p1
					x[0], x[1] = x0, x1
					lanes[0], lanes[1] = x0, x1
					wantDom := b2u(p.Dominates(x))
					wantSub := b2u(x.Dominates(p))
					if got := bk.DominatesBlock(p, lanes, 1, 1); got != wantDom {
						t.Fatalf("DominatesBlock(%v, %v) = %d, want %d", p, x, got, wantDom)
					}
					if got := bk.BlockDominates(p, lanes, 1, 1); got != wantSub {
						t.Fatalf("BlockDominates(%v, %v) = %d, want %d", p, x, got, wantSub)
					}
					gd, gs := bk.MutualBlock(p, lanes, 1, 1)
					if gd != wantDom || gs != wantSub {
						t.Fatalf("MutualBlock(%v, %v) = (%d,%d), want (%d,%d)", p, x, gd, gs, wantDom, wantSub)
					}
				}
			}
		}
	}
}

func BenchmarkDominatesBlock3(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const m, stride = 12, 16
	pts := make([]Point, m)
	for i := range pts {
		pts[i] = densePoint(rng, 3)
	}
	lanes := buildLanes(pts, 3, stride)
	p := densePoint(rng, 3)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= DominatesBlock3(p, lanes, stride, m)
	}
	_ = sink
}

func BenchmarkDominatesLoop3(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const m = 12
	pts := make([]Point, m)
	for i := range pts {
		pts[i] = densePoint(rng, 3)
	}
	p := densePoint(rng, 3)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		var mask uint64
		for j, x := range pts {
			if Dominates3(p, x) {
				mask |= 1 << uint(j)
			}
		}
		sink ^= mask
	}
	_ = sink
}
