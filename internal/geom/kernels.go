package geom

// Dimension-specialized dominance kernels.
//
// The probe descents of the skyline engine spend most of their time in four
// primitives: point-point dominance (both directions), entry-vs-point
// classification, point-vs-entry classification and entry-vs-entry
// classification. The generic implementations loop over the dimensions with
// bounds checks and flag updates; for the low dimensionalities the paper
// evaluates (d = 2–5) a fully unrolled form with hoisted loads is
// substantially faster. A Kernels value bundles the four primitives for one
// dimensionality; KernelsFor selects the unrolled set for d = 2–5 and falls
// back to the generic loops otherwise.
//
// All kernels are pure comparison networks — no floating-point arithmetic —
// so the specialized and generic forms return identical results on every
// input, including ties and shared corners (verified exhaustively by the
// differential tests in kernels_test.go). Callers must pass points of
// exactly Dims coordinates and rectangles of Dims dimensions; unlike the
// generic Point.Dominates, the kernels do not tolerate mismatched lengths.
type Kernels struct {
	// Dims is the dimensionality the kernel set was built for.
	Dims int
	// Dominates reports p ≺ q.
	Dominates func(p, q Point) bool
	// Mutual decides both dominance directions between two points in one
	// pass (the specialized MutualDominance).
	Mutual func(a, b Point) (aDom, bDom bool)
	// ClassifyPoint computes Dominance(r, {p}) and Dominance({p}, r) in one
	// pass (the specialized ClassifyPoint).
	ClassifyPoint func(r Rect, p Point) (dom, sub Relation)
	// PointRect computes Dominance({p}, r) alone — the expiry-probe
	// classification.
	PointRect func(p Point, r Rect) Relation
	// RectRect computes Dominance(a, b).
	RectRect func(a, b Rect) Relation
}

// KernelsFor returns the dominance kernel set for the given dimensionality:
// unrolled kernels for d = 2–5, the generic loops otherwise.
func KernelsFor(dims int) *Kernels {
	switch dims {
	case 2:
		return &Kernels{Dims: 2, Dominates: Dominates2, Mutual: mutual2,
			ClassifyPoint: classifyPoint2, PointRect: pointRect2, RectRect: rectRect2}
	case 3:
		return &Kernels{Dims: 3, Dominates: Dominates3, Mutual: mutual3,
			ClassifyPoint: classifyPoint3, PointRect: pointRect3, RectRect: rectRect3}
	case 4:
		return &Kernels{Dims: 4, Dominates: Dominates4, Mutual: mutual4,
			ClassifyPoint: classifyPoint4, PointRect: pointRect4, RectRect: rectRect4}
	case 5:
		return &Kernels{Dims: 5, Dominates: Dominates5, Mutual: mutual5,
			ClassifyPoint: classifyPoint5, PointRect: pointRect5, RectRect: rectRect5}
	default:
		return &Kernels{Dims: dims, Dominates: dominatesGeneric, Mutual: MutualDominance,
			ClassifyPoint: ClassifyPoint, PointRect: PointRectRelation, RectRect: Dominance}
	}
}

func dominatesGeneric(p, q Point) bool { return p.Dominates(q) }

// PointRectRelation computes Dominance(PointRect(p), r) in a single pass:
// DomFull when p dominates r.Min, DomPartial when p only dominates r.Max,
// DomNone otherwise. It is the generic form of the expiry-probe kernel.
func PointRectRelation(p Point, r Rect) Relation {
	minLE, minLT := true, false // p ⪯ r.Min, strictly on some dim
	maxLE, maxLT := true, false // p ⪯ r.Max
	for i := range p {
		v, lo, hi := p[i], r.Min[i], r.Max[i]
		if v > lo {
			minLE = false
		} else if v < lo {
			minLT = true
		}
		if v > hi {
			maxLE = false
		} else if v < hi {
			maxLT = true
		}
		if !minLE && !maxLE {
			return DomNone
		}
	}
	if minLE && minLT {
		return DomFull
	}
	if maxLE && maxLT {
		return DomPartial
	}
	return DomNone
}

// Dominates2..Dominates5 are the dimension-specialized dominance tests,
// exported so hot loops that already know their dimensionality can call
// them directly (the d ≤ 3 variants inline); KernelsFor wires the same
// functions into the dispatch table.

// Dominates2 reports p ≺ q for 2-dimensional points.
func Dominates2(p, q Point) bool {
	_, _ = p[1], q[1] // bounds-check hint
	p0, p1 := p[0], p[1]
	q0, q1 := q[0], q[1]
	return p0 <= q0 && p1 <= q1 && (p0 < q0 || p1 < q1)
}

// Dominates3 reports p ≺ q for 3-dimensional points.
func Dominates3(p, q Point) bool {
	_, _ = p[2], q[2] // bounds-check hint
	p0, p1, p2 := p[0], p[1], p[2]
	q0, q1, q2 := q[0], q[1], q[2]
	return p0 <= q0 && p1 <= q1 && p2 <= q2 && (p0 < q0 || p1 < q1 || p2 < q2)
}

// Dominates4 reports p ≺ q for 4-dimensional points.
func Dominates4(p, q Point) bool {
	p0, p1, p2, p3 := p[0], p[1], p[2], p[3]
	q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
	return p0 <= q0 && p1 <= q1 && p2 <= q2 && p3 <= q3 &&
		(p0 < q0 || p1 < q1 || p2 < q2 || p3 < q3)
}

// Dominates5 reports p ≺ q for 5-dimensional points.
func Dominates5(p, q Point) bool {
	p0, p1, p2, p3, p4 := p[0], p[1], p[2], p[3], p[4]
	q0, q1, q2, q3, q4 := q[0], q[1], q[2], q[3], q[4]
	return p0 <= q0 && p1 <= q1 && p2 <= q2 && p3 <= q3 && p4 <= q4 &&
		(p0 < q0 || p1 < q1 || p2 < q2 || p3 < q3 || p4 < q4)
}

// The mutual kernels use aDom = aLE && !bLE (a ⪯ b everywhere and the points
// are not equal), mirroring MutualDominance's aLE && aLT.

func mutual2(a, b Point) (bool, bool) {
	a0, a1 := a[0], a[1]
	b0, b1 := b[0], b[1]
	aLE := a0 <= b0 && a1 <= b1
	bLE := b0 <= a0 && b1 <= a1
	return aLE && !bLE, bLE && !aLE
}

func mutual3(a, b Point) (bool, bool) {
	_, _ = a[2], b[2] // bounds-check hint
	a0, a1, a2 := a[0], a[1], a[2]
	b0, b1, b2 := b[0], b[1], b[2]
	aLE := a0 <= b0 && a1 <= b1 && a2 <= b2
	bLE := b0 <= a0 && b1 <= a1 && b2 <= a2
	return aLE && !bLE, bLE && !aLE
}

func mutual4(a, b Point) (bool, bool) {
	a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
	b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
	aLE := a0 <= b0 && a1 <= b1 && a2 <= b2 && a3 <= b3
	bLE := b0 <= a0 && b1 <= a1 && b2 <= a2 && b3 <= a3
	return aLE && !bLE, bLE && !aLE
}

func mutual5(a, b Point) (bool, bool) {
	a0, a1, a2, a3, a4 := a[0], a[1], a[2], a[3], a[4]
	b0, b1, b2, b3, b4 := b[0], b[1], b[2], b[3], b[4]
	aLE := a0 <= b0 && a1 <= b1 && a2 <= b2 && a3 <= b3 && a4 <= b4
	bLE := b0 <= a0 && b1 <= a1 && b2 <= a2 && b3 <= a3 && b4 <= a4
	return aLE && !bLE, bLE && !aLE
}

// The unrolled classifiers compare p against each rect corner only twice per
// dimension. With gLo = "p above r.Min somewhere", lLo = "p below r.Min
// somewhere" (and gHi/lHi against r.Max), the four corner relations reduce
// to:
//
//	r.Max ⪯ p (dom full):     !lHi, strict iff gHi
//	r.Min ⪯ p (dom partial):  !lLo, strict iff gLo
//	p ⪯ r.Min (sub full):     !gLo, strict iff lLo
//	p ⪯ r.Max (sub partial):  !gHi, strict iff lHi
//
// relFromAny folds them into the two Relations. The per-dimension flags are
// folded with integer or (b2u compiles to SETcc) instead of short-circuit
// chains: on shuffled stream data each comparison is close to a coin flip,
// so branch-free folding beats the predictor.
func relFromAny(gFull, lFull, gPart, lPart uint64) Relation {
	if gFull&^lFull != 0 {
		return DomFull
	}
	if gPart&^lPart != 0 {
		return DomPartial
	}
	return DomNone
}

// ClassifyPoint2 computes both dominance relations between a 2-d entry and a
// point in one pass — the unrolled ClassifyPoint, exported so descent loops
// that know their dimensionality avoid the indirect call through Kernels.
func ClassifyPoint2(r Rect, p Point) (dom, sub Relation) {
	_, _, _ = p[1], r.Min[1], r.Max[1] // bounds-check hint
	p0, p1 := p[0], p[1]
	lo0, lo1 := r.Min[0], r.Min[1]
	hi0, hi1 := r.Max[0], r.Max[1]
	gLo := b2u(p0 > lo0) | b2u(p1 > lo1)
	lLo := b2u(p0 < lo0) | b2u(p1 < lo1)
	gHi := b2u(p0 > hi0) | b2u(p1 > hi1)
	lHi := b2u(p0 < hi0) | b2u(p1 < hi1)
	return relFromAny(gHi, lHi, gLo, lLo), relFromAny(lLo, gLo, lHi, gHi)
}

// ClassifyPoint3 is the 3-d ClassifyPoint2.
func ClassifyPoint3(r Rect, p Point) (dom, sub Relation) {
	_, _, _ = p[2], r.Min[2], r.Max[2] // bounds-check hint
	p0, p1, p2 := p[0], p[1], p[2]
	lo0, lo1, lo2 := r.Min[0], r.Min[1], r.Min[2]
	hi0, hi1, hi2 := r.Max[0], r.Max[1], r.Max[2]
	gLo := b2u(p0 > lo0) | b2u(p1 > lo1) | b2u(p2 > lo2)
	lLo := b2u(p0 < lo0) | b2u(p1 < lo1) | b2u(p2 < lo2)
	gHi := b2u(p0 > hi0) | b2u(p1 > hi1) | b2u(p2 > hi2)
	lHi := b2u(p0 < hi0) | b2u(p1 < hi1) | b2u(p2 < hi2)
	return relFromAny(gHi, lHi, gLo, lLo), relFromAny(lLo, gLo, lHi, gHi)
}

func classifyPoint2(r Rect, p Point) (dom, sub Relation) { return ClassifyPoint2(r, p) }
func classifyPoint3(r Rect, p Point) (dom, sub Relation) { return ClassifyPoint3(r, p) }

func classifyPoint4(r Rect, p Point) (dom, sub Relation) {
	p0, p1, p2, p3 := p[0], p[1], p[2], p[3]
	lo0, lo1, lo2, lo3 := r.Min[0], r.Min[1], r.Min[2], r.Min[3]
	hi0, hi1, hi2, hi3 := r.Max[0], r.Max[1], r.Max[2], r.Max[3]
	gLo := b2u(p0 > lo0) | b2u(p1 > lo1) | b2u(p2 > lo2) | b2u(p3 > lo3)
	lLo := b2u(p0 < lo0) | b2u(p1 < lo1) | b2u(p2 < lo2) | b2u(p3 < lo3)
	gHi := b2u(p0 > hi0) | b2u(p1 > hi1) | b2u(p2 > hi2) | b2u(p3 > hi3)
	lHi := b2u(p0 < hi0) | b2u(p1 < hi1) | b2u(p2 < hi2) | b2u(p3 < hi3)
	return relFromAny(gHi, lHi, gLo, lLo), relFromAny(lLo, gLo, lHi, gHi)
}

func classifyPoint5(r Rect, p Point) (dom, sub Relation) {
	p0, p1, p2, p3, p4 := p[0], p[1], p[2], p[3], p[4]
	lo0, lo1, lo2, lo3, lo4 := r.Min[0], r.Min[1], r.Min[2], r.Min[3], r.Min[4]
	hi0, hi1, hi2, hi3, hi4 := r.Max[0], r.Max[1], r.Max[2], r.Max[3], r.Max[4]
	gLo := b2u(p0 > lo0) | b2u(p1 > lo1) | b2u(p2 > lo2) | b2u(p3 > lo3) | b2u(p4 > lo4)
	lLo := b2u(p0 < lo0) | b2u(p1 < lo1) | b2u(p2 < lo2) | b2u(p3 < lo3) | b2u(p4 < lo4)
	gHi := b2u(p0 > hi0) | b2u(p1 > hi1) | b2u(p2 > hi2) | b2u(p3 > hi3) | b2u(p4 > hi4)
	lHi := b2u(p0 < hi0) | b2u(p1 < hi1) | b2u(p2 < hi2) | b2u(p3 < hi3) | b2u(p4 < hi4)
	return relFromAny(gHi, lHi, gLo, lLo), relFromAny(lLo, gLo, lHi, gHi)
}

func pointRect2(p Point, r Rect) Relation {
	p0, p1 := p[0], p[1]
	lo0, lo1 := r.Min[0], r.Min[1]
	if p0 <= lo0 && p1 <= lo1 && (p0 < lo0 || p1 < lo1) {
		return DomFull
	}
	hi0, hi1 := r.Max[0], r.Max[1]
	if p0 <= hi0 && p1 <= hi1 && (p0 < hi0 || p1 < hi1) {
		return DomPartial
	}
	return DomNone
}

func pointRect3(p Point, r Rect) Relation {
	p0, p1, p2 := p[0], p[1], p[2]
	lo0, lo1, lo2 := r.Min[0], r.Min[1], r.Min[2]
	if p0 <= lo0 && p1 <= lo1 && p2 <= lo2 && (p0 < lo0 || p1 < lo1 || p2 < lo2) {
		return DomFull
	}
	hi0, hi1, hi2 := r.Max[0], r.Max[1], r.Max[2]
	if p0 <= hi0 && p1 <= hi1 && p2 <= hi2 && (p0 < hi0 || p1 < hi1 || p2 < hi2) {
		return DomPartial
	}
	return DomNone
}

func pointRect4(p Point, r Rect) Relation {
	p0, p1, p2, p3 := p[0], p[1], p[2], p[3]
	lo0, lo1, lo2, lo3 := r.Min[0], r.Min[1], r.Min[2], r.Min[3]
	if p0 <= lo0 && p1 <= lo1 && p2 <= lo2 && p3 <= lo3 &&
		(p0 < lo0 || p1 < lo1 || p2 < lo2 || p3 < lo3) {
		return DomFull
	}
	hi0, hi1, hi2, hi3 := r.Max[0], r.Max[1], r.Max[2], r.Max[3]
	if p0 <= hi0 && p1 <= hi1 && p2 <= hi2 && p3 <= hi3 &&
		(p0 < hi0 || p1 < hi1 || p2 < hi2 || p3 < hi3) {
		return DomPartial
	}
	return DomNone
}

func pointRect5(p Point, r Rect) Relation {
	p0, p1, p2, p3, p4 := p[0], p[1], p[2], p[3], p[4]
	lo0, lo1, lo2, lo3, lo4 := r.Min[0], r.Min[1], r.Min[2], r.Min[3], r.Min[4]
	if p0 <= lo0 && p1 <= lo1 && p2 <= lo2 && p3 <= lo3 && p4 <= lo4 &&
		(p0 < lo0 || p1 < lo1 || p2 < lo2 || p3 < lo3 || p4 < lo4) {
		return DomFull
	}
	hi0, hi1, hi2, hi3, hi4 := r.Max[0], r.Max[1], r.Max[2], r.Max[3], r.Max[4]
	if p0 <= hi0 && p1 <= hi1 && p2 <= hi2 && p3 <= hi3 && p4 <= hi4 &&
		(p0 < hi0 || p1 < hi1 || p2 < hi2 || p3 < hi3 || p4 < hi4) {
		return DomPartial
	}
	return DomNone
}

func rectRect2(a, b Rect) Relation {
	if Dominates2(a.Max, b.Min) {
		return DomFull
	}
	if Dominates2(a.Min, b.Max) {
		return DomPartial
	}
	return DomNone
}

func rectRect3(a, b Rect) Relation {
	if Dominates3(a.Max, b.Min) {
		return DomFull
	}
	if Dominates3(a.Min, b.Max) {
		return DomPartial
	}
	return DomNone
}

func rectRect4(a, b Rect) Relation {
	if Dominates4(a.Max, b.Min) {
		return DomFull
	}
	if Dominates4(a.Min, b.Max) {
		return DomPartial
	}
	return DomNone
}

func rectRect5(a, b Rect) Relation {
	if Dominates5(a.Max, b.Min) {
		return DomFull
	}
	if Dominates5(a.Min, b.Max) {
		return DomPartial
	}
	return DomNone
}
