package geom

import (
	"math/rand"
	"testing"
)

// tiePoint draws coordinates from a tiny alphabet so ties, shared corners
// and exact equality occur constantly — the cases where a sloppy kernel
// would diverge from the generic loops.
func tiePoint(rng *rand.Rand, dims int) Point {
	p := make(Point, dims)
	for i := range p {
		p[i] = float64(rng.Intn(3))
	}
	return p
}

func densePoint(rng *rand.Rand, dims int) Point {
	p := make(Point, dims)
	for i := range p {
		p[i] = rng.Float64()
	}
	return p
}

// randRect builds a valid rectangle (Min ⪯ Max on every dimension) from two
// sampled corners.
func randRect(rng *rand.Rand, dims int, sample func(*rand.Rand, int) Point) Rect {
	a, b := sample(rng, dims), sample(rng, dims)
	r := Rect{Min: make(Point, dims), Max: make(Point, dims)}
	for i := 0; i < dims; i++ {
		r.Min[i], r.Max[i] = a[i], b[i]
		if r.Min[i] > r.Max[i] {
			r.Min[i], r.Max[i] = r.Max[i], r.Min[i]
		}
	}
	return r
}

func TestKernelsMatchGeneric(t *testing.T) {
	for dims := 1; dims <= 7; dims++ {
		k := KernelsFor(dims)
		if k.Dims != dims {
			t.Fatalf("KernelsFor(%d).Dims = %d", dims, k.Dims)
		}
		rng := rand.New(rand.NewSource(int64(100 + dims)))
		for iter := 0; iter < 20_000; iter++ {
			sample := densePoint
			if iter%2 == 1 {
				sample = tiePoint
			}
			p, q := sample(rng, dims), sample(rng, dims)
			if iter%7 == 0 {
				q = p.Clone() // force exact equality
			}
			if got, want := k.Dominates(p, q), p.Dominates(q); got != want {
				t.Fatalf("d=%d Dominates(%v, %v) = %v, want %v", dims, p, q, got, want)
			}
			gotA, gotB := k.Mutual(p, q)
			wantA, wantB := MutualDominance(p, q)
			if gotA != wantA || gotB != wantB {
				t.Fatalf("d=%d Mutual(%v, %v) = %v,%v want %v,%v", dims, p, q, gotA, gotB, wantA, wantB)
			}

			r := randRect(rng, dims, sample)
			if iter%11 == 0 {
				r = PointRect(p).Clone() // degenerate rect sharing p's corner
			}
			gotDom, gotSub := k.ClassifyPoint(r, p)
			wantDom, wantSub := ClassifyPoint(r, p)
			if gotDom != wantDom || gotSub != wantSub {
				t.Fatalf("d=%d ClassifyPoint(%v, %v) = %v,%v want %v,%v",
					dims, r, p, gotDom, gotSub, wantDom, wantSub)
			}
			if got, want := k.PointRect(p, r), Dominance(PointRect(p), r); got != want {
				t.Fatalf("d=%d PointRect(%v, %v) = %v, want %v", dims, p, r, got, want)
			}
			if got, want := PointRectRelation(p, r), Dominance(PointRect(p), r); got != want {
				t.Fatalf("d=%d PointRectRelation(%v, %v) = %v, want %v", dims, p, r, got, want)
			}

			s := randRect(rng, dims, sample)
			if got, want := k.RectRect(r, s), Dominance(r, s); got != want {
				t.Fatalf("d=%d RectRect(%v, %v) = %v, want %v", dims, r, s, got, want)
			}
		}
	}
}

// TestKernelsExhaustive2D sweeps every 2-d point/rect combination over a
// small grid: complete coverage of the tie structure for the smallest
// specialized dimensionality.
func TestKernelsExhaustive2D(t *testing.T) {
	k := KernelsFor(2)
	vals := []float64{0, 1, 2}
	var pts []Point
	for _, x := range vals {
		for _, y := range vals {
			pts = append(pts, Point{x, y})
		}
	}
	var rects []Rect
	for _, lo := range pts {
		for _, hi := range pts {
			if lo[0] <= hi[0] && lo[1] <= hi[1] {
				rects = append(rects, Rect{Min: lo, Max: hi})
			}
		}
	}
	for _, p := range pts {
		for _, q := range pts {
			if got, want := k.Dominates(p, q), p.Dominates(q); got != want {
				t.Fatalf("Dominates(%v, %v) = %v, want %v", p, q, got, want)
			}
			gotA, gotB := k.Mutual(p, q)
			wantA, wantB := MutualDominance(p, q)
			if gotA != wantA || gotB != wantB {
				t.Fatalf("Mutual(%v, %v) = %v,%v want %v,%v", p, q, gotA, gotB, wantA, wantB)
			}
		}
		for _, r := range rects {
			gotDom, gotSub := k.ClassifyPoint(r, p)
			wantDom, wantSub := ClassifyPoint(r, p)
			if gotDom != wantDom || gotSub != wantSub {
				t.Fatalf("ClassifyPoint(%v, %v) = %v,%v want %v,%v", r, p, gotDom, gotSub, wantDom, wantSub)
			}
			if got, want := k.PointRect(p, r), Dominance(PointRect(p), r); got != want {
				t.Fatalf("PointRect(%v, %v) = %v, want %v", p, r, got, want)
			}
		}
	}
	for _, a := range rects {
		for _, b := range rects {
			if got, want := k.RectRect(a, b), Dominance(a, b); got != want {
				t.Fatalf("RectRect(%v, %v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func benchPoints(dims, n int) []Point {
	rng := rand.New(rand.NewSource(7))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = densePoint(rng, dims)
	}
	return pts
}

func BenchmarkMutualGeneric(b *testing.B) {
	pts := benchPoints(3, 1024)
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		a, c := pts[i%1024], pts[(i*31+7)%1024]
		x, y := MutualDominance(a, c)
		if x {
			sink++
		}
		if y {
			sink--
		}
	}
	if sink > b.N {
		b.Fatal("impossible")
	}
}

func BenchmarkMutualKernel3(b *testing.B) {
	k := KernelsFor(3)
	pts := benchPoints(3, 1024)
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		a, c := pts[i%1024], pts[(i*31+7)%1024]
		x, y := k.Mutual(a, c)
		if x {
			sink++
		}
		if y {
			sink--
		}
	}
	if sink > b.N {
		b.Fatal("impossible")
	}
}

func BenchmarkClassifyPointGeneric(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	rects := make([]Rect, 256)
	for i := range rects {
		rects[i] = randRect(rng, 3, densePoint)
	}
	pts := benchPoints(3, 1024)
	b.ResetTimer()
	sink := Relation(0)
	for i := 0; i < b.N; i++ {
		d, s := ClassifyPoint(rects[i%256], pts[i%1024])
		sink += d + s
	}
	_ = sink
}

func BenchmarkClassifyPointKernel3(b *testing.B) {
	k := KernelsFor(3)
	rng := rand.New(rand.NewSource(9))
	rects := make([]Rect, 256)
	for i := range rects {
		rects[i] = randRect(rng, 3, densePoint)
	}
	pts := benchPoints(3, 1024)
	b.ResetTimer()
	sink := Relation(0)
	for i := 0; i < b.N; i++ {
		d, s := k.ClassifyPoint(rects[i%256], pts[i%1024])
		sink += d + s
	}
	_ = sink
}
