package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominatesBasics(t *testing.T) {
	cases := []struct {
		p, q Point
		want bool
	}{
		{Point{1, 2}, Point{2, 3}, true},
		{Point{1, 2}, Point{1, 3}, true},  // tie on one dim, strict on other
		{Point{1, 2}, Point{1, 2}, false}, // equal points
		{Point{2, 1}, Point{1, 2}, false}, // incomparable
		{Point{1, 2}, Point{0, 3}, false},
		{Point{1}, Point{2}, true},
		{Point{1, 2}, Point{1, 2, 3}, false}, // dim mismatch
	}
	for _, c := range cases {
		if got := c.p.Dominates(c.q); got != c.want {
			t.Errorf("%v ≺ %v = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func randPoint(r *rand.Rand, dims int) Point {
	p := make(Point, dims)
	for i := range p {
		p[i] = float64(r.Intn(6)) // small grid provokes ties
	}
	return p
}

// TestQuickDominancePartialOrder — irreflexive, antisymmetric, transitive.
func TestQuickDominancePartialOrder(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		d := 1 + r.Intn(4)
		p, q, s := randPoint(r, d), randPoint(r, d), randPoint(r, d)
		if p.Dominates(p) {
			t.Fatalf("irreflexivity violated at %v", p)
		}
		if p.Dominates(q) && q.Dominates(p) {
			t.Fatalf("antisymmetry violated at %v, %v", p, q)
		}
		if p.Dominates(q) && q.Dominates(s) && !p.Dominates(s) {
			t.Fatalf("transitivity violated at %v ≺ %v ≺ %v", p, q, s)
		}
	}
}

func TestRectOps(t *testing.T) {
	r := EmptyRect(2)
	if !r.IsEmpty() {
		t.Fatal("EmptyRect not empty")
	}
	r.ExtendPoint(Point{1, 4})
	r.ExtendPoint(Point{3, 2})
	if r.IsEmpty() {
		t.Fatal("extended rect still empty")
	}
	if !r.Min.Equal(Point{1, 2}) || !r.Max.Equal(Point{3, 4}) {
		t.Fatalf("rect = %v..%v", r.Min, r.Max)
	}
	if a := r.Area(); a != 4 {
		t.Fatalf("area = %v, want 4", a)
	}
	if m := r.Margin(); m != 4 {
		t.Fatalf("margin = %v, want 4", m)
	}
	if !r.Contains(Point{2, 3}) || r.Contains(Point{0, 3}) {
		t.Fatal("Contains wrong")
	}
	s := Rect{Min: Point{2, 0}, Max: Point{5, 1}}
	u := Union(r, s)
	if !u.Min.Equal(Point{1, 0}) || !u.Max.Equal(Point{5, 4}) {
		t.Fatalf("union = %v..%v", u.Min, u.Max)
	}
	if got, want := UnionArea(r, s), u.Area(); got != want {
		t.Fatalf("UnionArea = %v, want %v", got, want)
	}
	if got := r.Enlargement(s); got != u.Area()-r.Area() {
		t.Fatalf("enlargement = %v", got)
	}
	if !u.ContainsRect(r) || !u.ContainsRect(s) || r.ContainsRect(u) {
		t.Fatal("ContainsRect wrong")
	}
}

func TestDominanceRelations(t *testing.T) {
	// The Figure 2 configuration (smaller is better): E spans [4,6]x[4,6].
	e := Rect{Min: Point{4, 4}, Max: Point{6, 6}}
	e3 := Rect{Min: Point{7, 7}, Max: Point{8, 8}}   // fully dominated by E
	e1 := Rect{Min: Point{7, 1}, Max: Point{9, 5}}   // partially dominated, cannot dominate E
	e2 := Rect{Min: Point{1, 5}, Max: Point{5, 9}}   // partially dominates E and vice versa
	far := Rect{Min: Point{0, 9}, Max: Point{1, 10}} // incomparable-ish

	if got := Dominance(e, e3); got != DomFull {
		t.Errorf("E vs E3 = %v, want full", got)
	}
	if got := Dominance(e, e1); got != DomPartial {
		t.Errorf("E vs E1 = %v, want partial", got)
	}
	if got := Dominance(e1, e); got != DomNone {
		t.Errorf("E1 vs E = %v, want none", got)
	}
	if got := Dominance(e, e2); got != DomPartial {
		t.Errorf("E vs E2 = %v, want partial", got)
	}
	if got := Dominance(e2, e); got != DomPartial {
		t.Errorf("E2 vs E = %v, want partial", got)
	}
	if got := Dominance(e3, e); got != DomNone {
		t.Errorf("E3 vs E = %v, want none", got)
	}
	_ = far
}

// TestQuickDominanceSoundness — Theorem 1 at entry level: DomFull means
// every contained point pair dominates; DomNone means no pair does. Rects
// are built as MBBs of random point sets and the relation is cross-checked
// against exhaustive point pairs.
func TestQuickDominanceSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 4000; iter++ {
		d := 1 + r.Intn(3)
		mkSet := func() ([]Point, Rect) {
			n := 1 + r.Intn(4)
			rect := EmptyRect(d)
			pts := make([]Point, n)
			for i := range pts {
				pts[i] = randPoint(r, d)
				rect.ExtendPoint(pts[i])
			}
			return pts, rect
		}
		as, ra := mkSet()
		bs, rb := mkSet()
		rel := Dominance(ra, rb)
		any, all := false, true
		for _, a := range as {
			for _, b := range bs {
				if a.Dominates(b) {
					any = true
				} else {
					all = false
				}
			}
		}
		switch rel {
		case DomFull:
			if !all {
				t.Fatalf("DomFull but some pair does not dominate: %v vs %v", as, bs)
			}
		case DomNone:
			if any {
				t.Fatalf("DomNone but some pair dominates: %v vs %v", as, bs)
			}
		}
	}
}

// TestQuickClassifyPointAgreement — the fused hot-path classification agrees
// with the two Dominance calls it replaces.
func TestQuickClassifyPointAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for iter := 0; iter < 20000; iter++ {
		d := 1 + r.Intn(4)
		rect := EmptyRect(d)
		for i, n := 0, 1+r.Intn(4); i < n; i++ {
			rect.ExtendPoint(randPoint(r, d))
		}
		p := randPoint(r, d)
		dom, sub := ClassifyPoint(rect, p)
		wantDom := Dominance(rect, PointRect(p))
		wantSub := Dominance(PointRect(p), rect)
		if dom != wantDom || sub != wantSub {
			t.Fatalf("ClassifyPoint(%v..%v, %v) = (%v,%v), want (%v,%v)",
				rect.Min, rect.Max, p, dom, sub, wantDom, wantSub)
		}
	}
}

// TestQuickMutualDominanceAgreement — the fused per-item check agrees with
// two Dominates calls.
func TestQuickMutualDominanceAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 30000; i++ {
		d := 1 + r.Intn(4)
		a, b := randPoint(r, d), randPoint(r, d)
		aDom, bDom := MutualDominance(a, b)
		if aDom != a.Dominates(b) || bDom != b.Dominates(a) {
			t.Fatalf("MutualDominance(%v, %v) = (%v,%v), want (%v,%v)",
				a, b, aDom, bDom, a.Dominates(b), b.Dominates(a))
		}
	}
}

func TestAuxiliaries(t *testing.T) {
	p := Point{1, 2}
	q := p.Clone()
	q[0] = 9
	if p[0] != 1 {
		t.Fatal("Clone aliases")
	}
	if !p.DominatesOrEqual(Point{1, 2}) || p.DominatesOrEqual(Point{0, 2}) {
		t.Fatal("DominatesOrEqual wrong")
	}
	if p.String() != "(1,2)" {
		t.Fatalf("Point.String = %q", p.String())
	}
	r := Rect{Min: Point{0, 0}, Max: Point{2, 2}}
	rc := r.Clone()
	rc.Min[0] = 5
	if r.Min[0] != 0 {
		t.Fatal("Rect.Clone aliases")
	}
	if got := DominanceRectPoint(r, Point{3, 3}); got != DomFull {
		t.Fatalf("rect vs point = %v", got)
	}
	if got := DominancePointRect(Point{-1, -1}, r); got != DomFull {
		t.Fatalf("point vs rect = %v", got)
	}
	var empty Rect
	if !empty.IsEmpty() {
		t.Fatal("zero rect must be empty")
	}
	rr := r.Clone()
	rr.Reset()
	if !rr.IsEmpty() {
		t.Fatal("Reset did not empty the rect")
	}
}

func TestRelationString(t *testing.T) {
	if DomFull.String() != "full" || DomPartial.String() != "partial" || DomNone.String() != "none" {
		t.Fatal("Relation.String wrong")
	}
}

func TestQuickUnionAreaMatchesUnion(t *testing.T) {
	err := quick.Check(func(a, b, c, dd [2]float64) bool {
		r := Rect{Min: Point{min2(a[0], a[1]), min2(b[0], b[1])}, Max: Point{max2(a[0], a[1]), max2(b[0], b[1])}}
		s := Rect{Min: Point{min2(c[0], c[1]), min2(dd[0], dd[1])}, Max: Point{max2(c[0], c[1]), max2(dd[0], dd[1])}}
		return UnionArea(r, s) == Union(r, s).Area()
	}, &quick.Config{MaxCount: 3000})
	if err != nil {
		t.Fatal(err)
	}
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
