// Package geom provides the d-dimensional points, minimum bounding boxes and
// dominance relations (Section II-B of the paper) underlying the aggregate
// R-trees.
//
// Smaller coordinates are better: u dominates v (u ≺ v) when u is no worse
// than v on every dimension and strictly better on at least one.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a location in d-dimensional space. Points are immutable once
// handed to the tree packages.
type Point []float64

// Clone returns a copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q are identical.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Dominates reports whether p ≺ q: p.i ≤ q.i on every dimension and
// p.j < q.j on at least one. Points of mismatched dimensionality never
// dominate each other.
func (p Point) Dominates(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	strict := false
	for i := range p {
		switch {
		case p[i] > q[i]:
			return false
		case p[i] < q[i]:
			strict = true
		}
	}
	return strict
}

// MutualDominance decides both dominance directions between two points in
// one pass: aDom reports a ≺ b and bDom reports b ≺ a (at most one can be
// true). It is the per-element hot path of the probe descents.
func MutualDominance(a, b Point) (aDom, bDom bool) {
	aLE, aLT := true, false
	bLE, bLT := true, false
	for i := range a {
		av, bv := a[i], b[i]
		if av > bv {
			aLE = false
			bLT = true
		} else if av < bv {
			bLE = false
			aLT = true
		}
		if !aLE && !bLE {
			return false, false
		}
	}
	return aLE && aLT, bLE && bLT
}

// DominatesOrEqual reports whether p.i ≤ q.i on every dimension.
func (p Point) DominatesOrEqual(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] > q[i] {
			return false
		}
	}
	return true
}

func (p Point) String() string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = fmt.Sprintf("%g", v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Rect is an axis-aligned minimum bounding box. Min is the lower-left corner
// (E.min in the paper) and Max the upper-right corner (E.max).
type Rect struct {
	Min, Max Point
}

// PointRect returns the degenerate rectangle covering exactly p.
func PointRect(p Point) Rect { return Rect{Min: p, Max: p} }

// EmptyRect returns a rectangle that unions as the identity: Min at +Inf and
// Max at −Inf on every dimension.
func EmptyRect(dims int) Rect {
	r := Rect{Min: make(Point, dims), Max: make(Point, dims)}
	for i := 0; i < dims; i++ {
		r.Min[i] = math.Inf(1)
		r.Max[i] = math.Inf(-1)
	}
	return r
}

// IsEmpty reports whether r covers no point.
func (r Rect) IsEmpty() bool {
	for i := range r.Min {
		if r.Min[i] > r.Max[i] {
			return true
		}
	}
	return len(r.Min) == 0
}

// Dims returns the dimensionality of r.
func (r Rect) Dims() int { return len(r.Min) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect { return Rect{Min: r.Min.Clone(), Max: r.Max.Clone()} }

// Contains reports whether p lies inside r (inclusive).
func (r Rect) Contains(p Point) bool {
	for i := range p {
		if p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return r.Contains(s.Min) && r.Contains(s.Max)
}

// ExtendPoint grows r in place to cover p.
func (r *Rect) ExtendPoint(p Point) {
	for i := range p {
		if p[i] < r.Min[i] {
			r.Min[i] = p[i]
		}
		if p[i] > r.Max[i] {
			r.Max[i] = p[i]
		}
	}
}

// ExtendRect grows r in place to cover s.
func (r *Rect) ExtendRect(s Rect) {
	r.ExtendPoint(s.Min)
	r.ExtendPoint(s.Max)
}

// Union returns the smallest rectangle covering both r and s.
func Union(r, s Rect) Rect {
	u := r.Clone()
	u.ExtendRect(s)
	return u
}

// Area returns the d-dimensional volume of r; 0 for degenerate boxes.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Min {
		a *= r.Max[i] - r.Min[i]
	}
	return a
}

// UnionArea returns Union(r, s).Area() without allocating.
func UnionArea(r, s Rect) float64 {
	a := 1.0
	for i := range r.Min {
		lo, hi := r.Min[i], r.Max[i]
		if s.Min[i] < lo {
			lo = s.Min[i]
		}
		if s.Max[i] > hi {
			hi = s.Max[i]
		}
		a *= hi - lo
	}
	return a
}

// Reset makes r empty in place (Min at +Inf, Max at −Inf).
func (r *Rect) Reset() {
	for i := range r.Min {
		r.Min[i] = math.Inf(1)
		r.Max[i] = math.Inf(-1)
	}
}

// Margin returns the sum of side lengths of r.
func (r Rect) Margin() float64 {
	m := 0.0
	for i := range r.Min {
		m += r.Max[i] - r.Min[i]
	}
	return m
}

// Enlargement returns the increase in area needed for r to cover s.
func (r Rect) Enlargement(s Rect) float64 {
	return UnionArea(r, s) - r.Area()
}

// EnlargeArea returns r.Enlargement(s) and r.Area() from a single pass over
// the coordinates. Both products accumulate in the same dimension order as
// the two-call form, so the results are bit-identical to it.
func EnlargeArea(r, s Rect) (enl, area float64) {
	u, a := 1.0, 1.0
	for i := range r.Min {
		lo, hi := r.Min[i], r.Max[i]
		a *= hi - lo
		if s.Min[i] < lo {
			lo = s.Min[i]
		}
		if s.Max[i] > hi {
			hi = s.Max[i]
		}
		u *= hi - lo
	}
	return u - a, a
}

// Relation classifies how one entry dominates another (Figure 2 of the
// paper).
type Relation int8

const (
	// DomNone: no element of the first entry can dominate any element of
	// the second (E ≺_not E').
	DomNone Relation = iota
	// DomPartial: some elements of the first entry may dominate some
	// elements of the second (E ≺_partial E'); the relation must be
	// resolved at a finer level.
	DomPartial
	// DomFull: every element of the first entry dominates every element of
	// the second (E ≺ E').
	DomFull
)

func (r Relation) String() string {
	switch r {
	case DomNone:
		return "none"
	case DomPartial:
		return "partial"
	case DomFull:
		return "full"
	default:
		return fmt.Sprintf("Relation(%d)", int8(r))
	}
}

// Dominance classifies how entry a relates to entry b.
//
// It is deliberately conservative at shared corners: the paper's refinement
// (E.max = E'.min dominates when no element sits on the corner) needs
// element-level knowledge, so such cases are reported as DomPartial and the
// caller descends to resolve them exactly at the leaves. Conservatism never
// affects correctness, only the number of entries visited.
//
// Soundness (Theorem 1): DomFull implies every element under a dominates
// every element under b; DomNone implies no element under a dominates any
// element under b.
func Dominance(a, b Rect) Relation {
	if a.Max.Dominates(b.Min) {
		return DomFull
	}
	if a.Min.Dominates(b.Max) {
		return DomPartial
	}
	return DomNone
}

// DominancePointRect classifies how point p relates to entry b.
func DominancePointRect(p Point, b Rect) Relation {
	return Dominance(PointRect(p), b)
}

// ClassifyPoint computes both dominance relations between an entry r and a
// point p in one pass: dom = Dominance(r, {p}) (can elements of r dominate
// p?) and sub = Dominance({p}, r) (can p dominate elements of r?). It is
// the probe hot path of the skyline engine.
func ClassifyPoint(r Rect, p Point) (dom, sub Relation) {
	maxLE, maxLT := true, false // r.Max ⪯ p, strictly on some dim
	minLE, minLT := true, false // r.Min ⪯ p
	pLEmin, pLTmin := true, false
	pLEmax, pLTmax := true, false
	for i := range p {
		v, lo, hi := p[i], r.Min[i], r.Max[i]
		if hi > v {
			maxLE = false
		} else if hi < v {
			maxLT = true
		}
		if lo > v {
			minLE = false
		} else if lo < v {
			minLT = true
		}
		if v > lo {
			pLEmin = false
		} else if v < lo {
			pLTmin = true
		}
		if v > hi {
			pLEmax = false
		} else if v < hi {
			pLTmax = true
		}
		if !minLE && !pLEmax {
			return DomNone, DomNone
		}
	}
	switch {
	case maxLE && maxLT:
		dom = DomFull
	case minLE && minLT:
		dom = DomPartial
	}
	switch {
	case pLEmin && pLTmin:
		sub = DomFull
	case pLEmax && pLTmax:
		sub = DomPartial
	}
	return dom, sub
}

// DominanceRectPoint classifies how entry a relates to point q.
func DominanceRectPoint(a Rect, q Point) Relation {
	return Dominance(a, PointRect(q))
}
