package geom

// Block dominance kernels.
//
// The leaf nodes of the aggregate R-tree store their coordinates in a packed
// structure-of-arrays block: one contiguous lane of float64 per dimension,
// item i's coordinate for dimension d at lanes[d*stride+i]. Scanning a whole
// leaf against one probe point then touches dims short, cache-line-sequential
// runs instead of chasing one *Item pointer (and one cache line) per element.
//
// Each kernel compares a probe point against every item of a block in one
// pass and returns the verdicts as a bitmask: bit i is set when item i
// satisfies the relation. Blocks are therefore limited to 64 items — far
// above any R-tree fanout this package is configured with; callers fall back
// to the per-item kernels beyond that.
//
// The per-item comparisons fold boolean comparison results with integer
// and/or instead of short-circuit chains, so the inner loops compile to
// branch-free SETcc/AND/OR sequences — no data-dependent branches for the
// predictor to miss on shuffled coordinates. Like the per-point kernels,
// block kernels are pure comparison networks (no floating-point arithmetic):
// the mask bit for item i is exactly the result of the corresponding
// per-point kernel on (p, item i), including ties, NaN-free by construction.
// The differential tests in blocks_test.go verify this bit-for-bit.

// BlockKernels bundles the block-scan primitives for one dimensionality, the
// block analogue of Kernels.
type BlockKernels struct {
	// Dims is the dimensionality the kernel set was built for.
	Dims int
	// DominatesBlock returns the mask of items dominated by p (p ≺ item i).
	DominatesBlock func(p Point, lanes []float64, stride, m int) uint64
	// BlockDominates returns the mask of items dominating p (item i ≺ p).
	BlockDominates func(p Point, lanes []float64, stride, m int) uint64
	// MutualBlock classifies both directions in one pass: pDom bit i means
	// p ≺ item i, domP bit i means item i ≺ p (never both for the same i).
	MutualBlock func(p Point, lanes []float64, stride, m int) (pDom, domP uint64)
}

// BlockKernelsFor returns the block kernel set for the given dimensionality:
// unrolled kernels for d = 2–5, generic loops otherwise.
func BlockKernelsFor(dims int) *BlockKernels {
	switch dims {
	case 2:
		return &BlockKernels{Dims: 2, DominatesBlock: DominatesBlock2,
			BlockDominates: BlockDominates2, MutualBlock: MutualBlock2}
	case 3:
		return &BlockKernels{Dims: 3, DominatesBlock: DominatesBlock3,
			BlockDominates: BlockDominates3, MutualBlock: MutualBlock3}
	case 4:
		return &BlockKernels{Dims: 4, DominatesBlock: DominatesBlock4,
			BlockDominates: BlockDominates4, MutualBlock: MutualBlock4}
	case 5:
		return &BlockKernels{Dims: 5, DominatesBlock: DominatesBlock5,
			BlockDominates: BlockDominates5, MutualBlock: MutualBlock5}
	default:
		return &BlockKernels{Dims: dims, DominatesBlock: dominatesBlockGeneric,
			BlockDominates: blockDominatesGeneric, MutualBlock: mutualBlockGeneric}
	}
}

// BlockMaxItems is the widest block a mask kernel can classify.
const BlockMaxItems = 64

// b2u converts a comparison result to 0/1 without a branch (compiles to
// SETcc on amd64, CSET on arm64).
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// DominatesBlock2 masks the items of a 2-d block that p dominates.
func DominatesBlock2(p Point, lanes []float64, stride, m int) uint64 {
	p0, p1 := p[0], p[1]
	l0 := lanes[:m]
	l1 := lanes[stride:][:m]
	var mask uint64
	for i := 0; i < m; i++ {
		x0, x1 := l0[i], l1[i]
		le := b2u(p0 <= x0) & b2u(p1 <= x1)
		lt := b2u(p0 < x0) | b2u(p1 < x1)
		mask |= (le & lt) << uint(i)
	}
	return mask
}

// DominatesBlock3 masks the items of a 3-d block that p dominates.
func DominatesBlock3(p Point, lanes []float64, stride, m int) uint64 {
	p0, p1, p2 := p[0], p[1], p[2]
	l0 := lanes[:m]
	l1 := lanes[stride:][:m]
	l2 := lanes[2*stride:][:m]
	var mask uint64
	for i := 0; i < m; i++ {
		x0, x1, x2 := l0[i], l1[i], l2[i]
		le := b2u(p0 <= x0) & b2u(p1 <= x1) & b2u(p2 <= x2)
		lt := b2u(p0 < x0) | b2u(p1 < x1) | b2u(p2 < x2)
		mask |= (le & lt) << uint(i)
	}
	return mask
}

// DominatesBlock4 masks the items of a 4-d block that p dominates.
func DominatesBlock4(p Point, lanes []float64, stride, m int) uint64 {
	p0, p1, p2, p3 := p[0], p[1], p[2], p[3]
	l0 := lanes[:m]
	l1 := lanes[stride:][:m]
	l2 := lanes[2*stride:][:m]
	l3 := lanes[3*stride:][:m]
	var mask uint64
	for i := 0; i < m; i++ {
		x0, x1, x2, x3 := l0[i], l1[i], l2[i], l3[i]
		le := b2u(p0 <= x0) & b2u(p1 <= x1) & b2u(p2 <= x2) & b2u(p3 <= x3)
		lt := b2u(p0 < x0) | b2u(p1 < x1) | b2u(p2 < x2) | b2u(p3 < x3)
		mask |= (le & lt) << uint(i)
	}
	return mask
}

// DominatesBlock5 masks the items of a 5-d block that p dominates.
func DominatesBlock5(p Point, lanes []float64, stride, m int) uint64 {
	p0, p1, p2, p3, p4 := p[0], p[1], p[2], p[3], p[4]
	l0 := lanes[:m]
	l1 := lanes[stride:][:m]
	l2 := lanes[2*stride:][:m]
	l3 := lanes[3*stride:][:m]
	l4 := lanes[4*stride:][:m]
	var mask uint64
	for i := 0; i < m; i++ {
		x0, x1, x2, x3, x4 := l0[i], l1[i], l2[i], l3[i], l4[i]
		le := b2u(p0 <= x0) & b2u(p1 <= x1) & b2u(p2 <= x2) & b2u(p3 <= x3) & b2u(p4 <= x4)
		lt := b2u(p0 < x0) | b2u(p1 < x1) | b2u(p2 < x2) | b2u(p3 < x3) | b2u(p4 < x4)
		mask |= (le & lt) << uint(i)
	}
	return mask
}

// BlockDominates2 masks the items of a 2-d block that dominate p.
func BlockDominates2(p Point, lanes []float64, stride, m int) uint64 {
	p0, p1 := p[0], p[1]
	l0 := lanes[:m]
	l1 := lanes[stride:][:m]
	var mask uint64
	for i := 0; i < m; i++ {
		x0, x1 := l0[i], l1[i]
		le := b2u(x0 <= p0) & b2u(x1 <= p1)
		lt := b2u(x0 < p0) | b2u(x1 < p1)
		mask |= (le & lt) << uint(i)
	}
	return mask
}

// BlockDominates3 masks the items of a 3-d block that dominate p.
func BlockDominates3(p Point, lanes []float64, stride, m int) uint64 {
	p0, p1, p2 := p[0], p[1], p[2]
	l0 := lanes[:m]
	l1 := lanes[stride:][:m]
	l2 := lanes[2*stride:][:m]
	var mask uint64
	for i := 0; i < m; i++ {
		x0, x1, x2 := l0[i], l1[i], l2[i]
		le := b2u(x0 <= p0) & b2u(x1 <= p1) & b2u(x2 <= p2)
		lt := b2u(x0 < p0) | b2u(x1 < p1) | b2u(x2 < p2)
		mask |= (le & lt) << uint(i)
	}
	return mask
}

// BlockDominates4 masks the items of a 4-d block that dominate p.
func BlockDominates4(p Point, lanes []float64, stride, m int) uint64 {
	p0, p1, p2, p3 := p[0], p[1], p[2], p[3]
	l0 := lanes[:m]
	l1 := lanes[stride:][:m]
	l2 := lanes[2*stride:][:m]
	l3 := lanes[3*stride:][:m]
	var mask uint64
	for i := 0; i < m; i++ {
		x0, x1, x2, x3 := l0[i], l1[i], l2[i], l3[i]
		le := b2u(x0 <= p0) & b2u(x1 <= p1) & b2u(x2 <= p2) & b2u(x3 <= p3)
		lt := b2u(x0 < p0) | b2u(x1 < p1) | b2u(x2 < p2) | b2u(x3 < p3)
		mask |= (le & lt) << uint(i)
	}
	return mask
}

// BlockDominates5 masks the items of a 5-d block that dominate p.
func BlockDominates5(p Point, lanes []float64, stride, m int) uint64 {
	p0, p1, p2, p3, p4 := p[0], p[1], p[2], p[3], p[4]
	l0 := lanes[:m]
	l1 := lanes[stride:][:m]
	l2 := lanes[2*stride:][:m]
	l3 := lanes[3*stride:][:m]
	l4 := lanes[4*stride:][:m]
	var mask uint64
	for i := 0; i < m; i++ {
		x0, x1, x2, x3, x4 := l0[i], l1[i], l2[i], l3[i], l4[i]
		le := b2u(x0 <= p0) & b2u(x1 <= p1) & b2u(x2 <= p2) & b2u(x3 <= p3) & b2u(x4 <= p4)
		lt := b2u(x0 < p0) | b2u(x1 < p1) | b2u(x2 < p2) | b2u(x3 < p3) | b2u(x4 < p4)
		mask |= (le & lt) << uint(i)
	}
	return mask
}

// The mutual block kernels mirror mutual2..5: pDom_i = pLE && !xLE and
// domP_i = xLE && !pLE, where pLE means p ⪯ item i on every dimension.

// MutualBlock2 classifies both dominance directions over a 2-d block.
func MutualBlock2(p Point, lanes []float64, stride, m int) (pDom, domP uint64) {
	p0, p1 := p[0], p[1]
	l0 := lanes[:m]
	l1 := lanes[stride:][:m]
	for i := 0; i < m; i++ {
		x0, x1 := l0[i], l1[i]
		pLE := b2u(p0 <= x0) & b2u(p1 <= x1)
		xLE := b2u(x0 <= p0) & b2u(x1 <= p1)
		pDom |= (pLE &^ xLE) << uint(i)
		domP |= (xLE &^ pLE) << uint(i)
	}
	return pDom, domP
}

// MutualBlock3 classifies both dominance directions over a 3-d block.
func MutualBlock3(p Point, lanes []float64, stride, m int) (pDom, domP uint64) {
	p0, p1, p2 := p[0], p[1], p[2]
	l0 := lanes[:m]
	l1 := lanes[stride:][:m]
	l2 := lanes[2*stride:][:m]
	for i := 0; i < m; i++ {
		x0, x1, x2 := l0[i], l1[i], l2[i]
		pLE := b2u(p0 <= x0) & b2u(p1 <= x1) & b2u(p2 <= x2)
		xLE := b2u(x0 <= p0) & b2u(x1 <= p1) & b2u(x2 <= p2)
		pDom |= (pLE &^ xLE) << uint(i)
		domP |= (xLE &^ pLE) << uint(i)
	}
	return pDom, domP
}

// MutualBlock4 classifies both dominance directions over a 4-d block.
func MutualBlock4(p Point, lanes []float64, stride, m int) (pDom, domP uint64) {
	p0, p1, p2, p3 := p[0], p[1], p[2], p[3]
	l0 := lanes[:m]
	l1 := lanes[stride:][:m]
	l2 := lanes[2*stride:][:m]
	l3 := lanes[3*stride:][:m]
	for i := 0; i < m; i++ {
		x0, x1, x2, x3 := l0[i], l1[i], l2[i], l3[i]
		pLE := b2u(p0 <= x0) & b2u(p1 <= x1) & b2u(p2 <= x2) & b2u(p3 <= x3)
		xLE := b2u(x0 <= p0) & b2u(x1 <= p1) & b2u(x2 <= p2) & b2u(x3 <= p3)
		pDom |= (pLE &^ xLE) << uint(i)
		domP |= (xLE &^ pLE) << uint(i)
	}
	return pDom, domP
}

// MutualBlock5 classifies both dominance directions over a 5-d block.
func MutualBlock5(p Point, lanes []float64, stride, m int) (pDom, domP uint64) {
	p0, p1, p2, p3, p4 := p[0], p[1], p[2], p[3], p[4]
	l0 := lanes[:m]
	l1 := lanes[stride:][:m]
	l2 := lanes[2*stride:][:m]
	l3 := lanes[3*stride:][:m]
	l4 := lanes[4*stride:][:m]
	for i := 0; i < m; i++ {
		x0, x1, x2, x3, x4 := l0[i], l1[i], l2[i], l3[i], l4[i]
		pLE := b2u(p0 <= x0) & b2u(p1 <= x1) & b2u(p2 <= x2) & b2u(p3 <= x3) & b2u(p4 <= x4)
		xLE := b2u(x0 <= p0) & b2u(x1 <= p1) & b2u(x2 <= p2) & b2u(x3 <= p3) & b2u(x4 <= p4)
		pDom |= (pLE &^ xLE) << uint(i)
		domP |= (xLE &^ pLE) << uint(i)
	}
	return pDom, domP
}

func dominatesBlockGeneric(p Point, lanes []float64, stride, m int) uint64 {
	var mask uint64
	for i := 0; i < m; i++ {
		le, lt := uint64(1), uint64(0)
		for d := range p {
			x := lanes[d*stride+i]
			le &= b2u(p[d] <= x)
			lt |= b2u(p[d] < x)
		}
		mask |= (le & lt) << uint(i)
	}
	return mask
}

func blockDominatesGeneric(p Point, lanes []float64, stride, m int) uint64 {
	var mask uint64
	for i := 0; i < m; i++ {
		le, lt := uint64(1), uint64(0)
		for d := range p {
			x := lanes[d*stride+i]
			le &= b2u(x <= p[d])
			lt |= b2u(x < p[d])
		}
		mask |= (le & lt) << uint(i)
	}
	return mask
}

func mutualBlockGeneric(p Point, lanes []float64, stride, m int) (pDom, domP uint64) {
	for i := 0; i < m; i++ {
		pLE, xLE := uint64(1), uint64(1)
		for d := range p {
			x := lanes[d*stride+i]
			pLE &= b2u(p[d] <= x)
			xLE &= b2u(x <= p[d])
		}
		pDom |= (pLE &^ xLE) << uint(i)
		domP |= (xLE &^ pLE) << uint(i)
	}
	return pDom, domP
}
