package naive

import (
	"math"
	"math/rand"
	"testing"

	"pskyline/internal/geom"
)

func randElems(r *rand.Rand, n, dims int, allowOnes bool) []Elem {
	out := make([]Elem, n)
	for i := range out {
		pt := make(geom.Point, dims)
		for j := range pt {
			pt[j] = float64(r.Intn(8))
		}
		p := 1 - r.Float64()
		if allowOnes && r.Intn(5) == 0 {
			p = 1
		}
		out[i] = Elem{Point: pt, P: p, Seq: uint64(i)}
	}
	return out
}

// TestEquationOneAgainstPossibleWorlds validates Equation (1): the closed
// form P(a)·Π(1−P(a')) equals the sum over possible worlds in which a is on
// the skyline.
func TestEquationOneAgainstPossibleWorlds(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 30; iter++ {
		dims := 1 + r.Intn(3)
		n := 2 + r.Intn(11)
		elems := randElems(r, n, dims, true)
		worlds := SkylineProbPossibleWorlds(elems)

		x := NewExact(0)
		for _, e := range elems {
			x.Push(e.Point, e.P)
		}
		for i, p := range x.All() {
			if math.Abs(p.Psky.Float()-worlds[i]) > 1e-9 {
				t.Fatalf("iter %d elem %d: Eq(1) gives %v, possible worlds give %v",
					iter, i, p.Psky.Float(), worlds[i])
			}
		}
	}
}

// TestPnewPoldDecomposition validates Equation (4): Psky = P·Pold·Pnew.
func TestPnewPoldDecomposition(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	elems := randElems(r, 40, 2, true)
	x := NewExact(0)
	for _, e := range elems {
		x.Push(e.Point, e.P)
	}
	for i, p := range x.All() {
		prod := elems[i].P * p.Pold.Float() * p.Pnew.Float()
		if math.Abs(p.Psky.Float()-prod) > 1e-12 {
			t.Fatalf("elem %d: decomposition broken", i)
		}
	}
}

// TestCandidateClosure validates Lemma 2: the candidate set is closed under
// newer dominators — every element dominating a candidate from a later
// arrival position is itself a candidate.
func TestCandidateClosure(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for iter := 0; iter < 20; iter++ {
		elems := randElems(r, 60, 2, false)
		x := NewExact(0)
		for _, e := range elems {
			x.Push(e.Point, e.P)
		}
		q := 0.2 + 0.6*r.Float64()
		cands := map[uint64]bool{}
		for _, s := range x.Candidates(q) {
			cands[s] = true
		}
		for _, a := range elems {
			if !cands[a.Seq] {
				continue
			}
			for _, b := range elems {
				if b.Seq > a.Seq && b.Point.Dominates(a.Point) && !cands[b.Seq] {
					t.Fatalf("q=%v: candidate %d dominated by newer non-candidate %d", q, a.Seq, b.Seq)
				}
			}
		}
	}
}

// TestTrivialMatchesExact cross-checks the trivial engine's candidate set
// and skyline classification against the oracle over a sliding stream.
func TestTrivialMatchesExact(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	const window, q = 40, 0.35
	tr := NewTrivial(window, q)
	x := NewExact(window)
	for i := 0; i < 900; i++ {
		pt := geom.Point{float64(r.Intn(10)), float64(r.Intn(10))}
		p := 1 - r.Float64()
		if r.Intn(6) == 0 {
			p = 1
		}
		tr.Push(pt, p)
		x.Push(pt, p)
		if i%7 != 0 {
			continue
		}
		wantC := x.Candidates(q)
		if len(wantC) != tr.Size() {
			t.Fatalf("step %d: |S| %d vs exact %d", i, tr.Size(), len(wantC))
		}
		got := map[uint64]bool{}
		for _, e := range tr.Elems() {
			got[e.Seq] = true
		}
		for _, s := range wantC {
			if !got[s] {
				t.Fatalf("step %d: candidate %d missing from trivial", i, s)
			}
		}
		wantSky := x.Skyline(q)
		gotSky := tr.Skyline(q)
		if len(wantSky) != len(gotSky) {
			t.Fatalf("step %d: skyline size %d vs %d", i, len(gotSky), len(wantSky))
		}
		if tr.SkylineSize() != len(wantSky) {
			t.Fatalf("step %d: SkylineSize %d vs %d", i, tr.SkylineSize(), len(wantSky))
		}
	}
}

func TestSkylineCertain(t *testing.T) {
	pts := []geom.Point{{1, 5}, {2, 2}, {5, 1}, {3, 3}, {2, 2}}
	got := SkylineCertain(pts)
	// (3,3) dominated by (2,2); duplicates (2,2) both undominated.
	want := []int{0, 1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("skyline %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("skyline %v, want %v", got, want)
		}
	}
}

func TestWorldsSizeGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on oversized input")
		}
	}()
	SkylineProbPossibleWorlds(make([]Elem, MaxWorldElems+1))
}

func TestExactExpiry(t *testing.T) {
	x := NewExact(2)
	x.Push(geom.Point{1, 1}, 0.5)
	x.Push(geom.Point{2, 2}, 0.5)
	x.Push(geom.Point{3, 3}, 0.5) // evicts the first
	if x.Len() != 2 {
		t.Fatalf("len = %d", x.Len())
	}
	if x.Elems()[0].Seq != 1 {
		t.Fatalf("oldest = %d", x.Elems()[0].Seq)
	}
	x.ExpireOldest()
	if x.Len() != 1 || x.Elems()[0].Seq != 2 {
		t.Fatal("manual expiry broken")
	}
}
