package naive

import "pskyline/internal/geom"

// Certain is a dedicated sliding-window skyline for *certain* data (every
// occurrence probability 1), in the style of the certain-case predecessors
// the paper builds on (Lin et al. ICDE 2005; Tao & Papadias TKDE 2006):
//
//   - an element dominated by a newer element can never re-enter any future
//     window's skyline (the dominator outlives it), so it is discarded
//     immediately; the kept set is the probabilistic engine's candidate set
//     specialized to P = 1;
//   - among kept elements, the skyline is exactly those with no (older)
//     kept dominator, maintained as a dominator count.
//
// It exists as the ablation baseline that prices the probabilistic
// machinery: on certain data the engine must behave identically while
// paying for probability bookkeeping.
type Certain struct {
	window int
	elems  []certainElem // kept elements in arrival order
	next   uint64
}

type certainElem struct {
	pt  geom.Point
	seq uint64
	dom int // number of older kept dominators
}

// NewCertain returns a certain-data window skyline over the n most recent
// elements.
func NewCertain(window int) *Certain {
	return &Certain{window: window}
}

// Push processes an arrival and expires the element leaving the window.
func (c *Certain) Push(pt geom.Point) uint64 {
	seq := c.next
	c.next++
	if c.window > 0 && seq >= uint64(c.window) {
		c.expire(seq - uint64(c.window))
	}
	dom := 0
	kept := c.elems[:0]
	for _, e := range c.elems {
		eDom, newDom := geom.MutualDominance(e.pt, pt)
		if newDom {
			// Transitivity guarantees anything e dominated is also
			// dominated by the new element, so dropping e needs no
			// dominator-count repair on survivors.
			continue
		}
		if eDom {
			dom++
		}
		kept = append(kept, e)
	}
	c.elems = append(kept, certainElem{pt: pt, seq: seq, dom: dom})
	return seq
}

// expire removes the element with the given sequence number if it is still
// kept, repairing the dominator counts of the survivors it dominated.
func (c *Certain) expire(seq uint64) {
	if len(c.elems) == 0 || c.elems[0].seq != seq {
		return // already discarded by a newer dominator
	}
	old := c.elems[0]
	c.elems = c.elems[1:]
	for i := range c.elems {
		if old.pt.Dominates(c.elems[i].pt) {
			c.elems[i].dom--
		}
	}
}

// Size returns the number of kept elements (the certain candidate set).
func (c *Certain) Size() int { return len(c.elems) }

// Skyline returns the sequence numbers of the current window skyline in
// arrival order.
func (c *Certain) Skyline() []uint64 {
	var out []uint64
	for _, e := range c.elems {
		if e.dom == 0 {
			out = append(out, e.seq)
		}
	}
	return out
}

// SkylineSize returns the current skyline cardinality.
func (c *Certain) SkylineSize() int {
	n := 0
	for _, e := range c.elems {
		if e.dom == 0 {
			n++
		}
	}
	return n
}
