// Package naive provides reference implementations used as ground truth and
// as the paper's baseline:
//
//   - Exact: a full-window oracle that recomputes every probability from
//     Equation (1) on demand (O(W²) per evaluation);
//   - Trivial: the paper's "trivial algorithm against S_{N,q}" (beginning of
//     Section IV) — the same restricted candidate-set semantics as the
//     aggregate R-tree engine, maintained by scanning the whole candidate
//     list on every arrival and expiry;
//   - SkylineProbPossibleWorlds: a possible-worlds enumerator for tiny
//     inputs validating Equation (1) itself.
package naive

import (
	"pskyline/internal/geom"
	"pskyline/internal/prob"
)

// Elem is one uncertain element of a reference window.
type Elem struct {
	Point geom.Point
	P     float64
	Seq   uint64
}

// Probs bundles the reference probabilities of one element.
type Probs struct {
	Seq  uint64
	Pnew prob.Factor
	Pold prob.Factor
	Psky prob.Factor
}

// Exact keeps the entire window and recomputes probabilities from scratch.
// The zero value is not usable; construct with NewExact.
type Exact struct {
	window int // 0 = unbounded (expiry driven by caller)
	elems  []Elem
	next   uint64
}

// NewExact returns an oracle with a count-based window of size n (0 for
// caller-driven expiry).
func NewExact(window int) *Exact {
	return &Exact{window: window}
}

// Push appends an element, expiring the oldest when the window overflows,
// and returns its sequence number.
func (x *Exact) Push(pt geom.Point, p float64) uint64 {
	seq := x.next
	x.next++
	if x.window > 0 && len(x.elems) == x.window {
		x.elems = x.elems[1:]
	}
	x.elems = append(x.elems, Elem{Point: pt, P: p, Seq: seq})
	return seq
}

// ExpireOldest drops the oldest element (for caller-driven windows).
func (x *Exact) ExpireOldest() {
	if len(x.elems) > 0 {
		x.elems = x.elems[1:]
	}
}

// Len returns the current window population.
func (x *Exact) Len() int { return len(x.elems) }

// Elems returns the window contents in arrival order.
func (x *Exact) Elems() []Elem { return x.elems }

// All computes the unrestricted Pnew, Pold and Psky of every window element
// (Equations (1)–(4)).
func (x *Exact) All() []Probs {
	out := make([]Probs, len(x.elems))
	for i, e := range x.elems {
		pnew, pold := prob.One(), prob.One()
		for j, f := range x.elems {
			if i == j || !f.Point.Dominates(e.Point) {
				continue
			}
			if f.Seq > e.Seq {
				pnew = pnew.Times(prob.OneMinus(f.P))
			} else {
				pold = pold.Times(prob.OneMinus(f.P))
			}
		}
		out[i] = Probs{
			Seq:  e.Seq,
			Pnew: pnew,
			Pold: pold,
			Psky: prob.FromFloat(e.P).Times(pnew).Times(pold),
		}
	}
	return out
}

// Candidates returns the sequence numbers of S_{N,q}: elements with
// unrestricted Pnew ≥ q, in arrival order.
func (x *Exact) Candidates(q float64) []uint64 {
	qq := prob.FromFloat(q)
	var out []uint64
	for _, p := range x.All() {
		if p.Pnew.AtLeast(qq) {
			out = append(out, p.Seq)
		}
	}
	return out
}

// Skyline returns the sequence numbers of the q-skyline: elements with
// unrestricted Psky ≥ q, in arrival order.
func (x *Exact) Skyline(q float64) []uint64 {
	qq := prob.FromFloat(q)
	var out []uint64
	for _, p := range x.All() {
		if p.Psky.AtLeast(qq) {
			out = append(out, p.Seq)
		}
	}
	return out
}

// RestrictedAll computes Pnew, Pold and Psky restricted to S_{N,q}: the
// quantities the streaming algorithms actually maintain (Section III-A).
func (x *Exact) RestrictedAll(q float64) []Probs {
	all := x.All()
	qq := prob.FromFloat(q)
	inS := make(map[uint64]bool, len(all))
	byIdx := make([]bool, len(all))
	for i, p := range all {
		if p.Pnew.AtLeast(qq) {
			inS[p.Seq] = true
			byIdx[i] = true
		}
	}
	var out []Probs
	for i, e := range x.elems {
		if !byIdx[i] {
			continue
		}
		pnew, pold := prob.One(), prob.One()
		for j, f := range x.elems {
			if i == j || !byIdx[j] || !f.Point.Dominates(e.Point) {
				continue
			}
			if f.Seq > e.Seq {
				pnew = pnew.Times(prob.OneMinus(f.P))
			} else {
				pold = pold.Times(prob.OneMinus(f.P))
			}
		}
		out = append(out, Probs{
			Seq:  e.Seq,
			Pnew: pnew,
			Pold: pold,
			Psky: prob.FromFloat(e.P).Times(pnew).Times(pold),
		})
	}
	return out
}
