package naive

import (
	"sort"

	"pskyline/internal/geom"
	"pskyline/internal/prob"
)

// TrivialElem is a candidate element of the trivial engine with its
// restricted probabilities.
type TrivialElem struct {
	Point geom.Point
	P     float64
	Seq   uint64
	Pnew  prob.Factor
	Pold  prob.Factor
	// InSky is the continuously maintained q-skyline membership.
	InSky bool
	pf    prob.Factor
	om    prob.Factor
}

// Psky returns P · Pold · Pnew.
func (e *TrivialElem) Psky() prob.Factor { return e.pf.Times(e.Pold).Times(e.Pnew) }

// Trivial is the paper's baseline (beginning of Section IV): it maintains
// exactly the candidate set S_{N,q} with the restricted probabilities by
// visiting every candidate on every arrival and expiry, and then chooses
// the elements with Psky ≥ q — O(|S_{N,q}|) amortized per element, with no
// entry-level pruning. It serves both as the Figure 8 comparison baseline
// and as a semantics oracle for the aggregate R-tree engine (the two must
// maintain identical candidate sets and probabilities).
type Trivial struct {
	window int
	q      float64
	qq     prob.Factor
	elems  []*TrivialElem // candidate set in arrival order
	next   uint64
	nSky   int // current |SKY_{N,q}|, maintained by the per-update choose pass
}

// NewTrivial returns a trivial engine with threshold q and count window
// size window (0 for caller-driven expiry via ExpireSeq).
func NewTrivial(window int, q float64) *Trivial {
	return &Trivial{window: window, q: q, qq: prob.FromFloat(q)}
}

// Push processes an arrival, expiring the element leaving the window first.
func (t *Trivial) Push(pt geom.Point, p float64) uint64 {
	seq := t.next
	t.next++
	if t.window > 0 && seq >= uint64(t.window) {
		t.ExpireSeq(seq - uint64(t.window))
	}
	t.insert(&TrivialElem{
		Point: pt, P: p, Seq: seq,
		Pnew: prob.One(), Pold: prob.One(),
		pf: prob.FromFloat(p), om: prob.OneMinus(p),
	})
	return seq
}

func (t *Trivial) insert(a *TrivialElem) {
	var removed []*TrivialElem
	kept := t.elems[:0]
	// Task 1/2: update Pnew of dominated candidates, split off those whose
	// Pnew drops below q, and accumulate Pold(a_new) from its dominators.
	for _, e := range t.elems {
		switch {
		case e.Point.Dominates(a.Point):
			a.Pold = a.Pold.Times(e.om)
			kept = append(kept, e)
		case a.Point.Dominates(e.Point):
			e.Pnew = e.Pnew.Times(a.om)
			if e.Pnew.Less(t.qq) {
				removed = append(removed, e)
			} else {
				kept = append(kept, e)
			}
		default:
			kept = append(kept, e)
		}
	}
	t.elems = kept
	// Task 3: strip the removed dominators' factors from survivors' Pold.
	for _, r := range removed {
		for _, e := range t.elems {
			if r.Point.Dominates(e.Point) {
				e.Pold = e.Pold.Over(r.om)
			}
		}
	}
	t.elems = append(t.elems, a)
	t.choose()
}

// choose runs the paper's per-update selection pass: scan the candidate set
// and mark the elements whose restricted skyline probability reaches q.
// This is what makes the trivial algorithm a *continuous* operator rather
// than a query-time one, and it is part of its O(|S_{N,q}|) per-element
// cost.
func (t *Trivial) choose() {
	n := 0
	for _, e := range t.elems {
		in := e.Psky().AtLeast(t.qq)
		e.InSky = in
		if in {
			n++
		}
	}
	t.nSky = n
}

// ExpireSeq expires the element with the given sequence number (a no-op if
// it is not a candidate).
func (t *Trivial) ExpireSeq(seq uint64) {
	idx := -1
	for i, e := range t.elems {
		if e.Seq == seq {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	old := t.elems[idx]
	t.elems = append(t.elems[:idx], t.elems[idx+1:]...)
	for _, e := range t.elems {
		if old.Point.Dominates(e.Point) {
			e.Pold = e.Pold.Over(old.om)
		}
	}
	t.choose()
}

// Size returns |S_{N,q}|.
func (t *Trivial) Size() int { return len(t.elems) }

// Elems returns the candidate set in arrival order.
func (t *Trivial) Elems() []*TrivialElem { return t.elems }

// Skyline returns the candidates with restricted Psky ≥ qPrime (qPrime ≥ q),
// sorted by descending probability.
func (t *Trivial) Skyline(qPrime float64) []*TrivialElem {
	qq := prob.FromFloat(qPrime)
	var out []*TrivialElem
	for _, e := range t.elems {
		if e.Psky().AtLeast(qq) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[b].Psky().Less(out[a].Psky()) })
	return out
}

// SkylineSize returns the continuously maintained |SKY_{N,q}|.
func (t *Trivial) SkylineSize() int { return t.nSky }
