package naive

import (
	"math/rand"
	"testing"

	"pskyline/internal/geom"
)

// TestCertainMatchesExact — the dedicated certain-data window skyline must
// agree with the exact oracle run at P = 1 (where the q-skyline for any
// q ≤ 1 degenerates to the classical skyline and the candidate set to the
// no-newer-dominator set).
func TestCertainMatchesExact(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const window = 40
	c := NewCertain(window)
	x := NewExact(window)
	for i := 0; i < 800; i++ {
		pt := geom.Point{float64(r.Intn(12)), float64(r.Intn(12))}
		c.Push(pt)
		x.Push(pt, 1)
		if i%9 != 0 {
			continue
		}
		wantSky := x.Skyline(1)
		gotSky := c.Skyline()
		if len(gotSky) != len(wantSky) {
			t.Fatalf("step %d: skyline %v vs %v", i, gotSky, wantSky)
		}
		for j := range gotSky {
			if gotSky[j] != wantSky[j] {
				t.Fatalf("step %d: skyline %v vs %v", i, gotSky, wantSky)
			}
		}
		if c.SkylineSize() != len(wantSky) {
			t.Fatalf("step %d: SkylineSize %d vs %d", i, c.SkylineSize(), len(wantSky))
		}
		wantKept := x.Candidates(1) // Pnew = 1 exactly: no newer dominator
		if c.Size() != len(wantKept) {
			t.Fatalf("step %d: kept %d vs %d", i, c.Size(), len(wantKept))
		}
	}
}

func TestCertain3D(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	c := NewCertain(30)
	x := NewExact(30)
	for i := 0; i < 500; i++ {
		pt := geom.Point{r.Float64(), r.Float64(), r.Float64()}
		c.Push(pt)
		x.Push(pt, 1)
	}
	want := x.Skyline(1)
	got := c.Skyline()
	if len(got) != len(want) {
		t.Fatalf("skyline %d vs %d", len(got), len(want))
	}
}
