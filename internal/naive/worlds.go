package naive

import (
	"pskyline/internal/geom"
)

// MaxWorldElems bounds the input size of the possible-worlds enumerator
// (2^n worlds are enumerated).
const MaxWorldElems = 20

// SkylineProbPossibleWorlds computes the skyline probability of every
// element by enumerating all 2^n possible worlds and summing the
// probabilities of the worlds in which the element appears on the skyline
// (the definition preceding Equation (1)). It exists to validate Equation
// (1) and the oracles; n must not exceed MaxWorldElems.
func SkylineProbPossibleWorlds(elems []Elem) []float64 {
	n := len(elems)
	if n > MaxWorldElems {
		panic("naive: too many elements for possible-worlds enumeration")
	}
	out := make([]float64, n)
	for world := 0; world < 1<<uint(n); world++ {
		pw := 1.0
		for i, e := range elems {
			if world&(1<<uint(i)) != 0 {
				pw *= e.P
			} else {
				pw *= 1 - e.P
			}
		}
		if pw == 0 {
			continue
		}
		for i := range elems {
			if world&(1<<uint(i)) == 0 {
				continue
			}
			if onSkyline(elems, world, i) {
				out[i] += pw
			}
		}
	}
	return out
}

// onSkyline reports whether element i is on the skyline of the world whose
// membership bitmask is world.
func onSkyline(elems []Elem, world int, i int) bool {
	for j := range elems {
		if j == i || world&(1<<uint(j)) == 0 {
			continue
		}
		if elems[j].Point.Dominates(elems[i].Point) {
			return false
		}
	}
	return true
}

// SkylineCertain returns the indices of the classical skyline of a certain
// data set (ignoring probabilities): elements dominated by no other.
func SkylineCertain(pts []geom.Point) []int {
	var out []int
	for i := range pts {
		dominated := false
		for j := range pts {
			if j != i && pts[j].Dominates(pts[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}
