package stats

import (
	"math"
	"math/rand"
	"testing"

	"pskyline/internal/geom"
	"pskyline/internal/naive"
)

func TestHarmonicFirstOrder(t *testing.T) {
	// H_{1,l} = Σ 1/i, asymptotically ln l + γ.
	if got := Harmonic(1, 1); got != 1 {
		t.Fatalf("H_{1,1} = %v", got)
	}
	if got := Harmonic(1, 4); math.Abs(got-(1+0.5+1.0/3+0.25)) > 1e-12 {
		t.Fatalf("H_{1,4} = %v", got)
	}
	const gamma = 0.5772156649
	l := 100000
	if got := Harmonic(1, l); math.Abs(got-(math.Log(float64(l))+gamma)) > 1e-4 {
		t.Fatalf("H_{1,%d} = %v, want ≈ ln l + γ", l, got)
	}
}

func TestHarmonicRecursion(t *testing.T) {
	// H_{d,l} = Σ_{i≤l} H_{d-1,i}/i, checked directly for small cases.
	for d := 2; d <= 4; d++ {
		for l := 1; l <= 30; l++ {
			want := 0.0
			for i := 1; i <= l; i++ {
				want += Harmonic(d-1, i) / float64(i)
			}
			if got := Harmonic(d, l); math.Abs(got-want) > 1e-9 {
				t.Fatalf("H_{%d,%d} = %v, want %v", d, l, got, want)
			}
		}
	}
}

func TestHarmonicGrowth(t *testing.T) {
	// H_{d,N} = O(ln^d N): the ratio to ln^d N stays bounded.
	for d := 1; d <= 3; d++ {
		for _, n := range []int{1000, 10000, 100000} {
			ratio := Harmonic(d, n) / math.Pow(math.Log(float64(n)), float64(d))
			if ratio > 1.2 {
				t.Fatalf("H_{%d,%d} exceeds ln^d N by %vx", d, n, ratio)
			}
		}
	}
}

func TestPDomAtMostD1Exact(t *testing.T) {
	// Theorem 7, d = 1: exactly (k+1)/N.
	for _, k := range []int{0, 3, 9} {
		if got := PDomAtMost(100, 1, k); math.Abs(got-float64(k+1)/100) > 1e-12 {
			t.Fatalf("P(DOMT^%d) = %v", k, got)
		}
	}
	if PDomAtMost(10, 2, 9) != 1 {
		t.Fatal("k = N−1 must give probability 1")
	}
}

// TestPDomAtMostBoundsMonteCarlo — the Theorem 7 bound must dominate the
// empirical probability that at most k of N random points dominate a random
// point, for d = 2 and 3.
func TestPDomAtMostBoundsMonteCarlo(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const n, trials = 60, 4000
	for _, d := range []int{2, 3} {
		for _, k := range []int{0, 1, 3, 6} {
			hits := 0
			for trial := 0; trial < trials; trial++ {
				pts := make([]geom.Point, n)
				for i := range pts {
					pts[i] = make(geom.Point, d)
					for j := range pts[i] {
						pts[i][j] = r.Float64()
					}
				}
				dom := 0
				for i := 1; i < n; i++ {
					if pts[i].Dominates(pts[0]) {
						dom++
					}
				}
				if dom <= k {
					hits++
				}
			}
			emp := float64(hits) / trials
			bound := PDomAtMost(n, d, k)
			// Allow Monte-Carlo noise (3 sigma).
			noise := 3 * math.Sqrt(emp*(1-emp)/trials)
			if emp > bound+noise {
				t.Fatalf("d=%d k=%d: empirical %.4f exceeds bound %.4f", d, k, emp, bound)
			}
		}
	}
}

// TestExpectedSkylineUpperDominatesMeasurement — the Corollary 3 bound must
// exceed the measured expected q-skyline size on independent data with
// constant probabilities.
func TestExpectedSkylineUpperDominatesMeasurement(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	const n, trials = 80, 60
	for _, d := range []int{2, 3} {
		for _, p := range []float64{1.0, 0.7, 0.4} {
			q := 0.3 * p
			total := 0
			for trial := 0; trial < trials; trial++ {
				x := naive.NewExact(0)
				for i := 0; i < n; i++ {
					pt := make(geom.Point, d)
					for j := range pt {
						pt[j] = r.Float64()
					}
					x.Push(pt, p)
				}
				total += len(x.Skyline(q))
			}
			measured := float64(total) / trials
			bound := ExpectedSkylineUpper(n, d, p, q)
			if measured > bound*1.1 { // small tolerance for sampling noise
				t.Fatalf("d=%d p=%v q=%v: measured %.2f exceeds bound %.2f", d, p, q, measured, bound)
			}
			// The paper's Corollary 3 quantity weights each skyline member
			// by its skyline probability and must be the smaller bound.
			if w := QualifiedWorldSkylineUpper(n, d, p, q); w > bound+1e-9 {
				t.Fatalf("d=%d p=%v q=%v: weighted bound %.2f exceeds membership bound %.2f", d, p, q, w, bound)
			}
		}
	}
}

// TestQualifiedWorldBoundDominatesWeightedMeasurement — Corollary 3 against
// its own quantity: Σ E[Psky·1{Psky≥q}] measured by simulation.
func TestQualifiedWorldBoundDominatesWeightedMeasurement(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const n, trials = 80, 60
	for _, d := range []int{2, 3} {
		for _, p := range []float64{0.7, 0.4} {
			q := 0.3 * p
			total := 0.0
			for trial := 0; trial < trials; trial++ {
				x := naive.NewExact(0)
				for i := 0; i < n; i++ {
					pt := make(geom.Point, d)
					for j := range pt {
						pt[j] = r.Float64()
					}
					x.Push(pt, p)
				}
				for _, pr := range x.All() {
					if v := pr.Psky.Float(); v >= q {
						total += v
					}
				}
			}
			measured := total / trials
			bound := QualifiedWorldSkylineUpper(n, d, p, q)
			if measured > bound*1.1 {
				t.Fatalf("d=%d p=%v: weighted measurement %.2f exceeds Corollary 3 bound %.2f",
					d, p, measured, bound)
			}
		}
	}
}

func TestExpectedCandidateUpperSane(t *testing.T) {
	// The candidate bound is at least the skyline bound (candidates are
	// skylines of a (d+1)-dimensional space) and grows poly-logarithmically.
	for _, n := range []int{1000, 10000, 100000} {
		c := ExpectedCandidateUpper(n, 3, 0.5, 0.3)
		s := ExpectedSkylineUpper(n, 3, 0.5, 0.3)
		if c < s {
			t.Fatalf("n=%d: candidate bound %v below skyline bound %v", n, c, s)
		}
		if c >= float64(n) {
			t.Fatalf("n=%d: candidate bound %v not sublinear", n, c)
		}
	}
	// Poly-logarithmic growth: increasing n 10x increases the bound far
	// less than 10x.
	r := ExpectedCandidateUpper(100000, 3, 0.5, 0.3) / ExpectedCandidateUpper(10000, 3, 0.5, 0.3)
	if r > 3 {
		t.Fatalf("candidate bound ratio for 10x n = %v, want ≪ 10", r)
	}
}

func TestMeanQuantile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if Mean(xs) != 3 {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 || Quantile(xs, 0.5) != 3 {
		t.Fatal("quantiles wrong")
	}
	if Mean(nil) != 0 || Quantile(nil, 0.5) != 0 {
		t.Fatal("empty input handling wrong")
	}
}
