// Package stats implements the analytical size bounds of Section III-B:
// higher-order harmonic numbers, the dominance-count distribution bound of
// Theorem 7 and the resulting poly-logarithmic expectations for the skyline
// and candidate sets. The experiment harness and tests use these to check
// that measured sizes stay under the paper's theory.
package stats

import "math"

// Harmonic returns the d-th order harmonic number H_{d,l}:
//
//	H_{1,l} = Σ_{i=1..l} 1/i
//	H_{d,l} = Σ_{i=1..l} H_{d-1,i} / i
//
// For d = 0 it returns 1 for any l ≥ 1 (the natural base of the recursion
// used in Theorem 7). Computation is O(d·l).
func Harmonic(d, l int) float64 {
	if l < 1 {
		return 0
	}
	if d == 0 {
		return 1
	}
	// h[i] carries H_{order,i}; start at order 0 (identically 1).
	h := make([]float64, l+1)
	for i := 1; i <= l; i++ {
		h[i] = 1
	}
	for order := 1; order <= d; order++ {
		acc := 0.0
		for i := 1; i <= l; i++ {
			acc += h[i] / float64(i)
			h[i] = acc
		}
	}
	return h[l]
}

// PDomAtMost bounds P(DOMT_i^k), the probability that at most k of N
// independently placed elements dominate a random element in d dimensions
// with distinct per-dimension values (Theorem 7):
//
//	d = 1:  exactly (k+1)/N
//	d ≥ 2:  ≤ (k+1)/N · (1 + H_{d-1,N} − H_{d-1,k+1})
//
// The result is clamped to [0, 1].
func PDomAtMost(n, d, k int) float64 {
	if n <= 0 {
		return 0
	}
	if k >= n-1 {
		return 1
	}
	var p float64
	if d == 1 {
		p = float64(k+1) / float64(n)
	} else {
		p = float64(k+1) / float64(n) * (1 + Harmonic(d-1, n) - Harmonic(d-1, k+1))
	}
	return math.Min(1, math.Max(0, p))
}

// maxDomCount returns the largest dominator count k such that base·(1−p)^k
// still reaches q (clamped to [0, n−1]). For the skyline bound base = p; for
// the candidate (Pnew) bound base = 1.
func maxDomCount(n int, p, q, base float64) int {
	if q > base {
		return 0
	}
	k := 0
	if p > 0 && p < 1 {
		k = int(math.Floor(math.Log(q/base) / math.Log(1-p)))
	} else if p == 0 {
		k = n - 1
	}
	if k > n-1 {
		k = n - 1
	}
	if k < 0 {
		k = 0
	}
	return k
}

// ExpectedSkylineUpper bounds E(|SKY_{N,q}|) for independent data with
// constant occurrence probability p: an element with k dominators has
// Psky = p·(1−p)^k, so it is a q-skyline point exactly when k ≤ k_q =
// ⌊log_{1−p}(q/p)⌋, and E(|SKY_{N,q}|) = Σ_i P(DOMT_i^{k_q}) ≤
// N·PDomAtMost(N, d, k_q) (exact for d ≤ 2, Theorem 7 bound above).
func ExpectedSkylineUpper(n, d int, p, q float64) float64 {
	if n <= 0 || p <= 0 || q > p {
		return 0
	}
	return float64(n) * PDomAtMost(n, d, maxDomCount(n, p, q, p))
}

// ExpectedCandidateUpper bounds E(|S_{N,q}|) via Theorem 8: a candidate has
// Pnew = (1−p)^k over its k newer dominators, and "newer dominator" is
// dominance in the (d+1)-dimensional space obtained by adding arrival order
// as a dimension. Hence E(|S_{N,q}|) ≤ N·PDomAtMost(N, d+1, k_q) with
// k_q = ⌊log_{1−p}(q)⌋.
func ExpectedCandidateUpper(n, d int, p, q float64) float64 {
	if n <= 0 || p < 0 || q > 1 {
		return 0
	}
	return float64(n) * PDomAtMost(n, d+1, maxDomCount(n, p, q, 1))
}

// QualifiedWorldSkylineUpper is the paper's Corollary 3 (Equation (8))
// verbatim: an upper bound on Σ_i E[Psky_i · 1{Psky_i ≥ q}] — the expected
// size of the intersection of a sampled possible world's skyline with the
// q-skyline (each q-skyline element weighted by its skyline probability).
// It is the quantity the paper's Theorem 6 analyzes and is at most
// ExpectedSkylineUpper.
func QualifiedWorldSkylineUpper(n, d int, p, q float64) float64 {
	if n <= 0 || p <= 0 || q > p {
		return 0
	}
	kq := maxDomCount(n, p, q, p)
	qk := func(k int) float64 { return p * math.Pow(1-p, float64(k)) }
	inner := 0.0
	for j := 0; j < kq; j++ {
		inner += PDomAtMost(n, d, j) * (qk(j) - qk(j+1))
	}
	inner += PDomAtMost(n, d, kq) * qk(kq)
	return float64(n) * inner
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of xs by nearest-rank on a
// sorted copy; 0 for empty input.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	// Insertion sort is fine for the harness's small sample sets.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	idx := int(p * float64(len(s)-1))
	return s[idx]
}
