package repl

import (
	"bytes"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"pskyline"
)

// testOptions is a small durable stream configuration; dir isolates each
// node's WAL + checkpoints.
func testOptions(dir string) pskyline.Options {
	return pskyline.Options{
		Dims:       2,
		Window:     64,
		Thresholds: []float64{0.3},
		Durability: pskyline.Durability{
			Dir:          dir,
			Fsync:        "never",
			SegmentBytes: 4 << 10,
		},
	}
}

// fastServer/fastFollower keep the test wall-clock short.
func fastServerOptions() ServerOptions {
	return ServerOptions{Heartbeat: 30 * time.Millisecond, Poll: 2 * time.Millisecond}
}

func fastFollowerOptions(addr string) FollowerOptions {
	return FollowerOptions{
		Addr:             addr,
		HeartbeatTimeout: 2 * time.Second,
		RetryBase:        10 * time.Millisecond,
		RetryMax:         200 * time.Millisecond,
		RetrySeed:        1,
	}
}

func pushN(t *testing.T, m *pskyline.Monitor, rng *rand.Rand, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		e := pskyline.Element{
			Point: []float64{rng.Float64(), rng.Float64()},
			Prob:  0.05 + 0.95*rng.Float64(),
			TS:    int64(i),
		}
		if _, err := m.Push(e); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
}

// waitApplied polls until the follower's apply position reaches target.
func waitApplied(t *testing.T, f *Follower, target uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if f.Monitor().NextSeq() >= target {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at seq %d, want %d (info %+v)",
				f.Monitor().NextSeq(), target, f.Info())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// snapshotBytes drains the monitor and serializes its full state; two
// monitors at the same stream position must produce identical bytes.
func snapshotBytes(t *testing.T, m *pskyline.Monitor) []byte {
	t.Helper()
	m.Drain()
	var b bytes.Buffer
	if err := m.Snapshot(&b); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return b.Bytes()
}

// TestFollowerMirrorsPrimary is the differential acceptance test: a
// follower replaying shipped segments and live tail must be byte-identical
// to the primary at the same sequence — including after a mid-stream
// disconnect and reconnect.
func TestFollowerMirrorsPrimary(t *testing.T) {
	primary, err := pskyline.NewMonitor(testOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	srv, err := NewServer(primary, "127.0.0.1:0", fastServerOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rng := rand.New(rand.NewSource(42))
	pushN(t, primary, rng, 200) // a backlog of sealed segments plus a live tail

	f, err := StartFollower(testOptions(t.TempDir()), fastFollowerOptions(srv.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	waitApplied(t, f, primary.NextSeq())
	if got, want := snapshotBytes(t, f.Monitor()), snapshotBytes(t, primary); !bytes.Equal(got, want) {
		t.Fatalf("replica diverged after initial catch-up: %d vs %d snapshot bytes", len(got), len(want))
	}

	// Sever the session mid-stream while the primary keeps ingesting; the
	// reconnect handshake must resume from the replica's true position
	// without skipping or double-applying.
	pushN(t, primary, rng, 100)
	f.DropConnection()
	pushN(t, primary, rng, 100)
	waitApplied(t, f, primary.NextSeq())
	if got, want := snapshotBytes(t, f.Monitor()), snapshotBytes(t, primary); !bytes.Equal(got, want) {
		t.Fatal("replica diverged after disconnect/reconnect")
	}

	// The primary's lag gauges must observe this follower converging.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Status()
		if len(st.Followers) == 1 && st.Followers[0].LagSeq == 0 && st.Followers[0].CaughtUpOnce {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lag gauges never converged: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	var prom bytes.Buffer
	if err := srv.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{"pskyline_repl_followers 1", "pskyline_repl_follower_lag_seq{", "pskyline_repl_follower_lag_seconds{"} {
		if !strings.Contains(prom.String(), series) {
			t.Fatalf("prometheus output missing %q:\n%s", series, prom.String())
		}
	}
}

// TestCheckpointCatchup starts the follower long after the primary's early
// log has been garbage-collected: the session must ship the newest
// checkpoint, install it on the replica, and stream the tail from there —
// ending byte-identical.
func TestCheckpointCatchup(t *testing.T) {
	opt := testOptions(t.TempDir())
	opt.Durability.SegmentBytes = 512
	opt.Durability.CheckpointEvery = 50
	primary, err := pskyline.NewMonitor(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()

	rng := rand.New(rand.NewSource(7))
	pushN(t, primary, rng, 400) // checkpoints + GC leave only a recent suffix on disk

	srv, err := NewServer(primary, "127.0.0.1:0", fastServerOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	fOpt := testOptions(t.TempDir())
	f, err := StartFollower(fOpt, fastFollowerOptions(srv.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	waitApplied(t, f, primary.NextSeq())
	if f.Info().CheckpointCatchups == 0 {
		t.Fatalf("expected a checkpoint catch-up, info %+v", f.Info())
	}
	if srv.Status().CheckpointSends == 0 {
		t.Fatalf("primary never recorded a checkpoint send: %+v", srv.Status())
	}
	if got, want := snapshotBytes(t, f.Monitor()), snapshotBytes(t, primary); !bytes.Equal(got, want) {
		t.Fatal("replica diverged after checkpoint catch-up")
	}

	// Live tail still flows after the catch-up path.
	pushN(t, primary, rng, 60)
	waitApplied(t, f, primary.NextSeq())
	if got, want := snapshotBytes(t, f.Monitor()), snapshotBytes(t, primary); !bytes.Equal(got, want) {
		t.Fatal("replica diverged on the post-checkpoint tail")
	}
}

// TestPromotion kills the primary and promotes the follower: the promoted
// node must be writable, carry a bumped durable epoch, and continuing the
// stream on it must match an uninterrupted oracle byte for byte.
func TestPromotion(t *testing.T) {
	primary, err := pskyline.NewMonitor(testOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(primary, "127.0.0.1:0", fastServerOptions())
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	pushN(t, primary, rng, 150)

	fDir := t.TempDir()
	f, err := StartFollower(testOptions(fDir), fastFollowerOptions(srv.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	waitApplied(t, f, primary.NextSeq())

	// Primary dies.
	srv.Close()
	primary.Close()

	promoted, err := f.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if e, err := LoadEpoch(fDir); err != nil || e != 1 {
		t.Fatalf("epoch after promotion: %d, %v (want 1)", e, err)
	}
	if f.Epoch() != 1 {
		t.Fatalf("in-memory epoch %d, want 1", f.Epoch())
	}

	// The promoted node accepts writes; an uninterrupted oracle fed the
	// same stream must agree exactly.
	rng2 := rand.New(rand.NewSource(11))
	oracle, err := pskyline.NewMonitor(pskyline.Options{Dims: 2, Window: 64, Thresholds: []float64{0.3}})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	pushN(t, oracle, rng2, 150)
	pushN(t, promoted, rng, 80)
	pushN(t, oracle, rng2, 80)
	if got, want := snapshotBytes(t, promoted), snapshotBytes(t, oracle); !bytes.Equal(got, want) {
		t.Fatal("promoted node diverged from the uninterrupted oracle")
	}

	// Close after promotion must not tear down the transferred monitor.
	if err := f.Close(); err != nil {
		t.Fatalf("close after promote: %v", err)
	}
	if _, err := promoted.Push(pskyline.Element{Point: []float64{0.5, 0.5}, Prob: 0.5}); err != nil {
		t.Fatalf("promoted monitor unusable after follower close: %v", err)
	}
	promoted.Close()

	// Promote is idempotent.
	if _, err := f.Promote(); err != nil {
		t.Fatalf("second promote: %v", err)
	}
}

// TestStalePrimaryRejected: a follower that has witnessed a newer epoch
// out-fences a deposed primary — the primary must refuse it and the
// follower must stop retrying.
func TestStalePrimaryRejected(t *testing.T) {
	primary, err := pskyline.NewMonitor(testOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	srv, err := NewServer(primary, "127.0.0.1:0", fastServerOptions()) // epoch 0
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	fDir := t.TempDir()
	if err := StoreEpoch(fDir, 5); err != nil {
		t.Fatal(err)
	}
	f, err := StartFollower(testOptions(fDir), fastFollowerOptions(srv.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	deadline := time.Now().Add(5 * time.Second)
	for !f.Info().Rejected {
		if time.Now().After(deadline) {
			t.Fatalf("follower never saw the rejection: %+v", f.Info())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if info := f.Info(); !strings.Contains(info.LastError, "stale primary") {
		t.Fatalf("unexpected rejection reason: %+v", info)
	}
	if st := srv.Status(); st.Rejects == 0 {
		t.Fatalf("primary did not count the rejection: %+v", st)
	}
}

// TestConfigMismatchRejected mirrors Open's checkpoint/Options check at
// the replication boundary: differently configured operators must not pair.
func TestConfigMismatchRejected(t *testing.T) {
	primary, err := pskyline.NewMonitor(testOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	srv, err := NewServer(primary, "127.0.0.1:0", fastServerOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	opt := testOptions(t.TempDir())
	opt.Window = 128 // primary has 64
	f, err := StartFollower(opt, fastFollowerOptions(srv.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	deadline := time.Now().Add(5 * time.Second)
	for !f.Info().Rejected {
		if time.Now().After(deadline) {
			t.Fatalf("config mismatch not rejected: %+v", f.Info())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if info := f.Info(); !strings.Contains(info.LastError, "configuration mismatch") {
		t.Fatalf("unexpected rejection reason: %+v", info)
	}
}

// TestFollowerLifecycleNoLeaks cycles the full follower lifecycle —
// connect, stream, forced disconnect, reconnect, close — and checks every
// goroutine is reclaimed.
func TestFollowerLifecycleNoLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	for cycle := 0; cycle < 3; cycle++ {
		primary, err := pskyline.NewMonitor(testOptions(t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(primary, "127.0.0.1:0", fastServerOptions())
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(cycle)))
		pushN(t, primary, rng, 50)
		f, err := StartFollower(testOptions(t.TempDir()), fastFollowerOptions(srv.Addr().String()))
		if err != nil {
			t.Fatal(err)
		}
		waitApplied(t, f, primary.NextSeq())
		f.DropConnection()
		pushN(t, primary, rng, 50)
		waitApplied(t, f, primary.NextSeq())
		if err := f.Close(); err != nil {
			t.Fatalf("follower close: %v", err)
		}
		if err := f.Close(); err != nil { // idempotent
			t.Fatalf("second follower close: %v", err)
		}
		if err := srv.Close(); err != nil {
			t.Fatalf("server close: %v", err)
		}
		if err := srv.Close(); err != nil { // idempotent
			t.Fatalf("second server close: %v", err)
		}
		if err := primary.Close(); err != nil {
			t.Fatalf("primary close: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now, %d at start", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
