// Package repl is the replication subsystem: a stdlib-only framed TCP
// transport in which a primary streams its write-ahead log — sealed segments
// plus the live committed tail — to followers, each of which replays the
// records through the normal durable ingestion path into a read-only replica.
//
// The WAL is already a replication log (every committed record is a
// CRC-framed, sequence-numbered element), so the wire layer ships the
// on-disk record bytes verbatim: what a follower appends to its own log is
// bit-identical to what the primary logged, and the engine state it rebuilds
// is gob-byte-identical to the primary's at the same sequence. Followers far
// behind the retained log catch up from the primary's newest installed
// checkpoint (the same atomic-install ckpt-*.ckpt blobs recovery uses), then
// stream the tail from the checkpoint's position.
//
// See DESIGN.md §16 for the architecture, consistency model and promotion
// semantics.
package repl

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire frame, all fixed-width fields little-endian:
//
//	uint32  payload length (≤ maxFrame)
//	uint32  CRC32-Castagnoli of the payload
//	payload:
//	  byte    frame type
//	  uint64  epoch
//	  ...     type-specific body
//
// Control frames (hello, welcome, reject, heartbeat, ack, checkpoint
// begin/end) carry JSON bodies — they are rare and tiny, and JSON keeps the
// handshake evolvable. The two hot frames are binary: records carries raw
// WAL record bytes (already individually length+CRC framed), ckptChunk
// carries a slice of the checkpoint blob.
//
// The epoch rides in every frame header, not just the handshake: a follower
// drops the connection the moment a frame disagrees with the session epoch,
// so a primary deposed mid-stream cannot keep feeding a promoted cluster.
const (
	protoVersion = 1

	frameHdrLen  = 8
	frameMetaLen = 9 // type byte + epoch
	// maxFrame bounds a frame payload so a corrupt length prefix is
	// rejected instead of driving a huge allocation. Checkpoint chunks and
	// record batches are far smaller.
	maxFrame = 8 << 20
)

// Frame types.
const (
	frameHello     byte = 1 // follower → primary: helloMsg
	frameWelcome   byte = 2 // primary → follower: welcomeMsg
	frameReject    byte = 3 // primary → follower: rejectMsg, then close
	frameCkptBegin byte = 4 // primary → follower: ckptBeginMsg
	frameCkptChunk byte = 5 // primary → follower: raw checkpoint bytes
	frameCkptEnd   byte = 6 // primary → follower: ckptEndMsg
	frameRecords   byte = 7 // primary → follower: recordsHdr + raw WAL records
	frameHeartbeat byte = 8 // primary → follower: heartbeatMsg
	frameAck       byte = 9 // follower → primary: ackMsg
)

// recordsHdrLen prefixes a records frame body: the primary's send wall clock
// (nanoseconds) and its committed watermark at send time, then the raw
// record bytes.
const recordsHdrLen = 16

var (
	errFrameTooBig = errors.New("repl: frame exceeds size bound")
	errFrameCRC    = errors.New("repl: frame CRC mismatch")
	errFrameShort  = errors.New("repl: frame shorter than its header")
)

var frameCRCTable = crc32.MakeTable(crc32.Castagnoli)

// helloMsg opens a session: the follower announces its protocol, the newest
// epoch it has seen, its stream configuration, and the sequence it wants to
// stream from. The primary rejects a configuration mismatch the same way
// Open rejects a checkpoint/Options mismatch — replicating between
// differently configured operators silently diverges, so it is refused.
type helloMsg struct {
	Proto      int       `json:"proto"`
	Epoch      uint64    `json:"epoch"`
	Dims       int       `json:"dims"`
	Window     int       `json:"window"`
	Period     int64     `json:"period"`
	Thresholds []float64 `json:"thresholds"`
	From       uint64    `json:"from"`
}

// welcomeMsg accepts a session. Checkpoint=true announces a checkpoint
// transfer (ckptBegin/Chunk/End) before streaming starts at CkptSeq;
// otherwise streaming starts at the hello's From.
type welcomeMsg struct {
	Epoch      uint64 `json:"epoch"`
	Committed  uint64 `json:"committed"`
	Checkpoint bool   `json:"checkpoint"`
	CkptSeq    uint64 `json:"ckpt_seq"`
	CkptSize   int64  `json:"ckpt_size"`
}

type rejectMsg struct {
	Reason string `json:"reason"`
}

type ckptBeginMsg struct {
	Seq  uint64 `json:"seq"`
	Size int64  `json:"size"`
}

// ckptEndMsg closes a checkpoint transfer with a whole-blob checksum — each
// chunk frame is CRC-guarded in transit, but the end-to-end sum also catches
// a primary-side read tearing.
type ckptEndMsg struct {
	CRC uint32 `json:"crc"`
}

type heartbeatMsg struct {
	Committed uint64 `json:"committed"`
	WallNanos int64  `json:"wall_nanos"`
}

// ackMsg reports follower progress: Applied is the sequence the follower's
// engine has fully applied (its next expected sequence), EchoNanos echoes
// the WallNanos stamp of the frame that carried it. The primary derives both
// lag gauges from acks alone — sequence lag from Applied against its own
// committed watermark, and seconds lag from the echoed stamp against its own
// clock, so follower clock skew never pollutes the metric.
type ackMsg struct {
	Applied   uint64 `json:"applied"`
	EchoNanos int64  `json:"echo_nanos"`
}

// appendFrame encodes one frame onto buf and returns the extended slice.
func appendFrame(buf []byte, typ byte, epoch uint64, body []byte) []byte {
	n := frameMetaLen + len(body)
	var hdr [frameHdrLen + frameMetaLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(n))
	hdr[8] = typ
	binary.LittleEndian.PutUint64(hdr[9:], epoch)
	crc := crc32.Update(0, frameCRCTable, hdr[8:])
	crc = crc32.Update(crc, frameCRCTable, body)
	binary.LittleEndian.PutUint32(hdr[4:], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, body...)
}

// appendJSONFrame marshals a control message body and frames it.
func appendJSONFrame(buf []byte, typ byte, epoch uint64, msg any) ([]byte, error) {
	body, err := json.Marshal(msg)
	if err != nil {
		return buf, fmt.Errorf("repl: encode frame %d: %w", typ, err)
	}
	return appendFrame(buf, typ, epoch, body), nil
}

// readFrame reads one frame, reusing scratch for the payload. The returned
// body aliases the returned scratch buffer — callers copy what they retain
// across reads. Errors are either transport errors from r or one of the
// framing errors (errFrameTooBig, errFrameCRC, errFrameShort); all of them
// poison the connection.
func readFrame(r *bufio.Reader, scratch []byte) (typ byte, epoch uint64, body []byte, out []byte, err error) {
	var hdr [frameHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, scratch, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:4]))
	if n > maxFrame {
		return 0, 0, nil, scratch, errFrameTooBig
	}
	if n < frameMetaLen {
		return 0, 0, nil, scratch, errFrameShort
	}
	if cap(scratch) < n {
		scratch = make([]byte, n)
	}
	scratch = scratch[:n]
	if _, err := io.ReadFull(r, scratch); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, nil, scratch, err
	}
	if crc32.Checksum(scratch, frameCRCTable) != binary.LittleEndian.Uint32(hdr[4:]) {
		return 0, 0, nil, scratch, errFrameCRC
	}
	typ = scratch[0]
	epoch = binary.LittleEndian.Uint64(scratch[1:9])
	return typ, epoch, scratch[frameMetaLen:], scratch, nil
}

// decodeJSON unmarshals a control frame body.
func decodeJSON(body []byte, into any) error {
	if err := json.Unmarshal(body, into); err != nil {
		return fmt.Errorf("repl: decode frame body: %w", err)
	}
	return nil
}

// appendRecordsFrame frames a batch of raw WAL record bytes with the send
// stamp and the primary's committed watermark.
func appendRecordsFrame(buf []byte, epoch uint64, wallNanos int64, committed uint64, recs []byte) []byte {
	n := frameMetaLen + recordsHdrLen + len(recs)
	var hdr [frameHdrLen + frameMetaLen + recordsHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(n))
	hdr[8] = frameRecords
	binary.LittleEndian.PutUint64(hdr[9:], epoch)
	binary.LittleEndian.PutUint64(hdr[17:], uint64(wallNanos))
	binary.LittleEndian.PutUint64(hdr[25:], committed)
	crc := crc32.Update(0, frameCRCTable, hdr[8:])
	crc = crc32.Update(crc, frameCRCTable, recs)
	binary.LittleEndian.PutUint32(hdr[4:], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, recs...)
}

// splitRecordsBody splits a records frame body into its stamp, committed
// watermark and raw record bytes.
func splitRecordsBody(body []byte) (wallNanos int64, committed uint64, recs []byte, err error) {
	if len(body) < recordsHdrLen {
		return 0, 0, nil, errFrameShort
	}
	wallNanos = int64(binary.LittleEndian.Uint64(body[0:]))
	committed = binary.LittleEndian.Uint64(body[8:])
	return wallNanos, committed, body[recordsHdrLen:], nil
}
