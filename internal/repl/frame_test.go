package repl

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var wire []byte
	wire = appendFrame(wire, frameHello, 7, []byte(`{"proto":1}`))
	wire = appendFrame(wire, frameHeartbeat, 7, nil)
	wire = appendRecordsFrame(wire, 9, 123456789, 42, []byte("rawrecords"))

	r := bufio.NewReader(bytes.NewReader(wire))
	var scratch []byte

	typ, epoch, body, scratch, err := readFrame(r, scratch)
	if err != nil || typ != frameHello || epoch != 7 || string(body) != `{"proto":1}` {
		t.Fatalf("frame 1: typ=%d epoch=%d body=%q err=%v", typ, epoch, body, err)
	}
	typ, epoch, body, scratch, err = readFrame(r, scratch)
	if err != nil || typ != frameHeartbeat || epoch != 7 || len(body) != 0 {
		t.Fatalf("frame 2: typ=%d epoch=%d body=%q err=%v", typ, epoch, body, err)
	}
	typ, epoch, body, _, err = readFrame(r, scratch)
	if err != nil || typ != frameRecords || epoch != 9 {
		t.Fatalf("frame 3: typ=%d epoch=%d err=%v", typ, epoch, err)
	}
	wall, committed, recs, err := splitRecordsBody(body)
	if err != nil || wall != 123456789 || committed != 42 || string(recs) != "rawrecords" {
		t.Fatalf("records body: wall=%d committed=%d recs=%q err=%v", wall, committed, recs, err)
	}
	if _, _, _, _, err := readFrame(r, nil); err != io.EOF {
		t.Fatalf("after last frame: %v, want EOF", err)
	}
}

func TestFrameRejectsDamage(t *testing.T) {
	frame := appendFrame(nil, frameAck, 3, []byte(`{"applied":10}`))

	// Bit flip in the body → CRC mismatch.
	flipped := append([]byte(nil), frame...)
	flipped[len(flipped)-2] ^= 0x10
	if _, _, _, _, err := readFrame(bufio.NewReader(bytes.NewReader(flipped)), nil); !errors.Is(err, errFrameCRC) {
		t.Fatalf("bit flip: %v, want errFrameCRC", err)
	}

	// Truncation mid-payload → unexpected EOF, not a hang or panic.
	if _, _, _, _, err := readFrame(bufio.NewReader(bytes.NewReader(frame[:len(frame)-4])), nil); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated payload: %v, want ErrUnexpectedEOF", err)
	}

	// Oversized length prefix → bounded rejection, no allocation attempt.
	big := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(big[:4], maxFrame+1)
	if _, _, _, _, err := readFrame(bufio.NewReader(bytes.NewReader(big)), nil); !errors.Is(err, errFrameTooBig) {
		t.Fatalf("oversized: %v, want errFrameTooBig", err)
	}

	// Length shorter than the type+epoch header → rejected.
	short := appendFrame(nil, frameAck, 3, nil)
	binary.LittleEndian.PutUint32(short[:4], 4)
	if _, _, _, _, err := readFrame(bufio.NewReader(bytes.NewReader(short)), nil); !errors.Is(err, errFrameShort) {
		t.Fatalf("short: %v, want errFrameShort", err)
	}
}

// FuzzReplFrame throws arbitrary bytes at the wire-frame reader: it must
// never panic, never return a frame whose checksum did not verify, and a
// frame it does accept must re-encode to the identical bytes (the framing is
// canonical). Mirrors FuzzWALRecord for the record codec one layer down.
func FuzzReplFrame(f *testing.F) {
	// Seed corpus: each frame type with a plausible body, truncations and
	// bit flips, and a records frame.
	hello := appendFrame(nil, frameHello, 1, []byte(`{"proto":1,"epoch":1,"dims":2,"window":100,"from":0}`))
	f.Add(hello)
	f.Add(hello[:len(hello)/2])
	flipped := append([]byte(nil), hello...)
	flipped[9] ^= 0x01 // epoch bit
	f.Add(flipped)
	f.Add(appendFrame(nil, frameHeartbeat, 1<<63, []byte(`{"committed":7}`)))
	f.Add(appendRecordsFrame(nil, 2, 42, 7, []byte{1, 2, 3}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, wire []byte) {
		r := bufio.NewReader(bytes.NewReader(wire))
		var scratch []byte
		off := 0
		for {
			typ, epoch, body, sc, err := readFrame(r, scratch)
			if err != nil {
				// Whatever the input, the reader must fail cleanly: either a
				// transport error or one of the framing errors.
				if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
					!errors.Is(err, errFrameTooBig) && !errors.Is(err, errFrameCRC) &&
					!errors.Is(err, errFrameShort) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			scratch = sc
			// An accepted frame is canonical: re-encoding it must reproduce
			// the wire bytes it was read from.
			re := appendFrame(nil, typ, epoch, body)
			if !bytes.Equal(re, wire[off:off+len(re)]) {
				t.Fatalf("accepted frame is not canonical:\n in  %x\n out %x", wire[off:off+len(re)], re)
			}
			off += len(re)
			// The declared epoch must round-trip through the header bytes.
			if got := binary.LittleEndian.Uint64(re[frameHdrLen+1:]); got != epoch {
				t.Fatalf("epoch corrupted in transit: %d != %d", got, epoch)
			}
		}
	})
}
