package repl

import (
	"errors"
	"time"
)

// Semi-sync replication: with ServerOptions.SemiSyncK > 0 the primary's
// Push/PushBatch block (via the Monitor's commit waiter, installed by
// NewServer) until K followers have acked the pushed sequence, bounded by
// AckWait. The guarantee is deadline-based, not absolute: when the quorum
// cannot keep up the stream *degrades* to async rather than stalling
// ingestion, and upgrades back automatically once K followers are within
// CatchupLag of the committed watermark. The state machine mirrors the WAL's
// healthy → retrying → degraded machine (internal/wal/health.go):
//
//	           ack timeout                EscalateAfter sustained
//	semisync ──────────────▶ degraded ──────────────────────────▶ async
//	    ▲  ▲                     │                                  │
//	    │  └─────────────────────┘        K followers within        │
//	    └─────────────────────────────────── CatchupLag ────────────┘
//
// plus a direct semisync → async edge on follower shortfall (fewer than K
// live followers — there is no quorum to wait for). Every transition is
// counted and surfaced through Status, /healthz and Prometheus.

// SyncState is the replication health state. Only SyncSemiSync blocks
// pushes; the other states exist so operators can see *why* the guarantee
// is currently not being enforced.
type SyncState int32

const (
	// SyncAsync: no quorum is enforced — SemiSyncK is zero, fewer than K
	// followers are connected, or degradation escalated. A primary with
	// SemiSyncK > 0 starts here and upgrades once K followers catch up.
	SyncAsync SyncState = iota
	// SyncDegraded: a quorum wait recently timed out; pushes no longer
	// block while the followers recover. Escalates to SyncAsync after
	// EscalateAfter without recovery.
	SyncDegraded
	// SyncSemiSync: the quorum is healthy and pushes block on K acks.
	SyncSemiSync
)

var syncStateNames = [...]string{SyncAsync: "async", SyncDegraded: "degraded", SyncSemiSync: "semisync"}

func (s SyncState) String() string {
	if int(s) < len(syncStateNames) {
		return syncStateNames[s]
	}
	return "state?"
}

// ErrServerClosed is the sticky error a blocked quorum wait resolves to when
// the replication server shuts down underneath it. The push it aborts has
// been applied and is locally durable; only the semi-sync guarantee went
// unmet.
var ErrServerClosed = errors.New("repl: server closed during semi-sync commit wait")

// syncWaiter is one push blocked on the quorum watermark.
type syncWaiter struct {
	seq  uint64 // engine position the quorum must reach (NextSeq after the push)
	ch   chan struct{}
	err  error // valid after ch closes
	done bool  // set (under s.mu) when satisfied or released
}

// syncState reports the current replication health state (lock-free).
func (s *Server) syncState() SyncState { return SyncState(s.syncA.Load()) }

// setSyncLocked moves the state machine, counting the transition and
// recording why. Callers hold s.mu.
func (s *Server) setSyncLocked(to SyncState, reason string) {
	from := SyncState(s.syncA.Load())
	if from == to {
		return
	}
	s.syncA.Store(int32(to))
	s.syncReason = reason
	if to > from {
		s.semUpgrades++
	} else {
		s.semDegrades++
	}
	if to == SyncDegraded {
		s.degradedAt = time.Now()
	}
	if from == SyncSemiSync {
		// The guarantee is suspended: release blocked pushes now rather
		// than letting each ride out its own AckWait timer. Their records
		// are applied and locally durable, so they resolve to success.
		s.releaseWaitersLocked(nil)
	}
}

// liveFollowersLocked counts followers that completed the handshake and
// whose connection has not died. Callers hold s.mu.
func (s *Server) liveFollowersLocked() int {
	n := 0
	for _, st := range s.conns {
		if st.ready && !st.dead {
			n++
		}
	}
	return n
}

// ackProgressLocked runs after every follower ack (and on follower loss):
// it recomputes the quorum watermark — the K-th highest applied sequence
// among live followers — advances the WAL's acked watermark, releases
// satisfied waiters, and upgrades the state machine when K followers are
// within CatchupLag of committed. Callers hold s.mu.
func (s *Server) ackProgressLocked() {
	k := s.opt.SemiSyncK
	if k <= 0 {
		return
	}
	committed := s.log.CommittedSeq()
	caughtUp := 0
	applied := s.appliedScratch[:0]
	for _, st := range s.conns {
		if !st.ready || st.dead {
			continue
		}
		applied = append(applied, st.applied)
		if st.applied >= committed || committed-st.applied <= s.opt.CatchupLag {
			caughtUp++
		}
	}
	s.appliedScratch = applied
	if len(applied) >= k {
		// The quorum watermark is the K-th highest applied sequence.
		// K is operationally tiny, so a partial selection sort suffices.
		for i := 0; i < k; i++ {
			maxI := i
			for j := i + 1; j < len(applied); j++ {
				if applied[j] > applied[maxI] {
					maxI = j
				}
			}
			applied[i], applied[maxI] = applied[maxI], applied[i]
		}
		if q := applied[k-1]; q > s.quorumSeq {
			s.quorumSeq = q
			s.log.SetAckedSeq(q)
			s.wakeWaitersLocked()
		}
	}
	if s.syncState() != SyncSemiSync && caughtUp >= k {
		s.setSyncLocked(SyncSemiSync, "quorum caught up")
	}
}

// wakeWaitersLocked releases every waiter at or below the quorum watermark.
// Callers hold s.mu.
func (s *Server) wakeWaitersLocked() {
	kept := s.waiters[:0]
	for _, w := range s.waiters {
		if w.seq <= s.quorumSeq {
			w.done = true
			close(w.ch)
			continue
		}
		kept = append(kept, w)
	}
	for i := len(kept); i < len(s.waiters); i++ {
		s.waiters[i] = nil
	}
	s.waiters = kept
}

// releaseWaitersLocked aborts every blocked waiter with err (server
// shutdown). Callers hold s.mu.
func (s *Server) releaseWaitersLocked(err error) {
	for i, w := range s.waiters {
		w.err = err
		w.done = true
		close(w.ch)
		s.waiters[i] = nil
	}
	s.waiters = s.waiters[:0]
}

// removeWaiterLocked unregisters a timed-out waiter. Callers hold s.mu.
func (s *Server) removeWaiterLocked(w *syncWaiter) {
	for i, x := range s.waiters {
		if x == w {
			last := len(s.waiters) - 1
			s.waiters[i] = s.waiters[last]
			s.waiters[last] = nil
			s.waiters = s.waiters[:last]
			return
		}
	}
}

// pokeLocked advances time-based transitions: sustained degradation
// escalates to async. Callers hold s.mu.
func (s *Server) pokeLocked(now time.Time) {
	if s.syncState() == SyncDegraded && s.opt.EscalateAfter > 0 &&
		now.Sub(s.degradedAt) >= s.opt.EscalateAfter {
		s.setSyncLocked(SyncAsync, "degradation sustained past escalate-after")
	}
}

// commitWait is the Monitor's commit waiter (pskyline.CommitWaiter): it
// blocks the calling push until the follower quorum acks seq, the AckWait
// deadline degrades the stream (nil — the push succeeded locally), or the
// server closes (ErrServerClosed). Runs outside the monitor's ingest lock.
func (s *Server) commitWait(seq uint64) error {
	if s.syncState() != SyncSemiSync {
		// Nothing to wait for; still advance time-based transitions so a
		// quiet degraded stream escalates without needing an ack.
		s.mu.Lock()
		s.pokeLocked(time.Now())
		s.mu.Unlock()
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.pokeLocked(time.Now())
	if s.syncState() != SyncSemiSync {
		s.mu.Unlock()
		return nil
	}
	s.semWaits++
	if s.quorumSeq >= seq {
		s.mu.Unlock()
		return nil
	}
	if s.liveFollowersLocked() < s.opt.SemiSyncK {
		// No quorum to wait for: degrade straight to async.
		s.semShortfalls++
		s.setSyncLocked(SyncAsync, "follower shortfall")
		s.mu.Unlock()
		return nil
	}
	w := &syncWaiter{seq: seq, ch: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()

	t := time.NewTimer(s.opt.AckWait)
	defer t.Stop()
	select {
	case <-w.ch:
		return w.err
	case <-t.C:
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if w.done {
		// Satisfied (or released) between the timer firing and the lock.
		return w.err
	}
	s.removeWaiterLocked(w)
	s.semWaitTimeouts++
	if s.syncState() == SyncSemiSync {
		s.setSyncLocked(SyncDegraded, "ack wait deadline exceeded")
	}
	return nil
}
