package repl

import (
	"bytes"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"pskyline"
	"pskyline/internal/netfault"
)

// waitSyncState polls the primary until its replication health state
// machine reaches want.
func waitSyncState(t *testing.T, srv *Server, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := srv.Status()
		if st.SyncState == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("sync state %q (reason %q, followers %d), want %q",
				st.SyncState, st.SyncReason, len(st.Followers), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// semiServerOptions is fastServerOptions plus semi-sync K=1 with short,
// test-friendly deadlines.
func semiServerOptions(ackWait, escalate time.Duration) ServerOptions {
	o := fastServerOptions()
	o.SemiSyncK = 1
	o.AckWait = ackWait
	o.EscalateAfter = escalate
	o.CatchupLag = 4
	return o
}

// TestSemiSyncMatchesAsyncByteIdentical is differential proof (a): a
// semi-sync primary and its follower are gob-byte-identical to an async
// pair fed the same stream — the quorum wait changes when Push returns,
// never what state the bytes land in.
func TestSemiSyncMatchesAsyncByteIdentical(t *testing.T) {
	type node struct {
		mon *pskyline.Monitor
		srv *Server
		f   *Follower
	}
	mk := func(opt ServerOptions, seed int64) node {
		mon, err := pskyline.NewMonitor(testOptions(t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(mon, "127.0.0.1:0", opt)
		if err != nil {
			t.Fatal(err)
		}
		f, err := StartFollower(testOptions(t.TempDir()), fastFollowerOptions(srv.Addr().String()))
		if err != nil {
			t.Fatal(err)
		}
		return node{mon, srv, f}
	}
	semi := mk(semiServerOptions(2*time.Second, 0), 1)
	async := mk(fastServerOptions(), 1)
	defer func() {
		for _, n := range []node{semi, async} {
			n.f.Close()
			n.srv.Close()
			n.mon.Close()
		}
	}()

	// Warm both pairs, then wait for the semi-sync primary to upgrade:
	// from here on its pushes block on the follower's acks.
	rngA, rngB := rand.New(rand.NewSource(42)), rand.New(rand.NewSource(42))
	pushN(t, semi.mon, rngA, 20)
	pushN(t, async.mon, rngB, 20)
	waitApplied(t, semi.f, semi.mon.NextSeq())
	waitSyncState(t, semi.srv, "semisync")

	pushN(t, semi.mon, rngA, 180)
	pushN(t, async.mon, rngB, 180)
	if st := semi.srv.Status(); st.Waits == 0 {
		t.Fatalf("semi-sync primary never waited on the quorum: %+v", st)
	}
	waitApplied(t, semi.f, semi.mon.NextSeq())
	waitApplied(t, async.f, async.mon.NextSeq())

	pBytes := snapshotBytes(t, semi.mon)
	for name, m := range map[string]*pskyline.Monitor{
		"async primary":    async.mon,
		"semisync replica": semi.f.Monitor(),
		"async replica":    async.f.Monitor(),
	} {
		if !bytes.Equal(pBytes, snapshotBytes(t, m)) {
			t.Fatalf("%s state differs from semi-sync primary at seq %d", name, semi.mon.NextSeq())
		}
	}
}

// TestSemiSyncDegradeHealUpgradeCycle is differential proof (b) and walks
// every edge of the state machine under a seeded partition: semisync →
// degraded within AckWait when a blackhole swallows the stream, degraded →
// async once degradation is sustained, ingestion at full speed throughout,
// and async → semisync after the partition heals.
func TestSemiSyncDegradeHealUpgradeCycle(t *testing.T) {
	inj := netfault.New(5)
	opt := semiServerOptions(100*time.Millisecond, 300*time.Millisecond)
	opt.Fault = inj
	primary, err := pskyline.NewMonitor(testOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	srv, err := NewServer(primary, "127.0.0.1:0", opt)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	f, err := StartFollower(testOptions(t.TempDir()), fastFollowerOptions(srv.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	rng := rand.New(rand.NewSource(7))
	pushN(t, primary, rng, 20)
	waitApplied(t, f, primary.NextSeq())
	waitSyncState(t, srv, "semisync")

	// Partition: every server->follower frame disappears into the void.
	inj.Inject(netfault.Rule{Op: netfault.OpWrite, Times: -1, Err: netfault.ErrBlackhole})
	start := time.Now()
	pushN(t, primary, rng, 1)
	if d := time.Since(start); d > time.Second {
		t.Fatalf("push under partition took %v, want ~AckWait (100ms)", d)
	}
	waitSyncState(t, srv, "degraded")

	// Degraded means no blocking: the partitioned primary ingests at full
	// speed.
	start = time.Now()
	pushN(t, primary, rng, 200)
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("200 degraded pushes took %v, want unblocked", d)
	}

	// Sustained degradation escalates to async (EscalateAfter = 300ms).
	time.Sleep(350 * time.Millisecond)
	pushN(t, primary, rng, 1) // poke the time-based transition
	waitSyncState(t, srv, "async")

	// Heal. The follower catches back up, acks flow, and the stream
	// upgrades to semi-sync on its own.
	inj.Clear()
	waitSyncState(t, srv, "semisync")
	waitApplied(t, f, primary.NextSeq())

	st := srv.Status()
	if st.Degrades < 2 || st.Upgrades < 2 || st.WaitTimeouts < 1 {
		t.Fatalf("transition counters off: %+v", st)
	}
	if st.QuorumAcked == 0 || primary.ReplicationLog().AckedSeq() == 0 {
		t.Fatalf("quorum watermark never advanced: %+v", st)
	}
	var prom strings.Builder
	if err := srv.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"pskyline_repl_sync_state 2",
		"pskyline_repl_semisync_k 1",
		"pskyline_repl_semisync_degrades_total",
		"pskyline_repl_semisync_upgrades_total",
		"pskyline_repl_quorum_acked_seq",
	} {
		if !strings.Contains(prom.String(), series) {
			t.Fatalf("prometheus output missing %q:\n%s", series, prom.String())
		}
	}
}

// TestSemiSyncShortfallOnFollowerLoss: losing the last quorum member drops
// the stream straight to async — there is nothing to wait for — and counts
// the shortfall.
func TestSemiSyncShortfallOnFollowerLoss(t *testing.T) {
	primary, err := pskyline.NewMonitor(testOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	srv, err := NewServer(primary, "127.0.0.1:0", semiServerOptions(2*time.Second, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	f, err := StartFollower(testOptions(t.TempDir()), fastFollowerOptions(srv.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	pushN(t, primary, rng, 10)
	waitApplied(t, f, primary.NextSeq())
	waitSyncState(t, srv, "semisync")

	f.Close()
	waitSyncState(t, srv, "async")
	if st := srv.Status(); st.Shortfalls == 0 {
		t.Fatalf("shortfall not counted: %+v", st)
	}
	// And pushes are unblocked.
	start := time.Now()
	pushN(t, primary, rng, 10)
	if d := time.Since(start); d > time.Second {
		t.Fatalf("pushes after shortfall took %v, want unblocked", d)
	}
}

// TestSemiSyncCloseReleasesBlockedPush is the satellite-4 guarantee: Close
// during a blocked quorum wait releases the waiter with the sticky
// ErrServerClosed — no leak, no deadlock — and the monitor keeps working.
func TestSemiSyncCloseReleasesBlockedPush(t *testing.T) {
	before := runtime.NumGoroutine()
	inj := netfault.New(9)
	opt := semiServerOptions(30*time.Second, 0) // AckWait can't release the waiter
	opt.Fault = inj
	primary, err := pskyline.NewMonitor(testOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(primary, "127.0.0.1:0", opt)
	if err != nil {
		t.Fatal(err)
	}
	f, err := StartFollower(testOptions(t.TempDir()), fastFollowerOptions(srv.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	pushN(t, primary, rng, 10)
	waitApplied(t, f, primary.NextSeq())
	waitSyncState(t, srv, "semisync")

	// Partition the outbound stream: the next push's records frame never
	// reaches the follower, so no ack comes back and the push blocks on
	// the quorum. (Blackholing server reads would be racy: an ack read
	// already in flight when the rule lands still returns.)
	inj.Inject(netfault.Rule{Op: netfault.OpWrite, Times: -1, Err: netfault.ErrBlackhole})
	pushed := make(chan error, 1)
	go func() {
		_, err := primary.Push(pskyline.Element{Point: []float64{0.5, 0.5}, Prob: 0.5, TS: 100})
		pushed <- err
	}()
	select {
	case err := <-pushed:
		t.Fatalf("push returned before close: %v", err)
	case <-time.After(150 * time.Millisecond):
	}

	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-pushed:
		if !errors.Is(err, ErrServerClosed) {
			t.Fatalf("blocked push resolved to %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("push still blocked after server close")
	}
	if err := <-done; err != nil {
		t.Fatalf("server close: %v", err)
	}
	// The waiter is uninstalled: pushes succeed immediately again.
	if _, err := primary.Push(pskyline.Element{Point: []float64{0.4, 0.4}, Prob: 0.5, TS: 101}); err != nil {
		t.Fatalf("push after close: %v", err)
	}

	f.Close()
	primary.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now, %d at start", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSemiSyncKillLossBound is differential proof (c): after a semi-sync
// primary dies mid-stream under a flaky (seeded reset-injecting) network,
// the promoted follower holds every quorum-acked record — loss is bounded
// to the un-acked suffix — and its state is byte-identical to an oracle fed
// the same prefix.
func TestSemiSyncKillLossBound(t *testing.T) {
	inj := netfault.New(13)
	// A flaky link: ~20% of server writes reset the connection, forever.
	inj.Inject(netfault.Rule{Op: netfault.OpWrite, Times: -1, Prob: 0.2, Err: netfault.ErrReset})
	opt := semiServerOptions(50*time.Millisecond, 200*time.Millisecond)
	opt.Fault = inj
	primary, err := pskyline.NewMonitor(testOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(primary, "127.0.0.1:0", opt)
	if err != nil {
		t.Fatal(err)
	}
	fo := fastFollowerOptions(srv.Addr().String())
	fo.RetryBase = 5 * time.Millisecond
	f, err := StartFollower(testOptions(t.TempDir()), fo)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(17))
	elems := make([]pskyline.Element, 300)
	for i := range elems {
		elems[i] = pskyline.Element{
			Point: []float64{rng.Float64(), rng.Float64()},
			Prob:  0.05 + 0.95*rng.Float64(),
			TS:    int64(i),
		}
	}
	for _, e := range elems {
		if _, err := primary.Push(e); err != nil {
			t.Fatalf("push: %v", err)
		}
	}

	// Hard stop, mid-churn: no drain, no waiting for the follower.
	acked := primary.ReplicationLog().AckedSeq()
	srv.Close()
	primary.Close()

	promoted, err := f.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer promoted.Close()
	got := promoted.NextSeq()
	if got < acked {
		t.Fatalf("acked record lost: promoted follower at seq %d < quorum-acked watermark %d", got, acked)
	}
	if got > uint64(len(elems)) {
		t.Fatalf("promoted follower at seq %d beyond the %d pushed", got, len(elems))
	}

	// Byte-identity against an oracle fed the surviving prefix.
	oracle, err := pskyline.NewMonitor(testOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	for _, e := range elems[:got] {
		if _, err := oracle.Push(e); err != nil {
			t.Fatalf("oracle push: %v", err)
		}
	}
	if !bytes.Equal(snapshotBytes(t, promoted), snapshotBytes(t, oracle)) {
		t.Fatalf("promoted state differs from oracle at seq %d", got)
	}
}

// TestFollowerTableConvergesUnderChurn is the satellite-1 audit: flapping a
// follower 10× — including flaps where the dying connection's writer is
// wedged in a blackholed write — must leave Status() reporting exactly the
// one live entry, promptly, not after AckTimeout/WriteTimeout.
func TestFollowerTableConvergesUnderChurn(t *testing.T) {
	inj := netfault.New(21)
	opt := fastServerOptions() // default (10s) AckTimeout: convergence must not lean on it
	opt.Fault = inj
	primary, err := pskyline.NewMonitor(testOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	srv, err := NewServer(primary, "127.0.0.1:0", opt)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	f, err := StartFollower(testOptions(t.TempDir()), fastFollowerOptions(srv.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	rng := rand.New(rand.NewSource(23))
	pushN(t, primary, rng, 10)
	waitApplied(t, f, primary.NextSeq())

	for flap := 0; flap < 10; flap++ {
		if flap%2 == 1 {
			// Wedge the old connection's writer: its next frame blocks in
			// a blackhole until the server write deadline (10s), so only
			// prompt dead-marking — not serveConn exit — can keep the
			// ghost out of Status.
			inj.Inject(netfault.Rule{Op: netfault.OpWrite, Times: 1, Err: netfault.ErrBlackhole})
		}
		f.DropConnection()
		pushN(t, primary, rng, 5)
		waitApplied(t, f, primary.NextSeq())
		deadline := time.Now().Add(2 * time.Second)
		for {
			n := len(srv.Status().Followers)
			if n == 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("flap %d: follower table has %d entries, want 1", flap, n)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	inj.Clear() // release wedged writers so Close is prompt
}

// TestFollowerBackoffCountsPostHandshakeFailures is the satellite-2 fix: a
// primary that accepts the handshake and then kills every session must see
// the follower back off exponentially, not hammer at RetryBase.
func TestFollowerBackoffCountsPostHandshakeFailures(t *testing.T) {
	inj := netfault.New(31)
	// Per-connection: the welcome (write #1) succeeds, the first streamed
	// frame (write #2) resets — every session fails right after handshake.
	inj.Inject(netfault.Rule{Op: netfault.OpWrite, After: 1, Times: -1, Err: netfault.ErrReset, PerConn: true})
	opt := fastServerOptions()
	opt.Fault = inj
	primary, err := pskyline.NewMonitor(testOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	srv, err := NewServer(primary, "127.0.0.1:0", opt)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rng := rand.New(rand.NewSource(37))
	pushN(t, primary, rng, 50) // a backlog so the post-welcome write is immediate

	fo := fastFollowerOptions(srv.Addr().String())
	fo.RetryBase = 5 * time.Millisecond
	fo.RetryMax = 400 * time.Millisecond
	f, err := StartFollower(testOptions(t.TempDir()), fo)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	time.Sleep(1200 * time.Millisecond)
	got := f.Info().Reconnects
	// With backoff counting these failures the delay ladder 5→10→…→400ms
	// allows ~9 sessions in 1.2s; resetting to RetryBase every time would
	// allow well over a hundred.
	if got < 3 {
		t.Fatalf("only %d reconnect attempts — sessions are not failing as arranged", got)
	}
	if got > 40 {
		t.Fatalf("%d reconnects in 1.2s: post-handshake failures are not counting toward backoff", got)
	}
}
