package repl

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pskyline"
	"pskyline/internal/netfault"
	"pskyline/internal/wal"
)

// ServerOptions tunes the primary side of replication. The zero value
// selects sane defaults.
type ServerOptions struct {
	// Epoch is the primary's fencing epoch (see epoch.go). Followers
	// carrying a newer epoch are rejected as evidence that this primary
	// has been deposed.
	Epoch uint64
	// Heartbeat is the idle keep-alive interval (default 500ms). Each
	// heartbeat carries the committed watermark and a wall-clock stamp the
	// follower echoes, which is what keeps the seconds-lag gauge live on
	// an idle stream.
	Heartbeat time.Duration
	// Poll is the tail-follow poll interval when the log is drained
	// (default 10ms).
	Poll time.Duration
	// BatchBytes bounds the raw record bytes per records frame
	// (default 256 KiB).
	BatchBytes int
	// AckTimeout is how long a connection may go without an ack before it
	// is declared dead and dropped (default 10s). Followers ack every
	// records frame and every heartbeat, so a healthy connection acks at
	// least once per Heartbeat.
	AckTimeout time.Duration
	// WriteTimeout bounds a single frame write (default 10s).
	WriteTimeout time.Duration

	// SemiSyncK enables semi-sync replication: pushes on the primary block
	// until this many followers have acked the pushed sequence (see
	// semisync.go). Zero (the default) keeps replication fully async.
	SemiSyncK int
	// AckWait bounds a semi-sync quorum wait (default 1s). A wait that
	// exceeds it degrades the stream to async instead of failing the push.
	AckWait time.Duration
	// CatchupLag is how close (in records) K followers must be to the
	// committed watermark before a degraded/async stream upgrades back to
	// semi-sync (default 64).
	CatchupLag uint64
	// EscalateAfter is how long the stream may stay degraded before it
	// escalates to async (default 10×AckWait). <0 disables escalation.
	EscalateAfter time.Duration
	// Fault, when set, wraps every accepted follower connection so reads
	// and writes pass through the injector's seeded schedule. Testing and
	// chaos drills only.
	Fault *netfault.Injector
}

func (o *ServerOptions) normalize() {
	if o.Heartbeat <= 0 {
		o.Heartbeat = 500 * time.Millisecond
	}
	if o.Poll <= 0 {
		o.Poll = 10 * time.Millisecond
	}
	if o.BatchBytes <= 0 {
		o.BatchBytes = 256 << 10
	}
	if o.AckTimeout <= 0 {
		o.AckTimeout = 10 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.SemiSyncK < 0 {
		o.SemiSyncK = 0
	}
	if o.AckWait <= 0 {
		o.AckWait = time.Second
	}
	if o.CatchupLag == 0 {
		o.CatchupLag = 64
	}
	if o.EscalateAfter == 0 {
		o.EscalateAfter = 10 * o.AckWait
	}
}

// FollowerStatus is one connected follower's progress as observed by the
// primary. Both lag figures are computed entirely from the primary's own
// clock and watermark against the follower's acks, so follower clock skew
// cannot pollute them.
type FollowerStatus struct {
	Addr       string  `json:"addr"`
	Applied    uint64  `json:"applied_seq"`
	LagSeq     uint64  `json:"lag_seq"`
	LagSeconds float64 `json:"lag_seconds"`
	// CaughtUpOnce reports whether this follower has ever acked the
	// then-current committed watermark.
	CaughtUpOnce bool `json:"caught_up_once"`
}

// ServerStatus summarizes the primary's replication state.
type ServerStatus struct {
	Epoch           uint64           `json:"epoch"`
	Committed       uint64           `json:"committed_seq"`
	Followers       []FollowerStatus `json:"followers"`
	CheckpointSends uint64           `json:"checkpoint_sends_total"`
	Rejects         uint64           `json:"rejects_total"`

	// Semi-sync health (semisync.go). SyncState is "async" when SemiSyncK
	// is zero; otherwise it walks the semisync → degraded → async machine.
	SemiSyncK    int    `json:"semisync_k"`
	SyncState    string `json:"sync_state"`
	SyncReason   string `json:"sync_reason,omitempty"`
	QuorumAcked  uint64 `json:"quorum_acked_seq"`
	Degrades     uint64 `json:"semisync_degrades_total"`
	Upgrades     uint64 `json:"semisync_upgrades_total"`
	Waits        uint64 `json:"semisync_waits_total"`
	WaitTimeouts uint64 `json:"semisync_wait_timeouts_total"`
	Shortfalls   uint64 `json:"semisync_shortfalls_total"`
}

// Server is the primary side: it accepts follower connections, performs
// the config/epoch handshake, optionally ships a checkpoint for catch-up,
// then streams committed WAL records and heartbeats while tracking
// per-follower lag from acks.
type Server struct {
	mon *pskyline.Monitor
	log *wal.WAL
	opt ServerOptions

	ln net.Listener
	wg sync.WaitGroup

	mu        sync.Mutex
	closed    bool
	conns     map[net.Conn]*connState
	ckptSends uint64
	rejects   uint64

	// Semi-sync machinery (semisync.go), guarded by mu except syncA.
	syncA           atomic.Int32 // SyncState, lock-free mirror
	syncReason      string       // why the state last changed
	quorumSeq       uint64       // K-th highest acked sequence (monotone)
	degradedAt      time.Time    // when the state last entered SyncDegraded
	waiters         []*syncWaiter
	appliedScratch  []uint64
	semDegrades     uint64
	semUpgrades     uint64
	semWaits        uint64
	semWaitTimeouts uint64
	semShortfalls   uint64
}

type connState struct {
	addr         string
	applied      uint64
	echoNanos    int64 // primary-clock stamp echoed by the newest ack
	ackWall      time.Time
	connectedAt  time.Time
	caughtUpOnce bool
	ready        bool // handshake complete; counts toward the quorum
	dead         bool // ack reader exited; invisible to Status and quorum
}

// NewServer starts replicating mon's WAL on addr. The monitor must be
// durable — the WAL is the replication log.
func NewServer(mon *pskyline.Monitor, addr string, opt ServerOptions) (*Server, error) {
	log := mon.ReplicationLog()
	if log == nil {
		return nil, errors.New("repl: monitor has no WAL; replication requires durability")
	}
	opt.normalize()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("repl: listen: %w", err)
	}
	s := &Server{mon: mon, log: log, opt: opt, ln: ln, conns: make(map[net.Conn]*connState)}
	// A semi-sync primary starts async — there is no quorum until K
	// followers connect and catch up — and upgrades on ack progress.
	s.syncA.Store(int32(SyncAsync))
	s.syncReason = "startup"
	if opt.SemiSyncK > 0 {
		mon.SetCommitWaiter(s.commitWait)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr is the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Epoch is the primary's fencing epoch.
func (s *Server) Epoch() uint64 { return s.opt.Epoch }

// Close stops accepting, drops every follower connection and waits for all
// connection goroutines to exit. Idempotent.
func (s *Server) Close() error {
	// Uninstall the commit waiter first so pushes racing Close skip the
	// quorum wait entirely rather than erroring.
	if s.opt.SemiSyncK > 0 {
		s.mon.SetCommitWaiter(nil)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	// Waits blocked at this instant resolve to the sticky shutdown error:
	// their pushes are applied and durable, but the quorum never acked.
	s.releaseWaitersLocked(ErrServerClosed)
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if s.opt.Fault != nil {
			c = s.opt.Fault.WrapConn(c)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		st := &connState{addr: c.RemoteAddr().String(), connectedAt: time.Now()}
		s.conns[c] = st
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(c, st)
	}
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	if st := s.conns[c]; st != nil {
		st.dead = true
	}
	delete(s.conns, c)
	s.lossCheckLocked()
	s.mu.Unlock()
	c.Close()
}

// lossCheckLocked reacts to losing a follower: with fewer than K live
// followers there is no quorum to wait for, so a blocking or degraded
// stream drops straight to async (waiters would otherwise ride out the
// full AckWait for a quorum that cannot form). Callers hold s.mu.
func (s *Server) lossCheckLocked() {
	if s.opt.SemiSyncK <= 0 || s.closed {
		return
	}
	if s.liveFollowersLocked() < s.opt.SemiSyncK && s.syncState() != SyncAsync {
		s.semShortfalls++
		s.setSyncLocked(SyncAsync, "follower shortfall")
	}
}

// reject sends a reject frame (best effort) and records the rejection.
func (s *Server) reject(c net.Conn, reason string) {
	s.mu.Lock()
	s.rejects++
	s.mu.Unlock()
	buf, err := appendJSONFrame(nil, frameReject, s.opt.Epoch, rejectMsg{Reason: reason})
	if err == nil {
		c.SetWriteDeadline(time.Now().Add(s.opt.WriteTimeout))
		c.Write(buf)
	}
}

func (s *Server) serveConn(c net.Conn, st *connState) {
	defer s.wg.Done()
	defer s.dropConn(c)

	br := bufio.NewReaderSize(c, 64<<10)
	c.SetReadDeadline(time.Now().Add(s.opt.AckTimeout))
	typ, _, body, _, err := readFrame(br, nil)
	if err != nil || typ != frameHello {
		return
	}
	var hello helloMsg
	if decodeJSON(body, &hello) != nil {
		return
	}
	if hello.Proto != protoVersion {
		s.reject(c, fmt.Sprintf("protocol version %d, this primary speaks %d", hello.Proto, protoVersion))
		return
	}
	if hello.Epoch > s.opt.Epoch {
		// The follower has seen a newer epoch: somebody was promoted past
		// us. This primary is stale and must not feed anyone.
		s.reject(c, fmt.Sprintf("stale primary: follower epoch %d > primary epoch %d", hello.Epoch, s.opt.Epoch))
		return
	}
	cfg := s.mon.ConfigSummary()
	if got := (pskyline.StreamConfigSummary{Dims: hello.Dims, Window: hello.Window, Period: hello.Period, Thresholds: hello.Thresholds}); !cfg.Equal(got) {
		s.reject(c, fmt.Sprintf("configuration mismatch: primary %+v, follower %+v", cfg, got))
		return
	}
	committed := s.log.CommittedSeq()
	if hello.From > committed {
		s.reject(c, fmt.Sprintf("follower ahead of primary: from %d > committed %d", hello.From, committed))
		return
	}

	start, viaCkpt, err := s.planStart(hello.From)
	if err != nil {
		s.reject(c, err.Error())
		return
	}

	welcome := welcomeMsg{Epoch: s.opt.Epoch, Committed: committed}
	var ckptSeq, ckptSize = uint64(0), int64(0)
	var ckptBlob io.ReadCloser
	if viaCkpt {
		seq, size, r, ok, cerr := s.mon.NewestCheckpoint()
		if cerr != nil || !ok {
			s.reject(c, "checkpoint unavailable")
			return
		}
		ckptSeq, ckptSize, ckptBlob = seq, size, r
		start = seq
		welcome.Checkpoint, welcome.CkptSeq, welcome.CkptSize = true, seq, size
		defer ckptBlob.Close()
	}
	buf, err := appendJSONFrame(nil, frameWelcome, s.opt.Epoch, welcome)
	if err != nil {
		return
	}
	c.SetWriteDeadline(time.Now().Add(s.opt.WriteTimeout))
	if _, err := c.Write(buf); err != nil {
		return
	}
	if viaCkpt {
		if !s.sendCheckpoint(c, ckptBlob, ckptSeq, ckptSize) {
			return
		}
		s.mu.Lock()
		s.ckptSends++
		s.mu.Unlock()
	}

	// The handshake is done: the follower now counts toward the semi-sync
	// quorum.
	s.mu.Lock()
	st.ready = true
	s.mu.Unlock()

	// Reader side: acks drive the lag gauges and the semi-sync quorum
	// watermark. Closing stop tears down the writer below; a reader that
	// exits also marks the entry dead so Status and the quorum stop seeing
	// it immediately, even while the writer drains its last frame.
	stop := make(chan struct{})
	go func() {
		defer func() {
			s.mu.Lock()
			st.dead = true
			s.lossCheckLocked()
			s.mu.Unlock()
			close(stop)
		}()
		var scratch []byte
		for {
			c.SetReadDeadline(time.Now().Add(s.opt.AckTimeout))
			typ, _, body, sc, err := readFrame(br, scratch)
			if err != nil || typ != frameAck {
				return
			}
			scratch = sc
			var ack ackMsg
			if decodeJSON(body, &ack) != nil {
				return
			}
			s.mu.Lock()
			st.applied = ack.Applied
			st.echoNanos = ack.EchoNanos
			st.ackWall = time.Now()
			if ack.Applied >= s.log.CommittedSeq() {
				st.caughtUpOnce = true
			}
			s.ackProgressLocked()
			s.mu.Unlock()
		}
	}()

	s.streamTail(c, start, stop)
	c.Close() // unblocks the ack reader
	<-stop
}

// planStart decides how to bring a follower at `from` onto the stream:
// directly from the retained log, or via the newest checkpoint when the log
// before `from` has been garbage-collected. The GC invariant (segments are
// retained from min(checkpointSeq, horizon)) guarantees every record at or
// after the newest checkpoint's position is still on disk, so checkpoint +
// tail is always a complete recipe.
func (s *Server) planStart(from uint64) (start uint64, viaCkpt bool, err error) {
	oldest, ok := s.log.OldestSeq()
	if ok && from >= oldest {
		return from, false, nil
	}
	if !ok && from >= s.log.CommittedSeq() {
		// Empty log and a caught-up follower: nothing to replay yet.
		return from, false, nil
	}
	// The log before `from` is gone; ship a checkpoint. Force one if the
	// primary has never checkpointed (possible only with automatic
	// checkpoints disabled).
	seq, _, r, ok, cerr := s.mon.NewestCheckpoint()
	if cerr != nil {
		return 0, false, fmt.Errorf("checkpoint unavailable: %w", cerr)
	}
	if ok {
		r.Close()
		return seq, true, nil
	}
	if cerr := s.mon.Checkpoint(); cerr != nil {
		return 0, false, fmt.Errorf("checkpoint unavailable: %w", cerr)
	}
	return 0, true, nil
}

// sendCheckpoint ships the blob in CRC-framed chunks bracketed by
// ckptBegin/ckptEnd; the end frame carries a whole-blob checksum.
func (s *Server) sendCheckpoint(c net.Conn, r io.Reader, seq uint64, size int64) bool {
	buf, err := appendJSONFrame(nil, frameCkptBegin, s.opt.Epoch, ckptBeginMsg{Seq: seq, Size: size})
	if err != nil {
		return false
	}
	c.SetWriteDeadline(time.Now().Add(s.opt.WriteTimeout))
	if _, err := c.Write(buf); err != nil {
		return false
	}
	chunk := make([]byte, 256<<10)
	var sum uint32
	for {
		n, rerr := r.Read(chunk)
		if n > 0 {
			sum = crc32.Update(sum, frameCRCTable, chunk[:n])
			buf = appendFrame(buf[:0], frameCkptChunk, s.opt.Epoch, chunk[:n])
			c.SetWriteDeadline(time.Now().Add(s.opt.WriteTimeout))
			if _, err := c.Write(buf); err != nil {
				return false
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return false
		}
	}
	buf, err = appendJSONFrame(buf[:0], frameCkptEnd, s.opt.Epoch, ckptEndMsg{CRC: sum})
	if err != nil {
		return false
	}
	c.SetWriteDeadline(time.Now().Add(s.opt.WriteTimeout))
	_, err = c.Write(buf)
	return err == nil
}

// streamTail follows the committed log from start, batching raw record
// bytes into records frames and heartbeating when idle. Returns when the
// connection dies, the log position is garbage-collected out from under the
// reader (the follower reconnects and catches up via checkpoint), or stop
// closes.
func (s *Server) streamTail(c net.Conn, start uint64, stop <-chan struct{}) {
	tr := s.log.NewTailReader(start)
	defer tr.Close()
	var recs, frame []byte
	lastSend := time.Now()
	for {
		select {
		case <-stop:
			return
		default:
		}
		out, _, _, err := tr.Next(recs[:0], s.opt.BatchBytes)
		if err != nil {
			return // ErrGone, ErrClosed, or corruption: drop and let the follower re-handshake
		}
		recs = out[:0]
		now := time.Now()
		if len(out) > 0 {
			frame = appendRecordsFrame(frame[:0], s.opt.Epoch, now.UnixNano(), s.log.CommittedSeq(), out)
		} else if now.Sub(lastSend) >= s.opt.Heartbeat {
			frame, err = appendJSONFrame(frame[:0], frameHeartbeat, s.opt.Epoch,
				heartbeatMsg{Committed: s.log.CommittedSeq(), WallNanos: now.UnixNano()})
			if err != nil {
				return
			}
		} else {
			select {
			case <-stop:
				return
			case <-time.After(s.opt.Poll):
			}
			continue
		}
		c.SetWriteDeadline(now.Add(s.opt.WriteTimeout))
		if _, err := c.Write(frame); err != nil {
			return
		}
		lastSend = now
	}
}

// Status reports the primary's replication state, followers sorted by
// address. Only live followers appear: entries whose ack reader has exited
// are dead already, and a connection that has gone silent past AckTimeout
// (a reconnecting follower's blackholed predecessor, for instance) is
// reaped here — closed and hidden — rather than left inflating the lag
// gauges until its write path notices.
func (s *Server) Status() ServerStatus {
	committed := s.log.CommittedSeq()
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pokeLocked(now)
	st := ServerStatus{Epoch: s.opt.Epoch, Committed: committed,
		CheckpointSends: s.ckptSends, Rejects: s.rejects,
		SemiSyncK: s.opt.SemiSyncK, SyncState: s.syncState().String(), SyncReason: s.syncReason,
		QuorumAcked: s.quorumSeq, Degrades: s.semDegrades, Upgrades: s.semUpgrades,
		Waits: s.semWaits, WaitTimeouts: s.semWaitTimeouts, Shortfalls: s.semShortfalls}
	for c, cs := range s.conns {
		if cs.dead || !cs.ready {
			// Not a follower: the ack reader has exited, or the handshake
			// has not completed (a wedged welcome write must not surface
			// as a lagging follower).
			continue
		}
		last := cs.ackWall
		if last.IsZero() {
			last = cs.connectedAt
		}
		if now.Sub(last) > s.opt.AckTimeout {
			// Ghost: no ack (or handshake progress) within AckTimeout.
			// Its own reader is about to hit the same deadline; closing
			// the conn hurries that along and the dead mark keeps it out
			// of every future report.
			cs.dead = true
			c.Close()
			s.lossCheckLocked()
			continue
		}
		f := FollowerStatus{Addr: cs.addr, Applied: cs.applied, CaughtUpOnce: cs.caughtUpOnce}
		if committed > cs.applied {
			f.LagSeq = committed - cs.applied
		}
		if cs.echoNanos > 0 {
			f.LagSeconds = float64(now.UnixNano()-cs.echoNanos) / 1e9
		}
		st.Followers = append(st.Followers, f)
	}
	sort.Slice(st.Followers, func(i, j int) bool { return st.Followers[i].Addr < st.Followers[j].Addr })
	return st
}

// WritePrometheus appends the replication series in Prometheus text
// exposition format: connected-follower count, checkpoint sends, handshake
// rejects, and per-follower applied/lag gauges labeled by remote address.
func (s *Server) WritePrometheus(w io.Writer) error {
	st := s.Status()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# TYPE pskyline_repl_followers gauge\npskyline_repl_followers %d\n", len(st.Followers))
	p("# TYPE pskyline_repl_epoch gauge\npskyline_repl_epoch %d\n", st.Epoch)
	p("# TYPE pskyline_repl_checkpoint_sends_total counter\npskyline_repl_checkpoint_sends_total %d\n", st.CheckpointSends)
	p("# TYPE pskyline_repl_rejects_total counter\npskyline_repl_rejects_total %d\n", st.Rejects)
	p("# TYPE pskyline_repl_follower_applied_seq gauge\n")
	for _, f := range st.Followers {
		p("pskyline_repl_follower_applied_seq{follower=%q} %d\n", f.Addr, f.Applied)
	}
	p("# TYPE pskyline_repl_follower_lag_seq gauge\n")
	for _, f := range st.Followers {
		p("pskyline_repl_follower_lag_seq{follower=%q} %d\n", f.Addr, f.LagSeq)
	}
	p("# TYPE pskyline_repl_follower_lag_seconds gauge\n")
	for _, f := range st.Followers {
		p("pskyline_repl_follower_lag_seconds{follower=%q} %g\n", f.Addr, f.LagSeconds)
	}
	stateVal := SyncAsync
	for v, name := range syncStateNames {
		if name == st.SyncState {
			stateVal = SyncState(v)
		}
	}
	p("# TYPE pskyline_repl_sync_state gauge\npskyline_repl_sync_state %d\n", stateVal)
	p("# TYPE pskyline_repl_semisync_k gauge\npskyline_repl_semisync_k %d\n", st.SemiSyncK)
	p("# TYPE pskyline_repl_quorum_acked_seq gauge\npskyline_repl_quorum_acked_seq %d\n", st.QuorumAcked)
	p("# TYPE pskyline_repl_semisync_degrades_total counter\npskyline_repl_semisync_degrades_total %d\n", st.Degrades)
	p("# TYPE pskyline_repl_semisync_upgrades_total counter\npskyline_repl_semisync_upgrades_total %d\n", st.Upgrades)
	p("# TYPE pskyline_repl_semisync_waits_total counter\npskyline_repl_semisync_waits_total %d\n", st.Waits)
	p("# TYPE pskyline_repl_semisync_wait_timeouts_total counter\npskyline_repl_semisync_wait_timeouts_total %d\n", st.WaitTimeouts)
	p("# TYPE pskyline_repl_semisync_shortfalls_total counter\npskyline_repl_semisync_shortfalls_total %d\n", st.Shortfalls)
	return err
}
