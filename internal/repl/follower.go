package repl

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pskyline"
	"pskyline/internal/netfault"
	"pskyline/internal/vfs"
	"pskyline/internal/wal"
)

// ErrRejected reports that the primary refused the session permanently
// (protocol or configuration mismatch, or this node out-fenced the
// primary). The follower stops retrying: reconnecting cannot fix it.
var ErrRejected = errors.New("repl: session rejected by primary")

// maxCkptBytes bounds an announced checkpoint transfer so a corrupt or
// hostile size cannot drive an unbounded allocation.
const maxCkptBytes = 4 << 30

// FollowerOptions tunes the replica side. The zero value of every field
// selects a default; Addr is required.
type FollowerOptions struct {
	// Addr is the primary's replication listen address.
	Addr string
	// DialTimeout bounds one connection attempt (default 5s).
	DialTimeout time.Duration
	// HeartbeatTimeout is the longest silence tolerated on an established
	// session before the follower declares the primary dead and reconnects
	// (default 3s; must comfortably exceed the primary's heartbeat
	// interval).
	HeartbeatTimeout time.Duration
	// RetryBase and RetryMax bound the reconnect backoff: delays start at
	// RetryBase and double (with jitter) up to RetryMax (defaults 100ms
	// and 5s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetrySeed seeds the backoff jitter; 0 derives one from the clock.
	RetrySeed int64
	// OnMonitor is invoked (from the follower's goroutine) whenever the
	// replica monitor is replaced — today only by checkpoint catch-up,
	// which rebuilds the monitor from the installed checkpoint. Serving
	// layers swap their handle here.
	OnMonitor func(*pskyline.Monitor)
	// Fault, when set, routes every dial (and the resulting connection's
	// reads and writes) through the injector's seeded schedule. Testing
	// and chaos drills only.
	Fault *netfault.Injector
}

func (o *FollowerOptions) normalize() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 3 * time.Second
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 100 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 5 * time.Second
	}
	if o.RetrySeed == 0 {
		o.RetrySeed = time.Now().UnixNano()
	}
}

// FollowerInfo is a point-in-time view of a replica's replication state,
// served by /healthz on replica nodes.
type FollowerInfo struct {
	Connected bool   `json:"connected"`
	Promoted  bool   `json:"promoted"`
	Rejected  bool   `json:"rejected"`
	LastError string `json:"last_error,omitempty"`
	Epoch     uint64 `json:"epoch"`
	// AppliedSeq is the replica's apply position (its monitor's NextSeq).
	AppliedSeq uint64 `json:"applied_seq"`
	// PrimaryCommitted is the primary's committed watermark as of the
	// newest frame received.
	PrimaryCommitted uint64 `json:"primary_committed_seq"`
	LagSeq           uint64 `json:"lag_seq"`
	// LastFrameAgeSeconds is the silence on the session: time since the
	// last frame (records or heartbeat) arrived. Negative means no frame
	// has arrived yet.
	LastFrameAgeSeconds float64 `json:"last_frame_age_seconds"`
	CheckpointCatchups  uint64  `json:"checkpoint_catchups_total"`
	Reconnects          uint64  `json:"reconnects_total"`
}

// Follower is the replica side: it owns a durable read-only Monitor, keeps
// a session to the primary (reconnecting with bounded backoff), replays
// shipped WAL records through the normal ingestion path, and installs
// shipped checkpoints when it has fallen behind the primary's retained
// log. Promote seals it as a new primary.
type Follower struct {
	opt pskyline.Options
	fo  FollowerOptions

	mon   atomic.Pointer[pskyline.Monitor]
	epoch atomic.Uint64

	mu             sync.Mutex
	conn           net.Conn // live session connection, for DropConnection
	closed         bool
	promoted       bool
	rejected       bool
	connected      bool
	lastErr        string
	primaryCommit  uint64
	lastFrameNanos int64
	ckptCatchups   uint64
	reconnects     uint64

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// StartFollower opens (or recovers) the replica's durable monitor from
// opt and starts replicating from fo.Addr. The monitor applies records
// synchronously (any AsyncQueue setting is overridden), so its WAL and
// engine state at sequence s are byte-identical to the primary's at s.
func StartFollower(opt pskyline.Options, fo FollowerOptions) (*Follower, error) {
	if opt.Durability.Dir == "" {
		return nil, errors.New("repl: follower requires Durability.Dir; the WAL is the replication log")
	}
	if fo.Addr == "" {
		return nil, errors.New("repl: follower requires a primary address")
	}
	fo.normalize()
	opt.AsyncQueue = 0 // synchronous apply: acked means applied
	mon, err := pskyline.NewMonitor(opt)
	if err != nil {
		return nil, err
	}
	epoch, err := LoadEpoch(opt.Durability.Dir)
	if err != nil {
		mon.Close()
		return nil, err
	}
	f := &Follower{opt: opt, fo: fo, stop: make(chan struct{}), done: make(chan struct{})}
	f.mon.Store(mon)
	f.epoch.Store(epoch)
	go f.run()
	return f, nil
}

// Monitor is the replica's current monitor. Checkpoint catch-up replaces
// it; register FollowerOptions.OnMonitor to observe the swap.
func (f *Follower) Monitor() *pskyline.Monitor { return f.mon.Load() }

// Epoch is the newest fencing epoch this node has seen (or, after
// Promote, the epoch it now owns).
func (f *Follower) Epoch() uint64 { return f.epoch.Load() }

// Info reports the replica's replication state.
func (f *Follower) Info() FollowerInfo {
	applied := f.mon.Load().NextSeq()
	now := time.Now().UnixNano()
	f.mu.Lock()
	defer f.mu.Unlock()
	info := FollowerInfo{
		Connected: f.connected, Promoted: f.promoted, Rejected: f.rejected,
		LastError: f.lastErr, Epoch: f.epoch.Load(), AppliedSeq: applied,
		PrimaryCommitted:   f.primaryCommit,
		CheckpointCatchups: f.ckptCatchups, Reconnects: f.reconnects,
		LastFrameAgeSeconds: -1,
	}
	if f.primaryCommit > applied {
		info.LagSeq = f.primaryCommit - applied
	}
	if f.lastFrameNanos > 0 {
		info.LastFrameAgeSeconds = float64(now-f.lastFrameNanos) / 1e9
	}
	return info
}

// WritePrometheus appends the replica-side replication series in
// Prometheus text exposition format.
func (f *Follower) WritePrometheus(w io.Writer) error {
	info := f.Info()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	p("# TYPE pskyline_repl_replica_connected gauge\npskyline_repl_replica_connected %d\n", b2i(info.Connected))
	p("# TYPE pskyline_repl_replica_applied_seq gauge\npskyline_repl_replica_applied_seq %d\n", info.AppliedSeq)
	p("# TYPE pskyline_repl_replica_lag_seq gauge\npskyline_repl_replica_lag_seq %d\n", info.LagSeq)
	p("# TYPE pskyline_repl_replica_epoch gauge\npskyline_repl_replica_epoch %d\n", info.Epoch)
	p("# TYPE pskyline_repl_replica_checkpoint_catchups_total counter\npskyline_repl_replica_checkpoint_catchups_total %d\n", info.CheckpointCatchups)
	p("# TYPE pskyline_repl_replica_reconnects_total counter\npskyline_repl_replica_reconnects_total %d\n", info.Reconnects)
	return err
}

// DropConnection severs the live session (if any); the follower
// reconnects with backoff. Exposed for tests and operational fault drills.
func (f *Follower) DropConnection() {
	f.mu.Lock()
	c := f.conn
	f.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// Promote stops replication, drains and checkpoints the monitor (sealing
// the log at a clean cut), durably bumps the fencing epoch past every
// epoch this node has seen, and returns the monitor — now writable, owned
// by the caller. A later Close leaves the promoted monitor alone.
func (f *Follower) Promote() (*pskyline.Monitor, error) {
	f.stopLoop()
	f.mu.Lock()
	if f.promoted {
		f.mu.Unlock()
		return f.mon.Load(), nil
	}
	f.mu.Unlock()
	mon := f.mon.Load()
	mon.Drain()
	if err := mon.Checkpoint(); err != nil {
		return nil, fmt.Errorf("repl: promote: %w", err)
	}
	epoch := f.epoch.Load() + 1
	if err := StoreEpoch(f.opt.Durability.Dir, epoch); err != nil {
		return nil, fmt.Errorf("repl: promote: %w", err)
	}
	f.epoch.Store(epoch)
	f.mu.Lock()
	f.promoted = true
	f.mu.Unlock()
	return mon, nil
}

// Close stops replication and closes the replica monitor. After a
// successful Promote the monitor belongs to the promoter and survives.
// Idempotent.
func (f *Follower) Close() error {
	f.stopLoop()
	f.mu.Lock()
	promoted := f.promoted
	f.mu.Unlock()
	if !promoted {
		return f.mon.Load().Close()
	}
	return nil
}

// stopLoop signals the session loop to exit, severs any live connection
// and waits for the loop goroutine.
func (f *Follower) stopLoop() {
	f.closeOnce.Do(func() {
		f.mu.Lock()
		f.closed = true
		c := f.conn
		f.mu.Unlock()
		close(f.stop)
		if c != nil {
			c.Close()
		}
	})
	<-f.done
}

func (f *Follower) stopped() bool {
	select {
	case <-f.stop:
		return true
	default:
		return false
	}
}

func (f *Follower) run() {
	defer close(f.done)
	rng := rand.New(rand.NewSource(f.fo.RetrySeed))
	delay := f.fo.RetryBase
	for {
		progressed, err := f.session()
		if f.stopped() {
			return
		}
		if errors.Is(err, ErrRejected) {
			f.mu.Lock()
			f.rejected = true
			f.lastErr = err.Error()
			f.connected = false
			f.mu.Unlock()
			return
		}
		f.mu.Lock()
		if err != nil {
			f.lastErr = err.Error()
		}
		f.connected = false
		f.reconnects++
		f.mu.Unlock()
		if progressed {
			delay = f.fo.RetryBase
		}
		// Bounded backoff with jitter in [delay/2, delay).
		sleep := delay/2 + time.Duration(rng.Int63n(int64(delay/2)+1))
		select {
		case <-f.stop:
			return
		case <-time.After(sleep):
		}
		if delay *= 2; delay > f.fo.RetryMax {
			delay = f.fo.RetryMax
		}
	}
}

// setConn publishes the session connection for DropConnection/stopLoop;
// returns false (closing c) if the follower is already stopping.
func (f *Follower) setConn(c net.Conn) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		c.Close()
		return false
	}
	f.conn = c
	return true
}

// session runs one connection to the primary: handshake, optional
// checkpoint catch-up, then the streaming loop. progressed reports whether
// the session made real replication progress — a checkpoint installed or at
// least one streamed frame applied and acked — and so may reset backoff. An
// accepted handshake alone is not progress: a primary that welcomes and then
// drops every session (mid-stream partition, fault injection) would
// otherwise be hammered at RetryBase forever.
func (f *Follower) session() (progressed bool, err error) {
	var conn net.Conn
	if f.fo.Fault != nil {
		conn, err = f.fo.Fault.Dial("tcp", f.fo.Addr, f.fo.DialTimeout)
	} else {
		conn, err = net.DialTimeout("tcp", f.fo.Addr, f.fo.DialTimeout)
	}
	if err != nil {
		return false, err
	}
	if !f.setConn(conn) {
		return false, errors.New("repl: follower closed")
	}
	defer func() {
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
		conn.Close()
	}()

	br := bufio.NewReaderSize(conn, 64<<10)
	mon := f.mon.Load()
	cfg := mon.ConfigSummary()
	hello := helloMsg{
		Proto: protoVersion, Epoch: f.epoch.Load(),
		Dims: cfg.Dims, Window: cfg.Window, Period: cfg.Period, Thresholds: cfg.Thresholds,
		From: mon.NextSeq(),
	}
	buf, err := appendJSONFrame(nil, frameHello, hello.Epoch, hello)
	if err != nil {
		return false, err
	}
	conn.SetWriteDeadline(time.Now().Add(f.fo.DialTimeout))
	if _, err := conn.Write(buf); err != nil {
		return false, err
	}

	conn.SetReadDeadline(time.Now().Add(f.fo.HeartbeatTimeout))
	typ, sessEpoch, body, scratch, err := readFrame(br, nil)
	if err != nil {
		return false, err
	}
	switch typ {
	case frameReject:
		var rej rejectMsg
		if derr := decodeJSON(body, &rej); derr != nil {
			return false, derr
		}
		return false, fmt.Errorf("%w: %s", ErrRejected, rej.Reason)
	case frameWelcome:
	default:
		return false, fmt.Errorf("repl: handshake: unexpected frame type %d", typ)
	}
	var welcome welcomeMsg
	if err := decodeJSON(body, &welcome); err != nil {
		return false, err
	}
	if sessEpoch < f.epoch.Load() {
		return false, fmt.Errorf("repl: primary epoch %d behind ours %d", sessEpoch, f.epoch.Load())
	}
	if sessEpoch > f.epoch.Load() {
		if err := StoreEpoch(f.opt.Durability.Dir, sessEpoch); err != nil {
			return false, err
		}
		f.epoch.Store(sessEpoch)
	}
	f.mu.Lock()
	f.connected = true
	f.primaryCommit = welcome.Committed
	f.lastFrameNanos = time.Now().UnixNano()
	f.mu.Unlock()

	if welcome.Checkpoint {
		if err := f.receiveCheckpoint(conn, br, &scratch, sessEpoch); err != nil {
			return progressed, err
		}
		progressed = true // the monitor advanced to the checkpoint position
		mon = f.mon.Load()
	}

	// Streaming loop: every frame must carry the session epoch, arrive
	// within the heartbeat timeout, and is acked with our apply position
	// and the primary's echoed send stamp.
	var ackBuf []byte
	var batch []pskyline.Element
	for {
		conn.SetReadDeadline(time.Now().Add(f.fo.HeartbeatTimeout))
		typ, fe, body, sc, err := readFrame(br, scratch)
		if err != nil {
			return progressed, err
		}
		scratch = sc
		if fe != sessEpoch {
			return progressed, fmt.Errorf("repl: epoch changed mid-stream: %d -> %d", sessEpoch, fe)
		}
		var committed uint64
		var echo int64
		switch typ {
		case frameRecords:
			wall, cm, recs, err := splitRecordsBody(body)
			if err != nil {
				return progressed, err
			}
			if batch, err = f.apply(mon, recs, batch[:0]); err != nil {
				return progressed, err
			}
			committed, echo = cm, wall
		case frameHeartbeat:
			var hb heartbeatMsg
			if err := decodeJSON(body, &hb); err != nil {
				return progressed, err
			}
			committed, echo = hb.Committed, hb.WallNanos
		default:
			return progressed, fmt.Errorf("repl: unexpected frame type %d mid-stream", typ)
		}
		f.mu.Lock()
		f.primaryCommit = committed
		f.lastFrameNanos = time.Now().UnixNano()
		f.mu.Unlock()
		ackBuf, err = appendJSONFrame(ackBuf[:0], frameAck, sessEpoch,
			ackMsg{Applied: mon.NextSeq(), EchoNanos: echo})
		if err != nil {
			return progressed, err
		}
		conn.SetWriteDeadline(time.Now().Add(f.fo.HeartbeatTimeout))
		if _, err := conn.Write(ackBuf); err != nil {
			return progressed, err
		}
		progressed = true // a frame made it through and was acked
	}
}

// apply replays a batch of raw WAL record bytes through the monitor's
// normal ingestion path. Records below the replica's apply position are
// replay overlap from a reconnect and are skipped; a record above it means
// the stream has a hole, which poisons the session (the reconnect
// handshake re-requests from the true position).
func (f *Follower) apply(mon *pskyline.Monitor, recs []byte, batch []pskyline.Element) ([]pskyline.Element, error) {
	expect := mon.NextSeq()
	err := wal.DecodeRecords(recs, func(r wal.Record) error {
		if r.Seq < expect {
			return nil
		}
		if r.Seq != expect {
			return fmt.Errorf("repl: stream gap: got seq %d, expect %d", r.Seq, expect)
		}
		batch = append(batch, pskyline.Element{
			Point: append([]float64(nil), r.Point...), Prob: r.Prob, TS: r.TS,
		})
		expect++
		return nil
	})
	if err != nil {
		return batch, err
	}
	if len(batch) > 0 {
		if _, err := mon.PushBatch(batch); err != nil {
			return batch, fmt.Errorf("repl: apply: %w", err)
		}
	}
	return batch, nil
}

// receiveCheckpoint accepts a ckptBegin/chunks/ckptEnd transfer, verifies
// the end-to-end checksum, atomically installs the blob as a checkpoint in
// the replica's durability directory and rebuilds the monitor from it —
// the same recovery path a restart takes. The old monitor is closed and
// every serving handle is swapped via OnMonitor.
func (f *Follower) receiveCheckpoint(conn net.Conn, br *bufio.Reader, scratch *[]byte, sessEpoch uint64) error {
	conn.SetReadDeadline(time.Now().Add(f.fo.HeartbeatTimeout))
	typ, fe, body, sc, err := readFrame(br, *scratch)
	if err != nil {
		return err
	}
	*scratch = sc
	if typ != frameCkptBegin || fe != sessEpoch {
		return fmt.Errorf("repl: checkpoint transfer: unexpected frame type %d", typ)
	}
	var begin ckptBeginMsg
	if err := decodeJSON(body, &begin); err != nil {
		return err
	}
	if begin.Size < 0 || begin.Size > maxCkptBytes {
		return fmt.Errorf("repl: checkpoint size %d out of range", begin.Size)
	}
	blob := make([]byte, 0, begin.Size)
	var sum uint32
	for {
		conn.SetReadDeadline(time.Now().Add(f.fo.HeartbeatTimeout))
		typ, fe, body, sc, err := readFrame(br, *scratch)
		if err != nil {
			return err
		}
		*scratch = sc
		if fe != sessEpoch {
			return fmt.Errorf("repl: epoch changed mid-checkpoint: %d -> %d", sessEpoch, fe)
		}
		if typ == frameCkptChunk {
			if int64(len(blob))+int64(len(body)) > begin.Size {
				return fmt.Errorf("repl: checkpoint overruns announced size %d", begin.Size)
			}
			sum = crc32.Update(sum, frameCRCTable, body)
			blob = append(blob, body...)
			continue
		}
		if typ != frameCkptEnd {
			return fmt.Errorf("repl: checkpoint transfer: unexpected frame type %d", typ)
		}
		var end ckptEndMsg
		if err := decodeJSON(body, &end); err != nil {
			return err
		}
		if int64(len(blob)) != begin.Size {
			return fmt.Errorf("repl: checkpoint short: %d of %d bytes", len(blob), begin.Size)
		}
		if sum != end.CRC {
			return fmt.Errorf("repl: checkpoint checksum mismatch")
		}
		break
	}

	// Install and rebuild. The old monitor must close first: it holds the
	// WAL and would race the reopen on the same directory.
	old := f.mon.Load()
	if err := old.Close(); err != nil {
		return fmt.Errorf("repl: checkpoint install: close: %w", err)
	}
	if _, err := wal.WriteCheckpoint(vfs.OS{}, f.opt.Durability.Dir, begin.Seq, func(w io.Writer) error {
		_, werr := w.Write(blob)
		return werr
	}); err != nil {
		// The monitor is closed; try to come back up on the old state so
		// the node keeps serving while the session retries.
		if mon, rerr := pskyline.NewMonitor(f.opt); rerr == nil {
			f.swapMonitor(mon)
		}
		return fmt.Errorf("repl: checkpoint install: %w", err)
	}
	mon, err := pskyline.NewMonitor(f.opt)
	if err != nil {
		return fmt.Errorf("repl: checkpoint reopen: %w", err)
	}
	f.swapMonitor(mon)
	f.mu.Lock()
	f.ckptCatchups++
	f.mu.Unlock()
	return nil
}

func (f *Follower) swapMonitor(mon *pskyline.Monitor) {
	f.mon.Store(mon)
	if f.fo.OnMonitor != nil {
		f.fo.OnMonitor(mon)
	}
}
