package repl

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The epoch is the fencing token of the replication protocol: a
// monotonically increasing counter persisted beside the WAL, bumped exactly
// once per promotion. A primary serves one epoch for its whole life; a
// follower records the newest epoch it has been served by. Because a
// follower's hello carries that epoch and a primary rejects any hello newer
// than its own, a deposed primary that comes back from the dead cannot
// re-acquire followers that have moved on — they out-fence it.

const epochFile = "repl-epoch"

// LoadEpoch reads the persisted epoch from a durability directory,
// returning 0 when none has been recorded yet.
func LoadEpoch(dir string) (uint64, error) {
	b, err := os.ReadFile(filepath.Join(dir, epochFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("repl: epoch: %w", err)
	}
	e, perr := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	if perr != nil {
		return 0, fmt.Errorf("repl: epoch: parse %q: %w", strings.TrimSpace(string(b)), perr)
	}
	return e, nil
}

// StoreEpoch durably records the epoch (write-temp + rename, so a crash
// mid-write never leaves a corrupt epoch file).
func StoreEpoch(dir string, epoch uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("repl: epoch: %w", err)
	}
	final := filepath.Join(dir, epochFile)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, []byte(strconv.FormatUint(epoch, 10)+"\n"), 0o644); err != nil {
		return fmt.Errorf("repl: epoch: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("repl: epoch: %w", err)
	}
	return nil
}
