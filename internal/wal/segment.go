package wal

import (
	"encoding/binary"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"pskyline/internal/vfs"
)

// Segment files open with an 8-byte magic so a stray file that happens to
// match the name pattern is rejected rather than misparsed.
var segMagic = []byte("PSKYWAL1")

const segHdrLen = 8

// segmentName returns the file name of the segment whose first record
// carries seq.
func segmentName(seq uint64) string {
	return fmt.Sprintf("wal-%020d.seg", seq)
}

// parseSegmentName extracts the first-record sequence from a segment file
// name, reporting ok=false for files that are not segments.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	num := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
	if len(num) != 20 {
		return 0, false
	}
	seq, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// segmentInfo is one on-disk segment known to the WAL, ordered by firstSeq.
type segmentInfo struct {
	path     string
	firstSeq uint64
	size     int64 // valid bytes (post torn-tail truncation)
	records  uint64
	lastSeq  uint64 // last valid record's seq (records > 0)
}

// listSegments returns the directory's segments sorted by first sequence.
func listSegments(fsys vfs.FS, dir string) ([]segmentInfo, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segmentInfo
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		seq, ok := parseSegmentName(ent.Name())
		if !ok {
			continue
		}
		segs = append(segs, segmentInfo{path: filepath.Join(dir, ent.Name()), firstSeq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// scanEnd classifies why a segment scan stopped before the file's end.
// endTorn is the expected crash signature — a record that simply ran out of
// bytes (a partial header or payload at the tail). endCorrupt means the
// bytes were present but wrong: a bad length prefix, CRC mismatch, decode
// failure, or sequence discontinuity. The distinction matters for recovery
// diagnostics: torn tails are routine, corruption in the middle of a
// supposedly synced log is not.
type scanEnd int

const (
	endClean scanEnd = iota
	endTorn
	endCorrupt
)

// scanSegment validates one segment from the front: header magic, each
// record's length prefix and CRC, the name/first-record agreement, and
// intra-segment sequence continuity. It returns the segment metadata, the
// byte offset of the first invalid position — the torn point — and why the
// scan stopped there. A fully valid segment has torn == size and endClean.
// onRecord, when non-nil, receives every valid record in order (used by
// Replay; the scan pass on Open passes nil).
//
// sparse relaxes intra-segment continuity to "strictly increasing": a log
// written by one shard of a sharded monitor carries that shard's
// subsequence of the globally numbered stream, so consecutive records may
// legitimately skip sequences. The first record must still match the file
// name, and any non-increase is still corruption.
func scanSegment(fsys vfs.FS, path string, nameSeq uint64, sparse bool, onRecord func(Record) error) (info segmentInfo, torn int64, reason scanEnd, err error) {
	f, err := fsys.Open(path)
	if err != nil {
		return info, 0, endClean, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	info = segmentInfo{path: path, firstSeq: nameSeq}

	var hdr [segHdrLen]byte
	if _, herr := io.ReadFull(f, hdr[:]); herr != nil {
		// Fewer than 8 bytes: a segment creation that died mid-magic.
		return info, 0, endTorn, nil
	}
	if string(hdr[:]) != string(segMagic) {
		// A full header that is not ours: nothing in the file is trustworthy.
		return info, 0, endCorrupt, nil
	}
	off := int64(segHdrLen)
	r := newSegReader(f)
	var recHdr [recHdrLen]byte
	var payload []byte
	var scratch []float64
	expect := nameSeq
	for {
		if _, herr := io.ReadFull(r, recHdr[:]); herr != nil {
			if herr != io.EOF {
				// A partial header is a torn tail; clean EOF ends the segment.
				reason = endTorn
			}
			break
		}
		n := int(binary.LittleEndian.Uint32(recHdr[:4]))
		if n < 29 || n > maxPayload {
			reason = endCorrupt
			break
		}
		if cap(payload) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, perr := io.ReadFull(r, payload); perr != nil {
			reason = endTorn
			break
		}
		if checksum(payload) != binary.LittleEndian.Uint32(recHdr[4:]) {
			reason = endCorrupt
			break
		}
		var rec Record
		var derr error
		rec, scratch, derr = decodeRecord(payload, scratch)
		if derr != nil {
			reason = endCorrupt
			break
		}
		if rec.Seq != expect && !(sparse && info.records > 0 && rec.Seq > expect) {
			// First record must match the file name; later records must be
			// consecutive (dense) or strictly increasing (sparse). Either
			// mismatch means corruption from here on.
			reason = endCorrupt
			break
		}
		expect = rec.Seq + 1
		if onRecord != nil {
			if err := onRecord(rec); err != nil {
				return info, 0, endClean, err
			}
		}
		off += int64(recHdrLen + n)
		info.records++
		info.lastSeq = rec.Seq
	}
	info.size = off
	return info, off, reason, nil
}

// segReader is a small fixed-buffer reader so scanning does not issue a
// syscall per record.
type segReader struct {
	f   vfs.File
	buf [64 << 10]byte
	r   int
	n   int
}

func newSegReader(f vfs.File) *segReader { return &segReader{f: f} }

func (s *segReader) Read(p []byte) (int, error) {
	if s.r == s.n {
		n, err := s.f.Read(s.buf[:])
		if n == 0 {
			return 0, err
		}
		s.r, s.n = 0, n
	}
	n := copy(p, s.buf[s.r:s.n])
	s.r += n
	return n, nil
}
