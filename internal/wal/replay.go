package wal

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ReplayProgress publishes live recovery progress. Workers update it with
// atomic stores, so a health endpoint can poll it from another goroutine
// while a recovery replay is running. The zero value is ready to use.
type ReplayProgress struct {
	segTotal atomic.Uint64
	segDone  atomic.Uint64
	records  atomic.Uint64
}

// SegmentsTotal returns the number of segments the replay will decode.
func (p *ReplayProgress) SegmentsTotal() uint64 { return p.segTotal.Load() }

// SegmentsDecoded returns the number of segments fully decoded so far.
func (p *ReplayProgress) SegmentsDecoded() uint64 { return p.segDone.Load() }

// RecordsReplayed returns the number of records delivered to the caller.
func (p *ReplayProgress) RecordsReplayed() uint64 { return p.records.Load() }

// decodedSeg is one segment's records decoded off the critical path by a
// worker. Points are copied out of the scanner's scratch buffer into a
// per-segment arena, so the records stay valid until the merge consumes them.
type decodedSeg struct {
	recs []Record
	err  error
	done chan struct{} // closed when the worker finishes this segment
}

// ReplayParallel is Replay with the CPU-bound record decoding (CRC checks,
// varint-free fixed-width parsing, point materialization) fanned across
// workers, one whole segment per worker at a time. Records are still
// delivered to fn strictly in log order — an ordered merge over the
// per-segment results — so the caller observes the exact sequence Replay
// would produce; only the wall-clock changes. workers <= 0 selects
// GOMAXPROCS; with one worker (or one segment) it degrades to the serial
// scan. prog, when non-nil, is updated live for progress reporting.
//
// Unlike Replay, the Record passed to fn does NOT alias a scratch buffer
// that the next record overwrites: parallel decode copies points into
// per-segment arenas. fn must still copy what it retains beyond the replay,
// since arenas are released as the merge advances.
func (w *WAL) ReplayParallel(from uint64, workers int, prog *ReplayProgress, fn func(Record) error) (uint64, error) {
	w.mu.Lock()
	if w.err != nil {
		w.mu.Unlock()
		return 0, w.err
	}
	if w.State() != StateDegraded {
		if err := w.writePendingOnceLocked(); err != nil {
			if err = w.failLocked("replay", err, opFlush); err != nil {
				w.mu.Unlock()
				return 0, err
			}
		}
	}
	w.segMetaLocked()
	segs := append([]segmentInfo(nil), w.segs...)
	w.mu.Unlock()

	work := segs[:0]
	for _, sg := range segs {
		if sg.records > 0 && sg.lastSeq >= from {
			work = append(work, sg)
		}
	}
	if prog != nil {
		prog.segTotal.Store(uint64(len(work)))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(work) {
		workers = len(work)
	}
	if workers <= 1 {
		// One lane: stream records straight from the scanner, no buffering.
		var n uint64
		for _, sg := range work {
			_, _, _, err := scanSegment(w.fs, sg.path, sg.firstSeq, w.opt.SparseSeq, func(rec Record) error {
				if rec.Seq < from {
					return nil
				}
				n++
				if prog != nil {
					prog.records.Add(1)
				}
				return fn(rec)
			})
			if prog != nil {
				prog.segDone.Add(1)
			}
			if err != nil {
				return n, err
			}
		}
		return n, nil
	}

	results := make([]decodedSeg, len(work))
	for i := range results {
		results[i].done = make(chan struct{})
	}
	var nextIdx atomic.Int64
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(nextIdx.Add(1) - 1)
				if idx >= len(work) || cancelled.Load() {
					return
				}
				sg := work[idx]
				var recs []Record
				var arena []float64
				_, _, _, err := scanSegment(w.fs, sg.path, sg.firstSeq, w.opt.SparseSeq, func(rec Record) error {
					d := len(rec.Point)
					if cap(arena)-len(arena) < d {
						arena = make([]float64, 0, max(64<<10, d))
					}
					start := len(arena)
					arena = arena[:start+d]
					copy(arena[start:], rec.Point)
					rec.Point = arena[start : start+d : start+d]
					recs = append(recs, rec)
					return nil
				})
				results[idx].recs = recs
				results[idx].err = err
				close(results[idx].done)
				if prog != nil {
					prog.segDone.Add(1)
				}
			}
		}()
	}

	var n uint64
	var firstErr error
merge:
	for i := range work {
		<-results[i].done
		if results[i].err != nil {
			firstErr = results[i].err
			break
		}
		for _, rec := range results[i].recs {
			if rec.Seq < from {
				continue
			}
			n++
			if prog != nil {
				prog.records.Add(1)
			}
			if err := fn(rec); err != nil {
				firstErr = err
				break merge
			}
		}
		results[i].recs = nil // release the arena as the merge advances
	}
	cancelled.Store(true)
	wg.Wait()
	return n, firstErr
}
