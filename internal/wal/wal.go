package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pskyline/internal/vfs"
)

// Fsync selects when appended records are forced to stable storage.
type Fsync int

const (
	// FsyncInterval (the default) fsyncs from a background flusher every
	// Options.FsyncInterval: bounded data loss on power failure, negligible
	// per-append cost. Process crashes (kill -9) lose nothing — commits
	// always reach the OS page cache.
	FsyncInterval Fsync = iota
	// FsyncAlways fsyncs on every Commit: no loss on power failure, one
	// fsync per group commit.
	FsyncAlways
	// FsyncNever never fsyncs: the OS flushes at its leisure. Survives
	// process crashes, not power failures.
	FsyncNever
)

func (f Fsync) String() string {
	switch f {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseFsync parses an fsync policy name: "always", "interval" or "never"
// ("" selects the default, interval).
func ParseFsync(s string) (Fsync, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

// Options configures a WAL.
type Options struct {
	// Fsync is the commit durability policy.
	Fsync Fsync
	// FsyncInterval is the background flush period under FsyncInterval
	// (0 selects 100ms).
	FsyncInterval time.Duration
	// SegmentBytes is the rotation threshold (0 selects 64 MiB).
	SegmentBytes int64
	// SparseSeq relaxes sequence continuity to "strictly increasing":
	// consecutive records may skip sequence numbers. A shard of a sharded
	// monitor logs only its own subsequence of the globally numbered
	// stream, so gaps are the normal shape of its log, not corruption.
	// The same directory must be opened with the same setting it was
	// written with.
	SparseSeq bool
	// FS is the filesystem the log lives on. Nil selects the production
	// passthrough (vfs.OS); tests substitute a fault-injecting vfs.Fault.
	FS vfs.FS
	// Policy selects the response to durability failures: FailStop
	// (default), Retry or Shed. See the Policy constants.
	Policy Policy
	// RetryMax bounds in-place recovery attempts per failed operation under
	// the Retry policy (0 selects DefaultRetryMax).
	RetryMax int
	// RetryBase and RetryMaxDelay shape the exponential backoff between
	// retry attempts (0 selects DefaultRetryBase / DefaultRetryMaxDelay).
	RetryBase     time.Duration
	RetryMaxDelay time.Duration
	// RetrySeed seeds the backoff jitter (0 selects 1; any fixed seed gives
	// a deterministic schedule).
	RetrySeed int64
	// OnStateChange, when non-nil, is invoked on every health state
	// transition. It runs with the WAL mutex held and must not block or
	// call back into the WAL — a non-blocking channel send is the intended
	// use.
	OnStateChange func(State)
	// Metrics, when non-nil, receives the WAL's counters and latency
	// histograms. Nil allocates a private, unexported block.
	Metrics *Metrics
}

// ScanResult reports what Open found (and repaired) in the directory.
type ScanResult struct {
	// HasRecords reports whether any valid record survives; NextSeq is then
	// the sequence the next appended record is expected to carry.
	HasRecords bool
	NextSeq    uint64
	// Records and Segments count the valid log tail.
	Records  uint64
	Segments int
	// TruncatedBytes is the invalid tail dropped from the first bad
	// segment; SegmentsDropped counts whole segments discarded after it.
	TruncatedBytes  int64
	SegmentsDropped int
	// TornSegments counts segments cut at a torn tail (a record that simply
	// ran out of bytes — the expected crash signature); CorruptSegments
	// counts segments cut at actual corruption (bad length, CRC, decode or
	// sequence with the bytes present).
	TornSegments    int
	CorruptSegments int
	// TmpFilesRemoved counts stale checkpoint temp files swept at Open
	// (debris from a checkpoint install that died before its rename).
	TmpFilesRemoved int
}

// ErrClosed is returned by operations on a closed WAL.
var ErrClosed = errors.New("wal: closed")

// WAL is an append-only segmented write-ahead log. The writer side
// (Append/Commit) is single-caller by contract — the Monitor serializes it
// under its ingestion mutex — while the internal mutex exists to coordinate
// with the background fsync flusher and with Close.
//
// Appends encode into an in-memory pending buffer; Commit performs the file
// write. Keeping unwritten records off the file until Commit is what makes
// failures recoverable: a failed write tears only the file (repaired by
// truncating back to the committed prefix), never the records, so the Retry
// policy can replay the same bytes and the caller observes nothing.
type WAL struct {
	dir string
	opt Options
	met *Metrics
	fs  vfs.FS
	rng *rand.Rand

	mu           sync.Mutex
	segs         []segmentInfo
	f            vfs.File
	size         int64 // bytes in the active segment (committed prefix)
	committed    int64 // last byte of the active segment known good on disk
	dirty        bool  // the file may hold a torn tail past committed
	total        int64 // bytes across all segments
	pending      []byte
	pendingRecs  uint64
	pendingFirst uint64 // seq of pending's first record (pendingRecs > 0)
	pendingLast  uint64 // seq of pending's last record (pendingRecs > 0)
	nextSeq      uint64 // seq the next appended record must carry (tracking only)
	fileRecs     uint64 // records flushed to the active segment
	fileLastSeq  uint64 // seq of the active segment's last flushed record (fileRecs > 0)
	rotate       bool   // force a fresh segment on the next flush
	failedSeg    string // segment path left as debris by a failed creation
	err          error  // sticky failure; nil while healthy
	closed       bool
	flushFails   int
	stopFlush    chan struct{}
	flushDone    chan struct{}

	stateA    atomic.Int32
	lastFault atomic.Pointer[error]
	ackedA    atomic.Uint64 // replication quorum-acked watermark (SetAckedSeq)
}

// Open opens (creating if needed) the WAL in dir, validating every segment
// from the front: the first corrupt or torn record truncates its segment at
// that point and discards all later segments, so the surviving log is a
// clean prefix of what was appended. Stale checkpoint temp files are swept.
// The returned WAL is ready for Replay and further appends.
func Open(dir string, opt Options) (*WAL, ScanResult, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = 64 << 20
	}
	if opt.FsyncInterval <= 0 {
		opt.FsyncInterval = 100 * time.Millisecond
	}
	if opt.RetryMax <= 0 {
		opt.RetryMax = DefaultRetryMax
	}
	if opt.RetryBase <= 0 {
		opt.RetryBase = DefaultRetryBase
	}
	if opt.RetryMaxDelay <= 0 {
		opt.RetryMaxDelay = DefaultRetryMaxDelay
	}
	if opt.RetrySeed == 0 {
		opt.RetrySeed = 1
	}
	fsys := opt.FS
	if fsys == nil {
		fsys = vfs.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, ScanResult{}, fmt.Errorf("wal: %w", err)
	}
	var res ScanResult
	swept, err := sweepTmp(fsys, dir)
	if err != nil {
		return nil, ScanResult{}, err
	}
	res.TmpFilesRemoved = swept
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, ScanResult{}, err
	}
	valid := segs[:0]
	for i := range segs {
		info, torn, reason, err := scanSegment(fsys, segs[i].path, segs[i].firstSeq, opt.SparseSeq, nil)
		if err != nil {
			return nil, ScanResult{}, err
		}
		tornTail := false
		if fi, err := fsys.Stat(segs[i].path); err == nil && fi.Size() > torn {
			// Torn or corrupt tail: truncate to the last valid record.
			res.TruncatedBytes += fi.Size() - torn
			if err := fsys.Truncate(segs[i].path, torn); err != nil {
				return nil, ScanResult{}, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			tornTail = true
			if reason == endCorrupt {
				res.CorruptSegments++
			} else {
				res.TornSegments++
			}
		}
		if info.records > 0 {
			valid = append(valid, info)
			res.Records += info.records
			res.NextSeq = info.lastSeq + 1
			res.HasRecords = true
		} else if err := fsys.Remove(segs[i].path); err != nil {
			// A segment with no valid records carries no information.
			return nil, ScanResult{}, fmt.Errorf("wal: %w", err)
		}
		if tornTail {
			// Everything after the torn point is untrustworthy: discard the
			// remaining segments so the log stays a clean prefix.
			for _, later := range segs[i+1:] {
				if err := fsys.Remove(later.path); err != nil {
					return nil, ScanResult{}, fmt.Errorf("wal: %w", err)
				}
				res.SegmentsDropped++
			}
			break
		}
	}
	w := &WAL{
		dir:  dir,
		opt:  opt,
		met:  opt.Metrics,
		fs:   fsys,
		rng:  rand.New(rand.NewSource(opt.RetrySeed)),
		segs: append([]segmentInfo(nil), valid...),
	}
	if w.met == nil {
		w.met = new(Metrics)
	}
	for _, s := range w.segs {
		w.total += s.size
	}
	w.nextSeq = res.NextSeq
	res.Segments = len(w.segs)
	// Appends continue in the last surviving segment; a fresh segment is
	// created lazily on the first flush otherwise.
	if n := len(w.segs); n > 0 {
		last := &w.segs[n-1]
		f, err := fsys.OpenAppend(last.path)
		if err != nil {
			return nil, ScanResult{}, fmt.Errorf("wal: %w", err)
		}
		w.f = f
		w.size = last.size
		w.committed = last.size
		w.fileRecs = last.records
		w.fileLastSeq = last.lastSeq
	}
	w.met.Segments.SetInt(len(w.segs))
	w.met.SizeBytes.Set(float64(w.total))
	w.met.State.SetInt(int(StateHealthy))
	if opt.Fsync == FsyncInterval {
		w.stopFlush = make(chan struct{})
		w.flushDone = make(chan struct{})
		go w.flusher(w.stopFlush)
	}
	return w, res, nil
}

// sweepTmp removes stale checkpoint temp files (ckpt-*.ckpt.tmp): debris
// from an install that crashed or failed before its atomic rename.
func sweepTmp(fsys vfs.FS, dir string) (int, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	removed := 0
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".ckpt.tmp") || !strings.HasPrefix(name, "ckpt-") {
			continue
		}
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
			return removed, fmt.Errorf("wal: sweep tmp: %w", err)
		}
		removed++
	}
	return removed, nil
}

// Replay streams every valid record with sequence >= from, in order, to fn.
// Records below from (already covered by a checkpoint) are skipped. fn's
// Record aliases a scratch buffer; it must copy what it retains. Returns the
// number of records delivered.
func (w *WAL) Replay(from uint64, fn func(Record) error) (uint64, error) {
	w.mu.Lock()
	if w.err != nil {
		w.mu.Unlock()
		return 0, w.err
	}
	// Flush so the files hold every append, and finalize the active
	// segment's metadata so it is not skipped as empty.
	if w.State() != StateDegraded {
		if err := w.writePendingOnceLocked(); err != nil {
			if err = w.failLocked("replay", err, opFlush); err != nil {
				w.mu.Unlock()
				return 0, err
			}
		}
	}
	w.segMetaLocked()
	segs := append([]segmentInfo(nil), w.segs...)
	w.mu.Unlock()
	var n uint64
	for _, sg := range segs {
		if sg.records == 0 || sg.lastSeq < from {
			continue
		}
		_, _, _, err := scanSegment(w.fs, sg.path, sg.firstSeq, w.opt.SparseSeq, func(rec Record) error {
			if rec.Seq < from {
				return nil
			}
			n++
			return fn(rec)
		})
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// AlignTo prepares the WAL for appends starting at seq. When the log's tail
// does not line up with seq (a checkpoint newer than the surviving tail, or
// records skipped by recovery), the next flush opens a fresh segment named
// by its first record so intra-segment sequence continuity is preserved.
func (w *WAL) AlignTo(seq uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	// In sparse mode a forward jump is an ordinary gap — appends may
	// continue in the active segment; only a regression (a checkpoint ahead
	// of the surviving tail) forces a fresh segment. Dense logs rotate on
	// any misalignment.
	misaligned := w.nextSeq != seq
	if w.opt.SparseSeq {
		misaligned = seq < w.nextSeq
	}
	if w.f != nil && misaligned {
		// Finalize the tail's metadata at its true span before nextSeq moves.
		w.segMetaLocked()
		w.rotate = true
	}
	w.nextSeq = seq
}

// AppendElement appends one element record to the pending buffer; nothing
// touches the disk (and nothing is promised durable) until Commit. It cannot
// fail while the log is attached: in StateDegraded the record is counted and
// dropped, and after detach the sticky error is returned.
func (w *WAL) AppendElement(seq uint64, pt []float64, p float64, ts int64) error {
	t0 := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.opt.SparseSeq && seq < w.nextSeq {
		// A sparse log has no dense continuity to enforce, so regressions
		// would otherwise go undetected until a scan flags the segment
		// corrupt. Catch the caller bug at the source instead.
		return fmt.Errorf("wal: append sequence %d behind log position %d", seq, w.nextSeq)
	}
	if w.State() == StateDegraded {
		w.met.DroppedRecords.Inc()
		w.met.DroppedBytes.Add(uint64(recordLen(len(pt))))
		w.nextSeq = seq + 1
		return nil
	}
	if len(w.pending) == 0 {
		w.pendingFirst = seq
	}
	w.pending = appendRecord(w.pending, seq, pt, p, ts)
	w.pendingRecs++
	w.pendingLast = seq
	w.nextSeq = seq + 1
	w.met.Appends.Inc()
	w.met.AppendLatency.Record(time.Since(t0))
	return nil
}

// Commit writes every record appended since the previous Commit to the file
// (crash-safe) and, under FsyncAlways, fsyncs (power-safe). One Commit per
// ingested batch is the group-commit contract that amortizes the syscalls.
// Failures are routed through the durability policy: a Retry success or a
// Shed degradation both return nil.
func (w *WAL) Commit() error {
	t0 := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.State() == StateDegraded {
		w.dropPendingLocked()
		return nil
	}
	if err := w.writePendingOnceLocked(); err != nil {
		if err = w.failLocked("commit", err, opFlush); err != nil {
			return err
		}
	}
	if w.opt.Fsync == FsyncAlways && w.State() != StateDegraded {
		if err := w.fsyncOnceLocked(); err != nil {
			if err = w.failLocked("fsync", err, opFsync); err != nil {
				return err
			}
		}
	}
	if w.State() == StateRetrying {
		// A flusher-tick failure left the state armed; this commit went
		// through whole, so the incident is over.
		w.setStateLocked(StateHealthy, nil)
	}
	w.met.Commits.Inc()
	w.met.CommitLatency.Record(time.Since(t0))
	return nil
}

// Sync flushes pending records and fsyncs the active segment, whatever the
// fsync policy. Failures go through the durability policy like Commit's.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.State() == StateDegraded {
		w.dropPendingLocked()
		return nil
	}
	if err := w.writePendingOnceLocked(); err != nil {
		if err = w.failLocked("sync", err, opFlush); err != nil {
			return err
		}
	}
	if w.State() == StateDegraded {
		return nil
	}
	if err := w.fsyncOnceLocked(); err != nil {
		if err = w.failLocked("fsync", err, opFsync); err != nil {
			return err
		}
	}
	return nil
}

// writePendingOnceLocked makes one attempt to put the pending records on
// disk: ensure an active segment (rotating as needed) and issue a single
// write. On success the committed prefix advances and pending resets; on
// failure pending is kept (the records are not lost) and the file is marked
// dirty for repair.
func (w *WAL) writePendingOnceLocked() error {
	if len(w.pending) == 0 {
		return nil
	}
	if err := w.ensureSegmentLocked(w.pendingFirst, int64(len(w.pending))); err != nil {
		return err
	}
	if _, err := w.f.Write(w.pending); err != nil {
		// A short write may have torn the tail past the committed prefix.
		w.dirty = true
		return fmt.Errorf("wal: append: %w", err)
	}
	n := int64(len(w.pending))
	w.size += n
	w.committed = w.size
	w.total += n
	w.fileRecs += w.pendingRecs
	w.fileLastSeq = w.pendingLast
	w.met.AppendedBytes.Add(uint64(n))
	w.met.SizeBytes.Set(float64(w.total))
	w.pending = w.pending[:0]
	w.pendingRecs = 0
	return nil
}

// fsyncOnceLocked makes one fsync attempt on the active segment.
func (w *WAL) fsyncOnceLocked() error {
	if w.f == nil {
		return nil
	}
	t0 := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	w.met.Fsyncs.Inc()
	w.met.FsyncLatency.Record(time.Since(t0))
	return nil
}

// retryOp names the step failLocked re-executes between repairs. An enum
// rather than a closure keeps the happy path allocation-free.
type retryOp int

const (
	opFlush retryOp = iota
	opFsync
)

func (w *WAL) retryOpLocked(op retryOp) error {
	if op == opFsync {
		return w.fsyncOnceLocked()
	}
	return w.writePendingOnceLocked()
}

// failLocked routes one durability failure through the configured policy.
// Returns nil when the failure was absorbed — retried to success, or shed
// (the caller should then check State for degradation). Non-nil means the
// WAL is detached and the error is sticky.
func (w *WAL) failLocked(what string, err error, op retryOp) error {
	w.met.WriteErrors.Inc()
	switch w.opt.Policy {
	case Shed:
		w.degradeLocked(what, err)
		return nil
	case Retry:
		w.setStateLocked(StateRetrying, err)
		for attempt := 1; attempt <= w.opt.RetryMax; attempt++ {
			// Sleeping with the mutex held is deliberate backpressure:
			// ingestion stalls while the disk misbehaves, queries stay
			// lock-free and unaffected.
			time.Sleep(w.backoffDelay(attempt))
			w.met.Retries.Inc()
			if rerr := w.repairLocked(); rerr != nil {
				w.met.WriteErrors.Inc()
				err = rerr
				continue
			}
			if err = w.retryOpLocked(op); err == nil {
				w.setStateLocked(StateHealthy, nil)
				return nil
			}
			w.met.WriteErrors.Inc()
		}
	}
	return w.detachLocked(what, err)
}

// repairLocked restores the invariant that the active segment holds exactly
// its committed clean prefix: close the (possibly wedged) handle, truncate
// any torn tail written past the last known-good byte, and reopen for
// append. Any step may itself fail; the retry loop absorbs that.
func (w *WAL) repairLocked() error {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	if len(w.segs) == 0 {
		return nil
	}
	last := &w.segs[len(w.segs)-1]
	if w.dirty {
		if err := w.fs.Truncate(last.path, w.committed); err != nil {
			return fmt.Errorf("wal: repair truncate: %w", err)
		}
		w.dirty = false
	}
	f, err := w.fs.OpenAppend(last.path)
	if err != nil {
		return fmt.Errorf("wal: repair reopen: %w", err)
	}
	w.f = f
	w.size = w.committed
	return nil
}

// degradeLocked sheds durability: pending records are counted and dropped,
// the handle is released, and the WAL sits in StateDegraded absorbing
// appends as counted no-ops until Reattach.
func (w *WAL) degradeLocked(what string, err error) {
	w.dropPendingLocked()
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	w.dirty = false
	w.setStateLocked(StateDegraded, fmt.Errorf("wal: %s: %w", what, err))
}

func (w *WAL) dropPendingLocked() {
	if w.pendingRecs > 0 {
		w.met.DroppedRecords.Add(w.pendingRecs)
		w.met.DroppedBytes.Add(uint64(len(w.pending)))
		w.pending = w.pending[:0]
		w.pendingRecs = 0
	}
}

// detachLocked latches the sticky error: the WAL is dead to further writes.
func (w *WAL) detachLocked(what string, err error) error {
	w.err = fmt.Errorf("wal: %s: %w", what, errors.Join(ErrDetached, err))
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	w.setStateLocked(StateDetached, w.err)
	return w.err
}

// Reattach restores durability after Shed degradation. The caller must have
// installed a fresh checkpoint capturing stream position seq: every record
// the old log held predates it, so the stale segments (including any torn
// pre-degradation tail) are removed and logging restarts cleanly at seq.
// A failure leaves the WAL degraded; calling again retries the remaining
// removals. No-op unless degraded.
func (w *WAL) Reattach(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.State() != StateDegraded {
		return nil
	}
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	for len(w.segs) > 0 {
		sg := w.segs[0]
		if err := w.fs.Remove(sg.path); err != nil {
			w.met.Segments.SetInt(len(w.segs))
			w.met.SizeBytes.Set(float64(w.total))
			return fmt.Errorf("wal: reattach: %w", err)
		}
		w.total -= sg.size
		w.segs = w.segs[1:]
	}
	w.total = 0
	w.size = 0
	w.committed = 0
	w.dirty = false
	w.pending = w.pending[:0]
	w.pendingRecs = 0
	w.fileRecs = 0
	w.fileLastSeq = 0
	w.rotate = false
	w.failedSeg = ""
	w.nextSeq = seq
	w.met.Segments.SetInt(0)
	w.met.SizeBytes.Set(0)
	w.met.Reattaches.Inc()
	w.setStateLocked(StateHealthy, nil)
	return nil
}

// ensureSegmentLocked makes sure an active segment can take n more bytes,
// rotating or creating one as needed. seq names the new segment (its first
// record's sequence). Errors are returned plain — the caller routes them
// through the durability policy.
func (w *WAL) ensureSegmentLocked(seq uint64, n int64) error {
	needNew := w.f == nil || w.rotate ||
		(w.size+n > w.opt.SegmentBytes && w.size > segHdrLen)
	if !needNew {
		return nil
	}
	if w.f != nil {
		if !w.rotate {
			// An AlignTo rotation already finalized the tail's metadata (and
			// nextSeq has since moved); only size rotations finalize here.
			w.segMetaLocked()
		}
		// The retiring segment is sealed with an fsync regardless of policy:
		// rotation is rare and a sealed segment never changes again.
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: rotate: %w", err)
		}
		if err := w.f.Close(); err != nil {
			w.f = nil
			return fmt.Errorf("wal: rotate: %w", err)
		}
		w.f = nil
		w.met.Rotations.Inc()
	}
	path := filepath.Join(w.dir, segmentName(seq))
	var f vfs.File
	var err error
	if path == w.failedSeg {
		// A previous creation attempt left debris under this name (its
		// Remove failed too); truncate it rather than tripping over our own
		// leftovers with O_EXCL.
		f, err = w.fs.Create(path)
	} else {
		f, err = w.fs.CreateExcl(path)
	}
	if err != nil {
		return fmt.Errorf("wal: new segment: %w", err)
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		if w.fs.Remove(path) != nil {
			w.failedSeg = path
		}
		return fmt.Errorf("wal: new segment: %w", err)
	}
	if err := w.fs.SyncDir(w.dir); err != nil {
		f.Close()
		if w.fs.Remove(path) != nil {
			w.failedSeg = path
		}
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	w.rotate = false
	w.failedSeg = ""
	w.f = f
	w.size = segHdrLen
	w.committed = segHdrLen
	w.dirty = false
	w.fileRecs = 0
	w.fileLastSeq = 0
	w.total += segHdrLen
	w.segs = append(w.segs, segmentInfo{path: path, firstSeq: seq, size: segHdrLen})
	w.met.Segments.SetInt(len(w.segs))
	w.met.SizeBytes.Set(float64(w.total))
	return nil
}

// segMetaLocked finalizes the active segment's bookkeeping (size, record
// span) before the segment list is consulted for rotation or GC. The record
// count and last sequence are tracked exactly at flush time — arithmetic
// from the next sequence would miscount sparse (gapped) logs — and pending
// (unflushed) records are not part of the segment yet.
func (w *WAL) segMetaLocked() {
	if n := len(w.segs); n > 0 && w.f != nil {
		last := &w.segs[n-1]
		last.size = w.size
		last.records = w.fileRecs
		if w.fileRecs > 0 {
			last.lastSeq = w.fileLastSeq
		}
	}
}

// GC removes segments every record of which is strictly below keepSeq — the
// caller passes min(newest checkpoint seq, window horizon seq), so a segment
// is only collected once both the checkpoint and the sliding window have
// moved past it. The active (last) segment is never collected.
func (w *WAL) GC(keepSeq uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	w.segMetaLocked()
	removed := 0
	for len(w.segs) > 1 && w.segs[0].lastSeq < keepSeq {
		sg := w.segs[0]
		if err := w.fs.Remove(sg.path); err != nil {
			return removed, fmt.Errorf("wal: gc: %w", err)
		}
		w.total -= sg.size
		w.segs = w.segs[1:]
		removed++
	}
	if removed > 0 {
		w.met.GCSegments.Add(uint64(removed))
		w.met.Segments.SetInt(len(w.segs))
		w.met.SizeBytes.Set(float64(w.total))
	}
	return removed, nil
}

// SegmentCount returns the number of live segments.
func (w *WAL) SegmentCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segs)
}

// SizeBytes returns the total on-disk size of the log.
func (w *WAL) SizeBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total
}

// flusher is the FsyncInterval background goroutine. The stop channel is
// passed in (captured at spawn time): stopFlusher nils the w.stopFlush field
// for idempotency, and it can run before this goroutine is first scheduled —
// reading the field here could then see nil and block forever.
//
// A failed tick does not sleep-retry in place (that would wedge commits for
// the whole backoff); under Retry it repairs once and arms StateRetrying,
// letting the next tick — or the next Commit — finish the recovery. After
// RetryMax consecutive failed ticks the WAL detaches.
func (w *WAL) flusher(stop <-chan struct{}) {
	defer close(w.flushDone)
	t := time.NewTicker(w.opt.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			w.mu.Lock()
			if w.err == nil && w.State() != StateDegraded && (w.f != nil || len(w.pending) > 0) {
				err := w.writePendingOnceLocked()
				if err == nil {
					err = w.fsyncOnceLocked()
				}
				if err == nil {
					w.flushFails = 0
					if w.State() == StateRetrying {
						w.setStateLocked(StateHealthy, nil)
					}
				} else {
					w.met.WriteErrors.Inc()
					w.flushFails++
					switch {
					case w.opt.Policy == Shed:
						w.degradeLocked("flush", err)
					case w.opt.Policy == Retry && w.flushFails <= w.opt.RetryMax:
						w.setStateLocked(StateRetrying, err)
						if rerr := w.repairLocked(); rerr != nil {
							w.met.WriteErrors.Inc()
						}
					default:
						w.detachLocked("flush", err)
					}
				}
			}
			w.mu.Unlock()
		}
	}
}

// Close flushes, fsyncs and closes the log. Idempotent.
func (w *WAL) Close() error {
	w.stopFlusher()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	var firstErr error
	if w.err == nil && w.State() != StateDegraded {
		if err := w.writePendingOnceLocked(); err != nil {
			firstErr = err
		} else if err := w.fsyncOnceLocked(); err != nil {
			firstErr = err
		}
	}
	if w.f != nil {
		if err := w.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		w.f = nil
	}
	if w.err == nil {
		w.err = ErrClosed
	}
	if firstErr != nil {
		return fmt.Errorf("wal: close: %w", firstErr)
	}
	return nil
}

// Abort closes the log WITHOUT flushing pending records — the file is left
// exactly as the last Commit (and the OS) saw it. It exists for crash
// simulation in tests and for tearing down a WAL whose state is already
// known bad.
func (w *WAL) Abort() {
	w.stopFlusher()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	w.pending = w.pending[:0]
	w.pendingRecs = 0
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	if w.err == nil {
		w.err = ErrClosed
	}
}

func (w *WAL) stopFlusher() {
	w.mu.Lock()
	stop := w.stopFlush
	w.stopFlush = nil
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-w.flushDone
	}
}
