package wal

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Fsync selects when appended records are forced to stable storage.
type Fsync int

const (
	// FsyncInterval (the default) fsyncs from a background flusher every
	// Options.FsyncInterval: bounded data loss on power failure, negligible
	// per-append cost. Process crashes (kill -9) lose nothing — commits
	// always reach the OS page cache.
	FsyncInterval Fsync = iota
	// FsyncAlways fsyncs on every Commit: no loss on power failure, one
	// fsync per group commit.
	FsyncAlways
	// FsyncNever never fsyncs: the OS flushes at its leisure. Survives
	// process crashes, not power failures.
	FsyncNever
)

func (f Fsync) String() string {
	switch f {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseFsync parses an fsync policy name: "always", "interval" or "never"
// ("" selects the default, interval).
func ParseFsync(s string) (Fsync, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

// Options configures a WAL.
type Options struct {
	// Fsync is the commit durability policy.
	Fsync Fsync
	// FsyncInterval is the background flush period under FsyncInterval
	// (0 selects 100ms).
	FsyncInterval time.Duration
	// SegmentBytes is the rotation threshold (0 selects 64 MiB).
	SegmentBytes int64
	// Metrics, when non-nil, receives the WAL's counters and latency
	// histograms. Nil allocates a private, unexported block.
	Metrics *Metrics
}

// ScanResult reports what Open found (and repaired) in the directory.
type ScanResult struct {
	// HasRecords reports whether any valid record survives; NextSeq is then
	// the sequence the next appended record is expected to carry.
	HasRecords bool
	NextSeq    uint64
	// Records and Segments count the valid log tail.
	Records  uint64
	Segments int
	// TruncatedBytes is the torn tail dropped from the first corrupt
	// segment; SegmentsDropped counts whole segments discarded after it.
	TruncatedBytes  int64
	SegmentsDropped int
}

// ErrClosed is returned by operations on a closed WAL.
var ErrClosed = errors.New("wal: closed")

// WAL is an append-only segmented write-ahead log. The writer side
// (Append/Commit) is single-caller by contract — the Monitor serializes it
// under its ingestion mutex — while the internal mutex exists to coordinate
// with the background fsync flusher and with Close.
type WAL struct {
	dir string
	opt Options
	met *Metrics

	mu        sync.Mutex
	segs      []segmentInfo
	f         *os.File
	bw        *bufio.Writer
	size      int64 // bytes in the active segment
	total     int64 // bytes across all segments
	buf       []byte
	nextSeq   uint64 // seq the next appended record must carry (tracking only)
	rotate    bool   // force a fresh segment on the next append
	err       error  // sticky failure; nil while healthy
	closed    bool
	stopFlush chan struct{}
	flushDone chan struct{}
}

// Open opens (creating if needed) the WAL in dir, validating every segment
// from the front: the first corrupt or torn record truncates its segment at
// that point and discards all later segments, so the surviving log is a
// clean prefix of what was appended. The returned WAL is ready for Replay
// and further appends.
func Open(dir string, opt Options) (*WAL, ScanResult, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = 64 << 20
	}
	if opt.FsyncInterval <= 0 {
		opt.FsyncInterval = 100 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, ScanResult{}, fmt.Errorf("wal: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, ScanResult{}, err
	}
	var res ScanResult
	valid := segs[:0]
	for i := range segs {
		info, torn, err := scanSegment(segs[i].path, segs[i].firstSeq, nil)
		if err != nil {
			return nil, ScanResult{}, err
		}
		tornTail := false
		if fi, err := os.Stat(segs[i].path); err == nil && fi.Size() > torn {
			// Torn or corrupt tail: truncate to the last valid record.
			res.TruncatedBytes += fi.Size() - torn
			if err := os.Truncate(segs[i].path, torn); err != nil {
				return nil, ScanResult{}, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			tornTail = true
		}
		if info.records > 0 {
			valid = append(valid, info)
			res.Records += info.records
			res.NextSeq = info.lastSeq + 1
			res.HasRecords = true
		} else if err := os.Remove(segs[i].path); err != nil {
			// A segment with no valid records carries no information.
			return nil, ScanResult{}, fmt.Errorf("wal: %w", err)
		}
		if tornTail {
			// Everything after the torn point is untrustworthy: discard the
			// remaining segments so the log stays a clean prefix.
			for _, later := range segs[i+1:] {
				if err := os.Remove(later.path); err != nil {
					return nil, ScanResult{}, fmt.Errorf("wal: %w", err)
				}
				res.SegmentsDropped++
			}
			break
		}
	}
	w := &WAL{
		dir:  dir,
		opt:  opt,
		met:  opt.Metrics,
		segs: append([]segmentInfo(nil), valid...),
	}
	if w.met == nil {
		w.met = new(Metrics)
	}
	for _, s := range w.segs {
		w.total += s.size
	}
	w.nextSeq = res.NextSeq
	res.Segments = len(w.segs)
	// Appends continue in the last surviving segment; a fresh segment is
	// created lazily on the first append otherwise.
	if n := len(w.segs); n > 0 {
		last := &w.segs[n-1]
		f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, ScanResult{}, fmt.Errorf("wal: %w", err)
		}
		w.f = f
		w.bw = bufio.NewWriterSize(f, 64<<10)
		w.size = last.size
	}
	w.met.Segments.SetInt(len(w.segs))
	w.met.SizeBytes.Set(float64(w.total))
	if opt.Fsync == FsyncInterval {
		w.stopFlush = make(chan struct{})
		w.flushDone = make(chan struct{})
		go w.flusher(w.stopFlush)
	}
	return w, res, nil
}

// Replay streams every valid record with sequence >= from, in order, to fn.
// Records below from (already covered by a checkpoint) are skipped. fn's
// Record aliases a scratch buffer; it must copy what it retains. Returns the
// number of records delivered.
func (w *WAL) Replay(from uint64, fn func(Record) error) (uint64, error) {
	w.mu.Lock()
	// Flush so the files hold every append, and finalize the active
	// segment's metadata so it is not skipped as empty.
	if w.err == nil && w.bw != nil {
		if err := w.bw.Flush(); err != nil {
			w.err = fmt.Errorf("wal: replay: %w", err)
			w.mu.Unlock()
			return 0, w.err
		}
	}
	w.segMetaLocked()
	segs := append([]segmentInfo(nil), w.segs...)
	w.mu.Unlock()
	var n uint64
	for _, sg := range segs {
		if sg.records == 0 || sg.lastSeq < from {
			continue
		}
		_, _, err := scanSegment(sg.path, sg.firstSeq, func(rec Record) error {
			if rec.Seq < from {
				return nil
			}
			n++
			return fn(rec)
		})
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// AlignTo prepares the WAL for appends starting at seq. When the log's tail
// does not line up with seq (a checkpoint newer than the surviving tail, or
// records skipped by recovery), the next append opens a fresh segment named
// by its first record so intra-segment sequence continuity is preserved.
func (w *WAL) AlignTo(seq uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil && w.nextSeq != seq {
		// Finalize the tail's metadata at its true span before nextSeq moves.
		w.segMetaLocked()
		w.rotate = true
	}
	w.nextSeq = seq
}

// AppendElement appends one element record. It buffers; nothing is promised
// durable until Commit returns. Errors are sticky: after any append or
// commit failure the WAL refuses further writes, so the log never contains
// a gap that a later successful write would paper over.
func (w *WAL) AppendElement(seq uint64, pt []float64, p float64, ts int64) error {
	t0 := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	n := recordLen(len(pt))
	if err := w.ensureSegmentLocked(seq, int64(n)); err != nil {
		return err
	}
	w.buf = appendRecord(w.buf[:0], seq, pt, p, ts)
	if _, err := w.bw.Write(w.buf); err != nil {
		w.err = fmt.Errorf("wal: append: %w", err)
		return w.err
	}
	w.size += int64(n)
	w.total += int64(n)
	w.nextSeq = seq + 1
	w.met.Appends.Inc()
	w.met.AppendedBytes.Add(uint64(n))
	w.met.SizeBytes.Set(float64(w.total))
	w.met.AppendLatency.Record(time.Since(t0))
	return nil
}

// Commit makes every record appended since the previous Commit crash-safe
// (flushed to the OS) and, under FsyncAlways, power-safe (fsynced). One
// Commit per ingested batch is the group-commit contract that amortizes the
// syscalls.
func (w *WAL) Commit() error {
	t0 := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.bw == nil {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		w.err = fmt.Errorf("wal: commit: %w", err)
		return w.err
	}
	if w.opt.Fsync == FsyncAlways {
		if err := w.syncLocked(); err != nil {
			return err
		}
	}
	w.met.Commits.Inc()
	w.met.CommitLatency.Record(time.Since(t0))
	return nil
}

// Sync flushes and fsyncs the active segment, whatever the policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.bw == nil {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		w.err = fmt.Errorf("wal: sync: %w", err)
		return w.err
	}
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	t0 := time.Now()
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("wal: fsync: %w", err)
		return w.err
	}
	w.met.Fsyncs.Inc()
	w.met.FsyncLatency.Record(time.Since(t0))
	return nil
}

// ensureSegmentLocked makes sure an active segment can take n more bytes,
// rotating or creating one as needed.
func (w *WAL) ensureSegmentLocked(seq uint64, n int64) error {
	needNew := w.f == nil || w.rotate ||
		(w.size+n > w.opt.SegmentBytes && w.size > segHdrLen)
	if !needNew {
		return nil
	}
	if !w.rotate {
		// An AlignTo rotation already finalized the tail's metadata (and
		// nextSeq has since moved); only size rotations finalize here.
		w.segMetaLocked()
	}
	if w.f != nil {
		if err := w.bw.Flush(); err != nil {
			w.err = fmt.Errorf("wal: rotate: %w", err)
			return w.err
		}
		// The retiring segment is sealed with an fsync regardless of policy:
		// rotation is rare and a sealed segment never changes again.
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("wal: rotate: %w", err)
			return w.err
		}
		if err := w.f.Close(); err != nil {
			w.err = fmt.Errorf("wal: rotate: %w", err)
			return w.err
		}
		w.f = nil
		w.met.Rotations.Inc()
	}
	w.rotate = false
	path := filepath.Join(w.dir, segmentName(seq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		w.err = fmt.Errorf("wal: new segment: %w", err)
		return w.err
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		w.err = fmt.Errorf("wal: new segment: %w", err)
		return w.err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		w.err = err
		return w.err
	}
	w.f = f
	if w.bw == nil {
		w.bw = bufio.NewWriterSize(f, 64<<10)
	} else {
		w.bw.Reset(f)
	}
	w.size = segHdrLen
	w.total += segHdrLen
	w.segs = append(w.segs, segmentInfo{path: path, firstSeq: seq, size: segHdrLen})
	w.met.Segments.SetInt(len(w.segs))
	w.met.SizeBytes.Set(float64(w.total))
	return nil
}

// segMetaLocked finalizes the active segment's bookkeeping (size, record
// span) before the segment list is consulted for rotation or GC. Records are
// consecutive within a segment, so the span follows from nextSeq.
func (w *WAL) segMetaLocked() {
	if n := len(w.segs); n > 0 && w.f != nil {
		last := &w.segs[n-1]
		last.size = w.size
		if w.nextSeq > last.firstSeq {
			last.lastSeq = w.nextSeq - 1
			last.records = w.nextSeq - last.firstSeq
		}
	}
}

// GC removes segments every record of which is strictly below keepSeq — the
// caller passes min(newest checkpoint seq, window horizon seq), so a segment
// is only collected once both the checkpoint and the sliding window have
// moved past it. The active (last) segment is never collected.
func (w *WAL) GC(keepSeq uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	w.segMetaLocked()
	removed := 0
	for len(w.segs) > 1 && w.segs[0].lastSeq < keepSeq {
		sg := w.segs[0]
		if err := os.Remove(sg.path); err != nil {
			return removed, fmt.Errorf("wal: gc: %w", err)
		}
		w.total -= sg.size
		w.segs = w.segs[1:]
		removed++
	}
	if removed > 0 {
		w.met.GCSegments.Add(uint64(removed))
		w.met.Segments.SetInt(len(w.segs))
		w.met.SizeBytes.Set(float64(w.total))
	}
	return removed, nil
}

// SegmentCount returns the number of live segments.
func (w *WAL) SegmentCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segs)
}

// SizeBytes returns the total on-disk size of the log.
func (w *WAL) SizeBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total
}

// flusher is the FsyncInterval background goroutine. The stop channel is
// passed in (captured at spawn time): stopFlusher nils the w.stopFlush field
// for idempotency, and it can run before this goroutine is first scheduled —
// reading the field here could then see nil and block forever.
func (w *WAL) flusher(stop <-chan struct{}) {
	defer close(w.flushDone)
	t := time.NewTicker(w.opt.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			w.mu.Lock()
			if w.err == nil && w.bw != nil {
				if err := w.bw.Flush(); err == nil {
					w.syncLocked()
				} else {
					w.err = fmt.Errorf("wal: flush: %w", err)
				}
			}
			w.mu.Unlock()
		}
	}
}

// Close flushes, fsyncs and closes the log. Idempotent.
func (w *WAL) Close() error {
	w.stopFlusher()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	var firstErr error
	if w.err == nil && w.bw != nil {
		if err := w.bw.Flush(); err != nil {
			firstErr = err
		} else if err := w.f.Sync(); err != nil {
			firstErr = err
		}
	}
	if w.f != nil {
		if err := w.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		w.f = nil
	}
	if w.err == nil {
		w.err = ErrClosed
	}
	if firstErr != nil {
		return fmt.Errorf("wal: close: %w", firstErr)
	}
	return nil
}

// Abort closes the log WITHOUT flushing buffered data — the file is left
// exactly as the last Commit (and the OS) saw it. It exists for crash
// simulation in tests and for tearing down a WAL whose state is already
// known bad.
func (w *WAL) Abort() {
	w.stopFlusher()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	if w.err == nil {
		w.err = ErrClosed
	}
}

func (w *WAL) stopFlusher() {
	w.mu.Lock()
	stop := w.stopFlush
	w.stopFlush = nil
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-w.flushDone
	}
}

// syncDir fsyncs a directory so renames and creations within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
