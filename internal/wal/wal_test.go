package wal

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pskyline/internal/vfs"
)

// testElem is the test stream: deterministic pseudo-random elements.
func testElem(rng *rand.Rand, dims int) ([]float64, float64, int64) {
	pt := make([]float64, dims)
	for i := range pt {
		pt[i] = rng.Float64() * 100
	}
	return pt, 0.1 + 0.9*rng.Float64(), rng.Int63n(1 << 40)
}

// appendN appends n elements starting at seq, committing every commitEvery.
func appendN(t *testing.T, w *WAL, seq uint64, n, dims, commitEvery int, rngSeed int64) uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(rngSeed))
	for i := 0; i < n; i++ {
		pt, p, ts := testElem(rng, dims)
		if err := w.AppendElement(seq, pt, p, ts); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
		seq++
		if (i+1)%commitEvery == 0 {
			if err := w.Commit(); err != nil {
				t.Fatalf("commit: %v", err)
			}
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	return seq
}

// replayAll collects every record with seq >= from.
func replayAll(t *testing.T, w *WAL, from uint64) []Record {
	t.Helper()
	var out []Record
	if _, err := w.Replay(from, func(r Record) error {
		r.Point = append([]float64(nil), r.Point...)
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestRecordRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var buf []byte
	for i := 0; i < 100; i++ {
		dims := 1 + rng.Intn(8)
		pt, p, ts := testElem(rng, dims)
		buf = appendRecord(buf[:0], uint64(i), pt, p, ts)
		if len(buf) != recordLen(dims) {
			t.Fatalf("record length %d, want %d", len(buf), recordLen(dims))
		}
		rec, _, err := decodeRecord(buf[recHdrLen:], nil)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Seq != uint64(i) || rec.Prob != p || rec.TS != ts {
			t.Fatalf("round trip mismatch: %+v", rec)
		}
		for d := range pt {
			if rec.Point[d] != pt[d] {
				t.Fatalf("coordinate %d mismatch", d)
			}
		}
	}
}

func TestOpenAppendReplay(t *testing.T) {
	dir := t.TempDir()
	w, res, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if res.HasRecords {
		t.Fatal("fresh dir reports records")
	}
	end := appendN(t, w, 0, 500, 3, 16, 42)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, res2, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if !res2.HasRecords || res2.NextSeq != end || res2.Records != 500 {
		t.Fatalf("reopen scan = %+v, want 500 records next %d", res2, end)
	}
	recs := replayAll(t, w2, 0)
	if len(recs) != 500 {
		t.Fatalf("replayed %d records, want 500", len(recs))
	}
	// Replay must produce exactly the appended values, in order.
	rng := rand.New(rand.NewSource(42))
	for i, rec := range recs {
		pt, p, ts := testElem(rng, 3)
		if rec.Seq != uint64(i) || rec.Prob != p || rec.TS != ts {
			t.Fatalf("record %d = %+v, want p=%v ts=%v", i, rec, p, ts)
		}
		for d := range pt {
			if rec.Point[d] != pt[d] {
				t.Fatalf("record %d coordinate %d mismatch", i, d)
			}
		}
	}
	// Partial replay skips the checkpointed prefix.
	if got := replayAll(t, w2, 123); len(got) != 500-123 || got[0].Seq != 123 {
		t.Fatalf("partial replay from 123: %d records, first %d", len(got), got[0].Seq)
	}
}

func TestSegmentRotationAndGC(t *testing.T) {
	dir := t.TempDir()
	// ~69 bytes per d=3 record: a 1 KiB segment holds ~14 records.
	w, _, err := Open(dir, Options{Fsync: FsyncNever, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	end := appendN(t, w, 0, 300, 3, 8, 7)
	if n := w.SegmentCount(); n < 10 {
		t.Fatalf("expected many segments, got %d", n)
	}
	if got := replayAll(t, w, 0); len(got) != 300 {
		t.Fatalf("replay across segments: %d records", len(got))
	}

	// GC below seq 150: only whole segments strictly below it go.
	removed, err := w.GC(150)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("GC removed nothing")
	}
	recs := replayAll(t, w, 150)
	if len(recs) != 150 || recs[0].Seq != 150 {
		t.Fatalf("post-GC replay from 150: %d records, first %v", len(recs), recs[0].Seq)
	}
	// Records >= 150 all survived; the kept prefix may reach a bit below.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen after GC: scan tolerates the missing prefix.
	w2, res, err := Open(dir, Options{Fsync: FsyncNever, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if res.NextSeq != end {
		t.Fatalf("post-GC reopen next seq %d, want %d", res.NextSeq, end)
	}
	if got := replayAll(t, w2, 150); len(got) != 150 {
		t.Fatalf("post-GC reopen replay: %d records", len(got))
	}
}

// lastSegment returns the path of the newest segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(vfs.OS{}, dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return segs[len(segs)-1].path
}

// TestTornTailTruncation cuts the final segment at every kind of offset —
// record boundaries, mid-header, mid-payload — and asserts Open recovers
// exactly the longest clean record prefix and the log accepts appends again.
func TestTornTailTruncation(t *testing.T) {
	const n, dims = 60, 3
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		dir := t.TempDir()
		w, _, err := Open(dir, Options{Fsync: FsyncNever})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, w, 0, n, dims, 4, 1000+int64(trial))
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		seg := lastSegment(t, dir)
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		// Cut at a random byte offset within the record area (or exactly a
		// record boundary on even trials).
		recLen := int64(recordLen(dims))
		var cut int64
		if trial%2 == 0 {
			k := rng.Int63n(int64(n) + 1)
			cut = segHdrLen + k*recLen
		} else {
			cut = segHdrLen + rng.Int63n(fi.Size()-segHdrLen+1)
		}
		if err := os.Truncate(seg, cut); err != nil {
			t.Fatal(err)
		}
		wantRecords := int((cut - segHdrLen) / recLen) // complete records before the cut

		w2, res, err := Open(dir, Options{Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("trial %d: open after cut at %d: %v", trial, cut, err)
		}
		recs := replayAll(t, w2, 0)
		if len(recs) != wantRecords {
			t.Fatalf("trial %d: cut %d → %d records, want %d", trial, cut, len(recs), wantRecords)
		}
		if res.HasRecords != (wantRecords > 0) || int(res.Records) != wantRecords {
			t.Fatalf("trial %d: scan %+v, want %d records", trial, res, wantRecords)
		}
		// The log must keep working: append from where the tail now ends.
		w2.AlignTo(res.NextSeq)
		end := appendN(t, w2, res.NextSeq, 10, dims, 4, 2000+int64(trial))
		if got := replayAll(t, w2, 0); len(got) != wantRecords+10 || (len(got) > 0 && got[len(got)-1].Seq != end-1) {
			t.Fatalf("trial %d: post-recovery append broken: %d records", trial, len(got))
		}
		w2.Close()
	}
}

// TestMidLogCorruption flips bytes inside an earlier record: recovery must
// keep the prefix before the corruption and drop everything after, including
// later segments.
func TestMidLogCorruption(t *testing.T) {
	const dims = 2
	dir := t.TempDir()
	w, _, err := Open(dir, Options{Fsync: FsyncNever, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 200, dims, 8, 5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(vfs.OS{}, dir)
	if err != nil || len(segs) < 4 {
		t.Fatalf("want >= 4 segments, got %d (%v)", len(segs), err)
	}
	// Corrupt a byte in the middle of the second segment's record area.
	victim := segs[1]
	raw, err := os.ReadFile(victim.path)
	if err != nil {
		t.Fatal(err)
	}
	pos := segHdrLen + (len(raw)-segHdrLen)/2
	raw[pos] ^= 0xFF
	if err := os.WriteFile(victim.path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, res, err := Open(dir, Options{Fsync: FsyncNever, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if res.SegmentsDropped == 0 {
		t.Fatalf("corruption in segment 2 of %d should drop later segments: %+v", len(segs), res)
	}
	recs := replayAll(t, w2, 0)
	// Everything before the corrupt record survives; it is a strict prefix.
	if len(recs) == 0 || len(recs) >= 200 {
		t.Fatalf("replay after corruption: %d records", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d: prefix broken", i, rec.Seq)
		}
	}
	if res.TruncatedBytes == 0 {
		t.Fatalf("scan should report truncated bytes: %+v", res)
	}
}

// TestAbortKeepsCommitted simulates a crash: Abort drops whatever was
// appended after the last Commit, and Open recovers exactly the committed
// prefix.
func TestAbortKeepsCommitted(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		pt, p, ts := testElem(rng, 3)
		if err := w.AppendElement(uint64(i), pt, p, ts); err != nil {
			t.Fatal(err)
		}
		if i == 11 { // commit the first 12 only
			if err := w.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	w.Abort()
	w2, res, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if res.Records != 12 || res.NextSeq != 12 {
		t.Fatalf("after abort: %+v, want the 12 committed records", res)
	}
}

func TestAlignToRotates(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	end := appendN(t, w, 0, 20, 2, 4, 8)
	// A checkpoint ahead of the tail (records 20..29 lost to a power cut):
	// appends must restart in a fresh, correctly named segment.
	w.AlignTo(end + 10)
	appendN(t, w, end+10, 5, 2, 4, 9)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, res, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if res.NextSeq != end+15 || res.Records != 25 {
		t.Fatalf("scan after gap = %+v, want 25 records ending at %d", res, end+15)
	}
	got := replayAll(t, w2, end+10)
	if len(got) != 5 || got[0].Seq != end+10 {
		t.Fatalf("replay after gap: %d records, first %v", len(got), got[0].Seq)
	}
}

func TestCheckpointInstallAndList(t *testing.T) {
	dir := t.TempDir()
	blob := func(s string) func(io.Writer) error {
		return func(w io.Writer) error { _, err := io.Copy(w, bytes.NewBufferString(s)); return err }
	}
	if _, err := WriteCheckpoint(nil, dir, 100, blob("first")); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteCheckpoint(nil, dir, 250, blob("second")); err != nil {
		t.Fatal(err)
	}
	refs, err := Checkpoints(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 || refs[0].Seq != 250 || refs[1].Seq != 100 {
		t.Fatalf("checkpoints = %+v", refs)
	}
	raw, err := os.ReadFile(refs[0].Path)
	if err != nil || string(raw) != "second" {
		t.Fatalf("newest checkpoint payload %q (%v)", raw, err)
	}
	// A failed install leaves nothing behind.
	if _, err := WriteCheckpoint(nil, dir, 300, func(io.Writer) error { return fmt.Errorf("boom") }); err == nil {
		t.Fatal("failing writer did not error")
	}
	if refs, _ = Checkpoints(nil, dir); len(refs) != 2 {
		t.Fatalf("failed install left debris: %+v", refs)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	if n, err := RemoveCheckpointsBefore(nil, dir, 250); err != nil || n != 1 {
		t.Fatalf("RemoveCheckpointsBefore = %d, %v", n, err)
	}
	if refs, _ = Checkpoints(nil, dir); len(refs) != 1 || refs[0].Seq != 250 {
		t.Fatalf("after GC: %+v", refs)
	}
}

// TestAppendAllocs pins the durability hot path's allocation budget: once
// the encode buffer has grown to the record size, AppendElement + Commit
// with fsync=never must not allocate — the WAL adds zero amortized
// allocations to steady-state Push.
func TestAppendAllocs(t *testing.T) {
	dir := t.TempDir()
	// A huge segment bound keeps rotation out of the measured window.
	w, _, err := Open(dir, Options{Fsync: FsyncNever, SegmentBytes: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	pt := []float64{1.5, 2.5, 3.5}
	seq := uint64(0)
	if err := w.AppendElement(seq, pt, 0.5, 1); err != nil { // warm the buffer
		t.Fatal(err)
	}
	seq++
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(2000, func() {
		if err := w.AppendElement(seq, pt, 0.5, int64(seq)); err != nil {
			t.Fatal(err)
		}
		seq++
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("AppendElement+Commit averaged %.2f allocs, want 0", avg)
	}
}

func TestMetricsRecorded(t *testing.T) {
	dir := t.TempDir()
	met := new(Metrics)
	w, _, err := Open(dir, Options{Fsync: FsyncAlways, SegmentBytes: 1 << 10, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 100, 3, 10, 77)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if met.Appends.Load() != 100 {
		t.Errorf("appends = %d", met.Appends.Load())
	}
	if met.Commits.Load() == 0 || met.Fsyncs.Load() == 0 {
		t.Errorf("commits=%d fsyncs=%d", met.Commits.Load(), met.Fsyncs.Load())
	}
	if met.Rotations.Load() == 0 || met.Segments.Load() < 2 {
		t.Errorf("rotations=%d segments=%v", met.Rotations.Load(), met.Segments.Load())
	}
	if met.AppendLatency.Count() != 100 || met.FsyncLatency.Count() == 0 {
		t.Errorf("latency counts: append=%d fsync=%d", met.AppendLatency.Count(), met.FsyncLatency.Count())
	}
}

func TestIntervalFlusher(t *testing.T) {
	dir := t.TempDir()
	met := new(Metrics)
	w, _, err := Open(dir, Options{Fsync: FsyncInterval, FsyncInterval: 5 * time.Millisecond, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 10, 2, 5, 6)
	deadline := time.Now().Add(2 * time.Second)
	for met.Fsyncs.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if met.Fsyncs.Load() == 0 {
		t.Fatal("interval flusher never fsynced")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent and post-close writes fail cleanly.
	if err := w.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := w.AppendElement(99, []float64{1, 2}, 0.5, 0); err == nil {
		t.Fatal("append after close succeeded")
	}
}
