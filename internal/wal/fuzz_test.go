package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"pskyline/internal/vfs"
)

// FuzzWALRecord throws arbitrary bytes at the two decoding layers a crashed
// or corrupted log exercises: the record payload decoder, and the segment
// scanner that frames records and classifies where (and why) a segment goes
// bad. Neither may ever panic, a successful payload decode must re-encode to
// the identical bytes, and the scanner must always preserve the valid record
// planted before the fuzz tail — whatever the tail holds.
func FuzzWALRecord(f *testing.F) {
	// Seed corpus: valid payloads of a few dimensionalities, their truncated
	// prefixes, and single-bit flips.
	for _, d := range []int{1, 3, 8} {
		pt := make([]float64, d)
		for i := range pt {
			pt[i] = float64(i) * 1.5
		}
		rec := appendRecord(nil, 42, pt, 0.75, 1234567)
		payload := rec[recHdrLen:]
		f.Add(payload)
		f.Add(payload[:len(payload)/2])
		flipped := append([]byte(nil), payload...)
		flipped[len(flipped)-1] ^= 0x80
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte{recElement})

	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, _, err := decodeRecord(payload, nil)
		if err == nil {
			// The encoding is canonical: whatever decodes must re-encode to
			// the exact same bytes.
			re := appendRecord(nil, rec.Seq, rec.Point, rec.Prob, rec.TS)
			if !bytes.Equal(re[recHdrLen:], payload) {
				t.Fatalf("decode/encode not a round trip:\n in  %x\n out %x", payload, re[recHdrLen:])
			}
		}

		// Frame the fuzz bytes as a segment tail after one valid record and
		// scan. The valid prefix must survive regardless of the tail; a tail
		// that is a bare truncation must classify as torn, not corrupt.
		dir := t.TempDir()
		path := filepath.Join(dir, segmentName(7))
		valid := appendRecord(nil, 7, []float64{1, 2}, 0.5, 99)
		content := append(append([]byte(nil), segMagic...), valid...)
		cut := len(content)
		content = append(content, payload...)
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatal(err)
		}
		info, torn, reason, err := scanSegment(vfs.OS{}, path, 7, false, nil)
		if err != nil {
			t.Fatalf("scanSegment returned an error for in-file garbage: %v", err)
		}
		if info.records < 1 || info.lastSeq < 7 {
			t.Fatalf("valid prefix record lost: %+v", info)
		}
		if torn < int64(cut) {
			t.Fatalf("torn point %d cuts into the valid prefix (ends %d)", torn, cut)
		}
		if torn > int64(len(content)) {
			t.Fatalf("torn point %d past file end %d", torn, len(content))
		}

		// A tail that is a strict prefix of a valid successor record is the
		// crash signature and must be classified torn, never corrupt.
		next := appendRecord(nil, 8, []float64{3, 4}, 0.25, 100)
		if len(payload) > 0 && len(payload) < len(next) && bytes.Equal(payload, next[:len(payload)]) {
			if reason != endTorn {
				t.Fatalf("truncated successor classified %d, want endTorn", reason)
			}
		}
	})
}

// FuzzWALRecordHeader fuzzes the length/CRC framing: arbitrary 8-byte headers
// followed by arbitrary bytes must never panic the scanner and must never
// yield a record beyond the planted prefix unless the CRC genuinely matches.
func FuzzWALRecordHeader(f *testing.F) {
	valid := appendRecord(nil, 3, []float64{9}, 0.5, 1)
	f.Add(valid[:recHdrLen], valid[recHdrLen:])
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}, []byte{})
	f.Add([]byte{29, 0, 0, 0, 0, 0, 0, 0}, bytes.Repeat([]byte{0}, 29))

	f.Fuzz(func(t *testing.T, hdr, body []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segmentName(3))
		content := append(append([]byte(nil), segMagic...), valid...)
		content = append(content, hdr...)
		content = append(content, body...)
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatal(err)
		}
		info, _, reason, err := scanSegment(vfs.OS{}, path, 3, false, nil)
		if err != nil {
			t.Fatalf("scanSegment error: %v", err)
		}
		if info.records < 1 {
			t.Fatalf("valid prefix lost: %+v", info)
		}
		if info.records > 1 {
			// The fuzzer found bytes that parse as record seq 4 — only
			// acceptable if the framing genuinely checks out.
			if len(hdr) < recHdrLen {
				t.Fatalf("accepted a record from a short header")
			}
			n := int(binary.LittleEndian.Uint32(hdr[:4]))
			if n < 29 || n > len(body) {
				t.Fatalf("accepted a record with bad length %d (body %d)", n, len(body))
			}
			if crc32.Checksum(body[:n], crcTable) != binary.LittleEndian.Uint32(hdr[4:recHdrLen]) {
				t.Fatalf("accepted a record with a wrong CRC")
			}
		}
		_ = reason
	})
}
