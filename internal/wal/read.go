package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"pskyline/internal/vfs"
)

// The read side of the log: the minimal surface a replication shipper needs.
// A primary streams its WAL to followers by (a) listing what is durable —
// SealedSegments and the CommittedSeq watermark — and (b) following the
// committed prefix record by record with a TailReader, which hands back the
// raw on-disk record frames (length + CRC + payload) so the bytes a follower
// replays are bit-identical to the bytes the primary logged.
//
// The readers never touch writer state: they snapshot the segment list under
// the mutex and then scan the immutable committed prefix of the files. A
// sealed segment never changes; the active segment only grows, and only its
// committed extent is ever read, so a concurrent writer (or the background
// flusher) cannot tear a read.

// ErrGone reports that the requested log position has been garbage-collected
// (or was never logged because a checkpoint subsumed it): the records cannot
// be streamed and the consumer must fall back to checkpoint catch-up.
var ErrGone = errors.New("wal: requested records have been garbage-collected")

// SegmentRef describes one sealed (immutable) segment.
type SegmentRef struct {
	Path     string
	FirstSeq uint64
	LastSeq  uint64 // valid when Records > 0
	Records  uint64
	Size     int64
}

// SealedSegments lists the immutable segments in first-sequence order: every
// segment except the one currently open for appends. Their contents are
// final — safe to read without coordination.
func (w *WAL) SealedSegments() ([]SegmentRef, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, ErrClosed
	}
	w.segMetaLocked()
	n := len(w.segs)
	if n > 0 && w.f != nil {
		n-- // the last segment is active
	}
	refs := make([]SegmentRef, 0, n)
	for _, sg := range w.segs[:n] {
		refs = append(refs, SegmentRef{
			Path: sg.path, FirstSeq: sg.firstSeq, LastSeq: sg.lastSeq,
			Records: sg.records, Size: sg.size,
		})
	}
	return refs, nil
}

// CommittedSeq returns the durability watermark: every record with sequence
// below it has been written to the segment files (pending appends that have
// not been through Commit are above it). For an empty log it is the position
// appends will start at.
func (w *WAL) CommittedSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.pendingRecs > 0 {
		return w.pendingFirst
	}
	return w.nextSeq
}

// SetAckedSeq advances the replication quorum-acked watermark: every record
// with sequence below it has been acknowledged by the configured follower
// quorum, alongside (and never ahead of what matters for) the local
// durability watermark CommittedSeq. The watermark is monotone — stale
// values from racing ack readers are ignored. It is maintained by the
// replication layer; the WAL itself only stores it so durability and
// replication progress read from one place.
func (w *WAL) SetAckedSeq(seq uint64) {
	for {
		cur := w.ackedA.Load()
		if seq <= cur || w.ackedA.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// AckedSeq returns the replication quorum-acked watermark last recorded by
// SetAckedSeq (zero when no quorum has ever acked — e.g. async replication).
func (w *WAL) AckedSeq() uint64 { return w.ackedA.Load() }

// OldestSeq returns the sequence of the oldest record still retained by the
// log, reporting ok=false when no records survive (a fresh or fully
// checkpointed-and-collected directory).
func (w *WAL) OldestSeq() (uint64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.segMetaLocked()
	for _, sg := range w.segs {
		if sg.records > 0 {
			return sg.firstSeq, true
		}
	}
	return 0, false
}

// readSnapshot captures the committed-on-disk shape of the log at one
// instant: the segment list with each segment's readable extent (sealed
// segments are final; the active segment is bounded by its committed
// prefix), plus the committed watermark.
type readSnapshot struct {
	segs      []segmentInfo
	committed uint64 // CommittedSeq at snapshot time
}

func (w *WAL) readSnapshotLocked() readSnapshot {
	w.segMetaLocked()
	s := readSnapshot{segs: append([]segmentInfo(nil), w.segs...)}
	if n := len(s.segs); n > 0 && w.f != nil {
		// A failed write can leave torn bytes past the committed prefix
		// (w.dirty); bound the active segment's readable extent at committed.
		s.segs[n-1].size = w.committed
	}
	if w.pendingRecs > 0 {
		s.committed = w.pendingFirst
	} else {
		s.committed = w.nextSeq
	}
	return s
}

func (w *WAL) readSnapshot() (readSnapshot, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return readSnapshot{}, ErrClosed
	}
	return w.readSnapshotLocked(), nil
}

// TailReader follows the committed prefix of the log from a starting
// sequence, returning raw on-disk record frames in order — including records
// committed after the reader was created. It is a cursor for one consumer
// goroutine; concurrent use requires separate readers.
type TailReader struct {
	w    *WAL
	next uint64 // next sequence to deliver

	f    vfs.File // open handle on the current segment (sequential reads)
	path string
	off  int64  // parse position in the file
	buf  []byte // read-but-unparsed bytes starting at off
	rerr error  // sticky read error
}

// NewTailReader positions a tail reader at from: the first record it
// delivers is the first committed record with sequence >= from. Whether that
// position is still retained is checked by Next, not here — a reader created
// at a collected position reports ErrGone on first use.
func (w *WAL) NewTailReader(from uint64) *TailReader {
	return &TailReader{w: w, next: from}
}

// Seq returns the sequence the next delivered record will carry (or exceed).
func (t *TailReader) Seq() uint64 { return t.next }

// Close releases the reader's file handle. The reader is unusable after.
func (t *TailReader) Close() {
	if t.f != nil {
		t.f.Close()
		t.f = nil
	}
	if t.rerr == nil {
		t.rerr = ErrClosed
	}
}

// Next appends up to roughly maxBytes of committed raw record frames to dst,
// returning the extended slice and the sequence range [first, last]
// delivered (first == 0 && last == 0 when nothing new is committed — the
// caller is caught up and should poll again later). Each frame is the exact
// on-disk encoding (length + CRC + payload), re-verified against its CRC
// before being handed out. ErrGone means the position was garbage-collected
// and the consumer needs a checkpoint instead; any other error is a
// corruption or I/O failure that makes the reader unusable.
func (t *TailReader) Next(dst []byte, maxBytes int) ([]byte, uint64, uint64, error) {
	if t.rerr != nil {
		return dst, 0, 0, t.rerr
	}
	snap, err := t.w.readSnapshot()
	if err != nil {
		return dst, 0, 0, err
	}
	base := len(dst)
	var first, last uint64
	emitted := false
	for len(dst)-base < maxBytes {
		seg, ok, err := t.locate(snap)
		if err != nil {
			t.rerr = err
			return dst, first, last, err
		}
		if !ok {
			break // caught up to the committed watermark
		}
		if t.path != seg.path {
			if err := t.open(seg.path); err != nil {
				if os.IsNotExist(err) {
					// The segment was collected between the snapshot and the
					// open; the consumer needs a checkpoint.
					t.rerr = ErrGone
					return dst, first, last, ErrGone
				}
				t.rerr = err
				return dst, first, last, err
			}
		}
		dst, first, last, err = t.scan(seg, dst, base, maxBytes, &emitted, first, last)
		if err != nil {
			t.rerr = err
			return dst, first, last, err
		}
		if t.off < seg.size {
			break // maxBytes stopped the scan mid-segment
		}
		// The segment's committed extent is drained. If it was sealed, the
		// next iteration's locate moves to its successor; if it was the
		// active segment, locate reports caught-up. Dropping the handle for
		// a still-active segment would be wasteful, so keep it — open()
		// replaces it only when the path changes.
	}
	return dst, first, last, nil
}

// locate finds the segment holding t.next in the snapshot. ok=false means
// the reader is caught up (t.next is at or past the committed watermark, or
// only pending records remain); ErrGone means the position was collected.
func (t *TailReader) locate(snap readSnapshot) (segmentInfo, bool, error) {
	if t.next >= snap.committed {
		return segmentInfo{}, false, nil
	}
	// Candidates are segments with flushed records; the active segment may
	// legitimately hold none yet.
	var cands []segmentInfo
	for _, sg := range snap.segs {
		if sg.records > 0 {
			cands = append(cands, sg)
		}
	}
	if len(cands) == 0 || t.next < cands[0].firstSeq {
		// Below the watermark but not in any file: the records were either
		// garbage-collected or subsumed by a checkpoint before ever being
		// logged here (an AlignTo jump). Both mean "stream a checkpoint".
		return segmentInfo{}, false, ErrGone
	}
	idx := -1
	for i, sg := range cands {
		if sg.firstSeq <= t.next {
			idx = i
		}
	}
	sg := cands[idx]
	if t.next > sg.lastSeq {
		if idx == len(cands)-1 {
			// Past the last flushed record: the rest is pending (not yet
			// committed to the file) — caught up for now.
			return segmentInfo{}, false, nil
		}
		// A gap between segments (checkpoint ahead of a truncated tail):
		// the skipped records only exist inside a checkpoint.
		return segmentInfo{}, false, ErrGone
	}
	return sg, true, nil
}

// open starts reading a segment from its beginning, verifying the magic.
// Records before t.next are parsed and skipped by scan — the vfs.File
// surface is sequential (no Seek), and a reconnecting consumer resuming
// mid-segment pays one scan of the prefix.
func (t *TailReader) open(path string) error {
	if t.f != nil {
		t.f.Close()
		t.f = nil
	}
	f, err := t.w.fs.Open(path)
	if err != nil {
		return err
	}
	var hdr [segHdrLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: tail %s: header: %w", path, err)
	}
	if string(hdr[:]) != string(segMagic) {
		f.Close()
		return fmt.Errorf("wal: tail %s: bad segment magic", path)
	}
	t.f, t.path, t.off, t.buf = f, path, segHdrLen, t.buf[:0]
	return nil
}

// scan parses records from the current segment up to its committed extent,
// emitting every record with sequence >= t.next until maxBytes is reached.
func (t *TailReader) scan(seg segmentInfo, dst []byte, base, maxBytes int, emitted *bool, first, last uint64) ([]byte, uint64, uint64, error) {
	extent := seg.size
	for t.off < extent && len(dst)-base < maxBytes {
		if err := t.ensure(recHdrLen, extent); err != nil {
			return dst, first, last, err
		}
		n := int(binary.LittleEndian.Uint32(t.buf[:4]))
		if n < 29 || n > maxPayload {
			return dst, first, last, fmt.Errorf("wal: tail %s: bad record length %d at offset %d", t.path, n, t.off)
		}
		rec := recHdrLen + n
		if t.off+int64(rec) > extent {
			// Commits only ever advance the extent by whole records.
			return dst, first, last, fmt.Errorf("wal: tail %s: record at offset %d crosses the committed boundary", t.path, t.off)
		}
		if err := t.ensure(rec, extent); err != nil {
			return dst, first, last, err
		}
		payload := t.buf[recHdrLen:rec]
		if checksum(payload) != binary.LittleEndian.Uint32(t.buf[4:8]) {
			return dst, first, last, fmt.Errorf("wal: tail %s: CRC mismatch at offset %d", t.path, t.off)
		}
		if payload[0] != recElement {
			return dst, first, last, fmt.Errorf("wal: tail %s: unknown record kind %d at offset %d", t.path, payload[0], t.off)
		}
		seq := binary.LittleEndian.Uint64(payload[1:9])
		if seq >= t.next {
			dst = append(dst, t.buf[:rec]...)
			if !*emitted {
				first = seq
				*emitted = true
			}
			last = seq
			t.next = seq + 1
		}
		t.buf = t.buf[rec:]
		t.off += int64(rec)
	}
	return dst, first, last, nil
}

// ensure buffers at least need unparsed bytes, reading from the file but
// never past extent — bytes beyond the committed extent may still be torn or
// in flight.
func (t *TailReader) ensure(need int, extent int64) error {
	if len(t.buf) >= need {
		return nil
	}
	// t.buf is a tail slice of earlier read storage (scan consumes from the
	// front by re-slicing); copy the unparsed remainder into fresh storage
	// so appends below reclaim the consumed prefix instead of growing the
	// old array forever.
	grown := make([]byte, len(t.buf), need+64<<10)
	copy(grown, t.buf)
	t.buf = grown
	for len(t.buf) < need {
		avail := extent - (t.off + int64(len(t.buf)))
		if avail <= 0 {
			return fmt.Errorf("wal: tail %s: committed extent ends inside a record at offset %d", t.path, t.off)
		}
		chunk := int64(64 << 10)
		if chunk > avail {
			chunk = avail
		}
		start := len(t.buf)
		t.buf = append(t.buf, make([]byte, chunk)...)
		n, err := t.f.Read(t.buf[start:])
		t.buf = t.buf[:start+n]
		if n == 0 {
			if err == nil || err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return fmt.Errorf("wal: tail %s: read at offset %d: %w", t.path, t.off+int64(start), err)
		}
	}
	return nil
}

// DecodeRecords iterates the raw record frames in b (the byte shape a
// TailReader emits and a replication shipper transports), verifying each
// length prefix and CRC and handing the decoded records to fn in order. The
// Record's Point aliases a scratch buffer — fn must copy what it retains.
func DecodeRecords(b []byte, fn func(Record) error) error {
	var scratch []float64
	for len(b) > 0 {
		if len(b) < recHdrLen {
			return fmt.Errorf("wal: records: %d trailing bytes", len(b))
		}
		n := int(binary.LittleEndian.Uint32(b[:4]))
		if n < 29 || n > maxPayload {
			return fmt.Errorf("wal: records: bad record length %d", n)
		}
		if len(b) < recHdrLen+n {
			return fmt.Errorf("wal: records: truncated record (%d of %d bytes)", len(b), recHdrLen+n)
		}
		payload := b[recHdrLen : recHdrLen+n]
		if checksum(payload) != binary.LittleEndian.Uint32(b[4:8]) {
			return fmt.Errorf("wal: records: CRC mismatch")
		}
		rec, sc, err := decodeRecord(payload, scratch)
		if err != nil {
			return err
		}
		scratch = sc
		if err := fn(rec); err != nil {
			return err
		}
		b = b[recHdrLen+n:]
	}
	return nil
}
