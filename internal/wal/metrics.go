package wal

import "pskyline/internal/obs"

// Metrics is the WAL's observability block, recorded with the same
// allocation-free single-writer primitives as the engine's stage histograms
// (see internal/obs). Appends and commits are recorded by the goroutine that
// holds the WAL mutex, so the single-writer contract is satisfied by the
// same serialization that protects the log itself. The reading side (a
// Monitor registry, Snapshot) may run from any goroutine.
type Metrics struct {
	// Appends counts appended records; AppendedBytes their on-disk size.
	Appends       obs.Counter
	AppendedBytes obs.Counter
	// Commits counts group commits (one per Push or per ingested batch);
	// Fsyncs counts actual fsync syscalls (per commit under FsyncAlways,
	// per flusher tick under FsyncInterval, zero under FsyncNever).
	Commits obs.Counter
	Fsyncs  obs.Counter
	// Rotations counts segment rotations.
	Rotations obs.Counter
	// GCSegments counts segments removed by garbage collection.
	GCSegments obs.Counter

	// WriteErrors counts durability failures observed (including each
	// failed retry attempt); Retries counts recovery attempts made under
	// the Retry policy.
	WriteErrors obs.Counter
	Retries     obs.Counter
	// DroppedRecords and DroppedBytes count records shed while degraded
	// (Shed policy): records that were acknowledged to the caller but never
	// reached the log. Reattaches counts successful recoveries from
	// StateDegraded back to StateHealthy.
	DroppedRecords obs.Counter
	DroppedBytes   obs.Counter
	Reattaches     obs.Counter

	// Segments and SizeBytes track the live segment count and total log size.
	Segments  obs.Gauge
	SizeBytes obs.Gauge
	// State mirrors the health state machine as its numeric value
	// (0 healthy, 1 retrying, 2 degraded, 3 detached).
	State obs.Gauge

	// AppendLatency, CommitLatency and FsyncLatency are the stage latency
	// histograms of the durability pipeline.
	AppendLatency obs.Histogram
	CommitLatency obs.Histogram
	FsyncLatency  obs.Histogram
}
