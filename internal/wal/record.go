// Package wal is the operator's durability layer: an append-only segmented
// write-ahead log of arriving stream elements plus a checkpoint store.
//
// Theorem 5 of the paper proves the maintained candidate set S_{N,q} is
// minimal — it cannot reconstruct the rest of the window after a crash — so
// a restartable deployment must persist the raw arrival stream and replay it.
// The sliding window makes that cheap: only the most recent N elements (or
// Period time units) can ever matter again, so the log self-truncates — a
// checkpoint of the engine state plus the log tail past it is a complete
// recovery recipe, and everything older is garbage.
//
// Layout of a durability directory:
//
//	wal-<firstSeq>.seg   log segments, named by their first record's sequence
//	ckpt-<seq>.ckpt      engine checkpoints, named by the stream position
//
// Records are length-prefixed binary with a CRC32-Castagnoli checksum; the
// encoder reuses a pooled buffer so steady-state appends do not allocate.
// Group commit is the caller's contract: Append any number of records, then
// Commit once — one write syscall and (under FsyncAlways) one fsync for the
// whole batch. Torn tails from crashes are detected by the checksum and
// truncated on Open; checkpoints are installed with an atomic rename so a
// crash mid-install never leaves a half-written checkpoint visible.
//
// Like the rest of the operator, the package is stdlib-only.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Record wire format, all fixed-width little-endian:
//
//	uint32  payload length
//	uint32  CRC32-Castagnoli of the payload
//	payload:
//	  byte    record kind (recElement)
//	  uint64  sequence number
//	  uint64  occurrence probability (float64 bits)
//	  uint64  timestamp (int64 bits)
//	  uint32  dimensionality d
//	  d×uint64 coordinates (float64 bits)
//
// The sequence number is stored explicitly (rather than derived from the
// position in the log) so that replay can skip records already covered by a
// checkpoint and detect gaps left by corruption.
const (
	recHdrLen  = 8
	recElement = 1

	// maxPayload bounds a record's payload so a corrupt length prefix is
	// rejected instead of driving a huge read.
	maxPayload = 1 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// checksum is the record checksum used throughout the package.
func checksum(p []byte) uint32 { return crc32.Checksum(p, crcTable) }

// Record is one decoded log record: an arriving stream element.
type Record struct {
	Seq  uint64
	Prob float64
	TS   int64
	// Point aliases the decoder's scratch buffer and is only valid until
	// the next record is decoded; copy it to retain.
	Point []float64
}

// payloadLen returns the payload size of an element record with d dimensions.
func payloadLen(d int) int { return 1 + 8 + 8 + 8 + 4 + 8*d }

// recordLen returns the full on-disk size of an element record.
func recordLen(d int) int { return recHdrLen + payloadLen(d) }

// appendRecord encodes an element record into buf (reusing its storage) and
// returns the extended slice. The caller owns buf across calls, which is what
// keeps the append hot path allocation-free once the buffer has grown to the
// workload's record size.
func appendRecord(buf []byte, seq uint64, pt []float64, p float64, ts int64) []byte {
	n := payloadLen(len(pt))
	need := recHdrLen + n
	if cap(buf) < len(buf)+need {
		grown := make([]byte, len(buf), len(buf)+need)
		copy(grown, buf)
		buf = grown
	}
	start := len(buf)
	buf = buf[:start+need]
	payload := buf[start+recHdrLen:]
	payload[0] = recElement
	binary.LittleEndian.PutUint64(payload[1:], seq)
	binary.LittleEndian.PutUint64(payload[9:], math.Float64bits(p))
	binary.LittleEndian.PutUint64(payload[17:], uint64(ts))
	binary.LittleEndian.PutUint32(payload[25:], uint32(len(pt)))
	for i, v := range pt {
		binary.LittleEndian.PutUint64(payload[29+8*i:], math.Float64bits(v))
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(n))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return buf
}

// decodeRecord parses a record payload whose CRC has already been verified.
// The point coordinates are decoded into scratch (grown as needed) and
// aliased by the returned Record.
func decodeRecord(payload []byte, scratch []float64) (Record, []float64, error) {
	if len(payload) < 29 {
		return Record{}, scratch, fmt.Errorf("wal: record payload %d bytes, want >= 29", len(payload))
	}
	if payload[0] != recElement {
		return Record{}, scratch, fmt.Errorf("wal: unknown record kind %d", payload[0])
	}
	d := int(binary.LittleEndian.Uint32(payload[25:]))
	if d < 1 || len(payload) != payloadLen(d) {
		return Record{}, scratch, fmt.Errorf("wal: record payload %d bytes does not match dimensionality %d", len(payload), d)
	}
	if cap(scratch) < d {
		scratch = make([]float64, d)
	}
	scratch = scratch[:d]
	for i := 0; i < d; i++ {
		scratch[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[29+8*i:]))
	}
	return Record{
		Seq:   binary.LittleEndian.Uint64(payload[1:]),
		Prob:  math.Float64frombits(binary.LittleEndian.Uint64(payload[9:])),
		TS:    int64(binary.LittleEndian.Uint64(payload[17:])),
		Point: scratch,
	}, scratch, nil
}
