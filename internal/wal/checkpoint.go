package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"pskyline/internal/vfs"
)

// Checkpoints are opaque snapshot blobs (the Monitor's versioned gob
// checkpoint) named by the stream position they capture. Installation is
// write-temp + fsync + atomic rename + fsync(dir): a crash mid-install never
// leaves a half-written checkpoint under a valid name, so recovery can trust
// any ckpt-*.ckpt it finds — and still falls back to the next older one if
// the payload fails to decode. A failed or crashed install leaves only a
// *.ckpt.tmp file, which WriteCheckpoint removes on the spot and Open sweeps
// at recovery.

// CheckpointRef names one installed checkpoint.
type CheckpointRef struct {
	Path string
	// Seq is the stream position (engine NextSeq) the checkpoint captures:
	// replay resumes at this sequence.
	Seq uint64
}

func checkpointName(seq uint64) string {
	return fmt.Sprintf("ckpt-%020d.ckpt", seq)
}

func parseCheckpointName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".ckpt") {
		return 0, false
	}
	num := strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".ckpt")
	if len(num) != 20 {
		return 0, false
	}
	seq, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Checkpoints lists the directory's installed checkpoints, newest first.
// A missing directory is an empty list, not an error. fsys nil selects the
// production filesystem.
func Checkpoints(fsys vfs.FS, dir string) ([]CheckpointRef, error) {
	if fsys == nil {
		fsys = vfs.OS{}
	}
	ents, err := fsys.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var refs []CheckpointRef
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		seq, ok := parseCheckpointName(ent.Name())
		if !ok {
			continue
		}
		refs = append(refs, CheckpointRef{Path: filepath.Join(dir, ent.Name()), Seq: seq})
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Seq > refs[j].Seq })
	return refs, nil
}

// WriteCheckpoint installs a checkpoint capturing stream position seq: write
// produces the blob onto the supplied writer, and the file becomes visible
// under its final name only after its contents are durable. On any failure
// the temp file is removed (best effort; Open sweeps survivors) and the
// previously installed checkpoint remains untouched and authoritative.
// fsys nil selects the production filesystem.
func WriteCheckpoint(fsys vfs.FS, dir string, seq uint64, write func(io.Writer) error) (CheckpointRef, error) {
	if fsys == nil {
		fsys = vfs.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return CheckpointRef{}, fmt.Errorf("wal: checkpoint: %w", err)
	}
	final := filepath.Join(dir, checkpointName(seq))
	tmp := final + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return CheckpointRef{}, fmt.Errorf("wal: checkpoint: %w", err)
	}
	fail := func(err error) (CheckpointRef, error) {
		f.Close()
		fsys.Remove(tmp)
		return CheckpointRef{}, fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return CheckpointRef{}, fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		fsys.Remove(tmp)
		return CheckpointRef{}, fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return CheckpointRef{}, fmt.Errorf("wal: checkpoint: %w", err)
	}
	return CheckpointRef{Path: final, Seq: seq}, nil
}

// RemoveCheckpointsBefore deletes checkpoints older than seq, returning how
// many were removed. The newest checkpoint should always be kept. fsys nil
// selects the production filesystem.
func RemoveCheckpointsBefore(fsys vfs.FS, dir string, seq uint64) (int, error) {
	if fsys == nil {
		fsys = vfs.OS{}
	}
	refs, err := Checkpoints(fsys, dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, ref := range refs {
		if ref.Seq < seq {
			if err := fsys.Remove(ref.Path); err != nil {
				return removed, fmt.Errorf("wal: %w", err)
			}
			removed++
		}
	}
	return removed, nil
}
