package wal

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

// openRead opens a WAL with FsyncNever (reads only need the page cache) and
// a small rotation threshold so multi-segment shapes are cheap to produce.
func openRead(t *testing.T, dir string, segBytes int64) *WAL {
	t.Helper()
	w, _, err := Open(dir, Options{Fsync: FsyncNever, SegmentBytes: segBytes})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return w
}

// collect drains a tail reader until it reports caught-up, returning the
// decoded sequences in delivery order.
func collect(t *testing.T, tr *TailReader, maxBytes int) []uint64 {
	t.Helper()
	var seqs []uint64
	for {
		out, _, _, err := tr.Next(nil, maxBytes)
		if err != nil {
			t.Fatalf("tail next: %v", err)
		}
		if len(out) == 0 {
			return seqs
		}
		if err := DecodeRecords(out, func(r Record) error {
			seqs = append(seqs, r.Seq)
			return nil
		}); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
}

func TestTailReaderFollowsCommits(t *testing.T) {
	w := openRead(t, t.TempDir(), 1<<20)
	defer w.Close()
	tr := w.NewTailReader(0)
	defer tr.Close()

	if got := collect(t, tr, 1<<20); len(got) != 0 {
		t.Fatalf("fresh log delivered %v", got)
	}

	rng := rand.New(rand.NewSource(1))
	for seq := uint64(0); seq < 20; seq++ {
		pt, p, ts := testElem(rng, 3)
		if err := w.AppendElement(seq, pt, p, ts); err != nil {
			t.Fatal(err)
		}
		// Appended but uncommitted records must be invisible.
		if got := collect(t, tr, 1<<20); len(got) != 0 {
			t.Fatalf("pending record %d visible: %v", seq, got)
		}
		if wm := w.CommittedSeq(); wm != seq {
			t.Fatalf("watermark %d with record %d pending", wm, seq)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
		if wm := w.CommittedSeq(); wm != seq+1 {
			t.Fatalf("watermark %d after committing %d", wm, seq)
		}
		got := collect(t, tr, 1<<20)
		if len(got) != 1 || got[0] != seq {
			t.Fatalf("after committing %d delivered %v", seq, got)
		}
	}
}

func TestTailReaderContentMatchesLog(t *testing.T) {
	w := openRead(t, t.TempDir(), 1<<20)
	defer w.Close()
	rng := rand.New(rand.NewSource(2))
	type el struct {
		pt []float64
		p  float64
		ts int64
	}
	var want []el
	for seq := uint64(0); seq < 50; seq++ {
		pt, p, ts := testElem(rng, 2)
		want = append(want, el{append([]float64(nil), pt...), p, ts})
		if err := w.AppendElement(seq, pt, p, ts); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	tr := w.NewTailReader(0)
	defer tr.Close()
	out, first, last, err := tr.Next(nil, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if first != 0 || last != 49 {
		t.Fatalf("delivered range [%d, %d], want [0, 49]", first, last)
	}
	i := 0
	if err := DecodeRecords(out, func(r Record) error {
		e := want[i]
		if r.Seq != uint64(i) || r.Prob != e.p || r.TS != e.ts {
			t.Fatalf("record %d: got seq=%d p=%v ts=%d", i, r.Seq, r.Prob, r.TS)
		}
		for d, v := range e.pt {
			if r.Point[d] != v {
				t.Fatalf("record %d dim %d: got %v want %v", i, d, r.Point[d], v)
			}
		}
		i++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if i != 50 {
		t.Fatalf("decoded %d records, want 50", i)
	}
}

func TestTailReaderAcrossRotations(t *testing.T) {
	w := openRead(t, t.TempDir(), 256) // tiny segments: rotate every few records
	defer w.Close()
	appendN(t, w, 0, 200, 2, 5, 3)
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if w.SegmentCount() < 3 {
		t.Fatalf("expected multiple segments, got %d", w.SegmentCount())
	}

	sealed, err := w.SealedSegments()
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != w.SegmentCount()-1 {
		t.Fatalf("%d sealed segments with %d total", len(sealed), w.SegmentCount())
	}
	for i := 1; i < len(sealed); i++ {
		if sealed[i].FirstSeq <= sealed[i-1].FirstSeq {
			t.Fatalf("sealed segments out of order: %+v", sealed)
		}
		if sealed[i-1].Records == 0 || sealed[i-1].LastSeq+1 != sealed[i].FirstSeq {
			t.Fatalf("sealed segment gap: %+v -> %+v", sealed[i-1], sealed[i])
		}
	}

	tr := w.NewTailReader(0)
	defer tr.Close()
	got := collect(t, tr, 1<<20)
	if len(got) != 200 {
		t.Fatalf("delivered %d records, want 200", len(got))
	}
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("record %d has seq %d", i, s)
		}
	}

	// Small maxBytes must still make progress and deliver everything once.
	tr2 := w.NewTailReader(0)
	defer tr2.Close()
	got2 := collect(t, tr2, 100)
	if len(got2) != 200 {
		t.Fatalf("small-budget reader delivered %d records, want 200", len(got2))
	}
}

func TestTailReaderFromMidLog(t *testing.T) {
	w := openRead(t, t.TempDir(), 512)
	defer w.Close()
	appendN(t, w, 0, 120, 2, 7, 4)
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	tr := w.NewTailReader(77)
	defer tr.Close()
	got := collect(t, tr, 1<<20)
	if len(got) != 43 || got[0] != 77 || got[len(got)-1] != 119 {
		t.Fatalf("mid-log read: %d records, first %d, last %d", len(got), got[0], got[len(got)-1])
	}
}

func TestTailReaderGone(t *testing.T) {
	w := openRead(t, t.TempDir(), 256)
	defer w.Close()
	appendN(t, w, 0, 100, 2, 5, 5)
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.GC(60); err != nil {
		t.Fatal(err)
	}
	oldest, ok := w.OldestSeq()
	if !ok || oldest == 0 {
		t.Fatalf("OldestSeq = %d, %v after GC", oldest, ok)
	}

	tr := w.NewTailReader(0)
	defer tr.Close()
	if _, _, _, err := tr.Next(nil, 1<<20); !errors.Is(err, ErrGone) {
		t.Fatalf("collected position: err = %v, want ErrGone", err)
	}
	// The error is sticky.
	if _, _, _, err := tr.Next(nil, 1<<20); !errors.Is(err, ErrGone) {
		t.Fatalf("sticky: err = %v, want ErrGone", err)
	}

	tr2 := w.NewTailReader(oldest)
	defer tr2.Close()
	got := collect(t, tr2, 1<<20)
	if len(got) == 0 || got[0] != oldest || got[len(got)-1] != 99 {
		t.Fatalf("read from oldest retained: got %d records, first %v", len(got), got)
	}
}

func TestTailReaderSurvivesConcurrentAppends(t *testing.T) {
	w := openRead(t, t.TempDir(), 1<<12)
	defer w.Close()
	const n = 500
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(6))
		for seq := uint64(0); seq < n; seq++ {
			pt, p, ts := testElem(rng, 2)
			if err := w.AppendElement(seq, pt, p, ts); err != nil {
				t.Errorf("append: %v", err)
				return
			}
			if err := w.Commit(); err != nil {
				t.Errorf("commit: %v", err)
				return
			}
		}
	}()
	tr := w.NewTailReader(0)
	defer tr.Close()
	var got []uint64
	deadline := time.Now().Add(10 * time.Second)
	for len(got) < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out with %d/%d records", len(got), n)
		}
		out, _, _, err := tr.Next(nil, 4096)
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		if len(out) == 0 {
			time.Sleep(time.Millisecond)
			continue
		}
		if err := DecodeRecords(out, func(r Record) error {
			got = append(got, r.Seq)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("record %d has seq %d", i, s)
		}
	}
}

func TestTailReaderClosedWAL(t *testing.T) {
	w := openRead(t, t.TempDir(), 1<<20)
	appendN(t, w, 0, 10, 2, 5, 7)
	tr := w.NewTailReader(0)
	defer tr.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := tr.Next(nil, 1<<20); !errors.Is(err, ErrClosed) {
		t.Fatalf("next on closed WAL: %v, want ErrClosed", err)
	}
}

func TestDecodeRecordsRejectsDamage(t *testing.T) {
	var buf []byte
	buf = appendRecord(buf, 0, []float64{1, 2}, 0.5, 9)
	buf = appendRecord(buf, 1, []float64{3, 4}, 0.6, 10)

	nop := func(Record) error { return nil }
	if err := DecodeRecords(buf, nop); err != nil {
		t.Fatalf("valid records rejected: %v", err)
	}
	if err := DecodeRecords(buf[:len(buf)-3], nop); err == nil {
		t.Fatal("truncated record accepted")
	}
	flip := append([]byte(nil), buf...)
	flip[recHdrLen+12] ^= 0x40
	if err := DecodeRecords(flip, nop); err == nil {
		t.Fatal("bit flip accepted")
	}
	if err := DecodeRecords(buf[:5], nop); err == nil {
		t.Fatal("trailing header fragment accepted")
	}
}
