package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"pskyline/internal/vfs"
)

// writeBlob is a trivial checkpoint payload for install tests.
func writeBlob(s string) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := io.WriteString(w, s)
		return err
	}
}

// listDir names every entry in dir (the tests assert on debris).
func listDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

// TestCheckpointInstallFailures drives WriteCheckpoint through a failure at
// every step of the install protocol — temp create, payload write, fsync,
// rename, directory sync — and asserts the two invariants the recovery path
// depends on: the previously installed checkpoint stays authoritative, and no
// *.ckpt.tmp debris survives the failed install.
func TestCheckpointInstallFailures(t *testing.T) {
	steps := []struct {
		name string
		rule vfs.Rule
		// dirSync failures happen after the rename: the new checkpoint file
		// exists (its durability is merely unproven), so the newest-ref
		// assertion differs.
		afterRename bool
	}{
		{"create", vfs.Rule{Op: vfs.OpCreate, Path: ".ckpt.tmp", Times: 1, Err: syscall.EIO}, false},
		{"write", vfs.Rule{Op: vfs.OpWrite, Path: ".ckpt.tmp", Times: 1, Err: syscall.ENOSPC}, false},
		{"write-torn", vfs.Rule{Op: vfs.OpWrite, Path: ".ckpt.tmp", Times: 1, Err: syscall.EIO, Partial: 3}, false},
		{"fsync", vfs.Rule{Op: vfs.OpSync, Path: ".ckpt.tmp", Times: 1, Err: syscall.EIO}, false},
		{"rename", vfs.Rule{Op: vfs.OpRename, Path: ".ckpt.tmp", Times: 1, Err: syscall.EIO}, false},
		{"syncdir", vfs.Rule{Op: vfs.OpSyncDir, Times: 1, Err: syscall.EIO}, true},
	}
	for _, step := range steps {
		t.Run(step.name, func(t *testing.T) {
			dir := t.TempDir()
			fi := vfs.NewFault(vfs.OS{}, 1)
			prev, err := WriteCheckpoint(fi, dir, 100, writeBlob("old"))
			if err != nil {
				t.Fatalf("install baseline: %v", err)
			}

			fi.Inject(step.rule)
			if _, err := WriteCheckpoint(fi, dir, 200, writeBlob("new")); err == nil {
				t.Fatalf("install with %s failure succeeded", step.name)
			}

			for _, name := range listDir(t, dir) {
				if filepath.Ext(name) == ".tmp" {
					t.Fatalf("temp debris survived failed install: %v", listDir(t, dir))
				}
			}
			refs, err := Checkpoints(fi, dir)
			if err != nil {
				t.Fatal(err)
			}
			wantNewest := prev
			if step.afterRename {
				wantNewest = CheckpointRef{Path: filepath.Join(dir, checkpointName(200)), Seq: 200}
			}
			if len(refs) == 0 || refs[0] != wantNewest {
				t.Fatalf("newest checkpoint %+v, want %+v", refs, wantNewest)
			}

			// The surviving baseline is intact, not half-overwritten.
			blob, err := os.ReadFile(prev.Path)
			if err != nil || string(blob) != "old" {
				t.Fatalf("baseline checkpoint damaged: %q, %v", blob, err)
			}

			// A retry on the healed disk installs normally.
			if _, err := WriteCheckpoint(fi, dir, 300, writeBlob("retry")); err != nil {
				t.Fatalf("install after heal: %v", err)
			}
		})
	}
}

// TestOpenSweepsCheckpointTmp plants stale install debris — what a crash
// between temp-write and rename leaves behind — and verifies Open removes it
// and reports the sweep.
func TestOpenSweepsCheckpointTmp(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		tmp := filepath.Join(dir, checkpointName(uint64(i))+".tmp")
		if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	w, res, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if res.TmpFilesRemoved != 3 {
		t.Fatalf("TmpFilesRemoved = %d, want 3", res.TmpFilesRemoved)
	}
	for _, name := range listDir(t, dir) {
		if filepath.Ext(name) == ".tmp" {
			t.Fatalf("tmp debris survived Open: %v", listDir(t, dir))
		}
	}
}

// TestCheckpointFallbackChain verifies the reader-side contract: with several
// installed checkpoints, Checkpoints lists newest-first so a caller whose
// newest blob fails to decode can walk down to an older valid one.
func TestCheckpointFallbackChain(t *testing.T) {
	dir := t.TempDir()
	for i := 1; i <= 3; i++ {
		if _, err := WriteCheckpoint(nil, dir, uint64(i*100), writeBlob(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	refs, err := Checkpoints(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 3 || refs[0].Seq != 300 || refs[1].Seq != 200 || refs[2].Seq != 100 {
		t.Fatalf("refs %+v, want seqs 300,200,100", refs)
	}
}
