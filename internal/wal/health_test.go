package wal

import (
	"errors"
	"math/rand"
	"strings"
	"syscall"
	"testing"
	"time"

	"pskyline/internal/vfs"
)

// openFault opens a WAL on a fault-injecting filesystem with a fast retry
// schedule so policy tests run in microseconds.
func openFault(t *testing.T, dir string, fi *vfs.Fault, pol Policy) *WAL {
	t.Helper()
	w, _, err := Open(dir, Options{
		Fsync:         FsyncAlways,
		FS:            fi,
		Policy:        pol,
		RetryMax:      3,
		RetryBase:     time.Microsecond,
		RetryMaxDelay: 10 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{
		{"", FailStop}, {"failstop", FailStop}, {" FailStop ", FailStop},
		{"retry", Retry}, {"RETRY", Retry},
		{"shed", Shed},
	} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if got.String() == "" {
			t.Errorf("Policy(%v).String() empty", got)
		}
	}
	if _, err := ParsePolicy("explode"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		StateHealthy: "healthy", StateRetrying: "retrying",
		StateDegraded: "degraded", StateDetached: "detached",
	} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestBackoffDelayBounds(t *testing.T) {
	w := &WAL{
		opt: Options{RetryBase: 10 * time.Millisecond, RetryMaxDelay: 80 * time.Millisecond},
		rng: rand.New(rand.NewSource(7)),
	}
	for attempt := 1; attempt <= 20; attempt++ {
		d := w.backoffDelay(attempt)
		full := w.opt.RetryBase << uint(attempt-1)
		if full <= 0 || full > w.opt.RetryMaxDelay {
			full = w.opt.RetryMaxDelay
		}
		if d < full/2 || d > full {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, full/2, full)
		}
	}
}

func TestFailStopDetaches(t *testing.T) {
	dir := t.TempDir()
	fi := vfs.NewFault(vfs.OS{}, 1)
	w := openFault(t, dir, fi, FailStop)
	appendN(t, w, 0, 10, 3, 5, 1)

	fi.Inject(vfs.Rule{Op: vfs.OpWrite, Times: -1, Err: syscall.EIO})
	if err := w.AppendElement(10, []float64{1, 2, 3}, 0.5, 10); err != nil {
		t.Fatalf("append into pending should not fail: %v", err)
	}
	err := w.Commit()
	if !errors.Is(err, ErrDetached) {
		t.Fatalf("commit error %v, want ErrDetached", err)
	}
	if w.State() != StateDetached {
		t.Fatalf("state %v, want detached", w.State())
	}
	if w.LastFault() == nil {
		t.Fatal("LastFault nil after detach")
	}
	// Sticky: later operations fail fast with the same error.
	if err2 := w.AppendElement(11, []float64{1, 2, 3}, 0.5, 11); !errors.Is(err2, ErrDetached) {
		t.Fatalf("append after detach: %v", err2)
	}
	if fi.Errors(vfs.OpWrite) != 1 {
		t.Fatalf("FailStop retried the write: %d injected errors", fi.Errors(vfs.OpWrite))
	}

	// The committed prefix is intact: a reopen on the healed disk replays
	// exactly the 10 records committed before the fault.
	w.Close()
	fi.Clear()
	w2, res, err := Open(dir, Options{FS: fi})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if res.Records != 10 || res.NextSeq != 10 {
		t.Fatalf("reopen found %d records next %d, want 10/10", res.Records, res.NextSeq)
	}
	if res.CorruptSegments != 0 {
		t.Fatalf("reopen found corruption: %+v", res)
	}
}

func TestRetryRecoversTransient(t *testing.T) {
	dir := t.TempDir()
	fi := vfs.NewFault(vfs.OS{}, 1)
	w := openFault(t, dir, fi, Retry)
	appendN(t, w, 0, 5, 2, 5, 1)

	// One whole write fails, then the disk heals: the caller must observe
	// nothing.
	fi.Inject(vfs.Rule{Op: vfs.OpWrite, Times: 1, Err: syscall.EIO})
	seq := appendN(t, w, 5, 5, 2, 5, 2)
	if seq != 10 {
		t.Fatalf("seq %d, want 10", seq)
	}
	if w.State() != StateHealthy {
		t.Fatalf("state %v, want healthy", w.State())
	}
	if got := w.met.Retries.Load(); got == 0 {
		t.Fatal("no retries recorded")
	}
	if recs := replayAll(t, w, 0); len(recs) != 10 {
		t.Fatalf("replayed %d records, want 10", len(recs))
	}
}

func TestRetryRepairsTornWrite(t *testing.T) {
	dir := t.TempDir()
	fi := vfs.NewFault(vfs.OS{}, 1)
	w := openFault(t, dir, fi, Retry)
	appendN(t, w, 0, 5, 2, 5, 1)

	// The next write tears at byte 7 — a partial record lands on disk past
	// the committed prefix. Repair must truncate it before the retry, or the
	// segment would hold the record twice (once torn, once whole).
	fi.Inject(vfs.Rule{Op: vfs.OpWrite, Times: 1, Err: syscall.EIO, Partial: 7})
	appendN(t, w, 5, 5, 2, 5, 2)
	if w.State() != StateHealthy {
		t.Fatalf("state %v, want healthy", w.State())
	}
	if fi.Count(vfs.OpTruncate) == 0 {
		t.Fatal("repair never truncated the torn tail")
	}

	w.Close()
	w2, res, err := Open(dir, Options{FS: fi})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if res.Records != 10 || res.TornSegments != 0 || res.CorruptSegments != 0 {
		t.Fatalf("reopen after torn-write repair: %+v", res)
	}
}

func TestRetryFsyncFailure(t *testing.T) {
	dir := t.TempDir()
	fi := vfs.NewFault(vfs.OS{}, 1)
	w := openFault(t, dir, fi, Retry)

	fi.Inject(vfs.Rule{Op: vfs.OpSync, Times: 2, Err: syscall.EIO})
	appendN(t, w, 0, 5, 2, 5, 1)
	if w.State() != StateHealthy {
		t.Fatalf("state %v, want healthy", w.State())
	}
	if recs := replayAll(t, w, 0); len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
}

func TestRetryExhaustionDetaches(t *testing.T) {
	dir := t.TempDir()
	fi := vfs.NewFault(vfs.OS{}, 1)
	w := openFault(t, dir, fi, Retry)
	appendN(t, w, 0, 5, 2, 5, 1)

	fi.Inject(vfs.Rule{Op: vfs.OpWrite, Times: -1, Err: syscall.ENOSPC})
	if err := w.AppendElement(5, []float64{1, 2}, 0.5, 5); err != nil {
		t.Fatalf("append: %v", err)
	}
	err := w.Commit()
	if !errors.Is(err, ErrDetached) {
		t.Fatalf("commit error %v, want ErrDetached", err)
	}
	if !strings.Contains(err.Error(), "no space") && !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("detach error lost the cause: %v", err)
	}
	if got := int(w.met.Retries.Load()); got != 3 {
		t.Fatalf("retries %d, want RetryMax=3", got)
	}
	if w.State() != StateDetached {
		t.Fatalf("state %v, want detached", w.State())
	}
}

func TestShedDegradesAndReattaches(t *testing.T) {
	dir := t.TempDir()
	fi := vfs.NewFault(vfs.OS{}, 1)
	var transitions []State
	w, _, err := Open(dir, Options{
		Fsync:         FsyncAlways,
		FS:            fi,
		Policy:        Shed,
		OnStateChange: func(s State) { transitions = append(transitions, s) },
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer w.Close()
	appendN(t, w, 0, 10, 2, 5, 1)

	// Disk dies for good (as far as Shed is concerned: one failure sheds).
	fi.Inject(vfs.Rule{Op: vfs.OpWrite, Times: -1, Err: syscall.EIO})
	if err := w.AppendElement(10, []float64{1, 2}, 0.5, 10); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("shed commit must absorb the failure: %v", err)
	}
	if w.State() != StateDegraded {
		t.Fatalf("state %v, want degraded", w.State())
	}
	// Degraded appends are counted no-ops; commits stay nil.
	for seq := uint64(11); seq < 20; seq++ {
		if err := w.AppendElement(seq, []float64{1, 2}, 0.5, int64(seq)); err != nil {
			t.Fatalf("degraded append: %v", err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("degraded commit: %v", err)
	}
	if got := w.met.DroppedRecords.Load(); got != 10 {
		t.Fatalf("dropped records %d, want 10 (1 pending + 9 degraded)", got)
	}
	if w.met.DroppedBytes.Load() == 0 {
		t.Fatal("dropped bytes not counted")
	}

	// Disk heals; the owner installs a checkpoint at seq 20 and reattaches.
	fi.Clear()
	if err := w.Reattach(20); err != nil {
		t.Fatalf("reattach: %v", err)
	}
	if w.State() != StateHealthy {
		t.Fatalf("state %v, want healthy", w.State())
	}
	if n := w.SegmentCount(); n != 0 {
		t.Fatalf("stale segments survived reattach: %d", n)
	}
	appendN(t, w, 20, 5, 2, 5, 3)
	if recs := replayAll(t, w, 0); len(recs) != 5 || recs[0].Seq != 20 {
		t.Fatalf("post-reattach replay: %d records, first %d; want 5 from 20", len(recs), recs[0].Seq)
	}
	want := []State{StateDegraded, StateHealthy}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions %v, want %v", transitions, want)
		}
	}
}

func TestReattachFailureStaysDegraded(t *testing.T) {
	dir := t.TempDir()
	fi := vfs.NewFault(vfs.OS{}, 1)
	w := openFault(t, dir, fi, Shed)
	appendN(t, w, 0, 5, 2, 5, 1)

	fi.Inject(vfs.Rule{Op: vfs.OpWrite, Times: 1, Err: syscall.EIO})
	w.AppendElement(5, []float64{1, 2}, 0.5, 5)
	if err := w.Commit(); err != nil || w.State() != StateDegraded {
		t.Fatalf("commit %v state %v, want nil/degraded", err, w.State())
	}

	// The stale segment cannot be removed yet: Reattach must fail, stay
	// degraded, and succeed when called again after the disk heals.
	fi.Inject(vfs.Rule{Op: vfs.OpRemove, Times: 1, Err: syscall.EIO})
	if err := w.Reattach(6); err == nil {
		t.Fatal("reattach succeeded despite remove failure")
	}
	if w.State() != StateDegraded {
		t.Fatalf("state %v, want degraded after failed reattach", w.State())
	}
	if err := w.Reattach(6); err != nil {
		t.Fatalf("second reattach: %v", err)
	}
	if w.State() != StateHealthy {
		t.Fatalf("state %v, want healthy", w.State())
	}
}

func TestRetrySegmentCreationFailure(t *testing.T) {
	dir := t.TempDir()
	fi := vfs.NewFault(vfs.OS{}, 1)
	w := openFault(t, dir, fi, Retry)

	// The very first segment creation fails twice; the retry loop must
	// recreate it (tolerating the debris path) and commit cleanly.
	fi.Inject(vfs.Rule{Op: vfs.OpCreate, Times: 2, Err: syscall.EIO})
	appendN(t, w, 0, 5, 2, 5, 1)
	if w.State() != StateHealthy {
		t.Fatalf("state %v, want healthy", w.State())
	}
	if recs := replayAll(t, w, 0); len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
}
