package wal

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Policy selects how the WAL responds to durability failures (disk write,
// fsync, rotation or segment-creation errors).
type Policy int

const (
	// FailStop (the default) latches the first failure as a sticky error:
	// every later Append/Commit fails fast with it and the log never
	// contains a gap papered over by a later successful write. The caller
	// decides whether to keep serving reads.
	FailStop Policy = iota
	// Retry attempts bounded in-place recovery: exponential backoff with
	// seeded jitter, the torn segment tail truncated back to the last
	// known-good byte and the handle reopened (or the segment rotated)
	// between attempts. Pending records are kept in memory, so a transient
	// fault (a few failed syscalls) is invisible to the caller and the log
	// stays a clean prefix. When the retry budget is exhausted the WAL
	// detaches — the remaining behavior is FailStop.
	Retry
	// Shed drops durability rather than availability: on failure the WAL
	// transitions to StateDegraded, discards pending records (counted in
	// Metrics.DroppedRecords) and turns every later append into a counted
	// no-op, so ingestion and queries continue at full speed. The owner is
	// expected to watch for StateDegraded and call Reattach once it has
	// installed a fresh checkpoint covering the gap.
	Shed
)

func (p Policy) String() string {
	switch p {
	case Retry:
		return "retry"
	case Shed:
		return "shed"
	default:
		return "failstop"
	}
}

// ParsePolicy parses a durability failure policy name: "failstop", "retry"
// or "shed" ("" selects the default, failstop).
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "failstop":
		return FailStop, nil
	case "retry":
		return Retry, nil
	case "shed":
		return Shed, nil
	}
	return 0, fmt.Errorf("wal: unknown durability policy %q (want failstop, retry or shed)", s)
}

// State is the WAL health state machine:
//
//	StateHealthy ──fault──▶ StateRetrying ──budget──▶ StateDetached
//	     ▲    ╲                   │ success                ▲
//	     │     ╲fault (Shed)      ▼                        │fault (FailStop)
//	     │      ─────────▶ StateDegraded ──Reattach──▶ StateHealthy
//
// FailStop jumps straight from StateHealthy to StateDetached. Retry cycles
// healthy ⇄ retrying and detaches when the budget runs out. Shed degrades
// instead of detaching and returns to healthy via Reattach.
type State int32

const (
	// StateHealthy: appends are being written and synced normally.
	StateHealthy State = iota
	// StateRetrying: a failure occurred and recovery attempts are running
	// (Retry policy). Pending records are held in memory.
	StateRetrying
	// StateDegraded: durability has been shed (Shed policy). Appends are
	// counted and dropped; the engine keeps ingesting. Reattach restores
	// logging after the owner installs a checkpoint covering the gap.
	StateDegraded
	// StateDetached: an unrecoverable failure was latched. Every operation
	// returns the sticky error (which wraps ErrDetached).
	StateDetached
)

func (s State) String() string {
	switch s {
	case StateRetrying:
		return "retrying"
	case StateDegraded:
		return "degraded"
	case StateDetached:
		return "detached"
	default:
		return "healthy"
	}
}

// ErrDetached marks the sticky error latched when the WAL gives up on a
// durability failure (FailStop, or Retry with the budget exhausted). Test
// with errors.Is.
var ErrDetached = errors.New("wal: detached after unrecoverable durability failure")

// Retry tuning defaults (Options.RetryMax and friends; zero selects these).
const (
	DefaultRetryMax      = 6
	DefaultRetryBase     = 10 * time.Millisecond
	DefaultRetryMaxDelay = time.Second
)

// backoffDelay returns the sleep before retry attempt a (1-based):
// exponential from RetryBase, capped at RetryMaxDelay, with seeded jitter in
// [0.5, 1.0)× so synchronized retries across instances decorrelate.
func (w *WAL) backoffDelay(attempt int) time.Duration {
	d := w.opt.RetryBase << uint(attempt-1)
	if d <= 0 || d > w.opt.RetryMaxDelay {
		d = w.opt.RetryMaxDelay
	}
	return d/2 + time.Duration(w.rng.Int63n(int64(d/2)+1))
}

// setStateLocked moves the health state machine and mirrors the transition
// into the atomic used by lock-free readers, the metrics gauge, and the
// owner's OnStateChange callback. The callback runs with the WAL mutex held:
// it must not call back into the WAL (a non-blocking channel send is the
// intended use). Callers hold w.mu.
func (w *WAL) setStateLocked(s State, cause error) {
	if State(w.stateA.Load()) == s {
		return
	}
	w.stateA.Store(int32(s))
	w.met.State.SetInt(int(s))
	if cause != nil {
		c := cause
		w.lastFault.Store(&c)
	}
	if w.opt.OnStateChange != nil {
		w.opt.OnStateChange(s)
	}
}

// State returns the current health state. Lock-free: safe from any
// goroutine, including while a retry loop is sleeping inside the mutex.
func (w *WAL) State() State { return State(w.stateA.Load()) }

// LastFault returns the most recent durability failure observed (nil while
// the log has never faulted). Lock-free.
func (w *WAL) LastFault() error {
	if p := w.lastFault.Load(); p != nil {
		return *p
	}
	return nil
}
