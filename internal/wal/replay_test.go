package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// replayAllParallel collects every record with seq >= from via the parallel
// decoder.
func replayAllParallel(t *testing.T, w *WAL, from uint64, workers int, prog *ReplayProgress) []Record {
	t.Helper()
	var out []Record
	if _, err := w.ReplayParallel(from, workers, prog, func(r Record) error {
		r.Point = append([]float64(nil), r.Point...)
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatalf("replay parallel: %v", err)
	}
	return out
}

func recordsEqual(t *testing.T, serial, parallel []Record) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("serial replay delivered %d records, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.Seq != b.Seq || a.Prob != b.Prob || a.TS != b.TS {
			t.Fatalf("record %d diverged: serial %+v, parallel %+v", i, a, b)
		}
		if len(a.Point) != len(b.Point) {
			t.Fatalf("record %d point dims: %d vs %d", i, len(a.Point), len(b.Point))
		}
		for d := range a.Point {
			if a.Point[d] != b.Point[d] {
				t.Fatalf("record %d dim %d: %v vs %v", i, d, a.Point[d], b.Point[d])
			}
		}
	}
}

// TestReplayParallelMatchesSerial proves the parallel decoder delivers the
// exact record sequence of the serial scan — same records, same order, same
// bytes — across segment counts, worker counts and replay start positions.
func TestReplayParallelMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a multi-segment log so the fan-out has real work.
	w, _, err := Open(dir, Options{SegmentBytes: 2048, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 1, 2000, 3, 16, 11)
	if got := w.SegmentCount(); got < 8 {
		t.Fatalf("test needs a multi-segment log, got %d segments", got)
	}
	for _, from := range []uint64{0, 1, 777, 1999, 2001} {
		serial := replayAll(t, w, from)
		for _, workers := range []int{0, 1, 2, 4, 7} {
			t.Run(fmt.Sprintf("from=%d/workers=%d", from, workers), func(t *testing.T) {
				var prog ReplayProgress
				par := replayAllParallel(t, w, from, workers, &prog)
				recordsEqual(t, serial, par)
				if prog.SegmentsDecoded() != prog.SegmentsTotal() {
					t.Fatalf("progress: %d of %d segments decoded after completion",
						prog.SegmentsDecoded(), prog.SegmentsTotal())
				}
				if got := prog.RecordsReplayed(); got != uint64(len(par)) {
					t.Fatalf("progress counted %d records, delivered %d", got, len(par))
				}
			})
		}
	}
}

// TestReplayParallelCallbackError checks a failing callback stops the merge
// and surfaces the error, with all workers reaped.
func TestReplayParallelCallbackError(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(dir, Options{SegmentBytes: 2048, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 1, 1000, 2, 16, 5)
	boom := errors.New("boom")
	seen := 0
	n, err := w.ReplayParallel(0, 4, nil, func(r Record) error {
		seen++
		if seen == 137 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want callback error, got %v", err)
	}
	if n != 137 {
		t.Fatalf("delivered %d records before the error, want 137", n)
	}
}

// TestReplayParallelEmptyAndSingle covers the degenerate shapes: an empty
// log, and a replay start past the end.
func TestReplayParallelEmptyAndSingle(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var prog ReplayProgress
	n, err := w.ReplayParallel(0, 4, &prog, func(r Record) error { return nil })
	if err != nil || n != 0 {
		t.Fatalf("empty log: n=%d err=%v", n, err)
	}
	if prog.SegmentsTotal() != 0 {
		t.Fatalf("empty log reported %d segments", prog.SegmentsTotal())
	}
	appendN(t, w, 1, 10, 2, 4, 3)
	n, err = w.ReplayParallel(100, 4, nil, func(r Record) error { return nil })
	if err != nil || n != 0 {
		t.Fatalf("past-end replay: n=%d err=%v", n, err)
	}
}

// BenchmarkReplayParallel measures the parallel-decode speedup over the
// serial scan on a multi-segment log. It requires real parallelism and
// skips on a single-CPU machine, where the fan-out cannot win.
func BenchmarkReplayParallel(b *testing.B) {
	if runtime.GOMAXPROCS(0) < 2 {
		b.Skip("parallel decode needs GOMAXPROCS >= 2")
	}
	dir := b.TempDir()
	w, _, err := Open(dir, Options{SegmentBytes: 1 << 20, Fsync: FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	seq := uint64(1)
	for i := 0; i < 100; i++ {
		seq = appendNB(b, w, seq, 2000, 3, 64, int64(i))
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n, err := w.ReplayParallel(0, workers, nil, func(r Record) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					b.Fatal("no records replayed")
				}
			}
		})
	}
}

// appendNB is appendN for benchmarks.
func appendNB(b *testing.B, w *WAL, seq uint64, n, dims, commitEvery int, rngSeed int64) uint64 {
	b.Helper()
	rng := rand.New(rand.NewSource(rngSeed))
	for i := 0; i < n; i++ {
		pt, p, ts := testElem(rng, dims)
		if err := w.AppendElement(seq, pt, p, ts); err != nil {
			b.Fatalf("append %d: %v", seq, err)
		}
		seq++
		if (i+1)%commitEvery == 0 {
			if err := w.Commit(); err != nil {
				b.Fatalf("commit: %v", err)
			}
		}
	}
	if err := w.Commit(); err != nil {
		b.Fatalf("commit: %v", err)
	}
	return seq
}
