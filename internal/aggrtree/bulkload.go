package aggrtree

import (
	"math"
	"slices"
)

// BulkLoad fills an empty tree with the given items bottom-up using
// Sort-Tile-Recursive packing: sort by the first dimension, cut into slabs,
// recurse on the remaining dimensions, and pack the resulting tiles into
// leaves, then group nodes level by level until one root remains. Restoring
// a window of n elements this way costs one sort pass per dimension plus
// O(n) node construction, against n incremental inserts (each a descent
// with possible splits) — the difference is what makes reopening a large
// durable window O(seconds).
//
// Tiles and level groups are distributed evenly (sizes differing by at most
// one), so every non-root node respects the tree's minimum fill and
// CheckInvariants holds on the result. Ties on a sort dimension break by
// sequence number, making the construction fully deterministic: the same
// item multiset always yields the same tree, byte for byte.
//
// The items must carry their final probabilities (Pnew/Pold set by the
// caller); aggregates are computed from them during construction. The slice
// is reordered in place. The tree must be empty.
func (t *Tree) BulkLoad(items []*Item) {
	if t.size != 0 {
		panic("aggrtree: BulkLoad on a non-empty tree")
	}
	if len(items) == 0 {
		return
	}
	var tiles [][]*Item
	t.strTile(items, 0, &tiles)

	nodes := make([]*Node, 0, len(tiles))
	for _, tile := range tiles {
		n := t.newNode(0)
		for _, it := range tile {
			n.attachItem(it)
		}
		n.refresh()
		nodes = append(nodes, n)
	}
	level := 1
	for len(nodes) > 1 {
		parents := (len(nodes) + t.max - 1) / t.max
		next := make([]*Node, 0, parents)
		base, extra := len(nodes)/parents, len(nodes)%parents
		start := 0
		for i := 0; i < parents; i++ {
			sz := base
			if i < extra {
				sz++
			}
			p := t.newNode(level)
			for _, c := range nodes[start : start+sz] {
				p.attachChild(c)
			}
			p.refresh()
			next = append(next, p)
			start += sz
		}
		nodes = next
		level++
	}
	t.freeNode(t.root)
	t.root = nodes[0]
	t.root.parent = nil
	t.size = len(items)
}

// strTile recursively partitions items into leaf-sized tiles. dim is the
// dimension this level sorts and slabs on; the slab count is chosen so the
// remaining dimensions split the leaf count roughly evenly (the classic STR
// ceil(L^(1/d)) rule).
func (t *Tree) strTile(items []*Item, dim int, tiles *[][]*Item) {
	n := len(items)
	leaves := (n + t.max - 1) / t.max
	if leaves <= 1 {
		*tiles = append(*tiles, items)
		return
	}
	sortByDim(items, dim)
	remDims := t.dims - dim
	if remDims <= 1 {
		// Last dimension: cut straight into evenly sized leaf tiles.
		base, extra := n/leaves, n%leaves
		start := 0
		for i := 0; i < leaves; i++ {
			sz := base
			if i < extra {
				sz++
			}
			*tiles = append(*tiles, items[start:start+sz])
			start += sz
		}
		return
	}
	slabs := int(math.Ceil(math.Pow(float64(leaves), 1/float64(remDims))))
	if slabs < 1 {
		slabs = 1
	}
	if slabs > n {
		slabs = n
	}
	base, extra := n/slabs, n%slabs
	start := 0
	for i := 0; i < slabs; i++ {
		sz := base
		if i < extra {
			sz++
		}
		if sz == 0 {
			continue
		}
		t.strTile(items[start:start+sz], dim+1, tiles)
		start += sz
	}
}

// sortByDim orders items by one coordinate, breaking ties by sequence
// number so the order (and therefore the packed tree) is deterministic.
// slices.SortFunc (not sort.Slice) keeps the hot restore path free of the
// reflection-based swapper; seqs are unique, so the unstable sort is still
// fully determined by the comparator.
func sortByDim(items []*Item, dim int) {
	slices.SortFunc(items, func(a, b *Item) int {
		switch x, y := a.Point[dim], b.Point[dim]; {
		case x < y:
			return -1
		case x > y:
			return 1
		case a.Seq < b.Seq:
			return -1
		case a.Seq > b.Seq:
			return 1
		default:
			return 0
		}
	})
}
