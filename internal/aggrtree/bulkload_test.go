package aggrtree

import (
	"fmt"
	"math/rand"
	"testing"

	"pskyline/internal/geom"
	"pskyline/internal/prob"
)

func randomItems(rng *rand.Rand, n, dims int) []*Item {
	items := make([]*Item, n)
	for i := range items {
		pt := make(geom.Point, dims)
		for d := range pt {
			pt[d] = float64(rng.Intn(50)) // small alphabet → plenty of sort ties
		}
		it := NewItem(pt, 0.1+0.9*rng.Float64(), uint64(i+1))
		it.Pnew = prob.OneMinus(rng.Float64() * 0.9)
		it.Pold = prob.OneMinus(rng.Float64() * 0.9)
		items[i] = it
	}
	return items
}

// itemState captures what a tree stores for one element, for set-wise
// comparison across construction orders.
type itemState struct {
	pnew, pold prob.Factor
	point      string
}

func collectStates(t *testing.T, tr *Tree) map[uint64]itemState {
	t.Helper()
	m := make(map[uint64]itemState, tr.Size())
	tr.WalkItems(func(it *Item, pnew, pold prob.Factor) bool {
		if _, dup := m[it.Seq]; dup {
			t.Fatalf("seq %d walked twice", it.Seq)
		}
		m[it.Seq] = itemState{pnew: pnew, pold: pold, point: it.Point.String()}
		return true
	})
	return m
}

// TestBulkLoadInvariants packs item sets of many shapes and checks the
// resulting trees hold exactly the incremental trees' contents with valid
// structure and aggregates — including the leaf coordinate blocks, which
// CheckInvariants verifies slot by slot.
func TestBulkLoadInvariants(t *testing.T) {
	for _, dims := range []int{1, 2, 3, 5} {
		for _, maxEntries := range []int{4, 12} {
			for _, n := range []int{0, 1, 3, 12, 13, 25, 100, 1000} {
				t.Run(fmt.Sprintf("d=%d/max=%d/n=%d", dims, maxEntries, n), func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(dims*100000 + maxEntries*1000 + n)))
					items := randomItems(rng, n, dims)
					cfg := Config{MaxEntries: maxEntries}

					bulk := New(dims, cfg)
					bulk.BulkLoad(items)
					if err := bulk.CheckInvariants(); err != nil {
						t.Fatalf("bulk-loaded tree: %v", err)
					}
					if bulk.Size() != n {
						t.Fatalf("bulk size %d, want %d", bulk.Size(), n)
					}

					inc := New(dims, cfg)
					rng2 := rand.New(rand.NewSource(int64(dims*100000 + maxEntries*1000 + n)))
					incItems := randomItems(rng2, n, dims)
					for _, it := range incItems {
						inc.InsertItem(it)
					}
					if err := inc.CheckInvariants(); err != nil {
						t.Fatalf("incremental tree: %v", err)
					}

					bs, is := collectStates(t, bulk), collectStates(t, inc)
					if len(bs) != len(is) {
						t.Fatalf("bulk walks %d items, incremental %d", len(bs), len(is))
					}
					for seq, b := range bs {
						i, ok := is[seq]
						if !ok {
							t.Fatalf("seq %d only in bulk tree", seq)
						}
						if b != i {
							t.Fatalf("seq %d diverged: bulk %+v, incremental %+v", seq, b, i)
						}
					}
				})
			}
		}
	}
}

// TestBulkLoadDeterministic proves the same item multiset packs into the
// same tree regardless of input order.
func TestBulkLoadDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	items := randomItems(rng, 500, 3)
	a := New(3, Config{})
	a.BulkLoad(append([]*Item(nil), items...))

	rng2 := rand.New(rand.NewSource(99))
	shuffled := randomItems(rng2, 500, 3)
	rng2.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	b := New(3, Config{})
	b.BulkLoad(shuffled)

	var wa, wb []uint64
	a.WalkItems(func(it *Item, _, _ prob.Factor) bool { wa = append(wa, it.Seq); return true })
	b.WalkItems(func(it *Item, _, _ prob.Factor) bool { wb = append(wb, it.Seq); return true })
	if len(wa) != len(wb) {
		t.Fatalf("walk lengths %d vs %d", len(wa), len(wb))
	}
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("walk order diverged at %d: %d vs %d — packing is input-order dependent", i, wa[i], wb[i])
		}
	}
}

// TestBulkLoadPoison runs bulk loading with pool poisoning on: recycled
// nodes are NaN-clobbered, so any stale block lane or aggregate surviving
// into the packed tree trips CheckInvariants.
func TestBulkLoadPoison(t *testing.T) {
	SetPoison(true)
	defer SetPoison(false)
	pool := NewNodePool(3)
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 5; round++ {
		tr := New(3, Config{NodePool: pool})
		items := randomItems(rng, 300, 3)
		tr.BulkLoad(items)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Tear the tree down item by item so every node cycles through the
		// poisoned freelist before the next round bulk-loads from it.
		for _, it := range items {
			tr.DeleteItem(it)
		}
		if tr.Size() != 0 {
			t.Fatalf("round %d: %d items left after teardown", round, tr.Size())
		}
	}
}

// FuzzBulkLoad drives BulkLoad with fuzzed shapes and checks structural
// invariants plus content equality against incremental insertion.
func FuzzBulkLoad(f *testing.F) {
	f.Add(int64(1), uint16(10), uint8(3), uint8(12))
	f.Add(int64(2), uint16(1000), uint8(2), uint8(4))
	f.Add(int64(3), uint16(13), uint8(5), uint8(6))
	f.Add(int64(4), uint16(0), uint8(1), uint8(12))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, dims, maxEntries uint8) {
		d := int(dims)%6 + 1
		me := int(maxEntries)
		if me < 4 {
			me = 4
		}
		if me > 32 {
			me = 32
		}
		count := int(n) % 2048
		rng := rand.New(rand.NewSource(seed))
		items := randomItems(rng, count, d)
		bulk := New(d, Config{MaxEntries: me})
		bulk.BulkLoad(items)
		if err := bulk.CheckInvariants(); err != nil {
			t.Fatalf("bulk (seed=%d n=%d d=%d max=%d): %v", seed, count, d, me, err)
		}
		inc := New(d, Config{MaxEntries: me})
		rng2 := rand.New(rand.NewSource(seed))
		for _, it := range randomItems(rng2, count, d) {
			inc.InsertItem(it)
		}
		bs, is := collectStates(t, bulk), collectStates(t, inc)
		if len(bs) != len(is) {
			t.Fatalf("bulk %d items, incremental %d", len(bs), len(is))
		}
		for seq, b := range bs {
			if i, ok := is[seq]; !ok || b != i {
				t.Fatalf("seq %d diverged (present=%v)", seq, ok)
			}
		}
	})
}
