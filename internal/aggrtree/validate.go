package aggrtree

import (
	"fmt"

	"pskyline/internal/geom"
	"pskyline/internal/prob"
)

// invariant-checking tolerance for probability aggregates, in relative
// log-space terms.
const checkTol = 1e-7

// CheckInvariants verifies the structural and aggregate invariants of the
// tree and returns the first violation found. It is intended for tests and
// does not mutate the tree.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		return fmt.Errorf("nil root")
	}
	if t.root.parent != nil {
		return fmt.Errorf("root has a parent")
	}
	total, err := t.check(t.root, prob.One(), prob.One())
	if err != nil {
		return err
	}
	if total != t.size {
		return fmt.Errorf("size %d != counted items %d", t.size, total)
	}
	return nil
}

// check validates the subtree at n and returns its item count. accNew/accOld
// accumulate lazies from ancestors (exclusive of n).
func (t *Tree) check(n *Node, accNew, accOld prob.Factor) (int, error) {
	if n.freed {
		return 0, fmt.Errorf("freed (pooled) node reachable at level %d", n.level)
	}
	if n.level < 0 {
		return 0, fmt.Errorf("negative level")
	}
	if n != t.root && n.fanout() < t.min {
		return 0, fmt.Errorf("underfull node at level %d: fanout %d < %d", n.level, n.fanout(), t.min)
	}
	if n.fanout() > t.max {
		return 0, fmt.Errorf("overfull node at level %d: fanout %d > %d", n.level, n.fanout(), t.max)
	}
	accNew = accNew.Times(n.lazyNew)
	accOld = accOld.Times(n.lazyOld)

	rect := geom.EmptyRect(t.dims)
	count := 0
	pnoc := prob.One()
	var sMin, sMax, nMin, nMax prob.Factor
	first := true

	if n.level > 0 {
		if len(n.items) != 0 {
			return 0, fmt.Errorf("internal node holds items")
		}
		for _, c := range n.children {
			if c.parent != n {
				return 0, fmt.Errorf("child parent pointer broken at level %d", n.level)
			}
			if c.level != n.level-1 {
				return 0, fmt.Errorf("child level %d under level %d", c.level, n.level)
			}
			cc, err := t.check(c, accNew, accOld)
			if err != nil {
				return 0, err
			}
			count += cc
			rect.ExtendRect(c.rect)
			pnoc = pnoc.Times(c.pnoc)
			csMin := c.pskyMin.Times(c.lazyNew).Over(c.lazyOld)
			csMax := c.pskyMax.Times(c.lazyNew).Over(c.lazyOld)
			cnMin := c.pnewMin.Times(c.lazyNew)
			cnMax := c.pnewMax.Times(c.lazyNew)
			if first {
				sMin, sMax, nMin, nMax = csMin, csMax, cnMin, cnMax
				first = false
			} else {
				sMin, sMax = prob.Min(sMin, csMin), prob.Max(sMax, csMax)
				nMin, nMax = prob.Min(nMin, cnMin), prob.Max(nMax, cnMax)
			}
		}
	} else {
		if len(n.children) != 0 {
			return 0, fmt.Errorf("leaf holds children")
		}
		if len(n.items) > 0 {
			if n.blk == nil {
				return 0, fmt.Errorf("leaf with %d items has no coordinate block", len(n.items))
			}
			if n.blkStride < len(n.items) || len(n.blk) != t.dims*n.blkStride {
				return 0, fmt.Errorf("leaf block stride %d / len %d cannot hold %d items of %d dims",
					n.blkStride, len(n.blk), len(n.items), t.dims)
			}
		}
		for i, it := range n.items {
			for d := 0; d < t.dims && d < len(it.Point); d++ {
				if got := n.blk[d*n.blkStride+i]; got != it.Point[d] {
					return 0, fmt.Errorf("leaf block lane %d slot %d = %v, item coordinate %v (seq %d)",
						d, i, got, it.Point[d], it.Seq)
				}
			}
			if it.freed {
				return 0, fmt.Errorf("freed (pooled) item reachable (seq %d)", it.Seq)
			}
			if it.leaf != n {
				return 0, fmt.Errorf("item leaf pointer broken (seq %d)", it.Seq)
			}
			if len(it.Point) != t.dims {
				return 0, fmt.Errorf("item dims %d != tree dims %d", len(it.Point), t.dims)
			}
			count++
			rect.ExtendPoint(it.Point)
			pnoc = pnoc.Times(it.oneMin)
			s := it.Psky()
			if first {
				sMin, sMax, nMin, nMax = s, s, it.Pnew, it.Pnew
				first = false
			} else {
				sMin, sMax = prob.Min(sMin, s), prob.Max(sMax, s)
				nMin, nMax = prob.Min(nMin, it.Pnew), prob.Max(nMax, it.Pnew)
			}
		}
	}
	if count != n.count {
		return 0, fmt.Errorf("count %d != recomputed %d at level %d", n.count, count, n.level)
	}
	if count > 0 {
		if !rect.Min.Equal(n.rect.Min) || !rect.Max.Equal(n.rect.Max) {
			return 0, fmt.Errorf("rect %v..%v != recomputed %v..%v", n.rect.Min, n.rect.Max, rect.Min, rect.Max)
		}
		if !pnoc.ApproxEqual(n.pnoc, checkTol) {
			return 0, fmt.Errorf("pnoc %v != recomputed %v", n.pnoc, pnoc)
		}
		if !sMin.ApproxEqual(n.pskyMin, checkTol) || !sMax.ApproxEqual(n.pskyMax, checkTol) {
			return 0, fmt.Errorf("psky aggregate [%v,%v] != recomputed [%v,%v]", n.pskyMin, n.pskyMax, sMin, sMax)
		}
		if !nMin.ApproxEqual(n.pnewMin, checkTol) || !nMax.ApproxEqual(n.pnewMax, checkTol) {
			return 0, fmt.Errorf("pnew aggregate [%v,%v] != recomputed [%v,%v]", n.pnewMin, n.pnewMax, nMin, nMax)
		}
	}
	return count, nil
}
