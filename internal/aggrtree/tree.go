package aggrtree

import (
	"fmt"

	"pskyline/internal/geom"
	"pskyline/internal/prob"
)

// DefaultMaxEntries is the default node fanout.
const DefaultMaxEntries = 12

// Config controls tree shape.
type Config struct {
	// MaxEntries is the maximum fanout of a node; the minimum fill is 40%
	// of it. Zero selects DefaultMaxEntries.
	MaxEntries int
	// NodePool, when non-nil, recycles nodes the tree sheds instead of
	// leaving them to the GC. Trees that exchange entries (the engine's
	// band trees) must share one pool.
	NodePool *NodePool
}

// Tree is an aggregate R-tree over uncertain stream elements.
type Tree struct {
	dims int
	max  int
	min  int
	root *Node
	size int
	pool *NodePool

	// Reusable buffers for the non-reentrant structural operations
	// (pushPath, condense, splitNode); see treeScratch.
	scratch treeScratch
}

// treeScratch holds per-tree buffers for structural operations so the
// steady-state insert/delete churn stops allocating. Safe because none of
// the operations that use a given buffer re-enters itself: pushPath never
// nests, condense's reinsertions only ever split (insertEntryInto and
// insertItemInto never condense), and splits complete one at a time on the
// way up.
type treeScratch struct {
	chain       []*Node // pushPath root-to-leaf chain
	orphanItems []*Item // condense
	orphanNodes []*Node // condense
	entries     []*Node // splitNode staging
	items       []*Item // splitNode staging
	rects       []geom.Rect
	groupA      []int
	groupB      []int
	assigned    []bool
	mbbA, mbbB  geom.Rect // quadraticPartition group MBBs
}

// New returns an empty aggregate R-tree for dims-dimensional points.
func New(dims int, cfg Config) *Tree {
	if dims < 1 {
		panic("aggrtree: dims must be >= 1")
	}
	if cfg.NodePool != nil && cfg.NodePool.dims != dims {
		panic("aggrtree: NodePool dimensionality mismatch")
	}
	max := cfg.MaxEntries
	if max == 0 {
		max = DefaultMaxEntries
	}
	if max < 4 {
		panic("aggrtree: MaxEntries must be >= 4")
	}
	min := max * 2 / 5
	if min < 1 {
		min = 1
	}
	t := &Tree{dims: dims, max: max, min: min, pool: cfg.NodePool}
	t.root = t.newNode(0)
	t.scratch.mbbA = geom.EmptyRect(dims)
	t.scratch.mbbB = geom.EmptyRect(dims)
	return t
}

// newNode builds or recycles a node at the given level.
func (t *Tree) newNode(level int) *Node { return t.pool.get(t.dims, level) }

// freeNode recycles a node the tree no longer references. Without a pool
// the node still gets its freed flag set (catching stale pointers in
// validating tests) but is left to the GC.
func (t *Tree) freeNode(n *Node) { t.pool.put(n) }

// Dims returns the tree's dimensionality.
func (t *Tree) Dims() int { return t.dims }

// Size returns the number of items stored.
func (t *Tree) Size() int { return t.size }

// Root returns the root entry. It is never nil; an empty tree has an empty
// leaf root.
func (t *Tree) Root() *Node { return t.root }

// InsertItem adds an element to the tree.
func (t *Tree) InsertItem(it *Item) {
	t.insertItemInto(it)
	t.size++
}

func (t *Tree) insertItemInto(it *Item) {
	n := t.chooseNode(it.Rect(), 0)
	n.attachItem(it)
	if len(n.items) <= t.max {
		addItemUp(n, it)
		return
	}
	t.splitUpAndRefresh(n)
}

// addItemUp folds a single freshly attached item into the aggregates of its
// root path without refreshing each node from scratch. chooseNode pushed the
// whole path, so no lazy multipliers sit between the item and any ancestor:
// the item contributes exactly it.Psky() and it.Pnew to every stored
// aggregate above it. Rect extension, count and min/max merges therefore
// equal what a full refresh would compute; only pnoc accumulates in a
// different float association order, which stays within the tolerance
// CheckInvariants grants probability aggregates.
func addItemUp(n *Node, it *Item) {
	s := it.Psky()
	for m := n; m != nil; m = m.parent {
		m.rect.ExtendPoint(it.Point)
		m.pnoc = m.pnoc.Times(it.oneMin)
		if m.count == 0 {
			m.pskyMin, m.pskyMax = s, s
			m.pnewMin, m.pnewMax = it.Pnew, it.Pnew
		} else {
			m.pskyMin = prob.Min(m.pskyMin, s)
			m.pskyMax = prob.Max(m.pskyMax, s)
			m.pnewMin = prob.Min(m.pnewMin, it.Pnew)
			m.pnewMax = prob.Max(m.pnewMax, it.Pnew)
		}
		m.count++
	}
}

// DeleteItem removes an element located via its leaf back-pointer. The
// item's Pnew/Pold absorb any lazy multipliers pending on its path, so the
// returned state is exact.
func (t *Tree) DeleteItem(it *Item) {
	leaf := it.leaf
	if leaf == nil {
		panic("aggrtree: DeleteItem: item not in a tree")
	}
	t.pushPath(leaf)
	leaf.detachItem(it)
	t.size--
	t.condense(leaf)
}

// InsertEntry grafts a whole subtree (for example one removed from a sibling
// tree by RemoveEntry) into the tree at its natural level. The entry's own
// lazy multipliers travel with it. Empty entries are ignored.
func (t *Tree) InsertEntry(e *Node) {
	if e == nil || e.count == 0 {
		return
	}
	t.size += e.count
	t.insertEntryInto(e)
}

func (t *Tree) insertEntryInto(e *Node) {
	if t.root.count == 0 && e.level >= t.root.level {
		// Empty tree: adopt the subtree as the new root and recycle the
		// empty shell.
		t.freeNode(t.root)
		e.parent = nil
		t.root = e
		return
	}
	if e.level >= t.root.level {
		// The subtree is as tall as the tree itself; decompose it one
		// level and insert the pieces.
		e.Push()
		if e.level == 0 {
			for _, it := range e.items {
				it.leaf = nil
				t.insertItemInto(it)
			}
			t.freeNode(e)
			return
		}
		// e is unreachable from the tree, so iterating its children while
		// reinserting them is safe; the shell is recycled afterwards.
		for _, c := range e.children {
			c.parent = nil
			t.insertEntryInto(c)
		}
		t.freeNode(e)
		return
	}
	n := t.chooseNode(e.rect, e.level+1)
	n.attachChild(e)
	t.splitUpAndRefresh(n)
}

// RemoveEntry detaches the subtree rooted at e from the tree and returns it.
// Lazy multipliers of e's ancestors are pushed down first, so the subtree
// leaves carrying its exact pending state and can be grafted elsewhere.
func (t *Tree) RemoveEntry(e *Node) *Node {
	if e.parent == nil {
		if e != t.root {
			panic("aggrtree: RemoveEntry: detached entry")
		}
		t.root = t.newNode(0)
		t.size = 0
		return e
	}
	t.pushPath(e.parent)
	p := e.parent
	p.detachChild(e)
	t.size -= e.count
	t.condense(p)
	return e
}

// RefreshFrom recomputes aggregates from n upward after the caller mutated
// item probabilities inside n directly.
func (t *Tree) RefreshFrom(n *Node) { refreshUp(n) }

// ItemProbs returns the item's exact current (Pnew, Pold), accounting for
// lazy multipliers pending on its root-to-leaf path, without mutating the
// tree.
func (t *Tree) ItemProbs(it *Item) (pnew, pold prob.Factor) { return Probs(it) }

// ItemPsky returns the item's exact current skyline probability.
func (t *Tree) ItemPsky(it *Item) prob.Factor { return Psky(it) }

// Probs returns the item's exact current (Pnew, Pold), resolving lazy
// multipliers pending on its root-to-leaf path without mutating anything.
func Probs(it *Item) (pnew, pold prob.Factor) {
	pnew, pold = it.Pnew, it.Pold
	for n := it.leaf; n != nil; n = n.parent {
		pnew = pnew.Times(n.lazyNew)
		pold = pold.Over(n.lazyOld)
	}
	return pnew, pold
}

// Psky returns the item's exact current skyline probability, resolving
// pending lazy multipliers.
func Psky(it *Item) prob.Factor {
	pnew, pold := Probs(it)
	return it.pf.Times(pnew).Times(pold)
}

// RefreshPath recomputes aggregates from n to its root after the caller
// mutated item probabilities or lazy multipliers inside n directly.
func RefreshPath(n *Node) { refreshUp(n) }

// RefreshProbsPath recomputes only the probability aggregates from n to its
// root: the cheap path refresh after probability-only mutations.
func RefreshProbsPath(n *Node) {
	for ; n != nil; n = n.parent {
		n.RefreshProbs()
	}
}

// WalkItems visits every item with its exact (pnew, pold), accounting for
// pending lazy multipliers, without mutating the tree. The visit stops early
// if fn returns false; WalkItems reports whether the walk ran to completion.
func (t *Tree) WalkItems(fn func(it *Item, pnew, pold prob.Factor) bool) bool {
	return walk(t.root, prob.One(), prob.One(), fn)
}

func walk(n *Node, accNew, accOld prob.Factor, fn func(*Item, prob.Factor, prob.Factor) bool) bool {
	accNew = accNew.Times(n.lazyNew)
	accOld = accOld.Times(n.lazyOld)
	if n.level > 0 {
		for _, c := range n.children {
			if !walk(c, accNew, accOld, fn) {
				return false
			}
		}
		return true
	}
	for _, it := range n.items {
		if !fn(it, it.Pnew.Times(accNew), it.Pold.Over(accOld)) {
			return false
		}
	}
	return true
}

// pushPath pushes lazy multipliers top-down along the path from the root to
// n (inclusive).
func (t *Tree) pushPath(n *Node) {
	chain := t.scratch.chain[:0]
	for m := n; m != nil; m = m.parent {
		chain = append(chain, m)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		chain[i].Push()
	}
	for i := range chain {
		chain[i] = nil
	}
	t.scratch.chain = chain[:0]
}

// chooseNode descends from the root to a node at attachLevel, choosing the
// child needing least MBB enlargement (ties: smaller area, then smaller
// fanout) and pushing lazy multipliers along the way.
func (t *Tree) chooseNode(r geom.Rect, attachLevel int) *Node {
	n := t.root
	n.Push()
	for n.level > attachLevel {
		var best *Node
		bestEnl, bestArea := 0.0, 0.0
		for _, c := range n.children {
			enl, area := geom.EnlargeArea(c.rect, r)
			if best == nil || enl < bestEnl || (enl == bestEnl && (area < bestArea ||
				(area == bestArea && c.fanout() < best.fanout()))) {
				best, bestEnl, bestArea = c, enl, area
			}
		}
		if best == nil {
			panic("aggrtree: chooseNode: internal node with no children")
		}
		n = best
		n.Push()
	}
	return n
}

// splitUpAndRefresh splits overflowing nodes from n upward and refreshes
// aggregates to the root.
func (t *Tree) splitUpAndRefresh(n *Node) {
	for n != nil {
		if n.fanout() <= t.max {
			n.refresh()
			n = n.parent
			continue
		}
		sib := t.splitNode(n)
		n.refresh()
		sib.refresh()
		if n.parent == nil {
			root := t.newNode(n.level + 1)
			root.attachChild(n)
			root.attachChild(sib)
			root.refresh()
			t.root = root
			return
		}
		n.parent.attachChild(sib)
		n = n.parent
	}
}

// condense walks from n to the root, removing underfull nodes and
// reinserting their entries, then collapses a single-child root. Lazy
// multipliers along the path must already be pushed (DeleteItem and
// RemoveEntry do so).
func (t *Tree) condense(n *Node) {
	orphanItems := t.scratch.orphanItems[:0]
	orphanNodes := t.scratch.orphanNodes[:0]
	for n.parent != nil {
		p := n.parent
		if n.fanout() < t.min {
			p.detachChild(n)
			if n.level == 0 {
				for _, it := range n.items {
					it.leaf = nil
					orphanItems = append(orphanItems, it)
				}
			} else {
				for _, c := range n.children {
					c.parent = nil
					orphanNodes = append(orphanNodes, c)
				}
			}
			t.freeNode(n)
		} else {
			n.refresh()
		}
		n = p
	}
	n.refresh()
	// An internal root emptied by the upward pass must become a leaf before
	// reinsertion tries to descend through it.
	if t.root.level > 0 && len(t.root.children) == 0 {
		t.freeNode(t.root)
		t.root = t.newNode(0)
	}
	// Reinsert orphans, highest levels first so the tree regains height
	// before lower entries need it. The scratch buffers are safe here:
	// reinsertion only ever splits, never condenses, so this function does
	// not re-enter while they are live.
	for i := len(orphanNodes) - 1; i >= 0; i-- {
		t.insertEntryInto(orphanNodes[i])
	}
	for _, it := range orphanItems {
		t.insertItemInto(it)
	}
	for i := range orphanItems {
		orphanItems[i] = nil
	}
	for i := range orphanNodes {
		orphanNodes[i] = nil
	}
	t.scratch.orphanItems = orphanItems[:0]
	t.scratch.orphanNodes = orphanNodes[:0]
	// Collapse trivial roots. Callers must not hold references to entries
	// across structural operations (the engine performs all its structural
	// changes at item granularity for exactly this reason).
	for t.root.level > 0 && len(t.root.children) == 1 {
		t.root.Push()
		c := t.root.children[0]
		c.parent = nil
		old := t.root
		t.root = c
		t.freeNode(old)
	}
}

// NumNodes returns the number of nodes in the tree (for diagnostics).
func (t *Tree) NumNodes() int {
	var count func(*Node) int
	count = func(n *Node) int {
		c := 1
		for _, ch := range n.children {
			c += count(ch)
		}
		return c
	}
	return count(t.root)
}

func (t *Tree) String() string {
	return fmt.Sprintf("aggrtree{dims=%d size=%d height=%d}", t.dims, t.size, t.root.level+1)
}
