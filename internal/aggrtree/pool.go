package aggrtree

import (
	"fmt"
	"math"

	"pskyline/internal/geom"
	"pskyline/internal/prob"
)

// Freelists for nodes and items. The sliding window makes ingestion a
// steady-state churn — every arrival eventually allocates an item and
// (amortized) tree nodes, and every expiry frees them — so the engine
// recycles both through explicit pools instead of leaving the churn to the
// GC. A NodePool is shared by all band trees of one engine (Config.NodePool):
// nodes migrate between trees when thresholds change, so their free nodes
// must too.
//
// Use-after-free is the classic pooling failure mode, and here it would
// surface as silently stale aggregates rather than a crash. Three defenses:
// every Node and Item carries a freed flag that attach operations and
// CheckInvariants reject unconditionally; Put panics on double-free; and
// poison mode (SetPoison) additionally clobbers a freed node's aggregates
// with impossible values (count −1, zero factors, NaN rect) so any read
// through a stale pointer corrupts results loudly enough for the validating
// tests to catch.

// poisonMode guards the destructive clobbering of freed nodes and items.
// It is a package-level toggle flipped by tests before building trees; the
// cheap freed-flag checks are always on.
var poisonMode bool

// SetPoison enables or disables poisoning of freed pooled nodes and items.
// Not safe to flip while trees are in use; intended for test setup.
func SetPoison(on bool) { poisonMode = on }

// PoisonEnabled reports whether freed nodes and items are poisoned.
func PoisonEnabled() bool { return poisonMode }

// NodePool is a freelist of tree nodes for one dimensionality.
type NodePool struct {
	dims int
	free []*Node
}

// NewNodePool returns an empty freelist for dims-dimensional nodes.
func NewNodePool(dims int) *NodePool {
	if dims < 1 {
		panic("aggrtree: NodePool dims must be >= 1")
	}
	return &NodePool{dims: dims}
}

// Dims returns the pool's dimensionality.
func (p *NodePool) Dims() int { return p.dims }

// FreeLen returns the number of nodes currently pooled.
func (p *NodePool) FreeLen() int { return len(p.free) }

// get returns a ready-to-use node at the given level, recycling a freed one
// when available. Recycled nodes come back with empty rect, unit factors and
// retained children/items capacity.
func (p *NodePool) get(dims, level int) *Node {
	if p == nil || len(p.free) == 0 {
		return newNode(dims, level)
	}
	n := p.free[len(p.free)-1]
	p.free[len(p.free)-1] = nil
	p.free = p.free[:len(p.free)-1]
	n.freed = false
	n.parent = nil
	n.level = level
	n.rect.Reset()
	n.count = 0
	n.pnoc = prob.One()
	n.lazyNew, n.lazyOld = prob.One(), prob.One()
	n.pskyMin, n.pskyMax = prob.One(), prob.One()
	n.pnewMin, n.pnewMax = prob.One(), prob.One()
	return n
}

// put recycles a node the tree no longer references. Child and item
// references are cleared so the pool does not pin dead subtrees.
func (p *NodePool) put(n *Node) {
	if n.freed {
		panic("aggrtree: node double-free")
	}
	n.freed = true
	n.parent = nil
	for i := range n.children {
		n.children[i] = nil
	}
	n.children = n.children[:0]
	for i := range n.items {
		n.items[i] = nil
	}
	n.items = n.items[:0]
	if poisonMode {
		n.blockPoison()
		n.count = -1
		n.pnoc = prob.Zero()
		n.lazyNew, n.lazyOld = prob.Zero(), prob.Zero()
		n.pskyMin, n.pskyMax = prob.Zero(), prob.Zero()
		n.pnewMin, n.pnewMax = prob.Zero(), prob.Zero()
		for i := range n.rect.Min {
			n.rect.Min[i] = math.NaN()
			n.rect.Max[i] = math.NaN()
		}
	}
	if p == nil {
		return
	}
	p.free = append(p.free, n)
}

// ItemPool is a freelist of items.
type ItemPool struct {
	free []*Item
}

// NewItemPool returns an empty item freelist.
func NewItemPool() *ItemPool { return &ItemPool{} }

// FreeLen returns the number of items currently pooled.
func (p *ItemPool) FreeLen() int { return len(p.free) }

// Get returns an item initialized exactly as NewItem would, recycling a
// freed one when available.
func (p *ItemPool) Get(pt geom.Point, pr float64, seq uint64) *Item {
	if p == nil || len(p.free) == 0 {
		return NewItem(pt, pr, seq)
	}
	if pr <= 0 || pr > 1 {
		panic(fmt.Sprintf("aggrtree: occurrence probability %v out of (0,1]", pr))
	}
	it := p.free[len(p.free)-1]
	p.free[len(p.free)-1] = nil
	p.free = p.free[:len(p.free)-1]
	it.freed = false
	it.Point = pt
	it.P = pr
	it.Seq = seq
	it.TS = 0
	it.Pnew, it.Pold = prob.One(), prob.One()
	it.Band = 0
	it.pf = prob.FromFloat(pr)
	it.oneMin = prob.OneMinus(pr)
	it.leaf = nil
	return it
}

// Put recycles an item that has been removed from its tree, returning the
// item's point slice so the caller can recycle the coordinates separately
// (the engine's arena does). The item must not be reachable from any tree.
func (p *ItemPool) Put(it *Item) geom.Point {
	if it.freed {
		panic("aggrtree: item double-free")
	}
	if it.leaf != nil {
		panic("aggrtree: freeing item still attached to a leaf")
	}
	pt := it.Point
	it.freed = true
	it.Point = nil
	if poisonMode {
		it.P = math.NaN()
		it.Seq = ^uint64(0)
		it.Pnew, it.Pold = prob.Zero(), prob.Zero()
		it.pf, it.oneMin = prob.Zero(), prob.Zero()
		it.Band = -1
	}
	if p != nil {
		p.free = append(p.free, it)
	}
	return pt
}
