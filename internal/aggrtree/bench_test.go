package aggrtree

import (
	"math/rand"
	"testing"

	"pskyline/internal/prob"
)

func benchTree(n int, seed int64) (*Tree, []*Item) {
	r := rand.New(rand.NewSource(seed))
	tr := New(3, Config{})
	items := make([]*Item, n)
	for i := range items {
		items[i] = randItem(r, 3, uint64(i))
		tr.InsertItem(items[i])
	}
	return tr, items
}

func BenchmarkInsertItem(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tr := New(3, Config{})
	items := make([]*Item, b.N)
	for i := range items {
		items[i] = randItem(r, 3, uint64(i))
	}
	b.ResetTimer()
	for _, it := range items {
		tr.InsertItem(it)
	}
}

func BenchmarkInsertDeleteSteady(b *testing.B) {
	tr, items := benchTree(10_000, 1)
	r := rand.New(rand.NewSource(2))
	fresh := make([]*Item, b.N)
	for i := range fresh {
		fresh[i] = randItem(r, 3, uint64(100_000+i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim := items[i%len(items)]
		tr.DeleteItem(victim)
		tr.InsertItem(fresh[i])
		items[i%len(items)] = fresh[i]
	}
}

func BenchmarkWalkItems(b *testing.B) {
	tr, _ := benchTree(10_000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		tr.WalkItems(func(*Item, prob.Factor, prob.Factor) bool {
			count++
			return true
		})
		if count != 10_000 {
			b.Fatal("walk lost items")
		}
	}
}

func BenchmarkPushLazy(b *testing.B) {
	tr, _ := benchTree(10_000, 4)
	f := prob.OneMinus(0.5)
	root := tr.Root()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root.MulLazyNew(f)
		root.Push()
	}
}
