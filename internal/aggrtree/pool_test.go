package aggrtree

import (
	"math/rand"
	"testing"

	"pskyline/internal/geom"
	"pskyline/internal/prob"
)

// withPoison runs fn with freed-node poisoning enabled so any read through a
// stale pointer trips the invariant checks.
func withPoison(t *testing.T, fn func()) {
	t.Helper()
	old := PoisonEnabled()
	SetPoison(true)
	defer SetPoison(old)
	fn()
}

// TestPoolRecyclingStorm drives randomized insert/delete storms through a
// pooled tree with poisoning on, interleaving lazy multipliers, and asserts
// that recycled nodes never leak stale aggregates, items, or lazy
// multipliers: the invariants must hold and every item's exact (pnew, pold)
// must match a shadow oracle that applies the same multipliers item-wise.
func TestPoolRecyclingStorm(t *testing.T) {
	withPoison(t, func() {
		for _, dims := range []int{2, 3} {
			r := rand.New(rand.NewSource(int64(40 + dims)))
			pool := NewNodePool(dims)
			ipool := NewItemPool()
			tr := New(dims, Config{MaxEntries: 5, NodePool: pool})
			oracle := map[uint64]stormPV{}
			var live []*Item
			seq := uint64(0)
			for step := 0; step < 4000; step++ {
				switch {
				case len(live) == 0 || r.Float64() < 0.55:
					pt := make(geom.Point, dims)
					for i := range pt {
						pt[i] = r.Float64()
					}
					it := ipool.Get(pt, 1-r.Float64(), seq)
					seq++
					tr.InsertItem(it)
					live = append(live, it)
					oracle[it.Seq] = stormPV{prob.One(), prob.One()}
				case r.Float64() < 0.85:
					i := r.Intn(len(live))
					it := live[i]
					tr.DeleteItem(it)
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					delete(oracle, it.Seq)
					ipool.Put(it)
				default:
					// Apply a lazy multiplier at a random node and mirror it
					// item-wise in the oracle.
					n := tr.Root()
					for n.Level() > 0 && r.Float64() < 0.7 {
						cs := n.Children()
						n = cs[r.Intn(len(cs))]
					}
					f := prob.OneMinus(r.Float64() * 0.9)
					useNew := r.Intn(2) == 0
					if useNew {
						n.MulLazyNew(f)
					} else {
						n.MulLazyOld(f)
					}
					RefreshPath(n.Parent())
					applyOracle(n, f, useNew, oracle)
				}
				if step%101 == 0 {
					if err := tr.CheckInvariants(); err != nil {
						t.Fatalf("dims=%d step %d: %v", dims, step, err)
					}
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("dims=%d final: %v", dims, err)
			}
			if tr.Size() != len(live) {
				t.Fatalf("dims=%d: size %d != live %d", dims, tr.Size(), len(live))
			}
			// Every live item must carry its exact oracle probabilities: a
			// recycled node leaking a stale lazy multiplier would show up
			// here as a wrong pnew or pold.
			visited := 0
			tr.WalkItems(func(it *Item, pnew, pold prob.Factor) bool {
				visited++
				want, ok := oracle[it.Seq]
				if !ok {
					t.Fatalf("dims=%d: unexpected item %d in tree", dims, it.Seq)
				}
				if !pnew.ApproxEqual(want.pnew, 1e-9) || !pold.ApproxEqual(want.pold, 1e-9) {
					t.Fatalf("dims=%d item %d: probs (%v,%v) != oracle (%v,%v)",
						dims, it.Seq, pnew, pold, want.pnew, want.pold)
				}
				return true
			})
			if visited != len(live) {
				t.Fatalf("dims=%d: walked %d items, want %d", dims, visited, len(live))
			}
			// Drain the window completely (the mass-expiry shape): every
			// node the tree shed must land in the pool, then rebuilding from
			// the warm pool must produce a clean tree again.
			for _, it := range live {
				tr.DeleteItem(it)
				ipool.Put(it)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("dims=%d drained: %v", dims, err)
			}
			if pool.FreeLen() == 0 {
				t.Fatalf("dims=%d: drain recycled no nodes", dims)
			}
			if ipool.FreeLen() == 0 {
				t.Fatalf("dims=%d: drain recycled no items", dims)
			}
			for i := 0; i < 200; i++ {
				pt := make(geom.Point, dims)
				for j := range pt {
					pt[j] = r.Float64()
				}
				tr.InsertItem(ipool.Get(pt, 1-r.Float64(), seq))
				seq++
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("dims=%d rebuilt from warm pool: %v", dims, err)
			}
		}
	})
}

type stormPV struct{ pnew, pold prob.Factor }

func applyOracle(n *Node, f prob.Factor, isNew bool, oracle map[uint64]stormPV) {
	if n.IsLeaf() {
		for _, it := range n.Items() {
			v := oracle[it.Seq]
			if isNew {
				v.pnew = v.pnew.Times(f)
			} else {
				v.pold = v.pold.Over(f)
			}
			oracle[it.Seq] = v
		}
		return
	}
	for _, c := range n.Children() {
		applyOracle(c, f, isNew, oracle)
	}
}

// TestPoolSharedAcrossTrees moves whole entries between two trees sharing a
// pool — the engine's band-migration pattern — under poisoning.
func TestPoolSharedAcrossTrees(t *testing.T) {
	withPoison(t, func() {
		r := rand.New(rand.NewSource(77))
		pool := NewNodePool(2)
		a := New(2, Config{MaxEntries: 5, NodePool: pool})
		b := New(2, Config{MaxEntries: 5, NodePool: pool})
		for i := 0; i < 300; i++ {
			a.InsertItem(randItem(r, 2, uint64(i)))
		}
		for round := 0; round < 6; round++ {
			src, dst := a, b
			if round%2 == 1 {
				src, dst = b, a
			}
			root := src.RemoveEntry(src.Root())
			dst.InsertEntry(root)
			for _, tr := range []*Tree{a, b} {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
			}
		}
		if a.Size()+b.Size() != 300 {
			t.Fatalf("items lost: %d + %d != 300", a.Size(), b.Size())
		}
	})
}

// TestPoolDoubleFreePanics pins the loud-failure contract.
func TestPoolDoubleFreePanics(t *testing.T) {
	pool := NewNodePool(2)
	n := pool.get(2, 0)
	pool.put(n)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	pool.put(n)
}

// TestItemPoolReinitMatchesNewItem checks that a recycled item is
// indistinguishable from a freshly constructed one.
func TestItemPoolReinitMatchesNewItem(t *testing.T) {
	withPoison(t, func() {
		ipool := NewItemPool()
		it := ipool.Get(geom.Point{1, 2}, 0.4, 7)
		it.Pnew = it.Pnew.Times(prob.OneMinus(0.5))
		it.Pold = it.Pold.Times(prob.OneMinus(0.25))
		it.Band = 3
		it.TS = 99
		ipool.Put(it)
		got := ipool.Get(geom.Point{3, 4}, 0.6, 8)
		want := NewItem(geom.Point{3, 4}, 0.6, 8)
		if got != it {
			t.Fatal("pool did not recycle the freed item")
		}
		if !got.Point.Equal(want.Point) || got.P != want.P || got.Seq != want.Seq ||
			got.TS != want.TS || got.Band != want.Band || got.Freed() ||
			got.Pnew != want.Pnew || got.Pold != want.Pold ||
			got.pf != want.pf || got.oneMin != want.oneMin || got.leaf != nil {
			t.Fatalf("recycled item %+v != fresh %+v", got, want)
		}
	})
}

// TestFreedItemAttachPanics pins that a freed item cannot re-enter a tree.
func TestFreedItemAttachPanics(t *testing.T) {
	ipool := NewItemPool()
	it := ipool.Get(geom.Point{1, 2}, 0.5, 0)
	ipool.Put(it)
	tr := New(2, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("inserting a freed item did not panic")
		}
	}()
	tr.InsertItem(it)
}
