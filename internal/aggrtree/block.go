package aggrtree

import "math"

// Leaf coordinate blocks.
//
// Each leaf mirrors its items' coordinates into a packed structure-of-arrays
// block: one contiguous float64 lane per dimension, item i's coordinate for
// dimension d at blk[d*blkStride+i]. The probe hot loops of the engine scan
// the block with the geom block kernels — dims short sequential runs per
// leaf — instead of dereferencing one *Item (one cache line) per element.
// Items keep their Point slices untouched; the block is a maintained copy,
// valid because coordinates are immutable while an item is attached.
//
// The block is maintained on the same two mutations that maintain the items
// slice: attachItem writes item i's lanes at index len(items) before the
// append, and detachItem copies each lane down over the removed slot,
// exactly mirroring the order-preserving item removal. splitNode's restage
// (truncate + re-attach) and pool recycling (truncate) therefore need no
// extra work: lane slots past len(items) are dead and overwritten by the
// next attach. Lane storage is retained across pool recycling, so the
// steady-state churn of the sliding window allocates nothing here.

// blkInitialStride is the first lane capacity a leaf allocates: enough for
// DefaultMaxEntries plus the transient overflow entry held between an
// insertion and the split it triggers.
const blkInitialStride = 16

// blockEnsure makes room for one more item's coordinates, growing (and
// re-packing) the lanes when the stride is exhausted.
func (n *Node) blockEnsure(dims int) {
	m := len(n.items)
	if n.blk != nil && m < n.blkStride && len(n.blk) == dims*n.blkStride {
		return
	}
	stride := n.blkStride * 2
	if stride < blkInitialStride {
		stride = blkInitialStride
	}
	for stride <= m {
		stride *= 2
	}
	blk := make([]float64, dims*stride)
	for d := 0; d < dims; d++ {
		copy(blk[d*stride:], n.blk[d*n.blkStride:d*n.blkStride+min(m, n.blkStride)])
	}
	n.blk = blk
	n.blkStride = stride
}

// blockAppend writes it's coordinates into lane slot len(n.items); the
// caller appends the item right after.
func (n *Node) blockAppend(it *Item) {
	dims := len(it.Point)
	n.blockEnsure(dims)
	i := len(n.items)
	for d, v := range it.Point {
		n.blk[d*n.blkStride+i] = v
	}
}

// blockRemove deletes lane slot i, shifting later slots down to mirror the
// items slice removal. m is the item count before the removal.
func (n *Node) blockRemove(i, m int) {
	if n.blk == nil {
		return
	}
	dims := len(n.blk) / n.blkStride
	for d := 0; d < dims; d++ {
		lane := n.blk[d*n.blkStride:]
		copy(lane[i:], lane[i+1:m])
	}
}

// Block exposes the leaf's coordinate lanes for block-kernel scans: lane d
// covers lanes[d*stride : d*stride+len(Items())]. The caller must not
// mutate the slice, and must fall back to per-item scans when ok is false
// (block wider than a kernel mask, or not yet materialized).
func (n *Node) Block() (lanes []float64, stride int, ok bool) {
	if n.blk == nil || len(n.items) > 64 {
		return nil, 0, false
	}
	return n.blk, n.blkStride, true
}

// blockPoison clobbers the lane storage of a freed node so a stale scan
// through a recycled leaf reads NaNs instead of plausible coordinates.
func (n *Node) blockPoison() {
	for i := range n.blk {
		n.blk[i] = math.NaN()
	}
}
