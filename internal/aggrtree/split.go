package aggrtree

import (
	"math"

	"pskyline/internal/geom"
)

// splitNode partitions an overflowing node's entries between the node and a
// fresh sibling using Guttman's quadratic split, and returns the sibling.
// The caller refreshes both nodes and attaches the sibling. All staging
// goes through the tree's scratch buffers: splits happen one at a time on
// the unwind of an insertion, so the buffers are never live twice.
func (t *Tree) splitNode(n *Node) *Node {
	sib := t.newNode(n.level)
	if n.level > 0 {
		entries := append(t.scratch.entries[:0], n.children...)
		n.children = n.children[:0]
		rects := t.scratch.rects[:0]
		for _, e := range entries {
			rects = append(rects, e.rect)
		}
		ga, gb := t.quadraticPartition(rects, t.min)
		for _, i := range ga {
			n.attachChild(entries[i])
		}
		for _, i := range gb {
			sib.attachChild(entries[i])
		}
		for i := range entries {
			entries[i] = nil
		}
		t.scratch.entries = entries[:0]
		t.scratch.rects = rects[:0]
		return sib
	}
	items := append(t.scratch.items[:0], n.items...)
	n.items = n.items[:0]
	rects := t.scratch.rects[:0]
	for _, it := range items {
		rects = append(rects, it.Rect())
	}
	ga, gb := t.quadraticPartition(rects, t.min)
	for _, i := range ga {
		n.attachItem(items[i])
	}
	for _, i := range gb {
		sib.attachItem(items[i])
	}
	for i := range items {
		items[i] = nil
	}
	t.scratch.items = items[:0]
	t.scratch.rects = rects[:0]
	return sib
}

// quadraticPartition splits the index set {0..len(rects)-1} into two groups
// of at least minFill entries each, following Guttman's quadratic method:
// seed the groups with the pair wasting the most area when joined, then
// repeatedly assign the entry with the greatest preference difference to the
// group whose MBB it enlarges least. The returned index slices alias the
// tree's scratch buffers and are valid until the next split.
func (t *Tree) quadraticPartition(rects []geom.Rect, minFill int) (groupA, groupB []int) {
	nEntries := len(rects)
	seedA, seedB := pickSeeds(rects)
	groupA = append(t.scratch.groupA[:0], seedA)
	groupB = append(t.scratch.groupB[:0], seedB)
	mbbA, mbbB := t.scratch.mbbA, t.scratch.mbbB
	copy(mbbA.Min, rects[seedA].Min)
	copy(mbbA.Max, rects[seedA].Max)
	copy(mbbB.Min, rects[seedB].Min)
	copy(mbbB.Max, rects[seedB].Max)

	assigned := t.scratch.assigned[:0]
	for i := 0; i < nEntries; i++ {
		assigned = append(assigned, false)
	}
	assigned[seedA], assigned[seedB] = true, true
	remaining := nEntries - 2

	for remaining > 0 {
		// Force-assign when one group must take everything left to reach
		// the minimum fill.
		if len(groupA)+remaining == minFill {
			for i := 0; i < nEntries; i++ {
				if !assigned[i] {
					groupA = append(groupA, i)
					assigned[i] = true
				}
			}
			break
		}
		if len(groupB)+remaining == minFill {
			for i := 0; i < nEntries; i++ {
				if !assigned[i] {
					groupB = append(groupB, i)
					assigned[i] = true
				}
			}
			break
		}
		// PickNext: entry with the greatest |d1 − d2|.
		next, bestDiff := -1, -1.0
		var nextDA, nextDB float64
		for i := 0; i < nEntries; i++ {
			if assigned[i] {
				continue
			}
			dA := mbbA.Enlargement(rects[i])
			dB := mbbB.Enlargement(rects[i])
			diff := math.Abs(dA - dB)
			if diff > bestDiff {
				next, bestDiff = i, diff
				nextDA, nextDB = dA, dB
			}
		}
		assigned[next] = true
		remaining--
		toA := nextDA < nextDB
		if nextDA == nextDB {
			switch {
			case mbbA.Area() < mbbB.Area():
				toA = true
			case mbbA.Area() > mbbB.Area():
				toA = false
			default:
				toA = len(groupA) <= len(groupB)
			}
		}
		if toA {
			groupA = append(groupA, next)
			mbbA.ExtendRect(rects[next])
		} else {
			groupB = append(groupB, next)
			mbbB.ExtendRect(rects[next])
		}
	}
	t.scratch.groupA = groupA
	t.scratch.groupB = groupB
	t.scratch.assigned = assigned
	return groupA, groupB
}

// pickSeeds returns the pair of entries whose combined MBB wastes the most
// area.
func pickSeeds(rects []geom.Rect) (int, int) {
	bestA, bestB := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			d := geom.UnionArea(rects[i], rects[j]) - rects[i].Area() - rects[j].Area()
			if d > worst {
				worst = d
				bestA, bestB = i, j
			}
		}
	}
	return bestA, bestB
}
