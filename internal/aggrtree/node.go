package aggrtree

import (
	"fmt"

	"pskyline/internal/geom"
	"pskyline/internal/prob"
)

// Node is an entry of an aggregate R-tree: an internal entry with child
// entries, or a leaf entry with items. Exported accessors expose the
// aggregate information of Section IV-A; mutation happens through the Tree
// and the lazy-multiplier methods so aggregates stay consistent.
type Node struct {
	parent *Node
	level  int // 0 = leaf
	rect   geom.Rect

	children []*Node // level > 0
	items    []*Item // level == 0

	count int         // elements in the subtree
	pnoc  prob.Factor // Π (1 − P(e)) over the subtree

	// Lazy multipliers. lazyNew multiplies Pnew (and therefore Psky) of
	// every element below; lazyOld divides Pold (and therefore multiplies
	// Psky) of every element below. They correspond to P_new^global and
	// P_old^global in the paper.
	lazyNew prob.Factor
	lazyOld prob.Factor

	// Aggregates over the subtree excluding this node's own lazy
	// multipliers (but including all lazies strictly below).
	pskyMin, pskyMax prob.Factor
	pnewMin, pnewMax prob.Factor

	// Leaf coordinate block (block.go): packed SoA mirror of the items'
	// coordinates, blk[d*blkStride+i] = items[i].Point[d]. Storage is
	// retained across pool recycling.
	blk       []float64
	blkStride int

	// freed marks a node currently sitting in a NodePool freelist. Attach
	// operations and CheckInvariants reject freed nodes so a stale pointer
	// into recycled memory fails loudly instead of corrupting aggregates.
	freed bool
}

func newNode(dims, level int) *Node {
	return &Node{
		level:   level,
		rect:    geom.EmptyRect(dims),
		pnoc:    prob.One(),
		lazyNew: prob.One(),
		lazyOld: prob.One(),
		pskyMin: prob.One(),
		pskyMax: prob.One(),
		pnewMin: prob.One(),
		pnewMax: prob.One(),
	}
}

// Level returns the node's height above the leaves (0 for leaves).
func (n *Node) Level() int { return n.level }

// IsLeaf reports whether the node stores items directly.
func (n *Node) IsLeaf() bool { return n.level == 0 }

// Parent returns the parent entry, or nil at the root.
func (n *Node) Parent() *Node { return n.parent }

// Rect returns the node's minimum bounding box. The caller must not mutate
// it.
func (n *Node) Rect() geom.Rect { return n.rect }

// Count returns the number of elements in the subtree.
func (n *Node) Count() int { return n.count }

// Pnoc returns Π (1 − P(e)) over the subtree.
func (n *Node) Pnoc() prob.Factor { return n.pnoc }

// Children returns the child entries of an internal node. The caller must
// not mutate the slice.
func (n *Node) Children() []*Node { return n.children }

// Items returns the items of a leaf node. The caller must not mutate the
// slice.
func (n *Node) Items() []*Item { return n.items }

// LazyNew returns the pending Pnew multiplier at this entry.
func (n *Node) LazyNew() prob.Factor { return n.lazyNew }

// LazyOld returns the pending Pold divisor at this entry.
func (n *Node) LazyOld() prob.Factor { return n.lazyOld }

// EffPskyMin returns the subtree's minimum skyline probability including
// this node's lazy multipliers (the exact value the paper's CalProb would
// produce).
func (n *Node) EffPskyMin() prob.Factor {
	return n.pskyMin.Times(n.lazyNew).Over(n.lazyOld)
}

// EffPskyMax returns the subtree's maximum skyline probability including
// this node's lazy multipliers.
func (n *Node) EffPskyMax() prob.Factor {
	return n.pskyMax.Times(n.lazyNew).Over(n.lazyOld)
}

// EffPnewMin returns the subtree's minimum Pnew including this node's lazy
// multiplier.
func (n *Node) EffPnewMin() prob.Factor { return n.pnewMin.Times(n.lazyNew) }

// EffPnewMax returns the subtree's maximum Pnew including this node's lazy
// multiplier.
func (n *Node) EffPnewMax() prob.Factor { return n.pnewMax.Times(n.lazyNew) }

// MulLazyNew records that every element under n gained a new dominator with
// non-occurrence probability f: Pnew (and Psky) of all elements below are
// multiplied by f.
//
// The node's effective aggregates change, so the caller must bring ancestor
// aggregates up to date afterwards — either by refreshing on the unwind of
// the traversal that applied the multiplier (the probes do this) or by
// calling Refresh(n.Parent()).
func (n *Node) MulLazyNew(f prob.Factor) {
	n.lazyNew = n.lazyNew.Times(f)
}

// MulLazyOld records that dominators of every element under n with combined
// non-occurrence probability f departed (expired or left the candidate
// set): Pold of all elements below is divided by f, raising Psky. As with
// MulLazyNew, the caller is responsible for refreshing ancestors.
func (n *Node) MulLazyOld(f prob.Factor) {
	n.lazyOld = n.lazyOld.Times(f)
}

// ApplyDeepNew multiplies Pnew of every element under n by f immediately,
// visiting all of them — the eager alternative to MulLazyNew, kept for the
// lazy-vs-eager ablation. Aggregates under n are refreshed; as with
// MulLazyNew the caller refreshes ancestors.
func (n *Node) ApplyDeepNew(f prob.Factor) {
	n.Push()
	if n.level == 0 {
		for _, it := range n.items {
			it.Pnew = it.Pnew.Times(f)
		}
	} else {
		for _, c := range n.children {
			c.ApplyDeepNew(f)
		}
	}
	n.RefreshProbs()
}

// ApplyDeepOld divides Pold of every element under n by f immediately — the
// eager alternative to MulLazyOld.
func (n *Node) ApplyDeepOld(f prob.Factor) {
	n.Push()
	if n.level == 0 {
		for _, it := range n.items {
			it.Pold = it.Pold.Over(f)
		}
	} else {
		for _, c := range n.children {
			c.ApplyDeepOld(f)
		}
	}
	n.RefreshProbs()
}

// Push applies the node's pending lazy multipliers (CalProb) and transfers
// them to its children or items (UpdateOldNew), leaving the node's lazies at
// 1. The node's effective aggregates are unchanged, so ancestors stay
// consistent. Push must be called before descending into a node's children
// whenever the descent will read or mutate them.
func (n *Node) Push() {
	if n.lazyNew.IsOne() && n.lazyOld.IsOne() {
		return
	}
	ln, lo := n.lazyNew, n.lazyOld
	// Fold the lazies into the stored aggregates (CalProb).
	n.pskyMin = n.pskyMin.Times(ln).Over(lo)
	n.pskyMax = n.pskyMax.Times(ln).Over(lo)
	n.pnewMin = n.pnewMin.Times(ln)
	n.pnewMax = n.pnewMax.Times(ln)
	// Hand them to the next level down (UpdateOldNew).
	if n.level > 0 {
		for _, c := range n.children {
			c.lazyNew = c.lazyNew.Times(ln)
			c.lazyOld = c.lazyOld.Times(lo)
		}
	} else {
		for _, it := range n.items {
			it.Pnew = it.Pnew.Times(ln)
			it.Pold = it.Pold.Over(lo)
		}
	}
	n.lazyNew = prob.One()
	n.lazyOld = prob.One()
}

// refresh recomputes the node's rect, count, pnoc and min/max aggregates
// from its children or items. The node's own lazies are untouched (the
// stored aggregates exclude them by definition).
func (n *Node) refresh() {
	n.rect.Reset()
	n.count = 0
	n.pnoc = prob.One()
	first := true
	if n.level > 0 {
		for _, c := range n.children {
			if c.count == 0 {
				continue
			}
			n.rect.ExtendRect(c.rect)
			n.count += c.count
			n.pnoc = n.pnoc.Times(c.pnoc)
			// A child's stored aggregates exclude its own lazies; from
			// this node's viewpoint they must be included.
			sMin := c.pskyMin.Times(c.lazyNew).Over(c.lazyOld)
			sMax := c.pskyMax.Times(c.lazyNew).Over(c.lazyOld)
			nMin := c.pnewMin.Times(c.lazyNew)
			nMax := c.pnewMax.Times(c.lazyNew)
			if first {
				n.pskyMin, n.pskyMax = sMin, sMax
				n.pnewMin, n.pnewMax = nMin, nMax
				first = false
			} else {
				n.pskyMin = prob.Min(n.pskyMin, sMin)
				n.pskyMax = prob.Max(n.pskyMax, sMax)
				n.pnewMin = prob.Min(n.pnewMin, nMin)
				n.pnewMax = prob.Max(n.pnewMax, nMax)
			}
		}
	} else {
		for _, it := range n.items {
			n.rect.ExtendPoint(it.Point)
			n.count++
			n.pnoc = n.pnoc.Times(it.oneMin)
			s := it.Psky()
			if first {
				n.pskyMin, n.pskyMax = s, s
				n.pnewMin, n.pnewMax = it.Pnew, it.Pnew
				first = false
			} else {
				n.pskyMin = prob.Min(n.pskyMin, s)
				n.pskyMax = prob.Max(n.pskyMax, s)
				n.pnewMin = prob.Min(n.pnewMin, it.Pnew)
				n.pnewMax = prob.Max(n.pnewMax, it.Pnew)
			}
		}
	}
	if first { // empty node
		n.pskyMin, n.pskyMax = prob.One(), prob.One()
		n.pnewMin, n.pnewMax = prob.One(), prob.One()
	}
}

// Refresh recomputes this node's aggregates from its direct children or
// items. Callers that mutated item probabilities in a leaf, or child lazies
// below an internal node, use it on the unwind of their traversal.
func (n *Node) Refresh() { n.refresh() }

// RefreshProbs recomputes only the probability aggregates (Psky and Pnew
// min/max). It is the cheap unwind step for traversals that changed
// probabilities but not structure: rect, count and Pnoc are untouched.
func (n *Node) RefreshProbs() {
	first := true
	if n.level > 0 {
		for _, c := range n.children {
			if c.count == 0 {
				continue
			}
			sMin := c.pskyMin.Times(c.lazyNew).Over(c.lazyOld)
			sMax := c.pskyMax.Times(c.lazyNew).Over(c.lazyOld)
			nMin := c.pnewMin.Times(c.lazyNew)
			nMax := c.pnewMax.Times(c.lazyNew)
			if first {
				n.pskyMin, n.pskyMax = sMin, sMax
				n.pnewMin, n.pnewMax = nMin, nMax
				first = false
			} else {
				n.pskyMin = prob.Min(n.pskyMin, sMin)
				n.pskyMax = prob.Max(n.pskyMax, sMax)
				n.pnewMin = prob.Min(n.pnewMin, nMin)
				n.pnewMax = prob.Max(n.pnewMax, nMax)
			}
		}
	} else {
		for _, it := range n.items {
			s := it.Psky()
			if first {
				n.pskyMin, n.pskyMax = s, s
				n.pnewMin, n.pnewMax = it.Pnew, it.Pnew
				first = false
			} else {
				n.pskyMin = prob.Min(n.pskyMin, s)
				n.pskyMax = prob.Max(n.pskyMax, s)
				n.pnewMin = prob.Min(n.pnewMin, it.Pnew)
				n.pnewMax = prob.Max(n.pnewMax, it.Pnew)
			}
		}
	}
	if first {
		n.pskyMin, n.pskyMax = prob.One(), prob.One()
		n.pnewMin, n.pnewMax = prob.One(), prob.One()
	}
}

// refreshUp recomputes aggregates from n upward to the root.
func refreshUp(n *Node) {
	for ; n != nil; n = n.parent {
		n.refresh()
	}
}

// Freed reports whether the node sits in a pool freelist (use-after-free
// diagnostic).
func (n *Node) Freed() bool { return n.freed }

func (n *Node) attachChild(c *Node) {
	if n.freed || c.freed {
		panic("aggrtree: attachChild on freed node")
	}
	c.parent = n
	n.children = append(n.children, c)
}

func (n *Node) detachChild(c *Node) {
	for i, x := range n.children {
		if x == c {
			n.children = append(n.children[:i], n.children[i+1:]...)
			c.parent = nil
			return
		}
	}
	panic("aggrtree: detachChild: not a child")
}

func (n *Node) attachItem(it *Item) {
	if n.freed || it.freed {
		panic("aggrtree: attachItem on freed node or item")
	}
	it.leaf = n
	n.blockAppend(it)
	n.items = append(n.items, it)
}

func (n *Node) detachItem(it *Item) {
	for i, x := range n.items {
		if x == it {
			n.blockRemove(i, len(n.items))
			n.items = append(n.items[:i], n.items[i+1:]...)
			it.leaf = nil
			return
		}
	}
	panic("aggrtree: detachItem: not in leaf")
}

// fanout returns the number of direct entries (children or items).
func (n *Node) fanout() int {
	if n.level > 0 {
		return len(n.children)
	}
	return len(n.items)
}

func (n *Node) String() string {
	return fmt.Sprintf("node{lvl=%d cnt=%d rect=%v..%v}", n.level, n.count, n.rect.Min, n.rect.Max)
}
