// Package aggrtree implements the in-memory aggregate R-trees of Section
// IV-A of the paper.
//
// A tree stores uncertain stream elements (Item) at its leaves. Every entry
// (node) additionally carries the paper's aggregate information:
//
//   - Pnoc(E): Π (1 − P(e)) over the elements rooted at E;
//   - lazy multipliers Pnew_global(E) and Pold_global(E) that record,
//     without visiting descendants, that every element under E gained new
//     dominators (Pnew_global) or lost departed dominators (Pold_global);
//   - Psky_min/max(E) and Pnew_min/max(E), the minimum and maximum skyline
//     and new-dominance probabilities of the elements under E, excluding
//     E's own lazy multipliers.
//
// The skyline engine (internal/core) drives the trees: it classifies entries
// by dominance, multiplies lazies onto fully dominated entries, pushes
// lazies down only along the paths it actually descends, and moves whole
// entries between trees when a subtree changes membership class wholesale.
package aggrtree

import (
	"fmt"

	"pskyline/internal/geom"
	"pskyline/internal/prob"
)

// Item is one uncertain stream element held by an aggregate R-tree. The
// fields Pnew and Pold are the element's current probabilities restricted to
// the candidate set, as maintained by the engine; they are only meaningful
// after the lazy multipliers on the element's root-to-leaf path have been
// pushed down (see Tree.ItemProbs for a read-only view that accounts for
// pending lazies).
type Item struct {
	Point geom.Point // spatial location (smaller is better on every dim)
	P     float64    // occurrence probability, (0, 1]
	Seq   uint64     // arrival position κ(a) in the stream
	TS    int64      // optional timestamp for time-based windows

	// Pnew is Π (1 − P(a')) over candidates a' that dominate the item and
	// arrived after it. By Theorem 2 this equals the unrestricted value.
	Pnew prob.Factor
	// Pold is Π (1 − P(a')) over candidates a' that dominate the item and
	// arrived before it, restricted to the current candidate set.
	Pold prob.Factor

	// Band is the index of the threshold band tree currently holding the
	// item (0 = highest-probability band). Maintained by the engine.
	Band int

	pf     prob.Factor // FromFloat(P), cached
	oneMin prob.Factor // OneMinus(P), cached
	leaf   *Node       // leaf currently containing the item

	// freed marks an item sitting in an ItemPool freelist; attachItem and
	// CheckInvariants reject freed items.
	freed bool
}

// NewItem returns an item with Pnew = Pold = 1 for an element arriving with
// position seq.
func NewItem(pt geom.Point, p float64, seq uint64) *Item {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("aggrtree: occurrence probability %v out of (0,1]", p))
	}
	return &Item{
		Point:  pt,
		P:      p,
		Seq:    seq,
		Pnew:   prob.One(),
		Pold:   prob.One(),
		pf:     prob.FromFloat(p),
		oneMin: prob.OneMinus(p),
	}
}

// Psky returns the item's skyline probability P(a)·Pold(a)·Pnew(a) from its
// stored fields. Like Pnew/Pold it excludes lazy multipliers pending on the
// item's path.
func (it *Item) Psky() prob.Factor {
	return it.pf.Times(it.Pnew).Times(it.Pold)
}

// PF returns FromFloat(P), the item's occurrence probability as a factor.
func (it *Item) PF() prob.Factor { return it.pf }

// OneMinusP returns the cached factor (1 − P).
func (it *Item) OneMinusP() prob.Factor { return it.oneMin }

// Leaf returns the leaf node currently storing the item, or nil if the item
// is not in any tree.
func (it *Item) Leaf() *Node { return it.leaf }

// Freed reports whether the item sits in a pool freelist (use-after-free
// diagnostic).
func (it *Item) Freed() bool { return it.freed }

// Rect returns the degenerate bounding box of the item's point.
func (it *Item) Rect() geom.Rect { return geom.PointRect(it.Point) }

func (it *Item) String() string {
	return fmt.Sprintf("item{seq=%d p=%.3g pt=%v}", it.Seq, it.P, it.Point)
}
