package aggrtree

import (
	"math"
	"math/rand"
	"testing"

	"pskyline/internal/geom"
	"pskyline/internal/prob"
)

func randItem(r *rand.Rand, dims int, seq uint64) *Item {
	pt := make(geom.Point, dims)
	for i := range pt {
		pt[i] = r.Float64()
	}
	it := NewItem(pt, 1-r.Float64(), seq)
	// Random restricted probabilities, occasionally with exact zeros.
	for i, n := 0, r.Intn(4); i < n; i++ {
		it.Pnew = it.Pnew.Times(prob.OneMinus(r.Float64()))
	}
	for i, n := 0, r.Intn(4); i < n; i++ {
		it.Pold = it.Pold.Times(prob.OneMinus(r.Float64()))
	}
	return it
}

func TestEmptyTree(t *testing.T) {
	tr := New(2, Config{})
	if tr.Size() != 0 || tr.Root() == nil || !tr.Root().IsLeaf() {
		t.Fatal("empty tree malformed")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	visited := 0
	tr.WalkItems(func(*Item, prob.Factor, prob.Factor) bool { visited++; return true })
	if visited != 0 {
		t.Fatal("walk of empty tree visited items")
	}
}

func TestInsertDeleteFuzz(t *testing.T) {
	for _, dims := range []int{1, 2, 3, 5} {
		r := rand.New(rand.NewSource(int64(dims)))
		tr := New(dims, Config{MaxEntries: 5})
		var live []*Item
		seq := uint64(0)
		for step := 0; step < 3000; step++ {
			if len(live) == 0 || r.Float64() < 0.6 {
				it := randItem(r, dims, seq)
				seq++
				tr.InsertItem(it)
				live = append(live, it)
			} else {
				i := r.Intn(len(live))
				tr.DeleteItem(live[i])
				live = append(live[:i], live[i+1:]...)
			}
			if step%101 == 0 {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("dims=%d step %d: %v", dims, step, err)
				}
				if tr.Size() != len(live) {
					t.Fatalf("dims=%d step %d: size %d != %d", dims, step, tr.Size(), len(live))
				}
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		// Every live item must be reachable with its exact values.
		seen := map[uint64]bool{}
		tr.WalkItems(func(it *Item, pnew, pold prob.Factor) bool {
			seen[it.Seq] = true
			return true
		})
		for _, it := range live {
			if !seen[it.Seq] {
				t.Fatalf("item %d lost", it.Seq)
			}
		}
	}
}

// TestLazySemantics — lazy multipliers applied at entries must be exactly
// equivalent to mutating every item below: Walk, Probs and Push must all
// agree.
func TestLazySemantics(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tr := New(2, Config{MaxEntries: 4})
	items := make([]*Item, 60)
	for i := range items {
		items[i] = randItem(r, 2, uint64(i))
		tr.InsertItem(items[i])
	}
	// Record current exact values.
	type pv struct{ pnew, pold prob.Factor }
	want := map[uint64]pv{}
	for _, it := range items {
		pnew, pold := Probs(it)
		want[it.Seq] = pv{pnew, pold}
	}
	// Apply lazies at an internal entry covering several items.
	root := tr.Root()
	if root.IsLeaf() {
		t.Fatal("tree too small for the test")
	}
	target := root.Children()[0]
	fNew := prob.OneMinus(0.25)
	fOld := prob.OneMinus(0.5)
	target.MulLazyNew(fNew)
	target.MulLazyOld(fOld)
	RefreshProbsPath(target.Parent())
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Collect the affected seqs.
	affected := map[uint64]bool{}
	var collect func(n *Node)
	collect = func(n *Node) {
		for _, it := range n.Items() {
			affected[it.Seq] = true
		}
		for _, c := range n.Children() {
			collect(c)
		}
	}
	collect(target)
	if len(affected) == 0 {
		t.Fatal("no items under target")
	}
	check := func(stage string) {
		tr.WalkItems(func(it *Item, pnew, pold prob.Factor) bool {
			w := want[it.Seq]
			if affected[it.Seq] {
				w.pnew = w.pnew.Times(fNew)
				w.pold = w.pold.Over(fOld)
			}
			if !pnew.ApproxEqual(w.pnew, 1e-9) || !pold.ApproxEqual(w.pold, 1e-9) {
				t.Fatalf("%s: item %d: got (%v,%v), want (%v,%v)",
					stage, it.Seq, pnew, pold, w.pnew, w.pold)
			}
			return true
		})
	}
	check("lazy pending")
	// Push must not change the observable values.
	target.Push()
	RefreshProbsPath(target)
	check("after push")
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Probs on a specific item agrees with Walk.
	for _, it := range items[:10] {
		pnew, pold := Probs(it)
		w := want[it.Seq]
		if affected[it.Seq] {
			w.pnew = w.pnew.Times(fNew)
			w.pold = w.pold.Over(fOld)
		}
		if !pnew.ApproxEqual(w.pnew, 1e-9) || !pold.ApproxEqual(w.pold, 1e-9) {
			t.Fatalf("Probs(%d) mismatch", it.Seq)
		}
	}
}

// TestRemoveInsertEntry — grafting a subtree between trees preserves every
// item with its exact values, including pending lazies on the path.
func TestRemoveInsertEntry(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := New(3, Config{MaxEntries: 4})
	b := New(3, Config{MaxEntries: 4})
	items := make([]*Item, 120)
	for i := range items {
		items[i] = randItem(r, 3, uint64(i))
		a.InsertItem(items[i])
	}
	// Put a lazy on the root so the graft has to carry it.
	f := prob.OneMinus(0.3)
	a.Root().MulLazyNew(f)
	want := map[uint64][2]prob.Factor{}
	a.WalkItems(func(it *Item, pnew, pold prob.Factor) bool {
		want[it.Seq] = [2]prob.Factor{pnew, pold}
		return true
	})

	// Move random subtrees from a to b until a drains.
	moved := 0
	for a.Size() > 0 {
		n := a.Root()
		for !n.IsLeaf() && r.Float64() < 0.7 {
			n = n.Children()[r.Intn(len(n.Children()))]
		}
		cnt := n.Count()
		e := a.RemoveEntry(n)
		b.InsertEntry(e)
		moved += cnt
		if err := a.CheckInvariants(); err != nil {
			t.Fatalf("a after move: %v", err)
		}
		if err := b.CheckInvariants(); err != nil {
			t.Fatalf("b after move: %v", err)
		}
	}
	if b.Size() != len(items) || moved != len(items) {
		t.Fatalf("b has %d items, moved %d, want %d", b.Size(), moved, len(items))
	}
	b.WalkItems(func(it *Item, pnew, pold prob.Factor) bool {
		w := want[it.Seq]
		if !pnew.ApproxEqual(w[0], 1e-9) || !pold.ApproxEqual(w[1], 1e-9) {
			t.Fatalf("item %d changed during graft: got (%v,%v) want (%v,%v)",
				it.Seq, pnew, pold, w[0], w[1])
		}
		return true
	})
}

func TestItemValidation(t *testing.T) {
	for _, p := range []float64{0, -0.5, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewItem(p=%v) did not panic", p)
				}
			}()
			NewItem(geom.Point{1, 2}, p, 0)
		}()
	}
}

func TestQuadraticPartitionRespectsMinFill(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for iter := 0; iter < 500; iter++ {
		n := 5 + r.Intn(20)
		minFill := 1 + r.Intn(n/2)
		rects := make([]geom.Rect, n)
		for i := range rects {
			pt := geom.Point{r.Float64(), r.Float64()}
			rects[i] = geom.PointRect(pt)
		}
		tr := New(2, Config{})
		ga, gb := tr.quadraticPartition(rects, minFill)
		if len(ga)+len(gb) != n {
			t.Fatalf("partition lost entries: %d + %d != %d", len(ga), len(gb), n)
		}
		if len(ga) < minFill || len(gb) < minFill {
			t.Fatalf("min fill violated: %d / %d (min %d)", len(ga), len(gb), minFill)
		}
		seen := map[int]bool{}
		for _, i := range append(append([]int{}, ga...), gb...) {
			if seen[i] {
				t.Fatalf("entry %d assigned twice", i)
			}
			seen[i] = true
		}
	}
}

func TestRefreshProbsMatchesRefresh(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	tr := New(2, Config{MaxEntries: 6})
	for i := 0; i < 200; i++ {
		tr.InsertItem(randItem(r, 2, uint64(i)))
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		full := *n
		full.refresh()
		var light Node
		light = *n
		light.RefreshProbs()
		if !full.pskyMin.ApproxEqual(light.pskyMin, 1e-12) ||
			!full.pskyMax.ApproxEqual(light.pskyMax, 1e-12) ||
			!full.pnewMin.ApproxEqual(light.pnewMin, 1e-12) ||
			!full.pnewMax.ApproxEqual(light.pnewMax, 1e-12) {
			t.Fatalf("RefreshProbs diverges from refresh at level %d", n.level)
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(tr.Root())
}

func TestConfigValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, Config{}) },
		func() { New(2, Config{MaxEntries: 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTreeString(t *testing.T) {
	tr := New(2, Config{})
	if tr.String() == "" || tr.NumNodes() != 1 || tr.Dims() != 2 {
		t.Fatal("diagnostics broken")
	}
	it := NewItem(geom.Point{1, 2}, 0.5, 0)
	if it.String() == "" || tr.Root().String() == "" {
		t.Fatal("String methods broken")
	}
}

// TestApplyDeepMatchesLazy — the eager deep application must be
// observationally identical to a lazy multiplier followed by full pushes.
func TestApplyDeepMatchesLazy(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	mk := func() (*Tree, []*Item) {
		tr := New(2, Config{MaxEntries: 4})
		items := make([]*Item, 80)
		for i := range items {
			items[i] = randItem(r, 2, uint64(i))
		}
		return tr, items
	}
	trA, itemsA := mk()
	r = rand.New(rand.NewSource(23))
	trB, itemsB := mk()
	for i := range itemsA {
		trA.InsertItem(itemsA[i])
		trB.InsertItem(itemsB[i])
	}
	fNew := prob.OneMinus(0.4)
	fOld := prob.OneMinus(0.7)
	a := trA.Root()
	b := trB.Root()
	a.MulLazyNew(fNew)
	a.MulLazyOld(fOld)
	b.ApplyDeepNew(fNew)
	b.ApplyDeepOld(fOld)
	if err := trB.CheckInvariants(); err != nil {
		t.Fatalf("deep-applied tree: %v", err)
	}
	for i := range itemsA {
		pnA, poA := Probs(itemsA[i])
		pnB, poB := Probs(itemsB[i])
		if !pnA.ApproxEqual(pnB, 1e-9) || !poA.ApproxEqual(poB, 1e-9) {
			t.Fatalf("item %d: lazy (%v,%v) vs deep (%v,%v)", i, pnA, poA, pnB, poB)
		}
		if !trA.ItemPsky(itemsA[i]).ApproxEqual(trB.ItemPsky(itemsB[i]), 1e-9) {
			t.Fatalf("item %d: psky mismatch", i)
		}
		pn, po := trA.ItemProbs(itemsA[i])
		if !pn.ApproxEqual(pnA, 1e-12) || !po.ApproxEqual(poA, 1e-12) {
			t.Fatal("Tree.ItemProbs disagrees with Probs")
		}
	}
	// Effective bounds must agree between the two representations.
	if !a.EffPskyMin().ApproxEqual(b.EffPskyMin(), 1e-9) ||
		!a.EffPskyMax().ApproxEqual(b.EffPskyMax(), 1e-9) ||
		!a.EffPnewMin().ApproxEqual(b.EffPnewMin(), 1e-9) ||
		!a.EffPnewMax().ApproxEqual(b.EffPnewMax(), 1e-9) {
		t.Fatal("effective aggregate bounds diverge")
	}
}

func TestWalkEarlyStop(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	tr := New(2, Config{MaxEntries: 4})
	for i := 0; i < 60; i++ {
		tr.InsertItem(randItem(r, 2, uint64(i)))
	}
	n := 0
	completed := tr.WalkItems(func(*Item, prob.Factor, prob.Factor) bool {
		n++
		return n < 5
	})
	if completed || n != 5 {
		t.Fatalf("early stop: completed=%v n=%d", completed, n)
	}
}

func TestRefreshFromAfterDirectMutation(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	tr := New(2, Config{MaxEntries: 4})
	var items []*Item
	for i := 0; i < 40; i++ {
		it := randItem(r, 2, uint64(i))
		items = append(items, it)
		tr.InsertItem(it)
	}
	it := items[7]
	it.Pnew = it.Pnew.Times(prob.OneMinus(0.9))
	tr.RefreshFrom(it.Leaf())
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("after RefreshFrom: %v", err)
	}
}
