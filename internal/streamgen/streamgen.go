// Package streamgen generates the uncertain data streams of the paper's
// evaluation (Section V): synthetic spatial distributions following the
// methodology of Börzsönyi et al. (independent, correlated, anti-correlated)
// combined with uniform or normal occurrence-probability models, plus a
// synthetic stock-trade stream standing in for the proprietary NYSE trace.
//
// All generators are deterministic for a given seed.
package streamgen

import (
	"fmt"
	"math/rand"

	"pskyline/internal/geom"
)

// Element is one generated stream element.
type Element struct {
	Point geom.Point
	P     float64
	TS    int64
}

// Stream produces an unbounded sequence of elements.
type Stream interface {
	Next() Element
}

// Distribution selects the spatial distribution of synthetic points.
type Distribution int

const (
	// Independent draws every coordinate uniformly and independently from
	// [0, 1).
	Independent Distribution = iota
	// Correlated draws points close to the main diagonal: an element good
	// in one dimension tends to be good in all.
	Correlated
	// Anticorrelated draws points close to the anti-diagonal hyperplane
	// Σx ≈ const: an element good in one dimension tends to be bad in the
	// others. This maximizes skyline sizes and is the paper's most
	// challenging distribution.
	Anticorrelated
	// Clustered draws points from a handful of Gaussian clusters with
	// uniformly placed centers — the lumpy distribution common in skyline
	// evaluations, stressing MBB overlap in the index.
	Clustered
)

func (d Distribution) String() string {
	switch d {
	case Independent:
		return "inde"
	case Correlated:
		return "corr"
	case Anticorrelated:
		return "anti"
	case Clustered:
		return "clus"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// ProbModel samples occurrence probabilities.
type ProbModel interface {
	Sample(r *rand.Rand) float64
	String() string
}

// UniformProb draws probabilities uniformly from (0, 1], the paper's
// default model.
type UniformProb struct{}

// Sample implements ProbModel.
func (UniformProb) Sample(r *rand.Rand) float64 { return 1 - r.Float64() }

func (UniformProb) String() string { return "uniform" }

// NormalProb draws probabilities from N(Mu, Sd) clamped into (0, 1]; the
// paper varies Mu from 0.1 to 0.9 with Sd = 0.3.
type NormalProb struct {
	Mu float64
	Sd float64
}

// Sample implements ProbModel.
func (n NormalProb) Sample(r *rand.Rand) float64 {
	sd := n.Sd
	if sd == 0 {
		sd = 0.3
	}
	p := r.NormFloat64()*sd + n.Mu
	if p < 1e-3 {
		p = 1e-3
	}
	if p > 1 {
		p = 1
	}
	return p
}

func (n NormalProb) String() string { return fmt.Sprintf("normal(%.2g)", n.Mu) }

// ConstProb always returns P.
type ConstProb struct{ P float64 }

// Sample implements ProbModel.
func (c ConstProb) Sample(r *rand.Rand) float64 { return c.P }

func (c ConstProb) String() string { return fmt.Sprintf("const(%.2g)", c.P) }

// Gen generates synthetic spatial elements.
type Gen struct {
	r        *rand.Rand
	dims     int
	dist     Distribution
	prob     ProbModel
	ts       int64
	clusters []geom.Point
}

// New returns a synthetic stream of dims-dimensional elements.
func New(dims int, dist Distribution, pm ProbModel, seed int64) *Gen {
	if dims < 1 {
		panic("streamgen: dims must be >= 1")
	}
	if pm == nil {
		pm = UniformProb{}
	}
	g := &Gen{r: rand.New(rand.NewSource(seed)), dims: dims, dist: dist, prob: pm}
	if dist == Clustered {
		g.clusters = make([]geom.Point, 5)
		for i := range g.clusters {
			c := make(geom.Point, dims)
			for j := range c {
				c[j] = 0.15 + 0.7*g.r.Float64()
			}
			g.clusters[i] = c
		}
	}
	return g
}

// Next implements Stream. Timestamps advance by one per element.
func (g *Gen) Next() Element {
	g.ts++
	return Element{Point: g.point(), P: g.prob.Sample(g.r), TS: g.ts}
}

func (g *Gen) point() geom.Point {
	p := make(geom.Point, g.dims)
	switch g.dist {
	case Independent:
		for i := range p {
			p[i] = g.r.Float64()
		}
	case Correlated:
		// A common "goodness" level plus small independent noise keeps all
		// coordinates close to the diagonal.
		v := clamp01(g.r.NormFloat64()*0.25 + 0.5)
		for i := range p {
			p[i] = clamp01(v + g.r.NormFloat64()*0.05)
		}
	case Clustered:
		c := g.clusters[g.r.Intn(len(g.clusters))]
		for i := range p {
			p[i] = clamp01(c[i] + g.r.NormFloat64()*0.05)
		}
	case Anticorrelated:
		// Start on the plane Σx = d·v and shift mass pairwise between
		// dimensions, preserving the sum: coordinates become negatively
		// correlated while the point stays near the anti-diagonal. The
		// plane level v is kept tight around 0.5 (between-plane variance
		// creates dominance; within-plane spread prevents it) and several
		// rounds of full-range shifts spread the point inside the plane.
		v := clamp01(g.r.NormFloat64()*0.08 + 0.5)
		for i := range p {
			p[i] = v
		}
		for round := 0; round < 3*g.dims; round++ {
			i := g.r.Intn(g.dims)
			j := g.r.Intn(g.dims)
			if i == j {
				continue
			}
			// The shift keeps both coordinates inside [0, 1].
			lo := max64(-p[i], p[j]-1)
			hi := min64(1-p[i], p[j])
			d := lo + g.r.Float64()*(hi-lo)
			p[i] += d
			p[j] -= d
		}
	}
	return p
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
