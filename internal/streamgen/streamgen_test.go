package streamgen

import (
	"math"
	"testing"
)

func TestClusteredShape(t *testing.T) {
	g := New(2, Clustered, UniformProb{}, 5)
	// Points must concentrate near a handful of centers: the average
	// distance to the nearest of the generator's own cluster centers is
	// tiny compared to uniform data.
	centers := g.clusters
	if len(centers) == 0 {
		t.Fatal("no clusters initialized")
	}
	sum := 0.0
	const n = 4000
	for i := 0; i < n; i++ {
		p := g.Next().Point
		best := math.Inf(1)
		for _, c := range centers {
			d := 0.0
			for j := range p {
				d += (p[j] - c[j]) * (p[j] - c[j])
			}
			if d < best {
				best = d
			}
		}
		sum += math.Sqrt(best)
	}
	if mean := sum / n; mean > 0.12 {
		t.Fatalf("mean distance to nearest center %.3f, want clustered", mean)
	}
	if Clustered.String() != "clus" {
		t.Fatal("Clustered.String wrong")
	}
}

func TestDeterminism(t *testing.T) {
	for _, dist := range []Distribution{Independent, Correlated, Anticorrelated, Clustered} {
		a := New(3, dist, UniformProb{}, 42)
		b := New(3, dist, UniformProb{}, 42)
		for i := 0; i < 100; i++ {
			x, y := a.Next(), b.Next()
			if !x.Point.Equal(y.Point) || x.P != y.P || x.TS != y.TS {
				t.Fatalf("%v: generation not deterministic at %d", dist, i)
			}
		}
	}
	s1, s2 := NewStock(UniformProb{}, 7), NewStock(UniformProb{}, 7)
	for i := 0; i < 100; i++ {
		x, y := s1.Next(), s2.Next()
		if !x.Point.Equal(y.Point) || x.P != y.P {
			t.Fatalf("stock generation not deterministic at %d", i)
		}
	}
}

func TestRangesAndValidity(t *testing.T) {
	for _, dist := range []Distribution{Independent, Correlated, Anticorrelated, Clustered} {
		g := New(4, dist, UniformProb{}, 1)
		for i := 0; i < 5000; i++ {
			el := g.Next()
			if len(el.Point) != 4 {
				t.Fatalf("%v: dims %d", dist, len(el.Point))
			}
			for _, v := range el.Point {
				if v < 0 || v > 1 || math.IsNaN(v) {
					t.Fatalf("%v: coordinate %v out of [0,1]", dist, v)
				}
			}
			if el.P <= 0 || el.P > 1 {
				t.Fatalf("%v: probability %v out of (0,1]", dist, el.P)
			}
		}
	}
}

func correlation(g *Gen, n int) float64 {
	var sx, sy, sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		p := g.Next().Point
		x, y := p[0], p[1]
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	fn := float64(n)
	cov := sxy/fn - (sx/fn)*(sy/fn)
	vx := sxx/fn - (sx/fn)*(sx/fn)
	vy := syy/fn - (sy/fn)*(sy/fn)
	return cov / math.Sqrt(vx*vy)
}

// TestCorrelationSigns — the distributions must actually be (anti-)
// correlated: strongly positive for Correlated, clearly negative for
// Anticorrelated, near zero for Independent.
func TestCorrelationSigns(t *testing.T) {
	const n = 20000
	if c := correlation(New(2, Correlated, UniformProb{}, 1), n); c < 0.7 {
		t.Errorf("correlated data has correlation %.3f, want > 0.7", c)
	}
	if c := correlation(New(2, Anticorrelated, UniformProb{}, 1), n); c > -0.3 {
		t.Errorf("anti-correlated data has correlation %.3f, want < -0.3", c)
	}
	if c := correlation(New(2, Independent, UniformProb{}, 1), n); math.Abs(c) > 0.05 {
		t.Errorf("independent data has correlation %.3f, want ~0", c)
	}
}

func TestProbModels(t *testing.T) {
	g := New(1, Independent, NormalProb{Mu: 0.5, Sd: 0.3}, 3)
	sum, n := 0.0, 20000
	for i := 0; i < n; i++ {
		p := g.Next().P
		if p <= 0 || p > 1 {
			t.Fatalf("normal probability %v out of range", p)
		}
		sum += p
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.03 {
		t.Errorf("normal(0.5) sample mean %.3f", mean)
	}

	c := New(1, Independent, ConstProb{P: 0.8}, 1)
	for i := 0; i < 10; i++ {
		if c.Next().P != 0.8 {
			t.Fatal("const model not constant")
		}
	}

	// Extreme means stay clamped inside (0, 1].
	lo := New(1, Independent, NormalProb{Mu: 0.05, Sd: 0.3}, 1)
	for i := 0; i < 5000; i++ {
		if p := lo.Next().P; p <= 0 || p > 1 {
			t.Fatalf("clamped normal out of range: %v", p)
		}
	}
}

func TestStockShape(t *testing.T) {
	s := NewStock(UniformProb{}, 1)
	lastTS := int64(0)
	minP, maxP := math.Inf(1), math.Inf(-1)
	for i := 0; i < 20000; i++ {
		el := s.Next()
		if len(el.Point) != 2 {
			t.Fatal("stock stream is not 2-d")
		}
		price, negVol := el.Point[0], el.Point[1]
		if price <= 0 {
			t.Fatalf("price %v", price)
		}
		if negVol >= 0 {
			t.Fatalf("volume dimension must be negated, got %v", negVol)
		}
		if el.TS <= lastTS {
			t.Fatalf("timestamps must strictly increase: %d after %d", el.TS, lastTS)
		}
		lastTS = el.TS
		minP = math.Min(minP, price)
		maxP = math.Max(maxP, price)
	}
	if minP < 5 || maxP > 150 {
		t.Errorf("price wandered out of a plausible band: [%v, %v]", minP, maxP)
	}
	if maxP/minP < 1.01 {
		t.Error("price never moved")
	}
}

func TestDistributionString(t *testing.T) {
	if Independent.String() != "inde" || Correlated.String() != "corr" || Anticorrelated.String() != "anti" {
		t.Fatal("Distribution.String wrong")
	}
	if (UniformProb{}).String() != "uniform" {
		t.Fatal("UniformProb.String wrong")
	}
}
