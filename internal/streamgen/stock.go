package streamgen

import (
	"math"
	"math/rand"
)

// Stock simulates the paper's NYSE trade stream (2M Dell Inc. transactions,
// Dec 2000 – May 2001) as a 2-dimensional uncertain stream: per-share price
// follows a geometric random walk with intraday mean reversion, volume is
// log-normal with occasional block trades, and occurrence probabilities are
// assigned by a ProbModel exactly as the paper assigns them to the real
// trace (uniform by default).
//
// A deal dominates another when it is cheaper per share and larger in
// volume, so the skyline dimensions are (price, −volume): smaller is better
// on both. The substitution preserves what the experiments exercise — a 2-d
// stream whose good corners are few and drift over time.
type Stock struct {
	r      *rand.Rand
	prob   ProbModel
	price  float64 // current per-share price in dollars
	anchor float64 // slow-moving reference for mean reversion
	ts     int64   // trade time in milliseconds
}

// NewStock returns a stock-trade stream.
func NewStock(pm ProbModel, seed int64) *Stock {
	if pm == nil {
		pm = UniformProb{}
	}
	return &Stock{
		r:      rand.New(rand.NewSource(seed)),
		prob:   pm,
		price:  25.0, // Dell traded in the $17–$30 band over that period
		anchor: 25.0,
	}
}

// Next implements Stream.
func (s *Stock) Next() Element {
	// Geometric random walk with a pull toward the slow anchor; the anchor
	// itself drifts to create multi-day trends.
	s.anchor *= math.Exp(s.r.NormFloat64() * 0.0004)
	rev := 0.01 * math.Log(s.anchor/s.price)
	s.price *= math.Exp(s.r.NormFloat64()*0.002 + rev)

	// Log-normal volume in shares; ~2% of trades are large blocks.
	vol := math.Exp(s.r.NormFloat64()*1.1 + math.Log(800))
	if s.r.Float64() < 0.02 {
		vol *= 20 + 80*s.r.Float64()
	}
	volume := math.Ceil(vol)

	// Trades arrive every few hundred milliseconds.
	s.ts += int64(50 + s.r.Intn(900))

	// Smaller is better on both skyline dimensions: price as-is, volume
	// negated.
	return Element{
		Point: []float64{s.price, -volume},
		P:     s.prob.Sample(s.r),
		TS:    s.ts,
	}
}
