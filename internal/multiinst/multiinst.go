// Package multiinst implements the Section VI extension "Object with
// Multiple Elements": a sliding window over uncertain objects, each
// consisting of a discrete set of weighted instances (the model of Pei et
// al., VLDB 2007). Objects are atomic — all instances of an object arrive
// and expire together — and the skyline probability of an object U over a
// window W is
//
//	Psky(U) = Σ_{u ∈ U} w(u) · Π_{V ∈ W, V ≠ U} (1 − Σ_{v ∈ V, v ≺ u} w(v))
//
// The single-element model of the main paper is the special case of one
// instance with weight P(a): the missing weight (1 − P) acts as a virtual
// never-dominating, never-appearing instance, and the formula reduces to
// Equation (1). Instance weights of an object must therefore sum to at most
// 1. Continuous uncertainty regions are handled by Monte-Carlo
// discretization (Section VI's suggestion), see Discretize.
package multiinst

import (
	"fmt"
	"math/rand"
	"sort"

	"pskyline/internal/geom"
)

// Instance is one weighted location of an uncertain object.
type Instance struct {
	Point geom.Point
	W     float64
}

// Object is an uncertain object with discrete instances. The instance
// weights must be positive and sum to at most 1.
type Object struct {
	ID        uint64
	Instances []Instance

	mbb geom.Rect
}

// NewObject validates and returns an object.
func NewObject(id uint64, instances []Instance) (*Object, error) {
	if len(instances) == 0 {
		return nil, fmt.Errorf("multiinst: object %d has no instances", id)
	}
	sum := 0.0
	dims := len(instances[0].Point)
	mbb := geom.EmptyRect(dims)
	for _, in := range instances {
		if in.W <= 0 {
			return nil, fmt.Errorf("multiinst: object %d has non-positive instance weight %v", id, in.W)
		}
		if len(in.Point) != dims {
			return nil, fmt.Errorf("multiinst: object %d mixes dimensionalities", id)
		}
		sum += in.W
		mbb.ExtendPoint(in.Point)
	}
	if sum > 1+1e-9 {
		return nil, fmt.Errorf("multiinst: object %d instance weights sum to %v > 1", id, sum)
	}
	return &Object{ID: id, Instances: instances, mbb: mbb}, nil
}

// MBB returns the object's instance bounding box.
func (o *Object) MBB() geom.Rect { return o.mbb }

// Discretize converts a continuous uncertainty region into a discrete
// object by Monte-Carlo sampling: m samples from the caller's sampler, each
// with weight exist/m (exist is the object's occurrence probability, use 1
// for always-present objects).
func Discretize(id uint64, m int, exist float64, seed int64, sample func(*rand.Rand) geom.Point) (*Object, error) {
	if m <= 0 {
		return nil, fmt.Errorf("multiinst: sample count %d must be positive", m)
	}
	if exist <= 0 || exist > 1 {
		return nil, fmt.Errorf("multiinst: existence probability %v out of (0,1]", exist)
	}
	r := rand.New(rand.NewSource(seed))
	ins := make([]Instance, m)
	w := exist / float64(m)
	for i := range ins {
		ins[i] = Instance{Point: sample(r), W: w}
	}
	return NewObject(id, ins)
}

// Result is an object-level skyline answer.
type Result struct {
	ID   uint64
	Psky float64
}

// Window is a count-based sliding window of uncertain objects. It keeps the
// whole window (the paper's candidate-set pruning applies unchanged in
// principle, but the object model is presented here as the correctness
// extension, computed with MBB-level pruning rather than incremental
// trees).
type Window struct {
	n    int
	objs []*Object
}

// NewWindow returns a window keeping the n most recent objects (n = 0 keeps
// everything).
func NewWindow(n int) *Window { return &Window{n: n} }

// Push appends an object, expiring the oldest if the window is full.
func (w *Window) Push(o *Object) {
	if w.n > 0 && len(w.objs) == w.n {
		w.objs = w.objs[1:]
	}
	w.objs = append(w.objs, o)
}

// Len returns the window population.
func (w *Window) Len() int { return len(w.objs) }

// SkylineProb computes the skyline probability of the object at window
// index i. Objects whose MBB cannot dominate any instance of the target are
// skipped without visiting their instances (Theorem 1 at object level).
func (w *Window) SkylineProb(i int) float64 {
	u := w.objs[i]
	total := 0.0
	for _, inst := range u.Instances {
		pr := inst.W
		instR := geom.PointRect(inst.Point)
		for j, v := range w.objs {
			if j == i {
				continue
			}
			if geom.Dominance(v.mbb, instR) == geom.DomNone {
				continue
			}
			domW := 0.0
			for _, vi := range v.Instances {
				if vi.Point.Dominates(inst.Point) {
					domW += vi.W
				}
			}
			pr *= 1 - domW
			if pr == 0 {
				break
			}
		}
		total += pr
	}
	return total
}

// Skyline returns the objects with skyline probability ≥ q, sorted by
// descending probability.
func (w *Window) Skyline(q float64) []Result {
	var out []Result
	for i := range w.objs {
		if p := w.SkylineProb(i); p >= q {
			out = append(out, Result{ID: w.objs[i].ID, Psky: p})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Psky != out[b].Psky {
			return out[a].Psky > out[b].Psky
		}
		return out[a].ID < out[b].ID
	})
	return out
}
