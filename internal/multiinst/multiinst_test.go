package multiinst

import (
	"math"
	"math/rand"
	"testing"

	"pskyline/internal/geom"
	"pskyline/internal/naive"
)

// bruteForce computes object skyline probabilities by enumerating every
// combination of instance choices (including absence) across all objects.
func bruteForce(objs []*Object) map[uint64]float64 {
	out := map[uint64]float64{}
	// choice[i] in [0, len(instances)] where len = absent.
	choice := make([]int, len(objs))
	var rec func(i int, prob float64)
	rec = func(i int, prob float64) {
		if prob == 0 {
			return
		}
		if i == len(objs) {
			for j, o := range objs {
				if choice[j] == len(o.Instances) {
					continue // absent
				}
				pt := o.Instances[choice[j]].Point
				dominated := false
				for k, v := range objs {
					if k == j || choice[k] == len(v.Instances) {
						continue
					}
					if v.Instances[choice[k]].Point.Dominates(pt) {
						dominated = true
						break
					}
				}
				if !dominated {
					out[o.ID] += prob
				}
			}
			return
		}
		o := objs[i]
		rest := 1.0
		for ci, in := range o.Instances {
			choice[i] = ci
			rec(i+1, prob*in.W)
			rest -= in.W
		}
		choice[i] = len(o.Instances)
		rec(i+1, prob*rest)
	}
	rec(0, 1)
	return out
}

func randObject(r *rand.Rand, id uint64, dims int) *Object {
	n := 1 + r.Intn(3)
	ins := make([]Instance, n)
	budget := 1.0
	for i := range ins {
		pt := make(geom.Point, dims)
		for j := range pt {
			pt[j] = float64(r.Intn(6))
		}
		w := budget * (0.2 + 0.7*r.Float64()) / float64(n-i)
		ins[i] = Instance{Point: pt, W: w}
		budget -= w
	}
	o, err := NewObject(id, ins)
	if err != nil {
		panic(err)
	}
	return o
}

func TestSkylineProbAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 50; iter++ {
		dims := 1 + r.Intn(3)
		n := 2 + r.Intn(4)
		w := NewWindow(0)
		var objs []*Object
		for i := 0; i < n; i++ {
			o := randObject(r, uint64(i), dims)
			objs = append(objs, o)
			w.Push(o)
		}
		want := bruteForce(objs)
		for i := range objs {
			got := w.SkylineProb(i)
			if math.Abs(got-want[objs[i].ID]) > 1e-9 {
				t.Fatalf("iter %d obj %d: %v, want %v", iter, i, got, want[objs[i].ID])
			}
		}
	}
}

// TestSingleInstanceReducesToElementModel — one instance with weight P(a)
// reproduces Equation (1) of the main paper (the occurrence-probability
// model is a special case, Section VI).
func TestSingleInstanceReducesToElementModel(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	x := naive.NewExact(0)
	w := NewWindow(0)
	for i := 0; i < 30; i++ {
		pt := geom.Point{float64(r.Intn(8)), float64(r.Intn(8))}
		p := 1 - r.Float64()
		x.Push(pt, p)
		o, err := NewObject(uint64(i), []Instance{{Point: pt, W: p}})
		if err != nil {
			t.Fatal(err)
		}
		w.Push(o)
	}
	for i, pr := range x.All() {
		if got := w.SkylineProb(i); math.Abs(got-pr.Psky.Float()) > 1e-9 {
			t.Fatalf("obj %d: %v, want element-model %v", i, got, pr.Psky.Float())
		}
	}
}

func TestWindowSliding(t *testing.T) {
	w := NewWindow(2)
	mk := func(id uint64, x float64) *Object {
		o, _ := NewObject(id, []Instance{{Point: geom.Point{x, x}, W: 1}})
		return o
	}
	w.Push(mk(0, 1)) // dominates everything later
	w.Push(mk(1, 2))
	if got := w.SkylineProb(1); got != 0 {
		t.Fatalf("dominated object prob = %v", got)
	}
	w.Push(mk(2, 3)) // evicts object 0
	if w.Len() != 2 {
		t.Fatal("window did not slide")
	}
	if got := w.SkylineProb(0); got != 1 { // object 1 now undominated
		t.Fatalf("after expiry prob = %v", got)
	}
	sky := w.Skyline(0.5)
	if len(sky) != 1 || sky[0].ID != 1 {
		t.Fatalf("skyline = %v", sky)
	}
}

func TestObjectValidation(t *testing.T) {
	if _, err := NewObject(1, nil); err == nil {
		t.Error("empty object accepted")
	}
	if _, err := NewObject(1, []Instance{{Point: geom.Point{1}, W: 0}}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewObject(1, []Instance{{Point: geom.Point{1}, W: 0.6}, {Point: geom.Point{2}, W: 0.6}}); err == nil {
		t.Error("overweight object accepted")
	}
	if _, err := NewObject(1, []Instance{{Point: geom.Point{1}, W: 0.5}, {Point: geom.Point{1, 2}, W: 0.2}}); err == nil {
		t.Error("mixed dimensionality accepted")
	}
}

// TestDiscretizeMonteCarlo — a continuous uniform square discretized by
// sampling behaves like its center of mass for dominance against a far
// point, and converges with the sample count.
func TestDiscretizeMonteCarlo(t *testing.T) {
	// Object A: uniform over [0,1]²; object B: fixed point at (0.5, 0.5).
	// B's skyline probability is P(no A instance in [0,0.5]²) ≈ 1 − 0.25.
	a, err := Discretize(0, 4000, 1, 9, func(r *rand.Rand) geom.Point {
		return geom.Point{r.Float64(), r.Float64()}
	})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewObject(1, []Instance{{Point: geom.Point{0.5, 0.5}, W: 1}})
	w := NewWindow(0)
	w.Push(a)
	w.Push(b)
	got := w.SkylineProb(1)
	if math.Abs(got-0.75) > 0.03 {
		t.Fatalf("Monte-Carlo skyline prob = %v, want ≈ 0.75", got)
	}
	// A itself is never fully dominated by the single point.
	if pa := w.SkylineProb(0); pa <= 0.74 || pa > 1 {
		t.Fatalf("region object prob = %v", pa)
	}
	if _, err := Discretize(2, 0, 1, 1, nil); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := Discretize(2, 10, 1.2, 1, func(r *rand.Rand) geom.Point { return geom.Point{0} }); err == nil {
		t.Error("bad existence probability accepted")
	}
}
