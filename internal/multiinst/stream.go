package multiinst

import (
	"sort"

	"pskyline/internal/geom"
	"pskyline/internal/prob"
)

// StreamWindow maintains skyline probabilities of multi-instance objects
// over a count-based sliding window *incrementally*: the paper's
// Pnew/Pold decomposition (Equation (4)) carries over per instance,
//
//	Psky(U) = Σ_{u ∈ U} w(u) · Inew(u) · Iold(u)
//	Inew(u) = Π over newer window objects V of (1 − Σ_{v ∈ V, v ≺ u} w(v))
//	Iold(u) = Π over older window objects V of (1 − Σ_{v ∈ V, v ≺ u} w(v))
//
// so an arrival multiplies one factor into the dominated instances' Inew
// and an expiry divides one factor out of the dominated instances' Iold.
// Unlike the single-element engine, the candidate-set closure of Lemma 2
// does not carry over to weighted instance sets (a newer dominator of a
// qualified object may itself hold most of its weight in dominated
// instances), so StreamWindow retains the whole window; object-MBB
// dominance pruning (Theorem 1 at object level) keeps updates from
// touching unrelated objects. Factor arithmetic is the same log-domain
// algebra as the element engine, so instances dominated by certain
// (weight-1) mass divide back out exactly.
type StreamWindow struct {
	window int
	objs   []*winObj // arrival order; objs[0] is the oldest
	next   uint64
}

type winObj struct {
	obj  *Object
	seq  uint64
	inew []prob.Factor // per instance
	iold []prob.Factor // per instance
}

// NewStreamWindow returns an incremental window over the n most recent
// objects (n = 0 keeps everything; expiry then only happens via caller
// semantics, i.e. never).
func NewStreamWindow(n int) *StreamWindow {
	return &StreamWindow{window: n}
}

// Len returns the window population.
func (w *StreamWindow) Len() int { return len(w.objs) }

// domWeight returns Σ weights of v's instances dominating point pt.
func domWeight(v *Object, pt geom.Point) float64 {
	dw := 0.0
	for _, in := range v.Instances {
		if in.Point.Dominates(pt) {
			dw += in.W
		}
	}
	return dw
}

// Push appends an object, expiring the oldest when the window is full, and
// returns the object's arrival sequence number.
func (w *StreamWindow) Push(o *Object) uint64 {
	if w.window > 0 && len(w.objs) == w.window {
		w.expireOldest()
	}
	seq := w.next
	w.next++
	wo := &winObj{
		obj:  o,
		seq:  seq,
		inew: make([]prob.Factor, len(o.Instances)),
		iold: make([]prob.Factor, len(o.Instances)),
	}
	for i := range wo.inew {
		wo.inew[i] = prob.One()
		wo.iold[i] = prob.One()
	}
	oRect := o.MBB()
	for _, old := range w.objs {
		relOldNew := geom.Dominance(old.obj.MBB(), oRect)
		relNewOld := geom.Dominance(oRect, old.obj.MBB())
		// The old object's instances may dominate the new one's: Iold of
		// the new object's instances.
		if relOldNew != geom.DomNone {
			for i, in := range o.Instances {
				if dw := domWeight(old.obj, in.Point); dw > 0 {
					wo.iold[i] = wo.iold[i].Times(prob.OneMinus(dw))
				}
			}
		}
		// The new object's instances may dominate the old one's: Inew of
		// the old object's instances.
		if relNewOld != geom.DomNone {
			for i, in := range old.obj.Instances {
				if dw := domWeight(o, in.Point); dw > 0 {
					old.inew[i] = old.inew[i].Times(prob.OneMinus(dw))
				}
			}
		}
	}
	w.objs = append(w.objs, wo)
	return seq
}

// expireOldest removes the oldest object and divides its dominance factors
// out of every remaining object's Iold.
func (w *StreamWindow) expireOldest() {
	old := w.objs[0]
	w.objs = w.objs[1:]
	oldRect := old.obj.MBB()
	for _, u := range w.objs {
		if geom.Dominance(oldRect, u.obj.MBB()) == geom.DomNone {
			continue
		}
		for i, in := range u.obj.Instances {
			if dw := domWeight(old.obj, in.Point); dw > 0 {
				u.iold[i] = u.iold[i].Over(prob.OneMinus(dw))
			}
		}
	}
}

// psky returns the object's current skyline probability.
func (wo *winObj) psky() float64 {
	total := 0.0
	for i, in := range wo.obj.Instances {
		total += in.W * wo.inew[i].Times(wo.iold[i]).Float()
	}
	return total
}

// SkylineProbSeq returns the skyline probability of the window object with
// the given arrival sequence number; ok is false if it has expired.
func (w *StreamWindow) SkylineProbSeq(seq uint64) (p float64, ok bool) {
	for _, wo := range w.objs {
		if wo.seq == seq {
			return wo.psky(), true
		}
	}
	return 0, false
}

// Skyline returns the objects with skyline probability ≥ q, sorted by
// descending probability (ties by ascending ID).
func (w *StreamWindow) Skyline(q float64) []Result {
	var out []Result
	for _, wo := range w.objs {
		if p := wo.psky(); p >= q {
			out = append(out, Result{ID: wo.obj.ID, Psky: p})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Psky != out[b].Psky {
			return out[a].Psky > out[b].Psky
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// TopK returns the k objects with the highest skyline probabilities that
// reach at least minQ.
func (w *StreamWindow) TopK(k int, minQ float64) []Result {
	all := w.Skyline(minQ)
	if len(all) > k {
		all = all[:k]
	}
	return all
}
