package multiinst

import (
	"math"
	"math/rand"
	"testing"

	"pskyline/internal/geom"
)

// TestStreamWindowMatchesRecompute drives the incremental window and the
// recompute-on-query Window through identical object streams and compares
// every skyline probability at every step.
func TestStreamWindowMatchesRecompute(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const windowSize = 25
	sw := NewStreamWindow(windowSize)
	rw := NewWindow(windowSize)
	for i := 0; i < 400; i++ {
		o := randObject(r, uint64(i), 2)
		sw.Push(o)
		rw.Push(o)
		if (i+1)%7 != 0 {
			continue
		}
		if sw.Len() != rw.Len() {
			t.Fatalf("step %d: window sizes %d vs %d", i, sw.Len(), rw.Len())
		}
		for j := 0; j < rw.Len(); j++ {
			want := rw.SkylineProb(j)
			got, ok := sw.SkylineProbSeq(uint64(i + 1 - rw.Len() + j))
			if !ok {
				t.Fatalf("step %d: object %d missing from stream window", i, j)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("step %d obj %d: incremental %v vs recompute %v", i, j, got, want)
			}
		}
		gotSky := sw.Skyline(0.4)
		wantSky := rw.Skyline(0.4)
		if len(gotSky) != len(wantSky) {
			t.Fatalf("step %d: skyline %d vs %d", i, len(gotSky), len(wantSky))
		}
		for j := range gotSky {
			if gotSky[j].ID != wantSky[j].ID || math.Abs(gotSky[j].Psky-wantSky[j].Psky) > 1e-9 {
				t.Fatalf("step %d member %d: %+v vs %+v", i, j, gotSky[j], wantSky[j])
			}
		}
	}
}

// TestStreamWindowCertainInstances — weight-1 instances create exact-zero
// factors; their expiry must divide back out exactly.
func TestStreamWindowCertainInstances(t *testing.T) {
	sw := NewStreamWindow(2)
	mk := func(id uint64, x float64, w float64) *Object {
		o, err := NewObject(id, []Instance{{Point: geom.Point{x, x}, W: w}})
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	sw.Push(mk(0, 1, 1)) // certain, dominates everything after it
	sw.Push(mk(1, 2, 0.8))
	if p, _ := sw.SkylineProbSeq(1); p != 0 {
		t.Fatalf("dominated by certain object: psky = %v", p)
	}
	sw.Push(mk(2, 3, 0.5)) // expires object 0
	if p, _ := sw.SkylineProbSeq(1); math.Abs(p-0.8) > 1e-12 {
		t.Fatalf("after certain dominator expired: psky = %v, want 0.8", p)
	}
	if p, _ := sw.SkylineProbSeq(2); math.Abs(p-0.5*0.2) > 1e-12 {
		t.Fatalf("psky(2) = %v, want 0.1", p)
	}
}

func TestStreamWindowTopK(t *testing.T) {
	sw := NewStreamWindow(0)
	for i := 0; i < 5; i++ {
		o, err := NewObject(uint64(i), []Instance{{
			Point: geom.Point{float64(i), float64(5 - i)},
			W:     0.5 + 0.1*float64(i),
		}})
		if err != nil {
			t.Fatal(err)
		}
		sw.Push(o)
	}
	top := sw.TopK(2, 0.1)
	if len(top) != 2 {
		t.Fatalf("topk = %v", top)
	}
	if top[0].Psky < top[1].Psky {
		t.Fatal("topk not sorted")
	}
	if _, ok := sw.SkylineProbSeq(99); ok {
		t.Fatal("unknown seq reported present")
	}
}
