package multiinst_test

import (
	"fmt"
	"log"

	"pskyline/internal/geom"
	"pskyline/internal/multiinst"
)

// Two uncertain objects: A is certainly at (1, 4); B is at (2, 2) or (4, 1)
// with equal weight. Neither of B's instances is dominated by A, and B's
// first instance dominates nothing of A either — both objects are certain
// skyline members. Adding C, dominated by B's (2,2) half the time, shows the
// probability arithmetic.
func ExampleStreamWindow() {
	w := multiinst.NewStreamWindow(10)
	a, err := multiinst.NewObject(0, []multiinst.Instance{
		{Point: geom.Point{1, 4}, W: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	b, err := multiinst.NewObject(1, []multiinst.Instance{
		{Point: geom.Point{2, 2}, W: 0.5},
		{Point: geom.Point{4, 1}, W: 0.5},
	})
	if err != nil {
		log.Fatal(err)
	}
	c, err := multiinst.NewObject(2, []multiinst.Instance{
		{Point: geom.Point{3, 3}, W: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	w.Push(a)
	w.Push(b)
	w.Push(c)
	for _, r := range w.Skyline(0.1) {
		fmt.Printf("object %d: Psky = %.2f\n", r.ID, r.Psky)
	}
	// Output:
	// object 0: Psky = 1.00
	// object 1: Psky = 1.00
	// object 2: Psky = 0.50
}
