package core

import (
	"math"
	"testing"

	"pskyline/internal/geom"
	"pskyline/internal/naive"
)

// The running example of the paper (Figure 1, Examples 1–3). Coordinates
// are reconstructed from the dominance relations the worked numbers imply:
//
//	a1 = (6, 6)   P = 0.9   dominated by a2, a3 (both newer)
//	a2 = (2, 3)   P = 0.4
//	a3 = (3, 2)   P = 0.3
//	a4 = (10,10)  P = 0.9   dominated by a1, a2, a3, a5
//	a5 = (7, 1)   P = 0.1   dominates a4 but not a1
//	a6 = (11,12)  P = 0.5   dominated by a4 (does not dominate a4)
var paperPts = []geom.Point{
	{6, 6}, {2, 3}, {3, 2}, {10, 10}, {7, 1}, {11, 12},
}

var paperPs = []float64{0.9, 0.4, 0.3, 0.9, 0.1, 0.5}

func pushPaper(t *testing.T, e *Engine, from, upTo int) {
	t.Helper()
	for i := from; i < upTo; i++ {
		if _, err := e.Push(paperPts[i], paperPs[i], int64(i)); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Errorf("%s = %.12g, want %.12g", name, got, want)
	}
}

// TestPaperExample1 checks the unrestricted probabilities of Example 1
// against the exact oracle: N = 5, P_new(a4) = 0.9, P_old(a4) = 0.042,
// P_sky(a4) = 0.034 (0.03402 exactly).
func TestPaperExample1(t *testing.T) {
	x := naive.NewExact(5)
	for i := 0; i < 5; i++ {
		x.Push(paperPts[i], paperPs[i])
	}
	all := x.All()
	a4 := all[3]
	approx(t, "Pnew(a4)", a4.Pnew.Float(), 0.9)
	approx(t, "Pold(a4)", a4.Pold.Float(), 0.042)
	approx(t, "Psky(a4)", a4.Psky.Float(), 0.03402)
}

// TestPaperExample2 checks the restricted computation of Example 2:
// N = 5, q = 0.5, S_{N,q} = {a2, a3, a4, a5}, P_new(a4) = 0.9 and
// P_old|S(a4) = 0.6 · 0.7 = 0.42.
func TestPaperExample2(t *testing.T) {
	e, err := NewEngine(Options{Dims: 2, Window: 5, Thresholds: []float64{0.5}})
	if err != nil {
		t.Fatal(err)
	}
	pushPaper(t, e, 0, 5)

	cands := e.Candidates()
	if len(cands) != 4 {
		t.Fatalf("|S| = %d, want 4 (%v)", len(cands), cands)
	}
	wantSeqs := []uint64{1, 2, 3, 4} // a2..a5 (a1 has Pnew = 0.42 < 0.5)
	for i, c := range cands {
		if c.Seq != wantSeqs[i] {
			t.Fatalf("candidate %d: seq %d, want %d", i, c.Seq, wantSeqs[i])
		}
	}
	a4 := cands[2]
	approx(t, "Pnew(a4)", a4.Pnew, 0.9)
	approx(t, "Pold|S(a4)", a4.Pold, 0.42)
	approx(t, "Psky|S(a4)", a4.Psky, 0.9*0.9*0.42)

	// No element reaches q = 0.5 in this window.
	if sky := e.Skyline(); len(sky) != 0 {
		t.Fatalf("skyline = %v, want empty", sky)
	}
}

// TestPaperExample3 follows Example 3: with N = 4 the first window keeps
// S = {a2, a3, a4} with Psky|S(a4) = 0.378; after a5 and a6 arrive (window
// {a3, a4, a5, a6}), a4 becomes a skyline point with Psky = 0.567.
func TestPaperExample3(t *testing.T) {
	e, err := NewEngine(Options{Dims: 2, Window: 4, Thresholds: []float64{0.5}})
	if err != nil {
		t.Fatal(err)
	}
	pushPaper(t, e, 0, 4)

	cands := e.Candidates()
	if len(cands) != 3 {
		t.Fatalf("first window |S| = %d, want 3 (%v)", len(cands), cands)
	}
	approx(t, "Psky|S(a4) first window", cands[2].Psky, 0.378)
	if sky := e.Skyline(); len(sky) != 0 {
		t.Fatalf("first-window skyline = %v, want empty", sky)
	}

	pushPaper(t, e, 4, 6) // a5, a6 arrive; a1, a2 expire
	sky := e.Skyline()
	if len(sky) != 1 || sky[0].Seq != 3 {
		t.Fatalf("skyline = %+v, want exactly a4 (seq 3)", sky)
	}
	approx(t, "Psky(a4) third window", sky[0].Psky, 0.9*0.7*0.9)
}

// TestPaperTableI encodes the laptop-advertisement example of Table I
// (price, condition-rank) with trustability as occurrence probability; L1
// and L4 are the certain skyline, and with a window covering all four, L4's
// low trustability keeps its skyline probability at 0.48 while L3 benefits
// from L4's uncertainty.
func TestPaperTableI(t *testing.T) {
	// Condition encoded as rank: excellent = 1, good = 2. Smaller better.
	pts := []geom.Point{{550, 1}, {680, 1}, {530, 2}, {200, 2}}
	ps := []float64{0.80, 0.90, 1.00, 0.48}
	e, err := NewEngine(Options{Dims: 2, Window: 4, Thresholds: []float64{0.4}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if _, err := e.Push(pts[i], ps[i], int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// L1 dominates L2; L4 dominates L3. Psky: L1 = 0.8, L2 = 0.9·0.2 =
	// 0.18, L3 = 1.0·(1−0.48) = 0.52, L4 = 0.48.
	res, err := e.Query(0.4)
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]float64{}
	for _, r := range res {
		got[r.Seq] = r.Psky
	}
	if len(got) != 3 {
		t.Fatalf("0.4-skyline = %v, want {L1, L3, L4}", res)
	}
	approx(t, "Psky(L1)", got[0], 0.80)
	approx(t, "Psky(L3)", got[2], 0.52)
	approx(t, "Psky(L4)", got[3], 0.48)
}
