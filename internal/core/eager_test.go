package core

import (
	"math/rand"
	"testing"

	"pskyline/internal/streamgen"
)

// TestEagerMatchesLazy — the eager-propagation ablation mode must be
// observationally identical to the lazy default on every query surface.
func TestEagerMatchesLazy(t *testing.T) {
	mk := func(eager bool) *Engine {
		e, err := NewEngine(Options{
			Dims: 3, Window: 300, Thresholds: []float64{0.6, 0.3},
			MaxEntries: 5, EagerPropagation: eager,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	lazy, eager := mk(false), mk(true)
	src := streamgen.New(3, streamgen.Anticorrelated, streamgen.UniformProb{}, 21)
	r := rand.New(rand.NewSource(22))
	for i := 0; i < 3000; i++ {
		el := src.Next()
		if _, err := lazy.Push(el.Point, el.P, el.TS); err != nil {
			t.Fatal(err)
		}
		if _, err := eager.Push(el.Point, el.P, el.TS); err != nil {
			t.Fatal(err)
		}
		if (i+1)%71 != 0 {
			continue
		}
		if err := eager.CheckInvariants(); err != nil {
			t.Fatalf("eager invariants at %d: %v", i, err)
		}
		lc, ec := lazy.Candidates(), eager.Candidates()
		if len(lc) != len(ec) {
			t.Fatalf("step %d: candidate sizes %d vs %d", i, len(lc), len(ec))
		}
		for j := range lc {
			if lc[j].Seq != ec[j].Seq {
				t.Fatalf("step %d: candidate %d vs %d", i, lc[j].Seq, ec[j].Seq)
			}
			if !feq(lc[j].Pnew, ec[j].Pnew) || !feq(lc[j].Pold, ec[j].Pold) {
				t.Fatalf("step %d seq %d: probs (%g,%g) vs (%g,%g)",
					i, lc[j].Seq, lc[j].Pnew, lc[j].Pold, ec[j].Pnew, ec[j].Pold)
			}
		}
		q := 0.3 + 0.7*r.Float64()
		lr, err := lazy.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		er, err := eager.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(lr) != len(er) {
			t.Fatalf("step %d q=%v: skyline %d vs %d", i, q, len(lr), len(er))
		}
		for j := range lr {
			if lr[j].Seq != er[j].Seq || !feq(lr[j].Psky, er[j].Psky) {
				t.Fatalf("step %d q=%v: result %d mismatch", i, q, j)
			}
		}
	}
	// The lazy engine must have saved element visits compared to eager.
	if l, e := lazy.Counters(), eager.Counters(); l.ItemsTouched >= e.ItemsTouched {
		t.Fatalf("lazy touched %d items, eager %d — laziness bought nothing",
			l.ItemsTouched, e.ItemsTouched)
	}
}

func TestCountersAccumulate(t *testing.T) {
	e, err := NewEngine(Options{Dims: 2, Window: 50, Thresholds: []float64{0.3}})
	if err != nil {
		t.Fatal(err)
	}
	src := streamgen.New(2, streamgen.Independent, streamgen.UniformProb{}, 31)
	for i := 0; i < 500; i++ {
		el := src.Next()
		if _, err := e.Push(el.Point, el.P, el.TS); err != nil {
			t.Fatal(err)
		}
	}
	c := e.Counters()
	if c.Pushes != 500 {
		t.Fatalf("pushes = %d", c.Pushes)
	}
	if c.NodesVisited == 0 || c.ItemsTouched == 0 {
		t.Fatalf("visit counters did not accumulate: %+v", c)
	}
	if c.Removals == 0 {
		t.Fatalf("uniform 2d stream must prune candidates: %+v", c)
	}
	if c.Expiries == 0 {
		t.Fatalf("window of 50 over 500 pushes must expire candidates: %+v", c)
	}
}
