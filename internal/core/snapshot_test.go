package core

import (
	"bytes"
	"testing"

	"pskyline/internal/streamgen"
)

// TestSnapshotRoundTrip checkpoints an engine mid-stream, restores it, and
// drives both the original and the restored engine through the remainder of
// the stream: every observable must agree at every checkpoint.
func TestSnapshotRoundTrip(t *testing.T) {
	opts := Options{Dims: 3, Window: 400, Thresholds: []float64{0.6, 0.3}, MaxEntries: 6}
	orig, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	src := streamgen.New(3, streamgen.Anticorrelated, streamgen.UniformProb{}, 33)
	var prefix []streamgen.Element
	for i := 0; i < 1500; i++ {
		el := src.Next()
		prefix = append(prefix, el)
		if _, err := orig.Push(el.Point, el.P, el.TS); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&buf, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.CheckInvariants(); err != nil {
		t.Fatalf("restored invariants: %v", err)
	}

	compare := func(step int) {
		if orig.Processed() != restored.Processed() ||
			orig.CandidateSize() != restored.CandidateSize() ||
			orig.SkylineSize() != restored.SkylineSize() ||
			orig.MaxCandidateSize() != restored.MaxCandidateSize() {
			t.Fatalf("step %d: headline stats diverge", step)
		}
		oc, rc := orig.Candidates(), restored.Candidates()
		if len(oc) != len(rc) {
			t.Fatalf("step %d: candidate counts %d vs %d", step, len(oc), len(rc))
		}
		for i := range oc {
			if oc[i].Seq != rc[i].Seq || !feq(oc[i].Pnew, rc[i].Pnew) ||
				!feq(oc[i].Pold, rc[i].Pold) || !feq(oc[i].Psky, rc[i].Psky) {
				t.Fatalf("step %d: candidate %d diverged: %+v vs %+v", step, i, oc[i], rc[i])
			}
		}
		os, rs := orig.Skyline(), restored.Skyline()
		if len(os) != len(rs) {
			t.Fatalf("step %d: skylines %d vs %d", step, len(os), len(rs))
		}
		for i := range os {
			if os[i].Seq != rs[i].Seq {
				t.Fatalf("step %d: skyline member %d vs %d", step, os[i].Seq, rs[i].Seq)
			}
		}
	}
	compare(0)

	// Continue both engines in lockstep through more of the stream.
	for i := 0; i < 1200; i++ {
		el := src.Next()
		if _, err := orig.Push(el.Point, el.P, el.TS); err != nil {
			t.Fatal(err)
		}
		if _, err := restored.Push(el.Point, el.P, el.TS); err != nil {
			t.Fatal(err)
		}
		if (i+1)%97 == 0 {
			compare(i + 1)
		}
	}
	compare(1200)
	_ = prefix
}

// TestSnapshotTimeWindow round-trips the arrival queue of a time-based
// window.
func TestSnapshotTimeWindow(t *testing.T) {
	orig, err := NewEngine(Options{Dims: 2, Window: 0, Thresholds: []float64{0.3}})
	if err != nil {
		t.Fatal(err)
	}
	src := streamgen.New(2, streamgen.Independent, streamgen.UniformProb{}, 44)
	ts := int64(0)
	for i := 0; i < 300; i++ {
		ts += 2
		el := src.Next()
		orig.ExpireOlderThan(ts - 100)
		if _, err := orig.Push(el.Point, el.P, ts); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&buf, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		ts += 2
		el := src.Next()
		orig.ExpireOlderThan(ts - 100)
		restored.ExpireOlderThan(ts - 100)
		if _, err := orig.Push(el.Point, el.P, ts); err != nil {
			t.Fatal(err)
		}
		if _, err := restored.Push(el.Point, el.P, ts); err != nil {
			t.Fatal(err)
		}
	}
	if orig.CandidateSize() != restored.CandidateSize() || orig.SkylineSize() != restored.SkylineSize() {
		t.Fatalf("time-window restore diverged: (%d,%d) vs (%d,%d)",
			orig.CandidateSize(), orig.SkylineSize(), restored.CandidateSize(), restored.SkylineSize())
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := Restore(bytes.NewReader([]byte("not a snapshot")), RestoreOptions{}); err == nil {
		t.Fatal("garbage accepted")
	}
}
