package core

import (
	"math"
	"math/rand"
	"testing"

	"pskyline/internal/geom"
)

// identicalResults reports bit-for-bit equality of two extractions.
func identicalResults(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Seq != y.Seq || x.TS != y.TS ||
			math.Float64bits(x.P) != math.Float64bits(y.P) ||
			math.Float64bits(x.Psky) != math.Float64bits(y.Psky) ||
			math.Float64bits(x.Pnew) != math.Float64bits(y.Pnew) ||
			math.Float64bits(x.Pold) != math.Float64bits(y.Pold) {
			return false
		}
		for d := range x.Point {
			if math.Float64bits(x.Point[d]) != math.Float64bits(y.Point[d]) {
				return false
			}
		}
	}
	return true
}

// TestBandGenContract verifies the generation-counter contract BandGen
// documents and the pskyline read views rely on: as long as a band's
// generation is unchanged, BandResults returns a byte-identical extraction —
// across insertions, lazy push-downs, band moves, window expiry and R-tree
// restructuring.
func TestBandGenContract(t *testing.T) {
	const (
		dims   = 3
		window = 200
	)
	n := 3000
	if testing.Short() {
		n = 800
	}
	eng, err := NewEngine(Options{
		Dims: dims, Window: window, Thresholds: []float64{0.5, 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	nb := len(eng.Thresholds()) + 1

	type cached struct {
		gen uint64
		res []Result
	}
	cache := make([]cached, nb)
	for i := range cache {
		cache[i] = cached{gen: eng.BandGen(i), res: eng.BandResults(i)}
	}

	r := rand.New(rand.NewSource(17))
	reuseHits := 0
	for i := 0; i < n; i++ {
		pt := make(geom.Point, dims)
		s := 0.0
		for d := range pt {
			pt[d] = r.Float64()
			s += pt[d]
		}
		shift := (float64(dims)/2 - s) / float64(dims) * 0.8
		for d := range pt {
			pt[d] += shift
		}
		if _, err := eng.Push(pt, 1-r.Float64(), int64(i)); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		for b := 0; b < nb; b++ {
			gen := eng.BandGen(b)
			fresh := eng.BandResults(b)
			if gen == cache[b].gen {
				reuseHits++
				if !identicalResults(cache[b].res, fresh) {
					t.Fatalf("push %d: band %d generation %d unchanged but extraction differs", i, b, gen)
				}
			}
			cache[b] = cached{gen: gen, res: fresh}
		}
	}
	// The contract is only useful if unchanged generations actually occur.
	if reuseHits == 0 {
		t.Fatal("no push left any band generation unchanged; the test is vacuous")
	}

	// Threshold changes renumber the bands: every generation must advance so
	// cached extractions cannot be carried across the renumbering.
	before := make([]uint64, nb)
	for i := range before {
		before[i] = eng.BandGen(i)
	}
	if err := eng.AddThreshold(0.7); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if eng.BandGen(i) == before[i] {
			t.Fatalf("AddThreshold left band %d generation unchanged", i)
		}
	}
	before = make([]uint64, nb+1)
	for i := range before {
		before[i] = eng.BandGen(i)
	}
	if err := eng.RemoveThreshold(0.7); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nb; i++ {
		if eng.BandGen(i) == before[i] {
			t.Fatalf("RemoveThreshold left band %d generation unchanged", i)
		}
	}
}
