package core

import (
	"pskyline/internal/aggrtree"
	"pskyline/internal/geom"
	"pskyline/internal/prob"
)

// expire runs the paper's Expiring(a_old) (Algorithm 11) generalized to
// threshold bands. Only candidate elements need work: a non-candidate's
// non-occurrence factor was already stripped from every Pold when it left
// the candidate set, and expiring it cannot change anyone's Pnew.
//
// For a candidate a_old:
//
//  1. remove it from its band tree and the candidate map;
//  2. probe all band trees for entries/elements dominated by a_old and
//     divide their Pold by (1 − P(a_old)) — lazily at fully dominated
//     entries, exactly at elements of partially dominated leaves;
//  3. evaluate band placement of the affected targets (Move(R ∩ R_2));
//     skyline probabilities only rise on expiry, so moves are upward;
//  4. apply the moves.
//
// Timing uses the engine's shared StageClock, armed by the caller (push1 or
// ExpireOlderThan) when metrics are enabled; a non-candidate expiry is a map
// miss and records nothing.
func (e *Engine) expire(seq uint64) {
	it, ok := e.inS[seq]
	if !ok {
		return
	}
	e.counters.Expiries++
	band := e.treeIndexOf(it)
	delete(e.inS, seq)
	e.trees[band].DeleteItem(it)
	e.touch(band)
	e.emit(it, band, -1)

	om := it.OneMinusP()
	s := &e.scratch
	s.affN, s.affI = s.affN[:0], s.affI[:0]
	for bi, tr := range e.trees {
		if tr.Size() > 0 {
			if e.probeExpire(tr.Root(), bi, it.Point, om, &s.affN, &s.affI) {
				e.touch(bi)
			}
		}
	}

	s.moves = s.moves[:0]
	for _, t := range s.affN {
		e.evalPlacement(t, 0, &s.moves)
	}
	for _, x := range s.affI {
		e.evalItemPlacement(x, 0, &s.moves)
	}
	e.applyMoves(s.moves)
	e.freeItem(it)
	if met := e.metrics; met != nil {
		met.span[SpanExpire] += int64(e.clk.Observe(&met.StageExpire))
	}
}

// probeExpire raises the skyline probability of every element dominated by
// the expiring point: fully dominated entries take the lazy Pold divisor,
// partially dominated entries are pushed and resolved below. It reports
// whether any probability under n changed; ancestors' aggregates are
// refreshed on the unwind.
func (e *Engine) probeExpire(n *aggrtree.Node, band int, pt geom.Point, om prob.Factor, affN *[]nodeT, affI *[]itemT) bool {
	e.counters.NodesVisited++
	switch e.kern.PointRect(pt, n.Rect()) {
	case geom.DomNone:
		return false
	case geom.DomFull:
		if e.eager {
			n.ApplyDeepOld(om)
			e.counters.ItemsTouched += uint64(n.Count())
		} else {
			e.counters.LazyApplied++
			n.MulLazyOld(om)
		}
		*affN = append(*affN, nodeT{n, band})
		return true
	}
	n.Push()
	changed := false
	if n.IsLeaf() {
		e.counters.ItemsTouched += uint64(len(n.Items()))
		changed = e.leafExpireDominated(n, band, pt, om, affI)
	} else {
		for _, c := range n.Children() {
			if e.probeExpire(c, band, pt, om, affN, affI) {
				changed = true
			}
		}
	}
	if changed {
		n.RefreshProbs()
	}
	return changed
}
