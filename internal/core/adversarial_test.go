package core

import (
	"math/rand"
	"sort"
	"testing"

	"pskyline/internal/geom"
	"pskyline/internal/naive"
)

// pushAll feeds points/probs into a fresh engine and its oracles, checking
// agreement after every step.
func checkedStream(t *testing.T, dims, window int, q float64, pts []geom.Point, ps []float64) *Engine {
	t.Helper()
	eng, err := NewEngine(Options{Dims: dims, Window: window, Thresholds: []float64{q}})
	if err != nil {
		t.Fatal(err)
	}
	exact := naive.NewExact(window)
	for i := range pts {
		if _, err := eng.Push(pts[i], ps[i], int64(i)); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		exact.Push(pts[i], ps[i])
		if err := eng.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		engCands := eng.Candidates()
		seqs := make([]uint64, len(engCands))
		for j, c := range engCands {
			seqs[j] = c.Seq
		}
		if err := equalSeqs("candidates", seqs, exact.Candidates(q)); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		res, err := eng.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]uint64, len(res))
		for j, r := range res {
			got[j] = r.Seq
		}
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		if err := equalSeqs("skyline", got, exact.Skyline(q)); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	return eng
}

// TestAllCertain — every probability 1: the q-skyline degenerates to the
// classical sliding-window skyline, and every dominated element is pruned
// immediately (any certain dominator kills Pnew).
func TestAllCertain(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 300)
	ps := make([]float64, 300)
	for i := range pts {
		pts[i] = geom.Point{r.Float64(), r.Float64()}
		ps[i] = 1
	}
	eng := checkedStream(t, 2, 40, 0.5, pts, ps)
	// With P = 1 everywhere a single newer dominator zeroes Pnew, so the
	// candidates are exactly the elements with no newer dominator — the
	// classical sliding-window skyline candidate set (Lin et al.), a
	// superset of the skyline.
	if eng.CandidateSize() < eng.SkylineSize() {
		t.Fatalf("certain data: candidates %d < skyline %d", eng.CandidateSize(), eng.SkylineSize())
	}
	for _, c := range eng.Candidates() {
		if c.Pnew != 1 {
			t.Fatalf("certain candidate with Pnew %v", c.Pnew)
		}
	}
}

// TestAllDuplicatePoints — identical points never dominate each other, so
// everything is a skyline point with Psky = P.
func TestAllDuplicatePoints(t *testing.T) {
	pts := make([]geom.Point, 120)
	ps := make([]float64, 120)
	r := rand.New(rand.NewSource(2))
	for i := range pts {
		pts[i] = geom.Point{3, 7}
		ps[i] = 0.4 + 0.6*r.Float64()
	}
	eng := checkedStream(t, 2, 50, 0.4, pts, ps)
	if eng.CandidateSize() != 50 {
		t.Fatalf("duplicates must all stay candidates, have %d", eng.CandidateSize())
	}
}

// TestMonotoneImproving — each element dominates every earlier one: the
// newest element alone keeps everything else's Pnew shrinking, and the
// candidate set stays tiny.
func TestMonotoneImproving(t *testing.T) {
	pts := make([]geom.Point, 250)
	ps := make([]float64, 250)
	for i := range pts {
		v := float64(len(pts) - i)
		pts[i] = geom.Point{v, v}
		ps[i] = 0.6
	}
	eng := checkedStream(t, 2, 60, 0.3, pts, ps)
	// Pnew of an element with j newer dominators is 0.4^j < 0.3 for j ≥ 2,
	// so at most 3 elements (the two newest plus boundary) can be kept.
	if eng.CandidateSize() > 3 {
		t.Fatalf("monotone stream kept %d candidates", eng.CandidateSize())
	}
}

// TestMonotoneWorsening — each element is dominated by every earlier one:
// old skyline points expire one by one and successors take over.
func TestMonotoneWorsening(t *testing.T) {
	pts := make([]geom.Point, 250)
	ps := make([]float64, 250)
	for i := range pts {
		v := float64(i + 1)
		pts[i] = geom.Point{v, v}
		ps[i] = 0.9
	}
	checkedStream(t, 2, 40, 0.3, pts, ps)
}

// TestCertainDominatorWipesBand — a P = 1 element dominating the whole
// window zeroes every other element's probabilities (exact zero factors on
// the lazy path) and then expires, which must divide the zeros back out.
func TestCertainDominatorWipesBand(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	var pts []geom.Point
	var ps []float64
	for i := 0; i < 200; i++ {
		if i%37 == 20 {
			pts = append(pts, geom.Point{0, 0}) // dominates everything
			ps = append(ps, 1)
			continue
		}
		pts = append(pts, geom.Point{0.1 + r.Float64(), 0.1 + r.Float64()})
		ps = append(ps, 1-r.Float64())
	}
	checkedStream(t, 2, 30, 0.25, pts, ps)
}

// TestAxisTies — points sharing coordinates on some dimensions exercise the
// strict-dominance tie rules through the whole pipeline.
func TestAxisTies(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts := make([]geom.Point, 400)
	ps := make([]float64, 400)
	for i := range pts {
		pts[i] = geom.Point{float64(r.Intn(3)), float64(r.Intn(3)), float64(r.Intn(3))}
		ps[i] = 1 - r.Float64()
	}
	checkedStream(t, 3, 25, 0.35, pts, ps)
}

// TestThresholdOne — q = 1 keeps only elements that are certain to be on
// the skyline: P = 1 and no dominator of any probability.
func TestThresholdOne(t *testing.T) {
	pts := []geom.Point{{5, 5}, {3, 6}, {6, 3}, {4, 4}}
	ps := []float64{1, 1, 0.5, 1}
	eng := checkedStream(t, 2, 10, 1, pts, ps)
	res, err := eng.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	// (4,4) dominated by nothing? (5,5) doesn't dominate it; (3,6)/(6,3)
	// incomparable. (5,5) is dominated by (4,4) so its Psky is 0.
	want := map[uint64]bool{1: true, 3: true}
	if len(res) != len(want) {
		t.Fatalf("q=1 skyline: %v", res)
	}
	for _, re := range res {
		if !want[re.Seq] {
			t.Fatalf("unexpected member %d", re.Seq)
		}
	}
}

// TestTinyWindow — window of 1: every arrival expires its predecessor.
func TestTinyWindow(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	pts := make([]geom.Point, 100)
	ps := make([]float64, 100)
	for i := range pts {
		pts[i] = geom.Point{r.Float64(), r.Float64()}
		ps[i] = 1 - r.Float64()
	}
	eng := checkedStream(t, 2, 1, 0.3, pts, ps)
	if eng.CandidateSize() != 1 {
		t.Fatalf("window 1 kept %d", eng.CandidateSize())
	}
}

// TestLongFuzzInvariants — a long mixed stream with frequent invariant
// checks and a tiny fanout to maximize structural churn.
func TestLongFuzzInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	eng, err := NewEngine(Options{Dims: 3, Window: 200, Thresholds: []float64{0.6, 0.3, 0.15}, MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		var pt geom.Point
		if r.Intn(3) == 0 {
			pt = geom.Point{float64(r.Intn(5)), float64(r.Intn(5)), float64(r.Intn(5))}
		} else {
			pt = geom.Point{r.Float64(), r.Float64(), r.Float64()}
		}
		p := 1 - r.Float64()
		if r.Intn(11) == 0 {
			p = 1
		}
		if _, err := eng.Push(pt, p, int64(i)); err != nil {
			t.Fatal(err)
		}
		if i%97 == 0 {
			if err := eng.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			// Band membership must respect band bounds.
			for b := 0; b <= 3; b++ {
				lo, hi, hiOK := eng.bandBounds(b)
				eng.WalkBand(b, func(res Result) bool {
					psf := res.Psky
					if b < 3 && psf < lo.Float()*(1-1e-9) {
						t.Fatalf("band %d holds psky %v below lower bound", b, psf)
					}
					if hiOK && psf >= hi.Float()*(1+1e-9) {
						t.Fatalf("band %d holds psky %v above upper bound", b, psf)
					}
					return true
				})
			}
		}
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
