package core

import (
	"math/bits"

	"pskyline/internal/aggrtree"
	"pskyline/internal/geom"
	"pskyline/internal/prob"
)

// Leaf scans.
//
// The three probe hot loops — marking elements dominated by an arrival,
// the mutual-dominance probe, and the expiry divisor — each examine every
// item of a partially overlapping leaf. With the block path enabled they
// run the geom block kernels over the leaf's packed SoA coordinate block
// (dims sequential lane scans, no per-item pointer chase) and then visit
// only the mask hits; items are processed in ascending slot order, which is
// exactly the order of the per-item fallback loops, so probability folds
// accumulate in the same order and both paths produce bit-identical
// results. The fallback per-item loops remain for engines constructed with
// DisableBlockScan (the A/B control) and for leaves wider than a kernel
// mask.

// leafMarkDominated applies the arrival's Pnew multiplier to every leaf item
// dominated by p, recording the hits in domI. It is the relDom == DomNone
// arm of probeInsert, where only the dominated side of the test is live.
func (e *Engine) leafMarkDominated(n *aggrtree.Node, band int, p geom.Point, om prob.Factor, domI *[]itemT) bool {
	items := n.Items()
	if e.blockScan {
		if lanes, stride, ok := n.Block(); ok {
			mask := e.bkern.DominatesBlock(p, lanes, stride, len(items))
			hit := mask != 0
			for mask != 0 {
				i := bits.TrailingZeros64(mask)
				mask &= mask - 1
				x := items[i]
				x.Pnew = x.Pnew.Times(om)
				*domI = append(*domI, itemT{x, band})
			}
			return hit
		}
	}
	changed := false
	// The d = 2/3 arms let the inlinable dominance kernels run without an
	// indirect call.
	switch e.dims {
	case 2:
		for _, x := range items {
			if geom.Dominates2(p, x.Point) {
				x.Pnew = x.Pnew.Times(om)
				*domI = append(*domI, itemT{x, band})
				changed = true
			}
		}
	case 3:
		for _, x := range items {
			if geom.Dominates3(p, x.Point) {
				x.Pnew = x.Pnew.Times(om)
				*domI = append(*domI, itemT{x, band})
				changed = true
			}
		}
	default:
		for _, x := range items {
			if e.kern.Dominates(p, x.Point) {
				x.Pnew = x.Pnew.Times(om)
				*domI = append(*domI, itemT{x, band})
				changed = true
			}
		}
	}
	return changed
}

// leafProbeMutual resolves both dominance directions between the arrival
// and a leaf: items dominating p fold their non-occurrence factor into
// pold, items dominated by p take the Pnew multiplier and join domI.
func (e *Engine) leafProbeMutual(n *aggrtree.Node, band int, p geom.Point, om, pold prob.Factor, domI *[]itemT) (prob.Factor, bool) {
	items := n.Items()
	if e.blockScan {
		if lanes, stride, ok := n.Block(); ok {
			pDom, domP := e.bkern.MutualBlock(p, lanes, stride, len(items))
			changed := pDom != 0
			for u := pDom | domP; u != 0; {
				i := bits.TrailingZeros64(u)
				u &= u - 1
				x := items[i]
				if domP&(1<<uint(i)) != 0 {
					pold = pold.Times(x.OneMinusP())
				} else {
					x.Pnew = x.Pnew.Times(om)
					*domI = append(*domI, itemT{x, band})
				}
			}
			return pold, changed
		}
	}
	changed := false
	for _, x := range items {
		xDom, newDom := e.kern.Mutual(x.Point, p)
		switch {
		case xDom:
			pold = pold.Times(x.OneMinusP())
		case newDom:
			x.Pnew = x.Pnew.Times(om)
			*domI = append(*domI, itemT{x, band})
			changed = true
		}
	}
	return pold, changed
}

// foldLeafDominators multiplies into pold the non-occurrence factor of every
// leaf item dominating p — the read-only arm of the probes.
func (e *Engine) foldLeafDominators(n *aggrtree.Node, p geom.Point, pold prob.Factor) prob.Factor {
	items := n.Items()
	e.counters.ItemsTouched += uint64(len(items))
	if e.blockScan {
		if lanes, stride, ok := n.Block(); ok {
			mask := e.bkern.BlockDominates(p, lanes, stride, len(items))
			for mask != 0 {
				i := bits.TrailingZeros64(mask)
				mask &= mask - 1
				pold = pold.Times(items[i].OneMinusP())
			}
			return pold
		}
	}
	// The d = 2/3 arms let the inlinable dominance kernels run without an
	// indirect call.
	switch e.dims {
	case 2:
		for _, x := range items {
			if geom.Dominates2(x.Point, p) {
				pold = pold.Times(x.OneMinusP())
			}
		}
	case 3:
		for _, x := range items {
			if geom.Dominates3(x.Point, p) {
				pold = pold.Times(x.OneMinusP())
			}
		}
	default:
		for _, x := range items {
			if e.kern.Dominates(x.Point, p) {
				pold = pold.Times(x.OneMinusP())
			}
		}
	}
	return pold
}

// leafExpireDominated divides Pold of every leaf item dominated by the
// expiring point, recording the hits in affI.
func (e *Engine) leafExpireDominated(n *aggrtree.Node, band int, pt geom.Point, om prob.Factor, affI *[]itemT) bool {
	items := n.Items()
	if e.blockScan {
		if lanes, stride, ok := n.Block(); ok {
			mask := e.bkern.DominatesBlock(pt, lanes, stride, len(items))
			hit := mask != 0
			for mask != 0 {
				i := bits.TrailingZeros64(mask)
				mask &= mask - 1
				x := items[i]
				x.Pold = x.Pold.Over(om)
				*affI = append(*affI, itemT{x, band})
			}
			return hit
		}
	}
	changed := false
	// The d = 2/3 arms let the inlinable dominance kernels run without an
	// indirect call.
	switch e.dims {
	case 2:
		for _, x := range items {
			if geom.Dominates2(pt, x.Point) {
				x.Pold = x.Pold.Over(om)
				*affI = append(*affI, itemT{x, band})
				changed = true
			}
		}
	case 3:
		for _, x := range items {
			if geom.Dominates3(pt, x.Point) {
				x.Pold = x.Pold.Over(om)
				*affI = append(*affI, itemT{x, band})
				changed = true
			}
		}
	default:
		for _, x := range items {
			if e.kern.Dominates(pt, x.Point) {
				x.Pold = x.Pold.Over(om)
				*affI = append(*affI, itemT{x, band})
				changed = true
			}
		}
	}
	return changed
}
