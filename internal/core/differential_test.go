package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"pskyline/internal/geom"
	"pskyline/internal/naive"
)

// diffConfig describes one differential-testing scenario: the aggregate
// R-tree engine, the paper's trivial baseline and the exact full-window
// oracle process the same stream and must agree.
type diffConfig struct {
	name       string
	dims       int
	window     int
	thresholds []float64
	n          int
	checkEvery int
	genPoint   func(r *rand.Rand, dims int) geom.Point
	genProb    func(r *rand.Rand) float64
	fanout     int
}

func uniformPoint(r *rand.Rand, dims int) geom.Point {
	p := make(geom.Point, dims)
	for i := range p {
		p[i] = r.Float64()
	}
	return p
}

// gridPoint draws coordinates from a tiny integer grid, forcing massive
// duplication and per-dimension ties.
func gridPoint(r *rand.Rand, dims int) geom.Point {
	p := make(geom.Point, dims)
	for i := range p {
		p[i] = float64(r.Intn(4))
	}
	return p
}

// antiPoint places points near the anti-diagonal hyperplane Σx = 1, the
// skyline-hostile distribution of the evaluation section.
func antiPoint(r *rand.Rand, dims int) geom.Point {
	p := make(geom.Point, dims)
	c := r.NormFloat64()*0.12 + 1.0/float64(dims)
	for i := range p {
		p[i] = c + r.NormFloat64()*0.05
	}
	// Redistribute mass between dimensions, keeping the sum roughly fixed.
	for i := 0; i < dims-1; i++ {
		d := (r.Float64() - 0.5) * 0.4
		p[i] += d
		p[i+1] -= d
	}
	return p
}

func uniformProb(r *rand.Rand) float64 { return 1 - r.Float64() } // (0, 1]

// lowProb keeps occurrence probabilities small, inflating the candidate set
// (many weak dominators are needed before Pnew crosses the threshold).
func lowProb(r *rand.Rand) float64 { return 0.02 + 0.2*r.Float64() }

// clusterPoint draws from three fixed Gaussian clusters, stressing MBB
// overlap.
func clusterPoint(r *rand.Rand, dims int) geom.Point {
	centers := [][]float64{{0.2, 0.7, 0.4, 0.1, 0.9}, {0.8, 0.3, 0.6, 0.5, 0.2}, {0.5, 0.5, 0.1, 0.8, 0.6}}
	c := centers[r.Intn(3)]
	p := make(geom.Point, dims)
	for i := range p {
		p[i] = c[i] + r.NormFloat64()*0.06
	}
	return p
}

// spikyProb mixes exact ones (zero factors) with small probabilities.
func spikyProb(r *rand.Rand) float64 {
	switch r.Intn(4) {
	case 0:
		return 1.0
	case 1:
		return 0.05 + 0.1*r.Float64()
	default:
		return 1 - r.Float64()
	}
}

func TestDifferential(t *testing.T) {
	configs := []diffConfig{
		{name: "2d-uniform", dims: 2, window: 64, thresholds: []float64{0.3}, n: 700, checkEvery: 7, genPoint: uniformPoint, genProb: uniformProb},
		{name: "3d-uniform-q5", dims: 3, window: 100, thresholds: []float64{0.5}, n: 800, checkEvery: 11, genPoint: uniformPoint, genProb: uniformProb},
		{name: "4d-uniform", dims: 4, window: 48, thresholds: []float64{0.3}, n: 500, checkEvery: 9, genPoint: uniformPoint, genProb: uniformProb},
		{name: "2d-anti", dims: 2, window: 80, thresholds: []float64{0.3}, n: 700, checkEvery: 10, genPoint: antiPoint, genProb: uniformProb},
		{name: "3d-anti-small-fanout", dims: 3, window: 60, thresholds: []float64{0.25}, n: 600, checkEvery: 8, genPoint: antiPoint, genProb: uniformProb, fanout: 4},
		{name: "2d-multi-threshold", dims: 2, window: 40, thresholds: []float64{0.9, 0.6, 0.3}, n: 650, checkEvery: 7, genPoint: uniformPoint, genProb: uniformProb},
		{name: "2d-grid-ties-spiky", dims: 2, window: 32, thresholds: []float64{0.4}, n: 600, checkEvery: 5, genPoint: gridPoint, genProb: spikyProb},
		{name: "3d-grid-ties", dims: 3, window: 40, thresholds: []float64{0.35, 0.2}, n: 600, checkEvery: 6, genPoint: gridPoint, genProb: spikyProb},
		{name: "1d-degenerate", dims: 1, window: 50, thresholds: []float64{0.3}, n: 400, checkEvery: 5, genPoint: uniformPoint, genProb: uniformProb},
		{name: "5d-uniform", dims: 5, window: 40, thresholds: []float64{0.3}, n: 400, checkEvery: 9, genPoint: uniformPoint, genProb: uniformProb},
		{name: "2d-churn-tiny-fanout", dims: 2, window: 90, thresholds: []float64{0.7, 0.4, 0.2}, n: 1200, checkEvery: 13, genPoint: gridPoint, genProb: spikyProb, fanout: 4},
		{name: "3d-certain-heavy", dims: 3, window: 70, thresholds: []float64{0.5, 0.25}, n: 900, checkEvery: 11, genPoint: antiPoint, genProb: spikyProb, fanout: 4},
		{name: "2d-low-prob", dims: 2, window: 60, thresholds: []float64{0.05}, n: 700, checkEvery: 9, genPoint: uniformPoint, genProb: lowProb},
		{name: "3d-clustered", dims: 3, window: 70, thresholds: []float64{0.3}, n: 700, checkEvery: 9, genPoint: clusterPoint, genProb: uniformProb},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			runDifferential(t, cfg, 42)
		})
	}
}

func runDifferential(t *testing.T, cfg diffConfig, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	eng, err := NewEngine(Options{
		Dims: cfg.dims, Window: cfg.window,
		Thresholds: cfg.thresholds, MaxEntries: cfg.fanout,
	})
	if err != nil {
		t.Fatal(err)
	}
	qMin := cfg.thresholds[len(cfg.thresholds)-1]
	for i, q := range cfg.thresholds {
		for j := i + 1; j < len(cfg.thresholds); j++ {
			if cfg.thresholds[j] < q {
				q = cfg.thresholds[j]
			}
		}
		qMin = math.Min(qMin, q)
	}
	triv := naive.NewTrivial(cfg.window, qMin)
	exact := naive.NewExact(cfg.window)

	for i := 0; i < cfg.n; i++ {
		pt := cfg.genPoint(r, cfg.dims)
		p := cfg.genProb(r)
		if _, err := eng.Push(pt, p, int64(i)); err != nil {
			t.Fatalf("step %d: push: %v", i, err)
		}
		triv.Push(pt, p)
		exact.Push(pt, p)
		if (i+1)%cfg.checkEvery == 0 || i == cfg.n-1 {
			if err := compareAll(eng, triv, exact, cfg.thresholds, qMin, r); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
}

// compareAll cross-checks the three implementations.
func compareAll(eng *Engine, triv *naive.Trivial, exact *naive.Exact, thresholds []float64, qMin float64, r *rand.Rand) error {
	if err := eng.CheckInvariants(); err != nil {
		return fmt.Errorf("engine invariants: %w", err)
	}

	// Candidate sets must be identical across all three.
	engCands := eng.Candidates()
	engSeqs := make([]uint64, len(engCands))
	for i, c := range engCands {
		engSeqs[i] = c.Seq
	}
	trivSeqs := make([]uint64, 0, triv.Size())
	for _, e := range triv.Elems() {
		trivSeqs = append(trivSeqs, e.Seq)
	}
	sort.Slice(trivSeqs, func(a, b int) bool { return trivSeqs[a] < trivSeqs[b] })
	if err := equalSeqs("engine vs trivial candidates", engSeqs, trivSeqs); err != nil {
		return err
	}
	if err := equalSeqs("engine vs exact candidates", engSeqs, exact.Candidates(qMin)); err != nil {
		return err
	}

	// Probabilities per candidate: engine vs trivial (identical restricted
	// semantics) and engine Pnew vs the exact unrestricted Pnew (Theorem 2).
	trivBySeq := map[uint64]*naive.TrivialElem{}
	for _, e := range triv.Elems() {
		trivBySeq[e.Seq] = e
	}
	exactBySeq := map[uint64]naive.Probs{}
	for _, p := range exact.All() {
		exactBySeq[p.Seq] = p
	}
	restrBySeq := map[uint64]naive.Probs{}
	for _, p := range exact.RestrictedAll(qMin) {
		restrBySeq[p.Seq] = p
	}
	for _, c := range engCands {
		te := trivBySeq[c.Seq]
		if !feq(c.Pnew, te.Pnew.Float()) || !feq(c.Pold, te.Pold.Float()) {
			return fmt.Errorf("seq %d: engine (pnew=%g pold=%g) vs trivial (pnew=%g pold=%g)",
				c.Seq, c.Pnew, c.Pold, te.Pnew.Float(), te.Pold.Float())
		}
		xe := exactBySeq[c.Seq]
		if !feq(c.Pnew, xe.Pnew.Float()) {
			return fmt.Errorf("seq %d: engine pnew %g vs exact unrestricted %g (Theorem 2)",
				c.Seq, c.Pnew, xe.Pnew.Float())
		}
		re := restrBySeq[c.Seq]
		if !feq(c.Pold, re.Pold.Float()) {
			return fmt.Errorf("seq %d: engine pold %g vs exact restricted %g",
				c.Seq, c.Pold, re.Pold.Float())
		}
	}

	// Skylines: for each maintained threshold and a couple of ad-hoc
	// thresholds, the engine must agree with the exact oracle's
	// unrestricted classification (Corollaries 1 and 2).
	queryQs := append([]float64(nil), thresholds...)
	queryQs = append(queryQs, qMin+(1-qMin)*r.Float64(), qMin+(1-qMin)*r.Float64())
	for _, q := range queryQs {
		res, err := eng.Query(q)
		if err != nil {
			return err
		}
		got := make([]uint64, len(res))
		for i, re := range res {
			got[i] = re.Seq
		}
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		if err := equalSeqs(fmt.Sprintf("skyline q=%v", q), got, exact.Skyline(q)); err != nil {
			return err
		}
		// Reported Psky of skyline members equals the unrestricted value
		// (Corollary 1).
		for _, re := range res {
			if !feq(re.Psky, exactBySeq[re.Seq].Psky.Float()) {
				return fmt.Errorf("skyline q=%v seq %d: psky %g vs exact %g",
					q, re.Seq, re.Psky, exactBySeq[re.Seq].Psky.Float())
			}
		}
	}

	// TopK must equal the head of the sorted threshold-q skyline.
	full, err := eng.Query(qMin)
	if err != nil {
		return err
	}
	for _, k := range []int{1, 3, 10} {
		top, err := eng.TopK(k, qMin)
		if err != nil {
			return err
		}
		want := full
		if len(want) > k {
			want = want[:k]
		}
		if len(top) != len(want) {
			return fmt.Errorf("topk(%d): %d results, want %d", k, len(top), len(want))
		}
		for i := range top {
			if !feq(top[i].Psky, want[i].Psky) {
				return fmt.Errorf("topk(%d)[%d]: psky %g, want %g", k, i, top[i].Psky, want[i].Psky)
			}
		}
	}
	return nil
}

func equalSeqs(what string, got, want []uint64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: %d vs %d elements\n got %v\nwant %v", what, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("%s: position %d: %d vs %d\n got %v\nwant %v", what, i, got[i], want[i], got, want)
		}
	}
	return nil
}

func feq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-7*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestDifferentialTimeWindow drives the engine with a time-based window
// (Section VI) against an exact oracle whose expiry is replayed manually.
func TestDifferentialTimeWindow(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const period = 40 // time units
	eng, err := NewEngine(Options{Dims: 2, Window: 0, Thresholds: []float64{0.3}})
	if err != nil {
		t.Fatal(err)
	}
	exact := naive.NewExact(0)
	ts := int64(0)
	live := 0
	var tss []int64
	for i := 0; i < 600; i++ {
		ts += int64(r.Intn(3))
		pt := uniformPoint(r, 2)
		p := uniformProb(r)
		eng.ExpireOlderThan(ts - period)
		for live > 0 && tss[len(tss)-live] < ts-period {
			exact.ExpireOldest()
			live--
		}
		if _, err := eng.Push(pt, p, ts); err != nil {
			t.Fatal(err)
		}
		exact.Push(pt, p)
		tss = append(tss, ts)
		live++
		if (i+1)%9 == 0 {
			if err := eng.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			engCands := eng.Candidates()
			seqs := make([]uint64, len(engCands))
			for j, c := range engCands {
				seqs[j] = c.Seq
			}
			if err := equalSeqs("time-window candidates", seqs, exact.Candidates(0.3)); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			res, err := eng.Query(0.3)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]uint64, len(res))
			for j, re := range res {
				got[j] = re.Seq
			}
			sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
			if err := equalSeqs("time-window skyline", got, exact.Skyline(0.3)); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
}
