package core

import (
	"container/heap"
	"fmt"
	"sort"

	"pskyline/internal/aggrtree"
	"pskyline/internal/geom"
	"pskyline/internal/prob"
)

// Result is one element of a skyline answer.
type Result struct {
	Seq   uint64
	Point geom.Point
	P     float64
	TS    int64
	Psky  float64
	Pnew  float64
	Pold  float64
}

// resultOf clones the item's point: results outlive the item (published
// views, top-k rankings), and the engine recycles both items and their
// arena-backed coordinate slots when elements leave the window.
func resultOf(it *aggrtree.Item, pnew, pold prob.Factor) Result {
	return Result{
		Seq:   it.Seq,
		Point: it.Point.Clone(),
		P:     it.P,
		TS:    it.TS,
		Psky:  it.PF().Times(pnew).Times(pold).Float(),
		Pnew:  pnew.Float(),
		Pold:  pold.Float(),
	}
}

// Skyline returns the current q_1-skyline: every element whose skyline
// probability is at least the largest threshold, sorted by descending
// probability.
func (e *Engine) Skyline() []Result {
	res, _ := e.Query(e.qf[0])
	return res
}

// Query answers an ad-hoc skyline query with threshold q' (QSKY, Section
// IV-D): it returns every element with skyline probability ≥ q'. q' must be
// at least the smallest maintained threshold q_k. Bands entirely above q'
// are enumerated wholesale; the single band straddling q' is filtered with a
// branch-and-bound scan over the aggregate Psky bounds; bands below are
// skipped. No aggregate information is updated.
func (e *Engine) Query(qPrime float64) ([]Result, error) {
	qk := e.qf[len(e.qf)-1]
	if qPrime < qk {
		return nil, fmt.Errorf("core: ad-hoc threshold %v below maintained minimum %v", qPrime, qk)
	}
	if qPrime > 1 {
		return nil, fmt.Errorf("core: ad-hoc threshold %v above 1", qPrime)
	}
	qq := prob.FromFloat(qPrime)
	var out []Result
	for i, tr := range e.trees {
		if tr.Size() == 0 {
			continue
		}
		lo, hi, hiOK := e.bandBounds(i)
		if hiOK && !qq.Less(hi) {
			continue // whole band below q'
		}
		if i < len(e.qs) && lo.AtLeast(qq) {
			// Whole band qualifies.
			tr.WalkItems(func(it *aggrtree.Item, pnew, pold prob.Factor) bool {
				out = append(out, resultOf(it, pnew, pold))
				return true
			})
			continue
		}
		out = filterScan(tr.Root(), prob.One(), prob.One(), qq, out)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Psky != out[b].Psky {
			return out[a].Psky > out[b].Psky
		}
		return out[a].Seq < out[b].Seq
	})
	return out, nil
}

// filterScan collects elements with skyline probability ≥ qq from the
// subtree at n, pruning entries by their aggregate bounds. accNew/accOld
// carry the ancestors' lazy multipliers; the scan never mutates the tree.
func filterScan(n *aggrtree.Node, accNew, accOld prob.Factor, qq prob.Factor, out []Result) []Result {
	min := n.EffPskyMin().Times(accNew).Over(accOld)
	max := n.EffPskyMax().Times(accNew).Over(accOld)
	if max.Less(qq) {
		return out
	}
	accNew = accNew.Times(n.LazyNew())
	accOld = accOld.Times(n.LazyOld())
	if n.IsLeaf() {
		for _, it := range n.Items() {
			pnew := it.Pnew.Times(accNew)
			pold := it.Pold.Over(accOld)
			if it.PF().Times(pnew).Times(pold).AtLeast(qq) {
				out = append(out, resultOf(it, pnew, pold))
			}
		}
		return out
	}
	if min.AtLeast(qq) {
		// Whole subtree qualifies: enumerate without further checks.
		var walk func(m *aggrtree.Node, an, ao prob.Factor)
		walk = func(m *aggrtree.Node, an, ao prob.Factor) {
			an = an.Times(m.LazyNew())
			ao = ao.Times(m.LazyOld())
			if m.IsLeaf() {
				for _, it := range m.Items() {
					out = append(out, resultOf(it, it.Pnew.Times(an), it.Pold.Over(ao)))
				}
				return
			}
			for _, c := range m.Children() {
				walk(c, an, ao)
			}
		}
		for _, c := range n.Children() {
			walk(c, accNew, accOld)
		}
		return out
	}
	for _, c := range n.Children() {
		out = filterScan(c, accNew, accOld, qq, out)
	}
	return out
}

// pqEntry is a best-first frontier entry for TopK: an entry scored by its
// resolved maximum skyline probability, or an element scored by its exact
// skyline probability.
type pqEntry struct {
	score  prob.Factor
	n      *aggrtree.Node
	it     *aggrtree.Item
	result Result // valid when it != nil
	accNew prob.Factor
	accOld prob.Factor
}

type topkHeap []pqEntry

func (h topkHeap) Len() int            { return len(h) }
func (h topkHeap) Less(i, j int) bool  { return h[j].score.Less(h[i].score) }
func (h topkHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *topkHeap) Push(x interface{}) { *h = append(*h, x.(pqEntry)) }
func (h *topkHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TopK returns the k candidate elements with the highest skyline
// probabilities that are at least minQ (Section VI, probabilistic top-k
// skyline; the paper requires minQ ≥ q, here minQ ≥ q_k). It runs a
// best-first search over the Psky_max entry bounds of all band trees,
// expanding only entries that can still contribute, and never mutates
// aggregate information.
func (e *Engine) TopK(k int, minQ float64) ([]Result, error) {
	if k <= 0 {
		return nil, nil
	}
	qk := e.qf[len(e.qf)-1]
	if minQ < qk {
		return nil, fmt.Errorf("core: top-k threshold %v below maintained minimum %v", minQ, qk)
	}
	floor := prob.FromFloat(minQ)
	h := &topkHeap{}
	for _, tr := range e.trees {
		if tr.Size() > 0 {
			root := tr.Root()
			heap.Push(h, pqEntry{
				score:  root.EffPskyMax(),
				n:      root,
				accNew: prob.One(),
				accOld: prob.One(),
			})
		}
	}
	var out []Result
	for h.Len() > 0 && len(out) < k {
		top := heap.Pop(h).(pqEntry)
		if top.score.Less(floor) {
			break
		}
		if top.it != nil {
			out = append(out, top.result)
			continue
		}
		n := top.n
		accNew := top.accNew.Times(n.LazyNew())
		accOld := top.accOld.Times(n.LazyOld())
		if n.IsLeaf() {
			for _, it := range n.Items() {
				pnew := it.Pnew.Times(accNew)
				pold := it.Pold.Over(accOld)
				psky := it.PF().Times(pnew).Times(pold)
				heap.Push(h, pqEntry{score: psky, it: it, result: resultOf(it, pnew, pold)})
			}
			continue
		}
		for _, c := range n.Children() {
			heap.Push(h, pqEntry{
				score:  c.EffPskyMax().Times(accNew).Over(accOld),
				n:      c,
				accNew: accNew,
				accOld: accOld,
			})
		}
	}
	return out, nil
}

// Candidates returns every element of the candidate set S_{N,q_k} with its
// exact probabilities, sorted by arrival. It is intended for inspection and
// tests.
func (e *Engine) Candidates() []Result {
	var out []Result
	for _, tr := range e.trees {
		tr.WalkItems(func(it *aggrtree.Item, pnew, pold prob.Factor) bool {
			out = append(out, resultOf(it, pnew, pold))
			return true
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// WalkBand visits every element currently in threshold band i with its
// exact probabilities.
func (e *Engine) WalkBand(i int, fn func(Result) bool) {
	e.trees[i].WalkItems(func(it *aggrtree.Item, pnew, pold prob.Factor) bool {
		return fn(resultOf(it, pnew, pold))
	})
}
