package core

import (
	"bytes"
	"math"
	"testing"

	"pskyline/internal/aggrtree"
	"pskyline/internal/streamgen"
)

// drive pushes n elements from src into eng one at a time.
func drivePush(t *testing.T, eng *Engine, src *streamgen.Gen, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		el := src.Next()
		if _, err := eng.Push(el.Point, el.P, el.TS); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPushBatchMatchesSequential proves the engine's batch insert is
// byte-identical to the equivalent sequence of Push calls: same candidate
// set with bit-equal coordinates and probabilities, same counters, same
// tree shapes — verified by comparing full gob snapshots, which serialize
// items in tree-walk order.
func TestPushBatchMatchesSequential(t *testing.T) {
	cases := []struct {
		name   string
		dims   int
		window int
		qs     []float64
		batch  int
		n      int
	}{
		{"anti3-b137", 3, 400, []float64{0.3}, 137, 3000},
		{"anti3-b512-multi", 3, 300, []float64{0.7, 0.4}, 512, 2500},
		{"inde2-b1", 2, 250, []float64{0.5}, 1, 1200},
		{"anti4-b64-unbounded", 4, 0, []float64{0.3}, 64, 900},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			opts := Options{Dims: c.dims, Window: c.window, Thresholds: c.qs}
			seqEng, err := NewEngine(opts)
			if err != nil {
				t.Fatal(err)
			}
			batEng, err := NewEngine(opts)
			if err != nil {
				t.Fatal(err)
			}
			src1 := streamgen.New(c.dims, streamgen.Anticorrelated, streamgen.UniformProb{}, 11)
			src2 := streamgen.New(c.dims, streamgen.Anticorrelated, streamgen.UniformProb{}, 11)
			for done := 0; done < c.n; {
				k := c.batch
				if done+k > c.n {
					k = c.n - done
				}
				batch := make([]BatchElem, k)
				for i := 0; i < k; i++ {
					el := src2.Next()
					batch[i] = BatchElem{Point: el.Point, P: el.P, TS: el.TS}
				}
				first, err := batEng.PushBatch(batch)
				if err != nil {
					t.Fatal(err)
				}
				if first != uint64(done) {
					t.Fatalf("batch first seq %d, want %d", first, done)
				}
				drivePush(t, seqEng, src1, k)
				done += k
			}
			if err := batEng.CheckInvariants(); err != nil {
				t.Fatal(err)
			}

			sc, bc := seqEng.Candidates(), batEng.Candidates()
			if len(sc) != len(bc) {
				t.Fatalf("candidate count %d vs %d", len(bc), len(sc))
			}
			for i := range sc {
				s, b := sc[i], bc[i]
				if s.Seq != b.Seq {
					t.Fatalf("candidate %d: seq %d vs %d", i, b.Seq, s.Seq)
				}
				if math.Float64bits(s.Psky) != math.Float64bits(b.Psky) ||
					math.Float64bits(s.Pnew) != math.Float64bits(b.Pnew) ||
					math.Float64bits(s.Pold) != math.Float64bits(b.Pold) {
					t.Fatalf("seq %d: probabilities differ in bits: (%x,%x,%x) vs (%x,%x,%x)",
						s.Seq,
						math.Float64bits(b.Psky), math.Float64bits(b.Pnew), math.Float64bits(b.Pold),
						math.Float64bits(s.Psky), math.Float64bits(s.Pnew), math.Float64bits(s.Pold))
				}
				for d := range s.Point {
					if math.Float64bits(s.Point[d]) != math.Float64bits(b.Point[d]) {
						t.Fatalf("seq %d dim %d: coordinate bits differ", s.Seq, d)
					}
				}
			}
			if seqEng.Counters() != batEng.Counters() {
				t.Fatalf("counters diverged:\nseq   %+v\nbatch %+v", seqEng.Counters(), batEng.Counters())
			}

			var sBuf, bBuf bytes.Buffer
			if err := seqEng.Snapshot(&sBuf); err != nil {
				t.Fatal(err)
			}
			if err := batEng.Snapshot(&bBuf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sBuf.Bytes(), bBuf.Bytes()) {
				t.Fatal("snapshots differ: batch state is not byte-identical to sequential")
			}
		})
	}
}

// TestPushBatchValidatesUpFront checks that an invalid element anywhere in a
// batch fails the whole batch before any mutation.
func TestPushBatchValidatesUpFront(t *testing.T) {
	eng, err := NewEngine(Options{Dims: 2, Window: 100, Thresholds: []float64{0.3}})
	if err != nil {
		t.Fatal(err)
	}
	src := streamgen.New(2, streamgen.Independent, streamgen.UniformProb{}, 5)
	drivePush(t, eng, src, 50)
	var before bytes.Buffer
	if err := eng.Snapshot(&before); err != nil {
		t.Fatal(err)
	}
	bad := []BatchElem{
		{Point: []float64{0.1, 0.2}, P: 0.5},
		{Point: []float64{0.3, 0.4}, P: 0.5},
		{Point: []float64{0.5, 0.6}, P: 1.5}, // invalid probability
	}
	if _, err := eng.PushBatch(bad); err == nil {
		t.Fatal("invalid batch accepted")
	}
	var after bytes.Buffer
	if err := eng.Snapshot(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("failed batch mutated the engine")
	}
}

// TestSteadyStatePushAllocs pins the allocation budget of the steady-state
// ingestion hot path: once the window is full and the pools are warm, a Push
// must not allocate. The budget is an average of 1 allocation per Push to
// absorb rare slice growth inside the trees; the typical measured value is
// zero.
func TestSteadyStatePushAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	const window = 4096
	eng, err := NewEngine(Options{Dims: 3, Window: window, Thresholds: []float64{0.3}})
	if err != nil {
		t.Fatal(err)
	}
	src := streamgen.New(3, streamgen.Anticorrelated, streamgen.UniformProb{}, 7)
	drivePush(t, eng, src, 3*window)
	elems := make([]streamgen.Element, 8192)
	for i := range elems {
		elems[i] = src.Next()
	}
	i := 0
	avg := testing.AllocsPerRun(4000, func() {
		el := elems[i%len(elems)]
		i++
		if _, err := eng.Push(el.Point, el.P, el.TS); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 1.0
	if avg > budget {
		t.Fatalf("steady-state Push averaged %.2f allocs, budget %.1f", avg, budget)
	}
}

// TestEnginePoisonSoak churns an engine with pool poisoning enabled: every
// recycled node, item and arena slot is clobbered on free, so any stale
// reference into recycled memory surfaces as a NaN coordinate, a Zero
// factor or an invariant violation.
func TestEnginePoisonSoak(t *testing.T) {
	aggrtree.SetPoison(true)
	defer aggrtree.SetPoison(false)
	eng, err := NewEngine(Options{Dims: 3, Window: 600, Thresholds: []float64{0.6, 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	n := 8000
	if testing.Short() {
		n = 2000
	}
	src := streamgen.New(3, streamgen.Anticorrelated, streamgen.UniformProb{}, 17)
	for i := 0; i < n; i++ {
		el := src.Next()
		if _, err := eng.Push(el.Point, el.P, el.TS); err != nil {
			t.Fatal(err)
		}
		if (i+1)%250 == 0 || i == n-1 {
			if err := eng.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			for _, r := range eng.Skyline() {
				if math.IsNaN(r.Psky) || math.IsNaN(r.Point[0]) {
					t.Fatalf("step %d: poisoned value escaped into skyline: %+v", i, r)
				}
			}
			if _, err := eng.TopK(5, 0.3); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
}
