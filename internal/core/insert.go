package core

import (
	"pskyline/internal/aggrtree"
	"pskyline/internal/geom"
	"pskyline/internal/prob"
)

// nodeT is an entry target discovered by a probe, tagged with the band tree
// that holds it.
type nodeT struct {
	n    *aggrtree.Node
	band int
}

// itemT is an element target discovered by a probe.
type itemT struct {
	it   *aggrtree.Item
	band int
}

// itemMove is a pending reclassification of one element between band trees.
type itemMove struct {
	it       *aggrtree.Item
	from, to int
}

// insert runs the paper's Inserting(a_new) (Algorithm 4) generalized to
// threshold bands:
//
//  1. probe all band trees, computing Pold(a_new) from entries/elements that
//     dominate a_new and applying the lazy Pnew multiplier (1 − P(a_new)) to
//     entries/elements fully dominated by a_new (Probe C1/C2/C12 merged into
//     one classification descent);
//  2. classify the dominated targets against the candidate threshold q_k
//     (UpdateProb, Algorithm 9) into removals and survivors using the
//     Pnew_min/max entry bounds;
//  3. strip the removals' non-occurrence factors from the survivors' Pold
//     (UpdateOld) via a synchronous dominance join on entry Pnoc values;
//  4. evaluate band placement of the survivors (Place, Algorithm 10) at
//     entry granularity, descending only into entries that straddle a band
//     boundary;
//  5. apply the structural changes: delete removals, move reclassified
//     elements, and insert a_new into the band of its own Psky.
//
// Timing uses the engine's shared StageClock, armed by push1: expire's
// Observe (or the arming Reset when nothing expired) is the previous stage
// boundary, so each phase below costs a single monotonic clock read.
func (e *Engine) insert(it *aggrtree.Item) {
	om := it.OneMinusP()
	pold := prob.One()
	s := &e.scratch
	s.domN, s.domI = s.domN[:0], s.domI[:0]

	met := e.metrics

	// Phase 1: probe.
	for bi, tr := range e.trees {
		if tr.Size() > 0 {
			var ch bool
			pold, ch = e.probeInsert(tr.Root(), bi, it, om, pold, &s.domN, &s.domI)
			if ch {
				e.touch(bi)
			}
		}
	}
	if met != nil {
		met.span[SpanProbe] += int64(e.clk.Observe(&met.StageProbe))
	}

	// Phase 2: split the dominated set by the candidate threshold.
	qk := e.minQ()
	s.removedN, s.surviveN = s.removedN[:0], s.surviveN[:0]
	s.removedI, s.surviveI = s.removedI[:0], s.surviveI[:0]
	queue := append(s.queueN[:0], s.domN...)
	for len(queue) > 0 {
		tn := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		switch {
		case tn.n.EffPnewMax().Less(qk):
			s.removedN = append(s.removedN, tn)
		case tn.n.EffPnewMin().AtLeast(qk):
			s.surviveN = append(s.surviveN, tn)
		default:
			tn.n.Push()
			if tn.n.IsLeaf() {
				for _, x := range tn.n.Items() {
					if x.Pnew.Less(qk) {
						s.removedI = append(s.removedI, itemT{x, tn.band})
					} else {
						s.surviveI = append(s.surviveI, itemT{x, tn.band})
					}
				}
			} else {
				for _, c := range tn.n.Children() {
					queue = append(queue, nodeT{c, tn.band})
				}
			}
		}
	}
	e.scratch.queueN = queue[:0]
	// domI items sit at leaves the probe pushed, and no lazy lands on their
	// ancestors afterwards within this insertion, so their stored Pnew is
	// exact here.
	for _, x := range s.domI {
		if x.it.Pnew.Less(qk) {
			s.removedI = append(s.removedI, x)
		} else {
			s.surviveI = append(s.surviveI, x)
		}
	}

	// Phase 3: removals' factors leave the survivors' Pold.
	if (len(s.removedN) > 0 || len(s.removedI) > 0) && (len(s.surviveN) > 0 || len(s.surviveI) > 0) {
		e.updateOld(s.removedN, s.removedI, s.surviveN, s.surviveI)
	}
	if met != nil {
		met.span[SpanUpdateOld] += int64(e.clk.Observe(&met.StageUpdateOld))
	}

	// Phase 4: evaluate band placement of survivors (downward moves only
	// during insertion; see the Theorem 4 argument in DESIGN.md).
	s.moves = s.moves[:0]
	for _, tn := range s.surviveN {
		e.evalPlacement(tn, len(e.qs), &s.moves)
	}
	for _, x := range s.surviveI {
		e.evalItemPlacement(x, len(e.qs), &s.moves)
	}
	if met != nil {
		met.span[SpanPlace] += int64(e.clk.Observe(&met.StagePlace))
	}

	// Phase 5: structural changes. Whole removed subtrees are flattened to
	// items first: per-item deletion keeps every pending pointer valid
	// under the R-tree's restructuring (splits, condenses, root changes),
	// and elements are removed from the candidate set at most once each, so
	// the flattening stays amortized O(1) per arrival.
	for _, tn := range s.removedN {
		collectItems(tn.n, tn.band, &s.removedI)
	}
	e.counters.Removals += uint64(len(s.removedI))
	for _, x := range s.removedI {
		delete(e.inS, x.it.Seq)
		e.trees[x.band].DeleteItem(x.it)
		e.touch(x.band)
		e.emit(x.it, x.band, -1)
		e.freeItem(x.it)
	}
	e.applyMoves(s.moves)

	// Finally place a_new itself: Pnew(a_new) = 1 and Pold is the product
	// of the candidate dominators' non-occurrence probabilities.
	it.Pold = pold
	b := e.bandOf(it.Psky())
	e.trees[b].InsertItem(it)
	e.inS[it.Seq] = it
	e.touch(b)
	e.emit(it, -1, b)
	if met != nil {
		met.span[SpanApply] += int64(e.clk.Observe(&met.StageApply))
	}
}

// probeInsert classifies the subtree at n against the arriving element:
// entries fully dominating a_new contribute their Pnoc to Pold(a_new);
// entries fully dominated by a_new receive the lazy Pnew multiplier and join
// the dominated set; entries with a partial relation in either direction are
// pushed and resolved one level down. It reports whether any probability
// under n changed; ancestors' aggregates are refreshed on the unwind.
func (e *Engine) probeInsert(n *aggrtree.Node, band int, newIt *aggrtree.Item, om, pold prob.Factor, domN *[]nodeT, domI *[]itemT) (prob.Factor, bool) {
	e.counters.NodesVisited++
	// The d = 2/3 arms call the unrolled classifiers directly, skipping the
	// indirect call through the kernel table on every entry visited.
	var relDom, relSub geom.Relation
	switch e.dims {
	case 2:
		relDom, relSub = geom.ClassifyPoint2(n.Rect(), newIt.Point)
	case 3:
		relDom, relSub = geom.ClassifyPoint3(n.Rect(), newIt.Point)
	default:
		relDom, relSub = e.kern.ClassifyPoint(n.Rect(), newIt.Point)
	}
	if relDom == geom.DomFull {
		return pold.Times(n.Pnoc()), false
	}
	if relSub == geom.DomFull {
		if e.eager {
			n.ApplyDeepNew(om)
			e.counters.ItemsTouched += uint64(n.Count())
		} else {
			e.counters.LazyApplied++
			n.MulLazyNew(om)
		}
		*domN = append(*domN, nodeT{n, band})
		return pold, true
	}
	if relDom == geom.DomNone && relSub == geom.DomNone {
		return pold, false
	}
	if relSub == geom.DomNone {
		// Nothing under n can be dominated by a_new, and that holds for
		// every descendant too (child boxes only shrink, so p ⪯ c.Max would
		// imply p ⪯ n.Max). The subtree can only contribute dominators,
		// which involves rects, points and Pnoc — all lazy-independent — so
		// the descent needs neither Push nor a refresh on the unwind.
		if n.IsLeaf() {
			return e.foldLeafDominators(n, newIt.Point, pold), false
		}
		for _, c := range n.Children() {
			pold = e.probeDominators(c, newIt, pold)
		}
		return pold, false
	}
	n.Push()
	changed := false
	if n.IsLeaf() {
		e.counters.ItemsTouched += uint64(len(n.Items()))
		if relDom == geom.DomNone {
			// Nothing under n can dominate a_new; only the dominated side
			// of the per-item test is live.
			changed = e.leafMarkDominated(n, band, newIt.Point, om, domI)
		} else {
			pold, changed = e.leafProbeMutual(n, band, newIt.Point, om, pold, domI)
		}
	} else {
		for _, c := range n.Children() {
			var ch bool
			pold, ch = e.probeInsert(c, band, newIt, om, pold, domN, domI)
			changed = changed || ch
		}
	}
	if changed {
		n.RefreshProbs()
	}
	return pold, changed
}

// probeDominators is the read-only arm of probeInsert for subtrees that
// cannot contain anything a_new dominates: it accumulates the Pnoc factors
// of dominators of a_new without pushing lazies or refreshing aggregates.
func (e *Engine) probeDominators(n *aggrtree.Node, newIt *aggrtree.Item, pold prob.Factor) prob.Factor {
	e.counters.NodesVisited++
	var relDom geom.Relation
	switch e.dims {
	case 2:
		relDom, _ = geom.ClassifyPoint2(n.Rect(), newIt.Point)
	case 3:
		relDom, _ = geom.ClassifyPoint3(n.Rect(), newIt.Point)
	default:
		relDom, _ = e.kern.ClassifyPoint(n.Rect(), newIt.Point)
	}
	switch relDom {
	case geom.DomFull:
		return pold.Times(n.Pnoc())
	case geom.DomNone:
		return pold
	}
	if n.IsLeaf() {
		return e.foldLeafDominators(n, newIt.Point, pold)
	}
	for _, c := range n.Children() {
		pold = e.probeDominators(c, newIt, pold)
	}
	return pold
}

// joinEnt is one side of the UpdateOld dominance join: either a whole entry
// or a single element.
type joinEnt struct {
	n    *aggrtree.Node
	it   *aggrtree.Item
	band int
}

func (j joinEnt) rect() geom.Rect {
	if j.n != nil {
		return j.n.Rect()
	}
	return j.it.Rect()
}

// joinPair is one frontier element of the synchronous dominance join.
type joinPair struct{ r, s joinEnt }

func (j joinEnt) pnoc() prob.Factor {
	if j.n != nil {
		return j.n.Pnoc()
	}
	return j.it.OneMinusP()
}

// updateOld strips the non-occurrence factors of elements leaving the
// candidate set from the Pold of the surviving elements they dominate
// (UpdateOld(R3, R4) in Algorithm 9). Every removed dominator is older than
// every survivor it dominates (Lemma 2), so no arrival-order check is
// needed. The join works on entry Pnoc values, descending a pair only while
// the dominance relation is partial.
func (e *Engine) updateOld(removedN []nodeT, removedI []itemT, surviveN []nodeT, surviveI []itemT) {
	sc := &e.scratch
	rem, sur := sc.rem[:0], sc.sur[:0]
	for _, t := range removedN {
		rem = append(rem, joinEnt{n: t.n, band: t.band})
	}
	for _, x := range removedI {
		rem = append(rem, joinEnt{it: x.it, band: x.band})
	}
	for _, t := range surviveN {
		sur = append(sur, joinEnt{n: t.n, band: t.band})
	}
	for _, x := range surviveI {
		sur = append(sur, joinEnt{it: x.it, band: x.band})
	}
	stack := sc.pairs[:0]
	for _, r := range rem {
		for _, s := range sur {
			stack = append(stack, joinPair{r, s})
		}
	}
	defer func() {
		sc.rem, sc.sur, sc.pairs = rem[:0], sur[:0], stack[:0]
	}()
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		switch e.kern.RectRect(p.r.rect(), p.s.rect()) {
		case geom.DomNone:
		case geom.DomFull:
			e.stripPold(p.s, p.r.pnoc())
		case geom.DomPartial:
			switch {
			case p.r.n != nil:
				// Expand the removed side; Pnoc and rects of its children
				// are lazy-independent, so no push is needed.
				if p.r.n.IsLeaf() {
					for _, x := range p.r.n.Items() {
						stack = append(stack, joinPair{joinEnt{it: x, band: p.r.band}, p.s})
					}
				} else {
					for _, c := range p.r.n.Children() {
						stack = append(stack, joinPair{joinEnt{n: c, band: p.r.band}, p.s})
					}
				}
			case p.s.n != nil:
				p.s.n.Push()
				if p.s.n.IsLeaf() {
					for _, x := range p.s.n.Items() {
						stack = append(stack, joinPair{p.r, joinEnt{it: x, band: p.s.band}})
					}
				} else {
					for _, c := range p.s.n.Children() {
						stack = append(stack, joinPair{p.r, joinEnt{n: c, band: p.s.band}})
					}
				}
			default:
				// Two points are never in partial relation: Dominance on
				// degenerate rects decides fully either way.
				panic("core: partial dominance between two points")
			}
		}
	}
}

// stripPold removes the departed dominators' combined non-occurrence factor
// f from a survivor's Pold, raising its skyline probability.
func (e *Engine) stripPold(s joinEnt, f prob.Factor) {
	e.touch(s.band)
	if s.n != nil {
		if e.eager {
			s.n.ApplyDeepOld(f)
			e.counters.ItemsTouched += uint64(s.n.Count())
		} else {
			s.n.MulLazyOld(f)
		}
		aggrtree.RefreshProbsPath(s.n.Parent())
		return
	}
	s.it.Pold = s.it.Pold.Over(f)
	aggrtree.RefreshProbsPath(s.it.Leaf())
}

// evalPlacement decides, at entry granularity, which band every element
// under the target belongs to after this update, appending item-level moves
// for elements that change bands. Entries are descended only while their
// [Psky_min, Psky_max] range straddles a band boundary. Targets already in
// band `locked` are skipped: during insertion the bottom band cannot be left
// (Theorem 4 argument), and during expiry the top band cannot be left (Psky
// only rises).
func (e *Engine) evalPlacement(t nodeT, locked int, moves *[]itemMove) {
	if t.band == locked {
		return
	}
	min, max := t.n.EffPskyMin(), t.n.EffPskyMax()
	if e.fitsBand(t.band, min, max) {
		return
	}
	for j := 0; j <= len(e.qs); j++ {
		if j != t.band && e.fitsBand(j, min, max) {
			e.collectMoves(t.n, t.band, j, moves)
			return
		}
	}
	t.n.Push()
	if t.n.IsLeaf() {
		for _, x := range t.n.Items() {
			e.evalItemPlacement(itemT{x, t.band}, locked, moves)
		}
		return
	}
	for _, c := range t.n.Children() {
		e.evalPlacement(nodeT{c, t.band}, locked, moves)
	}
}

// evalItemPlacement appends a move if the element's exact skyline
// probability places it in a different band.
func (e *Engine) evalItemPlacement(x itemT, locked int, moves *[]itemMove) {
	if x.band == locked {
		return
	}
	// Placement targets sit on pushed paths (their leaves were pushed by
	// the descent that mutated them), so the stored Psky is exact.
	nb := e.bandOf(x.it.Psky())
	if nb != x.band {
		*moves = append(*moves, itemMove{it: x.it, from: x.band, to: nb})
	}
}

// collectMoves records a whole subtree's elements as moves to band `to`.
func (e *Engine) collectMoves(n *aggrtree.Node, from, to int, moves *[]itemMove) {
	if n.IsLeaf() {
		for _, x := range n.Items() {
			*moves = append(*moves, itemMove{it: x, from: from, to: to})
		}
		return
	}
	for _, c := range n.Children() {
		e.collectMoves(c, from, to, moves)
	}
}

// applyMoves performs the deferred band reclassifications. DeleteItem
// resolves pending lazy multipliers into each element, so it arrives in its
// destination tree with exact Pnew/Pold.
func (e *Engine) applyMoves(moves []itemMove) {
	e.counters.Moves += uint64(len(moves))
	for _, m := range moves {
		e.trees[m.from].DeleteItem(m.it)
		e.trees[m.to].InsertItem(m.it)
		e.touch(m.from)
		e.touch(m.to)
		e.emit(m.it, m.from, m.to)
	}
}

// collectItems flattens the elements of a subtree into the removal list.
func collectItems(n *aggrtree.Node, band int, out *[]itemT) {
	if n.IsLeaf() {
		for _, x := range n.Items() {
			*out = append(*out, itemT{x, band})
		}
		return
	}
	for _, c := range n.Children() {
		collectItems(c, band, out)
	}
}
