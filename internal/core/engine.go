// Package core implements the paper's continuous probabilistic skyline
// operator over sliding windows (Algorithms 1–11), generalized to multiple
// probability thresholds (Section IV-D).
//
// The engine maintains the candidate set S_{N,q} — the elements of the
// window whose Pnew is at least the smallest threshold — partitioned across
// k+1 aggregate R-trees: tree i < k holds the elements whose skyline
// probability falls in the band [q_i, q_{i-1}), and tree k holds the
// remaining candidates. With a single threshold this is exactly the paper's
// R_1 (the skyline SKY_{N,q}) and R_2 (S_{N,q} − SKY_{N,q}).
//
// Arrivals and expiries touch entries, not elements, wherever the aggregate
// bounds allow: probability updates are recorded as lazy entry multipliers,
// and subtrees are reclassified wholesale when their Psky_min/max bounds
// decide membership. Structural changes (removals from the candidate set
// and moves between band trees) are evaluated at entry granularity first
// and then applied, so the engine only ever enumerates the elements whose
// membership actually changes.
package core

import (
	"fmt"
	"sort"

	"pskyline/internal/aggrtree"
	"pskyline/internal/geom"
	"pskyline/internal/obs"
	"pskyline/internal/prob"
)

// Options configures an Engine.
type Options struct {
	// Dims is the dimensionality of the data space (≥ 1). Smaller values
	// dominate larger ones on every dimension.
	Dims int
	// Window is the count-based sliding window size N. If zero the window
	// is unbounded unless the caller drives expiry through ExpireOlderThan
	// (time-based windows, Section VI).
	Window int
	// Thresholds are the skyline probability thresholds q_1 > … > q_k,
	// each in (0, 1]. They are sorted descending and deduplicated. At
	// least one threshold is required.
	Thresholds []float64
	// MaxEntries is the aggregate R-tree fanout (0 selects the default).
	MaxEntries int
	// TrackArrivals keeps a queue of (seq, timestamp) pairs so that
	// ExpireOlderThan can drive time-based windows. It is implied by
	// Window == 0 and otherwise optional.
	TrackArrivals bool
	// EagerPropagation disables the lazy entry multipliers: dominance
	// updates are applied to every affected element immediately. This is
	// the ablation mode for the paper's aggregate-information design; it
	// is functionally identical and substantially slower on fat windows.
	EagerPropagation bool
	// OnChange, if set, receives a band-transition event for every element
	// whose threshold band changes, including arrivals (FromBand = −1) and
	// departures (ToBand = −1).
	OnChange func(Event)
	// Metrics, if set, enables per-stage latency histograms (see the
	// Metrics type). Recording is allocation-free; nil disables timing
	// entirely.
	Metrics *Metrics
	// DisableBlockScan turns off the SoA leaf-block dominance scans and
	// falls back to per-item pointer loops — the A/B control for the block
	// kernels. Results are identical either way (the differential tests
	// prove it); only the memory access pattern changes.
	DisableBlockScan bool
}

// Event reports an element moving between threshold bands. Band indices are
// 0-based over the sorted descending thresholds; band k (== number of
// thresholds) is the candidates-only band; −1 means outside the candidate
// set. For departures (ToBand == −1) the Item is only valid for the duration
// of the callback: the engine recycles departed items, so callbacks must
// copy what they need rather than retain the pointer.
type Event struct {
	Item     *aggrtree.Item
	FromBand int
	ToBand   int
}

// Engine is the continuous probabilistic skyline operator. No Engine method
// is safe to call concurrently with any other — queries read the same lazy
// multipliers that Push rewrites, so even "read-only" calls (Query, TopK,
// Candidates, BandResults) must be serialized with writes. The intended
// multi-goroutine shape is single-writer with snapshot reads: one goroutine
// owns the engine (taking a mutex if several produce), and read traffic is
// served from immutable copies extracted under that mutex via BandResults,
// as the pskyline package's Monitor does with its published views. Band
// generation counters (BandGen) make those copies cheap to keep current.
type Engine struct {
	dims   int
	window int
	qf     []float64     // thresholds, descending
	qs     []prob.Factor // thresholds as factors
	trees  []*aggrtree.Tree
	inS    map[uint64]*aggrtree.Item
	next   uint64

	bandGen []uint64 // per-band logical mutation counters (see view.go)

	trackArrivals bool
	arrivals      []arrival // FIFO of arrivals for time-based expiry

	onChange   func(Event)
	eager      bool
	maxEntries int
	metrics    *Metrics       // nil disables stage timing
	clk        obs.StageClock // armed once per arrival/expiry when metrics != nil
	arrivalNs  int64          // obs.NowNs stamp of the arrival/expiry being processed

	// Hot-path machinery: dimension-specialized dominance kernels selected
	// once at construction, and the recycling stores that make steady-state
	// ingestion allocation-free (see arena.go and aggrtree's pools).
	kern      *geom.Kernels
	bkern     *geom.BlockKernels
	blockScan bool // scan leaves through their SoA coordinate blocks
	arena     *pointArena
	items     *aggrtree.ItemPool
	nodes     *aggrtree.NodePool

	maxCand   int
	maxSky    int
	processed uint64

	counters Counters
	scratch  scratch
}

// Counters accumulate work metrics across the engine's lifetime. They
// quantify the paper's central performance claim — that arrivals and
// expiries visit few entries — and are reported by the experiment harness
// alongside timings.
type Counters struct {
	// Pushes and Expiries count processed arrivals and candidate expiries.
	Pushes, Expiries uint64
	// NodesVisited counts entries classified during probes and update
	// traversals.
	NodesVisited uint64
	// ItemsTouched counts elements examined or mutated individually.
	ItemsTouched uint64
	// LazyApplied counts entry-level lazy multiplications — probability
	// updates that covered a whole subtree without visiting its elements.
	LazyApplied uint64
	// Removals counts elements dropped from the candidate set before
	// expiry; Moves counts band reclassifications.
	Removals, Moves uint64
}

// Counters returns a snapshot of the engine's work counters.
func (e *Engine) Counters() Counters { return e.counters }

// scratch holds per-operation working buffers reused across pushes to keep
// the steady-state push path allocation-free.
type scratch struct {
	domN, queueN, removedN, surviveN, affN []nodeT
	domI, removedI, surviveI, affI         []itemT
	moves                                  []itemMove
	rem, sur                               []joinEnt
	pairs                                  []joinPair
}

// arrival is one (sequence, timestamp) pair of the time-window FIFO. The
// fields are exported for checkpoint encoding.
type arrival struct {
	Seq uint64
	TS  int64
}

// NewEngine returns an engine for the given options.
func NewEngine(opt Options) (*Engine, error) {
	if opt.Dims < 1 {
		return nil, fmt.Errorf("core: Dims must be >= 1, got %d", opt.Dims)
	}
	if opt.Window < 0 {
		return nil, fmt.Errorf("core: Window must be >= 0, got %d", opt.Window)
	}
	if len(opt.Thresholds) == 0 {
		return nil, fmt.Errorf("core: at least one threshold is required")
	}
	qf := append([]float64(nil), opt.Thresholds...)
	sort.Sort(sort.Reverse(sort.Float64Slice(qf)))
	dedup := qf[:1]
	for _, q := range qf[1:] {
		if q != dedup[len(dedup)-1] {
			dedup = append(dedup, q)
		}
	}
	qf = dedup
	for _, q := range qf {
		if q <= 0 || q > 1 {
			return nil, fmt.Errorf("core: threshold %v out of (0,1]", q)
		}
	}
	e := &Engine{
		dims:          opt.Dims,
		window:        opt.Window,
		qf:            qf,
		inS:           make(map[uint64]*aggrtree.Item),
		trackArrivals: opt.TrackArrivals || opt.Window == 0,
		onChange:      opt.OnChange,
		eager:         opt.EagerPropagation,
		maxEntries:    opt.MaxEntries,
		metrics:       opt.Metrics,
		kern:          geom.KernelsFor(opt.Dims),
		bkern:         geom.BlockKernelsFor(opt.Dims),
		blockScan:     !opt.DisableBlockScan,
		arena:         newPointArena(opt.Dims),
		items:         aggrtree.NewItemPool(),
		nodes:         aggrtree.NewNodePool(opt.Dims),
	}
	for _, q := range qf {
		e.qs = append(e.qs, prob.FromFloat(q))
	}
	// One node pool across all band trees: nodes migrate between trees when
	// thresholds change, so their freelists must be shared too.
	cfg := aggrtree.Config{MaxEntries: opt.MaxEntries, NodePool: e.nodes}
	for i := 0; i <= len(qf); i++ {
		e.trees = append(e.trees, aggrtree.New(opt.Dims, cfg))
	}
	e.bandGen = make([]uint64, len(qf)+1)
	return e, nil
}

// Dims returns the dimensionality of the engine's data space.
func (e *Engine) Dims() int { return e.dims }

// Window returns the count-based window size (0 for time-based windows).
func (e *Engine) Window() int { return e.window }

// Thresholds returns the sorted descending thresholds.
func (e *Engine) Thresholds() []float64 {
	return append([]float64(nil), e.qf...)
}

// Processed returns the number of elements pushed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// CandidateSize returns |S_{N,q_k}|, the number of elements currently kept.
func (e *Engine) CandidateSize() int { return len(e.inS) }

// SkylineSize returns |SKY_{N,q_1}|: the number of elements in the top band
// (skyline probability ≥ the largest threshold).
func (e *Engine) SkylineSize() int { return e.trees[0].Size() }

// BandSize returns the number of elements in threshold band i.
func (e *Engine) BandSize(i int) int { return e.trees[i].Size() }

// MaxCandidateSize returns the maximum candidate set size observed.
func (e *Engine) MaxCandidateSize() int { return e.maxCand }

// MaxSkylineSize returns the maximum top-band size observed.
func (e *Engine) MaxSkylineSize() int { return e.maxSky }

// minQ returns the smallest threshold q_k, the candidate-set bound.
func (e *Engine) minQ() prob.Factor { return e.qs[len(e.qs)-1] }

// bandOf returns the band index for a skyline probability.
func (e *Engine) bandOf(psky prob.Factor) int {
	for i, q := range e.qs {
		if psky.AtLeast(q) {
			return i
		}
	}
	return len(e.qs)
}

// bandBounds returns the [lo, hi) skyline probability bounds of band i,
// where hi for band 0 is unbounded (ok is false).
func (e *Engine) bandBounds(i int) (lo prob.Factor, hi prob.Factor, hiOK bool) {
	if i < len(e.qs) {
		lo = e.qs[i]
	} else {
		lo = prob.Zero()
	}
	if i > 0 {
		return lo, e.qs[i-1], true
	}
	return lo, prob.Factor{}, false
}

// fitsBand reports whether the closed probability range [min, max] lies
// entirely inside band i.
func (e *Engine) fitsBand(i int, min, max prob.Factor) bool {
	lo, hi, hiOK := e.bandBounds(i)
	if i < len(e.qs) {
		if min.Less(lo) {
			return false
		}
	} else if !max.Less(e.qs[len(e.qs)-1]) {
		// Bottom band requires max < q_k.
		return false
	}
	if hiOK && !max.Less(hi) {
		return false
	}
	return true
}

// treeIndexOf returns the band tree currently holding it, or −1 when the
// item is detached.
func (e *Engine) treeIndexOf(it *aggrtree.Item) int {
	n := it.Leaf()
	if n == nil {
		return -1
	}
	for n.Parent() != nil {
		n = n.Parent()
	}
	for i, tr := range e.trees {
		if tr.Root() == n {
			return i
		}
	}
	return -1
}

// emit fires the change callback if configured.
func (e *Engine) emit(it *aggrtree.Item, from, to int) {
	if e.onChange != nil && from != to {
		e.onChange(Event{Item: it, FromBand: from, ToBand: to})
	}
}

// newItem builds an item whose coordinates live in the engine's arena,
// recycling a pooled item when one is free.
func (e *Engine) newItem(pt geom.Point, p float64, seq uint64) *aggrtree.Item {
	return e.items.Get(e.arena.get(pt), p, seq)
}

// freeItem recycles an item that has permanently left the window, returning
// its coordinate slot to the arena. The caller guarantees no reference to
// the item or its point escapes the engine (published results are cloned).
func (e *Engine) freeItem(it *aggrtree.Item) {
	e.arena.put(e.items.Put(it))
}

// Push processes the arrival of a new element (Algorithm 1): with a
// count-based window it first expires the element falling out of the window,
// then runs the incremental insertion. ts is recorded for time-based
// windows and may be zero otherwise. The returned item is the engine's
// record of the element; it is recycled (and must not be read) once the
// element leaves the window or the candidate set.
func (e *Engine) Push(pt geom.Point, p float64, ts int64) (*aggrtree.Item, error) {
	if err := e.checkElem(pt, p); err != nil {
		return nil, err
	}
	return e.push1(pt, p, ts), nil
}

// checkElem validates one arrival without mutating anything.
func (e *Engine) checkElem(pt geom.Point, p float64) error {
	if len(pt) != e.dims {
		return fmt.Errorf("core: point dimensionality %d != %d", len(pt), e.dims)
	}
	if p <= 0 || p > 1 {
		return fmt.Errorf("core: occurrence probability %v out of (0,1]", p)
	}
	return nil
}

// PushAt processes an arrival carrying an externally assigned sequence
// number. It is the sharding seam: a sharded front end assigns global
// sequence numbers and routes each element to one shard engine, so a shard
// sees a sparse, strictly increasing subsequence of the global stream.
// Because the count-based auto-expiry arithmetic assumes dense sequences,
// PushAt requires caller-driven expiry (Window == 0, arrivals tracked):
// the caller expires by sequence (ExpireSeqBelow) or timestamp
// (ExpireOlderThan) before pushing.
func (e *Engine) PushAt(seq uint64, pt geom.Point, p float64, ts int64) (*aggrtree.Item, error) {
	if err := e.checkElem(pt, p); err != nil {
		return nil, err
	}
	if e.window != 0 {
		return nil, fmt.Errorf("core: PushAt requires caller-driven expiry (Window == 0), engine has window %d", e.window)
	}
	if seq < e.next {
		return nil, fmt.Errorf("core: PushAt sequence %d behind engine position %d", seq, e.next)
	}
	return e.push1At(seq, pt, p, ts), nil
}

// ExpireSeqBelow expires every tracked element whose sequence is strictly
// below bound. It is the count-window analogue of ExpireOlderThan for
// engines driven through PushAt, where sequence gaps make the dense
// seq−window arithmetic of push1 inapplicable. Returns the number of
// elements expired from the window (whether or not they were candidates).
func (e *Engine) ExpireSeqBelow(bound uint64) int {
	if !e.trackArrivals {
		panic("core: ExpireSeqBelow requires TrackArrivals or Window == 0")
	}
	n := 0
	for len(e.arrivals) > 0 && e.arrivals[0].Seq < bound {
		e.stampArrival()
		e.expire(e.arrivals[0].Seq)
		e.arrivals = e.arrivals[1:]
		n++
	}
	return n
}

// stampArrival takes the single monotonic clock reading for the
// arrival/expiry about to be processed: the one reading arms the stage clock
// (when metrics are on) and serves as the ArrivalNs timestamp consumers of
// OnChange events (the trace ring) attach to transitions, so stage timing
// and event timestamps are mutually consistent by construction. When neither
// consumer exists the clock is not read at all.
func (e *Engine) stampArrival() {
	if e.metrics == nil && e.onChange == nil {
		return
	}
	e.arrivalNs = obs.NowNs()
	if e.metrics != nil {
		e.clk.ResetAt(e.arrivalNs)
	}
}

// ArrivalNs returns the obs.NowNs reading taken when the engine began
// processing the current (or most recent) arrival or expiry — the shared
// timestamp OnChange consumers should attach to transition events. Zero
// until the first stamped arrival.
func (e *Engine) ArrivalNs() int64 { return e.arrivalNs }

// HorizonSeq returns the sequence of the oldest element still inside the
// window (e.next when the window is empty). Unlike next−fill arithmetic it
// is exact for sparse streams ingested through PushAt, where in-window
// sequences are not contiguous.
func (e *Engine) HorizonSeq() uint64 {
	if e.trackArrivals {
		if len(e.arrivals) > 0 {
			return e.arrivals[0].Seq
		}
		return e.next
	}
	return e.next - uint64(e.InWindow())
}

// push1 is the validated arrival path shared by Push and PushBatch. Both
// routes run this exact per-element sequence, which is what makes a batch
// byte-identical to the equivalent sequence of Push calls.
func (e *Engine) push1(pt geom.Point, p float64, ts int64) *aggrtree.Item {
	return e.push1At(e.next, pt, p, ts)
}

// push1At is push1 with the sequence made explicit. The dense path passes
// e.next, so the refactor is behavior-preserving; PushAt may pass any
// seq ≥ e.next.
func (e *Engine) push1At(seq uint64, pt geom.Point, p float64, ts int64) *aggrtree.Item {
	e.next = seq + 1
	e.processed++
	e.counters.Pushes++
	e.stampArrival()
	if e.window > 0 && seq >= uint64(e.window) {
		e.expire(seq - uint64(e.window))
	}
	it := e.newItem(pt, p, seq)
	it.TS = ts
	if e.trackArrivals {
		e.arrivals = append(e.arrivals, arrival{Seq: seq, TS: ts})
	}
	e.insert(it)
	if c := len(e.inS); c > e.maxCand {
		e.maxCand = c
	}
	if s := e.trees[0].Size(); s > e.maxSky {
		e.maxSky = s
	}
	return it
}

// BatchElem is one arrival of a batch.
type BatchElem struct {
	Point geom.Point
	P     float64
	TS    int64
}

// PushBatch processes the elements in order as one engine-level operation.
// The final engine state is byte-identical to calling Push once per element
// in the same order — each element still runs the full expire-then-insert
// sequence — but the mechanical work around that sequence is amortized:
// the whole batch is validated before any mutation (an invalid element
// leaves the engine untouched, unlike a failing looped Push which keeps its
// prefix), and the time-window arrival FIFO grows once instead of per call.
// It returns the sequence number assigned to the first element; elements of
// the batch receive consecutive sequence numbers from there.
func (e *Engine) PushBatch(elems []BatchElem) (uint64, error) {
	for i := range elems {
		if err := e.checkElem(elems[i].Point, elems[i].P); err != nil {
			return 0, fmt.Errorf("core: batch element %d: %w", i, err)
		}
	}
	first := e.next
	if e.trackArrivals {
		if need := len(e.arrivals) + len(elems); need > cap(e.arrivals) {
			grown := make([]arrival, len(e.arrivals), need)
			copy(grown, e.arrivals)
			e.arrivals = grown
		}
	}
	for i := range elems {
		e.push1(elems[i].Point, elems[i].P, elems[i].TS)
	}
	return first, nil
}

// ExpireOlderThan expires, for time-based windows (Section VI), every
// element whose timestamp is strictly below cutoff. Timestamps must be
// non-decreasing across Push calls. It returns the number of elements
// expired from the window (whether or not they were candidates).
func (e *Engine) ExpireOlderThan(cutoff int64) int {
	if !e.trackArrivals {
		panic("core: ExpireOlderThan requires TrackArrivals or Window == 0")
	}
	n := 0
	for len(e.arrivals) > 0 && e.arrivals[0].TS < cutoff {
		e.stampArrival()
		e.expire(e.arrivals[0].Seq)
		e.arrivals = e.arrivals[1:]
		n++
	}
	return n
}

// CheckInvariants verifies every band tree (for tests).
func (e *Engine) CheckInvariants() error {
	for i, tr := range e.trees {
		if err := tr.CheckInvariants(); err != nil {
			return fmt.Errorf("tree %d: %w", i, err)
		}
	}
	total := 0
	for _, tr := range e.trees {
		total += tr.Size()
	}
	if total != len(e.inS) {
		return fmt.Errorf("tree sizes sum %d != candidate map %d", total, len(e.inS))
	}
	return nil
}
