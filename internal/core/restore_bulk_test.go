package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"pskyline/internal/streamgen"
)

// gobQueryResults canonically serializes everything an engine can answer:
// the candidate set, the skyline, and a q-prime query per configured
// threshold. Candidates sorts by sequence and Query sorts by (Psky desc,
// Seq asc), so both orders are properties of the engine state, not of tree
// shape — byte equality here means the engines are observationally
// identical.
func gobQueryResults(t *testing.T, e *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(e.Candidates()); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(e.Skyline()); err != nil {
		t.Fatal(err)
	}
	for _, q := range e.Thresholds() {
		res, err := e.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(res); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// compareCandidates asserts two engines hold the same candidate set with
// probabilities equal to float tolerance (Candidates sorts by sequence, so
// element-wise comparison is shape-independent).
func compareCandidates(t *testing.T, step int, a, b *Engine) {
	t.Helper()
	ca, cb := a.Candidates(), b.Candidates()
	if len(ca) != len(cb) {
		t.Fatalf("step %d: candidate counts diverged: %d vs %d", step, len(ca), len(cb))
	}
	for i := range ca {
		x, y := ca[i], cb[i]
		if x.Seq != y.Seq {
			t.Fatalf("step %d: candidate %d seq %d vs %d", step, i, x.Seq, y.Seq)
		}
		if !feq(x.Psky, y.Psky) || !feq(x.Pnew, y.Pnew) || !feq(x.Pold, y.Pold) {
			t.Fatalf("step %d: seq %d probabilities diverged: %+v vs %+v", step, x.Seq, x, y)
		}
	}
}

// TestRestoreBulkLoadMatchesIncremental checks satellite guarantee (4): an
// engine restored via STR bulk loading answers every query byte-for-byte
// identically (gob-encoded) to one restored by incrementally inserting the
// same window, and both stay identical while the stream continues.
func TestRestoreBulkLoadMatchesIncremental(t *testing.T) {
	for _, dims := range []int{2, 3, 5} {
		dims := dims
		t.Run(fmt.Sprintf("d=%d", dims), func(t *testing.T) {
			const window = 400
			orig, err := NewEngine(Options{
				Dims:       dims,
				Window:     window,
				Thresholds: []float64{0.6, 0.3},
			})
			if err != nil {
				t.Fatal(err)
			}
			src := streamgen.New(dims, streamgen.Anticorrelated, streamgen.UniformProb{}, int64(70+dims))
			drivePush(t, orig, src, 3*window)

			var ckpt bytes.Buffer
			if err := orig.Snapshot(&ckpt); err != nil {
				t.Fatal(err)
			}
			bulk, err := Restore(bytes.NewReader(ckpt.Bytes()), RestoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			inc, err := Restore(bytes.NewReader(ckpt.Bytes()), RestoreOptions{IncrementalRestore: true})
			if err != nil {
				t.Fatal(err)
			}
			for name, e := range map[string]*Engine{"bulk": bulk, "incremental": inc} {
				if err := e.CheckInvariants(); err != nil {
					t.Fatalf("%s restore: %v", name, err)
				}
			}
			origQ := gobQueryResults(t, orig)
			if got := gobQueryResults(t, bulk); !bytes.Equal(got, origQ) {
				t.Fatal("bulk-loaded restore answers queries differently from the snapshotted engine")
			}
			if got := gobQueryResults(t, inc); !bytes.Equal(got, origQ) {
				t.Fatal("incremental restore answers queries differently from the snapshotted engine")
			}

			// Continue the stream on both restored engines in lockstep: the
			// equivalence must survive further inserts, expiries and splits.
			// Byte-identity cannot hold here — the differently shaped trees
			// accumulate lazy multipliers at different subtree granularity,
			// so float rounding drifts within tolerance — but the candidate
			// sets and probabilities must agree semantically throughout.
			for i := 0; i < 2*window; i++ {
				el := src.Next()
				if _, err := bulk.Push(el.Point, el.P, el.TS); err != nil {
					t.Fatal(err)
				}
				if _, err := inc.Push(el.Point, el.P, el.TS); err != nil {
					t.Fatal(err)
				}
				if (i+1)%100 == 0 {
					compareCandidates(t, i, bulk, inc)
				}
			}
			if err := bulk.CheckInvariants(); err != nil {
				t.Fatalf("bulk engine after continuation: %v", err)
			}
			if err := inc.CheckInvariants(); err != nil {
				t.Fatalf("incremental engine after continuation: %v", err)
			}
		})
	}
}
