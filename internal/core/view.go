package core

import (
	"sort"
)

// Band generations and view extraction.
//
// The engine counts, per threshold band, every *logical* mutation of the
// band's contents: element insertions, removals and band moves, and any
// probability change (exact or via a lazy entry multiplier) of an element
// held by the band. Representation-only changes — lazy push-downs, R-tree
// splits and condenses — do not advance a generation, because they leave
// every element's resolved probabilities untouched.
//
// A caller that extracts band contents with BandResults can therefore cache
// the result and reuse it for as long as BandGen reports the same value:
// an unchanged generation guarantees the cached slice is byte-for-byte what
// a fresh extraction would produce. This is the contract the pskyline
// package's copy-on-write read views are built on.
//
// By Theorem 4 (candidate-set sufficiency), the extracted bands together
// hold exactly S_{N,q_k}, which suffices to answer the continuous skyline,
// any ad-hoc query with q' ≥ q_k, and probabilistic top-k with minQ ≥ q_k —
// so a snapshot of the bands is a complete read-only replica of the
// operator's answerable state.

// touch advances band i's generation.
func (e *Engine) touch(i int) { e.bandGen[i]++ }

// touchAll advances every band's generation (threshold changes renumber
// bands, invalidating any cached extraction wholesale).
func (e *Engine) touchAll() {
	for i := range e.bandGen {
		e.bandGen[i]++
	}
}

// BandGen returns the generation counter of threshold band i. The counter
// advances on every logical mutation of the band's contents; equal
// generations guarantee identical BandResults output.
func (e *Engine) BandGen(i int) uint64 { return e.bandGen[i] }

// NextSeq returns the sequence number the next pushed element will receive.
func (e *Engine) NextSeq() uint64 { return e.next }

// BandResults extracts threshold band i: every element currently in the
// band with its exact (lazy-resolved) probabilities, sorted by descending
// skyline probability with ties broken by ascending sequence number — the
// same order Query reports. The extraction is read-only; it never modifies
// aggregate information.
func (e *Engine) BandResults(i int) []Result {
	tr := e.trees[i]
	out := make([]Result, 0, tr.Size())
	e.WalkBand(i, func(r Result) bool {
		out = append(out, r)
		return true
	})
	sort.Slice(out, func(a, b int) bool {
		if out[a].Psky != out[b].Psky {
			return out[a].Psky > out[b].Psky
		}
		return out[a].Seq < out[b].Seq
	})
	return out
}
