package core

import (
	"math/rand"
	"testing"

	"pskyline/internal/geom"
)

func mustEngine(t *testing.T, opt Options) *Engine {
	t.Helper()
	e, err := NewEngine(opt)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestQueriesOnEmptyEngine(t *testing.T) {
	e := mustEngine(t, Options{Dims: 2, Window: 10, Thresholds: []float64{0.3}})
	if sky := e.Skyline(); len(sky) != 0 {
		t.Fatalf("empty skyline = %v", sky)
	}
	if res, err := e.Query(0.5); err != nil || len(res) != 0 {
		t.Fatalf("empty query = %v, %v", res, err)
	}
	if top, err := e.TopK(5, 0.3); err != nil || len(top) != 0 {
		t.Fatalf("empty topk = %v, %v", top, err)
	}
	if c := e.Candidates(); len(c) != 0 {
		t.Fatalf("empty candidates = %v", c)
	}
}

func TestQueryBoundsValidation(t *testing.T) {
	e := mustEngine(t, Options{Dims: 2, Window: 10, Thresholds: []float64{0.3}})
	if _, err := e.Query(0.2); err == nil {
		t.Error("query below q accepted")
	}
	if _, err := e.Query(1.5); err == nil {
		t.Error("query above 1 accepted")
	}
	if _, err := e.Query(1.0); err != nil {
		t.Errorf("query at exactly 1: %v", err)
	}
	if _, err := e.TopK(3, 0.1); err == nil {
		t.Error("topk below q accepted")
	}
	if top, err := e.TopK(0, 0.3); err != nil || top != nil {
		t.Errorf("topk k=0 = %v, %v", top, err)
	}
	if top, err := e.TopK(-2, 0.3); err != nil || top != nil {
		t.Errorf("topk k<0 = %v, %v", top, err)
	}
}

func TestTopKLargerThanPopulation(t *testing.T) {
	e := mustEngine(t, Options{Dims: 2, Window: 10, Thresholds: []float64{0.3}})
	e.Push(geom.Point{1, 2}, 0.9, 0)
	e.Push(geom.Point{2, 1}, 0.8, 1)
	top, err := e.TopK(100, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("topk(100) = %d results", len(top))
	}
	if top[0].Psky < top[1].Psky {
		t.Fatal("topk not sorted")
	}
}

func TestWalkBandEarlyStop(t *testing.T) {
	e := mustEngine(t, Options{Dims: 2, Window: 50, Thresholds: []float64{0.3}})
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		e.Push(geom.Point{r.Float64(), r.Float64()}, 1-r.Float64(), int64(i))
	}
	visited := 0
	e.WalkBand(1, func(Result) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Fatalf("early stop visited %d", visited)
	}
}

func TestBandSizesSumToCandidates(t *testing.T) {
	e := mustEngine(t, Options{Dims: 3, Window: 100, Thresholds: []float64{0.7, 0.4, 0.2}})
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		pt := geom.Point{r.Float64(), r.Float64(), r.Float64()}
		e.Push(pt, 1-r.Float64(), int64(i))
	}
	sum := 0
	for b := 0; b <= 3; b++ {
		sum += e.BandSize(b)
	}
	if sum != e.CandidateSize() {
		t.Fatalf("band sizes sum %d != candidates %d", sum, e.CandidateSize())
	}
}

func TestEngineOptionValidation(t *testing.T) {
	bad := []Options{
		{Dims: 0, Window: 10, Thresholds: []float64{0.3}},
		{Dims: 2, Window: -1, Thresholds: []float64{0.3}},
		{Dims: 2, Window: 10},
		{Dims: 2, Window: 10, Thresholds: []float64{-0.1}},
		{Dims: 2, Window: 10, Thresholds: []float64{0}},
		{Dims: 2, Window: 10, Thresholds: []float64{1.01}},
	}
	for i, opt := range bad {
		if _, err := NewEngine(opt); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Thresholds are sorted descending and deduplicated.
	e := mustEngine(t, Options{Dims: 2, Window: 10, Thresholds: []float64{0.3, 0.9, 0.3, 0.6}})
	got := e.Thresholds()
	want := []float64{0.9, 0.6, 0.3}
	if len(got) != len(want) {
		t.Fatalf("thresholds = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("thresholds = %v, want %v", got, want)
		}
	}
}

func TestPushValidationEngine(t *testing.T) {
	e := mustEngine(t, Options{Dims: 2, Window: 10, Thresholds: []float64{0.3}})
	if _, err := e.Push(geom.Point{1}, 0.5, 0); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := e.Push(geom.Point{1, 2}, 0, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := e.Push(geom.Point{1, 2}, 1.1, 0); err == nil {
		t.Error("p>1 accepted")
	}
}

func TestExpireOlderThanRequiresTracking(t *testing.T) {
	e := mustEngine(t, Options{Dims: 2, Window: 10, Thresholds: []float64{0.3}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without arrival tracking")
		}
	}()
	e.ExpireOlderThan(5)
}

func TestTrackArrivalsWithCountWindow(t *testing.T) {
	// Both a count window and time-based expiry can be combined explicitly.
	e := mustEngine(t, Options{Dims: 1, Window: 100, Thresholds: []float64{0.5}, TrackArrivals: true})
	// Ascending values: older elements dominate newer ones, so Pnew stays 1
	// and every element remains a candidate until expiry.
	for i := 0; i < 10; i++ {
		e.Push(geom.Point{float64(i)}, 1, int64(i))
	}
	n := e.ExpireOlderThan(5) // expires ts 0..4
	if n != 5 {
		t.Fatalf("expired %d arrivals, want 5", n)
	}
	if e.CandidateSize() != 5 {
		t.Fatalf("candidates = %d", e.CandidateSize())
	}
}
