package core

import (
	"pskyline/internal/obs"
)

// Metrics is the engine's per-stage latency instrumentation: one log2
// nanosecond histogram per phase of the arrival/expiry pipeline. Pass one
// via Options.Metrics (or RestoreOptions.Metrics) to enable recording; a
// nil Metrics disables all timing, leaving the hot path untouched.
//
// Recording is allocation-free and wait-free (plain atomic load/store pairs
// into fixed bucket arrays — single writer, see internal/obs), so the
// pinned steady-state allocation budget of Push holds with metrics enabled;
// the added cost is one monotonic clock read per stage boundary (the
// engine's shared StageClock), a few percent of a push. The histograms may
// be read (Snapshot) from any goroutine while the engine runs.
//
// Stage boundaries follow the paper's algorithms:
//
//   - StageExpire: one candidate expiry (Algorithm 11), from band removal
//     through the upward moves it triggers. Non-candidate expiries are free
//     and are not recorded.
//   - StageProbe: the classification descent of Inserting(a_new)
//     (Algorithm 4 phase 1) — dominator accumulation and lazy Pnew
//     multipliers.
//   - StageUpdateOld: splitting the dominated set by the candidate
//     threshold and stripping removed elements' factors from survivors
//     (UpdateProb/UpdateOld, Algorithm 9).
//   - StagePlace: band placement evaluation of the survivors
//     (Place, Algorithm 10).
//   - StageApply: applying the structural changes — deletions, band moves,
//     and the insertion of a_new itself.
type Metrics struct {
	StageExpire    obs.Histogram
	StageProbe     obs.Histogram
	StageUpdateOld obs.Histogram
	StagePlace     obs.Histogram
	StageApply     obs.Histogram

	// span accumulates the same stage durations over the current write
	// operation (one Push, or one batch): the owner resets it before the
	// operation and reads it after, to attach a stage breakdown to
	// per-operation flight records. Plain fields — single writer under the
	// owner's lock, like the engine itself; the accumulation reuses the
	// duration each Observe already measured, so it adds no clock reads.
	span [NumSpanStages]int64
}

// Span stage indices into the per-operation accumulator, in pipeline order.
const (
	SpanExpire = iota
	SpanProbe
	SpanUpdateOld
	SpanPlace
	SpanApply
	NumSpanStages
)

// SpanStageNames names the span stages, indexed by the Span* constants.
var SpanStageNames = [NumSpanStages]string{"expire", "probe", "update_old", "place", "apply"}

// ResetSpan clears the per-operation stage accumulator. Single writer.
func (m *Metrics) ResetSpan() { m.span = [NumSpanStages]int64{} }

// SpanNs returns the stage durations accumulated since the last ResetSpan,
// in nanoseconds by span stage index. Single writer.
func (m *Metrics) SpanNs() [NumSpanStages]int64 { return m.span }

// StageHistograms returns the stage histograms paired with their short
// names, in pipeline order — the iteration exporters and summaries use.
func (m *Metrics) StageHistograms() []struct {
	Name string
	Hist *obs.Histogram
} {
	return []struct {
		Name string
		Hist *obs.Histogram
	}{
		{"expire", &m.StageExpire},
		{"probe", &m.StageProbe},
		{"update_old", &m.StageUpdateOld},
		{"place", &m.StagePlace},
		{"apply", &m.StageApply},
	}
}

// Metrics returns the engine's instrumentation block (nil when disabled).
func (e *Engine) Metrics() *Metrics { return e.metrics }

// InWindow returns the number of stream elements currently inside the
// sliding window: min(processed, N) for count-based windows, the length of
// the arrival queue for time-based ones. This is the N the analytical size
// bounds of internal/stats should be evaluated at.
func (e *Engine) InWindow() int {
	if e.window > 0 {
		if e.processed < uint64(e.window) {
			return int(e.processed)
		}
		return e.window
	}
	return len(e.arrivals)
}
