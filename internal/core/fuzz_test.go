package core

import (
	"sort"
	"testing"

	"pskyline/internal/geom"
	"pskyline/internal/naive"
)

// FuzzEngine decodes a byte stream into a sequence of pushes and checks the
// engine against the exact oracle plus its own invariants. Run with
// `go test -fuzz FuzzEngine ./internal/core` to explore; the seed corpus
// runs as a normal test.
func FuzzEngine(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 254, 253, 1, 2, 3, 128, 128, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Add([]byte("probabilistic skyline over sliding windows"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		// Header byte 0: dims 1..3; byte 1: window 1..32; byte 2: q.
		dims := 1 + int(data[0]%3)
		window := 1 + int(data[1]%32)
		q := 0.05 + float64(data[2]%90)/100
		data = data[3:]

		eng, err := NewEngine(Options{Dims: dims, Window: window, Thresholds: []float64{q}})
		if err != nil {
			t.Fatal(err)
		}
		exact := naive.NewExact(window)

		// Each element consumes dims+1 bytes: coordinates on a small grid
		// (to provoke ties) and a probability in (0, 1].
		step := dims + 1
		count := 0
		for i := 0; i+step <= len(data) && count < 200; i += step {
			pt := make(geom.Point, dims)
			for j := 0; j < dims; j++ {
				pt[j] = float64(data[i+j] % 8)
			}
			p := float64(1+int(data[i+dims]%100)) / 100
			if _, err := eng.Push(pt, p, int64(count)); err != nil {
				t.Fatal(err)
			}
			exact.Push(pt, p)
			count++
		}
		if count == 0 {
			return
		}
		if err := eng.CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
		cands := eng.Candidates()
		seqs := make([]uint64, len(cands))
		for i, c := range cands {
			seqs[i] = c.Seq
		}
		want := exact.Candidates(q)
		if len(seqs) != len(want) {
			t.Fatalf("candidates %v, want %v", seqs, want)
		}
		for i := range seqs {
			if seqs[i] != want[i] {
				t.Fatalf("candidates %v, want %v", seqs, want)
			}
		}
		res, err := eng.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]uint64, len(res))
		for i, r := range res {
			got[i] = r.Seq
		}
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		wantSky := exact.Skyline(q)
		if len(got) != len(wantSky) {
			t.Fatalf("skyline %v, want %v", got, wantSky)
		}
		for i := range got {
			if got[i] != wantSky[i] {
				t.Fatalf("skyline %v, want %v", got, wantSky)
			}
		}
	})
}
