package core

import (
	"math/rand"
	"sort"
	"testing"

	"pskyline/internal/naive"
	"pskyline/internal/streamgen"
)

// TestSoakAgainstTrivial runs long streams from every generator family
// through the engine and the trivial oracle (which shares the restricted
// candidate-set semantics), comparing full state at intervals. This is the
// heavyweight confidence test; it is trimmed under -short.
func TestSoakAgainstTrivial(t *testing.T) {
	n := 30_000
	if testing.Short() {
		n = 4_000
	}
	type cfg struct {
		name   string
		dims   int
		dist   streamgen.Distribution
		pm     streamgen.ProbModel
		window int
		qs     []float64
		fanout int
	}
	cases := []cfg{
		{"anti3-uniform", 3, streamgen.Anticorrelated, streamgen.UniformProb{}, 2000, []float64{0.3}, 0},
		{"inde4-normal", 4, streamgen.Independent, streamgen.NormalProb{Mu: 0.3, Sd: 0.3}, 1500, []float64{0.2}, 8},
		{"corr2-uniform", 2, streamgen.Correlated, streamgen.UniformProb{}, 2500, []float64{0.5}, 0},
		{"anti2-multi", 2, streamgen.Anticorrelated, streamgen.UniformProb{}, 1200, []float64{0.8, 0.5, 0.3}, 4},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			eng, err := NewEngine(Options{Dims: c.dims, Window: c.window, Thresholds: c.qs, MaxEntries: c.fanout})
			if err != nil {
				t.Fatal(err)
			}
			qMin := c.qs[len(c.qs)-1]
			triv := naive.NewTrivial(c.window, qMin)
			src := streamgen.New(c.dims, c.dist, c.pm, 99)
			for i := 0; i < n; i++ {
				el := src.Next()
				if _, err := eng.Push(el.Point, el.P, el.TS); err != nil {
					t.Fatal(err)
				}
				triv.Push(el.Point, el.P)
				if (i+1)%500 != 0 && i != n-1 {
					continue
				}
				if err := eng.CheckInvariants(); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
				if eng.CandidateSize() != triv.Size() {
					t.Fatalf("step %d: |S| %d vs trivial %d", i, eng.CandidateSize(), triv.Size())
				}
				// Full probability agreement per candidate.
				trivBySeq := map[uint64]*naive.TrivialElem{}
				for _, te := range triv.Elems() {
					trivBySeq[te.Seq] = te
				}
				for _, cand := range eng.Candidates() {
					te, ok := trivBySeq[cand.Seq]
					if !ok {
						t.Fatalf("step %d: engine candidate %d unknown to trivial", i, cand.Seq)
					}
					if !feq(cand.Pnew, te.Pnew.Float()) || !feq(cand.Pold, te.Pold.Float()) {
						t.Fatalf("step %d seq %d: (%g,%g) vs (%g,%g)",
							i, cand.Seq, cand.Pnew, cand.Pold, te.Pnew.Float(), te.Pold.Float())
					}
				}
				// Per-threshold skylines.
				for _, q := range c.qs {
					res, err := eng.Query(q)
					if err != nil {
						t.Fatal(err)
					}
					want := triv.Skyline(q)
					if len(res) != len(want) {
						t.Fatalf("step %d q=%v: skyline %d vs %d", i, q, len(res), len(want))
					}
					got := make([]uint64, len(res))
					for j, re := range res {
						got[j] = re.Seq
					}
					ws := make([]uint64, len(want))
					for j, te := range want {
						ws[j] = te.Seq
					}
					sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
					sort.Slice(ws, func(a, b int) bool { return ws[a] < ws[b] })
					for j := range got {
						if got[j] != ws[j] {
							t.Fatalf("step %d q=%v: skyline member %d vs %d", i, q, got[j], ws[j])
						}
					}
				}
			}
		})
	}
}

// TestSoakWindowDrain verifies that a stream which simply stops leaves the
// engine in a state where expiring everything via a time-based window
// drains cleanly to empty.
func TestSoakWindowDrain(t *testing.T) {
	eng, err := NewEngine(Options{Dims: 2, Window: 0, Thresholds: []float64{0.3}})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 3000; i++ {
		pt := uniformPoint(r, 2)
		if _, err := eng.Push(pt, 1-r.Float64(), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	eng.ExpireOlderThan(3001)
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if eng.CandidateSize() != 0 || eng.SkylineSize() != 0 {
		t.Fatalf("drain left %d candidates, %d skyline", eng.CandidateSize(), eng.SkylineSize())
	}
	if sky := eng.Skyline(); len(sky) != 0 {
		t.Fatalf("drained skyline = %v", sky)
	}
}
