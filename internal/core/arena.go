package core

import (
	"math"

	"pskyline/internal/aggrtree"
	"pskyline/internal/geom"
)

// pointArena backs every live item's coordinates with contiguous per-engine
// storage. Arriving points are copied into slots carved from large chunks;
// expired items' slots go onto a freelist and are handed to later arrivals,
// so the steady-state window stops allocating coordinate slices entirely and
// the live points of a warm window sit densely in a handful of chunks
// instead of scattered across the heap.
//
// Chunks are never reallocated or compacted — a slot slice stays valid for
// as long as the engine exists — so recycling is the only aliasing hazard:
// a slot must not be reused while anything outside the engine can still see
// it. The engine therefore clones points into every published Result, and
// recycles a slot only when its item leaves the window for good.
type pointArena struct {
	dims int
	cur  []float64    // remaining tail of the chunk being carved
	free []geom.Point // recycled slots, each of length dims
}

// arenaChunkPoints is the number of point slots per backing chunk.
const arenaChunkPoints = 1024

func newPointArena(dims int) *pointArena {
	return &pointArena{dims: dims}
}

// get returns an arena-backed copy of src.
func (a *pointArena) get(src geom.Point) geom.Point {
	var pt geom.Point
	if n := len(a.free); n > 0 {
		pt = a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
	} else {
		if len(a.cur) < a.dims {
			a.cur = make([]float64, arenaChunkPoints*a.dims)
		}
		pt = geom.Point(a.cur[:a.dims:a.dims])
		a.cur = a.cur[a.dims:]
	}
	copy(pt, src)
	return pt
}

// put recycles a coordinate slot. Slices of the wrong length (for example
// caller-supplied points that predate the arena, restored from a snapshot)
// are simply dropped to the GC. Under poison mode the slot is clobbered so
// a stale reader sees NaNs instead of the next occupant's coordinates.
func (a *pointArena) put(pt geom.Point) {
	if len(pt) != a.dims {
		return
	}
	if aggrtree.PoisonEnabled() {
		for i := range pt {
			pt[i] = math.NaN()
		}
	}
	a.free = append(a.free, pt)
}
