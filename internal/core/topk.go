package core

import "fmt"

// TopKTracker maintains the continuous probabilistic top-k skyline of
// Section VI: after every window update it re-derives the k candidates with
// the highest skyline probabilities (≥ minQ) via the best-first search over
// the band trees' Psky_max bounds — the trees double as the paper's "heap
// trees" — and reports whether the ranked membership changed.
type TopKTracker struct {
	eng  *Engine
	k    int
	minQ float64
	cur  []Result
}

// NewTopKTracker returns a tracker over eng. minQ must be at least the
// engine's smallest maintained threshold.
func NewTopKTracker(eng *Engine, k int, minQ float64) (*TopKTracker, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: top-k tracker needs k > 0, got %d", k)
	}
	if qk := eng.qf[len(eng.qf)-1]; minQ < qk {
		return nil, fmt.Errorf("core: top-k threshold %v below maintained minimum %v", minQ, qk)
	}
	t := &TopKTracker{eng: eng, k: k, minQ: minQ}
	t.cur, _ = eng.TopK(k, minQ)
	return t, nil
}

// Top returns the current ranked top-k (descending skyline probability).
// The returned slice is shared; callers must not mutate it.
func (t *TopKTracker) Top() []Result { return t.cur }

// Refresh re-derives the top-k after the engine processed stream updates
// and reports whether the ranked member list changed (by sequence; pure
// probability drift of an unchanged ranking does not count as a change).
func (t *TopKTracker) Refresh() (changed bool, top []Result, err error) {
	top, err = t.eng.TopK(t.k, t.minQ)
	if err != nil {
		return false, nil, err
	}
	changed = len(top) != len(t.cur)
	if !changed {
		for i := range top {
			if top[i].Seq != t.cur[i].Seq {
				changed = true
				break
			}
		}
	}
	t.cur = top
	return changed, top, nil
}
