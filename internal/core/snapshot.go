package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"pskyline/internal/aggrtree"
	"pskyline/internal/geom"
	"pskyline/internal/prob"
)

// snapshotVersion guards the checkpoint format.
const snapshotVersion = 1

// snapshotItem is one candidate element in a checkpoint, with its exact
// (lazy-resolved) probabilities.
type snapshotItem struct {
	Seq   uint64
	Point []float64
	P     float64
	TS    int64
	Band  int
	Pnew  prob.Factor
	Pold  prob.Factor
}

// snapshot is the engine's full persistent state.
type snapshot struct {
	Version    int
	Dims       int
	Window     int
	Thresholds []float64
	MaxEntries int
	Eager      bool

	Next      uint64
	Processed uint64
	MaxCand   int
	MaxSky    int
	Counters  Counters

	TrackArrivals bool
	Arrivals      []arrival

	Items []snapshotItem
}

// Snapshot writes a checkpoint of the engine to w. The checkpoint captures
// the full candidate set with exact probabilities, the stream position, the
// time-window arrival queue and all statistics; restoring it and continuing
// the stream is indistinguishable from never having stopped. OnChange
// callbacks are configuration, not state, and must be re-supplied at
// restore.
func (e *Engine) Snapshot(w io.Writer) error {
	return e.SnapshotTo(gob.NewEncoder(w))
}

// SnapshotTo writes the checkpoint through an existing gob encoder, so a
// caller can prepend its own state on the same stream (a gob decoder reads
// ahead, so a stream must be decoded by a single decoder).
func (e *Engine) SnapshotTo(enc *gob.Encoder) error {
	s := snapshot{
		Version:       snapshotVersion,
		Dims:          e.dims,
		Window:        e.window,
		Thresholds:    e.Thresholds(),
		MaxEntries:    e.maxEntries,
		Eager:         e.eager,
		Next:          e.next,
		Processed:     e.processed,
		MaxCand:       e.maxCand,
		MaxSky:        e.maxSky,
		Counters:      e.counters,
		TrackArrivals: e.trackArrivals,
		Arrivals:      e.arrivals,
	}
	for band, tr := range e.trees {
		band := band
		tr.WalkItems(func(it *aggrtree.Item, pnew, pold prob.Factor) bool {
			s.Items = append(s.Items, snapshotItem{
				Seq:   it.Seq,
				Point: it.Point,
				P:     it.P,
				TS:    it.TS,
				Band:  band,
				Pnew:  pnew,
				Pold:  pold,
			})
			return true
		})
	}
	if err := enc.Encode(&s); err != nil {
		return fmt.Errorf("core: snapshot: %w", err)
	}
	return nil
}

// RestoreOptions carries the configuration that is not part of a
// checkpoint's state.
type RestoreOptions struct {
	// OnChange re-attaches a band-transition callback.
	OnChange func(Event)
	// Metrics re-attaches a per-stage latency instrumentation block
	// (instrumentation is configuration, not state: histograms restart
	// empty in the restored process).
	Metrics *Metrics
	// IncrementalRestore rebuilds the band trees by inserting the
	// checkpointed elements one at a time through the regular insertion
	// path instead of STR bulk-loading — the A/B control for recovery
	// benchmarks and the differential tests. The resulting engines answer
	// every query identically; only the tree shape (and restore time)
	// differs.
	IncrementalRestore bool
}

// Restore reads a checkpoint written by Snapshot and returns an engine that
// continues exactly where the snapshotted one stopped.
func Restore(r io.Reader, ro RestoreOptions) (*Engine, error) {
	return RestoreFrom(gob.NewDecoder(r), ro)
}

// RestoreFrom reads a checkpoint through an existing gob decoder (the
// counterpart of SnapshotTo).
func RestoreFrom(dec *gob.Decoder, ro RestoreOptions) (*Engine, error) {
	var s snapshot
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("core: restore: snapshot version %d, want %d", s.Version, snapshotVersion)
	}
	e, err := NewEngine(Options{
		Dims:             s.Dims,
		Window:           s.Window,
		Thresholds:       s.Thresholds,
		MaxEntries:       s.MaxEntries,
		TrackArrivals:    s.TrackArrivals,
		EagerPropagation: s.Eager,
		OnChange:         ro.OnChange,
		Metrics:          ro.Metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	var bandItems [][]*aggrtree.Item
	if !ro.IncrementalRestore {
		bandItems = make([][]*aggrtree.Item, len(e.trees))
	}
	for _, si := range s.Items {
		if si.Band < 0 || si.Band >= len(e.trees) {
			return nil, fmt.Errorf("core: restore: item %d has band %d of %d", si.Seq, si.Band, len(e.trees))
		}
		if len(si.Point) != s.Dims {
			return nil, fmt.Errorf("core: restore: item %d has %d dims, want %d", si.Seq, len(si.Point), s.Dims)
		}
		if _, dup := e.inS[si.Seq]; dup {
			return nil, fmt.Errorf("core: restore: duplicate item %d", si.Seq)
		}
		it := e.newItem(geom.Point(si.Point), si.P, si.Seq)
		it.TS = si.TS
		it.Pnew = si.Pnew
		it.Pold = si.Pold
		if ro.IncrementalRestore {
			e.trees[si.Band].InsertItem(it)
		} else {
			bandItems[si.Band] = append(bandItems[si.Band], it)
		}
		e.inS[si.Seq] = it
	}
	for b, its := range bandItems {
		if len(its) > 0 {
			e.trees[b].BulkLoad(its)
		}
	}
	e.next = s.Next
	e.processed = s.Processed
	e.maxCand = s.MaxCand
	e.maxSky = s.MaxSky
	e.counters = s.Counters
	e.arrivals = s.Arrivals
	return e, nil
}
