//go:build race

package core

// raceEnabled lets tests whose accounting the race detector skews (e.g.
// allocation budgets) skip themselves under -race.
const raceEnabled = true
