package core

import (
	"testing"

	"pskyline/internal/streamgen"
)

// engineStateEqual compares two engines' full observable state.
func engineStateEqual(t *testing.T, a, b *Engine, what string) {
	t.Helper()
	if err := a.CheckInvariants(); err != nil {
		t.Fatalf("%s: a invariants: %v", what, err)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("%s: b invariants: %v", what, err)
	}
	qa, qb := a.Thresholds(), b.Thresholds()
	if len(qa) != len(qb) {
		t.Fatalf("%s: threshold counts %v vs %v", what, qa, qb)
	}
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatalf("%s: thresholds %v vs %v", what, qa, qb)
		}
	}
	for b2 := 0; b2 <= len(qa); b2++ {
		if a.BandSize(b2) != b.BandSize(b2) {
			t.Fatalf("%s: band %d sizes %d vs %d", what, b2, a.BandSize(b2), b.BandSize(b2))
		}
	}
	ca, cb := a.Candidates(), b.Candidates()
	if len(ca) != len(cb) {
		t.Fatalf("%s: candidates %d vs %d", what, len(ca), len(cb))
	}
	for i := range ca {
		if ca[i].Seq != cb[i].Seq || !feq(ca[i].Pnew, cb[i].Pnew) || !feq(ca[i].Pold, cb[i].Pold) {
			t.Fatalf("%s: candidate %d: %+v vs %+v", what, i, ca[i], cb[i])
		}
	}
}

// TestAddThresholdMatchesFresh — splitting a band at runtime must leave the
// engine in exactly the state a fresh engine maintaining that threshold
// from the start would have reached, both immediately and after further
// stream progress.
func TestAddThresholdMatchesFresh(t *testing.T) {
	for _, addQ := range []float64{0.45, 0.8, 1.0} {
		dyn, err := NewEngine(Options{Dims: 3, Window: 200, Thresholds: []float64{0.6, 0.3}, MaxEntries: 5})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewEngine(Options{Dims: 3, Window: 200, Thresholds: []float64{0.6, 0.3, addQ}, MaxEntries: 5})
		if err != nil {
			t.Fatal(err)
		}
		srcA := streamgen.New(3, streamgen.Anticorrelated, streamgen.UniformProb{}, 61)
		srcB := streamgen.New(3, streamgen.Anticorrelated, streamgen.UniformProb{}, 61)
		push := func(e *Engine, s streamgen.Stream, n int) {
			for i := 0; i < n; i++ {
				el := s.Next()
				if _, err := e.Push(el.Point, el.P, el.TS); err != nil {
					t.Fatal(err)
				}
			}
		}
		push(dyn, srcA, 800)
		push(ref, srcB, 800)
		if err := dyn.AddThreshold(addQ); err != nil {
			t.Fatal(err)
		}
		engineStateEqual(t, dyn, ref, "right after AddThreshold")
		push(dyn, srcA, 800)
		push(ref, srcB, 800)
		engineStateEqual(t, dyn, ref, "after continued stream")
	}
}

// TestRemoveThresholdMatchesFresh — merging a band must equal never having
// maintained the threshold.
func TestRemoveThresholdMatchesFresh(t *testing.T) {
	dyn, err := NewEngine(Options{Dims: 2, Window: 150, Thresholds: []float64{0.7, 0.5, 0.3}, MaxEntries: 5})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewEngine(Options{Dims: 2, Window: 150, Thresholds: []float64{0.7, 0.3}, MaxEntries: 5})
	if err != nil {
		t.Fatal(err)
	}
	srcA := streamgen.New(2, streamgen.Independent, streamgen.UniformProb{}, 67)
	srcB := streamgen.New(2, streamgen.Independent, streamgen.UniformProb{}, 67)
	push := func(e *Engine, s streamgen.Stream, n int) {
		for i := 0; i < n; i++ {
			el := s.Next()
			if _, err := e.Push(el.Point, el.P, el.TS); err != nil {
				t.Fatal(err)
			}
		}
	}
	push(dyn, srcA, 600)
	push(ref, srcB, 600)
	if err := dyn.RemoveThreshold(0.5); err != nil {
		t.Fatal(err)
	}
	engineStateEqual(t, dyn, ref, "right after RemoveThreshold")
	push(dyn, srcA, 600)
	push(ref, srcB, 600)
	engineStateEqual(t, dyn, ref, "after continued stream")
}

func TestThresholdChangeValidation(t *testing.T) {
	e, err := NewEngine(Options{Dims: 2, Window: 10, Thresholds: []float64{0.6, 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddThreshold(0.1); err == nil {
		t.Error("threshold below minimum accepted")
	}
	if err := e.AddThreshold(0.3); err == nil {
		t.Error("duplicate threshold accepted")
	}
	if err := e.AddThreshold(1.5); err == nil {
		t.Error("threshold above 1 accepted")
	}
	if err := e.RemoveThreshold(0.9); err == nil {
		t.Error("unknown threshold removal accepted")
	}
	if err := e.RemoveThreshold(0.3); err == nil {
		t.Error("smallest threshold removal accepted")
	}
	if err := e.RemoveThreshold(0.6); err != nil {
		t.Errorf("valid removal rejected: %v", err)
	}
	if got := e.Thresholds(); len(got) != 1 || got[0] != 0.3 {
		t.Fatalf("thresholds after removal = %v", got)
	}
}

// TestAddRemoveRoundTrip — add then remove (and vice versa) returns the
// engine to the equivalent state, with the stream advancing in between.
func TestAddRemoveRoundTrip(t *testing.T) {
	dyn, err := NewEngine(Options{Dims: 2, Window: 120, Thresholds: []float64{0.4}})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewEngine(Options{Dims: 2, Window: 120, Thresholds: []float64{0.4}})
	if err != nil {
		t.Fatal(err)
	}
	srcA := streamgen.New(2, streamgen.Anticorrelated, streamgen.UniformProb{}, 71)
	srcB := streamgen.New(2, streamgen.Anticorrelated, streamgen.UniformProb{}, 71)
	push := func(e *Engine, s streamgen.Stream, n int) {
		for i := 0; i < n; i++ {
			el := s.Next()
			if _, err := e.Push(el.Point, el.P, el.TS); err != nil {
				t.Fatal(err)
			}
		}
	}
	push(dyn, srcA, 300)
	push(ref, srcB, 300)
	if err := dyn.AddThreshold(0.75); err != nil {
		t.Fatal(err)
	}
	push(dyn, srcA, 300)
	push(ref, srcB, 300)
	if err := dyn.RemoveThreshold(0.75); err != nil {
		t.Fatal(err)
	}
	engineStateEqual(t, dyn, ref, "after add+remove round trip")
}
