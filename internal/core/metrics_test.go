package core

import (
	"testing"

	"pskyline/internal/streamgen"
)

// TestSteadyStatePushAllocsWithMetrics re-pins the steady-state allocation
// budget with stage timing enabled: the obs histograms record via atomic
// adds into fixed arrays, so instrumentation must not cost a single
// allocation on the hot path.
func TestSteadyStatePushAllocsWithMetrics(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	const window = 4096
	var met Metrics
	eng, err := NewEngine(Options{Dims: 3, Window: window, Thresholds: []float64{0.3}, Metrics: &met})
	if err != nil {
		t.Fatal(err)
	}
	src := streamgen.New(3, streamgen.Anticorrelated, streamgen.UniformProb{}, 7)
	drivePush(t, eng, src, 3*window)
	elems := make([]streamgen.Element, 8192)
	for i := range elems {
		elems[i] = src.Next()
	}
	i := 0
	avg := testing.AllocsPerRun(4000, func() {
		el := elems[i%len(elems)]
		i++
		if _, err := eng.Push(el.Point, el.P, el.TS); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 1.0
	if avg > budget {
		t.Fatalf("steady-state Push with metrics averaged %.2f allocs, budget %.1f", avg, budget)
	}
	if met.StageProbe.Count() == 0 || met.StageExpire.Count() == 0 {
		t.Fatalf("stage histograms empty: probe=%d expire=%d",
			met.StageProbe.Count(), met.StageExpire.Count())
	}
}

// TestStageHistogramsRecord checks that every pipeline stage records once
// per push (and expire once per candidate expiry), and that InWindow tracks
// the window fill.
func TestStageHistogramsRecord(t *testing.T) {
	const window = 256
	var met Metrics
	eng, err := NewEngine(Options{Dims: 2, Window: window, Thresholds: []float64{0.3}, Metrics: &met})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Metrics() != &met {
		t.Fatal("Metrics() does not return the configured block")
	}
	src := streamgen.New(2, streamgen.Anticorrelated, streamgen.UniformProb{}, 11)
	if got := eng.InWindow(); got != 0 {
		t.Fatalf("InWindow before pushes = %d", got)
	}
	const n = 3 * window
	for i := 0; i < n; i++ {
		el := src.Next()
		if _, err := eng.Push(el.Point, el.P, el.TS); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.InWindow(); got != window {
		t.Fatalf("InWindow after %d pushes = %d, want %d", n, got, window)
	}
	for _, st := range met.StageHistograms() {
		if st.Name == "expire" {
			if got, want := st.Hist.Count(), eng.Counters().Expiries; got != want {
				t.Errorf("expire histogram count %d, want %d candidate expiries", got, want)
			}
			continue
		}
		if got := st.Hist.Count(); got != n {
			t.Errorf("stage %s recorded %d, want %d", st.Name, got, n)
		}
	}
	if exp := eng.Counters().Expiries; exp == 0 {
		t.Fatal("no candidate expiries in an anti-correlated window churn")
	}
}
