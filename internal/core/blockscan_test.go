package core

import (
	"bytes"
	"fmt"
	"testing"

	"pskyline/internal/streamgen"
)

// TestBlockScanMatchesPointerScan proves the SoA block leaf scans are an
// exact drop-in for the per-item pointer loops: two engines fed the same
// stream — one with block scans (the default), one with DisableBlockScan —
// must remain byte-identical at the snapshot level throughout the run,
// including counters and probability factors. Probability folds accumulate
// in leaf slot order on both paths, so even the float rounding matches.
func TestBlockScanMatchesPointerScan(t *testing.T) {
	for _, dims := range []int{2, 3, 4, 5, 6} { // 6 exercises the generic block kernels
		dims := dims
		t.Run(fmt.Sprintf("d=%d", dims), func(t *testing.T) {
			const window = 300
			mk := func(disable bool) *Engine {
				eng, err := NewEngine(Options{
					Dims:             dims,
					Window:           window,
					Thresholds:       []float64{0.6, 0.3},
					DisableBlockScan: disable,
				})
				if err != nil {
					t.Fatal(err)
				}
				return eng
			}
			blk, ptr := mk(false), mk(true)
			n := 5 * window
			if testing.Short() {
				n = 2 * window
			}
			src := streamgen.New(dims, streamgen.Anticorrelated, streamgen.UniformProb{}, int64(40+dims))
			for i := 0; i < n; i++ {
				el := src.Next()
				if _, err := blk.Push(el.Point, el.P, el.TS); err != nil {
					t.Fatal(err)
				}
				if _, err := ptr.Push(el.Point, el.P, el.TS); err != nil {
					t.Fatal(err)
				}
				if (i+1)%window == 0 || i == n-1 {
					if err := blk.CheckInvariants(); err != nil {
						t.Fatalf("step %d: block engine: %v", i, err)
					}
					if err := ptr.CheckInvariants(); err != nil {
						t.Fatalf("step %d: pointer engine: %v", i, err)
					}
					var sb, sp bytes.Buffer
					if err := blk.Snapshot(&sb); err != nil {
						t.Fatal(err)
					}
					if err := ptr.Snapshot(&sp); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(sb.Bytes(), sp.Bytes()) {
						t.Fatalf("step %d: block-scan snapshot diverged from pointer-scan snapshot", i)
					}
				}
			}
		})
	}
}
