package core

import (
	"math/rand"
	"testing"

	"pskyline/internal/geom"
)

// TestPropertyPnewMonotone — over an element's lifetime its Pnew never
// increases (newer dominators only accumulate; they cannot expire before
// the element does). This is the monotonicity that makes the candidate set
// prune-once (Section III).
func TestPropertyPnewMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	eng, err := NewEngine(Options{Dims: 2, Window: 60, Thresholds: []float64{0.2}})
	if err != nil {
		t.Fatal(err)
	}
	last := map[uint64]float64{}
	for i := 0; i < 1200; i++ {
		pt := geom.Point{r.Float64(), r.Float64()}
		if _, err := eng.Push(pt, 1-r.Float64(), int64(i)); err != nil {
			t.Fatal(err)
		}
		seen := map[uint64]bool{}
		for _, c := range eng.Candidates() {
			if prev, ok := last[c.Seq]; ok && c.Pnew > prev*(1+1e-9) {
				t.Fatalf("step %d: Pnew of %d rose %v -> %v", i, c.Seq, prev, c.Pnew)
			}
			last[c.Seq] = c.Pnew
			seen[c.Seq] = true
		}
		for seq := range last {
			if !seen[seq] {
				delete(last, seq) // departed
			}
		}
	}
}

// TestPropertyPruneOnce — an element that leaves the candidate set never
// returns (Section III: membership depends only on Pnew, which is
// monotone).
func TestPropertyPruneOnce(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	eng, err := NewEngine(Options{Dims: 2, Window: 50, Thresholds: []float64{0.35}})
	if err != nil {
		t.Fatal(err)
	}
	departed := map[uint64]bool{}
	live := map[uint64]bool{}
	for i := 0; i < 1500; i++ {
		pt := geom.Point{float64(r.Intn(6)), float64(r.Intn(6))}
		if _, err := eng.Push(pt, 1-r.Float64(), int64(i)); err != nil {
			t.Fatal(err)
		}
		now := map[uint64]bool{}
		for _, c := range eng.Candidates() {
			now[c.Seq] = true
			if departed[c.Seq] {
				t.Fatalf("step %d: element %d re-entered the candidate set", i, c.Seq)
			}
		}
		for seq := range live {
			if !now[seq] {
				departed[seq] = true
			}
		}
		live = now
	}
}

// TestPropertySkylineSubsetOfCandidates and band nesting: the q'-skyline
// shrinks as q' grows, and every skyline is inside the candidate set.
func TestPropertySkylineNesting(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	eng, err := NewEngine(Options{Dims: 3, Window: 80, Thresholds: []float64{0.25}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		pt := geom.Point{r.Float64(), r.Float64(), r.Float64()}
		if _, err := eng.Push(pt, 1-r.Float64(), int64(i)); err != nil {
			t.Fatal(err)
		}
		if (i+1)%37 != 0 {
			continue
		}
		cands := map[uint64]bool{}
		for _, c := range eng.Candidates() {
			cands[c.Seq] = true
		}
		prevSet := map[uint64]bool{}
		first := true
		for _, q := range []float64{0.25, 0.4, 0.6, 0.8, 0.95} {
			res, err := eng.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			cur := map[uint64]bool{}
			for _, re := range res {
				cur[re.Seq] = true
				if !cands[re.Seq] {
					t.Fatalf("step %d: skyline member %d not a candidate", i, re.Seq)
				}
				if !first && !prevSet[re.Seq] {
					t.Fatalf("step %d q=%v: member %d absent from looser skyline", i, q, re.Seq)
				}
			}
			prevSet = cur
			first = false
		}
	}
}

// TestPropertyOrderInsensitivityWithinIncomparable — elements that are
// pairwise incomparable can arrive in any order without changing any
// skyline probability (dominance, not recency, is what matters among
// incomparable elements).
func TestPropertyOrderInsensitivity(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	// Build a pairwise-incomparable set on the anti-diagonal.
	n := 12
	pts := make([]geom.Point, n)
	ps := make([]float64, n)
	for i := range pts {
		pts[i] = geom.Point{float64(i), float64(n - i)}
		ps[i] = 1 - r.Float64()
	}
	run := func(perm []int) map[string]float64 {
		eng, err := NewEngine(Options{Dims: 2, Window: n, Thresholds: []float64{0.1}})
		if err != nil {
			t.Fatal(err)
		}
		for i, idx := range perm {
			if _, err := eng.Push(pts[idx], ps[idx], int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		out := map[string]float64{}
		for _, c := range eng.Candidates() {
			out[c.Point.String()] = c.Psky
		}
		return out
	}
	base := run(rand.Perm(n))
	for trial := 0; trial < 5; trial++ {
		other := run(rand.Perm(n))
		if len(base) != len(other) {
			t.Fatalf("trial %d: %d vs %d candidates", trial, len(base), len(other))
		}
		for k, v := range base {
			if ov, ok := other[k]; !ok || !feq(v, ov) {
				t.Fatalf("trial %d: %s has %v vs %v", trial, k, v, ov)
			}
		}
	}
}
