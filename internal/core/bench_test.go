package core

import (
	"testing"

	"pskyline/internal/streamgen"
)

// steadyEngine returns an engine whose window is full and whose pools are
// warm, plus a pre-generated element supply, so benchmark iterations measure
// only the steady-state ingestion path.
func steadyEngine(b *testing.B, dims, window int) (*Engine, []streamgen.Element) {
	b.Helper()
	eng, err := NewEngine(Options{Dims: dims, Window: window, Thresholds: []float64{0.3}})
	if err != nil {
		b.Fatal(err)
	}
	src := streamgen.New(dims, streamgen.Anticorrelated, streamgen.UniformProb{}, 7)
	for i := 0; i < 3*window; i++ {
		el := src.Next()
		if _, err := eng.Push(el.Point, el.P, el.TS); err != nil {
			b.Fatal(err)
		}
	}
	elems := make([]streamgen.Element, 8192)
	for i := range elems {
		elems[i] = src.Next()
	}
	return eng, elems
}

// BenchmarkPush measures one steady-state Push (expiry of the oldest element
// plus insertion of the new one) with a full window and warm pools. The
// interesting numbers are ns/op and allocs/op — the hot path is expected to
// be allocation-free (see TestSteadyStatePushAllocs).
func BenchmarkPush(b *testing.B) {
	const window = 4096
	for _, dims := range []int{2, 3, 5} {
		b.Run(dimLabel(dims), func(b *testing.B) {
			eng, elems := steadyEngine(b, dims, window)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				el := elems[i%len(elems)]
				if _, err := eng.Push(el.Point, el.P, el.TS); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPushBatch measures steady-state batch ingestion in batches of 512;
// ns/op is per element, so it is directly comparable to BenchmarkPush.
func BenchmarkPushBatch(b *testing.B) {
	const (
		window = 4096
		batch  = 512
	)
	eng, elems := steadyEngine(b, 3, window)
	buf := make([]BatchElem, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		k := batch
		if done+k > b.N {
			k = b.N - done
		}
		for i := 0; i < k; i++ {
			el := elems[(done+i)%len(elems)]
			buf[i] = BatchElem{Point: el.Point, P: el.P, TS: el.TS}
		}
		if _, err := eng.PushBatch(buf[:k]); err != nil {
			b.Fatal(err)
		}
		done += k
	}
}

func dimLabel(d int) string {
	return "d=" + string(rune('0'+d))
}
