package core

import (
	"sort"
	"testing"

	"pskyline/internal/streamgen"
)

func TestTopKTrackerValidation(t *testing.T) {
	eng, err := NewEngine(Options{Dims: 2, Window: 10, Thresholds: []float64{0.3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTopKTracker(eng, 0, 0.3); err == nil {
		t.Error("k = 0 accepted")
	}
	if _, err := NewTopKTracker(eng, 3, 0.1); err == nil {
		t.Error("minQ below q accepted")
	}
}

// TestTopKTrackerContinuous drives a stream and verifies, at every step,
// that the tracker's view equals a fresh TopK query, that change reports
// are accurate, and that the ranking is the head of the full sorted
// skyline.
func TestTopKTrackerContinuous(t *testing.T) {
	eng, err := NewEngine(Options{Dims: 2, Window: 80, Thresholds: []float64{0.3}})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTopKTracker(eng, 5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	src := streamgen.New(2, streamgen.Anticorrelated, streamgen.UniformProb{}, 17)
	prev := append([]Result(nil), tr.Top()...)
	changes := 0
	for i := 0; i < 800; i++ {
		el := src.Next()
		if _, err := eng.Push(el.Point, el.P, el.TS); err != nil {
			t.Fatal(err)
		}
		changed, top, err := tr.Refresh()
		if err != nil {
			t.Fatal(err)
		}
		// Change detection must be exact.
		same := len(top) == len(prev)
		if same {
			for j := range top {
				if top[j].Seq != prev[j].Seq {
					same = false
					break
				}
			}
		}
		if changed == same {
			t.Fatalf("step %d: changed=%v but ranked lists same=%v", i, changed, same)
		}
		// The ranking must be the head of the sorted q-skyline set.
		full, err := eng.Query(0.3)
		if err != nil {
			t.Fatal(err)
		}
		sort.SliceStable(full, func(a, b int) bool { return full[a].Psky > full[b].Psky })
		want := full
		if len(want) > 5 {
			want = want[:5]
		}
		if len(top) != len(want) {
			t.Fatalf("step %d: top-k %d vs head %d", i, len(top), len(want))
		}
		for j := range top {
			if !feq(top[j].Psky, want[j].Psky) {
				t.Fatalf("step %d rank %d: %v vs %v", i, j, top[j].Psky, want[j].Psky)
			}
		}
		prev = append(prev[:0], top...)
		if changed {
			changes++
		}
	}
	if changes == 0 {
		t.Fatal("top-k never changed over 800 arrivals")
	}
}
