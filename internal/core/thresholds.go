package core

import (
	"fmt"

	"pskyline/internal/aggrtree"
	"pskyline/internal/prob"
)

// AddThreshold begins maintaining an additional threshold q (a new MSKY
// user registering a confidence level, Section IV-D). q must lie in
// (q_k, 1] and not already be maintained: thresholds at or below the
// smallest maintained one cannot be added because elements outside
// S_{N,q_k} were already discarded. The band containing q is split in
// place; the candidate set is untouched, so the operation is exact.
//
// Adding or removing thresholds renumbers bands, so no band-transition
// events are emitted for the split; continuous queries are unaffected.
func (e *Engine) AddThreshold(q float64) error {
	if q <= 0 || q > 1 {
		return fmt.Errorf("core: threshold %v out of (0,1]", q)
	}
	qk := e.qf[len(e.qf)-1]
	if q < qk {
		return fmt.Errorf("core: cannot add threshold %v below maintained minimum %v (candidates were discarded)", q, qk)
	}
	pos := 0
	for pos < len(e.qf) && e.qf[pos] > q {
		pos++
	}
	if pos < len(e.qf) && e.qf[pos] == q {
		return fmt.Errorf("core: threshold %v already maintained", q)
	}
	// The new threshold splits the current band at index pos (range
	// [q_pos, q_{pos-1})) into [q, q_{pos-1}) and [q_pos, q); q > q_k
	// guarantees pos ≤ k−1, so the bottom candidates-only tree never
	// splits.
	qq := prob.FromFloat(q)
	split := e.trees[pos]
	upper := aggrtree.New(e.dims, aggrtree.Config{MaxEntries: e.maxEntries, NodePool: e.nodes})

	var promote []*aggrtree.Item
	split.WalkItems(func(it *aggrtree.Item, pnew, pold prob.Factor) bool {
		if it.PF().Times(pnew).Times(pold).AtLeast(qq) {
			promote = append(promote, it)
		}
		return true
	})
	for _, it := range promote {
		split.DeleteItem(it)
		upper.InsertItem(it)
	}

	e.trees = append(e.trees, nil)
	copy(e.trees[pos+1:], e.trees[pos:])
	e.trees[pos] = upper
	e.qf = append(e.qf, 0)
	copy(e.qf[pos+1:], e.qf[pos:])
	e.qf[pos] = q
	e.qs = append(e.qs, prob.Factor{})
	copy(e.qs[pos+1:], e.qs[pos:])
	e.qs[pos] = qq
	e.bandGen = append(e.bandGen, 0)
	e.touchAll()
	return nil
}

// RemoveThreshold stops maintaining threshold q (an MSKY user leaving),
// merging its band into the band below. The smallest threshold cannot be
// removed: it bounds the candidate set, and candidates for anything looser
// were never kept.
func (e *Engine) RemoveThreshold(q float64) error {
	pos := -1
	for i, v := range e.qf {
		if v == q {
			pos = i
			break
		}
	}
	if pos < 0 {
		return fmt.Errorf("core: threshold %v is not maintained", q)
	}
	if pos == len(e.qf)-1 {
		return fmt.Errorf("core: cannot remove the smallest threshold %v (it bounds the candidate set)", q)
	}
	// Graft the whole band tree into the band below, entry-wise: no
	// pending references exist outside a Push, so the wholesale move is
	// safe and cheap.
	src := e.trees[pos]
	if src.Size() > 0 {
		root := src.RemoveEntry(src.Root())
		e.trees[pos+1].InsertEntry(root)
	}
	e.trees = append(e.trees[:pos], e.trees[pos+1:]...)
	e.qf = append(e.qf[:pos], e.qf[pos+1:]...)
	e.qs = append(e.qs[:pos], e.qs[pos+1:]...)
	e.bandGen = e.bandGen[:len(e.bandGen)-1]
	e.touchAll()
	return nil
}
