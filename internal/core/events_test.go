package core

import (
	"math/rand"
	"testing"

	"pskyline/internal/geom"
)

// TestEventsReconstructBands — replaying the engine's OnChange event stream
// must reconstruct the exact band membership of every element at every
// point, across all bands of a multi-threshold engine.
func TestEventsReconstructBands(t *testing.T) {
	bands := map[uint64]int{} // seq -> band, per the event stream
	eng, err := NewEngine(Options{
		Dims: 2, Window: 40, Thresholds: []float64{0.7, 0.4, 0.2}, MaxEntries: 4,
		OnChange: func(ev Event) {
			if ev.ToBand == -1 {
				if _, ok := bands[ev.Item.Seq]; !ok {
					t.Fatalf("departure of unknown element %d", ev.Item.Seq)
				}
				delete(bands, ev.Item.Seq)
				return
			}
			if ev.FromBand == -1 {
				if _, ok := bands[ev.Item.Seq]; ok {
					t.Fatalf("second arrival of %d", ev.Item.Seq)
				}
			} else if bands[ev.Item.Seq] != ev.FromBand {
				t.Fatalf("element %d moved from band %d but events tracked %d",
					ev.Item.Seq, ev.FromBand, bands[ev.Item.Seq])
			}
			bands[ev.Item.Seq] = ev.ToBand
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(19))
	for i := 0; i < 1500; i++ {
		pt := geom.Point{r.Float64(), r.Float64()}
		p := 1 - r.Float64()
		if r.Intn(9) == 0 {
			p = 1
		}
		if _, err := eng.Push(pt, p, int64(i)); err != nil {
			t.Fatal(err)
		}
		if (i+1)%41 != 0 {
			continue
		}
		// Cross-check the event-derived state against direct queries.
		if len(bands) != eng.CandidateSize() {
			t.Fatalf("step %d: events track %d elements, engine has %d", i, len(bands), eng.CandidateSize())
		}
		for b := 0; b <= 3; b++ {
			n := 0
			eng.WalkBand(b, func(res Result) bool {
				if bands[res.Seq] != b {
					t.Fatalf("step %d: element %d in band %d per query, %d per events",
						i, res.Seq, b, bands[res.Seq])
				}
				n++
				return true
			})
			if n != eng.BandSize(b) {
				t.Fatalf("step %d: band %d walk saw %d, size says %d", i, b, n, eng.BandSize(b))
			}
		}
	}
}
