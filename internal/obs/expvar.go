package obs

import (
	"encoding/json"
	"io"
)

// HistJSON is the JSON shape of one exported histogram series: the summary
// statistics a human (or an expvar poller) wants without decoding buckets,
// plus the raw bucket counts for tools that re-aggregate.
type HistJSON struct {
	Count   uint64   `json:"count"`
	MeanNs  float64  `json:"mean_ns"`
	P50Ns   float64  `json:"p50_ns"`
	P90Ns   float64  `json:"p90_ns"`
	P99Ns   float64  `json:"p99_ns"`
	MaxNs   uint64   `json:"max_ns"`
	SumNs   uint64   `json:"sum_ns"`
	Buckets []uint64 `json:"buckets_log2_ns"`
}

// HistJSONOf summarizes a snapshot into its JSON shape.
func HistJSONOf(s HistSnapshot) HistJSON {
	return HistJSON{
		Count:   s.Count,
		MeanNs:  s.MeanNs(),
		P50Ns:   s.QuantileNs(0.50),
		P90Ns:   s.QuantileNs(0.90),
		P99Ns:   s.QuantileNs(0.99),
		MaxNs:   s.MaxNs,
		SumNs:   s.SumNs,
		Buckets: append([]uint64(nil), s.Buckets[:]...),
	}
}

// WriteJSON renders the registry as one expvar-style JSON object: metric
// name → value for counters and gauges, metric name → summary object for
// histograms. Labeled series nest one level deeper under their sorted
// "k=v" label key. Keys are emitted in sorted order (encoding/json sorts
// map keys), so the output is deterministic for a given state.
func (r *Registry) WriteJSON(w io.Writer) error {
	top := make(map[string]any, len(r.families))
	for _, f := range r.families {
		if len(f.series) == 1 && f.series[0].labelKey() == "" {
			top[f.name] = seriesJSON(f.series[0])
			continue
		}
		sub := make(map[string]any, len(f.series))
		for _, s := range f.series {
			sub[s.labelKey()] = seriesJSON(s)
		}
		top[f.name] = sub
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(top)
}

// WindowedJSON is the JSON shape of one windowed summary series: recent
// quantiles (with p999 — the whole point of a windowed view), the span they
// cover, and the lifetime totals.
type WindowedJSON struct {
	RecentCount  uint64  `json:"recent_count"`
	RecentMeanNs float64 `json:"recent_mean_ns"`
	P50Ns        float64 `json:"p50_ns"`
	P99Ns        float64 `json:"p99_ns"`
	P999Ns       float64 `json:"p999_ns"`
	RecentMaxNs  uint64  `json:"recent_max_ns"`
	WindowNs     int64   `json:"window_ns"`
	TotalCount   uint64  `json:"total_count"`
	TotalSumNs   uint64  `json:"total_sum_ns"`
}

// WindowedJSONOf summarizes a windowed histogram at the current clock.
func WindowedJSONOf(w *WindowedHistogram) WindowedJSON {
	snap := w.Snapshot(NowNs())
	total := w.TotalSnapshot()
	return WindowedJSON{
		RecentCount:  snap.Count,
		RecentMeanNs: snap.MeanNs(),
		P50Ns:        snap.QuantileNs(0.50),
		P99Ns:        snap.QuantileNs(0.99),
		P999Ns:       snap.QuantileNs(0.999),
		RecentMaxNs:  snap.MaxNs,
		WindowNs:     int64(w.Window()),
		TotalCount:   total.Count,
		TotalSumNs:   total.SumNs,
	}
}

func seriesJSON(s series) any {
	if s.hist != nil {
		return HistJSONOf(s.hist.Snapshot())
	}
	if s.whist != nil {
		return WindowedJSONOf(s.whist)
	}
	return s.value()
}
