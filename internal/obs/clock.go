package obs

import "time"

// The package clock: one process-wide base time captured at init. base holds
// both a wall reading and a monotonic reading (time.Now always does), so
//
//   - NowNs is a pure monotonic offset — one VDSO monotonic read, no wall
//     clock involved, immune to wall-clock steps — and offsets taken at
//     different call sites are directly comparable: subtracting two NowNs
//     stamps gives the true elapsed time between them.
//   - WallAt converts an offset back to a wall-clock time for display,
//     using the single wall reading captured at init. Every stamp in the
//     process converts through the same base, so cross-stamp deltas of the
//     converted times equal the monotonic deltas exactly.
//
// This is what "a single monotonic clock read shared with stage timing"
// means concretely: a hot path reads NowNs once and hands the same int64 to
// the stage clock, the trace ring and the latency histograms, instead of
// each consumer taking (and mixing) its own wall/monotonic readings.
var base = time.Now()

// NowNs returns the current reading of the package's monotonic clock, in
// nanoseconds since process start (strictly positive). It costs one
// monotonic clock read (the time.Since fast path).
func NowNs() int64 {
	return int64(time.Since(base))
}

// WallAt converts a NowNs-style monotonic offset to wall-clock time. Offsets
// recorded anywhere in the process convert consistently: WallAt(b) −
// WallAt(a) == (b − a) exactly.
func WallAt(ns int64) time.Time {
	return base.Add(time.Duration(ns))
}
