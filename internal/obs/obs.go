// Package obs is the operator's allocation-free observability core: atomic
// counters and gauges, fixed-bucket log2 latency histograms, and a metric
// registry that renders Prometheus text format and expvar-style JSON.
//
// Everything on the recording side — Counter.Add, Gauge.Set,
// Histogram.Record — is a handful of atomic operations into fixed storage:
// no allocation, no locks, no map lookups. That is what lets the skyline
// engine's steady-state ingestion path stay at 0 allocs/op with metrics
// enabled (the pinned TestSteadyStatePushAllocs budget). The reading side
// (Snapshot, the exporters) allocates freely; it runs on scrape requests,
// not in the hot path.
//
// Concurrency model: SINGLE WRITER, lock-free readers — the same contract
// as the engine these metrics instrument. At most one goroutine may record
// into a given Counter/Histogram at a time (successive writers must be
// serialized externally, e.g. by the Monitor's ingestion mutex, which
// establishes the required happens-before). This allows recording to use
// plain atomic load/store pairs instead of LOCK-prefixed read-modify-write
// instructions, roughly halving the hot-path cost; concurrent writers
// would lose increments, never corrupt memory. Readers may run from any
// goroutine at any time: they observe each atomic individually, so a
// snapshot taken concurrently with recording is not a point-in-time cut
// across fields (a histogram's count may be one ahead of its sum); every
// individual value is consistent and monotone.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing counter: one writer at a time,
// lock-free readers (see the package comment).
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. Single writer only.
func (c *Counter) Add(n uint64) { c.v.Store(c.v.Load() + n) }

// Inc increments the counter by one. Single writer only.
func (c *Counter) Inc() { c.v.Store(c.v.Load() + 1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomically settable float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int) { g.Set(float64(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }
