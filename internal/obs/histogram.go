package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of power-of-two nanosecond buckets of a
// Histogram. Bucket 0 holds zero-duration observations; bucket i ≥ 1 holds
// durations in [2^(i-1), 2^i) ns. The last bucket additionally absorbs
// everything at or above 2^(NumBuckets-2) ns (≈ 4.6 minutes), far beyond any
// per-push stage cost.
const NumBuckets = 39

// Histogram is a fixed-bucket log2 latency histogram. Record is wait-free —
// a few atomic load/store pairs into fixed arrays (single writer, see the
// package comment) — and never allocates, so it is safe to call from
// allocation-pinned hot paths.
//
// The bucket layout trades resolution for zero configuration: power-of-two
// nanosecond boundaries give ~1.4x worst-case quantile error (geometric
// midpoint reporting) over the full ns-to-minutes range, which is plenty to
// tell a 2µs probe from a 200µs one on a dashboard.
type Histogram struct {
	count   atomic.Uint64
	sumNs   atomic.Uint64
	maxNs   atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// bucketOf returns the bucket index for a non-negative duration in ns.
func bucketOf(ns uint64) int {
	b := bits.Len64(ns) // 0 for ns == 0, k for 2^(k-1) <= ns < 2^k
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// BucketUpperNs returns the inclusive upper bound of bucket i in
// nanoseconds: 0 for bucket 0, 2^i − 1 for the middle buckets, and +Inf for
// the overflow bucket.
func BucketUpperNs(i int) float64 {
	switch {
	case i <= 0:
		return 0
	case i >= NumBuckets-1:
		return math.Inf(1)
	default:
		return float64(uint64(1)<<uint(i) - 1)
	}
}

// Record adds one observation. Negative durations are clamped to zero.
// Single writer only: the load/store pairs avoid LOCK-prefixed
// read-modify-writes, which is what keeps the instrumented engine within a
// few percent of the uninstrumented one.
func (h *Histogram) Record(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.count.Store(h.count.Load() + 1)
	h.sumNs.Store(h.sumNs.Load() + ns)
	b := &h.buckets[bucketOf(ns)]
	b.Store(b.Load() + 1)
	if ns > h.maxNs.Load() {
		h.maxNs.Store(ns)
	}
}

// ObserveSince records the time elapsed since t0 and returns the current
// time, so consecutive pipeline stages can be stamped with one clock read
// each:
//
//	t := time.Now()
//	... stage 1 ...
//	t = h1.ObserveSince(t)
//	... stage 2 ...
//	t = h2.ObserveSince(t)
func (h *Histogram) ObserveSince(t0 time.Time) time.Time {
	now := time.Now()
	h.Record(now.Sub(t0))
	return now
}

// StageClock stamps consecutive pipeline stages against one start reading on
// the package's shared monotonic clock (NowNs). Reset costs one monotonic
// read; each Observe costs one more plus a Record. For a five-stage pipeline
// that is 6 clock reads per reset instead of the 12 an ObserveSince chain
// would make — the difference between ~6% and ~3% overhead on a
// microsecond-scale hot path.
//
// Because the clock runs on NowNs offsets, a caller that already read the
// clock (to stamp an arrival, say) can arm it with ResetAt for free: the one
// reading serves the arrival stamp, the trace ring and the stage timing.
//
// The zero StageClock is unarmed: Observe on it records nothing, so callers
// can leave the clock untouched when metrics are disabled. Single writer,
// like the histograms it feeds.
type StageClock struct {
	startNs int64
	prevNs  int64
}

// Reset arms the clock: the next Observe records the time elapsed from now.
func (c *StageClock) Reset() {
	c.ResetAt(NowNs())
}

// ResetAt arms the clock at an already-taken NowNs reading, avoiding a
// second clock read when the caller stamped the instant for other purposes.
func (c *StageClock) ResetAt(nowNs int64) {
	c.startNs = nowNs
	c.prevNs = 0
}

// StartNs returns the NowNs reading the clock was armed at (0 = unarmed).
func (c *StageClock) StartNs() int64 { return c.startNs }

// Observe records the time since the previous Observe (or Reset) into h,
// advances the stage boundary, and returns the recorded duration so callers
// can accumulate a per-operation stage breakdown without a second clock
// read. Returns 0 without recording when the clock was never Reset.
func (c *StageClock) Observe(h *Histogram) time.Duration {
	if c.startNs == 0 {
		return 0
	}
	el := NowNs() - c.startNs
	d := time.Duration(el - c.prevNs)
	h.Record(d)
	c.prevNs = el
	return d
}

// Count returns the number of observations recorded so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// HistSnapshot is a copied view of a histogram, safe to analyze at leisure.
// Taken concurrently with recording it may be internally skewed by the
// in-flight observations (see the package comment); each field is monotone.
type HistSnapshot struct {
	Count   uint64
	SumNs   uint64
	MaxNs   uint64
	Buckets [NumBuckets]uint64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	// Read buckets before count: a concurrent Record bumps count first, so
	// this order can only under-report buckets relative to count, keeping
	// the exported cumulative counts ≤ the total as Prometheus requires.
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.SumNs = h.sumNs.Load()
	s.MaxNs = h.maxNs.Load()
	s.Count = 0
	for _, b := range s.Buckets {
		s.Count += b
	}
	return s
}

// MeanNs returns the mean observation in nanoseconds (0 when empty).
func (s HistSnapshot) MeanNs() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.Count)
}

// QuantileNs estimates the p-quantile (0 ≤ p ≤ 1) in nanoseconds by
// nearest-rank over the buckets, reporting the geometric midpoint of the
// bucket containing the rank (its exact value for the zero and overflow
// buckets' lower bound). The estimate is within the bucket's factor-of-two
// width of the true quantile.
func (s HistSnapshot) QuantileNs(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	cum := uint64(0)
	for i, b := range s.Buckets {
		cum += b
		if cum >= rank {
			if i == 0 {
				return 0
			}
			lo := float64(uint64(1) << uint(i-1))
			if i == NumBuckets-1 {
				return lo // open-ended overflow bucket: report its floor
			}
			return lo * math.Sqrt2 // geometric midpoint of [2^(i-1), 2^i)
		}
	}
	return float64(s.MaxNs)
}
