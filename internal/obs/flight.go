package obs

import (
	"sync/atomic"
	"time"
)

// MaxSpanStages bounds the per-stage breakdown carried by a Span. The owner
// defines what the indices mean (the engine's pipeline order, for pskyline).
const MaxSpanStages = 8

// Span is one write operation's timing record: where the time between a
// client handing an element to the front end and the element becoming
// visible to readers went. Offsets are on the package clock (WallAt converts
// AdmitNs for display); the phase durations partition TotalNs as
// Wait + Apply + Publish.
type Span struct {
	// Seq is the first sequence number applied by the operation; Batch the
	// number of elements it applied (1 for a plain Push).
	Seq   uint64
	Batch int32
	// Shard is the applying shard's index (−1 for unsharded monitors).
	Shard int32
	// Queue is the async ingestion queue depth when the operation entered
	// the locked apply section (−1 on synchronous paths).
	Queue int32
	// AdmitNs is the front-end admission stamp (NowNs) of the operation's
	// oldest element.
	AdmitNs int64
	// WaitNs is admission → apply start: queueing plus lock acquisition.
	WaitNs int64
	// ApplyNs is the locked apply phase: WAL logging plus the engine update.
	ApplyNs int64
	// PublishNs is apply end → view publication (top-k refresh included).
	PublishNs int64
	// TotalNs is admission → visibility: WaitNs + ApplyNs + PublishNs.
	TotalNs int64
	// StageNs breaks ApplyNs's engine portion down by pipeline stage, in
	// the engine's stage order (expire, probe, update_old, place, apply).
	StageNs [MaxSpanStages]int64
}

// spanSlot is one seqlock slot: even version = stable, odd = mid-write, and
// every payload field is an individual atomic so concurrent access stays
// well-defined for the race detector while the version pair provides
// cross-field consistency (same construction as the trace ring).
type spanSlot struct {
	ver     atomic.Uint64
	seq     atomic.Uint64
	batch   atomic.Int64
	shard   atomic.Int64
	queue   atomic.Int64
	admit   atomic.Int64
	wait    atomic.Int64
	apply   atomic.Int64
	publish atomic.Int64
	total   atomic.Int64
	stages  [MaxSpanStages]atomic.Int64
}

// SpanRing is a bounded lock-free ring of Spans: a single writer records
// (allocation-free — a fixed number of atomic stores into preallocated
// slots), any number of readers collect without ever blocking the writer. A
// slot overwritten while a reader decodes it is skipped, never returned
// torn.
type SpanRing struct {
	mask  uint64
	n     atomic.Uint64 // total spans ever written
	slots []spanSlot
}

// NewSpanRing returns a ring holding the last `depth` spans (rounded up to a
// power of two, minimum 1).
func NewSpanRing(depth int) *SpanRing {
	if depth <= 0 {
		depth = 1
	}
	cap := 1
	for cap < depth {
		cap <<= 1
	}
	return &SpanRing{mask: uint64(cap - 1), slots: make([]spanSlot, cap)}
}

// Record appends one span. Single writer only; never allocates.
func (r *SpanRing) Record(sp *Span) {
	pos := r.n.Load()
	s := &r.slots[pos&r.mask]
	v := s.ver.Load()
	s.ver.Store(v + 1)
	s.seq.Store(sp.Seq)
	s.batch.Store(int64(sp.Batch))
	s.shard.Store(int64(sp.Shard))
	s.queue.Store(int64(sp.Queue))
	s.admit.Store(sp.AdmitNs)
	s.wait.Store(sp.WaitNs)
	s.apply.Store(sp.ApplyNs)
	s.publish.Store(sp.PublishNs)
	s.total.Store(sp.TotalNs)
	for i := range sp.StageNs {
		s.stages[i].Store(sp.StageNs[i])
	}
	s.ver.Store(v + 2)
	r.n.Store(pos + 1)
}

// Count returns the total number of spans ever recorded.
func (r *SpanRing) Count() uint64 { return r.n.Load() }

// Collect decodes the ring's current contents, oldest first. Spans being
// overwritten concurrently are skipped; everything returned is complete and
// untorn.
func (r *SpanRing) Collect() []Span {
	n := r.n.Load()
	depth := uint64(len(r.slots))
	start := uint64(0)
	if n > depth {
		start = n - depth
	}
	out := make([]Span, 0, n-start)
	for pos := start; pos < n; pos++ {
		s := &r.slots[pos&r.mask]
		v1 := s.ver.Load()
		if v1&1 == 1 {
			continue
		}
		sp := Span{
			Seq:       s.seq.Load(),
			Batch:     int32(s.batch.Load()),
			Shard:     int32(s.shard.Load()),
			Queue:     int32(s.queue.Load()),
			AdmitNs:   s.admit.Load(),
			WaitNs:    s.wait.Load(),
			ApplyNs:   s.apply.Load(),
			PublishNs: s.publish.Load(),
			TotalNs:   s.total.Load(),
		}
		for i := range sp.StageNs {
			sp.StageNs[i] = s.stages[i].Load()
		}
		if s.ver.Load() != v1 {
			continue // overwritten while decoding
		}
		out = append(out, sp)
	}
	return out
}

// Flight-recorder defaults (used when the corresponding option is 0).
const (
	DefaultFlightDepth   = 512
	DefaultSlowDepth     = 128
	DefaultSlowThreshold = 5 * time.Millisecond
)

// FlightRecorder keeps the always-on short-term memory of the write path:
// every operation's span lands in a recent ring, and operations whose
// admission-to-visibility total meets the slow threshold are additionally
// latched into a separate slow ring, so the handful of outliers behind a bad
// p999 survive long after the recent ring has cycled past them. Recording is
// allocation-free and single-writer; dumping (Recent/Slow) is lock-free from
// any goroutine.
type FlightRecorder struct {
	recent      *SpanRing
	slow        *SpanRing
	thresholdNs int64
	recorded    Counter
	slowCount   Counter
}

// NewFlightRecorder sizes the rings and the slow threshold (0 selects the
// package defaults).
func NewFlightRecorder(recentDepth, slowDepth int, slowThreshold time.Duration) *FlightRecorder {
	if recentDepth <= 0 {
		recentDepth = DefaultFlightDepth
	}
	if slowDepth <= 0 {
		slowDepth = DefaultSlowDepth
	}
	if slowThreshold <= 0 {
		slowThreshold = DefaultSlowThreshold
	}
	return &FlightRecorder{
		recent:      NewSpanRing(recentDepth),
		slow:        NewSpanRing(slowDepth),
		thresholdNs: int64(slowThreshold),
	}
}

// Record files one operation's span. Single writer only; never allocates.
func (f *FlightRecorder) Record(sp *Span) {
	f.recorded.Inc()
	f.recent.Record(sp)
	if sp.TotalNs >= f.thresholdNs {
		f.slowCount.Inc()
		f.slow.Record(sp)
	}
}

// Recent returns the most recent spans, oldest first.
func (f *FlightRecorder) Recent() []Span { return f.recent.Collect() }

// Slow returns the latched slow spans, oldest first.
func (f *FlightRecorder) Slow() []Span { return f.slow.Collect() }

// Threshold returns the slow-latch threshold.
func (f *FlightRecorder) Threshold() time.Duration { return time.Duration(f.thresholdNs) }

// Recorded returns the total number of spans recorded.
func (f *FlightRecorder) Recorded() uint64 { return f.recorded.Load() }

// SlowLatched returns the number of spans that met the slow threshold.
func (f *FlightRecorder) SlowLatched() uint64 { return f.slowCount.Load() }
