package obs

import (
	"sync"
	"testing"
	"time"
)

// encodeSpan builds a span whose every field is derived from k, so a reader
// can detect any cross-field tearing: a collected span mixing two records
// fails the derivation check.
func encodeSpan(k uint64) Span {
	sp := Span{
		Seq:       k,
		Batch:     int32(k%1000 + 1),
		Shard:     int32(k % 7),
		Queue:     int32(k % 11),
		AdmitNs:   int64(k * 3),
		WaitNs:    int64(k * 5),
		ApplyNs:   int64(k * 7),
		PublishNs: int64(k * 11),
		TotalNs:   int64(k*5 + k*7 + k*11),
	}
	for i := range sp.StageNs {
		sp.StageNs[i] = int64(k + uint64(i))
	}
	return sp
}

func checkSpan(t *testing.T, sp Span) {
	t.Helper()
	k := sp.Seq
	want := encodeSpan(k)
	if sp != want {
		t.Errorf("torn span for k=%d: got %+v want %+v", k, sp, want)
	}
}

// TestSpanRingWrapTornReads is the seqlock torture test: a tiny ring forces
// constant wrap-around while concurrent readers collect. Every collected
// span must decode to a single record's consistent field set — a reader
// observing a torn (odd or changed) version must skip, never return a mix.
// Run under -race this also proves the atomics discipline.
func TestSpanRingWrapTornReads(t *testing.T) {
	r := NewSpanRing(4) // wraps every 4 records
	const writes = 200_000
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for i := 0; i < 4; i++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					for _, sp := range r.Collect() {
						checkSpan(t, sp)
					}
				}
			}
		}()
	}
	for k := uint64(1); k <= writes; k++ {
		sp := encodeSpan(k)
		r.Record(&sp)
	}
	close(stop)
	rg.Wait()
	if r.Count() != writes {
		t.Fatalf("count %d, want %d", r.Count(), writes)
	}
	// Quiescent collect: the last min(depth, writes) records, in order.
	got := r.Collect()
	if len(got) != 4 {
		t.Fatalf("collected %d records from a depth-4 ring", len(got))
	}
	for i, sp := range got {
		if want := uint64(writes - 3 + i); sp.Seq != want {
			t.Errorf("record %d: seq %d, want %d", i, sp.Seq, want)
		}
		checkSpan(t, sp)
	}
}

func TestSpanRingDepthRounding(t *testing.T) {
	for _, c := range []struct{ depth, want int }{
		{0, 1}, {1, 1}, {3, 4}, {4, 4}, {100, 128},
	} {
		if r := NewSpanRing(c.depth); len(r.slots) != c.want {
			t.Errorf("NewSpanRing(%d): %d slots, want %d", c.depth, len(r.slots), c.want)
		}
	}
}

func TestFlightRecorderSlowLatch(t *testing.T) {
	f := NewFlightRecorder(8, 4, time.Millisecond)
	if f.Threshold() != time.Millisecond {
		t.Fatalf("threshold %v", f.Threshold())
	}
	// 20 fast spans cycle the recent ring; 2 slow ones latch.
	for k := uint64(1); k <= 20; k++ {
		sp := encodeSpan(k)
		sp.TotalNs = int64(50 * time.Microsecond)
		f.Record(&sp)
	}
	for _, k := range []uint64{100, 200} {
		sp := encodeSpan(k)
		sp.TotalNs = int64(3 * time.Millisecond)
		f.Record(&sp)
	}
	if f.Recorded() != 22 || f.SlowLatched() != 2 {
		t.Fatalf("recorded=%d slow=%d", f.Recorded(), f.SlowLatched())
	}
	slow := f.Slow()
	if len(slow) != 2 || slow[0].Seq != 100 || slow[1].Seq != 200 {
		t.Fatalf("slow ring: %+v", slow)
	}
	recent := f.Recent()
	if len(recent) != 8 {
		t.Fatalf("recent ring holds %d", len(recent))
	}
	// The slow spans are also the most recent ones.
	if recent[len(recent)-1].Seq != 200 {
		t.Fatalf("recent tail: %+v", recent[len(recent)-1])
	}

	// Defaults kick in for zeroed config.
	d := NewFlightRecorder(0, 0, 0)
	if d.Threshold() != DefaultSlowThreshold || len(d.recent.slots) != DefaultFlightDepth || len(d.slow.slots) != DefaultSlowDepth {
		t.Fatalf("defaults: %v %d %d", d.Threshold(), len(d.recent.slots), len(d.slow.slots))
	}
}

// TestFlightRecordAllocs pins the flight-recording hot path (including a
// slow latch) at zero allocations.
func TestFlightRecordAllocs(t *testing.T) {
	f := NewFlightRecorder(16, 8, time.Microsecond)
	k := uint64(0)
	if avg := testing.AllocsPerRun(2000, func() {
		k++
		sp := encodeSpan(k)
		sp.TotalNs = int64(time.Millisecond) // always latches
		f.Record(&sp)
	}); avg != 0 {
		t.Fatalf("flight Record allocated %.2f allocs/op, want 0", avg)
	}
}
