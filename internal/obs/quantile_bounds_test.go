package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestQuantileErrorBounds pins the documented log2-histogram quantile error
// against exact quantiles computed from the raw samples of a synthetic
// distribution. With geometric-midpoint reporting the estimate for any
// non-degenerate bucket is within √2 of every value in that bucket, and the
// nearest-rank sample lands in the same bucket as the nearest-rank estimate,
// so the estimate/exact ratio must stay within [1/√2, √2] — the "±1 bucket,
// at most a factor of two" bound the -summary output documents.
func TestQuantileErrorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	quantiles := []float64{0.10, 0.50, 0.90, 0.99, 0.999}

	for _, dist := range []struct {
		name string
		draw func() float64 // sample in ns
	}{
		// Log-normal: the canonical latency shape — long right tail.
		{"lognormal", func() float64 { return math.Exp(rng.NormFloat64()*1.5 + 9) }},
		// Uniform over three decades.
		{"uniform", func() float64 { return 1e3 + rng.Float64()*999e3 }},
		// Bimodal: fast path vs slow path.
		{"bimodal", func() float64 {
			if rng.Float64() < 0.95 {
				return 2e3 + rng.Float64()*1e3
			}
			return 4e6 + rng.Float64()*2e6
		}},
	} {
		var h Histogram
		const n = 50_000
		samples := make([]float64, n)
		for i := range samples {
			v := dist.draw()
			if v < 1 {
				v = 1
			}
			samples[i] = v
			h.Record(time.Duration(v))
		}
		sort.Float64s(samples)
		snap := h.Snapshot()

		for _, p := range quantiles {
			rank := int(math.Ceil(p * n))
			if rank == 0 {
				rank = 1
			}
			exact := samples[rank-1]
			est := snap.QuantileNs(p)
			ratio := est / exact
			if ratio < 1/math.Sqrt2-1e-9 || ratio > math.Sqrt2+1e-9 {
				t.Errorf("%s p%g: estimate %.0f ns vs exact %.0f ns (ratio %.3f) exceeds the ±1-bucket bound",
					dist.name, p*100, est, exact, ratio)
			}
		}
	}
}
