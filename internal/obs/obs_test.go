package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns     uint64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4},
		{1023, 10}, {1024, 11}, {1025, 11},
		{1 << 20, 21},
		{1<<37 - 1, 37},
		{1 << 37, 38},             // first value of the overflow bucket
		{1 << 50, NumBuckets - 1}, // deep overflow clamps
		{math.MaxUint64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.bucket)
		}
	}
	var h Histogram
	for _, c := range cases {
		h.Record(time.Duration(min64(c.ns, 1<<40)))
	}
	s := h.Snapshot()
	if s.Count != uint64(len(cases)) {
		t.Fatalf("count %d, want %d", s.Count, len(cases))
	}
	// Every recorded value must land at or below its bucket's upper bound.
	for i := 0; i < NumBuckets-1; i++ {
		up := BucketUpperNs(i)
		if lo := BucketUpperNs(i - 1); i > 0 && up <= lo {
			t.Fatalf("bucket bounds not increasing at %d: %v <= %v", i, up, lo)
		}
	}
	if !math.IsInf(BucketUpperNs(NumBuckets-1), 1) {
		t.Fatal("overflow bucket upper bound must be +Inf")
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	var h Histogram
	h.Record(-5 * time.Second)
	s := h.Snapshot()
	if s.Buckets[0] != 1 || s.SumNs != 0 || s.MaxNs != 0 {
		t.Fatalf("negative duration not clamped: %+v", s)
	}
}

func TestQuantileEstimates(t *testing.T) {
	var h Histogram
	// 100 observations of ~1µs, 10 of ~100µs, 1 of ~10ms.
	for i := 0; i < 100; i++ {
		h.Record(1 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(100 * time.Microsecond)
	}
	h.Record(10 * time.Millisecond)
	s := h.Snapshot()

	if s.Count != 111 {
		t.Fatalf("count %d", s.Count)
	}
	// The p50 must land in the 1µs bucket: within a factor of 2 of 1000ns.
	p50 := s.QuantileNs(0.50)
	if p50 < 500 || p50 > 2000 {
		t.Errorf("p50 = %v ns, want ~1000", p50)
	}
	// 100/111 ≈ 0.9009, so p90 is still a 1µs observation, p95 is 100µs.
	if p90 := s.QuantileNs(0.90); p90 < 500 || p90 > 2000 {
		t.Errorf("p90 = %v ns, want ~1000", p90)
	}
	if p95 := s.QuantileNs(0.95); p95 < 50_000 || p95 > 200_000 {
		t.Errorf("p95 = %v ns, want ~100000", p95)
	}
	// p100 lands in the 10ms bucket.
	if p100 := s.QuantileNs(1); p100 < 5e6 || p100 > 2e7 {
		t.Errorf("p100 = %v ns, want ~1e7", p100)
	}
	if s.MaxNs != uint64(10*time.Millisecond) {
		t.Errorf("max = %d", s.MaxNs)
	}
	// (100·1e3 + 10·1e5 + 1e7) / 111 = 1e5 exactly.
	if mean := s.MeanNs(); mean != 100_000 {
		t.Errorf("mean = %v ns, want 100000", mean)
	}
	// Degenerate inputs.
	var empty HistSnapshot
	if empty.QuantileNs(0.5) != 0 || empty.MeanNs() != 0 {
		t.Error("empty snapshot quantile/mean not 0")
	}
	if v := s.QuantileNs(-1); v != s.QuantileNs(0) {
		t.Errorf("p<0 not clamped: %v", v)
	}
	if v := s.QuantileNs(2); v != s.QuantileNs(1) {
		t.Errorf("p>1 not clamped: %v", v)
	}
}

// TestConcurrentRecording exercises the package's concurrency contract —
// one recording goroutine, many concurrent readers snapshotting and
// scraping continuously. Run under -race this proves the reader side never
// races the writer, and the final totals prove no update is lost. (The
// contract deliberately excludes concurrent WRITERS: recording uses plain
// atomic load/store pairs, so unserialized writers would lose increments —
// see the package comment.)
func TestConcurrentRecording(t *testing.T) {
	var h Histogram
	var c Counter
	var g Gauge
	const readers = 7
	const total = 40_000
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s := h.Snapshot()
					if s.QuantileNs(0.99) < 0 {
						t.Error("negative quantile")
						return
					}
					if s.Count > total {
						t.Errorf("count overshoot: %d", s.Count)
						return
					}
					_ = c.Load()
					_ = g.Load()
				}
			}
		}()
	}
	// Serialized writers with a happens-before edge between them (here:
	// sequential in one goroutine) are the supported recording pattern.
	for i := 0; i < total; i++ {
		h.Record(time.Duration(i % 7000))
		c.Inc()
		g.SetInt(i)
	}
	close(stop)
	rg.Wait()
	if got := h.Snapshot().Count; got != total {
		t.Fatalf("lost observations: %d != %d", got, total)
	}
	if got := c.Load(); got != total {
		t.Fatalf("lost counts: %d != %d", got, total)
	}
}

func TestStageClock(t *testing.T) {
	var h1, h2 Histogram
	// The zero clock is unarmed: Observe must record nothing.
	var c StageClock
	c.Observe(&h1)
	if h1.Count() != 0 {
		t.Fatal("unarmed StageClock recorded an observation")
	}
	c.Reset()
	time.Sleep(2 * time.Millisecond)
	c.Observe(&h1)
	time.Sleep(time.Millisecond)
	c.Observe(&h2)
	s1, s2 := h1.Snapshot(), h2.Snapshot()
	if s1.Count != 1 || s2.Count != 1 {
		t.Fatalf("counts %d/%d, want 1/1", s1.Count, s2.Count)
	}
	// Each stage sees only its own interval, not time since Reset.
	if s1.SumNs < uint64(2*time.Millisecond) {
		t.Errorf("stage 1 recorded %d ns, want >= 2ms", s1.SumNs)
	}
	// No upper-bound assertion: sleeps oversleep arbitrarily under load, so
	// only the lower bound is robust.
	if s2.SumNs < uint64(time.Millisecond) {
		t.Errorf("stage 2 recorded %d ns, want >= 1ms", s2.SumNs)
	}
	// Re-arming restarts the chain.
	c.Reset()
	c.Observe(&h2)
	if got := h2.Snapshot().Count; got != 2 {
		t.Fatalf("count after re-arm %d, want 2", got)
	}
}

// TestRecordAllocs pins the recording hot path at zero allocations.
func TestRecordAllocs(t *testing.T) {
	var h Histogram
	var c Counter
	var g Gauge
	if avg := testing.AllocsPerRun(1000, func() {
		h.Record(1234 * time.Nanosecond)
		c.Inc()
		g.Set(42.5)
	}); avg != 0 {
		t.Fatalf("Record/Inc/Set allocated %.2f allocs/op, want 0", avg)
	}
	t0 := time.Now()
	if avg := testing.AllocsPerRun(1000, func() {
		t0 = h.ObserveSince(t0)
	}); avg != 0 {
		t.Fatalf("ObserveSince allocated %.2f allocs/op, want 0", avg)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(7)
	var g Gauge
	g.Set(3.5)
	var h Histogram
	h.Record(3 * time.Nanosecond) // bucket 2, le (2^2-1)/1e9
	h.Record(1 * time.Microsecond)
	r.RegisterCounter("test_ops_total", "Total ops.", &c)
	r.RegisterGauge("test_level", "Current level.", &g, Label{"kind", "water"})
	r.RegisterGaugeFunc("test_fn", "Computed.", func() float64 { return 9 })
	r.RegisterHistogram("test_latency_seconds", "Stage latency.", &h, Label{"stage", "probe"})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_ops_total counter\n",
		"test_ops_total 7\n",
		"# TYPE test_level gauge\n",
		`test_level{kind="water"} 3.5` + "\n",
		"test_fn 9\n",
		"# TYPE test_latency_seconds histogram\n",
		`test_latency_seconds_bucket{stage="probe",le="+Inf"} 2` + "\n",
		`test_latency_seconds_count{stage="probe"} 2` + "\n",
		`test_latency_seconds_sum{stage="probe"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be non-decreasing down the exposition.
	last := -1
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "test_latency_seconds_bucket") {
			var v int
			if _, err := fmtSscanfTail(line, &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			if v < last {
				t.Fatalf("cumulative counts decrease: %q after %d", line, last)
			}
			last = v
		}
	}
	if last != 2 {
		t.Fatalf("final cumulative bucket %d, want 2", last)
	}
}

// fmtSscanfTail parses the integer sample value at the end of a line.
func fmtSscanfTail(line string, v *int) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	n, err := parseInt(line[i+1:])
	*v = n
	return n, err
}

func parseInt(s string) (int, error) {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, errBadInt
		}
		n = n*10 + int(r-'0')
	}
	return n, nil
}

var errBadInt = errorString("bad int")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(3)
	var h Histogram
	h.Record(time.Microsecond)
	r.RegisterCounter("ops", "Ops.", &c)
	r.RegisterHistogram("lat", "Latency.", &h, Label{"stage", "x"})
	r.RegisterHistogram("lat", "Latency.", &Histogram{}, Label{"stage", "y"})

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if m["ops"] != 3.0 {
		t.Errorf("ops = %v", m["ops"])
	}
	lat, ok := m["lat"].(map[string]any)
	if !ok {
		t.Fatalf("lat = %T", m["lat"])
	}
	x, ok := lat[`stage=x`].(map[string]any)
	if !ok {
		t.Fatalf("lat[stage=x] = %v", lat)
	}
	if x["count"] != 1.0 {
		t.Errorf("lat count = %v", x["count"])
	}
}
