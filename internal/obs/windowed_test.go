package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWindowedHistogramRotation(t *testing.T) {
	var w WindowedHistogram
	w.Init(time.Second)
	if w.Epoch() != time.Second || w.Window() != NumEpochs*time.Second {
		t.Fatalf("epoch %v window %v", w.Epoch(), w.Window())
	}
	epoch := int64(time.Second)

	// Epoch 1: slow observations. Epoch 10 (far later): fast ones. A
	// snapshot taken during epoch 10 must only see the fast ones — the
	// whole point of the windowed view.
	for i := 0; i < 100; i++ {
		w.Record(1*epoch+int64(i), 10*time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		w.Record(10*epoch+int64(i), 10*time.Microsecond)
	}

	now := 10*epoch + 500
	s := w.Snapshot(now)
	if s.Count != 100 {
		t.Fatalf("recent count %d, want 100 (stale epoch leaked in)", s.Count)
	}
	if p99 := s.QuantileNs(0.99); p99 > 1e6 {
		t.Fatalf("recent p99 %v ns includes the stale slow epoch", p99)
	}
	// The cumulative view keeps everything.
	if total := w.TotalSnapshot(); total.Count != 200 {
		t.Fatalf("total count %d, want 200", total.Count)
	}

	// Within the window, multiple epochs merge.
	w.Record(11*epoch, 20*time.Microsecond)
	s = w.Snapshot(11*epoch + 1)
	if s.Count != 101 {
		t.Fatalf("merged count %d, want 101", s.Count)
	}

	// Far in the future every epoch is stale: the snapshot drains empty.
	if s := w.Snapshot(100 * epoch); s.Count != 0 {
		t.Fatalf("stale snapshot count %d, want 0", s.Count)
	}
}

func TestWindowedHistogramRecycling(t *testing.T) {
	var w WindowedHistogram
	w.Init(time.Millisecond)
	epoch := int64(time.Millisecond)
	// Burn through many more epochs than slots; each epoch records its
	// index count. The final snapshot must cover at most NumEpochs epochs
	// and the counts of the surviving ones exactly.
	const epochs = 4 * NumEpochs
	for e := int64(1); e <= epochs; e++ {
		for i := int64(0); i < e; i++ {
			w.Record(e*epoch+i, time.Duration(e)*time.Microsecond)
		}
	}
	now := epochs*epoch + epoch/2
	s := w.Snapshot(now)
	// The survivors are the last NumEpochs-1 full epochs at most (the
	// oldest slot may have been recycled); at minimum the last one.
	min := uint64(epochs)
	max := uint64(0)
	for e := uint64(epochs - NumEpochs + 1); e <= epochs; e++ {
		max += e
	}
	if s.Count < min || s.Count > max {
		t.Fatalf("recycled snapshot count %d, want in [%d, %d]", s.Count, min, max)
	}
	if w.TotalSnapshot().Count != uint64(epochs*(epochs+1)/2) {
		t.Fatalf("total count %d", w.TotalSnapshot().Count)
	}
}

// TestWindowedHistogramConcurrentReaders proves the single-writer /
// many-reader contract under -race, including rotations: readers snapshot
// continuously while the writer records across epoch boundaries, and no
// snapshot may report more than the writer wrote or a negative quantile.
func TestWindowedHistogramConcurrentReaders(t *testing.T) {
	var w WindowedHistogram
	w.Init(10 * time.Microsecond) // rotate aggressively
	const total = 50_000
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s := w.Snapshot(NowNs())
					if s.Count > total {
						t.Errorf("snapshot count overshoot: %d", s.Count)
						return
					}
					if s.QuantileNs(0.999) < 0 {
						t.Error("negative quantile")
						return
					}
				}
			}
		}()
	}
	for i := 0; i < total; i++ {
		w.Record(NowNs(), time.Duration(i%5000))
	}
	close(stop)
	rg.Wait()
	if got := w.TotalSnapshot().Count; got != total {
		t.Fatalf("lost observations: %d != %d", got, total)
	}
}

// TestWindowedRecordAllocs pins windowed recording at zero allocations.
func TestWindowedRecordAllocs(t *testing.T) {
	var w WindowedHistogram
	w.Init(time.Millisecond) // rotations happen inside the loop, too
	if avg := testing.AllocsPerRun(5000, func() {
		w.Record(NowNs(), 1234*time.Nanosecond)
	}); avg != 0 {
		t.Fatalf("windowed Record allocated %.2f allocs/op, want 0", avg)
	}
}

func TestWindowedExport(t *testing.T) {
	r := NewRegistry()
	var w WindowedHistogram
	w.Init(time.Minute) // one epoch: everything recent
	for i := 0; i < 100; i++ {
		w.Record(NowNs(), time.Millisecond)
	}
	r.RegisterWindowed("test_visibility_seconds", "Visibility latency.", &w, Label{"shard", "0"})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_visibility_seconds summary\n",
		`test_visibility_seconds{shard="0",quantile="0.5"} `,
		`test_visibility_seconds{shard="0",quantile="0.99"} `,
		`test_visibility_seconds{shard="0",quantile="0.999"} `,
		`test_visibility_seconds_count{shard="0"} 100` + "\n",
		`test_visibility_seconds_sum{shard="0"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// The p50 sample must be ~1ms in seconds (factor-2 bucket tolerance).
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `test_visibility_seconds{shard="0",quantile="0.5"}`) {
			v := line[strings.LastIndexByte(line, ' ')+1:]
			var f float64
			if err := json.Unmarshal([]byte(v), &f); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			if f < 0.0005 || f > 0.002 {
				t.Errorf("p50 %v s, want ~0.001", f)
			}
		}
	}

	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	vis, ok := m["test_visibility_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("test_visibility_seconds = %T", m["test_visibility_seconds"])
	}
	inner, ok := vis["shard=0"].(map[string]any)
	if !ok {
		t.Fatalf("missing labeled series: %v", vis)
	}
	if inner["recent_count"] != 100.0 || inner["total_count"] != 100.0 {
		t.Errorf("counts: %v", inner)
	}
	if inner["p999_ns"].(float64) <= 0 {
		t.Errorf("p999_ns: %v", inner["p999_ns"])
	}
}
