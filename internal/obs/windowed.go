package obs

import (
	"sync/atomic"
	"time"
)

// NumEpochs is the number of epoch slots a WindowedHistogram rotates
// through. A snapshot merges every non-stale slot, so the quantiles cover at
// most NumEpochs epochs and at least NumEpochs−1 complete ones plus the
// in-progress one.
const NumEpochs = 6

// DefaultEpoch is the epoch length used when Init is called with 0.
const DefaultEpoch = 10 * time.Second

// WindowedHistogram is a log2 latency histogram whose quantiles cover only
// the recent past: observations land in the current epoch of a small ring of
// per-epoch bucket arrays, and a snapshot merges the epochs still inside the
// window, so an exported p99 reflects the last ~NumEpochs·epoch rather than
// the process lifetime. A cumulative Histogram is maintained alongside for
// monotone `_sum`/`_count` export (the Prometheus summary convention:
// sliding-window quantiles, lifetime totals).
//
// Concurrency follows the package contract: one writer (Record, including
// the epoch rotation it performs), any number of lock-free readers. Rotation
// is made torn-read safe the seqlock way: the writer zeroes the slot's epoch
// tag first — readers skip slots whose tag is 0 — clears the buckets, then
// publishes the new tag; readers re-check the tag after decoding and discard
// the slot if it changed mid-read. Recording is allocation-free.
//
// The zero value is not ready for use: call Init once before the first
// Record (it sets the epoch length; calling it later would race the writer).
type WindowedHistogram struct {
	epochNs int64         // immutable after Init
	cur     atomic.Uint64 // active slot index (monotonically increasing)
	epochs  [NumEpochs]epochHist
	total   Histogram
}

type epochHist struct {
	epoch   atomic.Int64 // 1-based epoch index (nowNs/epochNs + 1); 0 = empty/clearing
	sumNs   atomic.Uint64
	maxNs   atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// Init sets the epoch length (0 selects DefaultEpoch). Call exactly once,
// before the first Record or Snapshot.
func (w *WindowedHistogram) Init(epoch time.Duration) {
	if epoch <= 0 {
		epoch = DefaultEpoch
	}
	w.epochNs = int64(epoch)
}

// Epoch returns the configured epoch length.
func (w *WindowedHistogram) Epoch() time.Duration { return time.Duration(w.epochNs) }

// Window returns the maximum span the recent quantiles cover.
func (w *WindowedHistogram) Window() time.Duration {
	return time.Duration(w.epochNs * NumEpochs)
}

// Record adds one observation at the given NowNs reading. Negative durations
// clamp to zero. Single writer only.
func (w *WindowedHistogram) Record(nowNs int64, d time.Duration) {
	w.total.Record(d)
	e := w.activeEpoch(nowNs)
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	e.sumNs.Store(e.sumNs.Load() + ns)
	b := &e.buckets[bucketOf(ns)]
	b.Store(b.Load() + 1)
	if ns > e.maxNs.Load() {
		e.maxNs.Store(ns)
	}
}

// activeEpoch returns the slot for nowNs's epoch, rotating to (and clearing)
// the next slot when the active one belongs to an older epoch. Writer only.
func (w *WindowedHistogram) activeEpoch(nowNs int64) *epochHist {
	idx := nowNs/w.epochNs + 1 // 1-based so 0 stays the empty sentinel
	cur := w.cur.Load()
	e := &w.epochs[cur%NumEpochs]
	if e.epoch.Load() == idx {
		return e
	}
	if e.epoch.Load() == 0 && cur == 0 {
		// First ever record: claim slot 0 in place.
		e.epoch.Store(idx)
		return e
	}
	// Rotate: retire the active slot and recycle the oldest. Readers skip
	// the slot while epoch is 0, so the clear can't be observed half-done.
	cur++
	e = &w.epochs[cur%NumEpochs]
	e.epoch.Store(0)
	e.sumNs.Store(0)
	e.maxNs.Store(0)
	for i := range e.buckets {
		e.buckets[i].Store(0)
	}
	e.epoch.Store(idx)
	w.cur.Store(cur)
	return e
}

// Snapshot merges the epochs still inside the window ending at nowNs into
// one HistSnapshot (so QuantileNs/MeanNs report over the recent window
// only). Slots mid-rotation or staler than NumEpochs epochs are skipped.
// Safe from any goroutine.
func (w *WindowedHistogram) Snapshot(nowNs int64) HistSnapshot {
	var s HistSnapshot
	if w.epochNs == 0 {
		return s
	}
	nowIdx := nowNs/w.epochNs + 1
	for i := range w.epochs {
		e := &w.epochs[i]
		idx := e.epoch.Load()
		if idx == 0 || idx <= nowIdx-NumEpochs || idx > nowIdx {
			continue
		}
		var buckets [NumBuckets]uint64
		n := uint64(0)
		for j := range e.buckets {
			buckets[j] = e.buckets[j].Load()
			n += buckets[j]
		}
		sum := e.sumNs.Load()
		max := e.maxNs.Load()
		if e.epoch.Load() != idx {
			continue // recycled mid-read: discard the torn decode
		}
		for j, b := range buckets {
			s.Buckets[j] += b
		}
		s.Count += n
		s.SumNs += sum
		if max > s.MaxNs {
			s.MaxNs = max
		}
	}
	return s
}

// TotalSnapshot returns the cumulative (process-lifetime) histogram, for
// monotone `_sum`/`_count` export next to the windowed quantiles.
func (w *WindowedHistogram) TotalSnapshot() HistSnapshot {
	return w.total.Snapshot()
}
