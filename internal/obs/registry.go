package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Registry is an ordered collection of named metric families for export.
// Registration happens at construction time (it allocates and is not
// synchronized with itself); after that the registry is immutable and the
// exporters may run concurrently with recording from any goroutine.
//
// A family is one metric name with HELP/TYPE metadata; labeled series
// registered under the same name join the existing family, so a stage
// histogram family renders as one TYPE block with a `stage` label per
// series, the way Prometheus expects.
type Registry struct {
	families []*family
	byName   map[string]*family
}

type family struct {
	name, help, typ string // typ: "counter", "gauge", "histogram", "summary"
	series          []series
}

// series is one exported time series: exactly one of the value sources is
// set. Function-backed sources let the registry export values that are
// derived at scrape time (theory bounds, ages) or mirrored from non-atomic
// state at publish time.
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
	whist   *WindowedHistogram
}

// Label is one key="value" pair attached to a series.
type Label struct {
	Key, Value string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) add(name, help, typ string, s series) {
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	f.series = append(f.series, s)
}

// RegisterCounter exports c under name.
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...Label) {
	r.add(name, help, "counter", series{labels: labels, counter: c})
}

// RegisterCounterFunc exports a counter whose value is produced by fn at
// scrape time. fn must be safe for concurrent use and monotone.
func (r *Registry) RegisterCounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(name, help, "counter", series{labels: labels, fn: fn})
}

// RegisterGauge exports g under name.
func (r *Registry) RegisterGauge(name, help string, g *Gauge, labels ...Label) {
	r.add(name, help, "gauge", series{labels: labels, gauge: g})
}

// RegisterGaugeFunc exports a gauge whose value is produced by fn at scrape
// time. fn must be safe for concurrent use.
func (r *Registry) RegisterGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(name, help, "gauge", series{labels: labels, fn: fn})
}

// RegisterHistogram exports h under name.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) {
	r.add(name, help, "histogram", series{labels: labels, hist: h})
}

// RegisterWindowed exports w under name as a Prometheus summary: quantile
// series computed over the recent epoch window at scrape time, with the
// cumulative (lifetime) `_sum` and `_count` the summary convention requires.
func (r *Registry) RegisterWindowed(name, help string, w *WindowedHistogram, labels ...Label) {
	r.add(name, help, "summary", series{labels: labels, whist: w})
}

func (s series) value() float64 {
	switch {
	case s.counter != nil:
		return float64(s.counter.Load())
	case s.gauge != nil:
		return s.gauge.Load()
	case s.fn != nil:
		return s.fn()
	}
	return 0
}

// labelKey renders the series labels as a stable sorted key ("" when the
// series is unlabeled).
func (s series) labelKey() string {
	if len(s.labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), s.labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = l.Key + "=" + l.Value
	}
	return strings.Join(parts, ",")
}
