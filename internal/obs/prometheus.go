package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): a HELP and TYPE line per family, one
// sample line per series, and for histograms the cumulative `_bucket` series
// with `le` in seconds plus `_sum` and `_count`. It is safe to call
// concurrently with metric recording.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families {
		bw.WriteString("# HELP " + f.name + " " + escapeHelp(f.help) + "\n")
		bw.WriteString("# TYPE " + f.name + " " + f.typ + "\n")
		for _, s := range f.series {
			if f.typ == "histogram" {
				writePromHistogram(bw, f.name, s)
				continue
			}
			if f.typ == "summary" {
				writePromSummary(bw, f.name, s)
				continue
			}
			bw.WriteString(f.name + promLabels(s.labels, "", 0))
			bw.WriteByte(' ')
			bw.WriteString(formatFloat(s.value()))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

func writePromHistogram(bw *bufio.Writer, name string, s series) {
	snap := s.hist.Snapshot()
	cum := uint64(0)
	for i, b := range snap.Buckets {
		cum += b
		if b == 0 && i != NumBuckets-1 {
			// Empty buckets add nothing to the cumulative counts; skip them
			// to keep the exposition compact. The +Inf bucket is mandatory.
			continue
		}
		bw.WriteString(name + "_bucket" + promLabels(s.labels, "le", i) + " ")
		bw.WriteString(strconv.FormatUint(cum, 10))
		bw.WriteByte('\n')
	}
	bw.WriteString(name + "_sum" + promLabels(s.labels, "", 0) + " ")
	bw.WriteString(formatFloat(float64(snap.SumNs) / 1e9))
	bw.WriteByte('\n')
	bw.WriteString(name + "_count" + promLabels(s.labels, "", 0) + " ")
	bw.WriteString(strconv.FormatUint(snap.Count, 10))
	bw.WriteByte('\n')
}

// summaryQuantiles are the quantile series a windowed summary exports.
var summaryQuantiles = [...]float64{0.5, 0.99, 0.999}

// writePromSummary renders a windowed histogram the way a Prometheus client
// renders a sliding-window summary: quantile series (in seconds) computed
// over the recent epoch window, and cumulative lifetime `_sum`/`_count`. An
// empty window reports NaN quantiles, matching client_golang.
func writePromSummary(bw *bufio.Writer, name string, s series) {
	snap := s.whist.Snapshot(NowNs())
	for _, q := range summaryQuantiles {
		v := math.NaN()
		if snap.Count > 0 {
			v = snap.QuantileNs(q) / 1e9
		}
		bw.WriteString(name + promQuantileLabels(s.labels, q) + " ")
		bw.WriteString(formatFloat(v))
		bw.WriteByte('\n')
	}
	total := s.whist.TotalSnapshot()
	bw.WriteString(name + "_sum" + promLabels(s.labels, "", 0) + " ")
	bw.WriteString(formatFloat(float64(total.SumNs) / 1e9))
	bw.WriteByte('\n')
	bw.WriteString(name + "_count" + promLabels(s.labels, "", 0) + " ")
	bw.WriteString(strconv.FormatUint(total.Count, 10))
	bw.WriteByte('\n')
}

// promQuantileLabels renders a label set with a `quantile` label appended.
func promQuantileLabels(labels []Label, q float64) string {
	var b strings.Builder
	b.WriteByte('{')
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	for _, l := range ls {
		b.WriteString(l.Key + "=" + strconv.Quote(l.Value) + ",")
	}
	b.WriteString("quantile=" + strconv.Quote(strconv.FormatFloat(q, 'g', -1, 64)))
	b.WriteByte('}')
	return b.String()
}

// promLabels renders a label set, optionally with an `le` bucket label for
// histogram bucket i appended. Returns "" for an empty set.
func promLabels(labels []Label, le string, bucket int) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key + "=" + strconv.Quote(l.Value))
	}
	if le != "" {
		if len(ls) > 0 {
			b.WriteByte(',')
		}
		v := "+Inf"
		if bucket < NumBuckets-1 {
			v = formatFloat(BucketUpperNs(bucket) / 1e9)
		}
		b.WriteString("le=" + strconv.Quote(v))
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
