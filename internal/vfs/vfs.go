// Package vfs is the durability stack's filesystem seam. The write-ahead
// log and checkpoint store perform every file operation through the FS
// interface, so a test can substitute a deterministic fault-injecting
// implementation (Fault) and reach every disk failure mode — EIO, ENOSPC,
// short/torn writes at byte k, fsync failure, rename failure — from plain Go
// tests, without root, loop devices, or flaky external tooling.
//
// Production code uses OS, a zero-cost passthrough to package os: the File
// values it returns ARE *os.File, so the hot append path pays one interface
// method dispatch and no allocation per write.
package vfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the subset of *os.File the durability stack writes and scans
// through.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
}

// FS is the filesystem operation set of the durability stack. All paths are
// interpreted exactly as package os would.
type FS interface {
	// Create opens name for writing, truncating it if it exists
	// (os.O_WRONLY|os.O_CREATE|os.O_TRUNC).
	Create(name string) (File, error)
	// CreateExcl creates name for writing, failing if it exists
	// (os.O_WRONLY|os.O_CREATE|os.O_EXCL).
	CreateExcl(name string) (File, error)
	// OpenAppend opens an existing file for appending (os.O_WRONLY|os.O_APPEND).
	OpenAppend(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// ReadDir lists the directory, sorted by filename.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Stat returns file metadata.
	Stat(name string) (fs.FileInfo, error)
	// Truncate resizes name to size bytes.
	Truncate(name string, size int64) error
	// Rename atomically moves oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory path.
	MkdirAll(name string, perm fs.FileMode) error
	// SyncDir fsyncs a directory, making renames and creations in it durable.
	SyncDir(dir string) error
}

// OS is the production FS: a stateless passthrough to package os.
type OS struct{}

func (OS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (OS) CreateExcl(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
}

func (OS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
}

func (OS) Open(name string) (File, error) { return os.Open(name) }

func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (OS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Remove(name string) error { return os.Remove(name) }

func (OS) MkdirAll(name string, perm fs.FileMode) error { return os.MkdirAll(name, perm) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
