package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	var fsys FS = OS{}
	path := filepath.Join(dir, "a.txt")
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.CreateExcl(path); err == nil {
		t.Fatal("CreateExcl over an existing file succeeded")
	}
	fa, err := fsys.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	fa.Write([]byte(" world"))
	fa.Close()
	raw, err := os.ReadFile(path)
	if err != nil || string(raw) != "hello world" {
		t.Fatalf("content %q (%v)", raw, err)
	}
	if err := fsys.Truncate(path, 5); err != nil {
		t.Fatal(err)
	}
	fi, err := fsys.Stat(path)
	if err != nil || fi.Size() != 5 {
		t.Fatalf("stat after truncate: %v %v", fi, err)
	}
	if err := fsys.Rename(path, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "b.txt" {
		t.Fatalf("readdir: %v %v", ents, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	if err := fsys.MkdirAll(filepath.Join(dir, "x/y"), 0o755); err != nil {
		t.Fatal(err)
	}
}

// TestFaultAfterTimes pins the arm/fire bookkeeping: After skips, Times
// bounds, and the schedule heals once exhausted.
func TestFaultAfterTimes(t *testing.T) {
	dir := t.TempDir()
	f := NewFault(OS{}, 1)
	f.Inject(Rule{Op: OpSync, After: 2, Times: 3})

	file, err := f.Create(filepath.Join(dir, "w"))
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	var got []bool
	for i := 0; i < 8; i++ {
		got = append(got, file.Sync() != nil)
	}
	want := []bool{false, false, true, true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sync faults = %v, want %v", got, want)
		}
	}
	if f.Count(OpSync) != 8 || f.Errors(OpSync) != 3 || f.ErrorsTotal() != 3 {
		t.Fatalf("counts: syncs=%d errs=%d total=%d", f.Count(OpSync), f.Errors(OpSync), f.ErrorsTotal())
	}
}

func TestFaultPartialWrite(t *testing.T) {
	dir := t.TempDir()
	f := NewFault(OS{}, 1)
	f.Inject(Rule{Op: OpWrite, Partial: 3, Err: syscall.ENOSPC})
	path := filepath.Join(dir, "torn")
	file, err := f.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := file.Write([]byte("abcdefgh"))
	if n != 3 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("torn write = (%d, %v), want (3, ENOSPC)", n, err)
	}
	// The rule fired once; the retry goes through whole.
	if n, err := file.Write([]byte("retry")); n != 5 || err != nil {
		t.Fatalf("retry = (%d, %v)", n, err)
	}
	file.Close()
	raw, _ := os.ReadFile(path)
	if string(raw) != "abcretry" {
		t.Fatalf("file content %q, want the torn prefix + retry", raw)
	}
}

func TestFaultPathMatchAndForever(t *testing.T) {
	dir := t.TempDir()
	f := NewFault(OS{}, 1)
	f.Inject(Rule{Op: OpRename, Path: "ckpt", Times: -1})
	if err := os.WriteFile(filepath.Join(dir, "ckpt-1.tmp"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "other.tmp"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := f.Rename(filepath.Join(dir, "ckpt-1.tmp"), filepath.Join(dir, "ckpt-1.ckpt")); err == nil {
			t.Fatalf("rename %d matching path did not fail", i)
		}
	}
	if err := f.Rename(filepath.Join(dir, "other.tmp"), filepath.Join(dir, "other.dat")); err != nil {
		t.Fatalf("non-matching rename failed: %v", err)
	}
	f.Clear()
	if err := f.Rename(filepath.Join(dir, "ckpt-1.tmp"), filepath.Join(dir, "ckpt-1.ckpt")); err != nil {
		t.Fatalf("rename after Clear failed: %v", err)
	}
}

// TestFaultSeededProbDeterministic: the same seed gives the same
// probabilistic fault schedule.
func TestFaultSeededProbDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		dir := t.TempDir()
		f := NewFault(OS{}, seed)
		f.Inject(Rule{Op: OpSync, Prob: 0.3, Times: -1})
		file, err := f.Create(filepath.Join(dir, "p"))
		if err != nil {
			t.Fatal(err)
		}
		defer file.Close()
		out := make([]bool, 64)
		for i := range out {
			out[i] = file.Sync() != nil
		}
		return out
	}
	a, b, c := run(7), run(7), run(8)
	same := func(x, y []bool) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if same(a, c) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

func TestParseSchedule(t *testing.T) {
	f, err := ParseSchedule(OS{}, 1, "sync:after=1:times=2:err=enospc; write:partial=4 ; rename:path=ckpt:times=-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.rules) != 3 {
		t.Fatalf("parsed %d rules", len(f.rules))
	}
	r := f.rules[0]
	if r.Op != OpSync || r.After != 1 || r.Times != 2 || !errors.Is(r.Err, syscall.ENOSPC) {
		t.Fatalf("rule 0 = %+v", r)
	}
	if f.rules[1].Op != OpWrite || f.rules[1].Partial != 4 {
		t.Fatalf("rule 1 = %+v", f.rules[1])
	}
	if f.rules[2].Path != "ckpt" || f.rules[2].Times != -1 {
		t.Fatalf("rule 2 = %+v", f.rules[2])
	}
	for _, bad := range []string{"fsync", "sync:after=x", "sync:bogus=1", "sync:err=nope", "sync:times"} {
		if _, err := ParseSchedule(OS{}, 1, bad); err == nil {
			t.Errorf("spec %q parsed", bad)
		}
	}
}
