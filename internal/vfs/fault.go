package vfs

import (
	"fmt"
	"io/fs"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// Op names one FS operation class for fault matching.
type Op int

const (
	OpWrite Op = iota
	OpSync
	OpCreate // Create and CreateExcl
	OpOpen   // Open and OpenAppend
	OpReadDir
	OpStat
	OpTruncate
	OpRename
	OpRemove
	OpMkdir
	OpSyncDir
	opCount
)

var opNames = [...]string{
	OpWrite: "write", OpSync: "sync", OpCreate: "create", OpOpen: "open",
	OpReadDir: "readdir", OpStat: "stat", OpTruncate: "truncate",
	OpRename: "rename", OpRemove: "remove", OpMkdir: "mkdir", OpSyncDir: "syncdir",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// ParseOp parses an operation name as used in fault schedule specs.
func ParseOp(s string) (Op, error) {
	for op, name := range opNames {
		if name == s {
			return Op(op), nil
		}
	}
	return 0, fmt.Errorf("vfs: unknown op %q", s)
}

// Rule is one fault in a schedule: it arms after After matching operations
// have passed through and then fires Times times (0 is treated as once,
// -1 = forever). A fired write with Partial > 0 writes that many bytes
// before returning the error — a torn write. Prob, when in (0,1), fires the
// rule probabilistically instead (seeded, deterministic) on each matching
// call past After.
type Rule struct {
	Op      Op
	Path    string // substring match on the operation's path ("" = any)
	After   int    // matching calls to skip before the rule arms
	Times   int    // times to fire once armed; 0 = once, -1 = forever
	Err     error  // error to return (nil = EIO)
	Partial int    // OpWrite only: bytes written before failing
	Prob    float64

	seen  int // matching calls observed
	fired int
}

// Fault wraps a base FS and injects errors according to a deterministic,
// seeded schedule of rules. All methods are safe for concurrent use; the
// serialization also makes the schedule deterministic for a single-writer
// caller like the WAL. Operation counts are kept per Op for test assertions.
type Fault struct {
	base FS

	mu     sync.Mutex
	rng    *rand.Rand
	rules  []*Rule
	counts [opCount]int
	errs   [opCount]int
}

// NewFault returns a fault-injecting FS over base. seed drives the
// probabilistic rules; equal seeds give equal schedules.
func NewFault(base FS, seed int64) *Fault {
	return &Fault{base: base, rng: rand.New(rand.NewSource(seed))}
}

// Inject adds a rule to the schedule. The rule is copied; later mutation of
// the argument has no effect.
func (f *Fault) Inject(r Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rc := r
	f.rules = append(f.rules, &rc)
}

// Clear drops every rule (the disk "heals").
func (f *Fault) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// Count returns how many operations of class op have been issued.
func (f *Fault) Count(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

// Errors returns how many operations of class op were failed by a rule.
func (f *Fault) Errors(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.errs[op]
}

// ErrorsTotal returns the total number of injected failures.
func (f *Fault) ErrorsTotal() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, e := range f.errs {
		n += e
	}
	return n
}

// check records one operation and returns the rule error to inject, the
// partial-write byte count (writes only), and whether a fault fires.
func (f *Fault) check(op Op, path string) (error, int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	for _, r := range f.rules {
		if r.Op != op || (r.Path != "" && !strings.Contains(path, r.Path)) {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		limit := r.Times
		if limit == 0 {
			limit = 1
		}
		if limit > 0 && r.fired >= limit {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && f.rng.Float64() >= r.Prob {
			continue
		}
		r.fired++
		f.errs[op]++
		err := r.Err
		if err == nil {
			err = syscall.EIO
		}
		return fmt.Errorf("vfs: injected %s fault on %s: %w", op, path, err), r.Partial, true
	}
	return nil, 0, false
}

// faultFile wraps a base File so writes and fsyncs pass through the
// schedule. The path is kept for matching.
type faultFile struct {
	File
	f    *Fault
	path string
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if err, partial, ok := ff.f.check(OpWrite, ff.path); ok {
		n := 0
		if partial > 0 && partial < len(p) {
			// Torn write: part of the payload reaches the file before the
			// error surfaces, exactly like a short write at byte k.
			n, _ = ff.File.Write(p[:partial])
		}
		return n, err
	}
	return ff.File.Write(p)
}

func (ff *faultFile) Sync() error {
	if err, _, ok := ff.f.check(OpSync, ff.path); ok {
		return err
	}
	return ff.File.Sync()
}

func (f *Fault) wrap(file File, err error, path string) (File, error) {
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, f: f, path: path}, nil
}

func (f *Fault) Create(name string) (File, error) {
	if err, _, ok := f.check(OpCreate, name); ok {
		return nil, err
	}
	file, err := f.base.Create(name)
	return f.wrap(file, err, name)
}

func (f *Fault) CreateExcl(name string) (File, error) {
	if err, _, ok := f.check(OpCreate, name); ok {
		return nil, err
	}
	file, err := f.base.CreateExcl(name)
	return f.wrap(file, err, name)
}

func (f *Fault) OpenAppend(name string) (File, error) {
	if err, _, ok := f.check(OpOpen, name); ok {
		return nil, err
	}
	file, err := f.base.OpenAppend(name)
	return f.wrap(file, err, name)
}

func (f *Fault) Open(name string) (File, error) {
	if err, _, ok := f.check(OpOpen, name); ok {
		return nil, err
	}
	file, err := f.base.Open(name)
	return f.wrap(file, err, name)
}

func (f *Fault) ReadDir(name string) ([]fs.DirEntry, error) {
	if err, _, ok := f.check(OpReadDir, name); ok {
		return nil, err
	}
	return f.base.ReadDir(name)
}

func (f *Fault) Stat(name string) (fs.FileInfo, error) {
	if err, _, ok := f.check(OpStat, name); ok {
		return nil, err
	}
	return f.base.Stat(name)
}

func (f *Fault) Truncate(name string, size int64) error {
	if err, _, ok := f.check(OpTruncate, name); ok {
		return err
	}
	return f.base.Truncate(name, size)
}

func (f *Fault) Rename(oldpath, newpath string) error {
	if err, _, ok := f.check(OpRename, oldpath); ok {
		return err
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *Fault) Remove(name string) error {
	if err, _, ok := f.check(OpRemove, name); ok {
		return err
	}
	return f.base.Remove(name)
}

func (f *Fault) MkdirAll(name string, perm fs.FileMode) error {
	if err, _, ok := f.check(OpMkdir, name); ok {
		return err
	}
	return f.base.MkdirAll(name, perm)
}

func (f *Fault) SyncDir(dir string) error {
	if err, _, ok := f.check(OpSyncDir, dir); ok {
		return err
	}
	return f.base.SyncDir(dir)
}

// ParseSchedule builds a fault FS over base from a compact schedule spec —
// the -wal-fault CLI syntax used by the chaos smoke script. The spec is a
// semicolon-separated list of rules; each rule is colon-separated fields
// starting with the op name:
//
//	op[:path=SUBSTR][:after=N][:times=M][:err=eio|enospc][:partial=K][:p=F]
//
// Examples:
//
//	sync:after=40:times=3              the 41st..43rd fsyncs fail with EIO
//	write:after=100:times=0:partial=7  the 101st write tears at byte 7
//	rename:path=ckpt:times=-1          every checkpoint rename fails forever
//	sync:p=0.01:times=-1               each fsync fails with probability 1%
func ParseSchedule(base FS, seed int64, spec string) (*Fault, error) {
	f := NewFault(base, seed)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		op, err := ParseOp(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, err
		}
		r := Rule{Op: op, Times: 0}
		for _, fld := range fields[1:] {
			k, v, ok := strings.Cut(fld, "=")
			if !ok {
				return nil, fmt.Errorf("vfs: bad rule field %q in %q", fld, part)
			}
			switch k {
			case "path":
				r.Path = v
			case "after":
				if r.After, err = strconv.Atoi(v); err != nil {
					return nil, fmt.Errorf("vfs: bad after=%q: %v", v, err)
				}
			case "times":
				if r.Times, err = strconv.Atoi(v); err != nil {
					return nil, fmt.Errorf("vfs: bad times=%q: %v", v, err)
				}
			case "err":
				switch v {
				case "eio":
					r.Err = syscall.EIO
				case "enospc":
					r.Err = syscall.ENOSPC
				default:
					return nil, fmt.Errorf("vfs: unknown err=%q (want eio or enospc)", v)
				}
			case "partial":
				if r.Partial, err = strconv.Atoi(v); err != nil {
					return nil, fmt.Errorf("vfs: bad partial=%q: %v", v, err)
				}
			case "p":
				if r.Prob, err = strconv.ParseFloat(v, 64); err != nil {
					return nil, fmt.Errorf("vfs: bad p=%q: %v", v, err)
				}
			default:
				return nil, fmt.Errorf("vfs: unknown rule field %q in %q", k, part)
			}
		}
		f.Inject(r)
	}
	return f, nil
}
