// Package prob implements the probability algebra used throughout the
// probabilistic skyline engine.
//
// The engine maintains, per element and per aggregate R-tree entry, running
// products of non-occurrence probabilities such as
//
//	Pnew(a) = Π_{a' ≺ a, a' newer} (1 − P(a'))
//
// over windows of up to millions of elements. Those products are repeatedly
// multiplied when dominators arrive and divided when dominators expire or
// leave the candidate set. Two numerical hazards follow:
//
//  1. Underflow: a product of 10^5 factors of 0.5 is far below the smallest
//     normal float64. Once a value degrades to a denormal or to 0, later
//     divisions cannot recover it and elements become permanently stuck
//     outside the skyline.
//  2. Exact zeros: an element with occurrence probability 1 contributes a
//     factor (1 − P) = 0. A plain float product collapses to 0 and the
//     subsequent division 0/0 on expiry is undefined.
//
// Factor solves both by keeping probabilities in log space together with an
// explicit count of zero factors. Multiplication adds log terms and zero
// counts; division subtracts them. The represented value is exactly 0 while
// the zero count is positive, and exp(logSum) otherwise.
package prob

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Factor is a non-negative probability-like quantity stored as a count of
// exact zero factors plus the sum of the logarithms of the non-zero factors.
// The zero value of Factor represents 1 (the empty product) and is ready to
// use.
type Factor struct {
	zeros  int32   // number of exact-zero factors in the product
	logSum float64 // Σ ln(f) over the non-zero factors
}

// One returns the multiplicative identity.
func One() Factor { return Factor{} }

// Zero returns a factor representing exactly 0 (one zero term).
func Zero() Factor { return Factor{zeros: 1} }

// FromFloat converts v ∈ [0, 1] (any non-negative v is accepted) into a
// Factor. v = 0 yields an exact zero factor.
func FromFloat(v float64) Factor {
	if v < 0 || math.IsNaN(v) {
		panic(fmt.Sprintf("prob: factor from invalid value %v", v))
	}
	if v == 0 {
		return Zero()
	}
	return Factor{logSum: math.Log(v)}
}

// OneMinus returns the factor (1 − p) for an occurrence probability
// p ∈ [0, 1]. It uses log1p for precision when p is small and returns an
// exact zero when p = 1.
func OneMinus(p float64) Factor {
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("prob: occurrence probability %v out of [0,1]", p))
	}
	if p == 1 {
		return Zero()
	}
	return Factor{logSum: math.Log1p(-p)}
}

// Times returns f · g.
func (f Factor) Times(g Factor) Factor {
	return Factor{zeros: f.zeros + g.zeros, logSum: f.logSum + g.logSum}
}

// Over returns f / g. Dividing by a factor with more zero terms than f holds
// panics: the engine only ever removes factors it previously multiplied in,
// so such a division indicates a bookkeeping bug.
func (f Factor) Over(g Factor) Factor {
	if g.zeros > f.zeros {
		panic("prob: division removes more zero factors than present")
	}
	return Factor{zeros: f.zeros - g.zeros, logSum: f.logSum - g.logSum}
}

// MulFloat returns f · v for v ∈ [0, 1].
func (f Factor) MulFloat(v float64) Factor { return f.Times(FromFloat(v)) }

// Float returns the represented value as a float64. The result may underflow
// to 0 for extremely small factors; comparisons should use Less/AtLeast,
// which work in log space.
func (f Factor) Float() float64 {
	if f.zeros > 0 {
		return 0
	}
	return math.Exp(f.logSum)
}

// Log returns ln(value), with −Inf for exact zeros.
func (f Factor) Log() float64 {
	if f.zeros > 0 {
		return math.Inf(-1)
	}
	return f.logSum
}

// IsZero reports whether the factor is exactly 0.
func (f Factor) IsZero() bool { return f.zeros > 0 }

// IsOne reports whether the factor is exactly 1.
func (f Factor) IsOne() bool { return f.zeros == 0 && f.logSum == 0 }

// Less reports whether f < g.
//
// The order is lexicographic on (zero count descending, logSum ascending).
// For comparisons where either side has no zero factors — in particular any
// comparison against a positive threshold q — this coincides with numeric
// order. Between two exact zeros it is a strict refinement of numeric order
// ("more zero factors" sorts lower). The refinement is what makes min/max
// aggregates stable under the engine's lazy multiply/divide updates: scaling
// every element of a set by a common factor (possibly containing zeros, e.g.
// the departure of a dominator with P = 1) preserves this order, so a stored
// minimum remains the minimum after the scale is applied.
func (f Factor) Less(g Factor) bool {
	if f.zeros != g.zeros {
		return f.zeros > g.zeros
	}
	return f.logSum < g.logSum
}

// AtLeast reports whether f ≥ g.
func (f Factor) AtLeast(g Factor) bool { return !f.Less(g) }

// Cmp returns −1, 0 or +1 comparing f with g.
func (f Factor) Cmp(g Factor) int {
	switch {
	case f.Less(g):
		return -1
	case g.Less(f):
		return 1
	default:
		return 0
	}
}

// Min returns the smaller of f and g.
func Min(f, g Factor) Factor {
	if g.Less(f) {
		return g
	}
	return f
}

// Max returns the larger of f and g.
func Max(f, g Factor) Factor {
	if f.Less(g) {
		return g
	}
	return f
}

// ApproxEqual reports whether f and g agree within a relative tolerance tol
// in log space. Exact zeros only equal exact zeros.
func (f Factor) ApproxEqual(g Factor, tol float64) bool {
	if f.zeros > 0 || g.zeros > 0 {
		return f.zeros > 0 && g.zeros > 0
	}
	d := f.logSum - g.logSum
	if d < 0 {
		d = -d
	}
	scale := math.Max(1, math.Max(math.Abs(f.logSum), math.Abs(g.logSum)))
	return d <= tol*scale
}

// MarshalBinary encodes the factor losslessly (zero count plus log sum) for
// checkpointing. It implements encoding.BinaryMarshaler.
func (f Factor) MarshalBinary() ([]byte, error) {
	var buf [12]byte
	binary.BigEndian.PutUint32(buf[0:4], uint32(f.zeros))
	binary.BigEndian.PutUint64(buf[4:12], math.Float64bits(f.logSum))
	return buf[:], nil
}

// UnmarshalBinary decodes a factor written by MarshalBinary. It implements
// encoding.BinaryUnmarshaler.
func (f *Factor) UnmarshalBinary(data []byte) error {
	if len(data) != 12 {
		return fmt.Errorf("prob: factor encoding has %d bytes, want 12", len(data))
	}
	f.zeros = int32(binary.BigEndian.Uint32(data[0:4]))
	f.logSum = math.Float64frombits(binary.BigEndian.Uint64(data[4:12]))
	if f.zeros < 0 || math.IsNaN(f.logSum) {
		return fmt.Errorf("prob: invalid factor encoding")
	}
	return nil
}

// String formats the factor as its float value, annotating exact zeros with
// the number of zero terms.
func (f Factor) String() string {
	if f.zeros > 0 {
		return fmt.Sprintf("0(z=%d)", f.zeros)
	}
	return fmt.Sprintf("%.6g", math.Exp(f.logSum))
}
