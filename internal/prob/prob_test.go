package prob

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValueIsOne(t *testing.T) {
	var f Factor
	if !f.IsOne() {
		t.Fatal("zero value is not the identity")
	}
	if f.Float() != 1 {
		t.Fatalf("Float() = %v, want 1", f.Float())
	}
	if f.IsZero() {
		t.Fatal("identity reported as zero")
	}
}

func TestBasicOps(t *testing.T) {
	half := FromFloat(0.5)
	quarter := half.Times(half)
	if got := quarter.Float(); math.Abs(got-0.25) > 1e-15 {
		t.Fatalf("0.5*0.5 = %v", got)
	}
	back := quarter.Over(half)
	if got := back.Float(); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("0.25/0.5 = %v", got)
	}
	if !half.ApproxEqual(back, 1e-12) {
		t.Fatal("round trip not ApproxEqual")
	}
}

func TestOneMinus(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 0.75}, {0.5, 0.5}, {1, 0},
		{1e-18, 1 - 1e-18},
	}
	for _, c := range cases {
		got := OneMinus(c.p).Float()
		if math.Abs(got-c.want) > 1e-15 {
			t.Errorf("OneMinus(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !OneMinus(1).IsZero() {
		t.Error("OneMinus(1) is not exact zero")
	}
}

func TestZeroFactorAlgebra(t *testing.T) {
	z := OneMinus(1)
	half := FromFloat(0.5)
	prod := half.Times(z)
	if !prod.IsZero() || prod.Float() != 0 {
		t.Fatal("product with zero factor is not zero")
	}
	// Removing the zero factor restores the value exactly.
	restored := prod.Over(z)
	if !restored.ApproxEqual(half, 1e-12) {
		t.Fatalf("restored = %v, want 0.5", restored.Float())
	}
	// Two zero factors: removing one leaves an exact zero.
	prod2 := prod.Times(z)
	if !prod2.Over(z).IsZero() {
		t.Fatal("removing one of two zero factors must stay zero")
	}
}

func TestOverPanicsOnExcessZeros(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromFloat(0.5).Over(Zero())
}

func TestUnderflowResistance(t *testing.T) {
	// 10^5 factors of 0.5: far below the smallest float64, but recoverable.
	f := One()
	half := FromFloat(0.5)
	for i := 0; i < 100_000; i++ {
		f = f.Times(half)
	}
	// Float() underflows to 0 here, which is fine — the log value is
	// intact and the factor is still not an *exact* zero.
	if f.IsZero() {
		t.Fatal("underflow must not become an exact zero")
	}
	for i := 0; i < 100_000; i++ {
		f = f.Over(half)
	}
	if got := f.Float(); math.Abs(got-1) > 1e-6 {
		t.Fatalf("after unwinding 1e5 factors: %v, want 1", got)
	}
}

func TestOrderRefinement(t *testing.T) {
	// More zero factors sorts strictly lower; this keeps min/max stable
	// under common division.
	z1 := Zero()
	z2 := Zero().Times(Zero())
	if !z2.Less(z1) {
		t.Fatal("two zero factors must sort below one")
	}
	if !z1.Less(FromFloat(0.1)) {
		t.Fatal("zero must sort below positive")
	}
	if Min(z1, z2) != z2 {
		t.Fatal("Min must pick the more-zeroed factor")
	}
	if Max(z1, z2) != z1 {
		t.Fatal("Max must pick the less-zeroed factor")
	}
}

func TestCmp(t *testing.T) {
	a, b := FromFloat(0.3), FromFloat(0.7)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Fatal("Cmp inconsistent")
	}
	if !a.AtLeast(a) || a.AtLeast(b) || !b.AtLeast(a) {
		t.Fatal("AtLeast inconsistent")
	}
}

// randFactor builds a factor from a few random (1−p) terms, occasionally
// including exact zeros.
func randFactor(r *rand.Rand) Factor {
	f := One()
	for i, n := 0, r.Intn(5); i < n; i++ {
		if r.Intn(8) == 0 {
			f = f.Times(Zero())
		} else {
			f = f.Times(OneMinus(r.Float64()))
		}
	}
	return f
}

func TestQuickAlgebra(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	// Commutativity, associativity and inverse, with zero counts.
	for i := 0; i < 5000; i++ {
		a, b, c := randFactor(r), randFactor(r), randFactor(r)
		if !a.Times(b).ApproxEqual(b.Times(a), 1e-12) {
			t.Fatalf("commutativity: %v vs %v", a, b)
		}
		if !a.Times(b).Times(c).ApproxEqual(a.Times(b.Times(c)), 1e-12) {
			t.Fatalf("associativity")
		}
		if !a.Times(b).Over(b).ApproxEqual(a, 1e-12) {
			t.Fatalf("inverse: (%v*%v)/%v != %v", a, b, b, a)
		}
	}
}

// TestQuickOrderInvariance: the order refinement is preserved by common
// multiplication and division — the property the lazy aggregate updates
// depend on.
func TestQuickOrderInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		a, b, m := randFactor(r), randFactor(r), randFactor(r)
		if a.Less(b) != a.Times(m).Less(b.Times(m)) {
			t.Fatalf("order not preserved by multiplication: a=%v b=%v m=%v", a, b, m)
		}
		am, bm := a.Times(m), b.Times(m)
		if am.Over(m).Less(bm.Over(m)) != a.Less(b) {
			t.Fatalf("order not preserved by division")
		}
	}
}

// TestQuickFloatAgreement: for factors without zero terms, comparisons agree
// with plain float comparison of the represented values.
func TestQuickFloatAgreement(t *testing.T) {
	err := quick.Check(func(ps []float64) bool {
		a, b := One(), One()
		for i, p := range ps {
			p = math.Abs(p)
			p -= math.Floor(p) // into [0,1)
			if i%2 == 0 {
				a = a.Times(OneMinus(p))
			} else {
				b = b.Times(OneMinus(p))
			}
		}
		af, bf := a.Float(), b.Float()
		if af != bf {
			return a.Less(b) == (af < bf)
		}
		return true
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	if s := FromFloat(0.25).String(); s != "0.25" {
		t.Errorf("String() = %q", s)
	}
	if s := Zero().String(); s != "0(z=1)" {
		t.Errorf("zero String() = %q", s)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		f := randFactor(r)
		data, err := f.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var g Factor
		if err := g.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if g != f {
			t.Fatalf("round trip changed %v -> %v", f, g)
		}
	}
	var g Factor
	if err := g.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Error("short encoding accepted")
	}
	bad, _ := FromFloat(0.5).MarshalBinary()
	bad[0] = 0xFF // negative zero count
	if err := g.UnmarshalBinary(bad); err == nil {
		t.Error("negative zero count accepted")
	}
}

func TestFromFloatValidation(t *testing.T) {
	for _, v := range []float64{-1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FromFloat(%v) did not panic", v)
				}
			}()
			FromFloat(v)
		}()
	}
	for _, v := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("OneMinus(%v) did not panic", v)
				}
			}()
			OneMinus(v)
		}()
	}
}

func TestMulFloatAndLog(t *testing.T) {
	f := FromFloat(0.5).MulFloat(0.5)
	if math.Abs(f.Float()-0.25) > 1e-15 {
		t.Fatalf("MulFloat = %v", f.Float())
	}
	if math.Abs(f.Log()-math.Log(0.25)) > 1e-12 {
		t.Fatalf("Log = %v", f.Log())
	}
	if !math.IsInf(Zero().Log(), -1) {
		t.Fatal("Log of zero factor must be -Inf")
	}
}

func BenchmarkTimes(b *testing.B) {
	f := One()
	g := OneMinus(0.3)
	for i := 0; i < b.N; i++ {
		f = f.Times(g)
	}
	_ = f
}

// BenchmarkNaiveFloatMul is the ablation comparator: raw float64 products
// are ~2-3x faster per op but underflow and cannot represent P = 1 factors
// reversibly (see package comment).
func BenchmarkNaiveFloatMul(b *testing.B) {
	f := 1.0
	for i := 0; i < b.N; i++ {
		f *= 0.7
	}
	_ = f
}
