package prob_test

import (
	"fmt"

	"pskyline/internal/prob"
)

// Factors survive products that underflow float64 and divide exact zeros
// back out — the two hazards of maintaining Π(1−P) over long windows.
func ExampleFactor() {
	f := prob.One()
	half := prob.FromFloat(0.5)
	for i := 0; i < 10000; i++ {
		f = f.Times(half) // 0.5^10000 ≈ 10^-3010: far below float64
	}
	fmt.Println("underflowed float:", f.Float(), "recoverable:", !f.IsZero())
	for i := 0; i < 10000; i++ {
		f = f.Over(half)
	}
	fmt.Printf("unwound: %.6f\n", f.Float())

	// A dominator with P = 1 contributes an exact zero factor; its expiry
	// divides the zero back out instead of computing 0/0.
	certain := prob.OneMinus(1.0)
	g := prob.FromFloat(0.8).Times(certain)
	fmt.Println("with certain dominator:", g.Float())
	fmt.Printf("after it expires: %.2f\n", g.Over(certain).Float())
	// Output:
	// underflowed float: 0 recoverable: true
	// unwound: 1.000000
	// with certain dominator: 0
	// after it expires: 0.80
}
