package pskyline_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"pskyline"
)

// boundaryTol absorbs the float-vs-log-domain representation gap at band
// boundaries: the engine classifies bands on log-domain factors while views
// filter on the reported float64 probabilities, so an element sitting
// exactly on a threshold can land within a ULP of it.
const boundaryTol = 1e-9

// checkViewInvariants asserts the internal consistency of one published
// view; these properties must hold for any view captured at any moment.
func checkViewInvariants(t *testing.T, v *pskyline.View, r *rand.Rand) {
	t.Helper()
	ths := v.Thresholds()
	q1, qk := ths[0], ths[len(ths)-1]

	// Candidates are globally sorted by descending skyline probability, and
	// the band partition sizes add up.
	cands := v.Candidates()
	for i := 1; i < len(cands); i++ {
		if cands[i].Psky > cands[i-1].Psky {
			t.Fatalf("candidates out of order at %d: %v after %v", i, cands[i].Psky, cands[i-1].Psky)
		}
	}
	total := 0
	for _, s := range v.BandSizes() {
		total += s
	}
	if total != len(cands) || total != v.NumCandidates() {
		t.Fatalf("band sizes sum %d, candidates %d, NumCandidates %d", total, len(cands), v.NumCandidates())
	}

	// Every skyline member clears the top threshold.
	sky := v.Skyline()
	for _, p := range sky {
		if p.Psky < q1-boundaryTol {
			t.Fatalf("skyline member seq %d has psky %v < q1 %v", p.Seq, p.Psky, q1)
		}
	}

	// Query is monotone: for q' ≥ q, Query(q') ⊆ Query(q); and the skyline
	// is contained in Query(q1).
	qlo := qk + r.Float64()*(1-qk)
	qhi := qlo + r.Float64()*(1-qlo)
	lo, err := v.Query(qlo)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := v.Query(qhi)
	if err != nil {
		t.Fatal(err)
	}
	loSet := make(map[uint64]bool, len(lo))
	for _, p := range lo {
		loSet[p.Seq] = true
		if p.Psky < qlo-boundaryTol {
			t.Fatalf("query(%v) reported seq %d with psky %v", qlo, p.Seq, p.Psky)
		}
	}
	for _, p := range hi {
		if !loSet[p.Seq] {
			t.Fatalf("query(%v) result seq %d missing from query(%v)", qhi, p.Seq, qlo)
		}
	}
	qres, err := v.Query(q1)
	if err != nil {
		t.Fatal(err)
	}
	inQ1 := make(map[uint64]bool, len(qres))
	for _, p := range qres {
		inQ1[p.Seq] = true
	}
	for _, p := range sky {
		if !inQ1[p.Seq] {
			t.Fatalf("skyline seq %d missing from query(q1)", p.Seq)
		}
	}

	// TopK(k, q) is exactly the first min(k, len) entries of Query(q).
	k := 1 + r.Intn(8)
	top, err := v.TopK(k, qlo)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := k
	if len(lo) < k {
		wantLen = len(lo)
	}
	if len(top) != wantLen {
		t.Fatalf("topk(%d, %v) returned %d results, query has %d", k, qlo, len(top), len(lo))
	}
	for i, p := range top {
		if p.Seq != lo[i].Seq || p.Psky != lo[i].Psky {
			t.Fatalf("topk[%d] = seq %d, query[%d] = seq %d", i, p.Seq, i, lo[i].Seq)
		}
	}

	// Out-of-range thresholds are rejected.
	if _, err := v.Query(qk / 2); err == nil {
		t.Fatal("query below q_k accepted")
	}
	if _, err := v.Query(1.5); err == nil {
		t.Fatal("query above 1 accepted")
	}
	if _, err := v.TopK(3, qk/2); err == nil {
		t.Fatal("topk below q_k accepted")
	}
	if res, err := v.TopK(0, qk); err != nil || res != nil {
		t.Fatalf("topk(0) = %v, %v", res, err)
	}
}

// TestViewConsistencyMidStream checks every read-path invariant on views
// captured while a writer is actively mutating the monitor: reads must be
// internally consistent at every instant, not only between pushes.
func TestViewConsistencyMidStream(t *testing.T) {
	const dims = 3
	n := 5000
	if testing.Short() {
		n = 1500
	}
	m := mustMonitor(t, pskyline.Options{
		Dims: dims, Window: 600, Thresholds: []float64{0.5, 0.3},
	})
	stream := genElements(53, n, dims, true)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(61))
		for i := 0; i < n; {
			sz := 1 + r.Intn(32)
			if i+sz > n {
				sz = n - i
			}
			if _, err := m.PushBatch(stream[i : i+sz]); err != nil {
				t.Errorf("batch at %d: %v", i, err)
				return
			}
			i += sz
		}
	}()

	r := rand.New(rand.NewSource(67))
	var lastProcessed uint64
	checks := 0
	for {
		v := m.View()
		if v.Processed() < lastProcessed {
			t.Fatalf("processed went backwards: %d after %d", v.Processed(), lastProcessed)
		}
		lastProcessed = v.Processed()
		checkViewInvariants(t, v, r)
		checks++
		if lastProcessed == uint64(n) {
			break
		}
	}
	wg.Wait()
	if checks < 2 {
		t.Fatalf("only %d consistency checks ran", checks)
	}
}

// TestViewImmutable pins the publication contract: a view captured at some
// stream position never changes, no matter how many writes, threshold
// changes or expiries happen afterwards.
func TestViewImmutable(t *testing.T) {
	const dims = 2
	m := mustMonitor(t, pskyline.Options{
		Dims: dims, Window: 150, Thresholds: []float64{0.5, 0.3},
	})
	stream := genElements(71, 900, dims, true)
	if _, err := m.PushBatch(stream[:300]); err != nil {
		t.Fatal(err)
	}
	v := m.View()
	before := fingerprint(v)

	// Mutate heavily: enough pushes to cycle the window twice, plus
	// threshold churn.
	if _, err := m.PushBatch(stream[300:]); err != nil {
		t.Fatal(err)
	}
	if err := m.AddThreshold(0.7); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveThreshold(0.7); err != nil {
		t.Fatal(err)
	}

	if after := fingerprint(v); after != before {
		t.Fatal("captured view changed after subsequent writes")
	}
	if v.Processed() == m.View().Processed() {
		t.Fatal("monitor did not advance past the captured view")
	}
}

// fingerprint reduces a view to a comparable value covering every byte of
// its observable state.
func fingerprint(v *pskyline.View) uint64 {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	mix(v.Processed())
	for _, q := range v.Thresholds() {
		mix(math.Float64bits(q))
	}
	for _, s := range v.BandSizes() {
		mix(uint64(s))
	}
	for _, c := range v.Candidates() {
		mix(c.Seq)
		mix(uint64(c.TS))
		mix(math.Float64bits(c.Prob))
		mix(math.Float64bits(c.Psky))
		for _, x := range c.Point {
			mix(math.Float64bits(x))
		}
	}
	return h
}
