package pskyline

import (
	"math"
)

// Router partitions the data space across the shards of a ShardedMonitor.
//
// A Router must be TOTAL (return a shard in [0, shards) for every finite
// point and probability) and DETERMINISTIC (a pure function of its
// arguments). It does NOT have to be stable across shard counts or runs:
// the sharded design is routing-agnostic — every shard expires by global
// watermarks and the merge recomputes exact probabilities over the union —
// so changing the router or the shard count between restarts only moves
// elements between engines; answers are unchanged. The built-in routers are
// additionally rendezvous-stable: growing from n to n+1 shards only moves
// cells onto the new shard.
type Router interface {
	Route(pt []float64, prob float64, shards int) int
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-distributed
// 64-bit mixer used to fold cell coordinates into rendezvous keys.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rendezvous picks the shard with the highest hash of (key, shard) — HRW
// (highest-random-weight) placement. Growing the shard count can only move
// a key to the NEW shard (the old maxima are unchanged), which is the
// stability property FuzzShardRoute locks in.
func rendezvous(key uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	best, bestH := 0, uint64(0)
	for i := 0; i < shards; i++ {
		h := splitmix64(key ^ splitmix64(uint64(i)))
		if h > bestH {
			best, bestH = i, h
		}
	}
	return best
}

// GridRouter is the default Router: it quantizes each coordinate into a
// scale-free cell (sign, exponent and the top MantissaBits mantissa bits of
// the float64 — so cell size adapts to the data's magnitude without any
// configuration), folds the cells into one key and places the key with
// rendezvous hashing. Nearby points tend to share cells, which keeps a
// shard's dominator factors shard-local and its candidate set small.
type GridRouter struct {
	// MantissaBits is the number of leading mantissa bits kept per
	// coordinate (1..52); 0 selects 6.
	MantissaBits uint
}

// Route implements Router.
func (g GridRouter) Route(pt []float64, prob float64, shards int) int {
	mb := g.MantissaBits
	if mb == 0 {
		mb = 6
	}
	if mb > 52 {
		mb = 52
	}
	mask := ^uint64(0) << (52 - mb)
	var key uint64
	for _, c := range pt {
		bits := math.Float64bits(c)
		if c == 0 {
			bits = 0 // -0 and +0 share a cell
		}
		if math.IsNaN(c) {
			bits = math.Float64bits(math.NaN()) // canonical NaN payload
		}
		// Keep sign and exponent whole, truncate the mantissa: one cell
		// per 2^-mb slice of each binade.
		bits &= (uint64(0xFFF) << 52) | mask
		key = splitmix64(key ^ splitmix64(bits))
	}
	return rendezvous(key, shards)
}

// BandRouter partitions by occurrence probability instead of location:
// element probabilities are quantized into Bands equal-width bins and each
// bin is placed with rendezvous hashing. Useful when locations are adversarial
// for grid cells but the probability mix is diverse.
type BandRouter struct {
	// Bands is the number of probability bins (0 selects 64).
	Bands int
}

// Route implements Router.
func (b BandRouter) Route(pt []float64, prob float64, shards int) int {
	n := b.Bands
	if n <= 0 {
		n = 64
	}
	cell := int(prob * float64(n))
	if cell >= n {
		cell = n - 1
	}
	if cell < 0 || prob != prob {
		cell = 0
	}
	return rendezvous(splitmix64(uint64(cell)+1), shards)
}
