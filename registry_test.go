package pskyline_test

import (
	"bytes"
	"strings"
	"testing"

	"pskyline"
)

func TestValidateStreamName(t *testing.T) {
	good := []string{"a", "A9", "sensor-1", "a.b_c-d", "0x", strings.Repeat("a", 64)}
	for _, s := range good {
		if err := pskyline.ValidateStreamName(s); err != nil {
			t.Errorf("%q rejected: %v", s, err)
		}
	}
	bad := []string{"", ".", "..", ".hidden", "-x", "_x", "a/b", "a\\b", "a b",
		"a\x00b", "naïve", strings.Repeat("a", 65)}
	for _, s := range bad {
		if err := pskyline.ValidateStreamName(s); err == nil {
			t.Errorf("%q accepted", s)
		}
	}
}

func TestParseStreamSpec(t *testing.T) {
	cfg, err := pskyline.ParseStreamSpec("sensors: dims=3, window=1000, q=0.5|0.3, shards=4, router=band, async=128, wal=on")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "sensors" || cfg.Options.Dims != 3 || cfg.Options.Window != 1000 {
		t.Errorf("cfg = %+v", cfg)
	}
	if len(cfg.Options.Thresholds) != 2 || cfg.Options.Thresholds[0] != 0.5 {
		t.Errorf("thresholds = %v", cfg.Options.Thresholds)
	}
	if cfg.Shards != 4 || cfg.Options.AsyncQueue != 128 || !cfg.Durable {
		t.Errorf("cfg = %+v", cfg)
	}
	if _, ok := cfg.Router.(pskyline.BandRouter); !ok {
		t.Errorf("router = %T", cfg.Router)
	}

	bad := []string{
		"",                                   // no name
		"noopts",                             // no colon
		"x:",                                 // dims missing
		"x:dims=2",                           // window/period missing
		"x:dims=2,window=5",                  // q missing
		"x:dims=2,window=5,period=9,q=0.3",   // both windows
		"x:dims=0,window=5,q=0.3",            // bad dims
		"x:dims=2,window=5,q=abc",            // bad threshold
		"x:dims=2,window=5,q=0.3,shards=0",   // bad shards
		"x:dims=2,window=5,q=0.3,router=xyz", // bad router
		"x:dims=2,window=5,q=0.3,bogus=1",    // unknown key
		"x:dims=2,window=5,q=0.3,wal=maybe",  // bad wal value
		"../etc:dims=2,window=5,q=0.3",       // path-escaping name
	}
	for _, s := range bad {
		if _, err := pskyline.ParseStreamSpec(s); err == nil {
			t.Errorf("spec %q accepted", s)
		}
	}
}

func TestParseStreamSpecs(t *testing.T) {
	cfgs, err := pskyline.ParseStreamSpecs("a:dims=2,window=5,q=0.3; b:dims=1,period=100,q=0.5,shards=2;")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 || cfgs[0].Name != "a" || cfgs[1].Name != "b" || cfgs[1].Options.Period != 100 {
		t.Errorf("cfgs = %+v", cfgs)
	}
	if _, err := pskyline.ParseStreamSpecs("a:dims=2,window=5,q=0.3;a:dims=2,window=5,q=0.3"); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := pskyline.ParseStreamSpecs(" ; "); err == nil {
		t.Error("empty spec list accepted")
	}
}

// FuzzParseStreamSpec: the spec parser must never panic, and every accepted
// config must be internally consistent — a safe name, valid dimensionality,
// exactly one window kind, and at least one threshold.
func FuzzParseStreamSpec(f *testing.F) {
	f.Add("sensors:dims=3,window=100000,q=0.3|0.5,shards=4,wal=on")
	f.Add("x:dims=2,period=500,q=0.9,router=grid,async=16,async-policy=drop-oldest")
	f.Add("a:dims=1,window=1,q=1,wal-fsync=always,wal-policy=retry,checkpoint-every=100")
	f.Add("::::")
	f.Add("a:b=c,d==e,,")
	f.Fuzz(func(t *testing.T, s string) {
		cfg, err := pskyline.ParseStreamSpec(s)
		if err != nil {
			return
		}
		if nerr := pskyline.ValidateStreamName(cfg.Name); nerr != nil {
			t.Fatalf("accepted spec %q with invalid name: %v", s, nerr)
		}
		if cfg.Options.Dims < 1 {
			t.Fatalf("accepted spec %q with dims %d", s, cfg.Options.Dims)
		}
		if (cfg.Options.Window > 0) == (cfg.Options.Period > 0) {
			t.Fatalf("accepted spec %q with window=%d period=%d", s, cfg.Options.Window, cfg.Options.Period)
		}
		if len(cfg.Options.Thresholds) == 0 {
			t.Fatalf("accepted spec %q without thresholds", s)
		}
		if cfg.Shards < 1 {
			t.Fatalf("accepted spec %q with shards %d", s, cfg.Shards)
		}
	})
}

// TestStreamRegistry covers the multi-tenant lifecycle: open sharded and
// unsharded streams, name isolation for metrics and durability, duplicate
// rejection, and CloseAll.
func TestStreamRegistry(t *testing.T) {
	root := t.TempDir()
	reg := pskyline.NewStreamRegistry(pskyline.Durability{Dir: root})

	cfgs, err := pskyline.ParseStreamSpecs(
		"plain:dims=2,window=50,q=0.3;sharded:dims=2,window=50,q=0.3,shards=3;dur:dims=2,window=50,q=0.3,wal=on")
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range cfgs {
		if _, err := reg.Open(cfg); err != nil {
			t.Fatalf("open %s: %v", cfg.Name, err)
		}
	}
	if _, err := reg.Open(cfgs[0]); err == nil {
		t.Error("duplicate open accepted")
	}
	if got := reg.Names(); len(got) != 3 || got[0] != "dur" || got[1] != "plain" || got[2] != "sharded" {
		t.Errorf("names = %v", got)
	}

	els := genShardElements(8, 120, 2)
	for _, name := range reg.Names() {
		op, ok := reg.Get(name)
		if !ok {
			t.Fatalf("stream %s missing", name)
		}
		if _, err := op.PushBatch(els); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		op.Drain()
		if got := op.Stats().Processed; got != 120 {
			t.Errorf("%s processed = %d", name, got)
		}
	}
	if _, ok := reg.Get("nope"); ok {
		t.Error("unknown stream found")
	}

	// One exposition serves all tenants, labeled by stream (and shard).
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	expo := buf.String()
	for _, want := range []string{
		`stream="plain"`, `stream="sharded"`, `stream="dur"`,
		`shard="0",stream="sharded"`, `shard="2",stream="sharded"`,
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("prometheus exposition missing %s", want)
		}
	}

	// Durable stream landed under <root>/streams/<name>.
	opDur, _ := reg.Get("dur")
	if err := opDur.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := reg.CloseAll(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Names(); len(got) != 0 {
		t.Errorf("names after CloseAll = %v", got)
	}

	// Reopening the durable stream recovers its state.
	reg2 := pskyline.NewStreamRegistry(pskyline.Durability{Dir: root})
	op, err := reg2.Open(pskyline.StreamConfig{
		Name:    "dur",
		Options: pskyline.Options{Dims: 2, Window: 50, Thresholds: []float64{0.3}},
		Durable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !op.Recovery().Recovered {
		t.Error("durable stream did not recover")
	}
	if got := op.Stats().Processed; got != 120 {
		t.Errorf("recovered processed = %d, want 120", got)
	}
	if err := reg2.CloseAll(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamRegistryDurableNeedsRoot: a wal=on stream without a registry
// root must fail to open rather than silently running non-durable.
func TestStreamRegistryDurableNeedsRoot(t *testing.T) {
	reg := pskyline.NewStreamRegistry(pskyline.Durability{})
	_, err := reg.Open(pskyline.StreamConfig{
		Name:    "d",
		Options: pskyline.Options{Dims: 1, Window: 5, Thresholds: []float64{0.3}},
		Durable: true,
	})
	if err == nil {
		t.Fatal("durable stream opened without a root directory")
	}
}
