// Package pskyline is a continuous probabilistic skyline operator over
// sliding windows of uncertain data streams, implementing
//
//	W. Zhang, X. Lin, Y. Zhang, W. Wang, J. X. Yu.
//	"Probabilistic Skyline Operator over Sliding Windows", ICDE 2009.
//
// Each stream element is a point in a d-dimensional numeric space (smaller
// values are better on every dimension) with an occurrence probability
// P ∈ (0, 1]. Over the N most recent elements, the skyline probability of an
// element a is
//
//	Psky(a) = P(a) · Π_{a' in window, a' dominates a} (1 − P(a'))
//
// and the q-skyline is the set of elements with Psky ≥ q. A Monitor answers
// the continuous q-skyline, ad-hoc queries at any threshold q' ≥ q,
// multi-threshold (MSKY) monitoring, probabilistic top-k, and time-based
// windows, while keeping only the candidate set S_{N,q} — expected
// poly-logarithmic in N — indexed in aggregate R-trees.
//
// Quickstart:
//
//	m, err := pskyline.NewMonitor(pskyline.Options{
//		Dims:       2,
//		Window:     100_000,
//		Thresholds: []float64{0.3},
//	})
//	...
//	for e := range stream {
//		m.Push(pskyline.Element{Point: e.Point, Prob: e.Prob, Data: e.ID})
//	}
//	for _, s := range m.Skyline() {
//		fmt.Println(s.Point, s.Psky, s.Data)
//	}
package pskyline

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"pskyline/internal/core"
	"pskyline/internal/geom"
	"pskyline/internal/obs"
	"pskyline/internal/vfs"
	"pskyline/internal/wal"
)

// ErrClosed is returned by Push and PushBatch after Close.
var ErrClosed = errors.New("pskyline: monitor is closed")

// errShardMember guards a shard member's public write entry points: pushes
// must carry globally assigned sequence numbers, which only the owning
// ShardedMonitor can provide.
var errShardMember = errors.New("pskyline: monitor is a shard member; push through its ShardedMonitor")

// Element is one uncertain stream element handed to Push.
type Element struct {
	// Point is the element's location; smaller coordinates dominate. Its
	// length must equal Options.Dims.
	Point []float64
	// Prob is the occurrence probability, in (0, 1].
	Prob float64
	// TS is an application timestamp. It is required (and must be
	// non-decreasing) when the Monitor uses a time-based window, and
	// otherwise only stored.
	TS int64
	// Data is an arbitrary payload returned with query results.
	Data any
}

// SkyPoint is one element of a skyline answer.
type SkyPoint struct {
	// Seq is the element's arrival position (0-based).
	Seq uint64
	// Point is the element's location.
	Point []float64
	// Prob is the element's occurrence probability.
	Prob float64
	// Psky is the element's skyline probability in the current window.
	Psky float64
	// TS is the timestamp supplied at Push.
	TS int64
	// Data is the payload supplied at Push.
	Data any
}

// Options configures a Monitor. Exactly one of Window and Period must be
// positive.
type Options struct {
	// Dims is the dimensionality of the data space (≥ 1).
	Dims int
	// Window is the count-based sliding window size N: queries cover the N
	// most recent elements.
	Window int
	// Period selects a time-based window instead: queries cover elements
	// with TS within the most recent Period time units. Pushes must then
	// carry non-decreasing TS values.
	Period int64
	// Thresholds are the continuously maintained skyline probability
	// thresholds q_1 > … > q_k (MSKY when more than one). Ad-hoc queries
	// accept any q' ≥ q_k. At least one threshold is required.
	Thresholds []float64
	// MaxEntries overrides the aggregate R-tree fanout (0 = default).
	MaxEntries int
	// OnEnter and OnLeave, if set, are called during Push whenever an
	// element enters or leaves the q_1-skyline. Callbacks run while the
	// Monitor's lock is held: they must not call back into the Monitor.
	OnEnter func(SkyPoint)
	OnLeave func(SkyPoint)
	// TopK enables continuous top-k monitoring (Section VI): after any
	// Push that changes the ranked list of the TopK candidates with the
	// highest skyline probabilities ≥ TopKMinQ, OnTopK receives the new
	// ranking. TopKMinQ defaults to the smallest threshold. Like OnEnter,
	// OnTopK runs under the Monitor's lock. With PushBatch or an async
	// queue the ranking is re-derived once per ingestion batch, so
	// intermediate rankings inside a batch are not reported.
	TopK     int
	TopKMinQ float64
	OnTopK   func([]SkyPoint)

	// TraceDepth is the capacity of the structured trace ring: the last
	// TraceDepth q_1-skyline transitions are kept for Trace() and the
	// /debug/skyline endpoint (rounded up to a power of two; 0 selects
	// DefaultTraceDepth).
	TraceDepth int

	// AsyncQueue, when positive, decouples producers from ingestion: Push
	// and PushBatch validate the elements, enqueue them on a bounded
	// buffer of this capacity (blocking for backpressure when it is full)
	// and return immediately with the sequence numbers the elements will
	// receive. A single background goroutine drains the buffer in batches,
	// updates the engine and publishes a fresh read view once per batch.
	// Use Drain to wait for the queue to empty and Close to shut the
	// goroutine down. Zero disables the queue: Push and PushBatch then
	// ingest synchronously and a view is published before they return.
	AsyncQueue int

	// AsyncPolicy selects what a full async queue does to producers: Block
	// (the default — backpressure), DropNewest (reject the arriving element
	// with ErrOverloaded) or DropOldest (evict the oldest queued element to
	// make room — the window semantics tolerate gaps, recency wins). Drops
	// are counted in Metrics().QueueDropped. Ignored without AsyncQueue.
	AsyncPolicy OverloadPolicy

	// Latency configures ingest-to-visibility latency tracking and the
	// flight recorder. The zero value enables both with the defaults; set
	// Latency.Disable for an instrumentation-off control. See LatencyOptions.
	Latency LatencyOptions

	// Durability, when Dir is set, makes the monitor crash-recoverable:
	// every element is appended to a write-ahead log before the engine
	// applies it, checkpoints are installed periodically, and Open recovers
	// the combined state after a crash. See the Durability type.
	Durability Durability

	// shard marks the monitor as one shard of a ShardedMonitor: sequence
	// numbers arrive pre-assigned from the sharded front end, the engine
	// runs without a window of its own (expiry is driven by sequence or
	// timestamp watermarks), and the public Push/PushBatch entry points are
	// disabled. Set only by NewSharded.
	shard *shardMember

	// metricLabels and sharedReg let a multi-tenant host register this
	// monitor's metric series, labeled, into one shared export registry
	// (one family per metric name across all streams and shards). Set by
	// StreamRegistry and NewSharded.
	metricLabels []obs.Label
	sharedReg    *obs.Registry
}

// Monitor is a continuous probabilistic skyline operator. It is safe for
// concurrent use by any number of goroutines.
//
// Internally the Monitor is split into a single-writer ingestion path and a
// lock-free read path. Writers (Push, PushBatch, AddThreshold, ...) are
// serialized on a mutex and, after every completed update, publish an
// immutable View of the full answerable state through an atomic pointer.
// Readers (Skyline, Query, TopK, View) only load that pointer: they never
// block the writer, never block each other, and never touch the live
// R-trees, so read throughput scales with cores.
//
// Memory model: a read observes exactly the state left by the most recently
// published update — never a partially applied one. A batch (PushBatch or an
// async ingestion batch) publishes once at the end, so readers see either
// the state before the whole batch or after it, nothing in between. The
// atomic publication gives the usual happens-before edge: once a reader
// obtains a view containing element a, it also observes every effect of the
// writes up to and including a's ingestion.
type Monitor struct {
	mu     sync.Mutex // guards eng, data, topk, lastGens
	eng    *core.Engine
	data   map[uint64]any
	period int64
	opts   Options
	topk   *core.TopKTracker
	dims   int

	view     atomic.Pointer[View]
	lastGens []uint64 // engine band generations at last publish

	batch []core.BatchElem // scratch for batch ingestion, guarded by mu

	// Observability: the metrics block (stage histograms recorded by the
	// engine, mirrors refreshed at publish), the lock-free skyline trace
	// ring, the export registry, and the occurrence-probability running sum
	// behind the theory-bound gauges (plain fields, guarded by mu).
	met       monMetrics
	trace     *traceRing
	reg       *obs.Registry
	probSum   float64
	probCount uint64

	// Ingest-to-visibility latency tracking (Options.Latency): latOn gates
	// the admission stamps, flight is the per-write span recorder, and
	// shardIdx labels this monitor's flight spans (−1 unsharded).
	latOn    bool
	flight   *obs.FlightRecorder
	shardIdx int32

	aq *asyncQueue // nil when Options.AsyncQueue == 0

	// Durability (nil wal when disabled). dur holds the normalized options;
	// ckptSince and ckptSeq are checkpoint bookkeeping under mu; replaying
	// suppresses callbacks while recovery re-ingests the log tail; walErr
	// latches the first unrecoverable durability failure so every later
	// write fails fast. fsys is the filesystem seam shared by the WAL and
	// the checkpoint store; walPol the parsed failure policy. Under the
	// "shed" policy degradedCh wakes the reattacher goroutine, whose
	// lifecycle reattachStop/reattachDone/reattachOnce manage.
	wal       *wal.WAL
	dur       Durability
	fsys      vfs.FS
	walPol    wal.Policy
	ckptSince int
	ckptSeq   uint64
	replaying bool
	recovery  RecoveryInfo

	// lastTS is the highest element timestamp ingested (guarded by mu). It
	// is checkpointed and, for shard members, drives the recovered global
	// watermark. snapShardWindow carries a recovered checkpoint's logical
	// shard window for the Open-time configuration check.
	lastTS          int64
	snapShardWindow int
	walErr          atomic.Pointer[error]
	commitWaiter    atomic.Pointer[CommitWaiter] // semi-sync replication hook (repl.go)
	degradedCh      chan struct{}
	reattachStop    chan struct{}
	reattachDone    chan struct{}
	reattachOnce    sync.Once

	closed bool // guarded by mu; Push/PushBatch return ErrClosed once set
}

// NewMonitor returns a Monitor for the given options. When
// Options.Durability.Dir is set it is equivalent to Open: the directory's
// durable state (if any) is recovered and new pushes are logged.
func NewMonitor(opt Options) (*Monitor, error) {
	if opt.Durability.Dir != "" {
		return Open(opt)
	}
	m, err := newMonitorCore(opt)
	if err != nil {
		return nil, err
	}
	return m.finish(), nil
}

// newMonitorCore builds a fresh monitor without publishing a view or
// starting background goroutines (the recovery path replays the WAL tail in
// between).
func newMonitorCore(opt Options) (*Monitor, error) {
	if opt.shard != nil {
		// A shard member holds one slice of a globally numbered stream:
		// the logical count window lives in the shard config (the engine
		// runs windowless and expires by explicit sequence/timestamp
		// watermarks), and the front end validated the window/period
		// exclusivity already.
		if (opt.shard.window > 0) == (opt.Period > 0) || opt.Window != 0 {
			return nil, errors.New("pskyline: internal: malformed shard member configuration")
		}
	} else if (opt.Window > 0) == (opt.Period > 0) {
		return nil, errors.New("pskyline: exactly one of Window and Period must be positive")
	}
	if opt.AsyncQueue < 0 {
		return nil, errors.New("pskyline: AsyncQueue must be >= 0")
	}
	if opt.AsyncPolicy < Block || opt.AsyncPolicy > DropOldest {
		return nil, errors.New("pskyline: unknown AsyncPolicy")
	}
	m := &Monitor{
		data:   make(map[uint64]any),
		period: opt.Period,
		opts:   opt,
	}
	m.trace = newTraceRing(opt.TraceDepth)
	m.initLatency()
	eng, err := core.NewEngine(core.Options{
		Dims:          opt.Dims,
		Window:        opt.Window,
		Thresholds:    opt.Thresholds,
		MaxEntries:    opt.MaxEntries,
		TrackArrivals: opt.shard != nil,
		OnChange:      m.onChange,
		Metrics:       &m.met.eng,
	})
	if err != nil {
		return nil, fmt.Errorf("pskyline: %w", err)
	}
	m.eng = eng
	if err := m.initTopK(); err != nil {
		return nil, fmt.Errorf("pskyline: %w", err)
	}
	m.dims = eng.Dims()
	return m, nil
}

// initTopK attaches the continuous top-k tracker configured in m.opts.
func (m *Monitor) initTopK() error {
	if m.opts.TopK <= 0 {
		return nil
	}
	minQ := m.opts.TopKMinQ
	if minQ == 0 {
		ths := m.eng.Thresholds()
		minQ = ths[len(ths)-1]
	}
	var err error
	m.topk, err = core.NewTopKTracker(m.eng, m.opts.TopK, minQ)
	return err
}

// finish publishes the first view, assembles the export registry and starts
// the background goroutines: the async ingestion queue and, under the shed
// durability policy, the reattacher. No other goroutine can reference the
// monitor yet, so the "locked" helpers run without the lock.
func (m *Monitor) finish() *Monitor {
	m.publishLocked()
	if m.opts.AsyncQueue > 0 {
		m.aq = newAsyncQueue(m, m.opts.AsyncQueue, m.opts.AsyncPolicy)
	}
	m.buildRegistry()
	if m.wal != nil && m.walPol == wal.Shed {
		m.reattachStop = make(chan struct{})
		m.reattachDone = make(chan struct{})
		go m.reattacher(m.reattachStop)
	}
	return m
}

// onChange runs under m.mu (the engine is only driven from Push).
func (m *Monitor) onChange(ev core.Event) {
	if m.replaying {
		// Recovery replay re-executes transitions that were already
		// reported before the crash: keep the payload cleanup, skip the
		// re-notification (callbacks, churn counters, trace).
		if ev.ToBand == -1 {
			delete(m.data, ev.Item.Seq)
		}
		return
	}
	enter := ev.FromBand != 0 && ev.ToBand == 0
	leave := ev.FromBand == 0 && ev.ToBand != 0
	if enter || leave {
		// Churn accounting and the structured trace: atomic stores into
		// fixed storage, so the ingestion path stays allocation-free.
		if enter {
			m.met.enters.Inc()
		} else {
			m.met.leaves.Inc()
		}
		it := ev.Item
		m.trace.record(it.Seq, m.eng.Processed(), m.eng.ArrivalNs(),
			it.P, it.Psky().Float(), ev.FromBand, ev.ToBand, it.Point)
	}
	if enter && m.opts.OnEnter != nil {
		m.opts.OnEnter(m.skyPointOf(ev))
	}
	if leave && m.opts.OnLeave != nil {
		m.opts.OnLeave(m.skyPointOf(ev))
	}
	if ev.ToBand == -1 {
		delete(m.data, ev.Item.Seq)
	}
}

// skyPointOf clones the item's point: the engine recycles departed items'
// coordinate storage, so callback payloads must not alias live tree state.
func (m *Monitor) skyPointOf(ev core.Event) SkyPoint {
	it := ev.Item
	return SkyPoint{
		Seq:   it.Seq,
		Point: append([]float64(nil), it.Point...),
		Prob:  it.P,
		TS:    it.TS,
		Data:  m.data[it.Seq],
	}
}

// validate replicates the engine's element checks so that enqueueing and
// batching can reject bad input up front, before any element is ingested.
func (m *Monitor) validate(e Element) error {
	if len(e.Point) != m.dims {
		return fmt.Errorf("pskyline: point dimensionality %d != %d", len(e.Point), m.dims)
	}
	if e.Prob <= 0 || e.Prob > 1 {
		return fmt.Errorf("pskyline: occurrence probability %v out of (0,1]", e.Prob)
	}
	return nil
}

// Push processes one arriving element and returns its sequence number.
//
// With an async queue (Options.AsyncQueue > 0) Push only validates and
// enqueues the element — blocking when the queue is full — and returns the
// sequence number the element will receive once the background goroutine
// ingests it; call Drain to wait for queries to observe it.
func (m *Monitor) Push(e Element) (uint64, error) {
	if m.opts.shard != nil {
		return 0, errShardMember
	}
	if err := m.validate(e); err != nil {
		return 0, err
	}
	if p := m.walErr.Load(); p != nil {
		return 0, *p
	}
	admit := m.admitNow()
	if m.aq != nil {
		return m.aq.enqueue(e, admit)
	}
	seq, err := m.pushOne(e, admit)
	if err != nil {
		return 0, err
	}
	// Semi-sync replication waits outside the ingest lock: the element is
	// applied and locally durable; the waiter only gates the return until
	// the follower quorum acks (or the stream degrades to async).
	if err := m.commitWait(seq + 1); err != nil {
		return seq, err
	}
	return seq, nil
}

// pushOne is Push's locked body: log, ingest, publish one element.
func (m *Monitor) pushOne(e Element, admit int64) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrClosed
	}
	var sp opSpan
	m.beginOpLocked(&sp, admit, -1)
	if m.wal != nil {
		if err := m.logOneLocked(e); err != nil {
			return 0, err
		}
	}
	seq, err := m.ingestLocked(e)
	if err != nil {
		return 0, err
	}
	sp.applyDone()
	m.refreshTopKLocked()
	m.publishLocked()
	m.endOpLocked(&sp, seq, 1, nil, nil)
	m.maybeCheckpointLocked(1)
	return seq, nil
}

// PushBatch processes a batch of arriving elements as one write: the
// elements are validated up front (an invalid element fails the whole batch
// before anything is ingested), handed to the engine as a single batch
// operation (count-based windows; time-based windows interleave expiry with
// ingestion and run element-wise), and a single read view is published
// afterwards, so concurrent readers observe either none or all of the batch.
// The final state is byte-identical to pushing the elements one at a time in
// the same order. The elements receive consecutive sequence numbers starting
// at the returned value. Batching amortizes view publication and the
// engine's per-call bookkeeping: for write-heavy streams it is substantially
// cheaper than element-wise Push.
//
// With an async queue the batch is enqueued whole (blocking when the queue
// is full) and ingested by the background goroutine.
func (m *Monitor) PushBatch(es []Element) (uint64, error) {
	if m.opts.shard != nil {
		return 0, errShardMember
	}
	for i := range es {
		if err := m.validate(es[i]); err != nil {
			return 0, fmt.Errorf("batch element %d: %w", i, err)
		}
	}
	if p := m.walErr.Load(); p != nil {
		return 0, *p
	}
	admit := m.admitNow()
	if m.aq != nil {
		return m.aq.enqueueBatch(es, admit)
	}
	first, err := m.pushMany(es, admit)
	if err != nil {
		return 0, err
	}
	if len(es) > 0 {
		// As in Push: the semi-sync wait runs after the ingest lock drops.
		if err := m.commitWait(first + uint64(len(es))); err != nil {
			return first, err
		}
	}
	return first, nil
}

// pushMany is PushBatch's locked body: log, ingest, publish the batch.
func (m *Monitor) pushMany(es []Element, admit int64) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrClosed
	}
	var sp opSpan
	if len(es) > 0 {
		m.beginOpLocked(&sp, admit, -1)
	}
	if m.wal != nil && len(es) > 0 {
		if err := m.logBatchLocked(es); err != nil {
			return 0, err
		}
	}
	first, err := m.ingestBatchLocked(es)
	if err != nil {
		// Unreachable after up-front validation; publish what was ingested
		// so readers stay consistent with the engine.
		m.refreshTopKLocked()
		m.publishLocked()
		return 0, err
	}
	if len(es) > 0 {
		sp.applyDone()
		m.refreshTopKLocked()
		m.publishLocked()
		m.endOpLocked(&sp, first, len(es), nil, nil)
		m.maybeCheckpointLocked(len(es))
	}
	return first, nil
}

// ingestLocked runs one element through the engine. Callers hold m.mu and
// publish a view afterwards.
func (m *Monitor) ingestLocked(e Element) (uint64, error) {
	if m.period > 0 {
		m.eng.ExpireOlderThan(e.TS - m.period)
	}
	// Record the payload before the engine runs so departure events
	// (including the degenerate immediate ones) can clean it up.
	seq := m.eng.NextSeq()
	if e.Data != nil {
		m.data[seq] = e.Data
	}
	it, err := m.eng.Push(geom.Point(e.Point), e.Prob, e.TS)
	if err != nil {
		delete(m.data, seq)
		return 0, fmt.Errorf("pskyline: %w", err)
	}
	m.probSum += e.Prob
	m.probCount++
	if e.TS > m.lastTS {
		m.lastTS = e.TS
	}
	return it.Seq, nil
}

// ingestBatchLocked runs a validated batch through the engine. Count-based
// windows use the engine's true batch insert (one engine-level operation,
// byte-identical to the element-wise sequence); time-based windows must
// interleave per-element expiry with ingestion, so they fall back to
// element-wise ingestLocked. Callers hold m.mu and publish afterwards.
func (m *Monitor) ingestBatchLocked(es []Element) (uint64, error) {
	first := m.eng.NextSeq()
	if m.period > 0 || len(es) == 0 {
		for i := range es {
			if _, err := m.ingestLocked(es[i]); err != nil {
				return 0, fmt.Errorf("batch element %d: %w", i, err)
			}
		}
		return first, nil
	}
	// Record payloads before the engine runs so departure events fired
	// during the batch (including degenerate immediate ones) can clean
	// them up.
	for i := range es {
		if es[i].Data != nil {
			m.data[first+uint64(i)] = es[i].Data
		}
	}
	batch := m.batch[:0]
	for i := range es {
		batch = append(batch, core.BatchElem{Point: geom.Point(es[i].Point), P: es[i].Prob, TS: es[i].TS})
	}
	_, err := m.eng.PushBatch(batch)
	for i := range batch {
		batch[i] = core.BatchElem{} // drop point references from the scratch
	}
	m.batch = batch[:0]
	if err != nil {
		// The engine validates before mutating: nothing was ingested.
		for i := range es {
			delete(m.data, first+uint64(i))
		}
		return 0, fmt.Errorf("pskyline: %w", err)
	}
	for i := range es {
		m.probSum += es[i].Prob
		if es[i].TS > m.lastTS {
			m.lastTS = es[i].TS
		}
	}
	m.probCount += uint64(len(es))
	return first, nil
}

// refreshTopKLocked re-derives the continuous top-k ranking and fires
// OnTopK if the ranked membership changed. Callers hold m.mu.
func (m *Monitor) refreshTopKLocked() {
	if m.topk == nil {
		return
	}
	changed, top, err := m.topk.Refresh()
	if err == nil && changed && m.opts.OnTopK != nil {
		m.opts.OnTopK(m.results(top))
	}
}

// publishLocked captures the engine's current bands into an immutable View
// and swaps it in for readers. Bands whose generation counter is unchanged
// since the previous publication are reused from the previous view
// (copy-on-write): the engine guarantees an unchanged generation means a
// byte-identical extraction. Callers hold m.mu.
func (m *Monitor) publishLocked() {
	ths := m.eng.Thresholds()
	nb := len(ths) + 1
	prev := m.view.Load()
	reuse := prev != nil && len(prev.bands) == nb && len(m.lastGens) == nb
	bands := make([][]SkyPoint, nb)
	gens := make([]uint64, nb)
	for i := 0; i < nb; i++ {
		gens[i] = m.eng.BandGen(i)
		if reuse && m.lastGens[i] == gens[i] {
			bands[i] = prev.bands[i]
			continue
		}
		bands[i] = m.extractBandLocked(i)
	}
	m.lastGens = gens
	m.view.Store(&View{
		processed:  m.eng.Processed(),
		thresholds: ths,
		bands:      bands,
		stats: Stats{
			Processed:     m.eng.Processed(),
			Candidates:    m.eng.CandidateSize(),
			Skyline:       m.eng.SkylineSize(),
			MaxCandidates: m.eng.MaxCandidateSize(),
			MaxSkyline:    m.eng.MaxSkylineSize(),
		},
		counters: m.eng.Counters(),
	})
	m.met.mirrorLocked(m.eng, m.probSum, m.probCount)
}

// extractBandLocked copies threshold band i out of the engine, attaching
// payloads. Callers hold m.mu.
func (m *Monitor) extractBandLocked(i int) []SkyPoint {
	rs := m.eng.BandResults(i)
	out := make([]SkyPoint, len(rs))
	for j, r := range rs {
		out[j] = SkyPoint{
			Seq:   r.Seq,
			Point: r.Point,
			Prob:  r.P,
			Psky:  r.Psky,
			TS:    r.TS,
			Data:  m.data[r.Seq],
		}
	}
	return out
}

func (m *Monitor) results(rs []core.Result) []SkyPoint {
	out := make([]SkyPoint, len(rs))
	for i, r := range rs {
		out[i] = SkyPoint{
			Seq:   r.Seq,
			Point: r.Point,
			Prob:  r.P,
			Psky:  r.Psky,
			TS:    r.TS,
			Data:  m.data[r.Seq],
		}
	}
	return out
}

// View returns the most recently published read view. It never returns nil
// and never blocks: the view is swapped in atomically by the writer, and
// reading it contends with nothing. Use it to answer several queries
// against one consistent snapshot of the stream.
func (m *Monitor) View() *View {
	return m.view.Load()
}

// Skyline returns the current q_1-skyline sorted by descending skyline
// probability. It reads the published view: it never blocks on the writer.
func (m *Monitor) Skyline() []SkyPoint {
	return m.view.Load().Skyline()
}

// Query answers an ad-hoc skyline query at threshold q' ≥ q_k (QSKY). It
// reads the published view: it never blocks on the writer.
func (m *Monitor) Query(qPrime float64) ([]SkyPoint, error) {
	return m.view.Load().Query(qPrime)
}

// TopK returns the k elements with the highest skyline probabilities among
// those with Psky ≥ minQ (minQ ≥ q_k), in descending order. It reads the
// published view: it never blocks on the writer.
func (m *Monitor) TopK(k int, minQ float64) ([]SkyPoint, error) {
	return m.view.Load().TopK(k, minQ)
}

// Thresholds returns the maintained thresholds, sorted descending.
func (m *Monitor) Thresholds() []float64 {
	return m.view.Load().Thresholds()
}

// AddThreshold begins maintaining an additional threshold (a new MSKY user
// registering a confidence level). The threshold must be above the smallest
// maintained one: candidates for looser thresholds were already discarded.
//
// Threshold changes redefine the band structure in place without emitting
// enter/leave events: if the new threshold becomes the largest, OnEnter and
// OnLeave simply track the new q_1-skyline from the next Push onward.
func (m *Monitor) AddThreshold(q float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.eng.AddThreshold(q); err != nil {
		return fmt.Errorf("pskyline: %w", err)
	}
	m.publishLocked()
	return nil
}

// RemoveThreshold stops maintaining a threshold (an MSKY user leaving). The
// smallest threshold cannot be removed — it bounds the retained state.
func (m *Monitor) RemoveThreshold(q float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.eng.RemoveThreshold(q); err != nil {
		return fmt.Errorf("pskyline: %w", err)
	}
	m.publishLocked()
	return nil
}

// Stats reports the operator's size counters.
type Stats struct {
	// Processed is the number of elements pushed so far.
	Processed uint64
	// Candidates is the current candidate set size |S_{N,q_k}|.
	Candidates int
	// Skyline is the current |SKY_{N,q_1}|.
	Skyline int
	// MaxCandidates and MaxSkyline are the maxima observed over the
	// stream so far.
	MaxCandidates int
	MaxSkyline    int
}

// Stats returns current and peak sizes as of the last published view. Like
// the query methods it reads the published view and never blocks on the
// writer.
func (m *Monitor) Stats() Stats {
	return m.view.Load().Stats()
}

// Counters returns the operator's accumulated work counters (entries
// classified, elements touched, lazy entry updates, candidate removals and
// band moves) as of the last published view — useful for capacity planning
// and for verifying that the index is pruning effectively on a given
// workload. Lock-free, like Stats.
func (m *Monitor) Counters() core.Counters {
	return m.view.Load().Counters()
}
