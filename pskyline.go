// Package pskyline is a continuous probabilistic skyline operator over
// sliding windows of uncertain data streams, implementing
//
//	W. Zhang, X. Lin, Y. Zhang, W. Wang, J. X. Yu.
//	"Probabilistic Skyline Operator over Sliding Windows", ICDE 2009.
//
// Each stream element is a point in a d-dimensional numeric space (smaller
// values are better on every dimension) with an occurrence probability
// P ∈ (0, 1]. Over the N most recent elements, the skyline probability of an
// element a is
//
//	Psky(a) = P(a) · Π_{a' in window, a' dominates a} (1 − P(a'))
//
// and the q-skyline is the set of elements with Psky ≥ q. A Monitor answers
// the continuous q-skyline, ad-hoc queries at any threshold q' ≥ q,
// multi-threshold (MSKY) monitoring, probabilistic top-k, and time-based
// windows, while keeping only the candidate set S_{N,q} — expected
// poly-logarithmic in N — indexed in aggregate R-trees.
//
// Quickstart:
//
//	m, err := pskyline.NewMonitor(pskyline.Options{
//		Dims:       2,
//		Window:     100_000,
//		Thresholds: []float64{0.3},
//	})
//	...
//	for e := range stream {
//		m.Push(pskyline.Element{Point: e.Point, Prob: e.Prob, Data: e.ID})
//	}
//	for _, s := range m.Skyline() {
//		fmt.Println(s.Point, s.Psky, s.Data)
//	}
package pskyline

import (
	"errors"
	"fmt"
	"sync"

	"pskyline/internal/core"
	"pskyline/internal/geom"
)

// Element is one uncertain stream element handed to Push.
type Element struct {
	// Point is the element's location; smaller coordinates dominate. Its
	// length must equal Options.Dims.
	Point []float64
	// Prob is the occurrence probability, in (0, 1].
	Prob float64
	// TS is an application timestamp. It is required (and must be
	// non-decreasing) when the Monitor uses a time-based window, and
	// otherwise only stored.
	TS int64
	// Data is an arbitrary payload returned with query results.
	Data any
}

// SkyPoint is one element of a skyline answer.
type SkyPoint struct {
	// Seq is the element's arrival position (0-based).
	Seq uint64
	// Point is the element's location.
	Point []float64
	// Prob is the element's occurrence probability.
	Prob float64
	// Psky is the element's skyline probability in the current window.
	Psky float64
	// TS is the timestamp supplied at Push.
	TS int64
	// Data is the payload supplied at Push.
	Data any
}

// Options configures a Monitor. Exactly one of Window and Period must be
// positive.
type Options struct {
	// Dims is the dimensionality of the data space (≥ 1).
	Dims int
	// Window is the count-based sliding window size N: queries cover the N
	// most recent elements.
	Window int
	// Period selects a time-based window instead: queries cover elements
	// with TS within the most recent Period time units. Pushes must then
	// carry non-decreasing TS values.
	Period int64
	// Thresholds are the continuously maintained skyline probability
	// thresholds q_1 > … > q_k (MSKY when more than one). Ad-hoc queries
	// accept any q' ≥ q_k. At least one threshold is required.
	Thresholds []float64
	// MaxEntries overrides the aggregate R-tree fanout (0 = default).
	MaxEntries int
	// OnEnter and OnLeave, if set, are called during Push whenever an
	// element enters or leaves the q_1-skyline. Callbacks run while the
	// Monitor's lock is held: they must not call back into the Monitor.
	OnEnter func(SkyPoint)
	OnLeave func(SkyPoint)
	// TopK enables continuous top-k monitoring (Section VI): after any
	// Push that changes the ranked list of the TopK candidates with the
	// highest skyline probabilities ≥ TopKMinQ, OnTopK receives the new
	// ranking. TopKMinQ defaults to the smallest threshold. Like OnEnter,
	// OnTopK runs under the Monitor's lock.
	TopK     int
	TopKMinQ float64
	OnTopK   func([]SkyPoint)
}

// Monitor is a continuous probabilistic skyline operator. It is safe for
// concurrent use.
type Monitor struct {
	mu     sync.Mutex
	eng    *core.Engine
	data   map[uint64]any
	period int64
	opts   Options
	topk   *core.TopKTracker
}

// NewMonitor returns a Monitor for the given options.
func NewMonitor(opt Options) (*Monitor, error) {
	if (opt.Window > 0) == (opt.Period > 0) {
		return nil, errors.New("pskyline: exactly one of Window and Period must be positive")
	}
	m := &Monitor{
		data:   make(map[uint64]any),
		period: opt.Period,
		opts:   opt,
	}
	eng, err := core.NewEngine(core.Options{
		Dims:       opt.Dims,
		Window:     opt.Window,
		Thresholds: opt.Thresholds,
		MaxEntries: opt.MaxEntries,
		OnChange:   m.onChange,
	})
	if err != nil {
		return nil, fmt.Errorf("pskyline: %w", err)
	}
	m.eng = eng
	if opt.TopK > 0 {
		minQ := opt.TopKMinQ
		if minQ == 0 {
			ths := eng.Thresholds()
			minQ = ths[len(ths)-1]
		}
		m.topk, err = core.NewTopKTracker(eng, opt.TopK, minQ)
		if err != nil {
			return nil, fmt.Errorf("pskyline: %w", err)
		}
	}
	return m, nil
}

// onChange runs under m.mu (the engine is only driven from Push).
func (m *Monitor) onChange(ev core.Event) {
	enter := ev.FromBand != 0 && ev.ToBand == 0
	leave := ev.FromBand == 0 && ev.ToBand != 0
	if enter && m.opts.OnEnter != nil {
		m.opts.OnEnter(m.skyPointOf(ev))
	}
	if leave && m.opts.OnLeave != nil {
		m.opts.OnLeave(m.skyPointOf(ev))
	}
	if ev.ToBand == -1 {
		delete(m.data, ev.Item.Seq)
	}
}

func (m *Monitor) skyPointOf(ev core.Event) SkyPoint {
	it := ev.Item
	return SkyPoint{
		Seq:   it.Seq,
		Point: it.Point,
		Prob:  it.P,
		TS:    it.TS,
		Data:  m.data[it.Seq],
	}
}

// Push processes one arriving element and returns its sequence number.
func (m *Monitor) Push(e Element) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.period > 0 {
		m.eng.ExpireOlderThan(e.TS - m.period)
	}
	// Record the payload before the engine runs so departure events
	// (including the degenerate immediate ones) can clean it up.
	seq := m.eng.Processed()
	if e.Data != nil {
		m.data[seq] = e.Data
	}
	it, err := m.eng.Push(geom.Point(e.Point), e.Prob, e.TS)
	if err != nil {
		delete(m.data, seq)
		return 0, fmt.Errorf("pskyline: %w", err)
	}
	if m.topk != nil {
		changed, top, err := m.topk.Refresh()
		if err == nil && changed && m.opts.OnTopK != nil {
			m.opts.OnTopK(m.results(top))
		}
	}
	return it.Seq, nil
}

func (m *Monitor) results(rs []core.Result) []SkyPoint {
	out := make([]SkyPoint, len(rs))
	for i, r := range rs {
		out[i] = SkyPoint{
			Seq:   r.Seq,
			Point: r.Point,
			Prob:  r.P,
			Psky:  r.Psky,
			TS:    r.TS,
			Data:  m.data[r.Seq],
		}
	}
	return out
}

// Skyline returns the current q_1-skyline sorted by descending skyline
// probability.
func (m *Monitor) Skyline() []SkyPoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.results(m.eng.Skyline())
}

// Query answers an ad-hoc skyline query at threshold q' ≥ q_k (QSKY).
func (m *Monitor) Query(qPrime float64) ([]SkyPoint, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, err := m.eng.Query(qPrime)
	if err != nil {
		return nil, fmt.Errorf("pskyline: %w", err)
	}
	return m.results(rs), nil
}

// TopK returns the k elements with the highest skyline probabilities among
// those with Psky ≥ minQ (minQ ≥ q_k), in descending order.
func (m *Monitor) TopK(k int, minQ float64) ([]SkyPoint, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, err := m.eng.TopK(k, minQ)
	if err != nil {
		return nil, fmt.Errorf("pskyline: %w", err)
	}
	return m.results(rs), nil
}

// Thresholds returns the maintained thresholds, sorted descending.
func (m *Monitor) Thresholds() []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.eng.Thresholds()
}

// AddThreshold begins maintaining an additional threshold (a new MSKY user
// registering a confidence level). The threshold must be above the smallest
// maintained one: candidates for looser thresholds were already discarded.
//
// Threshold changes redefine the band structure in place without emitting
// enter/leave events: if the new threshold becomes the largest, OnEnter and
// OnLeave simply track the new q_1-skyline from the next Push onward.
func (m *Monitor) AddThreshold(q float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.eng.AddThreshold(q); err != nil {
		return fmt.Errorf("pskyline: %w", err)
	}
	return nil
}

// RemoveThreshold stops maintaining a threshold (an MSKY user leaving). The
// smallest threshold cannot be removed — it bounds the retained state.
func (m *Monitor) RemoveThreshold(q float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.eng.RemoveThreshold(q); err != nil {
		return fmt.Errorf("pskyline: %w", err)
	}
	return nil
}

// Stats reports the operator's size counters.
type Stats struct {
	// Processed is the number of elements pushed so far.
	Processed uint64
	// Candidates is the current candidate set size |S_{N,q_k}|.
	Candidates int
	// Skyline is the current |SKY_{N,q_1}|.
	Skyline int
	// MaxCandidates and MaxSkyline are the maxima observed over the
	// stream so far.
	MaxCandidates int
	MaxSkyline    int
}

// Stats returns current and peak sizes.
func (m *Monitor) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Processed:     m.eng.Processed(),
		Candidates:    m.eng.CandidateSize(),
		Skyline:       m.eng.SkylineSize(),
		MaxCandidates: m.eng.MaxCandidateSize(),
		MaxSkyline:    m.eng.MaxSkylineSize(),
	}
}

// Counters returns the operator's accumulated work counters (entries
// classified, elements touched, lazy entry updates, candidate removals and
// band moves) — useful for capacity planning and for verifying that the
// index is pruning effectively on a given workload.
func (m *Monitor) Counters() core.Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.eng.Counters()
}
