package pskyline

import (
	"io"
	"math"
	"sync/atomic"
	"time"

	"pskyline/internal/core"
	"pskyline/internal/obs"
	"pskyline/internal/stats"
	"pskyline/internal/wal"
)

// monMetrics is the Monitor's observability block. The engine records the
// stage histograms directly (atomic, allocation-free); everything that is
// maintained as plain single-writer state inside the engine — sizes, work
// counters, stream position — is mirrored into atomics once per view
// publication, under the writer lock, so exporters and Metrics() read a
// coherent recent state without ever taking m.mu.
type monMetrics struct {
	eng core.Metrics // per-stage latency histograms, recorded by the engine

	enters    obs.Counter // elements entering the q_1-skyline
	leaves    obs.Counter // elements leaving the q_1-skyline
	publishes obs.Counter // view publications

	publishGap obs.Histogram // interval between consecutive publications

	// Ingest-to-visibility latency (Options.Latency): admission → engine
	// applied and admission → view publish, in windowed histograms whose
	// recent quantiles cover the last epoch window rather than process
	// lifetime. Recorded by the write path under m.mu (single writer).
	latApplied obs.WindowedHistogram
	latVisible obs.WindowedHistogram

	// Publish-time mirrors of engine state (single writer under m.mu).
	processed    atomic.Uint64
	pushes       atomic.Uint64
	expiries     atomic.Uint64
	nodesVisited atomic.Uint64
	itemsTouched atomic.Uint64
	lazyApplied  atomic.Uint64
	removals     atomic.Uint64
	moves        atomic.Uint64

	candidates    atomic.Uint64
	skyline       atomic.Uint64
	maxCandidates atomic.Uint64
	maxSkyline    atomic.Uint64
	windowFill    atomic.Uint64

	probSumBits   atomic.Uint64 // float64 bits: Σ occurrence prob of pushed elements
	probCount     atomic.Uint64
	lastPublishNs atomic.Int64

	// Durability: the WAL's own counters/histograms (recorded under m.mu,
	// which satisfies their single-writer contract) and checkpoint
	// bookkeeping. Unused when durability is disabled.
	wal       wal.Metrics
	ckpts     obs.Counter // checkpoints installed
	ckptFails obs.Counter // checkpoint attempts that failed
	ckptSeqA  atomic.Uint64

	// qDrops counts elements shed by the async queue's overload policy
	// (recorded under the queue's enqueue mutex — single writer).
	qDrops obs.Counter
}

// mirrorLocked copies the engine's single-writer state into the atomic
// mirrors and stamps the publication. Callers hold m.mu.
func (mm *monMetrics) mirrorLocked(eng *core.Engine, probSum float64, probCount uint64) {
	c := eng.Counters()
	mm.processed.Store(eng.Processed())
	mm.pushes.Store(c.Pushes)
	mm.expiries.Store(c.Expiries)
	mm.nodesVisited.Store(c.NodesVisited)
	mm.itemsTouched.Store(c.ItemsTouched)
	mm.lazyApplied.Store(c.LazyApplied)
	mm.removals.Store(c.Removals)
	mm.moves.Store(c.Moves)
	mm.candidates.Store(uint64(eng.CandidateSize()))
	mm.skyline.Store(uint64(eng.SkylineSize()))
	mm.maxCandidates.Store(uint64(eng.MaxCandidateSize()))
	mm.maxSkyline.Store(uint64(eng.MaxSkylineSize()))
	mm.windowFill.Store(uint64(eng.InWindow()))
	mm.probSumBits.Store(math.Float64bits(probSum))
	mm.probCount.Store(probCount)
	mm.publishes.Inc()
	now := time.Now().UnixNano()
	if prev := mm.lastPublishNs.Swap(now); prev != 0 {
		mm.publishGap.Record(time.Duration(now - prev))
	}
}

// meanProb returns the mean occurrence probability over the elements pushed
// by this process (0 when none were pushed yet).
func (mm *monMetrics) meanProb() float64 {
	n := mm.probCount.Load()
	if n == 0 {
		return 0
	}
	return math.Float64frombits(mm.probSumBits.Load()) / float64(n)
}

// buildRegistry assembles the export registry over the monitor's metrics.
// Called once at construction; every registered source reads atomics or the
// published view, so scrapes never contend with ingestion.
//
// Standalone monitors own a private registry. Multi-tenant hosts
// (StreamRegistry, NewSharded) pass a shared registry plus identifying
// labels (stream="...", shard="..."): series then register as additional
// labeled children of one family per metric name, so a single /metrics
// endpoint exports every stream and shard side by side.
func (m *Monitor) buildRegistry() {
	mm := &m.met
	r := m.opts.sharedReg
	if r == nil {
		r = obs.NewRegistry()
	}
	base := m.opts.metricLabels
	lbl := func(extra ...obs.Label) []obs.Label {
		if len(base) == 0 {
			return extra
		}
		return append(append(make([]obs.Label, 0, len(base)+len(extra)), base...), extra...)
	}
	counter := func(name, help string, c *obs.Counter) { r.RegisterCounter(name, help, c, lbl()...) }
	counterFn := func(name, help string, fn func() float64) { r.RegisterCounterFunc(name, help, fn, lbl()...) }
	gauge := func(name, help string, g *obs.Gauge) { r.RegisterGauge(name, help, g, lbl()...) }
	gaugeFn := func(name, help string, fn func() float64) { r.RegisterGaugeFunc(name, help, fn, lbl()...) }
	hist := func(name, help string, h *obs.Histogram, extra ...obs.Label) {
		r.RegisterHistogram(name, help, h, lbl(extra...)...)
	}
	u := func(v *atomic.Uint64) func() float64 {
		return func() float64 { return float64(v.Load()) }
	}

	counterFn("pskyline_pushes_total", "Stream elements ingested.", u(&mm.pushes))
	counterFn("pskyline_expiries_total", "Candidate elements expired out of the window.", u(&mm.expiries))
	counterFn("pskyline_nodes_visited_total", "R-tree entries classified during probes and update traversals.", u(&mm.nodesVisited))
	counterFn("pskyline_items_touched_total", "Elements examined or mutated individually.", u(&mm.itemsTouched))
	counterFn("pskyline_lazy_applied_total", "Entry-level lazy multiplications covering whole subtrees.", u(&mm.lazyApplied))
	counterFn("pskyline_candidate_removals_total", "Elements dropped from the candidate set before expiry.", u(&mm.removals))
	counterFn("pskyline_band_moves_total", "Element reclassifications between threshold bands.", u(&mm.moves))
	counter("pskyline_skyline_enters_total", "Elements entering the q_1-skyline.", &mm.enters)
	counter("pskyline_skyline_leaves_total", "Elements leaving the q_1-skyline.", &mm.leaves)
	counter("pskyline_view_publishes_total", "Read view publications.", &mm.publishes)

	gaugeFn("pskyline_candidates", "Current candidate set size |S_{N,q_k}|.", u(&mm.candidates))
	gaugeFn("pskyline_skyline_size", "Current q_1-skyline size |SKY_{N,q_1}|.", u(&mm.skyline))
	gaugeFn("pskyline_candidates_max", "Maximum candidate set size observed.", u(&mm.maxCandidates))
	gaugeFn("pskyline_skyline_max", "Maximum q_1-skyline size observed.", u(&mm.maxSkyline))
	gaugeFn("pskyline_window_fill", "Stream elements currently inside the sliding window.", u(&mm.windowFill))
	gaugeFn("pskyline_mean_occurrence_prob", "Mean occurrence probability of pushed elements.", mm.meanProb)
	gaugeFn("pskyline_publish_age_seconds", "Seconds since the last view publication.", func() float64 {
		last := mm.lastPublishNs.Load()
		if last == 0 {
			return 0
		}
		return float64(time.Now().UnixNano()-last) / 1e9
	})
	gaugeFn("pskyline_threshold_max", "Largest maintained threshold q_1.", func() float64 {
		ths := m.view.Load().thresholds
		return ths[0]
	})
	gaugeFn("pskyline_threshold_min", "Smallest maintained threshold q_k.", func() float64 {
		ths := m.view.Load().thresholds
		return ths[len(ths)-1]
	})
	gaugeFn("pskyline_theory_skyline_bound",
		"Theorem 7 upper bound on E(|SKY_{N,q_1}|) at the observed window fill and mean probability.",
		m.theorySkylineBound)
	gaugeFn("pskyline_theory_candidate_bound",
		"Theorem 8 upper bound on E(|S_{N,q_k}|) at the observed window fill and mean probability.",
		m.theoryCandidateBound)

	for _, st := range mm.eng.StageHistograms() {
		hist("pskyline_stage_seconds",
			"Per-stage latency of the arrival/expiry pipeline.",
			st.Hist, obs.Label{Key: "stage", Value: st.Name})
	}
	hist("pskyline_publish_interval_seconds",
		"Interval between consecutive view publications.", &mm.publishGap)

	if m.latOn {
		r.RegisterWindowed("pskyline_ingest_apply_latency_seconds",
			"Admission-to-engine-applied latency over the recent window (quantiles) and process lifetime (sum/count).",
			&mm.latApplied, lbl()...)
		r.RegisterWindowed("pskyline_visibility_latency_seconds",
			"Admission-to-view-publish latency over the recent window (quantiles) and process lifetime (sum/count).",
			&mm.latVisible, lbl()...)
		counterFn("pskyline_flight_spans_total", "Write operations recorded by the flight recorder.",
			func() float64 { return float64(m.flight.Recorded()) })
		counterFn("pskyline_flight_slow_total", "Flight spans at or above the slow threshold.",
			func() float64 { return float64(m.flight.SlowLatched()) })
	}

	if m.aq != nil {
		q := m.aq
		counter("pskyline_queue_dropped_total", "Elements shed by the async queue's overload policy.", &mm.qDrops)
		gaugeFn("pskyline_queue_depth", "Elements waiting in the async ingestion queue.", func() float64 { return float64(len(q.ch)) })
		gaugeFn("pskyline_queue_capacity", "Capacity of the async ingestion queue.", func() float64 { return float64(cap(q.ch)) })
	}

	if m.wal != nil {
		wm := &mm.wal
		counter("pskyline_wal_appends_total", "Elements appended to the write-ahead log.", &wm.Appends)
		counterFn("pskyline_wal_appended_bytes_total", "Bytes appended to the write-ahead log.", func() float64 { return float64(wm.AppendedBytes.Load()) })
		counter("pskyline_wal_commits_total", "WAL group commits (one per push or ingested batch).", &wm.Commits)
		counter("pskyline_wal_fsyncs_total", "WAL fsync syscalls.", &wm.Fsyncs)
		counter("pskyline_wal_rotations_total", "WAL segment rotations.", &wm.Rotations)
		counter("pskyline_wal_gc_segments_total", "WAL segments removed by garbage collection.", &wm.GCSegments)
		gauge("pskyline_wal_segments", "Live WAL segment count.", &wm.Segments)
		gauge("pskyline_wal_size_bytes", "Total on-disk size of the write-ahead log.", &wm.SizeBytes)
		gauge("pskyline_wal_state", "Durability health state (0 healthy, 1 retrying, 2 degraded, 3 detached).", &wm.State)
		counter("pskyline_wal_write_errors_total", "Durability failures observed (including failed retry attempts).", &wm.WriteErrors)
		counter("pskyline_wal_retries_total", "WAL recovery attempts under the retry policy.", &wm.Retries)
		counter("pskyline_wal_dropped_records_total", "Records shed while the WAL was degraded.", &wm.DroppedRecords)
		counter("pskyline_wal_dropped_bytes_total", "Bytes shed while the WAL was degraded.", &wm.DroppedBytes)
		counter("pskyline_wal_reattaches_total", "Successful recoveries from degraded back to healthy.", &wm.Reattaches)
		counter("pskyline_checkpoints_total", "Checkpoints installed.", &mm.ckpts)
		counter("pskyline_checkpoint_failures_total", "Checkpoint attempts that failed.", &mm.ckptFails)
		gaugeFn("pskyline_checkpoint_seq", "Stream position of the newest installed checkpoint.", func() float64 { return float64(mm.ckptSeqA.Load()) })
		gaugeFn("pskyline_recovery_replayed_records", "WAL records re-ingested by the last recovery.", func() float64 { return float64(m.recovery.Replayed) })
		gaugeFn("pskyline_recovery_truncated_bytes", "Torn WAL bytes discarded by the last recovery.", func() float64 { return float64(m.recovery.TruncatedBytes) })
		for _, st := range []struct {
			name string
			h    *obs.Histogram
		}{{"wal_append", &wm.AppendLatency}, {"wal_commit", &wm.CommitLatency}, {"wal_fsync", &wm.FsyncLatency}} {
			hist("pskyline_stage_seconds",
				"Per-stage latency of the arrival/expiry pipeline.",
				st.h, obs.Label{Key: "stage", Value: st.name})
		}
	}

	m.reg = r
}

// theorySkylineBound evaluates the paper's Theorem 7 expectation bound on
// the q_1-skyline size at the currently observed window fill and mean
// occurrence probability. Comparing it against pskyline_skyline_size on a
// dashboard makes drift from the paper's poly-logarithmic expectation
// visible live. Returns 0 until elements have been pushed.
func (m *Monitor) theorySkylineBound() float64 {
	n := int(m.met.windowFill.Load())
	p := m.met.meanProb()
	if n == 0 || p <= 0 {
		return 0
	}
	q1 := m.view.Load().thresholds[0]
	return stats.ExpectedSkylineUpper(n, m.dims, p, q1)
}

// theoryCandidateBound is the Theorem 8 analogue for the candidate set size
// at the smallest maintained threshold q_k.
func (m *Monitor) theoryCandidateBound() float64 {
	n := int(m.met.windowFill.Load())
	p := m.met.meanProb()
	if n == 0 || p <= 0 {
		return 0
	}
	ths := m.view.Load().thresholds
	return stats.ExpectedCandidateUpper(n, m.dims, p, ths[len(ths)-1])
}

// StageLatency summarizes one pipeline stage's latency histogram.
type StageLatency struct {
	// Stage names the pipeline stage: expire, probe, update_old, place,
	// apply.
	Stage string
	// Count is the number of recorded stage executions.
	Count uint64
	// MeanNs, P50Ns and P99Ns are estimates in nanoseconds (quantiles are
	// log2-bucket estimates, within a factor of two).
	MeanNs, P50Ns, P99Ns float64
	// MaxNs is the largest recorded stage execution, exact.
	MaxNs uint64
}

// Metrics is a point-in-time observability snapshot of the Monitor:
// sizes, work counters, skyline churn, per-stage latency summaries, view
// publication statistics and the paper's analytical size bounds evaluated
// at the observed workload parameters.
type Metrics struct {
	// Stats are the size statistics as of the last published view.
	Stats Stats
	// Counters are the engine work counters as of the last published view.
	Counters core.Counters
	// SkylineEnters and SkylineLeaves count q_1-skyline transitions.
	SkylineEnters, SkylineLeaves uint64
	// ViewPublishes counts read view publications; LastPublish is the time
	// of the most recent one.
	ViewPublishes uint64
	LastPublish   time.Time
	// WindowFill is the number of elements currently inside the window.
	WindowFill int
	// MeanProb is the mean occurrence probability of pushed elements.
	MeanProb float64
	// TheorySkylineBound and TheoryCandidateBound are the Theorem 7/8
	// expectation bounds evaluated at (WindowFill, dims, MeanProb) and the
	// maintained thresholds — the live version of the paper's size check.
	TheorySkylineBound, TheoryCandidateBound float64
	// Stages are the per-stage latency summaries in pipeline order
	// (including the wal_append/wal_commit/wal_fsync stages when durability
	// is enabled).
	Stages []StageLatency
	// QueueDepth and QueueCapacity describe the async ingestion queue
	// (both zero without one); QueueDropped counts elements shed by its
	// overload policy.
	QueueDepth    int
	QueueCapacity int
	QueueDropped  uint64
	// Latency reports ingest-to-visibility latency over the recent window
	// and the flight recorder's counters; nil when Options.Latency.Disable
	// is set.
	Latency *LatencyMetrics
	// WAL reports the durability subsystem; nil when durability is disabled.
	WAL *WALMetrics
}

// WALMetrics is the durability subsystem's slice of a Metrics snapshot.
type WALMetrics struct {
	// Appends and AppendedBytes count logged elements and their on-disk
	// size; Commits counts group commits and Fsyncs actual fsync syscalls.
	Appends, AppendedBytes, Commits, Fsyncs uint64
	// Rotations and GCSegments count segment lifecycle events; Segments and
	// SizeBytes are the current log extent.
	Rotations, GCSegments uint64
	Segments              int
	SizeBytes             int64
	// Checkpoints and CheckpointFailures count installation attempts;
	// CheckpointSeq is the newest installed checkpoint's stream position.
	Checkpoints, CheckpointFailures uint64
	CheckpointSeq                   uint64
	// State is the durability health state ("healthy", "retrying",
	// "degraded" or "detached"); LastFault describes the most recent
	// durability failure ("" while none occurred).
	State     string
	LastFault string
	// WriteErrors counts durability failures observed (including each
	// failed retry attempt); Retries counts recovery attempts under the
	// retry policy.
	WriteErrors, Retries uint64
	// DroppedRecords and DroppedBytes count records shed while degraded;
	// Reattaches counts successful degraded→healthy recoveries.
	DroppedRecords, DroppedBytes, Reattaches uint64
	// Recovery reports what Open found and repaired.
	Recovery RecoveryInfo
}

// Metrics returns an observability snapshot. Like the query methods it is
// lock-free: it reads the atomic metrics and the published view and never
// contends with ingestion.
func (m *Monitor) Metrics() Metrics {
	mm := &m.met
	v := m.view.Load()
	out := Metrics{
		Stats:                v.Stats(),
		Counters:             v.Counters(),
		SkylineEnters:        mm.enters.Load(),
		SkylineLeaves:        mm.leaves.Load(),
		ViewPublishes:        mm.publishes.Load(),
		WindowFill:           int(mm.windowFill.Load()),
		MeanProb:             mm.meanProb(),
		TheorySkylineBound:   m.theorySkylineBound(),
		TheoryCandidateBound: m.theoryCandidateBound(),
	}
	if ns := mm.lastPublishNs.Load(); ns != 0 {
		out.LastPublish = time.Unix(0, ns)
	}
	if m.aq != nil {
		out.QueueDepth = len(m.aq.ch)
		out.QueueCapacity = cap(m.aq.ch)
		out.QueueDropped = mm.qDrops.Load()
	}
	out.Latency = m.latencyMetrics()
	for _, st := range mm.eng.StageHistograms() {
		s := st.Hist.Snapshot()
		out.Stages = append(out.Stages, StageLatency{
			Stage:  st.Name,
			Count:  s.Count,
			MeanNs: s.MeanNs(),
			P50Ns:  s.QuantileNs(0.50),
			P99Ns:  s.QuantileNs(0.99),
			MaxNs:  s.MaxNs,
		})
	}
	if m.wal != nil {
		wm := &mm.wal
		out.WAL = &WALMetrics{
			Appends:            wm.Appends.Load(),
			AppendedBytes:      wm.AppendedBytes.Load(),
			Commits:            wm.Commits.Load(),
			Fsyncs:             wm.Fsyncs.Load(),
			Rotations:          wm.Rotations.Load(),
			GCSegments:         wm.GCSegments.Load(),
			Segments:           int(wm.Segments.Load()),
			SizeBytes:          int64(wm.SizeBytes.Load()),
			State:              m.wal.State().String(),
			WriteErrors:        wm.WriteErrors.Load(),
			Retries:            wm.Retries.Load(),
			DroppedRecords:     wm.DroppedRecords.Load(),
			DroppedBytes:       wm.DroppedBytes.Load(),
			Reattaches:         wm.Reattaches.Load(),
			Checkpoints:        mm.ckpts.Load(),
			CheckpointFailures: mm.ckptFails.Load(),
			CheckpointSeq:      mm.ckptSeqA.Load(),
			Recovery:           m.recovery,
		}
		if err := m.wal.LastFault(); err != nil {
			out.WAL.LastFault = err.Error()
		}
		for _, st := range []struct {
			name string
			h    *obs.Histogram
		}{{"wal_append", &wm.AppendLatency}, {"wal_commit", &wm.CommitLatency}, {"wal_fsync", &wm.FsyncLatency}} {
			s := st.h.Snapshot()
			out.Stages = append(out.Stages, StageLatency{
				Stage:  st.name,
				Count:  s.Count,
				MeanNs: s.MeanNs(),
				P50Ns:  s.QuantileNs(0.50),
				P99Ns:  s.QuantileNs(0.99),
				MaxNs:  s.MaxNs,
			})
		}
	}
	return out
}

// WritePrometheus renders the Monitor's metrics in the Prometheus text
// exposition format: stage latency histograms, work and churn counters,
// size gauges and the Theorem 7/8 bound gauges. It is lock-free with
// respect to ingestion and safe to call from any goroutine (an HTTP
// /metrics handler, typically).
func (m *Monitor) WritePrometheus(w io.Writer) error {
	return m.reg.WritePrometheus(w)
}

// WriteMetricsJSON renders the same metrics as one expvar-style JSON
// object (histograms as {count, mean_ns, p50_ns, ...} summaries with raw
// log2 buckets). Lock-free, like WritePrometheus.
func (m *Monitor) WriteMetricsJSON(w io.Writer) error {
	return m.reg.WriteJSON(w)
}
