package pskyline_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"pskyline"
)

// durStream produces a deterministic payload-free stream (payloads are not
// WAL-logged, and byte-level snapshot comparison needs gob-stable input).
// Timestamps increase by tsStep per element so the same stream drives both
// count- and time-based windows.
func durStream(seed int64, n, dims int, tsStep int64) []pskyline.Element {
	r := rand.New(rand.NewSource(seed))
	out := make([]pskyline.Element, n)
	for i := range out {
		pt := make([]float64, dims)
		s := 0.0
		for d := range pt {
			pt[d] = r.Float64()
			s += pt[d]
		}
		shift := (float64(dims)/2 - s) / float64(dims) * 0.8
		for d := range pt {
			pt[d] += shift
		}
		out[i] = pskyline.Element{Point: pt, Prob: 1 - r.Float64(), TS: int64(i+1) * tsStep}
	}
	return out
}

func pushAll(t *testing.T, m *pskyline.Monitor, els []pskyline.Element) {
	t.Helper()
	for i := range els {
		if _, err := m.Push(els[i]); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
}

// walRecordLen mirrors the internal/wal on-disk record length for
// d-dimensional elements: 8-byte record header + 29-byte fixed payload +
// 8 bytes per coordinate.
func walRecordLen(dims int) int64 { return int64(37 + 8*dims) }

// walSegHdrLen mirrors the internal/wal segment file header (magic) length.
const walSegHdrLen = 8

// lastSegment returns the newest WAL segment in dir and the sequence number
// of its first record (encoded in the file name).
func lastSegment(t *testing.T, dir string) (string, uint64) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no WAL segments in %s (err=%v)", dir, err)
	}
	sort.Strings(names)
	last := names[len(names)-1]
	seqStr := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(last), "wal-"), ".seg")
	seq, err := strconv.ParseUint(seqStr, 10, 64)
	if err != nil {
		t.Fatalf("segment name %s: %v", last, err)
	}
	return last, seq
}

// cutTail simulates a torn write from a power failure: the newest segment is
// truncated at a randomized point — a record boundary when boundary is set,
// mid-record otherwise — and the number of records surviving in the whole
// log is returned, along with whether a torn partial record was left behind
// (a boundary cut leaves a clean-looking shorter file, so recovery has
// nothing to repair there). The cut never drops below minSurvive records (so
// tests that track an external oracle can forbid rolling back behind it).
func cutTail(t *testing.T, dir string, r *rand.Rand, dims int, boundary bool, minSurvive uint64) (uint64, bool) {
	t.Helper()
	path, first := lastSegment(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	rl := walRecordLen(dims)
	nRec := (fi.Size() - walSegHdrLen) / rl
	kMin := int64(0)
	if minSurvive > first {
		kMin = int64(minSurvive - first)
	}
	if kMin > nRec {
		t.Fatalf("segment %s holds %d records, below the floor %d", path, nRec, kMin)
	}
	k := kMin + r.Int63n(nRec-kMin+1)
	cut := walSegHdrLen + k*rl
	torn := !boundary && k < nRec
	if torn {
		cut += 1 + r.Int63n(rl-1) // tear the middle of record k+1
	}
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}
	return first + uint64(k), torn
}

// newestCheckpointFile reads the newest installed checkpoint in dir into
// memory (later checkpoints garbage-collect it on disk) and returns its
// stream position.
func newestCheckpointFile(t *testing.T, dir string) ([]byte, uint64) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no checkpoints in %s (err=%v)", dir, err)
	}
	sort.Strings(names)
	last := names[len(names)-1]
	seqStr := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(last), "ckpt-"), ".ckpt")
	seq, err := strconv.ParseUint(seqStr, 10, 64)
	if err != nil {
		t.Fatalf("checkpoint name %s: %v", last, err)
	}
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	return data, seq
}

// newestCheckpointSeq is newestCheckpointFile without the Fatal: it reports
// 0 when no checkpoint is installed.
func newestCheckpointSeq(dir string) uint64 {
	names, err := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if err != nil || len(names) == 0 {
		return 0
	}
	sort.Strings(names)
	seqStr := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(names[len(names)-1]), "ckpt-"), ".ckpt")
	seq, _ := strconv.ParseUint(seqStr, 10, 64)
	return seq
}

func snapshotBytes(t *testing.T, m *pskyline.Monitor) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := m.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// semanticSkyline compares two skylines as sets keyed by sequence number:
// membership, points and input probabilities must match exactly, while
// skyline probabilities get an epsilon — a tree rebuilt from a checkpoint
// accumulates its ln-factors in a different order, so the last ULPs of
// P_sky are not preserved across restarts (DESIGN.md §11).
func semanticSkyline(t *testing.T, label string, want, got []pskyline.SkyPoint) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: skyline size %d != %d", label, len(got), len(want))
	}
	ws := append([]pskyline.SkyPoint(nil), want...)
	gs := append([]pskyline.SkyPoint(nil), got...)
	sort.Slice(ws, func(i, j int) bool { return ws[i].Seq < ws[j].Seq })
	sort.Slice(gs, func(i, j int) bool { return gs[i].Seq < gs[j].Seq })
	for i := range ws {
		w, g := ws[i], gs[i]
		if w.Seq != g.Seq || math.Float64bits(w.Prob) != math.Float64bits(g.Prob) {
			t.Fatalf("%s: member %d: want seq=%d p=%v, got seq=%d p=%v",
				label, i, w.Seq, w.Prob, g.Seq, g.Prob)
		}
		if math.Abs(w.Psky-g.Psky) > 1e-9 {
			t.Fatalf("%s: seq %d psky %v != %v", label, w.Seq, g.Psky, w.Psky)
		}
	}
}

func durOpt(dir, fsync string, ckptEvery int) pskyline.Options {
	return pskyline.Options{
		Dims: 3, Window: 64, Thresholds: []float64{0.3, 0.6},
		Durability: pskyline.Durability{
			Dir: dir, Fsync: fsync, SegmentBytes: 4096, CheckpointEvery: ckptEvery,
		},
	}
}

func mustOpen(t *testing.T, opt pskyline.Options) *pskyline.Monitor {
	t.Helper()
	m, err := pskyline.Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCrashRecoveryDifferential is the core recovery proof for the
// checkpoint-free path: after a crash — and, on even trials, a torn tail cut
// at a randomized offset (record boundary or mid-record) — Open must
// rebuild, by pure log replay, a state byte-identical to a monitor that
// ingested exactly the surviving prefix without ever crashing, and both must
// continue identically afterwards. Byte-identity is asserted at two levels:
// the published view (bit-for-bit candidate values) and the gob snapshot
// (which additionally covers the work counters and window bookkeeping).
func TestCrashRecoveryDifferential(t *testing.T) {
	policies := []string{"never", "interval", "always"}
	for trial := 0; trial < 6; trial++ {
		pol := policies[trial%3]
		t.Run(fmt.Sprintf("trial%d_fsync_%s", trial, pol), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(1000 + trial)))
			dir := t.TempDir()
			n := 80 + r.Intn(200)
			els := durStream(int64(31+trial), n+120, 3, 1)

			opt := durOpt(dir, pol, -1) // checkpoints off: recovery is pure replay
			m := mustOpen(t, opt)
			if m.Recovery().Recovered {
				t.Fatal("fresh directory reported recovered state")
			}
			pushAll(t, m, els[:n])
			m.Crash()

			surviving, torn := uint64(n), false
			if trial%2 == 0 {
				surviving, torn = cutTail(t, dir, r, 3, trial%4 == 0, 0)
			}

			m2 := mustOpen(t, opt)
			defer m2.Close()
			rec := m2.Recovery()
			if !rec.Recovered || rec.CheckpointSeq != 0 || rec.Replayed != surviving {
				t.Fatalf("recovery = %+v, want pure replay of %d records", rec, surviving)
			}
			if torn && rec.TruncatedBytes == 0 {
				t.Fatalf("mid-record tear at %d/%d records but recovery reports no repair: %+v", surviving, n, rec)
			}
			if got := m2.Stats().Processed; got != surviving {
				t.Fatalf("recovered position %d, want %d", got, surviving)
			}

			oracle := mustMonitor(t, pskyline.Options{
				Dims: 3, Window: 64, Thresholds: []float64{0.3, 0.6},
			})
			defer oracle.Close()
			pushAll(t, oracle, els[:surviving])
			sameView(t, "after recovery", oracle.View(), m2.View())
			if !bytes.Equal(snapshotBytes(t, oracle), snapshotBytes(t, m2)) {
				t.Fatal("recovered snapshot differs from uninterrupted oracle")
			}

			pushAll(t, m2, els[surviving:n+120])
			pushAll(t, oracle, els[surviving:n+120])
			sameView(t, "after continuation", oracle.View(), m2.View())
			if !bytes.Equal(snapshotBytes(t, oracle), snapshotBytes(t, m2)) {
				t.Fatal("post-recovery continuation diverged from uninterrupted oracle")
			}
		})
	}
}

// TestCheckpointCrashRecoveryDifferential covers the checkpointed path:
// recovery restores the newest checkpoint and replays only the log tail.
// A restored tree is rebuilt in walk order, so work counters and ln-factor
// accumulation order differ from the uninterrupted run; the byte-identity
// oracle is therefore a monitor restored from the very same checkpoint that
// recovery used, fed the surviving tail through plain pushes. Semantics
// against a truly uninterrupted run are asserted on top.
func TestCheckpointCrashRecoveryDifferential(t *testing.T) {
	const n = 260
	for trial := 0; trial < 4; trial++ {
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(4000 + trial)))
			dir := t.TempDir()
			els := durStream(int64(91+trial), n+100, 3, 1)

			opt := durOpt(dir, "never", 48)
			m := mustOpen(t, opt)
			pushAll(t, m, els[:n])
			m.Crash()

			surviving := uint64(n)
			if trial%2 == 0 {
				// The cut may land below the newest checkpoint: recovery then
				// starts ahead of the surviving tail and replays nothing.
				surviving, _ = cutTail(t, dir, r, 3, trial%4 == 0, 0)
			}
			ckptData, ckptSeq := newestCheckpointFile(t, dir)
			if ckptSeq == 0 {
				t.Fatal("no checkpoint was installed before the crash")
			}

			m2 := mustOpen(t, opt)
			defer m2.Close()
			rec := m2.Recovery()
			if !rec.Recovered || rec.CheckpointSeq != ckptSeq {
				t.Fatalf("recovery = %+v, want checkpoint seq %d", rec, ckptSeq)
			}
			var wantReplay uint64
			if surviving > ckptSeq {
				wantReplay = surviving - ckptSeq
			}
			if rec.Replayed != wantReplay {
				t.Fatalf("replayed %d, want %d (checkpoint %d, surviving %d)",
					rec.Replayed, wantReplay, ckptSeq, surviving)
			}
			pos := ckptSeq + wantReplay
			if got := m2.Stats().Processed; got != pos {
				t.Fatalf("recovered position %d, want %d", got, pos)
			}

			oracle, err := pskyline.RestoreMonitor(bytes.NewReader(ckptData), pskyline.RestoreOptions{})
			if err != nil {
				t.Fatalf("restore oracle: %v", err)
			}
			defer oracle.Close()
			pushAll(t, oracle, els[ckptSeq:pos])
			sameView(t, "after recovery", oracle.View(), m2.View())
			if !bytes.Equal(snapshotBytes(t, oracle), snapshotBytes(t, m2)) {
				t.Fatal("recovered snapshot differs from checkpoint-restored oracle")
			}

			pushAll(t, m2, els[pos:n+100])
			pushAll(t, oracle, els[pos:n+100])
			sameView(t, "after continuation", oracle.View(), m2.View())
			if !bytes.Equal(snapshotBytes(t, oracle), snapshotBytes(t, m2)) {
				t.Fatal("post-recovery continuation diverged from checkpoint-restored oracle")
			}

			// The recovered monitor logically processed els[:n+100] exactly;
			// its skyline must agree with an uninterrupted run of the same
			// stream up to float summation order.
			full := mustMonitor(t, pskyline.Options{
				Dims: 3, Window: 64, Thresholds: []float64{0.3, 0.6},
			})
			defer full.Close()
			pushAll(t, full, els[:n+100])
			semanticSkyline(t, "vs uninterrupted", full.Skyline(), m2.Skyline())
			fs, ms := full.Stats(), m2.Stats()
			if fs.Processed != ms.Processed || fs.Candidates != ms.Candidates || fs.Skyline != ms.Skyline {
				t.Fatalf("stats diverged: uninterrupted %+v, recovered %+v", fs, ms)
			}
		})
	}
}

// TestKillRecoverSoak runs repeated crash/recover (and occasional clean
// shutdown/restart) cycles over both window kinds, comparing the recovered
// monitor semantically against an uninterrupted oracle that is fed exactly
// the elements that survived each crash. For time-based windows this proves
// the expiry clock and the MSKY/top-k state survive a restart mid-stream:
// the continuation keeps expiring by timestamp as if the process had never
// died.
func TestKillRecoverSoak(t *testing.T) {
	kinds := []struct {
		name   string
		tsStep int64
		opt    func(dir string) pskyline.Options
	}{
		{"count", 1, func(dir string) pskyline.Options {
			return pskyline.Options{
				Dims: 2, Window: 48, Thresholds: []float64{0.3},
				Durability: pskyline.Durability{
					Dir: dir, Fsync: "interval", FsyncInterval: time.Millisecond,
					SegmentBytes: 2048, CheckpointEvery: 70,
				},
			}
		}},
		{"period", 3, func(dir string) pskyline.Options {
			return pskyline.Options{
				Dims: 2, Period: 150, Thresholds: []float64{0.3},
				Durability: pskyline.Durability{
					Dir: dir, Fsync: "never",
					SegmentBytes: 2048, CheckpointEvery: 70,
				},
			}
		}},
	}
	for _, k := range kinds {
		k := k
		t.Run(k.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(77))
			dir := t.TempDir()
			els := durStream(55, 1400, 2, k.tsStep)

			oopt := k.opt("")
			oopt.Durability = pskyline.Durability{}
			oracle := mustMonitor(t, oopt)
			defer oracle.Close()

			// pos is the durable monitor's recovered position; the oracle is
			// topped up to it at the start of every cycle (elements lost to a
			// crash are never fed to the oracle — it stays uninterrupted on
			// exactly the surviving stream).
			pos, oraclePos := 0, 0
			compare := func(m *pskyline.Monitor, label string) {
				t.Helper()
				pushAll(t, oracle, els[oraclePos:pos])
				oraclePos = pos
				semanticSkyline(t, label, oracle.Skyline(), m.Skyline())
				os1, ms := oracle.Stats(), m.Stats()
				if os1.Candidates != ms.Candidates || os1.Skyline != ms.Skyline {
					t.Fatalf("%s: stats diverged: oracle %+v, recovered %+v", label, os1, ms)
				}
				if pos > 0 {
					wk, werr := oracle.TopK(5, 0.3)
					gk, gerr := m.TopK(5, 0.3)
					if werr != nil || gerr != nil {
						t.Fatalf("%s: topk errors %v, %v", label, werr, gerr)
					}
					semanticSkyline(t, label+" topk", wk, gk)
				}
			}
			for cycle := 0; cycle < 24 && pos < len(els); cycle++ {
				m := mustOpen(t, k.opt(dir))
				if got := int(m.Stats().Processed); got != pos {
					t.Fatalf("cycle %d: recovered position %d, want %d", cycle, got, pos)
				}
				compare(m, fmt.Sprintf("cycle %d recovery", cycle))

				chunk := 60 + r.Intn(120)
				if pos+chunk > len(els) {
					chunk = len(els) - pos
				}
				pushAll(t, m, els[pos:pos+chunk])
				end := pos + chunk

				if cycle%3 == 2 {
					if err := m.Close(); err != nil { // clean shutdown: nothing lost
						t.Fatalf("cycle %d: close: %v", cycle, err)
					}
					pos = end
				} else {
					m.Crash()
					pos = end
					if cycle%2 == 0 {
						// Tear the tail, but never behind what the oracle has
						// already been fed. A checkpoint installed beyond the
						// cut wins: recovery resumes from it, not from the
						// shorter log tail.
						surviving, _ := cutTail(t, dir, r, 2, r.Intn(2) == 0, uint64(oraclePos))
						pos = int(surviving)
						if ck := int(newestCheckpointSeq(dir)); ck > pos {
							pos = ck
						}
					}
				}
			}

			m := mustOpen(t, k.opt(dir))
			compare(m, "final recovery")
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSnapshotHeaderVersioning pins the checkpoint header satellite: a valid
// snapshot round-trips, while a wrong magic, an unknown format version and a
// truncated header are each rejected with a telling error.
func TestSnapshotHeaderVersioning(t *testing.T) {
	m := mustMonitor(t, pskyline.Options{Dims: 2, Window: 32, Thresholds: []float64{0.3}})
	defer m.Close()
	pushAll(t, m, durStream(5, 50, 2, 1))
	good := snapshotBytes(t, m)

	if _, err := pskyline.RestoreMonitor(bytes.NewReader(good), pskyline.RestoreOptions{}); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}

	badMagic := append([]byte(nil), good...)
	badMagic[0] ^= 0xff
	if _, err := pskyline.RestoreMonitor(bytes.NewReader(badMagic), pskyline.RestoreOptions{}); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: err = %v, want a magic rejection", err)
	}

	future := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(future[8:], 99)
	if _, err := pskyline.RestoreMonitor(bytes.NewReader(future), pskyline.RestoreOptions{}); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("future version: err = %v, want a version rejection", err)
	}

	if _, err := pskyline.RestoreMonitor(bytes.NewReader(good[:7]), pskyline.RestoreOptions{}); err == nil {
		t.Fatal("truncated header accepted")
	}
}

// TestOpenConfigMismatch: the WAL logs elements, not configuration, so Open
// must reject options that disagree with the recovered checkpoint instead of
// silently reinterpreting the log.
func TestOpenConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	opt := durOpt(dir, "never", -1)
	m := mustOpen(t, opt)
	pushAll(t, m, durStream(7, 40, 3, 1))
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	badWin := opt
	badWin.Window = 128
	if _, err := pskyline.Open(badWin); err == nil || !strings.Contains(err.Error(), "window") {
		t.Fatalf("window mismatch: err = %v", err)
	}
	badDims := opt
	badDims.Dims = 2
	if _, err := pskyline.Open(badDims); err == nil || !strings.Contains(err.Error(), "dimensions") {
		t.Fatalf("dims mismatch: err = %v", err)
	}

	m2 := mustOpen(t, opt) // matching options still open fine
	if got := m2.Stats().Processed; got != 40 {
		t.Fatalf("recovered position %d, want 40", got)
	}
	m2.Close()
}

// TestAsyncDurableCrash routes a mixed Push/PushBatch stream through the
// bounded async queue with durability on, crashes after a drain, and proves
// pure-replay recovery lands on the element-wise state (engine batch inserts
// are byte-identical regroupings, and the log is element-wise by
// construction).
func TestAsyncDurableCrash(t *testing.T) {
	dir := t.TempDir()
	opt := durOpt(dir, "never", -1)
	opt.AsyncQueue = 128
	m := mustOpen(t, opt)
	els := durStream(13, 500, 3, 1)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < len(els); {
		if r.Intn(2) == 0 {
			k := 1 + r.Intn(32)
			if i+k > len(els) {
				k = len(els) - i
			}
			if _, err := m.PushBatch(els[i : i+k]); err != nil {
				t.Fatal(err)
			}
			i += k
		} else {
			if _, err := m.Push(els[i]); err != nil {
				t.Fatal(err)
			}
			i++
		}
	}
	m.Drain()
	m.Crash()

	m2 := mustOpen(t, durOpt(dir, "never", -1))
	defer m2.Close()
	if got := m2.Stats().Processed; got != 500 {
		t.Fatalf("recovered position %d, want 500", got)
	}
	oracle := mustMonitor(t, pskyline.Options{Dims: 3, Window: 64, Thresholds: []float64{0.3, 0.6}})
	defer oracle.Close()
	pushAll(t, oracle, els)
	sameView(t, "async durable", oracle.View(), m2.View())
	if !bytes.Equal(snapshotBytes(t, oracle), snapshotBytes(t, m2)) {
		t.Fatal("async durable recovery diverged from element-wise oracle")
	}
}

// TestCheckpointGCBoundsLog: with checkpoints on, the log must stay near the
// window size instead of growing with the stream (the Theorem 5 trade-off:
// replay needs raw arrivals, but only back to min(checkpoint, horizon)), and
// exactly one checkpoint file survives each install.
func TestCheckpointGCBoundsLog(t *testing.T) {
	dir := t.TempDir()
	opt := pskyline.Options{
		Dims: 2, Window: 32, Thresholds: []float64{0.3},
		Durability: pskyline.Durability{
			Dir: dir, Fsync: "never", SegmentBytes: 1024, CheckpointEvery: 64,
		},
	}
	m := mustOpen(t, opt)
	els := durStream(17, 1500, 2, 1)
	pushAll(t, m, els)
	met := m.Metrics()
	if met.WAL == nil {
		t.Fatal("durable monitor reports no WAL metrics")
	}
	if met.WAL.Checkpoints == 0 || met.WAL.GCSegments == 0 {
		t.Fatalf("checkpoints=%d gcSegments=%d, want both > 0",
			met.WAL.Checkpoints, met.WAL.GCSegments)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	// ~19 records fit one 1KiB segment; the retained span is bounded by one
	// checkpoint interval plus the window, so well under a dozen segments.
	if len(segs) > 12 {
		t.Errorf("%d live segments for a window of 32 — GC is not keeping up", len(segs))
	}
	ckpts, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if len(ckpts) != 1 {
		t.Errorf("%d checkpoint files on disk, want 1", len(ckpts))
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := mustOpen(t, opt)
	defer m2.Close()
	if got := m2.Stats().Processed; got != 1500 {
		t.Fatalf("recovered position %d, want 1500", got)
	}
	full := mustMonitor(t, pskyline.Options{Dims: 2, Window: 32, Thresholds: []float64{0.3}})
	defer full.Close()
	pushAll(t, full, els)
	semanticSkyline(t, "gc-bounded recovery", full.Skyline(), m2.Skyline())
}
