package pskyline_test

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"

	"pskyline"
	"pskyline/internal/vfs"
	"pskyline/internal/wal"
)

// chaosOpt is the chaos suite's base configuration: fsync on every commit
// (so crash cuts are exactly the committed prefix), checkpoints off unless a
// test opts in, fast retry/reattach schedules, and the durability stack
// mounted on the fault-injecting filesystem.
func chaosOpt(dir, policy string, fi *vfs.Fault) pskyline.Options {
	opt := durOpt(dir, "always", -1)
	opt.Durability.Policy = policy
	opt.Durability.RetryMax = 6
	opt.Durability.RetryBase = 100 * time.Microsecond
	opt.Durability.RetryMaxDelay = time.Millisecond
	opt.Durability.ReattachEvery = 5 * time.Millisecond
	return pskyline.WithFS(opt, fi)
}

func cleanOracle(t *testing.T) *pskyline.Monitor {
	t.Helper()
	o := mustMonitor(t, pskyline.Options{Dims: 3, Window: 64, Thresholds: []float64{0.3, 0.6}})
	t.Cleanup(func() { o.Close() })
	return o
}

// TestChaosFailStop: under the default policy the first durability failure
// detaches the log atomically — the failing push reports an error wrapping
// wal.ErrDetached, the element is NOT applied (no partial apply), later
// pushes fail fast, and queries keep serving the accepted prefix. A reopen
// on the healed disk recovers exactly that prefix, byte-identical to an
// uninterrupted oracle that never saw the rejected elements.
func TestChaosFailStop(t *testing.T) {
	dir := t.TempDir()
	fi := vfs.NewFault(vfs.OS{}, 1)
	m := mustOpen(t, chaosOpt(dir, "failstop", fi))
	els := durStream(41, 200, 3, 1)
	pushAll(t, m, els[:50])

	fi.Inject(vfs.Rule{Op: vfs.OpWrite, Times: -1, Err: syscall.EIO})
	_, err := m.Push(els[50])
	if !errors.Is(err, wal.ErrDetached) {
		t.Fatalf("push after disk death: %v, want ErrDetached", err)
	}
	if m.WALState() != wal.StateDetached {
		t.Fatalf("state %v, want detached", m.WALState())
	}
	met := m.Metrics()
	if met.WAL.State != "detached" || met.WAL.LastFault == "" || met.WAL.WriteErrors == 0 {
		t.Fatalf("metrics don't surface the detach: %+v", met.WAL)
	}
	// Fail-fast, and no element past the failure was applied.
	if _, err2 := m.Push(els[51]); !errors.Is(err2, wal.ErrDetached) {
		t.Fatalf("second push: %v, want fast ErrDetached", err2)
	}
	if got := m.Stats().Processed; got != 50 {
		t.Fatalf("processed %d after detach, want exactly the accepted 50", got)
	}

	oracle := cleanOracle(t)
	pushAll(t, oracle, els[:50])
	sameView(t, "detached monitor still serves the accepted prefix", oracle.View(), m.View())

	m.Crash()
	fi.Clear()
	m2 := mustOpen(t, chaosOpt(dir, "failstop", fi))
	defer m2.Close()
	if got := m2.Stats().Processed; got != 50 {
		t.Fatalf("recovered position %d, want 50", got)
	}
	if m2.Recovery().CorruptSegments != 0 {
		t.Fatalf("fail-stop left corruption behind: %+v", m2.Recovery())
	}
	if !bytes.Equal(snapshotBytes(t, oracle), snapshotBytes(t, m2)) {
		t.Fatal("recovered state differs from the accepted-prefix oracle")
	}
}

// TestChaosRetryDifferential: under the retry policy a seeded schedule of
// transient faults — whole-write failures, torn writes, fsync failures —
// must be invisible: every push succeeds, the live state stays byte-identical
// to a no-fault oracle, and a kill + reopen replays the complete log back to
// the same bytes.
func TestChaosRetryDifferential(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			dir := t.TempDir()
			fi := vfs.NewFault(vfs.OS{}, int64(100+trial))
			// The disk misbehaves constantly but transiently: each write or
			// fsync fails with 10-15% probability, some writes tearing
			// mid-record. The retry budget (6) makes a permanent-looking run
			// of failures astronomically unlikely — and the seed makes the
			// whole schedule reproducible.
			fi.Inject(vfs.Rule{Op: vfs.OpWrite, Times: -1, Prob: 0.10, Err: syscall.EIO, Partial: 5})
			fi.Inject(vfs.Rule{Op: vfs.OpWrite, Times: -1, Prob: 0.05, Err: syscall.ENOSPC})
			fi.Inject(vfs.Rule{Op: vfs.OpSync, Times: -1, Prob: 0.15, Err: syscall.EIO})

			m := mustOpen(t, chaosOpt(dir, "retry", fi))
			els := durStream(int64(61+trial), 400, 3, 1)
			pushAll(t, m, els)
			if m.WALState() != wal.StateHealthy {
				t.Fatalf("state %v after surviving the storm, want healthy", m.WALState())
			}
			met := m.Metrics()
			if fi.ErrorsTotal() == 0 || met.WAL.Retries == 0 {
				t.Fatalf("storm never hit: %d injected, %d retries", fi.ErrorsTotal(), met.WAL.Retries)
			}
			oracle := cleanOracle(t)
			pushAll(t, oracle, els)
			sameView(t, "live under fault storm", oracle.View(), m.View())
			if !bytes.Equal(snapshotBytes(t, oracle), snapshotBytes(t, m)) {
				t.Fatal("live state diverged from no-fault oracle")
			}

			// Kill and recover on the healed disk: the log must hold every
			// element exactly once (no duplicates from retried writes, no torn
			// garbage from the repairs).
			m.Crash()
			fi.Clear()
			m2 := mustOpen(t, chaosOpt(dir, "retry", fi))
			defer m2.Close()
			rec := m2.Recovery()
			if rec.Replayed != 400 || rec.CorruptSegments != 0 {
				t.Fatalf("recovery %+v, want clean replay of all 400", rec)
			}
			if !bytes.Equal(snapshotBytes(t, oracle), snapshotBytes(t, m2)) {
				t.Fatal("recovered state diverged from no-fault oracle")
			}
		})
	}
}

// TestChaosShedReattach: under the shed policy a dead disk costs durability,
// never availability — pushes keep succeeding and the live skyline stays
// byte-identical to a no-fault oracle while the monitor sits degraded. Once
// the disk heals, the background reattacher installs a fresh checkpoint and
// restores durability without help; a kill + reopen afterwards recovers the
// full window (checkpoint + replayed tail) to the same semantic skyline.
func TestChaosShedReattach(t *testing.T) {
	dir := t.TempDir()
	fi := vfs.NewFault(vfs.OS{}, 1)
	m := mustOpen(t, chaosOpt(dir, "shed", fi))
	els := durStream(43, 400, 3, 1)
	pushAll(t, m, els[:100])

	fi.Inject(vfs.Rule{Op: vfs.OpWrite, Times: -1, Err: syscall.EIO})
	pushAll(t, m, els[100:300]) // every push must succeed — durability is shed
	if m.WALState() != wal.StateDegraded {
		t.Fatalf("state %v, want degraded", m.WALState())
	}
	met := m.Metrics()
	if met.WAL.State != "degraded" || met.WAL.DroppedRecords == 0 || met.WAL.DroppedBytes == 0 {
		t.Fatalf("degradation not surfaced: %+v", met.WAL)
	}
	oracle := cleanOracle(t)
	pushAll(t, oracle, els[:300])
	sameView(t, "degraded monitor serves at full fidelity", oracle.View(), m.View())
	if !bytes.Equal(snapshotBytes(t, oracle), snapshotBytes(t, m)) {
		t.Fatal("degraded state diverged from no-fault oracle")
	}

	// Disk heals; the reattacher must recover on its own.
	fi.Clear()
	deadline := time.Now().Add(10 * time.Second)
	for m.WALState() != wal.StateHealthy {
		if time.Now().After(deadline) {
			t.Fatalf("reattacher never recovered: state %v", m.WALState())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := m.Metrics().WAL.Reattaches; got != 1 {
		t.Fatalf("reattaches %d, want 1", got)
	}

	// Durability is genuinely back: new pushes are logged, and a kill +
	// reopen restores checkpoint(300) + the logged tail.
	pushAll(t, m, els[300:])
	m.Crash()
	m2 := mustOpen(t, chaosOpt(dir, "shed", fi))
	defer m2.Close()
	rec := m2.Recovery()
	if rec.CheckpointSeq != 300 || rec.Replayed != 100 {
		t.Fatalf("recovery %+v, want checkpoint at 300 + 100 replayed", rec)
	}
	if got := m2.Stats().Processed; got != 400 {
		t.Fatalf("recovered position %d, want 400", got)
	}
	pushAll(t, oracle, els[300:])
	semanticSkyline(t, "post-reattach kill-recover", oracle.Skyline(), m2.Skyline())
}

// TestChaosShedStaysDegradedWhileSick: while the disk is still failing, the
// reattacher's attempts fail harmlessly — the monitor stays degraded and
// available, and checkpoint failures are counted, not fatal.
func TestChaosShedStaysDegradedWhileSick(t *testing.T) {
	dir := t.TempDir()
	fi := vfs.NewFault(vfs.OS{}, 1)
	m := mustOpen(t, chaosOpt(dir, "shed", fi))
	defer m.Close()
	els := durStream(47, 120, 3, 1)
	pushAll(t, m, els[:40])

	fi.Inject(vfs.Rule{Op: vfs.OpWrite, Times: -1, Err: syscall.EIO})
	pushAll(t, m, els[40:])
	if m.WALState() != wal.StateDegraded {
		t.Fatalf("state %v, want degraded", m.WALState())
	}
	// Give the reattacher several cycles against the still-dead disk.
	time.Sleep(50 * time.Millisecond)
	if m.WALState() != wal.StateDegraded {
		t.Fatalf("state %v, want still degraded while the disk is sick", m.WALState())
	}
	if got := m.Stats().Processed; got != 120 {
		t.Fatalf("processed %d, want all 120 despite the dead disk", got)
	}
}

// TestChaosNoGoroutineLeaks cycles monitors through the full degradation
// lifecycle — async queue, shed, reattach attempts, close — and requires the
// goroutine count to return to its baseline.
func TestChaosNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		dir := t.TempDir()
		fi := vfs.NewFault(vfs.OS{}, int64(i+1))
		opt := chaosOpt(dir, "shed", fi)
		opt.AsyncQueue = 64
		m := mustOpen(t, opt)
		els := durStream(int64(71+i), 200, 3, 1)
		pushAll(t, m, els[:100])
		fi.Inject(vfs.Rule{Op: vfs.OpWrite, Times: -1, Err: syscall.EIO})
		pushAll(t, m, els[100:])
		m.Drain()
		if err := m.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now, %d at start", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// gatedMonitor builds an async monitor whose consumer can be frozen: the
// first element entering the skyline parks the ingestion goroutine on the
// gate, so tests can fill the queue deterministically. Closing the gate
// releases ingestion permanently.
func gatedMonitor(t *testing.T, capacity int, pol pskyline.OverloadPolicy) (*pskyline.Monitor, chan struct{}) {
	t.Helper()
	gate := make(chan struct{})
	m := mustMonitor(t, pskyline.Options{
		Dims: 2, Window: 1024, Thresholds: []float64{0.3},
		AsyncQueue: capacity, AsyncPolicy: pol,
		OnEnter: func(pskyline.SkyPoint) { <-gate },
	})
	return m, gate
}

func overloadStream(n int) []pskyline.Element {
	els := make([]pskyline.Element, n)
	for i := range els {
		// Anti-correlated diagonal: every element enters the skyline, so
		// each ingested element touches the gate exactly once.
		els[i] = pskyline.Element{Point: []float64{float64(i), float64(n - i)}, Prob: 0.9, TS: int64(i + 1)}
	}
	return els
}

// TestOverloadDropNewest: with the consumer frozen, pushes beyond the queue
// capacity are rejected with ErrOverloaded, consume no sequence number, and
// are counted — and once the consumer resumes, exactly the accepted prefix
// is ingested under consecutive sequence numbers.
func TestOverloadDropNewest(t *testing.T) {
	const capacity = 4
	m, gate := gatedMonitor(t, capacity, pskyline.DropNewest)
	defer func() { m.Close() }()
	els := overloadStream(600)

	accepted, rejected := 0, 0
	var lastSeq uint64
	for i := range els {
		seq, err := m.Push(els[i])
		if err != nil {
			if !errors.Is(err, pskyline.ErrOverloaded) {
				t.Fatalf("push %d: %v, want ErrOverloaded", i, err)
			}
			rejected++
			if rejected >= 2*capacity {
				break
			}
			continue
		}
		if accepted > 0 && seq != lastSeq+1 {
			t.Fatalf("accepted seqs not consecutive: %d after %d — a rejected push consumed a number", seq, lastSeq)
		}
		lastSeq = seq
		accepted++
	}
	if rejected == 0 {
		t.Fatal("queue never overloaded despite a frozen consumer")
	}
	met := m.Metrics()
	if met.QueueCapacity != capacity || met.QueueDropped != uint64(rejected) {
		t.Fatalf("queue metrics cap=%d dropped=%d, want cap=%d dropped=%d",
			met.QueueCapacity, met.QueueDropped, capacity, rejected)
	}

	close(gate)
	m.Drain()
	if got := m.Stats().Processed; got != uint64(accepted) {
		t.Fatalf("processed %d, want the %d accepted pushes", got, accepted)
	}
}

// TestOverloadDropOldest: pushes never fail and never block — the queue
// evicts its oldest waiting element instead — and the drop counter accounts
// exactly for the elements that were accepted but never ingested.
func TestOverloadDropOldest(t *testing.T) {
	const capacity = 4
	m, gate := gatedMonitor(t, capacity, pskyline.DropOldest)
	defer func() { m.Close() }()
	els := overloadStream(300)

	for i := range els {
		if _, err := m.Push(els[i]); err != nil {
			t.Fatalf("push %d failed under DropOldest: %v", i, err)
		}
	}
	close(gate)
	m.Drain()
	met := m.Metrics()
	if met.QueueDropped == 0 {
		t.Fatal("nothing dropped despite a frozen consumer and a tiny queue")
	}
	if got := m.Stats().Processed; got+met.QueueDropped != uint64(len(els)) {
		t.Fatalf("processed %d + dropped %d != %d pushed", got, met.QueueDropped, len(els))
	}
	// Recency wins: the newest element must have survived the evictions.
	stats := m.Stats()
	if stats.Processed == 0 {
		t.Fatal("consumer ingested nothing")
	}
}

// TestOverloadBatchDropNewest: a batch hitting a full queue keeps its
// accepted prefix (with its sequence numbers) and reports the dropped suffix
// through ErrOverloaded.
func TestOverloadBatchDropNewest(t *testing.T) {
	const capacity = 4
	m, gate := gatedMonitor(t, capacity, pskyline.DropNewest)
	defer func() { m.Close() }()
	els := overloadStream(200)

	var batchErr error
	pushed := 0
	for pushed < len(els) {
		k := 8
		if pushed+k > len(els) {
			k = len(els) - pushed
		}
		_, err := m.PushBatch(els[pushed : pushed+k])
		pushed += k
		if err != nil {
			batchErr = err
			break
		}
	}
	if batchErr == nil {
		t.Fatal("batches never overloaded despite a frozen consumer")
	}
	if !errors.Is(batchErr, pskyline.ErrOverloaded) {
		t.Fatalf("batch error %v, want ErrOverloaded", batchErr)
	}
	if m.Metrics().QueueDropped == 0 {
		t.Fatal("batch drops not counted")
	}
	close(gate)
	m.Drain()
}

// TestOverloadBlockDefault: the default policy never drops — a push into a
// full queue waits for the consumer and every element is ingested.
func TestOverloadBlockDefault(t *testing.T) {
	m, gate := gatedMonitor(t, 2, pskyline.Block)
	defer func() { m.Close() }()
	els := overloadStream(50)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range els {
			if _, err := m.Push(els[i]); err != nil {
				t.Errorf("push %d: %v", i, err)
				return
			}
		}
	}()
	// The producer must be blocked, not erroring: give it a moment, then
	// open the gate and require full ingestion.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	m.Drain()
	if got := m.Stats().Processed; got != uint64(len(els)) {
		t.Fatalf("processed %d, want all %d", got, len(els))
	}
	if got := m.Metrics().QueueDropped; got != 0 {
		t.Fatalf("block policy dropped %d elements", got)
	}
}

func TestParseOverloadPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want pskyline.OverloadPolicy
	}{
		{"", pskyline.Block}, {"block", pskyline.Block},
		{"drop-newest", pskyline.DropNewest}, {"DropNewest", pskyline.DropNewest},
		{"drop-oldest", pskyline.DropOldest}, {"dropoldest", pskyline.DropOldest},
	} {
		got, err := pskyline.ParseOverloadPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseOverloadPolicy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := pskyline.ParseOverloadPolicy("spill"); err == nil {
		t.Fatal("accepted garbage policy")
	}
	if _, err := pskyline.NewMonitor(pskyline.Options{
		Dims: 2, Window: 8, Thresholds: []float64{0.3},
		AsyncQueue: 4, AsyncPolicy: pskyline.OverloadPolicy(99),
	}); err == nil {
		t.Fatal("accepted out-of-range AsyncPolicy")
	}
}
