#!/usr/bin/env bash
# Chaos smoke test: ingest under the WAL with a seeded fault schedule on the
# durability filesystem (torn writes, whole-write and fsync failures) and the
# retry policy absorbing it, kill -9 the process mid-stream, restart on the
# same directory with the second half, and assert the final skyline is
# identical to an uninterrupted no-fault run over the whole stream. Run from
# the repo root (`make chaos-smoke`).
set -euo pipefail

GO=${GO:-go}
N=${N:-9000}
CUT=${CUT:-6000}
WINDOW=${WINDOW:-1500}
# Seeded transient-fault schedule: every write fails with 8% probability
# (tearing 5 bytes in), every fsync with 10%. The retry policy must make all
# of it invisible.
FAULTS=${FAULTS:-'write:p=0.08:times=-1:partial=5;sync:p=0.10:times=-1'}
SEED=${SEED:-42}
tmp=$(mktemp -d)
pid=
trap 'exec 9>&- 2>/dev/null || true; kill -9 "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

"$GO" build -o "$tmp/pskyline" ./cmd/pskyline
"$GO" run ./cmd/datagen -dims 2 -n "$N" -seed 7 > "$tmp/stream.csv"

# Uninterrupted oracle: whole stream, no durability, no faults.
"$tmp/pskyline" -dims 2 -window "$WINDOW" -q 0.3 -snapshot "$N" \
    < "$tmp/stream.csv" > "$tmp/oracle.log"

# Phase 1: first half through a FIFO with the fault schedule active, fsync
# always and the retry policy. The snapshot print proves all $CUT elements
# were applied despite the storm; then the kill lands mid-ingest.
mkfifo "$tmp/pipe"
"$tmp/pskyline" -dims 2 -window "$WINDOW" -q 0.3 -snapshot "$CUT" \
    -wal "$tmp/wal" -wal-fsync always -wal-policy retry \
    -wal-fault "$FAULTS" -wal-fault-seed "$SEED" \
    < "$tmp/pipe" > "$tmp/chaos.log" 2> "$tmp/chaos.err" &
pid=$!
exec 9> "$tmp/pipe"
head -n "$CUT" "$tmp/stream.csv" >&9
for _ in $(seq 1 600); do
    grep -q "^@$CUT skyline" "$tmp/chaos.log" 2>/dev/null && break
    kill -0 "$pid" 2>/dev/null || { echo "phase 1 exited early"; cat "$tmp/chaos.err"; exit 1; }
    sleep 0.1
done
grep -q "^@$CUT skyline" "$tmp/chaos.log" \
    || { echo "phase 1 never reached element $CUT"; cat "$tmp/chaos.err"; exit 1; }
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=
exec 9>&-

# Phase 2: restart on the same WAL directory with the disk healed. Recovery
# must replay the complete committed first half — the fault storm and its
# repairs must have left a clean log.
tail -n +"$((CUT + 1))" "$tmp/stream.csv" | \
    "$tmp/pskyline" -dims 2 -window "$WINDOW" -q 0.3 -snapshot "$((N - CUT))" \
    -wal "$tmp/wal" -wal-fsync always -summary \
    > "$tmp/recover.log" 2> "$tmp/recover.err"

grep -q "pskyline: recovered from" "$tmp/recover.err" \
    || { echo "restart did not report recovery"; cat "$tmp/recover.err"; exit 1; }
grep -q " $CUT replayed records" "$tmp/recover.err" \
    || { echo "expected $CUT replayed records"; cat "$tmp/recover.err"; exit 1; }

# The skyline at stream position N must be byte-identical in both runs.
grep -E "^@$N skyline|^  seq=" "$tmp/oracle.log"  > "$tmp/oracle.sky"
grep -E "^@$N skyline|^  seq=" "$tmp/recover.log" > "$tmp/recover.sky"
[ -s "$tmp/oracle.sky" ] || { echo "oracle produced no skyline snapshot"; exit 1; }
if ! cmp -s "$tmp/oracle.sky" "$tmp/recover.sky"; then
    echo "SKYLINE DIVERGED after chaos + crash recovery:"
    diff "$tmp/oracle.sky" "$tmp/recover.sky" | head -20
    exit 1
fi

# Phase 3: shed policy against a disk whose segment writes fail forever.
# Ingestion must survive to the end with records counted as dropped, and the
# summary must surface the degradation. (The exact final state is timing-
# dependent — the background reattacher flips degraded->healthy until the
# next segment write fails again — so assert on the monotonic drop counter.)
"$tmp/pskyline" -dims 2 -window "$WINDOW" -q 0.3 -summary \
    -wal "$tmp/shedwal" -wal-fsync always -wal-policy shed \
    -wal-fault 'write:path=.seg:times=-1' -wal-fault-seed "$SEED" \
    < "$tmp/stream.csv" > "$tmp/shed.log" 2> "$tmp/shed.err" \
    || { echo "shed run failed"; cat "$tmp/shed.err"; exit 1; }
grep -q "processed $N elements" "$tmp/shed.log" \
    || { echo "shed run did not process the full stream"; cat "$tmp/shed.log"; exit 1; }
grep -Eq "wal: state=(degraded|healthy|retrying)" "$tmp/shed.log" \
    || { echo "shed summary missing wal state"; cat "$tmp/shed.log"; exit 1; }
grep -Eq "dropped_records=[1-9]" "$tmp/shed.log" \
    || { echo "shed run dropped no records despite dead segment writes"; cat "$tmp/shed.log"; exit 1; }
grep -Eq "write_errors=[1-9]" "$tmp/shed.log" \
    || { echo "shed summary shows no write errors"; cat "$tmp/shed.log"; exit 1; }

echo "chaos smoke OK: retry policy absorbed the seeded fault storm (kill -9 at $CUT/$N, skyline matches), shed policy kept serving on a dead disk"
