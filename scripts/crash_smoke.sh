#!/usr/bin/env bash
# Crash-recovery smoke test: ingest the first half of a stream under the WAL,
# kill -9 the process mid-stream, restart on the same directory with the
# second half, and assert the final skyline is identical to an uninterrupted
# run over the whole stream. Run from the repo root (`make crash-smoke`).
set -euo pipefail

GO=${GO:-go}
N=${N:-9000}
CUT=${CUT:-6000}
WINDOW=${WINDOW:-1500}
tmp=$(mktemp -d)
pid=
trap 'exec 9>&- 2>/dev/null || true; kill -9 "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

"$GO" build -o "$tmp/pskyline" ./cmd/pskyline
"$GO" run ./cmd/datagen -dims 2 -n "$N" -seed 7 > "$tmp/stream.csv"

# Uninterrupted oracle: one process sees the whole stream, no durability.
"$tmp/pskyline" -dims 2 -window "$WINDOW" -q 0.3 -snapshot "$N" \
    < "$tmp/stream.csv" > "$tmp/oracle.log"

# Phase 1: feed the first half through a FIFO held open by this script, so
# the process is still mid-ingest (stdin open, waiting for more) when the
# kill lands. The snapshot print tells us all $CUT elements were applied.
mkfifo "$tmp/pipe"
"$tmp/pskyline" -dims 2 -window "$WINDOW" -q 0.3 -snapshot "$CUT" \
    -wal "$tmp/wal" -wal-fsync always \
    < "$tmp/pipe" > "$tmp/crash.log" 2> "$tmp/crash.err" &
pid=$!
exec 9> "$tmp/pipe"
head -n "$CUT" "$tmp/stream.csv" >&9
for _ in $(seq 1 300); do
    grep -q "^@$CUT skyline" "$tmp/crash.log" 2>/dev/null && break
    kill -0 "$pid" 2>/dev/null || { echo "phase 1 exited early"; cat "$tmp/crash.err"; exit 1; }
    sleep 0.1
done
grep -q "^@$CUT skyline" "$tmp/crash.log" \
    || { echo "phase 1 never reached element $CUT"; cat "$tmp/crash.err"; exit 1; }
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=
exec 9>&-

# Phase 2: restart on the same WAL directory; recovery must replay the first
# half before the second half streams in.
tail -n +"$((CUT + 1))" "$tmp/stream.csv" | \
    "$tmp/pskyline" -dims 2 -window "$WINDOW" -q 0.3 -snapshot "$((N - CUT))" \
    -wal "$tmp/wal" -wal-fsync always > "$tmp/recover.log" 2> "$tmp/recover.err"

grep -q "pskyline: recovered from" "$tmp/recover.err" \
    || { echo "restart did not report recovery"; cat "$tmp/recover.err"; exit 1; }
grep -q " $CUT replayed records" "$tmp/recover.err" \
    || { echo "expected $CUT replayed records"; cat "$tmp/recover.err"; exit 1; }

# The skyline at stream position N must be identical in both runs.
grep -E "^@$N skyline|^  seq=" "$tmp/oracle.log"  > "$tmp/oracle.sky"
grep -E "^@$N skyline|^  seq=" "$tmp/recover.log" > "$tmp/recover.sky"
[ -s "$tmp/oracle.sky" ] || { echo "oracle produced no skyline snapshot"; exit 1; }
if ! cmp -s "$tmp/oracle.sky" "$tmp/recover.sky"; then
    echo "SKYLINE DIVERGED after crash recovery:"
    diff "$tmp/oracle.sky" "$tmp/recover.sky" | head -20
    exit 1
fi
echo "crash smoke OK: kill -9 at $CUT/$N, recovery replayed the log and the final skyline matches the uninterrupted run"
