#!/usr/bin/env bash
# Semi-sync replication smoke test: a durable primary replicates to one
# follower with -repl-semisync-k 1, while a -repl-fault schedule delays
# every replication write past -repl-ack-wait — a deterministic slow-link
# partition. The drill asserts the full degradation cycle from the outside,
# through /metrics:
#
#   1. the stream upgrades to semisync once the follower catches up,
#   2. a push under the partition times out its quorum wait and degrades
#      the stream without stalling ingestion,
#   3. the delayed acks still land, so the stream re-upgrades on its own,
#   4. after a kill -9 of the primary, the promoted follower holds at least
#      every quorum-acked record (scraped right before the kill) — the loss
#      bound is the un-acked suffix only,
#   5. feeding the promoted node the tail it missed reproduces, byte for
#      byte, the skyline of an uninterrupted single-process oracle.
#
# Run from the repo root (`make semisync-smoke`).
set -euo pipefail

GO=${GO:-go}
N=${N:-6000}
CUT=${CUT:-4000}
WINDOW=${WINDOW:-1000}
tmp=$(mktemp -d)
ppid=
rpid=
opid=
trap 'exec 9>&- 2>/dev/null || true
      kill -9 "$ppid" "$rpid" "$opid" 2>/dev/null || true
      rm -rf "$tmp"' EXIT

"$GO" build -o "$tmp/pskyline" ./cmd/pskyline
"$GO" run ./cmd/datagen -dims 2 -n "$N" -seed 11 > "$tmp/stream.csv"

# poll CMD... : retry a command for up to 60s (delayed replication writes
# make convergence slower than in the plain repl smoke).
poll() {
    for _ in $(seq 1 600); do
        "$@" 2>/dev/null && return 0
        sleep 0.1
    done
    return 1
}

# addr_of FILE MARKER: extract the http://host:port a process announced.
addr_of() {
    grep -o "$2 http://[0-9.:]*" "$1" | head -n1 | awk '{print $NF}'
}

# metric NAME: scrape one gauge/counter value from the primary's /metrics.
metric() {
    curl -fsS "$PHTTP/metrics" | awk -v m="$1" '$1 == m {print $2; exit}'
}

# Uninterrupted oracle: one process, no replication, no faults.
"$tmp/pskyline" -dims 2 -window "$WINDOW" -q 0.3 -summary \
    -http 127.0.0.1:0 \
    < "$tmp/stream.csv" > "$tmp/oracle.log" 2> "$tmp/oracle.err" &
opid=$!
poll grep -q "serving on http://" "$tmp/oracle.err" \
    || { echo "oracle never served"; cat "$tmp/oracle.err"; exit 1; }
ORACLE=$(addr_of "$tmp/oracle.err" "serving on")
oracle_done() {
    curl -fsS "$ORACLE/skyline" | grep -q "\"processed\":$N"
}
poll oracle_done \
    || { echo "oracle never ingested $N elements"; exit 1; }
curl -fsS "$ORACLE/skyline" > "$tmp/oracle.json"
kill "$opid" && wait "$opid" 2>/dev/null || true
opid=

# Primary: durable, semi-sync (k=1), fed through a FIFO held open by this
# script. The fault schedule delays every replication write by 600ms —
# twice -repl-ack-wait — so any push made while the stream is semisync must
# time out its quorum wait and degrade; the delayed frame still lands and
# its ack re-upgrades the stream.
mkfifo "$tmp/pipe"
"$tmp/pskyline" -dims 2 -window "$WINDOW" -q 0.3 -summary -batch 64 \
    -wal "$tmp/wal-p" -wal-fsync always \
    -replicate-listen 127.0.0.1:0 -http 127.0.0.1:0 \
    -repl-semisync-k 1 -repl-ack-wait 300ms \
    -repl-fault "write:times=-1:delay=600ms" -repl-fault-seed 7 \
    < "$tmp/pipe" > "$tmp/primary.log" 2> "$tmp/primary.err" &
ppid=$!
exec 9> "$tmp/pipe"
poll grep -q "replicating on" "$tmp/primary.err" \
    || { echo "primary never announced its replication listener"; cat "$tmp/primary.err"; exit 1; }
grep -q "semi-sync k=1" "$tmp/primary.err" \
    || { echo "primary did not announce semi-sync mode"; cat "$tmp/primary.err"; exit 1; }
REPL=$(grep -o "replicating on [0-9.:]*" "$tmp/primary.err" | head -n1 | awk '{print $NF}')
poll grep -q "serving on http://" "$tmp/primary.err" \
    || { echo "primary never served HTTP"; cat "$tmp/primary.err"; exit 1; }
PHTTP=$(addr_of "$tmp/primary.err" "serving on")

# Replica: follows the primary into its own WAL directory, serves HTTP.
"$tmp/pskyline" -dims 2 -window "$WINDOW" -q 0.3 \
    -replica-of "$REPL" -wal "$tmp/wal-r" -http 127.0.0.1:0 \
    > "$tmp/replica.log" 2> "$tmp/replica.err" &
rpid=$!
poll grep -q "serving on http://" "$tmp/replica.err" \
    || { echo "replica never served"; cat "$tmp/replica.err"; exit 1; }
RHTTP=$(addr_of "$tmp/replica.err" "serving on")

# Phase 1: feed a prefix and wait for the upgrade to semisync — the
# follower catches up over the slow link and its (delayed) acks flip the
# state machine on.
PREFIX=500
head -n "$PREFIX" "$tmp/stream.csv" >&9
in_semisync() { [ "$(metric pskyline_repl_sync_state)" -eq 2 ]; }
poll in_semisync \
    || { echo "stream never upgraded to semisync:"
         curl -fsS "$PHTTP/metrics" | grep pskyline_repl_ || true
         cat "$tmp/primary.err"; exit 1; }

# Phase 2: feed the rest while the stream is semisync. The next quorum wait
# must time out (the frame write is delayed past -repl-ack-wait) and degrade
# the stream — without stalling ingestion — and the delayed acks must then
# re-upgrade it. Require the whole cycle in the counters: at least one
# timeout-degradation, a re-upgrade on top of the initial one, semisync as
# the settled state, and a quorum watermark that advanced.
sed -n "$((PREFIX + 1)),${CUT}p" "$tmp/stream.csv" >&9
cycle_done() {
    [ "$(metric pskyline_repl_semisync_wait_timeouts_total)" -ge 1 ] &&
    [ "$(metric pskyline_repl_semisync_degrades_total)" -ge 1 ] &&
    [ "$(metric pskyline_repl_semisync_upgrades_total)" -ge 2 ] &&
    [ "$(metric pskyline_repl_sync_state)" -eq 2 ] &&
    [ "$(metric pskyline_repl_quorum_acked_seq)" -gt 0 ]
}
poll cycle_done \
    || { echo "degrade/heal/upgrade cycle never completed:"
         curl -fsS "$PHTTP/metrics" | grep pskyline_repl_ || true
         cat "$tmp/primary.err"; exit 1; }
curl -fsS "$PHTTP/healthz" | grep -q "\"sync_state\":\"semisync\"" \
    || { echo "/healthz does not surface the semi-sync state"; curl -fsS "$PHTTP/healthz"; exit 1; }

# The loss bound: scrape the quorum-acked watermark, then kill the primary
# hard. Whatever the primary acked must survive the failover.
ACKED=$(metric pskyline_repl_quorum_acked_seq)
kill -9 "$ppid"
wait "$ppid" 2>/dev/null || true
ppid=
exec 9>&-

"$tmp/pskyline" -promote "$RHTTP" > "$tmp/promote.out"
grep -q "role=primary epoch=1" "$tmp/promote.out" \
    || { echo "unexpected promote ack:"; cat "$tmp/promote.out"; exit 1; }
P=$(grep -o "seq=[0-9]*" "$tmp/promote.out" | head -n1 | cut -d= -f2)
[ "$P" -ge "$ACKED" ] \
    || { echo "ACKED RECORD LOST: promoted at seq $P < quorum-acked $ACKED"; exit 1; }
[ "$P" -le "$CUT" ] \
    || { echo "promoted seq $P exceeds the $CUT elements ever fed"; exit 1; }

# Feed the promoted node exactly the tail it is missing, then byte-compare
# its skyline against the uninterrupted oracle.
tail -n +"$((P + 1))" "$tmp/stream.csv" \
    | awk -F, '{printf "{\"point\":[%s,%s],\"prob\":%s,\"ts\":%s}\n",$1,$2,$3,$4}' \
    | curl -fsS -X POST --data-binary @- "$RHTTP/push?drain=1" > "$tmp/push.out"
grep -q "\"accepted\":$((N - P))" "$tmp/push.out" \
    || { echo "promoted node rejected the tail:"; cat "$tmp/push.out"; exit 1; }
curl -fsS "$RHTTP/skyline" > "$tmp/promoted.json"
if ! cmp -s "$tmp/oracle.json" "$tmp/promoted.json"; then
    echo "SKYLINE DIVERGED after semi-sync failover:"
    diff <(tr ',' '\n' < "$tmp/oracle.json") <(tr ',' '\n' < "$tmp/promoted.json") | head -20
    exit 1
fi

kill "$rpid"
wait "$rpid" 2>/dev/null || true
rpid=
grep -q "checkpoint installed" "$tmp/replica.err" \
    || { echo "promoted node did not checkpoint at exit"; cat "$tmp/replica.err"; exit 1; }

echo "semisync smoke OK: degraded under the injected write latency and re-upgraded, primary killed at seq $P (quorum-acked $ACKED preserved), failover skyline matches the oracle"
