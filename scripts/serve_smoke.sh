#!/usr/bin/env bash
# Serve-mode smoke test: start `pskyline -http` on a real port, feed it a
# stream, and assert that /metrics and /healthz respond with the expected
# series while the process lingers after EOF. Run from the repo root
# (`make serve-smoke`).
set -euo pipefail

GO=${GO:-go}
ADDR=${ADDR:-127.0.0.1:18080}
N=${N:-5000}
tmp=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

"$GO" build -o "$tmp/pskyline" ./cmd/pskyline
"$GO" run ./cmd/datagen -dims 2 -n "$N" -seed 42 > "$tmp/stream.csv"

"$tmp/pskyline" -dims 2 -window 1000 -q 0.3 -http "$ADDR" -summary \
    < "$tmp/stream.csv" > "$tmp/out.log" 2> "$tmp/err.log" &
pid=$!

# Wait for the stream to drain (the process keeps serving afterwards).
for _ in $(seq 1 100); do
    grep -q "stream done" "$tmp/err.log" 2>/dev/null && break
    kill -0 "$pid" 2>/dev/null || { echo "pskyline exited early"; cat "$tmp/err.log"; exit 1; }
    sleep 0.1
done
grep -q "stream done" "$tmp/err.log" || { echo "stream never drained"; cat "$tmp/err.log"; exit 1; }

fetch() { curl -fsS --max-time 5 "http://$ADDR$1"; }

metrics=$(fetch /metrics)
for series in \
    "pskyline_pushes_total $N" \
    "pskyline_stage_seconds_bucket{stage=\"probe\",le=\"+Inf\"}" \
    "pskyline_stage_seconds_bucket{stage=\"expire\",le=\"+Inf\"}" \
    "pskyline_skyline_enters_total" \
    "pskyline_theory_skyline_bound" \
    "pskyline_window_fill 1000"; do
    echo "$metrics" | grep -qF "$series" \
        || { echo "MISSING series: $series"; echo "$metrics" | head -40; exit 1; }
done

health=$(fetch /healthz)
echo "$health" | grep -q '"status":"serving"' || { echo "BAD /healthz: $health"; exit 1; }
echo "$health" | grep -q "\"processed\":$N" || { echo "BAD /healthz: $health"; exit 1; }

fetch /debug/skyline | grep -q '"skyline":' || { echo "BAD /debug/skyline"; exit 1; }
fetch "/debug/pprof/goroutine?debug=1" | grep -q goroutine || { echo "BAD pprof"; exit 1; }

kill "$pid"
wait "$pid" 2>/dev/null || true
grep -q "stage probe" "$tmp/out.log" || { echo "summary missing stage latencies"; cat "$tmp/out.log"; exit 1; }
echo "serve smoke OK: $N elements, /metrics + /healthz + /debug/skyline + pprof all healthy"
