#!/usr/bin/env bash
# Multi-tenant smoke test: one `pskyline -streams` process hosts three
# independent streams (single-engine, 4-shard, async-queued), three
# concurrent clients POST the same NDJSON dataset to them, and the sharded
# stream's skyline must match the single-engine one — the merge-exactness
# guarantee, observed end to end over HTTP. Membership, points and input
# probabilities must agree exactly; Psky is allowed 1e-12 relative slack
# because the single engine maintains it incrementally while the shard merge
# recomputes it canonically (log-factor addition is not associative, so the
# last couple of ULPs can differ — see DESIGN.md §13). Run from the repo
# root (`make shard-smoke`).
set -euo pipefail

GO=${GO:-go}
ADDR=${ADDR:-127.0.0.1:18084}
N=${N:-4000}
tmp=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

"$GO" build -o "$tmp/pskyline" ./cmd/pskyline
"$GO" run ./cmd/datagen -dims 3 -n "$N" -seed 7 > "$tmp/stream.csv"
# CSV (x,y,z,prob,ts) -> the push endpoint's NDJSON wire form.
awk -F, '{printf "{\"point\":[%s,%s,%s],\"prob\":%s,\"ts\":%s}\n",$1,$2,$3,$4,$5}' \
    "$tmp/stream.csv" > "$tmp/stream.ndjson"

"$tmp/pskyline" -http "$ADDR" -streams \
    "single:dims=3,window=800,q=0.3;sharded:dims=3,window=800,q=0.3,shards=4;bursty:dims=3,window=800,q=0.5,async=256" \
    > "$tmp/out.log" 2> "$tmp/err.log" &
pid=$!

for _ in $(seq 1 100); do
    grep -q "hosting 3 streams" "$tmp/err.log" 2>/dev/null && break
    kill -0 "$pid" 2>/dev/null || { echo "pskyline exited early"; cat "$tmp/err.log"; exit 1; }
    sleep 0.1
done
grep -q "hosting 3 streams" "$tmp/err.log" || { echo "server never announced itself"; cat "$tmp/err.log"; exit 1; }

fetch() { curl -fsS --max-time 10 "http://$ADDR$1"; }
post() {
    curl -fsS --max-time 60 --data-binary @"$tmp/stream.ndjson" \
        "http://$ADDR/streams/$1/push?drain=1"
}

# Concurrent ingest: all three tenants at once, same dataset. Each POST body
# is decoded sequentially, so per-stream arrival order is deterministic even
# though the tenants race each other.
post single  > "$tmp/acc_single.json"  & p1=$!
post sharded > "$tmp/acc_sharded.json" & p2=$!
post bursty  > "$tmp/acc_bursty.json"  & p3=$!
wait "$p1" "$p2" "$p3"
for s in single sharded bursty; do
    grep -qF "\"accepted\":$N" "$tmp/acc_$s.json" \
        || { echo "stream $s did not accept $N elements"; cat "$tmp/acc_$s.json"; exit 1; }
done

# The 4-shard engine must produce the same skyline: identical seq set,
# identical points and probabilities, Psky within 1e-12.
fetch /streams/single/skyline  > "$tmp/sk_single.json"
fetch /streams/sharded/skyline > "$tmp/sk_sharded.json"
grep -qF "\"processed\":$N" "$tmp/sk_single.json" \
    || { echo "single stream lost elements"; cat "$tmp/sk_single.json"; exit 1; }
cat > "$tmp/skycmp.go" <<'GOEOF'
// Compares two /streams/{name}/skyline responses: processed counts and the
// skyline member sets (seq, point, prob) must be identical; psky must agree
// to 1e-12 relative.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

type resp struct {
	Processed uint64 `json:"processed"`
	Skyline   []struct {
		Seq   uint64    `json:"seq"`
		Point []float64 `json:"point"`
		Prob  float64   `json:"prob"`
		Psky  float64   `json:"psky"`
	} `json:"skyline"`
}

func load(path string) resp {
	raw, err := os.ReadFile(path)
	die(err)
	var r resp
	die(json.Unmarshal(raw, &r))
	sort.Slice(r.Skyline, func(i, j int) bool { return r.Skyline[i].Seq < r.Skyline[j].Seq })
	return r
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func main() {
	a, b := load(os.Args[1]), load(os.Args[2])
	if a.Processed != b.Processed || len(a.Skyline) != len(b.Skyline) {
		fmt.Fprintf(os.Stderr, "processed %d/%d, skyline size %d/%d\n",
			a.Processed, b.Processed, len(a.Skyline), len(b.Skyline))
		os.Exit(1)
	}
	for i := range a.Skyline {
		x, y := a.Skyline[i], b.Skyline[i]
		if x.Seq != y.Seq || x.Prob != y.Prob || fmt.Sprint(x.Point) != fmt.Sprint(y.Point) {
			fmt.Fprintf(os.Stderr, "member %d differs: %+v vs %+v\n", i, x, y)
			os.Exit(1)
		}
		if diff := math.Abs(x.Psky - y.Psky); diff > 1e-12*math.Max(x.Psky, 1e-300) {
			fmt.Fprintf(os.Stderr, "seq %d psky %v vs %v\n", x.Seq, x.Psky, y.Psky)
			os.Exit(1)
		}
	}
	fmt.Printf("skylines match: %d members over %d elements\n", len(a.Skyline), a.Processed)
}
GOEOF
"$GO" run "$tmp/skycmp.go" "$tmp/sk_single.json" "$tmp/sk_sharded.json" \
    || { echo "sharded skyline differs from single-engine skyline"; exit 1; }

# Restricted query on the sharded stream (q is a registered threshold).
fetch "/streams/sharded/skyline?q=0.3" | grep -q '"skyline":' \
    || { echo "BAD restricted query"; exit 1; }

# Tenant listing and health aggregate across all streams.
listing=$(fetch /streams)
for want in '"name":"single"' '"name":"sharded"' '"name":"bursty"' '"shards":4'; do
    echo "$listing" | grep -qF "$want" \
        || { echo "MISSING in /streams: $want"; echo "$listing"; exit 1; }
done
health=$(fetch /healthz)
echo "$health" | grep -q '"status":"serving"' || { echo "BAD /healthz: $health"; exit 1; }
echo "$health" | grep -qF "\"processed\":$N" || { echo "BAD /healthz: $health"; exit 1; }

# One exposition serves every tenant: series are labeled by stream, and the
# sharded stream fans out into per-shard series (labels sorted by key).
metrics=$(fetch /metrics)
for series in \
    'stream="single"' 'stream="bursty"' \
    'shard="0",stream="sharded"' 'shard="3",stream="sharded"' \
    "pskyline_pushes_total{stream=\"single\"} $N"; do
    echo "$metrics" | grep -qF "$series" \
        || { echo "MISSING series: $series"; echo "$metrics" | head -40; exit 1; }
done

kill "$pid"
wait "$pid" 2>/dev/null || true
echo "shard smoke OK: 3 tenants x $N elements, sharded skyline matches single-engine"
