#!/usr/bin/env bash
# Replication smoke test: a durable primary streams its WAL to a read-only
# replica, the primary is kill -9'd mid-ingest, the replica is promoted via
# the `pskyline -promote` client, the rest of the stream is pushed to the
# promoted node over HTTP, and its final skyline is byte-compared against an
# uninterrupted single-process oracle. Run from the repo root
# (`make repl-smoke`).
set -euo pipefail

GO=${GO:-go}
N=${N:-6000}
CUT=${CUT:-4000}
WINDOW=${WINDOW:-1000}
tmp=$(mktemp -d)
ppid=
rpid=
opid=
trap 'exec 9>&- 2>/dev/null || true
      kill -9 "$ppid" "$rpid" "$opid" 2>/dev/null || true
      rm -rf "$tmp"' EXIT

"$GO" build -o "$tmp/pskyline" ./cmd/pskyline
"$GO" run ./cmd/datagen -dims 2 -n "$N" -seed 11 > "$tmp/stream.csv"

# poll CMD... : retry a command for up to 30s.
poll() {
    for _ in $(seq 1 300); do
        "$@" 2>/dev/null && return 0
        sleep 0.1
    done
    return 1
}

# addr_of FILE MARKER: extract the http://host:port a process announced.
addr_of() {
    grep -o "$2 http://[0-9.:]*" "$1" | head -n1 | awk '{print $NF}'
}

# Uninterrupted oracle: one process, no faults, no failover. -http keeps it
# alive after EOF so its skyline can be fetched over the same JSON surface
# the promoted replica serves.
"$tmp/pskyline" -dims 2 -window "$WINDOW" -q 0.3 -summary \
    -http 127.0.0.1:0 \
    < "$tmp/stream.csv" > "$tmp/oracle.log" 2> "$tmp/oracle.err" &
opid=$!
poll grep -q "serving on http://" "$tmp/oracle.err" \
    || { echo "oracle never served"; cat "$tmp/oracle.err"; exit 1; }
ORACLE=$(addr_of "$tmp/oracle.err" "serving on")
oracle_done() {
    curl -fsS "$ORACLE/skyline" | grep -q "\"processed\":$N"
}
poll oracle_done \
    || { echo "oracle never ingested $N elements"; exit 1; }
curl -fsS "$ORACLE/skyline" > "$tmp/oracle.json"
kill "$opid" && wait "$opid" 2>/dev/null || true
opid=

# Primary: durable, replicating, fed through a FIFO held open by this script
# so it is still mid-ingest when the kill lands.
mkfifo "$tmp/pipe"
"$tmp/pskyline" -dims 2 -window "$WINDOW" -q 0.3 -snapshot "$CUT" \
    -wal "$tmp/wal-p" -wal-fsync always \
    -replicate-listen 127.0.0.1:0 \
    < "$tmp/pipe" > "$tmp/primary.log" 2> "$tmp/primary.err" &
ppid=$!
exec 9> "$tmp/pipe"
poll grep -q "replicating on" "$tmp/primary.err" \
    || { echo "primary never announced its replication listener"; cat "$tmp/primary.err"; exit 1; }
REPL=$(grep -o "replicating on [0-9.:]*" "$tmp/primary.err" | head -n1 | awk '{print $NF}')

# Replica: follows the primary into its own WAL directory, serves HTTP.
"$tmp/pskyline" -dims 2 -window "$WINDOW" -q 0.3 \
    -replica-of "$REPL" -wal "$tmp/wal-r" -http 127.0.0.1:0 \
    > "$tmp/replica.log" 2> "$tmp/replica.err" &
rpid=$!
poll grep -q "serving on http://" "$tmp/replica.err" \
    || { echo "replica never served"; cat "$tmp/replica.err"; exit 1; }
RHTTP=$(addr_of "$tmp/replica.err" "serving on")

# Feed the first $CUT elements, wait for the primary to apply them, then for
# the replica to report it has caught up to the same position.
head -n "$CUT" "$tmp/stream.csv" >&9
poll grep -q "^@$CUT skyline" "$tmp/primary.log" \
    || { echo "primary never reached element $CUT"; cat "$tmp/primary.err"; exit 1; }
caught_up() {
    curl -fsS "$RHTTP/healthz" | grep -q "\"processed\":$CUT.*\"role\":\"replica\""
}
poll caught_up \
    || { echo "replica never caught up to $CUT"; curl -fsS "$RHTTP/healthz" || true; cat "$tmp/replica.err"; exit 1; }

# The primary dies hard, mid-ingest.
kill -9 "$ppid"
wait "$ppid" 2>/dev/null || true
ppid=
exec 9>&-

# Promote the replica through the CLI client; it must flip to a writable
# primary with a bumped fencing epoch.
"$tmp/pskyline" -promote "$RHTTP" > "$tmp/promote.out"
grep -q "role=primary epoch=1" "$tmp/promote.out" \
    || { echo "unexpected promote ack:"; cat "$tmp/promote.out"; exit 1; }
curl -fsS "$RHTTP/healthz" | grep -q "\"role\":\"primary\"" \
    || { echo "promoted node still reports itself a replica"; exit 1; }

# Push the rest of the stream to the promoted node over HTTP (drained so the
# skyline below is fully visible), then byte-compare against the oracle.
tail -n +"$((CUT + 1))" "$tmp/stream.csv" \
    | awk -F, '{printf "{\"point\":[%s,%s],\"prob\":%s,\"ts\":%s}\n",$1,$2,$3,$4}' \
    | curl -fsS -X POST --data-binary @- "$RHTTP/push?drain=1" > "$tmp/push.out"
grep -q "\"accepted\":$((N - CUT))" "$tmp/push.out" \
    || { echo "promoted node rejected the tail:"; cat "$tmp/push.out"; exit 1; }
curl -fsS "$RHTTP/skyline" > "$tmp/promoted.json"
if ! cmp -s "$tmp/oracle.json" "$tmp/promoted.json"; then
    echo "SKYLINE DIVERGED after failover:"
    diff <(tr ',' '\n' < "$tmp/oracle.json") <(tr ',' '\n' < "$tmp/promoted.json") | head -20
    exit 1
fi

# Clean shutdown of the promoted node must install a final checkpoint in the
# replica's WAL directory, like any primary.
kill "$rpid"
wait "$rpid" 2>/dev/null || true
rpid=
grep -q "checkpoint installed" "$tmp/replica.err" \
    || { echo "promoted node did not checkpoint at exit"; cat "$tmp/replica.err"; exit 1; }

echo "repl smoke OK: primary killed at $CUT/$N, replica promoted (epoch 1) and the failover skyline matches the uninterrupted oracle"
