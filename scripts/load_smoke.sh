#!/usr/bin/env bash
# Load-harness smoke test: start a multi-tenant `pskyline -streams` host,
# drive a short fixed-rate open-loop pskyload sweep against it over HTTP,
# and then an in-process sweep, asserting both report complete accounting
# and that the serve-mode host exposes the windowed visibility-latency
# series and the flight recorder afterwards. Run from the repo root
# (`make load-smoke`).
set -euo pipefail

GO=${GO:-go}
ADDR=${ADDR:-127.0.0.1:18090}
RATE=${RATE:-2000}
tmp=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

"$GO" build -o "$tmp/pskyline" ./cmd/pskyline
"$GO" build -o "$tmp/pskyload" ./cmd/pskyload

"$tmp/pskyline" -streams "bench:dims=2,window=2000,q=0.3" -http "$ADDR" \
    > "$tmp/out.log" 2> "$tmp/err.log" &
pid=$!

for _ in $(seq 1 100); do
    curl -fsS --max-time 2 "http://$ADDR/healthz" >/dev/null 2>&1 && break
    kill -0 "$pid" 2>/dev/null || { echo "pskyline exited early"; cat "$tmp/err.log"; exit 1; }
    sleep 0.1
done

# Short fixed-rate sweep over HTTP: open-loop, latency from scheduled arrival.
"$tmp/pskyload" -target "http://$ADDR" -stream bench -rates "$RATE" \
    -duration 1s -warmup 200ms -batch 8 -out "$tmp/bench.json" -label smoke \
    | tee "$tmp/load.log"
grep -q "open-loop" "$tmp/load.log" || { echo "missing open-loop note"; exit 1; }
grep -q '"mode": "http"' "$tmp/bench.json" || { echo "BAD trajectory"; cat "$tmp/bench.json"; exit 1; }
grep -q '"dropped": 0' "$tmp/bench.json" || { echo "smoke sweep dropped arrivals"; cat "$tmp/bench.json"; exit 1; }

fetch() { curl -fsS --max-time 5 "http://$ADDR$1"; }

# The loaded stream must now expose recent visibility quantiles and spans.
metrics=$(fetch /metrics)
for series in \
    'pskyline_visibility_latency_seconds{stream="bench",quantile="0.99"}' \
    'pskyline_ingest_apply_latency_seconds{stream="bench",quantile="0.5"}' \
    'pskyline_flight_spans_total{stream="bench"}'; do
    echo "$metrics" | grep -qF "$series" \
        || { echo "MISSING series: $series"; echo "$metrics" | head -40; exit 1; }
done
fetch /streams/bench/flight | grep -q '"recorded":' || { echo "BAD flight dump"; exit 1; }
fetch /buildinfo | grep -q '"go_version"' || { echo "BAD /buildinfo"; exit 1; }

kill "$pid"
wait "$pid" 2>/dev/null || true

# In-process sweep incl. the instrumentation-off control; rows land in the
# same trajectory and render as markdown.
"$tmp/pskyload" -mode sync -rates "$RATE" -duration 500ms -warmup 100ms \
    -out "$tmp/bench.json" -label smoke-sync
"$tmp/pskyload" -mode sync -no-latency -rates "$RATE" -duration 500ms -warmup 100ms \
    -out "$tmp/bench.json" -label smoke-control
"$tmp/pskyload" -render "$tmp/bench.json" | tee "$tmp/table.md"
grep -q '| http | on |' "$tmp/table.md" || { echo "render missing http row"; exit 1; }
grep -q '| sync | off |' "$tmp/table.md" || { echo "render missing control row"; exit 1; }

echo "load smoke OK: open-loop sweep at $RATE elems/s over HTTP + in-process, visibility series and flight recorder healthy"
