#!/usr/bin/env bash
# Recovery-reopen benchmark smoke: seeds a durable window on disk, then
# reopens it once through the serial/incremental restore path and once
# through the parallel-decode + STR bulk-load path, asserting both rows
# complete and land in the trajectory file. Run from the repo root
# (`make bench-recovery`).
set -euo pipefail

GO=${GO:-go}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$GO" run ./cmd/pskybench -ingest -ingest-short -ingest-recover-only \
    -label ci-recovery -out "$tmp/recovery.json" | tee "$tmp/recovery.log"

grep -q "recover/d=5/w=[0-9]*/serial" "$tmp/recovery.log" \
    || { echo "recovery smoke: serial recover row missing"; exit 1; }
grep -q "recover/d=5/w=[0-9]*/fast" "$tmp/recovery.log" \
    || { echo "recovery smoke: fast recover row missing"; exit 1; }
grep -q '"label": *"ci-recovery"' "$tmp/recovery.json" \
    || { echo "recovery smoke: run not appended to trajectory file"; exit 1; }

echo "recovery smoke OK"
