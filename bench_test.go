// Benchmarks regenerating the paper's evaluation (Figures 4–12), one
// benchmark per figure. Every streaming benchmark reports the per-element
// delay as ns/op (the paper's time metric) and the maximum candidate and
// skyline sizes as custom metrics (the paper's space metric), after
// prefilling the sliding window so measurements reflect steady state.
//
// The window is scaled down from the paper's N = 1M so the whole suite
// finishes in minutes; cmd/pskybench reruns the same sweeps at any scale.
package pskyline_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"pskyline"
	"pskyline/internal/bench"
	"pskyline/internal/core"
	"pskyline/internal/naive"
	"pskyline/internal/streamgen"
)

const (
	benchWindow = 20_000
	benchQ      = 0.3
)

// benchPush measures steady-state per-element delay: the window is
// prefilled with 2×window elements before timing, then b.N pushes are
// timed. Max candidate/skyline sizes are attached as metrics.
func benchPush(b *testing.B, ds bench.Dataset, window int, thresholds []float64) {
	b.Helper()
	eng, err := core.NewEngine(core.Options{
		Dims:       ds.Dims,
		Window:     window,
		Thresholds: thresholds,
	})
	if err != nil {
		b.Fatal(err)
	}
	src := benchStream(ds)
	for i := 0; i < 2*window; i++ {
		el := src.Next()
		if _, err := eng.Push(el.Point, el.P, el.TS); err != nil {
			b.Fatal(err)
		}
	}
	elems := make([]streamgen.Element, b.N)
	for i := range elems {
		elems[i] = src.Next()
	}
	b.ResetTimer()
	for _, el := range elems {
		if _, err := eng.Push(el.Point, el.P, el.TS); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(eng.MaxCandidateSize()), "maxCand")
	b.ReportMetric(float64(eng.MaxSkylineSize()), "maxSky")
	b.ReportMetric(float64(eng.CandidateSize()), "cand")
}

func benchStream(ds bench.Dataset) streamgen.Stream {
	if ds.Stock {
		return streamgen.NewStock(ds.Prob, 1)
	}
	return streamgen.New(ds.Dims, ds.Dist, ds.Prob, 1)
}

func datasets(dims int) []bench.Dataset {
	out := []bench.Dataset{
		{Name: "Inde-Uniform", Dims: dims, Dist: streamgen.Independent, Prob: streamgen.UniformProb{}},
		{Name: "Anti-Uniform", Dims: dims, Dist: streamgen.Anticorrelated, Prob: streamgen.UniformProb{}},
		{Name: "Anti-Normal", Dims: dims, Dist: streamgen.Anticorrelated, Prob: streamgen.NormalProb{Mu: 0.5, Sd: 0.3}},
	}
	if dims == 2 {
		out = append(out, bench.Dataset{Name: "Stock-Uniform", Dims: 2, Prob: streamgen.UniformProb{}, Stock: true})
	}
	return out
}

func anti3() bench.Dataset {
	return bench.Dataset{Name: "Anti-Uniform", Dims: 3, Dist: streamgen.Anticorrelated, Prob: streamgen.UniformProb{}}
}

// BenchmarkFig4_Space_vs_Dim — maximum candidate/skyline size by
// dimensionality and dataset (Figure 4(a,b)); read the maxCand/maxSky
// metrics.
func BenchmarkFig4_Space_vs_Dim(b *testing.B) {
	for d := 2; d <= 5; d++ {
		for _, ds := range datasets(d) {
			b.Run(fmt.Sprintf("d=%d/%s", d, ds.Name), func(b *testing.B) {
				benchPush(b, ds, benchWindow, []float64{benchQ})
			})
		}
	}
}

// BenchmarkFig5_Space_vs_WindowSize — space vs window size (Figure 5).
func BenchmarkFig5_Space_vs_WindowSize(b *testing.B) {
	for _, w := range []int{5_000, 10_000, 20_000, 40_000} {
		b.Run(fmt.Sprintf("N=%d", w), func(b *testing.B) {
			benchPush(b, anti3(), w, []float64{benchQ})
		})
	}
}

// BenchmarkFig6_Space_vs_Pmu — space vs mean appearance probability
// (Figure 6); normal probability model on anti-correlated 3d data.
func BenchmarkFig6_Space_vs_Pmu(b *testing.B) {
	for _, mu := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		ds := anti3()
		ds.Prob = streamgen.NormalProb{Mu: mu, Sd: 0.3}
		b.Run(fmt.Sprintf("Pmu=%.1f", mu), func(b *testing.B) {
			benchPush(b, ds, benchWindow, []float64{benchQ})
		})
	}
}

// BenchmarkFig7_Space_vs_q — space vs probability threshold (Figure 7).
func BenchmarkFig7_Space_vs_q(b *testing.B) {
	for _, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		b.Run(fmt.Sprintf("q=%.1f", q), func(b *testing.B) {
			benchPush(b, anti3(), benchWindow, []float64{q})
		})
	}
}

// BenchmarkFig8_Time_vs_Dim — per-element delay by dimensionality and
// dataset (Figure 8); ns/op is the paper's average delay.
func BenchmarkFig8_Time_vs_Dim(b *testing.B) {
	for d := 2; d <= 5; d++ {
		for _, ds := range datasets(d) {
			b.Run(fmt.Sprintf("d=%d/%s", d, ds.Name), func(b *testing.B) {
				benchPush(b, ds, benchWindow, []float64{benchQ})
			})
		}
	}
}

// BenchmarkFig8_SSKY_vs_Trivial — the paper's ablation: SSKY against the
// trivial candidate-scan algorithm on anti 3d (the paper reports the
// trivial algorithm ~20× slower).
func BenchmarkFig8_SSKY_vs_Trivial(b *testing.B) {
	b.Run("SSKY", func(b *testing.B) {
		benchPush(b, anti3(), benchWindow, []float64{benchQ})
	})
	b.Run("Trivial", func(b *testing.B) {
		tr := naive.NewTrivial(benchWindow, benchQ)
		src := benchStream(anti3())
		for i := 0; i < 2*benchWindow; i++ {
			el := src.Next()
			tr.Push(el.Point, el.P)
		}
		elems := make([]streamgen.Element, b.N)
		for i := range elems {
			elems[i] = src.Next()
		}
		b.ResetTimer()
		for _, el := range elems {
			tr.Push(el.Point, el.P)
		}
		b.StopTimer()
		b.ReportMetric(float64(tr.Size()), "cand")
	})
}

// BenchmarkFig9_Time_vs_WindowSize — per-element delay vs window size
// (Figure 9); the paper finds it nearly flat.
func BenchmarkFig9_Time_vs_WindowSize(b *testing.B) {
	for _, w := range []int{5_000, 10_000, 20_000, 40_000} {
		b.Run(fmt.Sprintf("N=%d", w), func(b *testing.B) {
			benchPush(b, anti3(), w, []float64{benchQ})
		})
	}
}

// BenchmarkFig10_Time_vs_Pmu — per-element delay vs mean appearance
// probability (Figure 10).
func BenchmarkFig10_Time_vs_Pmu(b *testing.B) {
	for _, mu := range []float64{0.1, 0.5, 0.9} {
		ds := anti3()
		ds.Prob = streamgen.NormalProb{Mu: mu, Sd: 0.3}
		b.Run(fmt.Sprintf("Pmu=%.1f", mu), func(b *testing.B) {
			benchPush(b, ds, benchWindow, []float64{benchQ})
		})
	}
}

// BenchmarkFig11_Time_vs_q — per-element delay vs threshold (Figure 11).
func BenchmarkFig11_Time_vs_q(b *testing.B) {
	for _, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		b.Run(fmt.Sprintf("q=%.1f", q), func(b *testing.B) {
			benchPush(b, anti3(), benchWindow, []float64{q})
		})
	}
}

// BenchmarkFig12a_MSKY_vs_K — MSKY per-element delay vs the number of
// maintained thresholds (Figure 12(a)).
func BenchmarkFig12a_MSKY_vs_K(b *testing.B) {
	for k := 1; k <= 5; k++ {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			benchPush(b, anti3(), benchWindow, bench.ThresholdSpread(k))
		})
	}
}

// BenchmarkFig12b_QSKY_vs_K — ad-hoc QSKY query cost vs the number of
// maintained thresholds (Figure 12(b)); each op is one Query at a random
// threshold in [q, 1] against a warmed window.
func BenchmarkFig12b_QSKY_vs_K(b *testing.B) {
	for k := 1; k <= 5; k++ {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			eng, err := core.NewEngine(core.Options{
				Dims: 3, Window: benchWindow, Thresholds: bench.ThresholdSpread(k),
			})
			if err != nil {
				b.Fatal(err)
			}
			src := benchStream(anti3())
			for i := 0; i < 2*benchWindow; i++ {
				el := src.Next()
				if _, err := eng.Push(el.Point, el.P, el.TS); err != nil {
					b.Fatal(err)
				}
			}
			r := rand.New(rand.NewSource(7))
			qs := make([]float64, b.N)
			for i := range qs {
				qs[i] = benchQ + (1-benchQ)*r.Float64()
			}
			b.ResetTimer()
			for _, q := range qs {
				if _, err := eng.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Fanout — effect of the aggregate R-tree fanout on
// per-element delay (a design choice called out in DESIGN.md).
func BenchmarkAblation_Fanout(b *testing.B) {
	for _, fanout := range []int{4, 8, 12, 24, 48} {
		b.Run(fmt.Sprintf("M=%d", fanout), func(b *testing.B) {
			eng, err := core.NewEngine(core.Options{
				Dims: 3, Window: benchWindow, Thresholds: []float64{benchQ}, MaxEntries: fanout,
			})
			if err != nil {
				b.Fatal(err)
			}
			src := benchStream(anti3())
			for i := 0; i < 2*benchWindow; i++ {
				el := src.Next()
				if _, err := eng.Push(el.Point, el.P, el.TS); err != nil {
					b.Fatal(err)
				}
			}
			elems := make([]streamgen.Element, b.N)
			for i := range elems {
				elems[i] = src.Next()
			}
			b.ResetTimer()
			for _, el := range elems {
				if _, err := eng.Push(el.Point, el.P, el.TS); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_EagerVsLazy — the paper's aggregate-information design
// (lazy entry multipliers) against eager per-element propagation.
func BenchmarkAblation_EagerVsLazy(b *testing.B) {
	for _, ds := range []bench.Dataset{
		anti3(),
		{Name: "Inde-Uniform", Dims: 3, Dist: streamgen.Independent, Prob: streamgen.UniformProb{}},
	} {
		for _, eager := range []bool{false, true} {
			name := ds.Name + "/Lazy"
			if eager {
				name = ds.Name + "/Eager"
			}
			b.Run(name, func(b *testing.B) {
				eng, err := core.NewEngine(core.Options{
					Dims: 3, Window: benchWindow, Thresholds: []float64{benchQ},
					EagerPropagation: eager,
				})
				if err != nil {
					b.Fatal(err)
				}
				src := benchStream(ds)
				for i := 0; i < 2*benchWindow; i++ {
					el := src.Next()
					if _, err := eng.Push(el.Point, el.P, el.TS); err != nil {
						b.Fatal(err)
					}
				}
				elems := make([]streamgen.Element, b.N)
				for i := range elems {
					elems[i] = src.Next()
				}
				b.ResetTimer()
				for _, el := range elems {
					if _, err := eng.Push(el.Point, el.P, el.TS); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				c := eng.Counters()
				b.ReportMetric(float64(c.ItemsTouched)/float64(c.Pushes), "itemsTouched/op")
				b.ReportMetric(float64(c.NodesVisited)/float64(c.Pushes), "nodesVisited/op")
			})
		}
	}
}

// BenchmarkAblation_CertainOverhead — the price of the probabilistic
// machinery: the full engine fed certain (P = 1) data against a dedicated
// certain-data sliding-window skyline on the same stream.
func BenchmarkAblation_CertainOverhead(b *testing.B) {
	ds := bench.Dataset{Name: "Anti-Certain", Dims: 3, Dist: streamgen.Anticorrelated, Prob: streamgen.ConstProb{P: 1}}
	b.Run("Engine-P1", func(b *testing.B) {
		benchPush(b, ds, benchWindow, []float64{benchQ})
	})
	b.Run("CertainDedicated", func(b *testing.B) {
		c := naive.NewCertain(benchWindow)
		src := benchStream(ds)
		for i := 0; i < 2*benchWindow; i++ {
			c.Push(src.Next().Point)
		}
		elems := make([]streamgen.Element, b.N)
		for i := range elems {
			elems[i] = src.Next()
		}
		b.ResetTimer()
		for _, el := range elems {
			c.Push(el.Point)
		}
		b.StopTimer()
		b.ReportMetric(float64(c.Size()), "cand")
	})
}

// BenchmarkTopK — query-time cost of the probabilistic top-k extension
// (Section VI).
func BenchmarkTopK(b *testing.B) {
	eng, err := core.NewEngine(core.Options{Dims: 3, Window: benchWindow, Thresholds: []float64{benchQ}})
	if err != nil {
		b.Fatal(err)
	}
	src := benchStream(anti3())
	for i := 0; i < 2*benchWindow; i++ {
		el := src.Next()
		if _, err := eng.Push(el.Point, el.P, el.TS); err != nil {
			b.Fatal(err)
		}
	}
	for _, k := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.TopK(k, benchQ); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchSink keeps the compiler from eliding benchmark read operations.
var benchSink atomic.Int64

// BenchmarkConcurrentReaders measures aggregate lock-free read throughput
// against a continuously writing Monitor: one writer goroutine streams
// anti-correlated 3-d elements through Push while R reader goroutines split
// b.N read operations (a mix of Skyline, Query and TopK served from the
// published view). ns/op is the aggregate per-read latency; with the RCU
// read path it should stay flat — i.e. total reads/sec should scale — as R
// grows on a multi-core machine, because readers contend with nothing.
func BenchmarkConcurrentReaders(b *testing.B) {
	window := benchWindow / 4
	if testing.Short() {
		window = 2_000
	}
	for _, readers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			m, err := pskyline.NewMonitor(pskyline.Options{
				Dims: 3, Window: window, Thresholds: []float64{benchQ},
			})
			if err != nil {
				b.Fatal(err)
			}
			src := benchStream(anti3())
			toElement := func(el streamgen.Element) pskyline.Element {
				return pskyline.Element{Point: el.Point, Prob: el.P, TS: el.TS}
			}
			batch := make([]pskyline.Element, 0, 512)
			for i := 0; i < 2*window; i++ {
				batch = append(batch, toElement(src.Next()))
				if len(batch) == cap(batch) {
					if _, err := m.PushBatch(batch); err != nil {
						b.Fatal(err)
					}
					batch = batch[:0]
				}
			}
			if _, err := m.PushBatch(batch); err != nil {
				b.Fatal(err)
			}

			stop := make(chan struct{})
			writerDone := make(chan struct{})
			go func() {
				defer close(writerDone)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := m.Push(toElement(src.Next())); err != nil {
						b.Error(err)
						return
					}
				}
			}()

			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for g := 0; g < readers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1)
						if i > int64(b.N) {
							return
						}
						switch i % 3 {
						case 0:
							benchSink.Add(int64(len(m.Skyline())))
						case 1:
							res, err := m.Query(0.5)
							if err != nil {
								b.Error(err)
								return
							}
							benchSink.Add(int64(len(res)))
						case 2:
							res, err := m.TopK(10, benchQ)
							if err != nil {
								b.Error(err)
								return
							}
							benchSink.Add(int64(len(res)))
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			close(stop)
			<-writerDone
			b.ReportMetric(float64(m.View().Processed()), "writes")
		})
	}
}
