# Development and CI entry points. `make ci` is exactly what the GitHub
# Actions workflow runs.

GO ?= go

.PHONY: build vet test race bench-concurrent ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The whole suite under the race detector: the concurrency stress tests in
# concurrent_test.go and view_test.go are written to give it dense
# single-writer/many-reader interleavings.
race:
	$(GO) test -race -count=1 ./...

# Short-mode smoke run of the concurrent read-throughput benchmark; on a
# multi-core machine ns/op should stay roughly flat as readers grow.
bench-concurrent:
	$(GO) test -run '^$$' -bench BenchmarkConcurrentReaders -benchtime 1000x -short .

ci: build vet test race bench-concurrent
