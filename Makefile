# Development and CI entry points. `make ci` is exactly what the GitHub
# Actions workflow runs.

GO ?= go

.PHONY: build vet lint test race bench-concurrent bench bench-smoke serve-smoke crash-smoke chaos-smoke shard-smoke bench-recovery load-smoke repl-smoke semisync-smoke bench-repl bench-latency ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Formatting and static-analysis gate: gofmt must have nothing to rewrite
# and go vet must be clean.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

# -shuffle=on randomizes test (and subtest-parent) execution order so
# accidental inter-test state dependencies surface in CI instead of on a
# laptop; the seed is printed on failure for reproduction.
test:
	$(GO) test -shuffle=on ./...

# The whole suite under the race detector: the concurrency stress tests in
# concurrent_test.go and view_test.go are written to give it dense
# single-writer/many-reader interleavings.
race:
	$(GO) test -race -count=1 ./...

# Short-mode smoke run of the concurrent read-throughput benchmark; on a
# multi-core machine ns/op should stay roughly flat as readers grow.
bench-concurrent:
	$(GO) test -run '^$$' -bench BenchmarkConcurrentReaders -benchtime 1000x -short .

# Full ingestion benchmark trajectory: appends a machine-readable run
# (ns/op, B/op, allocs/op, elems/sec for Push, PushBatch, expiry, mixed)
# to BENCH_ingest.json. Label it after the change being measured, e.g.
#   make bench BENCH_LABEL=my-change
BENCH_LABEL ?= local
bench:
	$(GO) run ./cmd/pskybench -ingest -out BENCH_ingest.json -label "$(BENCH_LABEL)"

# Fast benchmark smoke pass over the hot packages under the race detector:
# catches benchmarks that crash, race or regress catastrophically without
# paying for statistically meaningful timings.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 100x -benchmem -race ./internal/aggrtree/ ./internal/geom/ ./internal/core/

# End-to-end serve-mode smoke test: runs `pskyline -http` against a real
# stream and asserts /metrics, /healthz, /debug/skyline and pprof respond
# with the expected series.
serve-smoke:
	bash scripts/serve_smoke.sh

# End-to-end crash-recovery smoke test: kill -9 mid-ingest under the WAL,
# restart, and assert the final skyline matches an uninterrupted run.
crash-smoke:
	bash scripts/crash_smoke.sh

# End-to-end chaos smoke test: seeded fault storm (torn writes, failed
# writes/fsyncs) absorbed by the retry policy, kill -9 mid-ingest, restart
# and byte-compare the skyline against a no-fault oracle; then a shed-policy
# run on a dead disk that must keep serving.
chaos-smoke:
	bash scripts/chaos_smoke.sh

# End-to-end multi-tenant smoke test: one `pskyline -streams` process hosts
# three independent streams, concurrent NDJSON ingest hits each over HTTP,
# and the sharded stream's skyline is compared against an identically-fed
# single-engine stream.
shard-smoke:
	bash scripts/shard_smoke.sh

# Recovery-reopen benchmark smoke: seeds a durable window, reopens it via the
# serial/incremental restore path and the parallel-decode + STR bulk-load
# path, and asserts both rows complete.
bench-recovery:
	bash scripts/recovery_smoke.sh

# End-to-end load-harness smoke test: a short fixed-rate open-loop pskyload
# sweep against a serve-mode host over HTTP plus an in-process sweep (with
# the instrumentation-off control), asserting complete accounting and that
# the windowed visibility-latency series and flight recorder respond.
load-smoke:
	bash scripts/load_smoke.sh

# End-to-end replication smoke test: a durable primary ships its WAL to a
# read-only replica, kill -9 lands on the primary mid-ingest, the replica is
# promoted via `pskyline -promote` and fed the rest of the stream, and its
# skyline is byte-compared against an uninterrupted oracle.
repl-smoke:
	bash scripts/repl_smoke.sh

# End-to-end semi-sync smoke test: a -repl-semisync-k 1 primary under an
# injected slow-link partition must degrade (quorum wait timeout), keep
# ingesting, re-upgrade on its own, and after kill -9 + promote the follower
# must hold every quorum-acked record; the failover skyline is byte-compared
# against an uninterrupted oracle.
semisync-smoke:
	bash scripts/semisync_smoke.sh

# Replication push A/B (semisync k=1 vs async, loopback follower) appended
# to BENCH_ingest.json. Label it after the change being measured.
bench-repl:
	$(GO) run ./cmd/pskybench -ingest -ingest-repl-only -out BENCH_ingest.json -label "$(BENCH_LABEL)"

# Full latency-vs-rate trajectory: open-loop sweeps of the sync, async and
# sharded write paths (plus the instrumentation-off control) appended to
# BENCH_latency.json. Label it after the change being measured, e.g.
#   make bench-latency BENCH_LABEL=my-change
bench-latency:
	$(GO) run ./cmd/pskyload -mode sync -rates 5000,10000,20000 -out BENCH_latency.json -label "$(BENCH_LABEL)-sync"
	$(GO) run ./cmd/pskyload -mode async -rates 5000,10000,20000 -out BENCH_latency.json -label "$(BENCH_LABEL)-async"
	$(GO) run ./cmd/pskyload -mode sharded -batch 16 -rates 5000,10000,20000 -out BENCH_latency.json -label "$(BENCH_LABEL)-sharded"
	$(GO) run ./cmd/pskyload -mode sync -no-latency -rates 10000 -out BENCH_latency.json -label "$(BENCH_LABEL)-control"

ci: build lint test race bench-concurrent bench-smoke serve-smoke crash-smoke chaos-smoke shard-smoke bench-recovery load-smoke repl-smoke semisync-smoke
