//go:build !race

package pskyline

// raceEnabled reports whether the race detector is active (see
// race_on_test.go). Allocation-pinning tests skip under it: the detector's
// shadow-memory bookkeeping skews allocation accounting.
const raceEnabled = false
