package pskyline

import (
	"sort"
	"time"

	"pskyline/internal/core"
	"pskyline/internal/obs"
)

// SpanStages names the engine pipeline stages behind the leading entries of
// a flight span's StageNs breakdown, in order (the remaining entries are
// reserved and stay zero).
func SpanStages() []string {
	return append([]string(nil), core.SpanStageNames[:]...)
}

// SpanAdmitTime converts a flight span's monotonic admission stamp to wall
// clock (through the same shared base every latency stamp uses).
func SpanAdmitTime(sp obs.Span) time.Time { return obs.WallAt(sp.AdmitNs) }

// LatencyOptions configures ingest-to-visibility latency tracking and the
// flight recorder. The zero value enables tracking with the defaults; set
// Disable for an instrumentation-off control (the hot path then takes no
// extra clock reads at admission and records no spans — the A/B baseline the
// load harness measures overhead against).
//
// Tracking stamps every element once at front-end admission — where Push,
// PushBatch or the sharded front end accepts it, before any queueing or lock
// wait — and measures two intervals against that stamp when the write that
// carried the element completes:
//
//   - applied: admission → the engine finished applying the element;
//   - visible: admission → the read view containing it was published (the
//     moment queries can observe it).
//
// Both land in windowed histograms (recent quantiles over the last Epoch ×
// obs.NumEpochs, plus cumulative totals) exported per shard and per stream,
// and every completed write leaves a span record in the flight recorder.
type LatencyOptions struct {
	// Disable turns tracking off entirely: no admission stamps, no windowed
	// histograms, no flight recorder.
	Disable bool
	// Epoch is the rotation interval of the windowed latency histograms;
	// the recent quantiles cover the last obs.NumEpochs epochs. 0 selects
	// obs.DefaultEpoch (10s, i.e. a one-minute window).
	Epoch time.Duration
	// FlightDepth and SlowDepth size the flight recorder's recent and
	// slow-latch rings (rounded up to powers of two; 0 selects
	// obs.DefaultFlightDepth / obs.DefaultSlowDepth).
	FlightDepth int
	SlowDepth   int
	// SlowThreshold is the admission-to-visibility latency at or above which
	// a write's span is latched into the slow ring (0 selects
	// obs.DefaultSlowThreshold).
	SlowThreshold time.Duration
}

// initLatency wires the latency instrumentation configured in m.opts. Called
// from newMonitorCore, before any push can run.
func (m *Monitor) initLatency() {
	m.shardIdx = -1
	if sh := m.opts.shard; sh != nil {
		m.shardIdx = int32(sh.index)
	}
	lo := m.opts.Latency
	if lo.Disable {
		return
	}
	m.latOn = true
	m.met.latApplied.Init(lo.Epoch)
	m.met.latVisible.Init(lo.Epoch)
	m.flight = obs.NewFlightRecorder(lo.FlightDepth, lo.SlowDepth, lo.SlowThreshold)
}

// admitNow stamps an element's admission: one monotonic clock read at the
// public write entry point, before queueing or lock acquisition, so queue
// residency and lock wait count toward the element's latency. Returns 0 when
// tracking is off — the zero stamp propagates through the op structs and
// suppresses recording downstream without further branching.
func (m *Monitor) admitNow() int64 {
	if !m.latOn {
		return 0
	}
	return obs.NowNs()
}

// opSpan tracks one write operation (a push, a batch, or a drained async
// batch) from the moment its owner acquired the monitor lock to the view
// publication that made it visible. It lives on the caller's stack — no
// allocation — and degenerates to a few nil-checks when tracking is off.
type opSpan struct {
	on      bool
	admitNs int64 // earliest admission stamp among the operation's elements
	startNs int64 // lock acquired, engine work about to start
	applyNs int64 // engine work done, publication about to start
	queue   int32 // async queue depth at apply entry (-1 synchronous)
}

// beginOpLocked arms the span and resets the engine's per-operation stage
// accumulator. Callers hold m.mu. A zero admit stamp (tracking off, or a
// tick-only batch) leaves the span disarmed.
func (m *Monitor) beginOpLocked(sp *opSpan, admitNs int64, queue int) {
	if !m.latOn || admitNs == 0 {
		return
	}
	sp.on = true
	sp.admitNs = admitNs
	sp.queue = int32(queue)
	sp.startNs = obs.NowNs()
	m.met.eng.ResetSpan()
}

// applyDone marks the engine-applied instant (before topk refresh and view
// publication).
func (sp *opSpan) applyDone() {
	if sp.on {
		sp.applyNs = obs.NowNs()
	}
}

// endOpLocked closes the span after the publication that made the operation
// visible: it records one applied and one visible latency sample per element
// and files one flight record for the operation. Exactly one of admits
// (per-element stamps of an async internal batch) and ops (a shard-member op
// batch, whose non-tick entries carry their own stamps) may be non-nil; with
// both nil all n elements share sp.admitNs. Callers hold m.mu.
func (m *Monitor) endOpLocked(sp *opSpan, firstSeq uint64, n int, admits []int64, ops []shardOp) {
	if !sp.on || n == 0 {
		return
	}
	end := obs.NowNs()
	mm := &m.met
	switch {
	case ops != nil:
		for i := range ops {
			if ops[i].tick || ops[i].admitNs == 0 {
				continue
			}
			mm.latApplied.Record(end, time.Duration(sp.applyNs-ops[i].admitNs))
			mm.latVisible.Record(end, time.Duration(end-ops[i].admitNs))
		}
	case admits != nil:
		for _, a := range admits {
			if a == 0 {
				continue
			}
			mm.latApplied.Record(end, time.Duration(sp.applyNs-a))
			mm.latVisible.Record(end, time.Duration(end-a))
		}
	default:
		for i := 0; i < n; i++ {
			mm.latApplied.Record(end, time.Duration(sp.applyNs-sp.admitNs))
			mm.latVisible.Record(end, time.Duration(end-sp.admitNs))
		}
	}
	fs := obs.Span{
		Seq:       firstSeq,
		Batch:     int32(n),
		Shard:     m.shardIdx,
		Queue:     sp.queue,
		AdmitNs:   sp.admitNs,
		WaitNs:    sp.startNs - sp.admitNs,
		ApplyNs:   sp.applyNs - sp.startNs,
		PublishNs: end - sp.applyNs,
		TotalNs:   end - sp.admitNs,
	}
	stages := mm.eng.SpanNs()
	copy(fs.StageNs[:], stages[:])
	m.flight.Record(&fs)
}

// FlightInfo is a dump of the flight recorder: the most recent write spans
// (oldest first) and the latched slow spans, with the recorder's counters.
type FlightInfo struct {
	// Recent holds the last completed write spans, oldest first.
	Recent []obs.Span
	// Slow holds the spans whose admission-to-visibility latency reached
	// SlowThreshold, oldest first — the always-on record of the worst
	// recent writes.
	Slow []obs.Span
	// Recorded and SlowLatched count spans recorded and latched since start.
	Recorded    uint64
	SlowLatched uint64
	// SlowThreshold is the configured latching threshold.
	SlowThreshold time.Duration
}

// Flight dumps the flight recorder. Lock-free: reading the rings never blocks
// ingestion, and spans being overwritten concurrently are skipped rather than
// returned torn. Empty when latency tracking is disabled.
func (m *Monitor) Flight() FlightInfo {
	if m.flight == nil {
		return FlightInfo{}
	}
	return FlightInfo{
		Recent:        m.flight.Recent(),
		Slow:          m.flight.Slow(),
		Recorded:      m.flight.Recorded(),
		SlowLatched:   m.flight.SlowLatched(),
		SlowThreshold: m.flight.Threshold(),
	}
}

// Flight dumps every shard's flight recorder merged by admission time.
func (s *ShardedMonitor) Flight() FlightInfo {
	var out FlightInfo
	for _, sh := range s.shards {
		fi := sh.Flight()
		out.Recent = append(out.Recent, fi.Recent...)
		out.Slow = append(out.Slow, fi.Slow...)
		out.Recorded += fi.Recorded
		out.SlowLatched += fi.SlowLatched
		if fi.SlowThreshold > out.SlowThreshold {
			out.SlowThreshold = fi.SlowThreshold
		}
	}
	sort.Slice(out.Recent, func(i, j int) bool { return out.Recent[i].AdmitNs < out.Recent[j].AdmitNs })
	sort.Slice(out.Slow, func(i, j int) bool { return out.Slow[i].AdmitNs < out.Slow[j].AdmitNs })
	return out
}

// LatencySummary summarizes one windowed latency histogram: recent-window
// quantiles (the last Window worth of samples) plus the cumulative count.
// Quantiles are log2-bucket estimates, within a factor of √2 of the exact
// value (±1 bucket).
type LatencySummary struct {
	// Count and MeanNs cover the recent window.
	Count  uint64
	MeanNs float64
	// P50Ns, P99Ns and P999Ns are recent-window quantile estimates.
	P50Ns, P99Ns, P999Ns float64
	// MaxNs is the largest sample in the recent window, exact.
	MaxNs uint64
	// TotalCount counts samples since start.
	TotalCount uint64
}

// LatencyMetrics is the ingest-to-visibility latency slice of a Metrics
// snapshot; nil when tracking is disabled.
type LatencyMetrics struct {
	// Applied is admission → engine-applied; Visible is admission →
	// view-publish (the element answerable by queries).
	Applied, Visible LatencySummary
	// Window is the length of the recent window the summaries cover.
	Window time.Duration
	// FlightSpans and SlowSpans count writes recorded by the flight
	// recorder and spans latched as slow; SlowThreshold is the latch bound.
	FlightSpans, SlowSpans uint64
	SlowThreshold          time.Duration
}

// latencySummary builds a LatencySummary from a windowed histogram at nowNs.
func latencySummary(w *obs.WindowedHistogram, nowNs int64) LatencySummary {
	s := w.Snapshot(nowNs)
	return LatencySummary{
		Count:      s.Count,
		MeanNs:     s.MeanNs(),
		P50Ns:      s.QuantileNs(0.50),
		P99Ns:      s.QuantileNs(0.99),
		P999Ns:     s.QuantileNs(0.999),
		MaxNs:      s.MaxNs,
		TotalCount: w.TotalSnapshot().Count,
	}
}

// latencyMetrics assembles the Metrics().Latency block (nil when tracking is
// off). Lock-free.
func (m *Monitor) latencyMetrics() *LatencyMetrics {
	if !m.latOn {
		return nil
	}
	now := obs.NowNs()
	return &LatencyMetrics{
		Applied:       latencySummary(&m.met.latApplied, now),
		Visible:       latencySummary(&m.met.latVisible, now),
		Window:        m.met.latVisible.Window(),
		FlightSpans:   m.flight.Recorded(),
		SlowSpans:     m.flight.SlowLatched(),
		SlowThreshold: m.flight.Threshold(),
	}
}
