package pskyline

import (
	"sort"

	"pskyline/internal/core"
	"pskyline/internal/geom"
	"pskyline/internal/prob"
)

// mergeCandidateViews builds one global candidate view from per-shard
// candidate views. It is the query-time half of the sharding design and is
// EXACT, not approximate — DESIGN.md §13 gives the full argument; the
// essentials:
//
// Each shard maintains, over its slice of the window, the candidate set for
// the same threshold q_k: the elements x with shard-Pnew(x) ≥ q_k, where
// shard-Pnew multiplies (1 − P) over the shard's own newer dominators of x.
// Shard-Pnew(x) is an upper bound of the true window Pnew(x) (a sub-product
// of ≤1 factors), so the union U of the shard candidate sets is a superset
// of the true candidate set S — no true candidate is lost.
//
// The merge recomputes Pnew over U, which is exactly Pnew over the whole
// window for every x ∈ S: suppose some window dominator y of x newer than x
// is missing from U, and pick the NEWEST missing one. Every dominator z of
// y newer than y is in U (z ≻ y ≻ x and z newer than y means z is a newer
// dominator of x too; y was the newest missing one, so z is present). Those
// z live in y's own shard or elsewhere — but y ∉ U means y's shard evicted
// it: shard-Pnew(y) < q_k, i.e. the product of (1 − P(z)) over y's
// shard-local newer dominators is already < q_k. That product is a
// sub-product of Π_{z ∈ U, z newer, z ≻ x} (1 − P(z)) · (1 − P(y))… — in
// short, Pnew_U(x) ≤ shard-Pnew(y) < q_k, so x would fail the threshold
// with U's factors alone and x ∉ S. Contrapositive: for every x ∈ S the
// dominator sets over U and over the window coincide, the recomputed Pnew,
// Pold and Psky use the identical factor multiset, and the merged candidate
// set {x ∈ U : Pnew_U(x) ≥ q_k} equals S exactly.
//
// Determinism: factors are multiplied in ascending dominator sequence
// order, so two merges over the same logical candidates produce bit-equal
// probabilities regardless of how the elements were partitioned. The
// differential test suite leans on this by running the sharded parts and a
// single-engine oracle view through this same function and comparing the
// encoded bytes.
func mergeCandidateViews(parts []*View) *View {
	ths := parts[0].thresholds
	var processed uint64
	var counters core.Counters
	n := 0
	for _, p := range parts {
		processed += p.processed
		n += p.NumCandidates()
		c := p.counters
		counters.Pushes += c.Pushes
		counters.Expiries += c.Expiries
		counters.NodesVisited += c.NodesVisited
		counters.ItemsTouched += c.ItemsTouched
		counters.LazyApplied += c.LazyApplied
		counters.Removals += c.Removals
		counters.Moves += c.Moves
	}

	// Gather the candidate union in ascending sequence (= arrival) order.
	cands := make([]SkyPoint, 0, n)
	for _, p := range parts {
		for _, b := range p.bands {
			cands = append(cands, b...)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Seq < cands[j].Seq })

	// Pass 1 — Pnew over the union: for each candidate, the product of
	// (1 − P) over its newer dominators in the union, factors in ascending
	// dominator sequence order. Candidacy is decided on the exact factor
	// (log-space), same as the engine.
	qk := prob.FromFloat(ths[len(ths)-1])
	pnew := make([]prob.Factor, len(cands))
	keep := make([]bool, len(cands))
	for i := range cands {
		f := prob.One()
		pi := geom.Point(cands[i].Point)
		for j := i + 1; j < len(cands); j++ {
			if geom.Point(cands[j].Point).Dominates(pi) {
				f = f.Times(prob.OneMinus(cands[j].Prob))
			}
		}
		pnew[i] = f
		keep[i] = f.AtLeast(qk)
	}

	// Pass 2 — Pold over the kept candidates: older dominators that
	// survived pass 1, ascending sequence order, then the final banding by
	// Psky = P · Pnew · Pold.
	qs := make([]prob.Factor, len(ths))
	for i, q := range ths {
		qs[i] = prob.FromFloat(q)
	}
	bands := make([][]SkyPoint, len(ths)+1)
	kept := 0
	for i := range cands {
		if !keep[i] {
			continue
		}
		kept++
		pold := prob.One()
		pi := geom.Point(cands[i].Point)
		for j := 0; j < i; j++ {
			if keep[j] && geom.Point(cands[j].Point).Dominates(pi) {
				pold = pold.Times(prob.OneMinus(cands[j].Prob))
			}
		}
		psky := prob.FromFloat(cands[i].Prob).Times(pnew[i]).Times(pold)
		sp := cands[i]
		sp.Psky = psky.Float()
		band := len(qs)
		for b, q := range qs {
			if psky.AtLeast(q) {
				band = b
				break
			}
		}
		bands[band] = append(bands[band], sp)
	}

	// Band order: descending skyline probability, ties by ascending
	// sequence — the order core.BandResults produces.
	for b := range bands {
		sort.Slice(bands[b], func(i, j int) bool {
			if bands[b][i].Psky != bands[b][j].Psky {
				return bands[b][i].Psky > bands[b][j].Psky
			}
			return bands[b][i].Seq < bands[b][j].Seq
		})
	}

	return &View{
		processed:  processed,
		thresholds: ths,
		bands:      bands,
		stats: Stats{
			Processed:  processed,
			Candidates: kept,
			Skyline:    len(bands[0]),
		},
		counters: counters,
	}
}
