package pskyline

import "pskyline/internal/vfs"

// Crash simulates a process kill for tests: the async queue (if any) is
// drained and stopped so the cut point is deterministic, then the WAL is
// closed WITHOUT flushing — only records already handed to the OS by Commit
// survive, which is exactly what kill -9 leaves behind. The monitor must not
// be used afterwards; reopen the directory with Open to exercise recovery.
// Torn writes from power failures are simulated on top of this by truncating
// or corrupting the segment files directly.
func (m *Monitor) Crash() {
	if q := m.aq; q != nil {
		q.enqMu.Lock()
		if !q.closed {
			q.closed = true
			close(q.ch)
		}
		q.enqMu.Unlock()
		<-q.done
	}
	m.stopReattacher()
	if m.wal != nil {
		m.wal.Abort()
	}
}

// Crash simulates a process kill of a sharded monitor: every shard's queue
// is stopped and its WAL abandoned unflushed, as one kill -9 would do to all
// of them at once.
func (s *ShardedMonitor) Crash() {
	for _, sh := range s.shards {
		sh.Crash()
	}
}

// WithFS returns a copy of opt whose durability layer runs on fsys instead of
// the real filesystem — the hook chaos tests use to inject faults without
// going through the Options.Durability.InjectFaults string.
func WithFS(opt Options, fsys vfs.FS) Options {
	opt.Durability.fs = fsys
	return opt
}

// MergeViews exposes the cross-shard candidate merge to the differential
// suite: the sharded parts and the single-engine oracle's view run through
// the same merge, so their encodings can be compared byte for byte.
func MergeViews(parts []*View) *View { return mergeCandidateViews(parts) }
