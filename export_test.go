package pskyline

// Crash simulates a process kill for tests: the async queue (if any) is
// drained and stopped so the cut point is deterministic, then the WAL is
// closed WITHOUT flushing — only records already handed to the OS by Commit
// survive, which is exactly what kill -9 leaves behind. The monitor must not
// be used afterwards; reopen the directory with Open to exercise recovery.
// Torn writes from power failures are simulated on top of this by truncating
// or corrupting the segment files directly.
func (m *Monitor) Crash() {
	if q := m.aq; q != nil {
		q.enqMu.Lock()
		if !q.closed {
			q.closed = true
			close(q.ch)
		}
		q.enqMu.Unlock()
		<-q.done
	}
	if m.wal != nil {
		m.wal.Abort()
	}
}
