//go:build race

package pskyline

// raceEnabled lets tests whose accounting the race detector skews (e.g.
// allocation pinning) skip themselves under `go test -race`.
const raceEnabled = true
