package pskyline_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"pskyline"
)

func mustMonitor(t *testing.T, opt pskyline.Options) *pskyline.Monitor {
	t.Helper()
	m, err := pskyline.NewMonitor(opt)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOptionsValidation(t *testing.T) {
	bad := []pskyline.Options{
		{},                                    // no window at all
		{Dims: 2, Thresholds: []float64{0.3}}, // neither window nor period
		{Dims: 2, Window: 10, Period: 5, Thresholds: []float64{0.3}}, // both
		{Dims: 0, Window: 10, Thresholds: []float64{0.3}},
		{Dims: 2, Window: 10}, // no thresholds
		{Dims: 2, Window: 10, Thresholds: []float64{0}},
		{Dims: 2, Window: 10, Thresholds: []float64{1.5}},
	}
	for i, opt := range bad {
		if _, err := pskyline.NewMonitor(opt); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}

func TestPushValidation(t *testing.T) {
	m := mustMonitor(t, pskyline.Options{Dims: 2, Window: 4, Thresholds: []float64{0.3}})
	if _, err := m.Push(pskyline.Element{Point: []float64{1}, Prob: 0.5}); err == nil {
		t.Error("wrong dimensionality accepted")
	}
	if _, err := m.Push(pskyline.Element{Point: []float64{1, 2}, Prob: 0}); err == nil {
		t.Error("zero probability accepted")
	}
	if _, err := m.Push(pskyline.Element{Point: []float64{1, 2}, Prob: 1.2}); err == nil {
		t.Error("probability > 1 accepted")
	}
}

func TestMonitorBasics(t *testing.T) {
	m := mustMonitor(t, pskyline.Options{Dims: 2, Window: 10, Thresholds: []float64{0.3}})
	seq, err := m.Push(pskyline.Element{Point: []float64{1, 1}, Prob: 0.9, Data: "best"})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 0 {
		t.Fatalf("first seq = %d", seq)
	}
	m.Push(pskyline.Element{Point: []float64{2, 2}, Prob: 0.8, Data: "dominated"})
	m.Push(pskyline.Element{Point: []float64{0.5, 3}, Prob: 0.7, Data: "corner"})

	sky := m.Skyline()
	if len(sky) != 2 {
		t.Fatalf("skyline = %v", sky)
	}
	if sky[0].Data != "best" || sky[0].Psky != 0.9 {
		t.Fatalf("head = %+v", sky[0])
	}
	if sky[1].Data != "corner" {
		t.Fatalf("second = %+v", sky[1])
	}

	// Ad-hoc query below the maintained threshold must fail.
	if _, err := m.Query(0.1); err == nil {
		t.Error("query below q accepted")
	}
	got, err := m.Query(0.8)
	if err != nil || len(got) != 1 || got[0].Data != "best" {
		t.Fatalf("query(0.8) = %v, %v", got, err)
	}

	top, err := m.TopK(2, 0.3)
	if err != nil || len(top) != 2 || top[0].Data != "best" {
		t.Fatalf("topk = %v, %v", top, err)
	}

	st := m.Stats()
	if st.Processed != 3 || st.Candidates != 3 || st.Skyline != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if got := m.Thresholds(); len(got) != 1 || got[0] != 0.3 {
		t.Fatalf("thresholds = %v", got)
	}
}

// TestEventsMatchSkylineMembership — replaying OnEnter/OnLeave must always
// reconstruct exactly the queried skyline.
func TestEventsMatchSkylineMembership(t *testing.T) {
	members := map[uint64]bool{}
	m := mustMonitor(t, pskyline.Options{
		Dims: 2, Window: 30, Thresholds: []float64{0.4},
		OnEnter: func(p pskyline.SkyPoint) {
			if members[p.Seq] {
				t.Fatalf("double enter for %d", p.Seq)
			}
			members[p.Seq] = true
		},
		OnLeave: func(p pskyline.SkyPoint) {
			if !members[p.Seq] {
				t.Fatalf("leave without enter for %d", p.Seq)
			}
			delete(members, p.Seq)
		},
	})
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		_, err := m.Push(pskyline.Element{
			Point: []float64{r.Float64(), r.Float64()},
			Prob:  1 - r.Float64(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if i%13 == 0 {
			sky := m.Skyline()
			if len(sky) != len(members) {
				t.Fatalf("step %d: %d members via events, %d via query", i, len(members), len(sky))
			}
			for _, p := range sky {
				if !members[p.Seq] {
					t.Fatalf("step %d: %d in query but not via events", i, p.Seq)
				}
			}
		}
	}
}

func TestTimeWindowMonitor(t *testing.T) {
	m := mustMonitor(t, pskyline.Options{Dims: 1, Period: 10, Thresholds: []float64{0.5}})
	m.Push(pskyline.Element{Point: []float64{1}, Prob: 1, TS: 0, Data: "old"})
	m.Push(pskyline.Element{Point: []float64{2}, Prob: 1, TS: 5, Data: "mid"})
	sky := m.Skyline()
	if len(sky) != 1 || sky[0].Data != "old" {
		t.Fatalf("skyline = %v", sky)
	}
	// TS 11 expires "old" (TS 0 < 11−10); "mid" remains and wins.
	m.Push(pskyline.Element{Point: []float64{3}, Prob: 1, TS: 11, Data: "new"})
	sky = m.Skyline()
	if len(sky) != 1 || sky[0].Data != "mid" {
		t.Fatalf("after expiry skyline = %v", sky)
	}
}

// TestDataCleanup — payloads of departed elements must not accumulate; the
// public surface proxy is that departed elements never resurface with stale
// data and live ones keep theirs.
func TestDataCleanup(t *testing.T) {
	m := mustMonitor(t, pskyline.Options{Dims: 2, Window: 8, Thresholds: []float64{0.3}})
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		m.Push(pskyline.Element{
			Point: []float64{r.Float64(), r.Float64()},
			Prob:  1 - r.Float64(),
			Data:  i,
		})
		for _, p := range m.Skyline() {
			if p.Data.(int) != int(p.Seq) {
				t.Fatalf("payload mismatch: seq %d carries %v", p.Seq, p.Data)
			}
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	m := mustMonitor(t, pskyline.Options{Dims: 2, Window: 100, Thresholds: []float64{0.3}})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				_, err := m.Push(pskyline.Element{
					Point: []float64{r.Float64(), r.Float64()},
					Prob:  1 - r.Float64(),
				})
				if err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					m.Skyline()
					m.TopK(3, 0.3)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if st := m.Stats(); st.Processed != 800 {
		t.Fatalf("processed = %d", st.Processed)
	}
}

// TestContinuousTopK — the OnTopK callback must fire exactly when the
// ranked top-k membership changes, and its last delivery must equal an
// ad-hoc TopK query.
func TestContinuousTopK(t *testing.T) {
	var last []pskyline.SkyPoint
	fired := 0
	m := mustMonitor(t, pskyline.Options{
		Dims: 2, Window: 50, Thresholds: []float64{0.3},
		TopK: 3,
		OnTopK: func(top []pskyline.SkyPoint) {
			fired++
			last = append(last[:0], top...)
		},
	})
	r := rand.New(rand.NewSource(15))
	for i := 0; i < 400; i++ {
		if _, err := m.Push(pskyline.Element{
			Point: []float64{r.Float64(), r.Float64()},
			Prob:  1 - r.Float64(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if fired == 0 {
		t.Fatal("OnTopK never fired")
	}
	want, err := m.TopK(3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(last) != len(want) {
		t.Fatalf("last delivery %d vs query %d", len(last), len(want))
	}
	for i := range want {
		if last[i].Seq != want[i].Seq {
			t.Fatalf("rank %d: %d vs %d", i, last[i].Seq, want[i].Seq)
		}
	}
}

// TestDynamicThresholdsAndCounters exercises the runtime MSKY registration
// surface and the work counters.
func TestDynamicThresholdsAndCounters(t *testing.T) {
	m := mustMonitor(t, pskyline.Options{Dims: 2, Window: 40, Thresholds: []float64{0.3}})
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 200; i++ {
		if _, err := m.Push(pskyline.Element{
			Point: []float64{r.Float64(), r.Float64()},
			Prob:  1 - r.Float64(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.AddThreshold(0.6); err != nil {
		t.Fatal(err)
	}
	if got := m.Thresholds(); len(got) != 2 || got[0] != 0.6 || got[1] != 0.3 {
		t.Fatalf("thresholds = %v", got)
	}
	if err := m.AddThreshold(0.1); err == nil {
		t.Fatal("threshold below minimum accepted")
	}
	strict, err := m.Query(0.6)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := m.Query(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(strict) > len(loose) {
		t.Fatalf("0.6-skyline (%d) larger than 0.3-skyline (%d)", len(strict), len(loose))
	}
	if err := m.RemoveThreshold(0.6); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveThreshold(0.3); err == nil {
		t.Fatal("smallest threshold removal accepted")
	}
	c := m.Counters()
	if c.Pushes != 200 || c.NodesVisited == 0 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestRestoreWithTopK re-enables continuous top-k tracking at restore.
func TestRestoreWithTopK(t *testing.T) {
	m := mustMonitor(t, pskyline.Options{Dims: 2, Window: 30, Thresholds: []float64{0.3}})
	r := rand.New(rand.NewSource(25))
	for i := 0; i < 120; i++ {
		m.Push(pskyline.Element{Point: []float64{r.Float64(), r.Float64()}, Prob: 1 - r.Float64()})
	}
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	fired := 0
	restored, err := pskyline.RestoreMonitor(&buf, pskyline.RestoreOptions{
		TopK:   3,
		OnTopK: func([]pskyline.SkyPoint) { fired++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		restored.Push(pskyline.Element{Point: []float64{r.Float64(), r.Float64()}, Prob: 1 - r.Float64()})
	}
	if fired == 0 {
		t.Fatal("restored top-k tracking never fired")
	}
}

func ExampleMonitor() {
	m, _ := pskyline.NewMonitor(pskyline.Options{
		Dims:       2,
		Window:     100,
		Thresholds: []float64{0.4},
	})
	m.Push(pskyline.Element{Point: []float64{550, 1}, Prob: 0.80, Data: "L1"})
	m.Push(pskyline.Element{Point: []float64{680, 1}, Prob: 0.90, Data: "L2"})
	m.Push(pskyline.Element{Point: []float64{530, 2}, Prob: 1.00, Data: "L3"})
	m.Push(pskyline.Element{Point: []float64{200, 2}, Prob: 0.48, Data: "L4"})
	for _, p := range m.Skyline() {
		fmt.Printf("%s Psky=%.2f\n", p.Data, p.Psky)
	}
	// Output:
	// L1 Psky=0.80
	// L3 Psky=0.52
	// L4 Psky=0.48
}
