package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pskyline"
)

func testConfig() config {
	return config{
		dims: 2, window: 500, qs: []float64{0.3}, dist: "inde", seed: 1,
		dur: 300 * time.Millisecond, warmup: 50 * time.Millisecond,
		batch: 1, workers: 2, mode: "sync", async: 256, shards: 2,
		stream: "bench", label: "test",
	}
}

// stallSink completes instantly except for one long stall; the open-loop
// schedule keeps releasing arrivals during it.
type stallSink struct {
	n       atomic.Int64
	stallAt int64
	stall   time.Duration
}

func (s *stallSink) push([]pskyline.Element) error {
	if s.n.Add(1) == s.stallAt {
		time.Sleep(s.stall)
	}
	return nil
}
func (s *stallSink) visible() *pskyline.LatencyMetrics { return nil }
func (s *stallSink) close() error                      { return nil }

// TestCoordinatedOmission pins the harness's defining property: arrivals
// scheduled while the system is stalled observe the stall. A closed-loop
// harness (measuring from send time) would report one slow sample; the
// open-loop schedule charges the stall to every arrival due during it.
func TestCoordinatedOmission(t *testing.T) {
	cfg := testConfig()
	cfg.workers = 1 // all arrivals funnel through the stalled worker
	cfg.warmup = 0
	cfg.dur = 500 * time.Millisecond
	const rate = 200.0 // 2 arrivals due per 10ms
	s := &stallSink{stallAt: 20, stall: 200 * time.Millisecond}

	r := runRate(s, cfg, rate)
	if r.Completed+r.Dropped != r.Scheduled {
		t.Fatalf("accounting: scheduled=%d completed=%d dropped=%d",
			r.Scheduled, r.Completed, r.Dropped)
	}
	// ~40 arrivals were due during the 200ms stall; well over 10 must have
	// observed >=50ms of it. With send-time measurement only 1 sample could
	// exceed 50ms.
	if r.MaxMs < 150 {
		t.Errorf("max %.1fms does not reflect the 200ms stall", r.MaxMs)
	}
	if r.P99Ms < 50 {
		t.Errorf("p99 %.1fms does not charge the stall to queued arrivals", r.P99Ms)
	}
}

func TestSweepInprocModes(t *testing.T) {
	for _, mode := range []string{"sync", "async", "sharded"} {
		t.Run(mode, func(t *testing.T) {
			cfg := testConfig()
			cfg.mode = mode
			cfg.rates = []float64{500, 1000}
			cfg.batch = 4
			cfg.out = filepath.Join(t.TempDir(), "bench.json")
			var out bytes.Buffer
			if err := sweep(cfg, &out); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), "open-loop") {
				t.Errorf("sweep output missing open-loop note:\n%s", out.String())
			}

			data, err := readFile(cfg.out)
			if err != nil {
				t.Fatal(err)
			}
			var bf benchFile
			if err := json.Unmarshal(data, &bf); err != nil {
				t.Fatal(err)
			}
			if len(bf.Runs) != 1 || len(bf.Runs[0].Rows) != 2 {
				t.Fatalf("trajectory = %d runs / %v rows, want 1 run with 2 rows",
					len(bf.Runs), len(bf.Runs[0].Rows))
			}
			for _, r := range bf.Runs[0].Rows {
				if r.Mode != mode || !r.Tracking {
					t.Errorf("row mode=%q tracking=%v", r.Mode, r.Tracking)
				}
				if r.Completed == 0 || r.Completed+r.Dropped != r.Scheduled {
					t.Errorf("row accounting: scheduled=%d completed=%d dropped=%d",
						r.Scheduled, r.Completed, r.Dropped)
				}
				if r.P50Ms <= 0 || r.P99Ms < r.P50Ms {
					t.Errorf("row quantiles p50=%.4f p99=%.4f", r.P50Ms, r.P99Ms)
				}
				// In-process with tracking on: the monitor's internal
				// visibility view rides along.
				if r.VisibleP50Ms <= 0 {
					t.Errorf("row missing visible_p50_ms: %+v", r)
				}
			}
		})
	}
}

func TestSweepNoLatencyControl(t *testing.T) {
	cfg := testConfig()
	cfg.noLat = true
	cfg.rates = []float64{500}
	cfg.out = filepath.Join(t.TempDir(), "bench.json")
	if err := sweep(cfg, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := readFile(cfg.out)
	if err != nil {
		t.Fatal(err)
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		t.Fatal(err)
	}
	r := bf.Runs[0].Rows[0]
	if r.Tracking {
		t.Error("control row reports tracking on")
	}
	if r.VisibleP50Ms != 0 || r.VisibleP99Ms != 0 {
		t.Errorf("control row has internal visibility quantiles: %+v", r)
	}
}

func TestAppendRowsAndRender(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	rows := []rateResult{{
		Label: "a", Mode: "sync", Tracking: true, Offered: 1000,
		Scheduled: 10, Completed: 10,
		P50Ms: 0.5, P99Ms: 1.5, P999Ms: 2.0, MaxMs: 3.0, ElemsPS: 990,
		VisibleP50Ms: 0.1, VisibleP99Ms: 0.4,
	}}
	if err := appendRows(path, "a", rows); err != nil {
		t.Fatal(err)
	}
	rows[0].Mode = "async"
	if err := appendRows(path, "b", rows); err != nil {
		t.Fatal(err)
	}
	data, _ := readFile(path)
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		t.Fatal(err)
	}
	if len(bf.Runs) != 2 || bf.Runs[0].Label != "a" || bf.Runs[1].Label != "b" {
		t.Fatalf("merge: %+v", bf.Runs)
	}

	var md bytes.Buffer
	if err := renderFile(path, &md); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"| mode |", "| sync | on | 1000 |", "| async |"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("render missing %q:\n%s", want, md.String())
		}
	}

	if err := appendRows(filepath.Join(t.TempDir(), "bad.json"), "x", nil); err != nil {
		t.Fatalf("append to fresh file: %v", err)
	}
}

func TestHTTPSinkDrops(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1)%2 == 0 {
			http.Error(w, "busy", http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	cfg := testConfig()
	cfg.target = srv.URL + "/" // trailing slash must not double up
	cfg.warmup = 0
	cfg.dur = 100 * time.Millisecond
	s := newHTTPSink(cfg)
	if !strings.HasSuffix(s.url, "/streams/bench/push") || strings.Contains(s.url, "//streams") {
		t.Fatalf("sink url %q", s.url)
	}
	r := runRate(s, cfg, 200)
	if r.Mode != "http" {
		t.Errorf("mode = %q, want http", r.Mode)
	}
	if r.Dropped == 0 || r.Completed == 0 {
		t.Errorf("want both completions and drops, got completed=%d dropped=%d", r.Completed, r.Dropped)
	}
	if r.Completed+r.Dropped != r.Scheduled {
		t.Errorf("accounting: scheduled=%d completed=%d dropped=%d",
			r.Scheduled, r.Completed, r.Dropped)
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(s, 0.5); q != 6 {
		t.Errorf("p50 = %v", q)
	}
	if q := quantile(s, 0.999); q != 10 {
		t.Errorf("p999 = %v", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty = %v", q)
	}
}
